// Threshold scaling: the paper's motivating trend (Figure 1a) is that the
// Rowhammer threshold keeps falling — 139K in 2014, 4.8K in 2020, heading
// toward a few hundred. This example sweeps T_RH and shows how each secure
// mitigation's overhead explodes on the baseline mapping as the threshold
// drops, and how Rubix flattens the curve (Figures 3 and 14).
//
//	go run ./examples/thresholds [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"rubix"
)

func main() {
	wl := "mcf"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	g := rubix.DefaultGeometry()
	const instr = 40_000_000

	run := func(mapName, mit string, trh int) *rubix.Result {
		profiles, err := rubix.ResolveWorkload(wl, 4, g, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rubix.Run(rubix.Config{
			Geometry:       g,
			TRH:            trh,
			MappingName:    mapName,
			MitigationName: mit,
			Workloads:      profiles,
			InstrPerCore:   instr,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("coffeelake", "none", 1024).MeanIPC
	fmt.Printf("Threshold sweep: 4x %s, normalized performance (unprotected baseline = 1.00)\n\n", wl)
	fmt.Printf("%6s  %28s  %28s\n", "", "———— CoffeeLake ————", "——— Rubix-S (GS4/GS1) ———")
	fmt.Printf("%6s %9s %9s %9s %9s %9s %9s\n",
		"T_RH", "AQUA", "SRS", "BlockH", "AQUA", "SRS", "BlockH")
	for _, trh := range []int{1024, 512, 256, 128} {
		row := []float64{}
		for _, cfg := range [][2]string{
			{"coffeelake", "aqua"}, {"coffeelake", "srs"}, {"coffeelake", "blockhammer"},
			{"rubixs-gs4", "aqua"}, {"rubixs-gs4", "srs"}, {"rubixs-gs1", "blockhammer"},
		} {
			row = append(row, run(cfg[0], cfg[1], trh).MeanIPC/base)
		}
		fmt.Printf("%6d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			trh, row[0], row[1], row[2], row[3], row[4], row[5])
	}
	fmt.Println("\nOn the conventional mapping, overheads compound as the threshold falls;")
	fmt.Println("with Rubix the mitigations barely fire at any threshold, so the columns stay flat.")
}
