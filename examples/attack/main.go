// Attack lab: drives Rowhammer access patterns against the simulated memory
// system and checks the security invariant — no physical row may exceed
// T_RH activations within a refresh window without a mitigative action.
//
// It demonstrates the paper's two security claims:
//
//  1. Victim-refresh TRR is NOT secure: under heavy single-sided hammering,
//     TRR's own victim refreshes activate the neighbours thousands of times
//     — the Half-Double effect — so rows at distance 1 blow past T_RH and
//     hammer rows at distance 2.
//
//  2. The aggressor-focused schemes (AQUA, SRS, BlockHammer) hold under
//     single-, double-, and many-sided patterns, with or without Rubix:
//     randomizing the mapping does not weaken them (§4.10's lemmas).
//
//     go run ./examples/attack
package main

import (
	"fmt"
	"log"

	"rubix"
)

func main() {
	g := rubix.DefaultGeometry()
	const trh = 128

	fmt.Printf("Attack lab: %s, T_RH = %d, 4 attacking cores, 20M instructions each\n\n", g, trh)
	fmt.Printf("%-14s %-12s %-12s %12s %12s %10s\n",
		"attack", "mapping", "mitigation", "activations", "mitigations", "violations")

	for _, kind := range []rubix.AttackKind{rubix.SingleSided, rubix.DoubleSided, rubix.ManySided} {
		for _, mit := range []string{"none", "trr", "para", "dsac", "aqua", "srs", "blockhammer"} {
			for _, mapName := range []string{"coffeelake", "rubixs-gs4"} {
				if mit == "none" || mit == "trr" || mit == "para" || mit == "dsac" {
					// The broken baselines only need showing once.
					if mapName != "coffeelake" || kind != rubix.SingleSided {
						continue
					}
				}
				mapper, err := rubix.NewMapper(mapName, g, 42)
				if err != nil {
					log.Fatal(err)
				}
				profiles, err := rubix.AttackProfiles(kind, g, mapper, 4, 42)
				if err != nil {
					log.Fatal(err)
				}
				res, err := rubix.Run(rubix.Config{
					Geometry:       g,
					TRH:            trh,
					MappingName:    mapName,
					MitigationName: mit,
					Workloads:      profiles,
					InstrPerCore:   20_000_000,
					Seed:           42,
				})
				if err != nil {
					log.Fatal(err)
				}
				verdict := "SECURE"
				if v := res.DRAM.TotalOverTRH(); v > 0 {
					verdict = fmt.Sprintf("%d FLIPPABLE", v)
				}
				fmt.Printf("%-14s %-12s %-12s %12d %12d %10s\n",
					kind, mapName, mit,
					res.DRAM.DemandActs+res.DRAM.ExtraActs, res.Mitigations, verdict)
			}
		}
		fmt.Println()
	}

	fmt.Println("TRR refreshes victims instead of restraining the aggressor; those refreshes")
	fmt.Println("are themselves activations, which is exactly the Half-Double lever. The")
	fmt.Println("aggressor-focused schemes bound every row's activation count by construction,")
	fmt.Println("so they stay secure under any access pattern and any memory mapping.")
}
