// Quickstart: simulate the paper's headline scenario — a hot workload at an
// ultra-low Rowhammer threshold (T_RH = 128) protected by AQUA — first on
// the Intel Coffee Lake mapping, then with Rubix-S (gang size 4).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rubix"
)

func main() {
	g := rubix.DefaultGeometry()
	fmt.Printf("System: %s, T_RH = 128, workload: 4x mcf (rate mode)\n\n", g)

	// Where does Rubix-S put a page? Translate its 64 lines in one batched
	// call — the same entry point the simulated memory controller uses for a
	// core's miss burst — and round-trip them to show the mapping inverts.
	rs, err := rubix.NewMapper("rubixs-gs4", g, 42)
	if err != nil {
		log.Fatal(err)
	}
	lines := make([]uint64, 64)
	phys := make([]uint64, len(lines))
	for i := range lines {
		lines[i] = uint64(i)
	}
	rs.MapBatch(lines, phys)
	rows := map[uint64]bool{}
	for _, p := range phys {
		rows[g.GlobalRow(p)] = true
	}
	back := make([]uint64, len(phys))
	rs.UnmapBatch(phys, back)
	for i := range back {
		if back[i] != lines[i] {
			log.Fatalf("round trip lost line %d", lines[i])
		}
	}
	fmt.Printf("rubixs-gs4 scatters one 4 KB page (64 lines) over %d DRAM rows; round trip exact.\n\n", len(rows))

	run := func(mapping string) *rubix.Result {
		profiles, err := rubix.ResolveWorkload("mcf", 4, g, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rubix.Run(rubix.Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    mapping,
			MitigationName: "aqua",
			Workloads:      profiles,
			InstrPerCore:   50_000_000,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	baselineUnprotected := func() *rubix.Result {
		profiles, err := rubix.ResolveWorkload("mcf", 4, g, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rubix.Run(rubix.Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    "coffeelake",
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   50_000_000,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}()

	for _, m := range []string{"coffeelake", "rubixs-gs4"} {
		res := run(m)
		slow := 100 * (1 - res.MeanIPC/baselineUnprotected.MeanIPC)
		fmt.Printf("%-12s + AQUA: IPC %.3f (slowdown %5.1f%%)  hot rows %6d  migrations %6d  RBHR %4.1f%%\n",
			m, res.MeanIPC, slow, res.DRAM.TotalHot64(), res.Mitigations, 100*res.HitRate())
		if v := res.DRAM.TotalOverTRH(); v != 0 {
			fmt.Printf("  !! security watchdog: %d rows exceeded T_RH\n", v)
		}
	}
	fmt.Printf("\nunprotected baseline: IPC %.3f, hot rows %d (%d exceeded T_RH — why mitigation is needed)\n",
		baselineUnprotected.MeanIPC, baselineUnprotected.DRAM.TotalHot64(), baselineUnprotected.DRAM.TotalOverTRH())
	fmt.Println("\nRubix randomizes the line-to-row mapping, eliminating the hot rows that")
	fmt.Println("trigger AQUA's expensive row migrations — same security, a fraction of the cost.")
}
