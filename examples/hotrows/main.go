// Hot-row anatomy: reproduces the paper's Figure 4 illustration — why the
// line-to-row mapping, not the access pattern, creates hot rows.
//
// Three kernels with identical 4 MB footprints and 1M accesses run against
// a simple 4 GB memory: a sequential stream, a 64-line stride, and uniform
// random. Under the conventional sequential mapping the strided and random
// kernels make every footprint row hot; with an encrypted line address
// (Rubix-S, gang size 1) the same access patterns produce none.
//
//	go run ./examples/hotrows
package main

import (
	"fmt"
	"log"

	"rubix"
)

func main() {
	suite := rubix.NewSuite(rubix.Options{Scale: 1, Workloads: []string{}, Mixes: []int{}})
	rows, err := suite.Fig4()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 4: hot rows (>= 64 activations) of three kernels")
	fmt.Println("4 GB memory, 4 KB rows, 4 MB footprint, 1M accesses")
	fmt.Println()
	fmt.Printf("%-12s %-14s %10s %14s\n", "kernel", "mapping", "hot rows", "analytic E[x]")
	for _, r := range rows {
		an := "-"
		if r.Analytic != 0 {
			an = fmt.Sprintf("%.2f", r.Analytic)
		}
		fmt.Printf("%-12s %-14s %10d %14s\n", r.Kernel, r.Mapping, r.HotRows, an)
	}
	fmt.Println()
	fmt.Println("The stream kernel amortizes one activation over 64 line accesses, so even")
	fmt.Println("the sequential mapping stays cold. The strided and random kernels activate")
	fmt.Println("on every access; because the sequential mapping packs 64 spatially-close")
	fmt.Println("lines into each row, all 1K footprint rows cross the 64-activation line.")
	fmt.Println("Encrypting the line address scatters the footprint over the full 1M rows:")
	fmt.Println("the binomial expectation of a row collecting enough lines is below one row.")
}
