// Mapping explorer: compares every line-to-row mapping in the repository on
// one workload — row-buffer hit rate (performance), hot rows (Rowhammer
// mitigation pressure), DRAM power, and the storage the mapping hardware
// needs. This is the trade-off table an adopter would consult before
// picking a mapping and gang size.
//
//	go run ./examples/mappings [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"rubix"
)

func main() {
	wl := "gcc"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	g := rubix.DefaultGeometry()

	mappings := []struct {
		name    string
		storage string
	}{
		{"coffeelake", "none (wiring)"},
		{"skylake", "none (wiring)"},
		{"mop", "none (wiring)"},
		{"largestride-gs4", "none (wiring)"},
		{"rubixs-gs1", "16 B key"},
		{"rubixs-gs2", "16 B key"},
		{"rubixs-gs4", "16 B key"},
		{"staticxor-gs4", "256 B keys"},
		{"rubixd-gs1", "1 KB circuits"},
		{"rubixd-gs2", "512 B circuits"},
		{"rubixd-gs4", "256 B circuits"},
	}

	fmt.Printf("Mapping explorer: 4x %s on %s (unprotected, T_RH census at 128)\n\n", wl, g)
	fmt.Printf("%-18s %8s %8s %10s %10s %12s %9s  %s\n",
		"mapping", "IPC", "RBHR", "ACT-64+", "ACT-512+", "power", "rows/128", "SRAM")

	var baseIPC float64
	for i, m := range mappings {
		profiles, err := rubix.ResolveWorkload(wl, 4, g, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rubix.Run(rubix.Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    m.name,
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   50_000_000,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseIPC = res.MeanIPC
		}
		fmt.Printf("%-18s %8.3f %7.1f%% %10d %10d %9.0f mW %9d  %s\n",
			m.name, res.MeanIPC, 100*res.HitRate(),
			res.DRAM.TotalHot64(), res.DRAM.TotalHot512(), res.PowerMW,
			rowSpread(g, m.name), m.storage)
	}
	fmt.Printf("\n(IPC normalized to coffeelake = %.3f; hot rows are what drive mitigation\n", baseIPC)
	fmt.Println("cost at low Rowhammer thresholds — the Rubix rows should be near zero.")
	fmt.Println("rows/128 = distinct rows hit by 128 consecutive lines: 1 keeps a page pair")
	fmt.Println("in one row buffer, 128 is full randomization.)")
}

// rowSpread counts the distinct rows that 128 consecutive lines land in —
// the spatial-locality signature of a mapping — using the batched
// translation surface: one MapBatch call instead of 128 Map calls.
func rowSpread(g rubix.Geometry, name string) int {
	m, err := rubix.NewMapper(name, g, 42)
	if err != nil {
		log.Fatal(err)
	}
	lines := make([]uint64, 128)
	phys := make([]uint64, len(lines))
	for i := range lines {
		lines[i] = uint64(i)
	}
	m.MapBatch(lines, phys)
	rows := map[uint64]bool{}
	for _, p := range phys {
		rows[g.GlobalRow(p)] = true
	}
	return len(rows)
}
