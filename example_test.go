package rubix_test

import (
	"fmt"

	"rubix"
)

// ExampleNewMapper translates a burst of consecutive lines through Rubix-S
// with one batched call — the shape the simulated memory controller uses
// for a core's miss burst — and inverts it with the matching UnmapBatch.
// Consecutive gangs of 4 lines stay together; the gangs themselves scatter.
func ExampleNewMapper() {
	g := rubix.DefaultGeometry()
	m, err := rubix.NewMapper("rubixs-gs4", g, 42)
	if err != nil {
		fmt.Println("mapper:", err)
		return
	}
	lines := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	phys := make([]uint64, len(lines))
	m.MapBatch(lines, phys)

	back := make([]uint64, len(phys))
	m.UnmapBatch(phys, back)

	fmt.Println("gang 0 contiguous:", phys[1] == phys[0]+1 && phys[3] == phys[0]+3)
	fmt.Println("gang 1 contiguous:", phys[5] == phys[4]+1 && phys[7] == phys[4]+3)
	fmt.Println("gangs scattered:", phys[4] != phys[0]+4)
	roundTrip := true
	for i := range back {
		roundTrip = roundTrip && back[i] == lines[i]
	}
	fmt.Println("round trip exact:", roundTrip)
	// Output:
	// gang 0 contiguous: true
	// gang 1 contiguous: true
	// gangs scattered: true
	// round trip exact: true
}

// ExampleSuite_Prefetch warms the suite cache for a set of configurations
// in parallel, then reads one result back instantly. Prefetch accepts the
// same RunSpec values as Suite.Run, so a caller can enumerate a whole
// experiment grid up front and let the suite fan it out across CPUs.
func ExampleSuite_Prefetch() {
	s := rubix.NewSuite(rubix.Options{
		Scale:     0.002, // tiny runs, example-sized
		Workloads: []string{"xz"},
		Mixes:     []int{},
	})
	specs := []rubix.RunSpec{
		{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
		{Workload: "xz", Mapping: "rubixs-gs4", Mitigation: "aqua", TRH: 128},
	}
	if err := s.Prefetch(specs); err != nil {
		fmt.Println("prefetch:", err)
		return
	}
	res, err := s.Run(specs[1]) // cached: returns without simulating again
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println(res.Config)
	// Output: Rubix-S(GS4)/AQUA/TRH=128
}
