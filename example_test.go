package rubix_test

import (
	"fmt"

	"rubix"
)

// ExampleSuite_Prefetch warms the suite cache for a set of configurations
// in parallel, then reads one result back instantly. Prefetch accepts the
// same RunSpec values as Suite.Run, so a caller can enumerate a whole
// experiment grid up front and let the suite fan it out across CPUs.
func ExampleSuite_Prefetch() {
	s := rubix.NewSuite(rubix.Options{
		Scale:     0.002, // tiny runs, example-sized
		Workloads: []string{"xz"},
		Mixes:     []int{},
	})
	specs := []rubix.RunSpec{
		{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
		{Workload: "xz", Mapping: "rubixs-gs4", Mitigation: "aqua", TRH: 128},
	}
	if err := s.Prefetch(specs); err != nil {
		fmt.Println("prefetch:", err)
		return
	}
	res, err := s.Run(specs[1]) // cached: returns without simulating again
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println(res.Config)
	// Output: Rubix-S(GS4)/AQUA/TRH=128
}
