module rubix

go 1.22
