// Package rubix is a from-scratch reproduction of "Rubix: Reducing the
// Overhead of Secure Rowhammer Mitigations via Randomized Line-to-Row
// Mapping" (Saxena, Mathur, Qureshi — ASPLOS 2024).
//
// It bundles a complete memory-system simulation stack — DRAM bank/bus
// timing, memory-controller policies, Rowhammer activation trackers, the
// secure mitigations AQUA / SRS / BlockHammer (plus victim-refresh TRR),
// Intel-style baseline address mappings, and calibrated SPEC CPU2017
// workload stand-ins — together with the paper's contribution: the Rubix-S
// (encrypted gang address) and Rubix-D (dynamic XOR v-group remapping)
// randomized line-to-row mappings.
//
// # Quick start
//
//	profiles, _ := rubix.ResolveWorkload("gcc", 4, rubix.DefaultGeometry(), 42)
//	res, _ := rubix.Run(rubix.Config{
//		Geometry:       rubix.DefaultGeometry(),
//		TRH:            128,
//		MappingName:    "rubixs-gs4",
//		MitigationName: "aqua",
//		Workloads:      profiles,
//	})
//	fmt.Printf("IPC %.2f, hot rows %d\n", res.MeanIPC, res.DRAM.TotalHot64())
//
// # Experiments
//
// Every table and figure of the paper's evaluation has a runner on Suite
// (Fig3, Table2, Fig4, Table3, HotRows, PerfAtTRH, GangSweep, RemapRate);
// cmd/experiments exposes them on the command line and bench_test.go wires
// one benchmark per artifact.
//
// The simulator is deterministic: identical Config (including Seed) replays
// identically.
package rubix

import (
	"io"

	"rubix/internal/core"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/kcipher"
	"rubix/internal/mapping"
	"rubix/internal/metrics"
	"rubix/internal/sim"
	"rubix/internal/trace"
	"rubix/internal/workload"
)

// Core simulation types, aliased from the implementation packages so the
// whole system is drivable through this one import.
type (
	// Geometry describes the DRAM organization (channels/ranks/banks/rows).
	Geometry = geom.Geometry
	// Timing holds the DRAM timing parameters in nanoseconds.
	Timing = dram.Timing
	// Config describes a single simulation run.
	Config = sim.Config
	// Result summarizes a run: per-core IPC, DRAM statistics (hot-row
	// census, row-buffer hit rate), mitigation activity, power.
	Result = sim.Result
	// Options configures an experiment suite (scale, workload subset).
	Options = sim.Options
	// Suite caches runs and regenerates the paper's tables and figures.
	Suite = sim.Suite
	// RunSpec names one Suite configuration (workload, mapping, mitigation,
	// threshold, census); pass it to Suite.Run or Suite.Prefetch.
	RunSpec = sim.RunSpec
	// Recorder collects run-level counters, gauges, phase timings, and an
	// optional event trace; set Config.Metrics to enable.
	Recorder = metrics.Recorder
	// MetricsConfig parameterizes NewRecorder.
	MetricsConfig = metrics.Config
	// MetricsSnapshot is the immutable export of a Recorder
	// (Result.Metrics), with deterministic JSON and text renderings.
	MetricsSnapshot = metrics.Snapshot
	// Profile couples a workload generator with its core-model parameters.
	Profile = workload.Profile
	// Mapper is the line-to-row mapping interface.
	Mapper = mapping.Mapper
	// FullMapper is the complete translation surface — scalar and batched
	// (MapBatch/UnmapBatch), both directions. NewMapper returns it; every
	// mapper in the repository implements it.
	FullMapper = mapping.FullMapper
	// CipherKey is the 96-bit key of the Rubix-S address cipher.
	CipherKey = kcipher.Key
	// RubixS is the static randomized mapping (the paper's §4).
	RubixS = core.RubixS
	// RubixD is the dynamic randomized mapping (the paper's §5).
	RubixD = core.RubixD
	// RubixDConfig parameterizes NewRubixD.
	RubixDConfig = core.RubixDConfig
)

// DefaultGeometry returns the paper's baseline system: 16 GB DDR4, one
// channel, 16 banks, 128K rows of 8 KB (Table 1).
func DefaultGeometry() Geometry { return geom.DDR4_16GB() }

// Geometry2Ch returns the 32 GB two-channel system of Figure 15.
func Geometry2Ch() Geometry { return geom.DDR4_32GB2Ch() }

// Geometry4Ch returns the 32 GB four-channel system of Figure 15.
func Geometry4Ch() Geometry { return geom.DDR4_32GB4Ch() }

// DDR4Timing returns the DDR4-2400 timing of Table 1.
func DDR4Timing() Timing { return dram.DDR4_2400() }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// NewSuite builds an experiment suite that caches and parallelizes runs.
func NewSuite(opts Options) *Suite { return sim.NewSuite(opts) }

// NewMapper constructs a mapping by name: sequential, coffeelake, skylake,
// mop, largestride-gsN, rubixs-gsN, rubixd-gsN, or staticxor-gsN
// (N ∈ {1, 2, 4}). The result carries the full translation surface,
// including the batched MapBatch/UnmapBatch path.
func NewMapper(name string, g Geometry, seed uint64) (FullMapper, error) {
	return sim.MapperFor(name, g, seed)
}

// NewRubixS builds the static Rubix mapping with the given gang size.
func NewRubixS(g Geometry, gangSize int, key CipherKey) (*RubixS, error) {
	return core.NewRubixS(g, gangSize, key)
}

// NewRubixD builds the dynamic Rubix mapping.
func NewRubixD(g Geometry, cfg RubixDConfig) (*RubixD, error) {
	return core.NewRubixD(g, cfg)
}

// KeyFromSeed derives a Rubix-S cipher key from a boot-time seed.
func KeyFromSeed(seed uint64) CipherKey { return kcipher.KeyFromSeed(seed) }

// NewRecorder builds a metrics recorder; set it as Config.Metrics to
// collect run-level observability (Result.Metrics).
func NewRecorder(cfg MetricsConfig) *Recorder { return metrics.New(cfg) }

// ResolveWorkload resolves a workload spec — a SPEC2017 stand-in ("gcc",
// "lbm", ...), a four-way mix ("mix1".."mix16"), or a STREAM kernel
// ("stream-copy", "stream-scale", "stream-add", "stream-triad") — into one
// generator per core.
func ResolveWorkload(spec string, cores int, g Geometry, seed uint64) ([]Profile, error) {
	return sim.ResolveWorkload(spec, cores, g, seed)
}

// SpecWorkloads lists the 18 calibrated SPEC CPU2017 stand-ins (Table 2).
func SpecWorkloads() []string { return workload.SpecNames() }

// AttackKind selects a Rowhammer access pattern for AttackProfiles.
type AttackKind = sim.AttackKind

// Attack patterns.
const (
	SingleSided = sim.SingleSided
	DoubleSided = sim.DoubleSided
	ManySided   = sim.ManySided
)

// AttackProfiles builds attacker workloads hammering rows physically
// adjacent to victim rows under the given mapping.
func AttackProfiles(kind AttackKind, g Geometry, m FullMapper, cores int, seed uint64) ([]Profile, error) {
	return sim.AttackProfiles(kind, g, m, cores, seed)
}

// RecordTrace captures n accesses of a workload generator into w in the
// repository's trace format (see internal/trace); cmd/tracegen is the CLI
// form.
func RecordTrace(w io.Writer, gen workload.Generator, n int) error {
	return trace.Record(w, gen, n)
}

// TraceProfile replays a recorded trace as a core's workload. mpki and mlp
// supply the core-model parameters the trace format does not carry.
func TraceProfile(name string, r io.Reader, mpki, mlp float64) (Profile, error) {
	tr, err := trace.NewReader(name, r)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Gen: tr, MPKI: mpki, MLP: mlp}, nil
}
