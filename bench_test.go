// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// runs a scaled-down version of the experiment — a subset of workloads at a
// fraction of the 250M-instruction budget — and reports the headline
// numbers as custom metrics. cmd/experiments regenerates the full-size
// artifacts; EXPERIMENTS.md records paper-vs-measured values.
//
// The benchmarks intentionally iterate the *experiment*, not an inner loop:
// b.N counts experiment executions.
package rubix_test

import (
	"fmt"
	"testing"

	"rubix/internal/geom"
	"rubix/internal/sim"
)

// benchWorkloads is the benchmark subset: four hot workloads (which carry
// the paper's story) plus two cold ones to keep the average honest.
var benchWorkloads = []string{"blender", "lbm", "gcc", "mcf", "xz", "leela"}

// benchOpts returns suite options scaled for benchmarking: the benchmarks
// validate that every experiment *runs* and report its headline metrics at
// a reduced size; cmd/experiments regenerates the full-size artifacts.
func benchOpts() sim.Options {
	return sim.Options{
		Scale:     0.06, // 15M instructions per core
		Workloads: benchWorkloads,
		Mixes:     []int{},
		Seed:      42,
	}
}

// meanSlowdownPct turns normalized performance into a slowdown percentage.
func meanSlowdownPct(perf float64) float64 { return 100 * (1 - perf) }

func BenchmarkFig3_ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.TRH == 128 {
				b.ReportMetric(meanSlowdownPct(r.CoffeeLake), r.Mitigation+"_slowdown_pct")
			}
		}
	}
}

func BenchmarkTable2_WorkloadCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		hot := 0
		for _, r := range rows {
			hot += r.Hot64
		}
		b.ReportMetric(float64(hot)/float64(len(rows)), "mean_hot64")
	}
}

func BenchmarkFig4_Microkernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Kernel == "random" {
				b.ReportMetric(float64(r.HotRows), "random_"+r.Mapping+"_hot")
			}
		}
	}
}

func BenchmarkTable3_LinesPerHotRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			continue
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.AvgLines
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_activating_lines")
	}
}

func BenchmarkFig7_HotRows(b *testing.B) {
	maps := []string{"coffeelake", "skylake", "rubixs-gs4"}
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.HotRows(maps)
		if err != nil {
			b.Fatal(err)
		}
		sums := make([]float64, len(maps))
		for _, r := range rows {
			for j, c := range r.Counts {
				sums[j] += float64(c)
			}
		}
		n := float64(len(rows))
		b.ReportMetric(sums[0]/n, "coffeelake_hot64")
		b.ReportMetric(sums[2]/n, "rubixs_gs4_hot64")
	}
}

func benchmarkPerf(b *testing.B, mit string, flavor string) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		maps := []string{"coffeelake", "skylake", sim.BestGS(flavor, mit)}
		rows, err := s.PerfAtTRH(mit, 128, maps)
		if err != nil {
			b.Fatal(err)
		}
		sums := make([]float64, len(maps))
		for _, r := range rows {
			for j, v := range r.Perf {
				sums[j] += v
			}
		}
		n := float64(len(rows))
		b.ReportMetric(meanSlowdownPct(sums[0]/n), "coffeelake_slowdown_pct")
		b.ReportMetric(meanSlowdownPct(sums[2]/n), flavor+"_slowdown_pct")
	}
}

func BenchmarkFig8_Performance_AQUA(b *testing.B)        { benchmarkPerf(b, "aqua", "rubixs") }
func BenchmarkFig8_Performance_SRS(b *testing.B)         { benchmarkPerf(b, "srs", "rubixs") }
func BenchmarkFig8_Performance_BlockHammer(b *testing.B) { benchmarkPerf(b, "blockhammer", "rubixs") }

func BenchmarkFig9_GangSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep(
			[]string{"rubixs-gs1", "rubixs-gs2", "rubixs-gs4"},
			[]string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SlowdownPct, fmt.Sprintf("%s_%s_pct", r.Mapping, r.Mitigation))
		}
	}
}

func BenchmarkSec48_RowBufferHits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep(
			[]string{"coffeelake", "skylake", "rubixs-gs1", "rubixs-gs2", "rubixs-gs4"},
			[]string{"none"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.HitRate, r.Mapping+"_rbhr_pct")
		}
	}
}

func BenchmarkSec49_Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep(
			[]string{"coffeelake", "rubixs-gs1", "rubixs-gs4"},
			[]string{"none"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		base := rows[0].PowerMW
		for _, r := range rows[1:] {
			b.ReportMetric(r.PowerMW-base, r.Mapping+"_delta_mW")
		}
	}
}

func BenchmarkFig12_HotRowsAllRubix(b *testing.B) {
	maps := []string{"coffeelake", "skylake",
		"rubixs-gs1", "rubixs-gs2", "rubixs-gs4",
		"rubixd-gs1", "rubixd-gs2", "rubixd-gs4"}
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.HotRows(maps)
		if err != nil {
			b.Fatal(err)
		}
		sums := make([]float64, len(maps))
		for _, r := range rows {
			for j, c := range r.Counts {
				sums[j] += float64(c)
			}
		}
		n := float64(len(rows))
		for j, m := range maps {
			b.ReportMetric(sums[j]/n, m+"_hot64")
		}
	}
}

func BenchmarkFig13_RubixD_AQUA(b *testing.B)        { benchmarkPerf(b, "aqua", "rubixd") }
func BenchmarkFig13_RubixD_SRS(b *testing.B)         { benchmarkPerf(b, "srs", "rubixd") }
func BenchmarkFig13_RubixD_BlockHammer(b *testing.B) { benchmarkPerf(b, "blockhammer", "rubixd") }

func BenchmarkTable4_IsolatedOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep(
			[]string{"rubixs-gs4", "rubixs-gs2", "rubixs-gs1",
				"rubixd-gs4", "rubixd-gs2", "rubixd-gs1"},
			[]string{"none"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SlowdownPct, r.Mapping+"_pct")
		}
	}
}

func BenchmarkFig14_HigherThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		for _, trh := range []int{128, 512, 1024} {
			rows, err := s.GangSweep([]string{"rubixs-gs4"},
				[]string{"aqua", "srs", "blockhammer"}, trh)
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for _, r := range rows {
				sum += r.SlowdownPct
			}
			b.ReportMetric(sum/float64(len(rows)), fmt.Sprintf("trh%d_slowdown_pct", trh))
		}
	}
}

func BenchmarkFig15_MultiChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ch := range []int{2, 4} {
			g := geom.DDR4_32GB2Ch()
			if ch == 4 {
				g = geom.DDR4_32GB4Ch()
			}
			o := benchOpts()
			o.Cores = 8
			o.Geometry = g
			o.Workloads = []string{"blender", "lbm", "gcc", "mcf"}
			s := sim.NewSuite(o)
			rows, err := s.GangSweep(
				[]string{"coffeelake", "rubixs-gs4"}, []string{"aqua"}, 128)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].SlowdownPct, fmt.Sprintf("%dch_coffeelake_pct", ch))
			b.ReportMetric(rows[1].SlowdownPct, fmt.Sprintf("%dch_rubixs_pct", ch))
		}
	}
}

func BenchmarkFig16_Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Workloads = []string{"stream-copy", "stream-scale", "stream-add", "stream-triad"}
		s := sim.NewSuite(o)
		rows, err := s.GangSweep(
			[]string{"rubixs-gs4", "rubixd-gs4"},
			[]string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.SlowdownPct
		}
		b.ReportMetric(sum/float64(len(rows)), "stream_mean_slowdown_pct")
	}
}

func BenchmarkFig17_MOP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep(
			[]string{"mop", "rubixs-gs4"}, []string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		var mop, rub float64
		for _, r := range rows {
			if r.Mapping == "mop" {
				mop += r.SlowdownPct / 3
			} else {
				rub += r.SlowdownPct / 3
			}
		}
		b.ReportMetric(mop, "mop_slowdown_pct")
		b.ReportMetric(rub, "rubixs_slowdown_pct")
	}
}

func BenchmarkTable5_Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep([]string{"coffeelake"},
			[]string{"trr", "aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SlowdownPct, r.Mitigation+"_pct")
		}
	}
}

func BenchmarkSec54_RemapRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.RemapRate(4)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.DemandActs > 0 {
				sum += r.ExtraActPct
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "extra_act_pct")
		}
	}
}

func BenchmarkSec61_LargeStride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep([]string{"largestride-gs4"},
			[]string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.SlowdownPct
		}
		b.ReportMetric(sum/float64(len(rows)), "largestride_mean_slowdown_pct")
	}
}

func BenchmarkAblation_RemapRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.AblationRemapRate(4, []float64{0.001, 0.01, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ExtraActPct, fmt.Sprintf("rr%.3f_extra_act_pct", r.Rate))
		}
	}
}

func BenchmarkAblation_Segments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.AblationSegments(4, []int{1, 32})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.StorageBytes), fmt.Sprintf("seg%d_sram_bytes", r.Segments))
		}
	}
}

func BenchmarkAblation_TRRWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.AblationTRR([]string{"coffeelake", "rubixs-gs4"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Refreshes), r.Mapping+"_refreshes")
		}
	}
}

func BenchmarkSec62_StaticXOR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewSuite(benchOpts())
		rows, err := s.GangSweep([]string{"staticxor-gs4", "staticxor-gs1"},
			[]string{"aqua", "srs", "blockhammer"}, 128)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.SlowdownPct
		}
		b.ReportMetric(sum/float64(len(rows)), "staticxor_mean_slowdown_pct")
	}
}

// benchmarkShardScaling measures the parallel-in-run speedup of the
// channel-sharded event loops: one fixed 4-channel configuration, varied
// only in the shard count, so Serial vs Shards4 is the apples-to-apples
// pair `make bench-shards` compares. On a multi-core host the sharded run
// approaches a channels-wide speedup; on a single-core host it tracks the
// serial time (the shards time-slice one CPU). The result is checked
// against the serial oracle in internal/sim's tests, not here.
func benchmarkShardScaling(b *testing.B, shards int) {
	b.Helper()
	g := geom.DDR4_32GB4Ch()
	for i := 0; i < b.N; i++ {
		profiles, err := sim.ResolveWorkload("mix1", 8, g, 42)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    "rubixs-gs4",
			MitigationName: "blockhammer",
			Workloads:      profiles,
			InstrPerCore:   8_000_000,
			Seed:           42,
			Shards:         shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Shards != shards {
			b.Fatalf("run used %d shards, want %d", res.Shards, shards)
		}
		b.ReportMetric(res.MeanIPC, "mean_ipc")
	}
}

func BenchmarkShardScaling_Serial(b *testing.B)  { benchmarkShardScaling(b, 1) }
func BenchmarkShardScaling_Shards2(b *testing.B) { benchmarkShardScaling(b, 2) }
func BenchmarkShardScaling_Shards4(b *testing.B) { benchmarkShardScaling(b, 4) }
