// Publisher decouples concurrent readers (the /metrics HTTP endpoint) from
// the single-threaded Recorder: the simulation thread publishes immutable
// Snapshots at phase boundaries, and readers only ever see a published
// snapshot — never the live counters — so serving metrics adds no locks to
// the hot path and no races under -race.

package metrics

import (
	"net/http"
	"sync/atomic"
)

// Publisher holds the latest published Snapshot and serves it over HTTP.
// The zero value is ready to use.
type Publisher struct {
	cur atomic.Pointer[Snapshot]
}

// Publish makes s the snapshot served to readers. Callers must not mutate s
// afterwards (Recorder.Snapshot returns fresh value data, so publishing its
// result directly is safe).
func (p *Publisher) Publish(s *Snapshot) {
	if s != nil {
		p.cur.Store(s)
	}
}

// Latest returns the most recently published snapshot, or nil if none.
func (p *Publisher) Latest() *Snapshot {
	return p.cur.Load()
}

// Hook returns a PhaseHook that publishes every snapshot it receives — the
// glue between a Recorder's phase transitions and this Publisher.
func (p *Publisher) Hook() func(*Snapshot) {
	return func(s *Snapshot) { p.Publish(s) }
}

// ServeHTTP implements http.Handler: the text rendering of the latest
// snapshot, or 503 before the first publish.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	s := p.Latest()
	if s == nil {
		http.Error(w, "no metrics published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(s.Text()))
}
