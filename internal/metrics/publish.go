// Publisher decouples concurrent readers (the /metrics HTTP endpoint) from
// the single-threaded Recorder: the simulation thread publishes immutable
// Snapshots at phase boundaries, and readers only ever see a published
// snapshot — never the live counters — so serving metrics adds no locks to
// the hot path and no races under -race.

package metrics

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
)

// Publisher holds the latest published Snapshot and serves it over HTTP.
// The zero value is ready to use.
type Publisher struct {
	cur atomic.Pointer[Snapshot]
}

// Publish makes s the snapshot served to readers. Callers must not mutate s
// afterwards (Recorder.Snapshot returns fresh value data, so publishing its
// result directly is safe).
func (p *Publisher) Publish(s *Snapshot) {
	if s != nil {
		p.cur.Store(s)
	}
}

// Latest returns the most recently published snapshot, or nil if none.
func (p *Publisher) Latest() *Snapshot {
	return p.cur.Load()
}

// Hook returns a PhaseHook that publishes every snapshot it receives — the
// glue between a Recorder's phase transitions and this Publisher.
func (p *Publisher) Hook() func(*Snapshot) {
	return func(s *Snapshot) { p.Publish(s) }
}

// ServeHTTP implements http.Handler. GET and HEAD are served (HEAD with
// full headers, including Content-Length, and no body); anything else is
// 405 with an Allow header. The default rendering is the stable text form;
// the JSON snapshot is served when the client asks for it with either
// `?format=json` or an `Accept: application/json` header, so rubixd
// clients and the CI jq smoke jobs share one endpoint with the
// line-oriented scrapers. Before the first publish every form answers 503.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
	default:
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := p.Latest()
	if s == nil {
		http.Error(w, "no metrics published yet", http.StatusServiceUnavailable)
		return
	}
	var body []byte
	contentType := "text/plain; charset=utf-8"
	if wantsJSON(r) {
		data, err := s.JSON()
		if err != nil {
			http.Error(w, "encoding snapshot: "+err.Error(), http.StatusInternalServerError)
			return
		}
		body = data
		contentType = "application/json"
	} else {
		body = []byte(s.Text())
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(body)
}

// wantsJSON reports whether the request asked for the JSON rendering,
// either explicitly (?format=json) or via content negotiation. The Accept
// check is a deliberate substring match: full q-value parsing buys nothing
// for a two-format endpoint.
func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}
