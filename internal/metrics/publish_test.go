package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// publishedTestSnapshot builds a Publisher with one counter published.
func publishedTestSnapshot(t *testing.T) *Publisher {
	t.Helper()
	rec := New(Config{})
	rec.Counter("requests_total").Add(42)
	p := &Publisher{}
	p.Publish(rec.Snapshot())
	return p
}

// TestPublisherContentNegotiation pins the endpoint's two renderings and
// how they are selected: text by default, JSON under ?format=json or an
// Accept: application/json header.
func TestPublisherContentNegotiation(t *testing.T) {
	p := publishedTestSnapshot(t)
	cases := []struct {
		name     string
		target   string
		accept   string
		wantType string
		wantJSON bool
	}{
		{"default text", "/metrics", "", "text/plain; charset=utf-8", false},
		{"query json", "/metrics?format=json", "", "application/json", true},
		{"accept json", "/metrics", "application/json", "application/json", true},
		{"accept list json", "/metrics", "text/html, application/json;q=0.9", "application/json", true},
		{"accept other", "/metrics", "text/html", "text/plain; charset=utf-8", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, c.target, nil)
			if c.accept != "" {
				req.Header.Set("Accept", c.accept)
			}
			rr := httptest.NewRecorder()
			p.ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				t.Fatalf("status = %d", rr.Code)
			}
			if got := rr.Header().Get("Content-Type"); got != c.wantType {
				t.Fatalf("Content-Type = %q, want %q", got, c.wantType)
			}
			if c.wantJSON {
				var snap Snapshot
				if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
					t.Fatalf("body is not valid snapshot JSON: %v", err)
				}
				if snap.Counters["requests_total"] != 42 {
					t.Fatalf("JSON snapshot lost the counter: %+v", snap.Counters)
				}
			} else if !strings.Contains(rr.Body.String(), "counter requests_total 42") {
				t.Fatalf("text body missing counter line: %q", rr.Body.String())
			}
		})
	}
}

// TestPublisherHead: HEAD gets status, Content-Type, and an accurate
// Content-Length for both renderings, with no body.
func TestPublisherHead(t *testing.T) {
	p := publishedTestSnapshot(t)
	for _, target := range []string{"/metrics", "/metrics?format=json"} {
		req := httptest.NewRequest(http.MethodHead, target, nil)
		rr := httptest.NewRecorder()
		p.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("HEAD %s: status = %d", target, rr.Code)
		}
		if rr.Body.Len() != 0 {
			t.Fatalf("HEAD %s wrote a body (%d bytes)", target, rr.Body.Len())
		}
		// The advertised length must match what GET actually serves.
		getReq := httptest.NewRequest(http.MethodGet, target, nil)
		getRR := httptest.NewRecorder()
		p.ServeHTTP(getRR, getReq)
		want := strconv.Itoa(getRR.Body.Len())
		if got := rr.Header().Get("Content-Length"); got != want {
			t.Fatalf("HEAD %s: Content-Length = %s, want %s", target, got, want)
		}
	}
}

// TestPublisherMethodNotAllowed: mutating methods are rejected with Allow.
func TestPublisherMethodNotAllowed(t *testing.T) {
	p := publishedTestSnapshot(t)
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		req := httptest.NewRequest(method, "/metrics", nil)
		rr := httptest.NewRecorder()
		p.ServeHTTP(rr, req)
		if rr.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s: status = %d, want 405", method, rr.Code)
		}
		if got := rr.Header().Get("Allow"); got != "GET, HEAD" {
			t.Fatalf("%s: Allow = %q", method, got)
		}
	}
}

// TestPublisherBeforeFirstPublish: all accepted methods answer 503 until a
// snapshot exists.
func TestPublisherBeforeFirstPublish(t *testing.T) {
	p := &Publisher{}
	for _, method := range []string{http.MethodGet, http.MethodHead} {
		req := httptest.NewRequest(method, "/metrics?format=json", nil)
		rr := httptest.NewRecorder()
		p.ServeHTTP(rr, req)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s before publish: status = %d, want 503", method, rr.Code)
		}
	}
}
