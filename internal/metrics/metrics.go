// Package metrics is the run-level observability subsystem: a registry of
// named counters, gauges, and histograms, a wall-clock phase timer, and an
// optional bounded ring buffer of simulation events. It exists to answer
// "where did the time go" questions about a run — tracker lookups vs
// mitigation swaps vs row-buffer misses — with the same per-structure
// counters the mitigation literature (BlockHammer, BreakHammer) reports.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Components resolve *Counter /
//     *Gauge / *Hist handles once at construction; recording is a single
//     nil-check plus an integer or float store. The event ring is
//     preallocated at its bound.
//
//  2. Nil-safe when disabled. Every method works on a nil *Recorder and nil
//     handles, so instrumented code needs no "if metrics enabled" branches
//     and a run without metrics pays only dead branches.
//
//  3. Deterministic content. Counters, gauges, histograms, and events carry
//     only simulation-derived values (event timestamps are simulated
//     nanoseconds), so two identical runs snapshot identically. The single
//     exception is phase timings, which deliberately measure *host* wall
//     time for performance attribution; Snapshot.StripTimings removes them
//     for byte-comparison. Wall-clock reads are confined to wallNow below —
//     the one sanctioned //lint:allow determinism site in the simulator.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"rubix/internal/stats"
)

// wallNow reads the host clock for phase timing and run-progress reporting.
// It is the only wall-clock access in the simulation stack: callers outside
// this package use WallNow, never time.Now, so the determinism analyzer can
// pin nondeterminism to this single justified site.
func wallNow() int64 {
	//lint:allow determinism phase timings are telemetry about the host run; they never feed back into simulation state
	return time.Now().UnixNano()
}

// WallNow returns the host wall clock in nanoseconds since the Unix epoch.
// It exists so observability call sites elsewhere (per-run progress in the
// experiment harness) share this package's sanctioned clock access instead
// of sprinkling their own time.Now calls past the determinism analyzer.
func WallNow() int64 { return wallNow() }

// Counter is a monotonically increasing uint64. A nil Counter is a no-op.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float64. A nil Gauge is a no-op.
type Gauge struct{ v float64 }

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hist is a log₂-bucketed histogram (see internal/stats). A nil Hist is a
// no-op.
type Hist struct{ h stats.Histogram }

// Observe records one sample.
func (h *Hist) Observe(v float64) {
	if h != nil {
		h.h.Add(v)
	}
}

// Merge folds an existing stats.Histogram into h (used to adopt histograms
// collected by components that predate the registry, e.g. the DRAM latency
// distribution).
func (h *Hist) Merge(o *stats.Histogram) {
	if h != nil && o != nil {
		h.h.Merge(o)
	}
}

// EventKind classifies a traced simulation event.
type EventKind uint8

// Traced event kinds.
const (
	EvActivation  EventKind = iota // demand row activation
	EvMitigation                   // mitigation fired (migration, swap, throttle, refresh)
	EvRemapSwap                    // Rubix-D gang swap charged by the controller
	EvRowConflict                  // row-buffer conflict (miss that closed an open row)
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvActivation:
		return "activation"
	case EvMitigation:
		return "mitigation"
	case EvRemapSwap:
		return "remap-swap"
	case EvRowConflict:
		return "row-conflict"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one traced simulation event. At is simulated nanoseconds — never
// wall time — so traces replay identically.
type Event struct {
	Kind EventKind `json:"kind"`
	At   float64   `json:"at_ns"`
	Row  uint64    `json:"row"`
}

// PhaseTiming reports the accumulated host wall time of one run phase.
type PhaseTiming struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// Config configures a Recorder.
type Config struct {
	// TraceEvents bounds the event ring buffer (0 disables event tracing;
	// the ring keeps the most recent TraceEvents events).
	TraceEvents int
	// PhaseHook, when non-nil, receives a fresh Snapshot at every phase
	// transition — how live endpoints observe a single-threaded run without
	// racing its counters.
	PhaseHook func(*Snapshot)
}

// Recorder is the metrics registry for one simulation run. It is
// single-threaded by design, like the simulator itself: concurrent readers
// must consume published Snapshots (see Publisher), never the live Recorder.
type Recorder struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist

	// The event ring is allocated once at its full bound and reused in
	// place: Event writes through ringNext with a branch-only wrap, so the
	// steady-state trace path performs no allocation, no append
	// bookkeeping, and no modulo.
	ring     []Event
	ringCap  int
	ringNext int    // next slot to overwrite
	seen     uint64 // total events offered to the ring

	phases     []PhaseTiming
	phaseStart int64
	hook       func(*Snapshot)
}

// New builds a Recorder.
func New(cfg Config) *Recorder {
	r := &Recorder{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		ringCap:  cfg.TraceEvents,
		hook:     cfg.PhaseHook,
	}
	if r.ringCap > 0 {
		r.ring = make([]Event, r.ringCap)
	}
	return r
}

// Counter returns the named counter handle, creating it on first use. A nil
// Recorder returns a nil (no-op) handle.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram handle, creating it on first use.
func (r *Recorder) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Event offers one event to the trace ring. With tracing disabled
// (TraceEvents == 0) or a nil Recorder this is a two-branch no-op.
//
// hot: called on every mitigation action and remap swap; the ring is
// preallocated and overwritten in place.
func (r *Recorder) Event(kind EventKind, at float64, row uint64) {
	if r == nil || r.ringCap == 0 {
		return
	}
	r.ring[r.ringNext] = Event{Kind: kind, At: at, Row: row}
	r.ringNext++
	if r.ringNext == r.ringCap {
		r.ringNext = 0
	}
	r.seen++
}

// Phase closes the current phase (if any) and starts a new one, invoking the
// PhaseHook with a snapshot of the state so far.
func (r *Recorder) Phase(name string) {
	if r == nil {
		return
	}
	r.accruePhase()
	r.phases = append(r.phases, PhaseTiming{Name: name})
	if r.hook != nil {
		r.hook(r.Snapshot())
	}
}

// accruePhase charges the wall time since the last accrual to the current
// phase and restarts the stopwatch.
func (r *Recorder) accruePhase() {
	now := wallNow()
	if n := len(r.phases); n > 0 {
		r.phases[n-1].WallMs += float64(now-r.phaseStart) / 1e6
	}
	r.phaseStart = now
}

// Snapshot captures the registry's current state as plain value data. The
// returned Snapshot shares nothing with the Recorder and is safe to hand to
// other goroutines.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.accruePhase()
	s := &Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Phases:   append([]PhaseTiming(nil), r.phases...),
	}
	//lint:allow determinism building one map from another; insertion order cannot reach the output
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	//lint:allow determinism building one map from another; insertion order cannot reach the output
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistStats, len(r.hists))
		//lint:allow determinism building one map from another; insertion order cannot reach the output
		for name, h := range r.hists {
			s.Hists[name] = histStatsOf(&h.h)
		}
	}
	if r.seen > 0 {
		// Unroll the ring oldest-first: once it has wrapped, the oldest
		// entry sits at the next overwrite position.
		n := r.ringCap
		start := r.ringNext
		if r.seen < uint64(r.ringCap) {
			n = int(r.seen)
			start = 0
		} else {
			s.EventsDropped = r.seen - uint64(r.ringCap)
		}
		s.Events = make([]Event, 0, n)
		for i := 0; i < n; i++ {
			s.Events = append(s.Events, r.ring[(start+i)%r.ringCap])
		}
	}
	return s
}

// Fork returns a child Recorder for one shard of a sharded run: same event
// ring bound, no phase hook (phases are a whole-run notion), fresh
// counters. Components constructed against the child register their handles
// there; Absorb folds the child back. Nil-safe: a nil Recorder forks to nil,
// so a metrics-off run stays metrics-off on every shard.
//
// cold: once per shard at run setup.
func (r *Recorder) Fork() *Recorder {
	if r == nil {
		return nil
	}
	return New(Config{TraceEvents: r.ringCap})
}

// Absorb folds a forked child into r: counters add, gauges last-write-win,
// histograms merge, and the child's surviving events are re-offered to r's
// ring oldest-first. Call once per child in fixed shard order; with more
// events than the ring bound the kept set matches serial, though interleaved
// event *order* across shards is not reconstructed (DESIGN.md §14 — byte
// identity is promised for Result stats, not event traces). Nil-safe.
//
// cold: once per shard at run teardown.
func (r *Recorder) Absorb(child *Recorder) {
	if r == nil || child == nil {
		return
	}
	for _, name := range sortedKeys(child.counters) {
		r.Counter(name).Add(child.counters[name].v)
	}
	for _, name := range sortedKeys(child.gauges) {
		r.Gauge(name).Set(child.gauges[name].v)
	}
	for _, name := range sortedKeys(child.hists) {
		r.Hist(name).Merge(&child.hists[name].h)
	}
	if child.seen > 0 && r.ringCap > 0 {
		n := child.ringCap
		start := child.ringNext
		if child.seen < uint64(child.ringCap) {
			n = int(child.seen)
			start = 0
		}
		for i := 0; i < n; i++ {
			e := child.ring[(start+i)%child.ringCap]
			r.Event(e.Kind, e.At, e.Row)
		}
		r.seen += child.seen - uint64(n) // account the child's own drops
	}
}

// HistStats is the value-data summary of one histogram.
type HistStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func histStatsOf(h *stats.Histogram) HistStats {
	return HistStats{
		Count: h.Count(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
	}
}

// Snapshot is an immutable copy of a Recorder's state.
type Snapshot struct {
	Counters      map[string]uint64    `json:"counters"`
	Gauges        map[string]float64   `json:"gauges"`
	Hists         map[string]HistStats `json:"histograms,omitempty"`
	Phases        []PhaseTiming        `json:"phases,omitempty"`
	Events        []Event              `json:"events,omitempty"`
	EventsDropped uint64               `json:"events_dropped,omitempty"`
}

// JSON renders the snapshot as indented JSON. encoding/json sorts map keys,
// so the output is deterministic given deterministic content.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// StripTimings returns a copy with the phase timings removed. Phase timings
// measure host wall time — the one intentionally nondeterministic field —
// so determinism checks compare StripTimings output.
func (s *Snapshot) StripTimings() *Snapshot {
	if s == nil {
		return nil
	}
	c := *s
	c.Phases = nil
	return &c
}

// Text renders the snapshot in a stable, line-oriented format (the /metrics
// endpoint and the -metrics CLI flag).
func (s *Snapshot) Text() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		fmt.Fprintf(&b, "hist %s n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
			name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "phase %s %.2fms\n", p.Name, p.WallMs)
	}
	if s.EventsDropped > 0 {
		fmt.Fprintf(&b, "events dropped %d\n", s.EventsDropped)
	}
	for _, e := range s.Events {
		fmt.Fprintf(&b, "event %s at=%.1f row=%d\n", e.Kind, e.At, e.Row)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // key extraction: sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Settable is implemented by components that accept a Recorder after
// construction — the hook that threads metrics through the stack without
// widening the Mitigator/Tracker/Mapper interfaces.
type Settable interface {
	SetMetrics(*Recorder)
}

// Attach wires the Recorder into every argument that implements Settable,
// silently skipping the rest. A nil Recorder attaches nothing (components
// keep their nil, no-op handles).
func Attach(r *Recorder, xs ...any) {
	if r == nil {
		return
	}
	for _, x := range xs {
		if s, ok := x.(Settable); ok {
			s.SetMetrics(r)
		}
	}
}
