package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := r.Hist("z")
	h.Observe(1)
	h.Merge(nil)
	r.Event(EvActivation, 1, 2)
	r.Phase("p")
	if r.Snapshot() != nil {
		t.Fatal("nil recorder produced a snapshot")
	}
}

func TestCountersGaugesHists(t *testing.T) {
	r := New(Config{})
	c := r.Counter("acts")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("acts") != c {
		t.Fatal("same name returned a different handle")
	}
	r.Gauge("ipc").Set(1.5)
	h := r.Hist("lat")
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if s.Counters["acts"] != 10 || s.Gauges["ipc"] != 1.5 {
		t.Fatalf("snapshot content wrong: %+v", s)
	}
	if hs := s.Hists["lat"]; hs.Count != 4 || hs.Max != 8 {
		t.Fatalf("hist stats wrong: %+v", hs)
	}
}

func TestEventRingBounds(t *testing.T) {
	r := New(Config{TraceEvents: 4})
	for i := 0; i < 10; i++ {
		r.Event(EvActivation, float64(i), uint64(i))
	}
	s := r.Snapshot()
	if len(s.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(s.Events))
	}
	if s.EventsDropped != 6 {
		t.Fatalf("dropped = %d, want 6", s.EventsDropped)
	}
	// Oldest-first unroll of the most recent 4: rows 6..9.
	for i, e := range s.Events {
		if e.Row != uint64(6+i) {
			t.Fatalf("event %d row = %d, want %d", i, e.Row, 6+i)
		}
	}
}

func TestEventRingPartiallyFilled(t *testing.T) {
	r := New(Config{TraceEvents: 8})
	r.Event(EvRemapSwap, 5, 42)
	s := r.Snapshot()
	if len(s.Events) != 1 || s.EventsDropped != 0 || s.Events[0].Row != 42 {
		t.Fatalf("partial ring snapshot wrong: %+v", s)
	}
}

func TestEventRingExactBoundary(t *testing.T) {
	r := New(Config{TraceEvents: 4})
	for i := 0; i < 4; i++ {
		r.Event(EvActivation, float64(i), uint64(i))
	}
	s := r.Snapshot()
	if len(s.Events) != 4 || s.EventsDropped != 0 {
		t.Fatalf("exactly-full ring: %d events, %d dropped", len(s.Events), s.EventsDropped)
	}
	for i, e := range s.Events {
		if e.Row != uint64(i) {
			t.Fatalf("event %d row = %d, want %d", i, e.Row, i)
		}
	}
}

func TestEventRingSteadyStateAllocFree(t *testing.T) {
	r := New(Config{TraceEvents: 64})
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Event(EvActivation, 1.0, 7)
	}); allocs != 0 {
		t.Fatalf("Event allocates %.1f objects per call, want 0", allocs)
	}
}

func TestPhasesAndHook(t *testing.T) {
	var hooked int
	r := New(Config{PhaseHook: func(s *Snapshot) {
		if s == nil {
			t.Fatal("hook received nil snapshot")
		}
		hooked++
	}})
	r.Phase("warmup")
	r.Phase("simulate")
	s := r.Snapshot()
	if len(s.Phases) != 2 || s.Phases[0].Name != "warmup" || s.Phases[1].Name != "simulate" {
		t.Fatalf("phases wrong: %+v", s.Phases)
	}
	for _, p := range s.Phases {
		if p.WallMs < 0 {
			t.Fatalf("negative phase duration: %+v", p)
		}
	}
	if hooked != 2 {
		t.Fatalf("hook fired %d times, want 2", hooked)
	}
	if st := s.StripTimings(); st.Phases != nil {
		t.Fatal("StripTimings kept phases")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New(Config{TraceEvents: 2})
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(0.25)
		r.Hist("h").Observe(3)
		r.Event(EvMitigation, 10, 7)
		return r
	}
	a, err := build().Snapshot().StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Snapshot().StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical recorders produced different JSON:\n%s\n---\n%s", a, b)
	}
	var parsed map[string]any
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
}

func TestTextRendering(t *testing.T) {
	r := New(Config{TraceEvents: 1})
	r.Counter("dram_row_hits").Add(3)
	r.Gauge("sim_mean_ipc").Set(1.25)
	r.Event(EvRowConflict, 99, 4)
	r.Phase("simulate")
	text := r.Snapshot().Text()
	for _, want := range []string{
		"counter dram_row_hits 3",
		"gauge sim_mean_ipc 1.25",
		"phase simulate",
		"event row-conflict at=99.0 row=4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
}

func TestAttach(t *testing.T) {
	r := New(Config{})
	a := &settable{}
	Attach(r, a, "not settable", nil)
	if a.got != r {
		t.Fatal("Attach did not wire the recorder")
	}
	b := &settable{}
	Attach(nil, b)
	if b.got != nil {
		t.Fatal("nil recorder attached")
	}
}

type settable struct{ got *Recorder }

func (s *settable) SetMetrics(r *Recorder) { s.got = r }

func TestPublisher(t *testing.T) {
	var p Publisher
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Fatalf("empty publisher status = %d, want 503", rec.Code)
	}
	r := New(Config{PhaseHook: p.Hook()})
	r.Counter("n").Inc()
	r.Phase("simulate")
	if p.Latest() == nil {
		t.Fatal("phase transition did not publish")
	}
	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "counter n 1") {
		t.Fatalf("served %d: %q", rec.Code, rec.Body.String())
	}
}

// TestPublisherConcurrentServe hammers the publish/serve pair from many
// goroutines: one publisher thread racing many HTTP readers, the way the
// /metrics endpoint races the simulation loop. The atomic snapshot swap plus
// fresh value copies from Recorder.Snapshot must keep this clean under -race.
func TestPublisherConcurrentServe(t *testing.T) {
	var p Publisher
	r := New(Config{PhaseHook: p.Hook()})
	n := r.Counter("n")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				p.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 && rec.Code != 503 {
					t.Errorf("served %d", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		n.Inc()
		r.Phase("simulate") // publishes a fresh snapshot each transition
	}
	close(stop)
	wg.Wait()

	if s := p.Latest(); s == nil || !strings.Contains(s.Text(), "counter n 200") {
		t.Fatalf("final snapshot wrong: %v", p.Latest())
	}
}
