package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// keyOf derives a well-formed key from any label, the way callers derive
// keys from canonical preimages.
func keyOf(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	key := keyOf("spec-a")
	payload := []byte(`{"mean_ipc":1.25}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	// Overwrite with new content (e.g. after a format upgrade recompute).
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); string(got) != "v2" {
		t.Fatalf("overwrite not visible: got %q", got)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t)
	bad := []string{
		"",
		"short",
		strings.Repeat("g", 64),               // non-hex
		strings.Repeat("A", 64),               // uppercase hex is not canonical
		"../../../../etc/passwd" + keyOf("x"), // traversal attempt
		keyOf("x")[:63] + "/",                 // separator
	}
	for _, key := range bad {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on an invalid key", key)
		}
	}
}

// TestCorruptEntryIsMiss pins the durability contract: flipped payload
// bits, a mangled header, and a foreign format version all read as misses,
// never as errors or wrong data.
func TestCorruptEntryIsMiss(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"payload bit flip", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"checksum mangled", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len("rubixstore v1 ")] = 'z' // not hex
			return out
		}},
		{"future format version", func(raw []byte) []byte {
			return append([]byte("rubixstore v999 "), raw[len("rubixstore v1 "):]...)
		}},
		{"no header newline", func(raw []byte) []byte {
			return bytes.ReplaceAll(raw, []byte("\n"), []byte(" "))
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := mustOpen(t)
			key := keyOf("victim-" + c.name)
			if err := s.Put(key, []byte(`{"rows":[1,2,3]}`)); err != nil {
				t.Fatal(err)
			}
			path := s.path(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry read back as a hit: %q", got)
			}
			// The recovery path: a fresh Put over the bad entry heals it.
			if err := s.Put(key, []byte("healed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "healed" {
				t.Fatalf("re-Put over corrupt entry did not heal: ok=%v got=%q", ok, got)
			}
		})
	}
}

// TestTruncatedEntryIsMiss cuts a valid entry at every length from zero to
// full-minus-one; all of them must miss. This is the crash-mid-write file
// state an atomic rename is supposed to prevent — if it ever shows up
// anyway (torn sector, copied store), it must not decode.
func TestTruncatedEntryIsMiss(t *testing.T) {
	s := mustOpen(t)
	key := keyOf("truncate-me")
	if err := s.Put(key, []byte(`{"payload":"0123456789abcdef"}`)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("entry truncated to %d/%d bytes read back as a hit", n, len(raw))
		}
	}
}

// TestCrashBeforeRenameLeavesNoEntry simulates a crash between the
// temp-file write and the rename: a fully written temp file with the
// payload sitting in the entry's directory. The entry must stay invisible
// — to Get and to Len — and a later Put must succeed over it.
func TestCrashBeforeRenameLeavesNoEntry(t *testing.T) {
	s := mustOpen(t)
	key := keyOf("crashed")
	payload := []byte("almost made it")
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Reproduce Put's temp-file state byte-for-byte, then "crash" (no rename).
	sum := sha256.Sum256(payload)
	tmpContent := fmt.Sprintf("%s%s\n%s", formatHeader, hex.EncodeToString(sum[:]), payload)
	if err := os.WriteFile(filepath.Join(dir, ".put-crashed123"), []byte(tmpContent), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("orphaned temp file visible as an entry")
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v; want 0 entries (temp files don't count)", n, err)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put after simulated crash: %v", err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Put after crash not readable: ok=%v got=%q", ok, got)
	}
}

// TestConcurrentSharedDirectory hammers one directory through two separate
// Store handles (stand-ins for two processes): concurrent Puts of the same
// and different keys must never interleave into a partial or mixed entry —
// every Get sees a complete, verifiable payload.
func TestConcurrentSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	const rounds = 25
	payload := func(k int) []byte {
		// Big enough that a torn write would be detectable.
		return bytes.Repeat([]byte(fmt.Sprintf("key%d|", k)), 512)
	}
	var wg sync.WaitGroup
	for _, st := range []*Store{a, b} {
		wg.Add(1)
		go func(st *Store) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					key := keyOf(fmt.Sprintf("shared-%d", k))
					if err := st.Put(key, payload(k)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					if got, ok := st.Get(key); ok && !bytes.Equal(got, payload(k)) {
						t.Errorf("Get returned a torn/mixed entry for key %d", k)
						return
					}
				}
			}
		}(st)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := keyOf(fmt.Sprintf("shared-%d", k))
		got, ok := a.Get(key)
		if !ok || !bytes.Equal(got, payload(k)) {
			t.Fatalf("final Get of key %d: ok=%v, intact=%v", k, ok, bytes.Equal(got, payload(k)))
		}
	}
	if n, err := a.Len(); err != nil || n != keys {
		t.Fatalf("Len = %d, %v; want %d", n, err, keys)
	}
}

// TestEntryFormatGolden pins the on-disk envelope byte-for-byte, so a
// format change cannot happen without bumping the version string and this
// test together.
func TestEntryFormatGolden(t *testing.T) {
	s := mustOpen(t)
	payload := []byte("golden payload")
	key := keyOf("golden")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	// 99b2f5… is sha256("golden payload") — independently checkable with
	// `printf 'golden payload' | sha256sum`.
	want := "rubixstore v1 99b2f51b5b653a94d7bb1b0d069192a6ff6f1089ab696b64d00581440cb8e31f\ngolden payload"
	if string(raw) != want {
		t.Fatalf("entry envelope changed:\n got: %q\nwant: %q\n(bump the format version and regenerate)", raw, want)
	}
}
