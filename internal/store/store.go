// Package store is the on-disk content-addressed result store behind the
// rubixd sweep service: a durable map from canonical run keys (hex SHA-256
// of a versioned RunSpec+Options preimage, derived by internal/sim) to
// opaque result payloads. Its contract is deliberately narrow:
//
//   - Put is crash-atomic: an entry is written to a temp file in the final
//     directory and renamed into place, so readers — in this process or a
//     concurrent one sharing the directory — see either nothing or the
//     complete entry, never a partial write.
//   - Get never lies: every entry carries a format header and a SHA-256
//     checksum of its payload, and anything that fails to verify — a
//     truncated file, flipped bits, a foreign format version — is reported
//     as a miss, not an error. A miss costs one recomputation; a corrupt
//     hit would poison every future read of that key.
//   - The store never interprets payloads. Encoding and key derivation
//     belong to the caller (internal/sim), so this package has no
//     dependency on the simulator and the simulator decides what "the same
//     run" means.
//
// Layout: <dir>/<key[:2]>/<key>, fanned out on the first key byte so a
// million-entry store does not put a million names in one directory.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// formatHeader is the versioned magic line opening every entry. Bump the
// version when the envelope layout changes; old entries then verify as
// misses and are rewritten, which is the upgrade path (recompute, never
// misread).
const formatHeader = "rubixstore v1 "

// keyLen is the length of a hex SHA-256 key.
const keyLen = 2 * sha256.Size

// Store is a content-addressed entry store rooted at one directory. The
// zero value is not usable; call Open. A Store carries no mutable state, so
// one value may be shared freely across goroutines: all coordination is the
// filesystem's atomic rename.
type Store struct {
	dir string
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key is a well-formed hex SHA-256 digest. Keys
// become file names, so this check is also the path-traversal guard: only
// lowercase hex of the exact digest length ever reaches the filesystem.
func validKey(key string) bool {
	if len(key) != keyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path maps a key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the payload stored under key, or ok=false on any kind of
// absence: no entry, an unreadable file, a truncated or corrupted entry, or
// an entry written by a different format version. Degrading every failure
// to a miss is the durability contract — the caller recomputes and Puts a
// fresh entry over the bad one.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	return decodeEntry(raw)
}

// decodeEntry verifies one entry envelope and returns its payload.
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false // truncated before the header ended
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	if !strings.HasPrefix(header, formatHeader) {
		return nil, false
	}
	wantSum := strings.TrimPrefix(header, formatHeader)
	if len(wantSum) != keyLen {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, false // truncated or corrupted payload
	}
	return payload, true
}

// Put stores payload under key, atomically: the entry is assembled in a
// temp file in the destination directory and renamed into place, so a crash
// at any point leaves either the old state or the complete new entry. A
// concurrent Put of the same key from another process is safe — both write
// complete temp files and the last rename wins whole.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	// From here on, any failure removes the temp file: orphaned temp files
	// are invisible to Get (their names are never valid keys), but there is
	// no reason to leave them around on a clean error path.
	_, werr := fmt.Fprintf(tmp, "%s%s\n", formatHeader, hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		if rerr := os.Remove(tmp.Name()); rerr != nil && !os.IsNotExist(rerr) {
			return fmt.Errorf("store: put %s: %w (temp cleanup: %v)", key, werr, rerr)
		}
		return fmt.Errorf("store: put %s: %w", key, werr)
	}
	return nil
}

// Len counts the verifiable entries in the store — a walk that re-validates
// every envelope, so corrupt files are not counted. Intended for tooling
// and tests, not hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !validKey(d.Name()) {
			return err
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil // unreadable entries are misses, not errors
		}
		if _, ok := decodeEntry(raw); ok {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: len: %w", err)
	}
	return n, nil
}
