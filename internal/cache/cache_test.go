package cache

import (
	"testing"

	"rubix/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(8<<20, 64, 16); err != nil {
		t.Fatalf("paper LLC config rejected: %v", err)
	}
	if _, err := New(0, 64, 16); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(3<<20, 64, 16); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c, _ := New(1<<20, 64, 8)
	if c.Access(42, false).Hit {
		t.Fatal("cold cache cannot hit")
	}
	if !c.Access(42, false).Hit {
		t.Fatal("second access must hit")
	}
	if c.Accesses() != 2 || c.Misses() != 1 {
		t.Fatalf("acc/miss = %d/%d", c.Accesses(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way tiny cache: sets = 64/64/2... build 2 sets x 2 ways.
	c, err := New(4*64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three lines in set 0 (even line addresses): 0, 2, 4.
	c.Access(0, false)
	c.Access(2, false)
	c.Access(0, false) // touch 0, making 2 the LRU
	c.Access(4, false) // evicts 2
	if !c.Access(0, false).Hit {
		t.Fatal("0 should have survived")
	}
	if c.Access(2, false).Hit {
		t.Fatal("2 should have been evicted as LRU")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c, _ := New(4*64, 64, 2)
	c.Access(0, true) // dirty
	c.Access(2, false)
	res := c.Access(4, false) // evicts 0 (LRU, dirty)
	if !res.Writeback || res.Victim != 0 {
		t.Fatalf("expected writeback of line 0, got %+v", res)
	}
	if c.Writebacks() != 1 {
		t.Fatal("writeback not counted")
	}
	// Clean evictions produce no writeback.
	c2, _ := New(4*64, 64, 2)
	c2.Access(0, false)
	c2.Access(2, false)
	if c2.Access(4, false).Writeback {
		t.Fatal("clean eviction wrote back")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c, _ := New(4*64, 64, 2)
	c.Access(0, false)
	c.Access(0, true) // dirty via write hit
	c.Access(2, false)
	res := c.Access(4, false)
	if !res.Writeback {
		t.Fatal("write-hit dirtiness lost")
	}
}

func TestSetIsolation(t *testing.T) {
	c, _ := New(4*64, 64, 2) // 2 sets
	// Odd lines go to set 1; filling set 0 must not evict them.
	c.Access(1, false)
	for i := uint64(0); i < 10; i += 2 {
		c.Access(i, false)
	}
	if !c.Access(1, false).Hit {
		t.Fatal("set 0 traffic evicted a set-1 line")
	}
}

func TestMissRateConverges(t *testing.T) {
	// Working set half the cache: after warmup, ~0 misses.
	c, _ := New(1<<16, 64, 8) // 1024 lines
	r := rng.NewXoshiro256(1)
	for i := 0; i < 50000; i++ {
		c.Access(uint64(r.Intn(512)), false)
	}
	warmMisses := c.Misses()
	if warmMisses > 600 {
		t.Fatalf("working set misses = %d, want ~512", warmMisses)
	}
	// Working set 4x the cache: high miss rate.
	c2, _ := New(1<<16, 64, 8)
	for i := 0; i < 50000; i++ {
		c2.Access(uint64(r.Intn(4096)), false)
	}
	if mr := c2.MissRate(); mr < 0.5 {
		t.Fatalf("thrashing miss rate %.2f, want > 0.5", mr)
	}
}
