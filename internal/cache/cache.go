// Package cache implements a set-associative, write-back last-level cache
// with LRU replacement — the 8 MB / 16-way shared LLC of the paper's
// baseline (Table 1). The main experiment pipeline drives the memory system
// with calibrated miss traces directly; the cache is used by the
// full-pipeline examples and by tests that validate the miss-trace
// abstraction.
package cache

import (
	"fmt"
	"math/bits"
)

// Line states. The cache stores line addresses (byte address / line size).
type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp
}

// Cache is a set-associative LRU cache over line addresses.
type Cache struct {
	sets     int
	ways     int
	setMask  uint64
	setBits  uint
	data     []way // sets × ways
	stamp    uint64
	accesses uint64
	misses   uint64
	wbacks   uint64
}

// New builds a cache of capacityBytes with the given associativity and line
// size. capacityBytes/(lineBytes×ways) must be a power of two.
func New(capacityBytes, lineBytes, ways int) (*Cache, error) {
	if capacityBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive parameter")
	}
	lines := capacityBytes / lineBytes
	sets := lines / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a positive power of two", sets)
	}
	return &Cache{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets) - 1,
		setBits: uint(bits.TrailingZeros64(uint64(sets))),
		data:    make([]way, sets*ways),
	}, nil
}

// Result reports the outcome of one access.
type Result struct {
	Hit       bool
	Writeback bool   // an eviction wrote a dirty victim back to memory
	Victim    uint64 // line address of the written-back victim
}

// Access looks up the line address, allocating on miss. write marks the
// line dirty. The returned Result identifies any dirty victim that must be
// written back to memory.
func (c *Cache) Access(line uint64, write bool) Result {
	c.accesses++
	c.stamp++
	set := line & c.setMask
	tag := line >> c.setBits
	base := int(set) * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		w := &c.data[i]
		if w.valid && w.tag == tag {
			w.lru = c.stamp
			if write {
				w.dirty = true
			}
			return Result{Hit: true}
		}
		if !w.valid {
			victim = i
		} else if c.data[victim].valid && w.lru < c.data[victim].lru {
			victim = i
		}
	}
	c.misses++
	w := &c.data[victim]
	res := Result{}
	if w.valid && w.dirty {
		res.Writeback = true
		res.Victim = w.tag<<c.setBits | set
		c.wbacks++
	}
	*w = way{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// Accesses reports the total accesses.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses reports the total misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Writebacks reports the total dirty writebacks.
func (c *Cache) Writebacks() uint64 { return c.wbacks }

// MissRate reports misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
