// Package check implements the runtime invariant checker ("paranoid mode")
// and the differential-replay relations (replay.go) for the simulator.
//
// The paper's evaluation rests on structural invariants that static analysis
// cannot see: mappings must be bijections over [0, TotalLines()), every
// activation the controller issues must be accounted by the DRAM census and
// observed by the mitigation, and Rubix-D's gradual remap must leave every
// gang mapped under exactly one key after each epoch. A Checker verifies
// these online, by sampling, while a real workload runs.
//
// The attachment pattern mirrors package metrics: a nil *Checker is a valid
// no-op receiver for every hook, so components embed `if chk != nil` branches
// (or call nil-safe methods) and the checker-off hot path stays allocation-
// free — the cmd/benchdiff gate holds with the hooks compiled in.
//
// cold: paranoid mode is opt-in debug machinery; with the checker attached,
// allocation and overhead are accepted by construction, so hotalloc's
// reachability stops at this package boundary.
package check

import (
	"errors"
	"fmt"
	"sync"

	"rubix/internal/geom"
	"rubix/internal/mapping"
)

// Config tunes the checker. The zero value selects the defaults.
type Config struct {
	// SampleEvery spot-checks one mapping per N controller accesses
	// (round-trip, domain membership, collision window). Default 64.
	SampleEvery int
	// WindowLines bounds the collision-detection window: the number of
	// recent sampled (line, phys) pairs checked for two lines claiming the
	// same physical index. Default 4096.
	WindowLines int
	// MaxViolations caps the collected violation list; further violations
	// are counted but not recorded. Default 32.
	MaxViolations int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.WindowLines <= 0 {
		c.WindowLines = 4096
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 32
	}
	return c
}

// Violation is one detected invariant breach.
type Violation struct {
	Kind   string // "bijection", "collision", "conservation", "epoch", "refresh", "timing", "causality"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// GroupTranslator is the view of a dynamic (Rubix-D-style) mapper the
// checker needs for epoch-completeness checks. *core.RubixD implements it;
// the interface is structural so this package need not import core.
type GroupTranslator interface {
	Groups() int
	RowAddrBits() uint
	TranslateGroup(group int, rowAddr uint64) uint64
	UntranslateGroup(group int, rowAddr uint64) uint64
}

// bankClock tracks per-bank monotonicity state.
type bankClock struct {
	lastRefresh float64 // guarded by mu
	lastAct     float64 // guarded by mu
	refreshes   uint64  // guarded by mu
	acts        uint64  // guarded by mu
}

// Checker collects sampled online assertions for one simulation run. Every
// hook and reporting method is safe for concurrent use: the parallel
// simulator calls the hooks from multiple shards, so all mutable state is
// guarded by one mutex (the checker is off the hot path by contract — a nil
// *Checker short-circuits before any locking, and the zero-cost contract
// holds: every exported hook is safe, and free, on a nil receiver).
type Checker struct {
	mu sync.Mutex

	cfg    Config             // guarded by mu
	geo    geom.Geometry      // guarded by mu
	mapper mapping.Mapper     // guarded by mu
	inv    mapping.Inverter   // guarded by mu; nil under the reduced AttachMapper surface
	full   mapping.FullMapper // guarded by mu; batch surface, nil under AttachMapper
	gt     GroupTranslator    // guarded by mu

	tick  uint64 // accesses seen; drives sampling; guarded by mu
	probe uint64 // deterministic mixer state for synthetic probe addresses; guarded by mu

	// Collision window: phys -> line over the most recent sampled mappings,
	// with a ring buffer evicting the oldest entry. Flushed whenever a
	// dynamic mapper remaps (the mapping legitimately changed).
	winRing []uint64          // guarded by mu
	winNext int               // guarded by mu
	winMap  map[uint64]uint64 // guarded by mu

	// Conservation counters (cumulative over the run).
	ctrlActs     uint64 // demand activations observed by the controller; guarded by mu
	mitActs      uint64 // OnACT calls observed by the wrapped mitigation; guarded by mu
	censusDemand uint64 // demand activations recorded by the DRAM census; guarded by mu
	censusExtra  uint64 // mitigation/remap activations recorded by the census; guarded by mu
	censusTable  uint64 // activations summed from census tables at window closes; guarded by mu

	banks []bankClock // guarded by mu

	checks     uint64      // guarded by mu
	violations []Violation // guarded by mu
	truncated  int         // guarded by mu
}

// New builds a Checker.
func New(cfg Config) *Checker {
	cfg = cfg.withDefaults()
	return &Checker{
		cfg:     cfg,
		probe:   0x6a09_e667_f3bc_c908, // sqrt(2) fraction; any odd-ish constant works
		winRing: make([]uint64, cfg.WindowLines),
		winMap:  make(map[uint64]uint64, cfg.WindowLines),
	}
}

// violate records one violation. Callers must hold c.mu.
func (c *Checker) violate(kind, format string, args ...any) {
	if len(c.violations) >= c.cfg.MaxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// AttachMapper gives the checker the run's geometry and a forward-only
// mapper: range checks, the collision window, and (when the mapper provides
// the GroupTranslator view) epoch-completeness checks run; round-trip and
// batch≡scalar spot checks need the full translation surface — use
// AttachFullMapper for those. This reduced surface exists for deliberately
// broken or partial mappers (differential test doubles, external
// experiments); every mapper in this repository implements
// mapping.FullMapper and should attach through AttachFullMapper.
func (c *Checker) AttachMapper(g geom.Geometry, m mapping.Mapper) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.geo = g
	c.mapper = m
	c.inv = nil
	c.full = nil
	c.gt, _ = m.(GroupTranslator)
}

// AttachFullMapper gives the checker the run's geometry and the complete
// translation surface — scalar and batched, both directions — enabling
// every mapping check: range, collision window, Unmap round trips,
// synthetic probes, and the batch≡scalar agreement probe. This is the
// production attach path (sim.Run uses it); no capability type assertions
// are needed because sim.MapperFor returns mapping.FullMapper. Only the
// GroupTranslator view, a checker-local extension for Rubix-D epoch
// checks, is still probed.
func (c *Checker) AttachFullMapper(g geom.Geometry, m mapping.FullMapper) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.geo = g
	c.mapper = m
	c.inv = m
	c.full = m
	c.gt, _ = m.(GroupTranslator)
}

// Fork returns a child checker sharing this checker's configuration and
// attached translation surfaces but with fresh counters, collision window,
// and violation list. The sharded simulator gives each shard a fork — whose
// conservation and census ledgers are then self-consistent for the subset
// of traffic the shard carries — and folds them back with Absorb. Fork on a
// nil checker returns nil, preserving the nil-receiver contract.
//
// cold: once per shard at run setup.
func (c *Checker) Fork() *Checker {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := New(c.cfg)
	n.geo = c.geo
	n.mapper = c.mapper
	n.inv = c.inv
	n.full = c.full
	n.gt = c.gt
	return n
}

// Absorb folds a forked child's ledger into this checker in a deterministic
// order: counters and check counts are summed, and the child's violations
// are appended (respecting this checker's cap). Per-bank timing state and
// the collision window are not merged — they are positional state the child
// has already fully checked for its shard. Call once per child, in fixed
// shard order, after the child saw its last event. Nil-safe on both sides.
//
// cold: once per shard at run teardown.
func (c *Checker) Absorb(child *Checker) {
	if c == nil || child == nil {
		return
	}
	child.mu.Lock()
	checks := child.checks
	ctrlActs := child.ctrlActs
	mitActs := child.mitActs
	censusDemand := child.censusDemand
	censusExtra := child.censusExtra
	censusTable := child.censusTable
	violations := append([]Violation(nil), child.violations...)
	truncated := child.truncated
	child.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks += checks
	c.ctrlActs += ctrlActs
	c.mitActs += mitActs
	c.censusDemand += censusDemand
	c.censusExtra += censusExtra
	c.censusTable += censusTable
	for _, v := range violations {
		if len(c.violations) >= c.cfg.MaxViolations {
			c.truncated++
			continue
		}
		c.violations = append(c.violations, v)
	}
	c.truncated += truncated
}

// --- mapping checks ----------------------------------------------------------

// OnMap is called by the memory controller for every translated access with
// the program line and the physical line the mapper produced (before any
// mitigation row indirection). One in SampleEvery calls runs the spot checks.
func (c *Checker) OnMap(line, phys uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if c.tick%uint64(c.cfg.SampleEvery) != 0 {
		return
	}
	c.checkMapping(line, phys)
}

func (c *Checker) checkMapping(line, phys uint64) {
	c.checks++
	total := c.geo.TotalLines()
	if total > 0 && phys >= total {
		c.violate("bijection", "%s: Map(%#x) = %#x escapes [0, %#x)", c.name(), line, phys, total)
		return
	}
	if c.inv != nil {
		if back := c.inv.Unmap(phys); back != line {
			c.violate("bijection", "%s: Unmap(Map(%#x)) = %#x", c.name(), line, back)
		}
		// A synthetic probe covers address space the workload never touches.
		c.probe = c.probe*0x9e37_79b9_7f4a_7c15 + 0xbf58_476d_1ce4_e5b9
		if total > 0 {
			x := c.probe & (total - 1)
			if back := c.inv.Unmap(c.mapper.Map(x)); back != x {
				c.violate("bijection", "%s: Unmap(Map(%#x)) = %#x (synthetic probe)", c.name(), x, back)
			}
			if c.full != nil {
				c.checkBatchAgreement(line, x)
			}
		}
	}
	c.windowInsert(line, phys)
}

// checkBatchAgreement spot-checks the batched translation surface against
// the scalar one: MapBatch/UnmapBatch must agree with Map/Unmap element for
// element under the mapping state at call time (DESIGN.md §12). The probe
// runs synchronously inside the access path, so no remap episode can slip
// between the batch and scalar evaluations. Callers must hold c.mu.
func (c *Checker) checkBatchAgreement(line, x uint64) {
	in := [2]uint64{line, x}
	var fwd, back [2]uint64
	c.full.MapBatch(in[:], fwd[:])
	for i, l := range in {
		if want := c.mapper.Map(l); fwd[i] != want {
			c.violate("batch", "%s: MapBatch(%#x) = %#x, scalar Map = %#x", c.name(), l, fwd[i], want)
		}
	}
	c.full.UnmapBatch(fwd[:], back[:])
	for i, l := range in {
		if want := c.inv.Unmap(fwd[i]); back[i] != want {
			c.violate("batch", "%s: UnmapBatch(%#x) = %#x, scalar Unmap = %#x", c.name(), fwd[i], back[i], want)
		}
		if back[i] != l {
			c.violate("batch", "%s: batch round trip lost line %#x (got %#x)", c.name(), l, back[i])
		}
	}
}

func (c *Checker) name() string {
	if c.mapper == nil {
		return "<no mapper>"
	}
	return c.mapper.Name()
}

// windowInsert records a sampled (line, phys) pair and flags two distinct
// lines claiming the same physical index within the window.
func (c *Checker) windowInsert(line, phys uint64) {
	if prev, ok := c.winMap[phys]; ok {
		if prev != line {
			c.violate("collision", "%s: lines %#x and %#x both map to physical line %#x", c.name(), prev, line, phys)
		}
		return
	}
	if len(c.winMap) >= len(c.winRing) {
		delete(c.winMap, c.winRing[c.winNext])
	}
	c.winRing[c.winNext] = phys
	c.winNext = (c.winNext + 1) % len(c.winRing)
	c.winMap[phys] = line
}

// flushWindow empties the collision window; called when a dynamic mapper
// remaps, since two lines can legitimately occupy one physical index at
// different times.
func (c *Checker) flushWindow() {
	clear(c.winMap)
}

// --- conservation checks -----------------------------------------------------

// OnControllerACT is called by the memory controller for every demand access
// that activated a row.
func (c *Checker) OnControllerACT() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ctrlActs++
	c.mu.Unlock()
}

// OnCensusACT is called by the DRAM module for every activation it records
// in the per-row census (demand or mitigation/remap traffic).
func (c *Checker) OnCensusACT(demand bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if demand {
		c.censusDemand++
	} else {
		c.censusExtra++
	}
	c.mu.Unlock()
}

// OnWindowClose is called by the DRAM module when it finalizes a refresh
// window, with the total activations held in the census table. Cumulative
// table contents must equal the cumulative offered activations — catching
// census bugs that lose or duplicate rows.
func (c *Checker) OnWindowClose(tableActs uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks++
	c.censusTable += tableActs
	if offered := c.censusDemand + c.censusExtra; c.censusTable != offered {
		c.violate("conservation", "census tables held %d ACTs at window close, %d were offered (%d demand + %d extra)",
			c.censusTable, offered, c.censusDemand, c.censusExtra)
	}
}

// OnRunEnd is called once after dram.Module.Finalize with the run's final
// activation totals; it closes the conservation ledger.
func (c *Checker) OnRunEnd(demandActs, extraActs uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks++
	if c.ctrlActs != demandActs {
		c.violate("conservation", "controller issued %d demand ACTs, DRAM accounted %d", c.ctrlActs, demandActs)
	}
	if c.mitActs != c.ctrlActs {
		c.violate("conservation", "mitigation observed %d ACTs, controller issued %d", c.mitActs, c.ctrlActs)
	}
	if c.censusDemand != demandActs {
		c.violate("conservation", "census recorded %d demand ACTs, stats report %d", c.censusDemand, demandActs)
	}
	if c.censusExtra != extraActs {
		c.violate("conservation", "census recorded %d extra ACTs, stats report %d", c.censusExtra, extraActs)
	}
	if offered := c.censusDemand + c.censusExtra; c.censusTable != offered {
		c.violate("conservation", "census tables held %d ACTs over the run, %d were offered", c.censusTable, offered)
	}
}

// --- timing checks -----------------------------------------------------------

func (c *Checker) bank(i int) *bankClock {
	for len(c.banks) <= i {
		c.banks = append(c.banks, bankClock{})
	}
	return &c.banks[i]
}

// OnBankACT is called by the DRAM module for every demand activation with
// the bank index, the activation start time, and the configured tRC. Demand
// activations of one bank must be spaced by at least tRC and never move
// backwards in time.
func (c *Checker) OnBankACT(bank int, actStart, trc float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bank(bank)
	c.checks++
	if b.acts > 0 && actStart < b.lastAct+trc {
		c.violate("timing", "bank %d ACT at %g ns violates tRC=%g after ACT at %g ns", bank, actStart, trc, b.lastAct)
	}
	b.lastAct = actStart
	b.acts++
}

// OnRefresh is called by the DRAM module for every periodic refresh it
// retires, with the bank index, the refresh's scheduled time, and tREFI.
// Per-bank refresh times must advance by exactly tREFI.
func (c *Checker) OnRefresh(bank int, at, trefi float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bank(bank)
	c.checks++
	if b.refreshes > 0 {
		if at <= b.lastRefresh {
			c.violate("refresh", "bank %d refresh at %g ns not after previous at %g ns", bank, at, b.lastRefresh)
		} else if trefi > 0 && at != b.lastRefresh+trefi {
			c.violate("refresh", "bank %d refresh at %g ns, want %g (tREFI=%g)", bank, at, b.lastRefresh+trefi, trefi)
		}
	}
	b.lastRefresh = at
	b.refreshes++
}

// --- Rubix-D epoch checks ----------------------------------------------------

// OnRemapStep implements core.RemapObserver: it is called by a dynamic
// mapper after every remap episode with the circuit index, the advanced
// pointer, and whether the episode completed an epoch. The collision window
// is flushed (the mapping changed); completed epochs run the completeness
// check, and a sampled subset of mid-sweep steps re-verifies the group
// round-trip around the pointer.
func (c *Checker) OnRemapStep(group int, ptr uint64, rolled bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushWindow()
	if c.gt == nil {
		return
	}
	if rolled {
		c.checkEpoch(group)
		return
	}
	if ptr&0x3f == 0 {
		c.checkGroupRoundTrip(group, ptr)
	}
}

// checkEpoch verifies Rubix-D epoch completeness. Immediately after a roll
// the pointer is zero, so translate must be the pure XOR with the folded
// key: T(x) == T(0) ^ x for every row address of the group. That single
// linearity property implies the strong claim — every gang resolved under
// exactly one key, none lost or duplicated — because x -> K ^ x is a
// bijection. Domains up to 2^16 row addresses are checked exhaustively;
// larger ones use a deterministic odd-multiplier sample.
func (c *Checker) checkEpoch(group int) {
	c.checks++
	bits := c.gt.RowAddrBits()
	mask := (uint64(1) << bits) - 1
	base := c.gt.TranslateGroup(group, 0)
	verify := func(x uint64) bool {
		got := c.gt.TranslateGroup(group, x)
		if got != base^x {
			c.violate("epoch", "group %d after epoch roll: translate(%#x) = %#x, want %#x (not a single-key XOR)",
				group, x, got, base^x)
			return false
		}
		if back := c.gt.UntranslateGroup(group, got); back != x {
			c.violate("epoch", "group %d after epoch roll: untranslate(translate(%#x)) = %#x", group, x, back)
			return false
		}
		return true
	}
	if bits <= 16 {
		for x := uint64(0); x <= mask; x++ {
			if !verify(x) {
				return
			}
		}
		return
	}
	for i := uint64(0); i < 1<<12; i++ {
		if !verify(i * 0x9e37_79b9_7f4a_7c15 & mask) {
			return
		}
	}
}

// checkGroupRoundTrip spot-checks the mid-sweep translation: row addresses
// around the pointer (the region where the two-key translation is most
// delicate) must round-trip through the group's circuit.
func (c *Checker) checkGroupRoundTrip(group int, ptr uint64) {
	c.checks++
	mask := (uint64(1) << c.gt.RowAddrBits()) - 1
	for _, x := range [...]uint64{ptr & mask, (ptr - 1) & mask, (ptr + 1) & mask, 0, mask} {
		y := c.gt.TranslateGroup(group, x)
		if back := c.gt.UntranslateGroup(group, y); back != x {
			c.violate("epoch", "group %d at ptr %#x: untranslate(translate(%#x)) = %#x", group, ptr, x, back)
			return
		}
	}
}

// --- mitigation wrapping -----------------------------------------------------

// Mitigator mirrors mitigation.Mitigator structurally (builtin-typed methods
// only) so the checker can wrap a scheme without importing that package.
type Mitigator interface {
	Name() string
	TranslateRow(row uint64) uint64
	ReleaseTime(row uint64, arrival float64) float64
	OnACT(row uint64, actStart float64)
	ResetWindow()
	Mitigations() uint64
}

// CheckedMitigator forwards every call to the wrapped scheme while counting
// the activations it observes (for conservation) and asserting release-time
// causality.
type CheckedMitigator struct {
	inner Mitigator
	chk   *Checker
}

// WrapMitigator wraps m so the checker observes its activation feed. The
// checker must be non-nil; callers keep the unwrapped scheme when checking
// is off, preserving the zero-cost contract.
func WrapMitigator(c *Checker, m Mitigator) *CheckedMitigator {
	return &CheckedMitigator{inner: m, chk: c}
}

// Name forwards to the wrapped scheme.
func (w *CheckedMitigator) Name() string { return w.inner.Name() }

// TranslateRow forwards to the wrapped scheme.
func (w *CheckedMitigator) TranslateRow(row uint64) uint64 { return w.inner.TranslateRow(row) }

// ReleaseTime forwards to the wrapped scheme and asserts the grant is not
// before the request's arrival (an acausal grant would let a throttled
// activation start in the past).
func (w *CheckedMitigator) ReleaseTime(row uint64, arrival float64) float64 {
	t := w.inner.ReleaseTime(row, arrival)
	w.chk.noteReleaseTime(w.inner.Name(), row, arrival, t)
	return t
}

// noteReleaseTime records one causality check (and its violation, if the
// grant precedes the arrival).
func (c *Checker) noteReleaseTime(name string, row uint64, arrival, t float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks++
	if t < arrival {
		c.violate("causality", "%s: ReleaseTime(%#x, %g) = %g is before arrival", name, row, arrival, t)
	}
}

// OnACT counts the activation and forwards it.
func (w *CheckedMitigator) OnACT(row uint64, actStart float64) {
	w.chk.noteMitACT()
	w.inner.OnACT(row, actStart)
}

// noteMitACT counts one mitigation-observed activation.
func (c *Checker) noteMitACT() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.mitActs++
	c.mu.Unlock()
}

// ResetWindow forwards to the wrapped scheme.
func (w *CheckedMitigator) ResetWindow() { w.inner.ResetWindow() }

// Mitigations forwards to the wrapped scheme.
func (w *CheckedMitigator) Mitigations() uint64 { return w.inner.Mitigations() }

// --- reporting ---------------------------------------------------------------

// Checks reports how many invariant checks ran.
func (c *Checker) Checks() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks
}

// Violations returns a copy of the recorded violations.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Err returns nil when every check passed, or an error joining the recorded
// violations.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	errs := make([]error, 0, len(c.violations)+1)
	for _, v := range c.violations {
		errs = append(errs, errors.New(v.String()))
	}
	if c.truncated > 0 {
		errs = append(errs, fmt.Errorf("... and %d further violations over the cap", c.truncated))
	}
	return errors.Join(errs...)
}
