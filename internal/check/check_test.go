package check

import (
	"strings"
	"sync"
	"testing"

	"rubix/internal/core"
	"rubix/internal/geom"
	"rubix/internal/mapping"
)

func smallGeom(t testing.TB) geom.Geometry {
	t.Helper()
	g, err := geom.New(1, 1, 2, 64, 512, 64) // 1024 lines, 8 lines/row
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tinyRubixDGeom is small enough that one epoch is 8 remap episodes.
func tinyRubixDGeom(t testing.TB) geom.Geometry {
	t.Helper()
	g, err := geom.New(1, 1, 1, 8, 256, 64) // 32 lines, 4 lines/row, 3 row-addr bits
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNilCheckerHooksAreSafe(t *testing.T) {
	var c *Checker
	c.AttachMapper(geom.Geometry{}, nil)
	c.AttachFullMapper(geom.Geometry{}, nil)
	c.OnMap(1, 2)
	c.OnControllerACT()
	c.OnCensusACT(true)
	c.OnWindowClose(3)
	c.OnBankACT(0, 1, 45)
	c.OnRefresh(0, 7800, 7800)
	c.OnRemapStep(0, 1, false)
	c.OnRunEnd(0, 0)
	if c.Err() != nil || c.Checks() != 0 || c.Violations() != nil {
		t.Fatal("nil checker must be inert")
	}
}

// badInverter round-trips wrongly: Unmap is off by one. Its batch surface
// is a faithful scalar loop, so only the bijection check fires on it.
type badInverter struct{}

func (badInverter) Name() string             { return "BadInverter" }
func (badInverter) Map(line uint64) uint64   { return line }
func (badInverter) Unmap(phys uint64) uint64 { return phys + 1 }
func (m badInverter) MapBatch(lines, phys []uint64) {
	for i, l := range lines {
		phys[i] = m.Map(l)
	}
}
func (m badInverter) UnmapBatch(phys, lines []uint64) {
	for i, p := range phys {
		lines[i] = m.Unmap(p)
	}
}

func TestBijectionRoundTripViolation(t *testing.T) {
	c := New(Config{SampleEvery: 1})
	c.AttachFullMapper(smallGeom(t), badInverter{})
	c.OnMap(5, 5)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "bijection") {
		t.Fatalf("want bijection violation, got %v", err)
	}
}

// divergingBatch has a correct scalar surface (identity, self-inverse) but a
// MapBatch that disagrees with Map on every element — the failure class the
// batch≡scalar spot check exists for.
type divergingBatch struct{}

func (divergingBatch) Name() string             { return "DivergingBatch" }
func (divergingBatch) Map(line uint64) uint64   { return line }
func (divergingBatch) Unmap(phys uint64) uint64 { return phys }
func (divergingBatch) MapBatch(lines, phys []uint64) {
	for i, l := range lines {
		phys[i] = l ^ 1
	}
}
func (divergingBatch) UnmapBatch(phys, lines []uint64) {
	copy(lines, phys)
}

func TestBatchScalarDivergenceViolation(t *testing.T) {
	c := New(Config{SampleEvery: 1})
	c.AttachFullMapper(smallGeom(t), divergingBatch{})
	c.OnMap(5, 5)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("want batch violation, got %v", err)
	}
}

// escapingMapper maps outside [0, TotalLines()).
type escapingMapper struct{ total uint64 }

func (m escapingMapper) Name() string           { return "Escaping" }
func (m escapingMapper) Map(line uint64) uint64 { return m.total + line }

func TestBijectionRangeViolation(t *testing.T) {
	g := smallGeom(t)
	c := New(Config{SampleEvery: 1})
	c.AttachMapper(g, escapingMapper{total: g.TotalLines()})
	c.OnMap(0, g.TotalLines())
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("want range violation, got %v", err)
	}
}

// constantMapper collides everything onto physical line 0. It deliberately
// does not implement Inverter, so only the collision window can catch it.
type constantMapper struct{}

func (constantMapper) Name() string           { return "Constant" }
func (constantMapper) Map(line uint64) uint64 { return 0 }

func TestCollisionWindowDetectsDuplicatePhys(t *testing.T) {
	c := New(Config{SampleEvery: 1})
	c.AttachMapper(smallGeom(t), constantMapper{})
	c.OnMap(1, 0)
	c.OnMap(2, 0)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision violation, got %v", err)
	}
}

func TestCollisionWindowAllowsRepeatedLine(t *testing.T) {
	c := New(Config{SampleEvery: 1})
	c.AttachMapper(smallGeom(t), constantMapper{})
	c.OnMap(1, 0)
	c.OnMap(1, 0) // same line again: not a collision
	if err := c.Err(); err != nil {
		t.Fatalf("repeated identical mapping flagged: %v", err)
	}
}

func TestRemapStepFlushesCollisionWindow(t *testing.T) {
	c := New(Config{SampleEvery: 1})
	c.AttachMapper(smallGeom(t), constantMapper{})
	c.OnMap(1, 0)
	c.OnRemapStep(0, 1, false) // dynamic mapper moved rows: window resets
	c.OnMap(2, 0)
	if err := c.Err(); err != nil {
		t.Fatalf("cross-remap collision flagged: %v", err)
	}
}

func TestConservationClean(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 10; i++ {
		c.OnControllerACT()
		c.mitActs++ // as CheckedMitigator.OnACT would
		c.OnCensusACT(true)
	}
	c.OnCensusACT(false)
	c.OnWindowClose(11)
	c.OnRunEnd(10, 1)
	if err := c.Err(); err != nil {
		t.Fatalf("clean ledger flagged: %v", err)
	}
}

func TestConservationMismatch(t *testing.T) {
	c := New(Config{})
	c.OnControllerACT()
	c.OnControllerACT()
	c.mitActs = 2
	c.OnCensusACT(true) // census lost one ACT
	c.OnRunEnd(2, 0)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("want conservation violation, got %v", err)
	}
}

func TestWindowCloseMismatch(t *testing.T) {
	c := New(Config{})
	c.OnCensusACT(true)
	c.OnCensusACT(true)
	c.OnWindowClose(1) // table dropped an ACT
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("want conservation violation, got %v", err)
	}
}

func TestRefreshSpacing(t *testing.T) {
	c := New(Config{})
	c.OnRefresh(0, 7800, 7800)
	c.OnRefresh(0, 15600, 7800)
	if err := c.Err(); err != nil {
		t.Fatalf("exact tREFI spacing flagged: %v", err)
	}
	c.OnRefresh(0, 15000, 7800) // went backwards
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "refresh") {
		t.Fatalf("want refresh violation, got %v", err)
	}
}

func TestBankACTRespectsTRC(t *testing.T) {
	c := New(Config{})
	c.OnBankACT(0, 0, 45)
	c.OnBankACT(0, 45, 45)
	c.OnBankACT(1, 50, 45) // other bank: independent clock
	if err := c.Err(); err != nil {
		t.Fatalf("tRC-spaced ACTs flagged: %v", err)
	}
	c.OnBankACT(0, 80, 45) // 45+45 = 90 > 80
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "tRC") {
		t.Fatalf("want tRC violation, got %v", err)
	}
}

func TestEpochCompletenessCleanOnRealRubixD(t *testing.T) {
	g := tinyRubixDGeom(t)
	d, err := core.NewRubixD(g, core.RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 5, NoStagger: true})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{SampleEvery: 1})
	c.AttachFullMapper(g, d)
	d.SetRemapObserver(c)
	for i := 0; i < 8; i++ { // 3 row-addr bits: 8 episodes complete the epoch
		d.NoteActivation(0)
	}
	if d.Epochs() != 1 {
		t.Fatalf("expected exactly one epoch, got %d", d.Epochs())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("real Rubix-D epoch flagged: %v", err)
	}
	if c.Checks() == 0 {
		t.Fatal("epoch check did not run")
	}
}

// brokenTranslator is not XOR-linear: T(x) = x|1 sends 0 and 1 to the same
// image, losing a gang.
type brokenTranslator struct{}

func (brokenTranslator) Name() string                                      { return "Broken" }
func (brokenTranslator) Map(line uint64) uint64                            { return line }
func (brokenTranslator) Groups() int                                       { return 1 }
func (brokenTranslator) RowAddrBits() uint                                 { return 3 }
func (brokenTranslator) TranslateGroup(group int, rowAddr uint64) uint64   { return rowAddr | 1 }
func (brokenTranslator) UntranslateGroup(group int, rowAddr uint64) uint64 { return rowAddr }

func TestEpochCompletenessViolation(t *testing.T) {
	c := New(Config{})
	c.AttachMapper(smallGeom(t), brokenTranslator{})
	c.OnRemapStep(0, 0, true)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("want epoch violation, got %v", err)
	}
}

// fakeMit is a minimal Mitigator whose ReleaseTime can be acausal.
type fakeMit struct {
	acts    uint64
	acausal bool
}

func (m *fakeMit) Name() string                   { return "Fake" }
func (m *fakeMit) TranslateRow(row uint64) uint64 { return row }
func (m *fakeMit) ReleaseTime(row uint64, arrival float64) float64 {
	if m.acausal {
		return arrival - 1
	}
	return arrival
}
func (m *fakeMit) OnACT(row uint64, actStart float64) { m.acts++ }
func (m *fakeMit) ResetWindow()                       {}
func (m *fakeMit) Mitigations() uint64                { return 0 }

func TestWrapMitigatorCountsAndForwards(t *testing.T) {
	c := New(Config{})
	inner := &fakeMit{}
	w := WrapMitigator(c, inner)
	w.OnACT(1, 10)
	w.OnACT(2, 60)
	if inner.acts != 2 {
		t.Fatalf("inner saw %d ACTs, want 2", inner.acts)
	}
	if w.ReleaseTime(1, 5) != 5 {
		t.Fatal("ReleaseTime not forwarded")
	}
	c.OnControllerACT()
	c.OnControllerACT()
	c.OnCensusACT(true)
	c.OnCensusACT(true)
	c.OnWindowClose(2) // Finalize always closes the last window
	c.OnRunEnd(2, 0)
	if err := c.Err(); err != nil {
		t.Fatalf("wrapped counting broke conservation: %v", err)
	}
}

func TestWrapMitigatorCausality(t *testing.T) {
	c := New(Config{})
	w := WrapMitigator(c, &fakeMit{acausal: true})
	w.ReleaseTime(1, 100)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "causality") {
		t.Fatalf("want causality violation, got %v", err)
	}
}

func TestMaxViolationsCap(t *testing.T) {
	c := New(Config{SampleEvery: 1, MaxViolations: 2})
	c.AttachFullMapper(smallGeom(t), badInverter{})
	for i := uint64(0); i < 10; i++ {
		c.OnMap(i, i)
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("violation list length %d, want capped at 2", got)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "further violations") {
		t.Fatalf("truncation note missing: %v", err)
	}
}

func TestCheckerAcceptsRealMappers(t *testing.T) {
	g := smallGeom(t)
	cl, err := mapping.NewCoffeeLake(g)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{SampleEvery: 1})
	c.AttachFullMapper(g, cl)
	for line := uint64(0); line < g.TotalLines(); line++ {
		c.OnMap(line, cl.Map(line))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("CoffeeLake flagged: %v", err)
	}
	if c.Checks() == 0 {
		t.Fatal("no checks ran")
	}
}

// inertMit is a stateless causal mitigator, safe to share across goroutines.
type inertMit struct{ acausal bool }

func (inertMit) Name() string                   { return "Inert" }
func (inertMit) TranslateRow(row uint64) uint64 { return row }
func (m inertMit) ReleaseTime(row uint64, arrival float64) float64 {
	if m.acausal {
		return arrival - 1
	}
	return arrival
}
func (inertMit) OnACT(row uint64, actStart float64) {}
func (inertMit) ResetWindow()                       {}
func (inertMit) Mitigations() uint64                { return 0 }

// TestCheckerConcurrentHooks hammers every hook and reporting method from
// many goroutines at once, the way the parallel simulator's shards do. Run
// under -race this fails on any unguarded Checker field; without -race it
// still fails if lost counter updates break conservation at OnRunEnd.
func TestCheckerConcurrentHooks(t *testing.T) {
	const workers = 8
	const perWorker = 200

	g := smallGeom(t)
	cl, err := mapping.NewCoffeeLake(g)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{SampleEvery: 1, WindowLines: 64})
	c.AttachFullMapper(g, cl)
	w := WrapMitigator(c, inertMit{})

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			base := uint64(id * perWorker)
			trc := 45.0
			for k := 0; k < perWorker; k++ {
				line := (base + uint64(k)) % g.TotalLines()
				c.OnMap(line, cl.Map(line))
				c.OnControllerACT()
				w.OnACT(line, float64(k)*trc)
				c.OnCensusACT(true)
				// Per-worker bank with tRC-spaced activations: no timing
				// violations regardless of interleaving across workers.
				c.OnBankACT(id, float64(k)*trc, trc)
				if k%64 == 63 {
					c.OnRefresh(id, float64(k+1)*trc, 64*trc)
				}
				// Readers racing the writers exercise the reporting paths.
				if k%32 == 0 {
					_ = c.Checks()
					_ = c.Violations()
					_ = c.Err()
				}
			}
		}(i)
	}
	wg.Wait()

	const total = workers * perWorker
	c.OnWindowClose(total) // reconcile census tables with offered ACTs
	c.OnRunEnd(total, 0)
	if err := c.Err(); err != nil {
		t.Fatalf("concurrent hooks broke an invariant (lost update?): %v", err)
	}
	if c.Checks() == 0 {
		t.Fatal("no checks ran")
	}
}

// TestCheckerConcurrentViolations hammers the violation-recording path (the
// mutex protects the violations slice and the truncation counter too).
func TestCheckerConcurrentViolations(t *testing.T) {
	const workers = 8
	const perWorker = 100

	c := New(Config{MaxViolations: 5})
	w := WrapMitigator(c, inertMit{acausal: true})

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				w.ReleaseTime(uint64(k), 100)
				_ = c.Violations()
			}
		}()
	}
	wg.Wait()

	if got := len(c.Violations()); got != 5 {
		t.Fatalf("violation list length %d, want capped at 5", got)
	}
	if got := c.Checks(); got != workers*perWorker {
		t.Fatalf("Checks() = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "further violations") {
		t.Fatalf("truncation note missing: %v", err)
	}
}
