package check

import (
	"fmt"
	"math"

	"rubix/internal/core"
	"rubix/internal/geom"
	"rubix/internal/kcipher"
)

// RunStats is the structural-counter fingerprint of a finished run that the
// metamorphic relations compare. Package sim extracts it from a Result.
type RunStats struct {
	Accesses   uint64
	RowHits    uint64
	DemandActs uint64
	ExtraActs  uint64
	Hot64      int // rows whose per-window ACT count ever exceeded 64
	Hot512     int
}

// SeedRunner runs one full simulation at the given seed.
type SeedRunner func(seed uint64) (RunStats, error)

// ScaleRunner runs one full simulation at the given instructions per core.
type ScaleRunner func(instrPerCore uint64) (RunStats, error)

// Tolerance bounds how far metamorphic pairs may drift. Zero fields select
// the defaults, which were calibrated against the committed workloads at the
// smoke-sweep scale (see DESIGN §10).
type Tolerance struct {
	// Rel bounds relative drift of access/activation totals.
	Rel float64
	// HitRateAbs bounds absolute drift of the row-buffer hit rate.
	HitRateAbs float64
	// HotRel bounds relative drift of hot-row counts once either side
	// exceeds HotSlack.
	HotRel float64
	// HotSlack is the absolute hot-row count below which HotRel is not
	// applied (small counts are dominated by threshold effects).
	HotSlack float64
}

func (t Tolerance) withDefaults() Tolerance {
	if t.Rel == 0 {
		t.Rel = 0.05
	}
	if t.HitRateAbs == 0 {
		t.HitRateAbs = 0.05
	}
	if t.HotRel == 0 {
		t.HotRel = 0.35
	}
	if t.HotSlack == 0 {
		t.HotSlack = 8
	}
	return t
}

func relDrift(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

func (s RunStats) hitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// compare checks two runs' fingerprints under tol, after scaling the second
// by factor (1 for same-scale comparisons). label names the relation in
// error text.
func compare(label string, a, b RunStats, factor float64, tol Tolerance) error {
	type pair struct {
		name string
		x, y float64
	}
	counts := []pair{
		{"accesses", float64(a.Accesses), factor * float64(b.Accesses)},
		{"demand ACTs", float64(a.DemandActs), factor * float64(b.DemandActs)},
	}
	for _, p := range counts {
		if d := relDrift(p.x, p.y); d > tol.Rel {
			return fmt.Errorf("%s: %s drift %.3f exceeds %.3f (%.0f vs %.0f)", label, p.name, d, tol.Rel, p.x, p.y)
		}
	}
	if d := math.Abs(a.hitRate() - b.hitRate()); d > tol.HitRateAbs {
		return fmt.Errorf("%s: row-hit rate drift %.3f exceeds %.3f (%.3f vs %.3f)", label, d, tol.HitRateAbs, a.hitRate(), b.hitRate())
	}
	hots := []pair{
		{"hot-64 rows", float64(a.Hot64), float64(b.Hot64)},
		{"hot-512 rows", float64(a.Hot512), float64(b.Hot512)},
	}
	for _, p := range hots {
		if p.x <= tol.HotSlack && p.y <= tol.HotSlack {
			continue
		}
		if d := relDrift(p.x, p.y); d > tol.HotRel {
			return fmt.Errorf("%s: %s drift %.3f exceeds %.3f (%.0f vs %.0f)", label, p.name, d, tol.HotRel, p.x, p.y)
		}
	}
	return nil
}

// SeedInvariance verifies that a deterministic mapping's structural counters
// do not depend on the RNG seed: the seed perturbs core interleaving but not
// what the workload touches, so totals, the hit/miss mix, and hot-row counts
// must agree within tol across the given seeds. Call it only for mappings
// whose layout is not seed-keyed (Rubix mappings derive their cipher/XOR
// keys from the seed, which legitimately moves rows around).
func SeedInvariance(run SeedRunner, seeds []uint64, tol Tolerance) error {
	if len(seeds) < 2 {
		return fmt.Errorf("check: SeedInvariance needs at least 2 seeds, got %d", len(seeds))
	}
	tol = tol.withDefaults()
	base, err := run(seeds[0])
	if err != nil {
		return fmt.Errorf("check: seed %d run: %w", seeds[0], err)
	}
	for _, s := range seeds[1:] {
		st, err := run(s)
		if err != nil {
			return fmt.Errorf("check: seed %d run: %w", s, err)
		}
		if err := compare(fmt.Sprintf("seed-invariance (seed %d vs %d)", seeds[0], s), base, st, 1, tol); err != nil {
			return err
		}
	}
	return nil
}

// ScaleLinearity verifies that structural counters grow linearly in
// InstrPerCore: a run at baseInstr*factor must look like factor stacked
// copies of the base run, within tol. Sub-linear activations (better
// row-buffer amortization at longer runs) are within tolerance by
// construction; gross violations indicate state leaking across what should
// be a memoryless steady state.
func ScaleLinearity(run ScaleRunner, baseInstr uint64, factor int, tol Tolerance) error {
	if factor < 2 {
		return fmt.Errorf("check: ScaleLinearity needs factor >= 2, got %d", factor)
	}
	tol = tol.withDefaults()
	base, err := run(baseInstr)
	if err != nil {
		return fmt.Errorf("check: base run (%d instr): %w", baseInstr, err)
	}
	big, err := run(baseInstr * uint64(factor))
	if err != nil {
		return fmt.Errorf("check: scaled run (%d instr): %w", baseInstr*uint64(factor), err)
	}
	return compare(fmt.Sprintf("scale-linearity (×%d)", factor), big, base, float64(factor), tol)
}

// CipherEquivalence verifies the Rubix-S degenerate case: at gang size 1 the
// mapping must be exactly the K-Cipher permutation over the full line-address
// width, and composing the geometry decode with its encode must be the
// identity on the mapped output. Domains up to 2^20 lines are checked
// exhaustively; larger ones deterministically sampled.
func CipherEquivalence(g geom.Geometry, seed uint64, samples int) error {
	key := kcipher.KeyFromSeed(seed)
	m, err := core.NewRubixS(g, 1, key)
	if err != nil {
		return fmt.Errorf("check: CipherEquivalence: %w", err)
	}
	c, err := kcipher.New(g.LineBits(), key)
	if err != nil {
		return fmt.Errorf("check: CipherEquivalence: %w", err)
	}
	if samples <= 0 {
		samples = 1 << 16
	}
	total := g.TotalLines()
	verify := func(x uint64) error {
		phys := m.Map(x)
		if enc := c.Encrypt(x); phys != enc {
			return fmt.Errorf("check: Rubix-S(GS1).Map(%#x) = %#x, raw cipher gives %#x", x, phys, enc)
		}
		if back := m.Unmap(phys); back != x {
			return fmt.Errorf("check: Rubix-S(GS1).Unmap(Map(%#x)) = %#x", x, back)
		}
		if re := g.Encode(g.Decode(phys)); re != phys {
			return fmt.Errorf("check: geometry Encode(Decode(%#x)) = %#x", phys, re)
		}
		return nil
	}
	if total <= 1<<20 {
		for x := uint64(0); x < total; x++ {
			if err := verify(x); err != nil {
				return err
			}
		}
		return nil
	}
	mask := total - 1
	for i := 0; i < samples; i++ {
		if err := verify(uint64(i) * 0x9e37_79b9_7f4a_7c15 & mask); err != nil {
			return err
		}
	}
	return nil
}
