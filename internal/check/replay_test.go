package check

import (
	"strings"
	"testing"
)

func TestSeedInvarianceAcceptsStableRunner(t *testing.T) {
	run := func(seed uint64) (RunStats, error) {
		// Small seed-dependent jitter, well inside the default tolerances.
		return RunStats{Accesses: 100_000 + seed, RowHits: 60_000, DemandActs: 40_000, Hot64: 12}, nil
	}
	if err := SeedInvariance(run, []uint64{1, 2, 3}, Tolerance{}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedInvarianceRejectsDrift(t *testing.T) {
	run := func(seed uint64) (RunStats, error) {
		return RunStats{Accesses: 100_000 * seed, RowHits: 60_000, DemandActs: 40_000}, nil
	}
	err := SeedInvariance(run, []uint64{1, 2}, Tolerance{})
	if err == nil || !strings.Contains(err.Error(), "accesses") {
		t.Fatalf("want accesses drift, got %v", err)
	}
}

func TestSeedInvarianceRejectsHitRateDrift(t *testing.T) {
	run := func(seed uint64) (RunStats, error) {
		s := RunStats{Accesses: 100_000, DemandActs: 40_000}
		s.RowHits = 60_000
		if seed != 1 {
			s.RowHits = 30_000
		}
		return s, nil
	}
	err := SeedInvariance(run, []uint64{1, 2}, Tolerance{})
	if err == nil || !strings.Contains(err.Error(), "hit rate") {
		t.Fatalf("want hit-rate drift, got %v", err)
	}
}

func TestSeedInvarianceNeedsTwoSeeds(t *testing.T) {
	run := func(uint64) (RunStats, error) { return RunStats{}, nil }
	if err := SeedInvariance(run, []uint64{1}, Tolerance{}); err == nil {
		t.Fatal("single seed accepted")
	}
}

func TestScaleLinearityAcceptsLinearRunner(t *testing.T) {
	run := func(instr uint64) (RunStats, error) {
		return RunStats{Accesses: instr / 10, RowHits: instr / 20, DemandActs: instr / 40}, nil
	}
	if err := ScaleLinearity(run, 100_000, 4, Tolerance{}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleLinearityRejectsSuperlinear(t *testing.T) {
	run := func(instr uint64) (RunStats, error) {
		// Activations grow quadratically: state leaking across the run.
		return RunStats{Accesses: instr / 10, DemandActs: instr * instr / 1_000_000}, nil
	}
	err := ScaleLinearity(run, 100_000, 4, Tolerance{})
	if err == nil || !strings.Contains(err.Error(), "ACTs") {
		t.Fatalf("want ACT drift, got %v", err)
	}
}

func TestHotRowSlackIgnoresSmallCounts(t *testing.T) {
	run := func(seed uint64) (RunStats, error) {
		s := RunStats{Accesses: 100_000, RowHits: 50_000, DemandActs: 50_000}
		s.Hot64 = int(seed) // 1 vs 2: 100% relative drift, but tiny counts
		return s, nil
	}
	if err := SeedInvariance(run, []uint64{1, 2}, Tolerance{}); err != nil {
		t.Fatalf("sub-slack hot-row drift flagged: %v", err)
	}
}

func TestCipherEquivalenceSmallGeometry(t *testing.T) {
	g := smallGeom(t) // 1024 lines: exhaustive
	if err := CipherEquivalence(g, 42, 0); err != nil {
		t.Fatal(err)
	}
}
