package core

import (
	"testing"

	"rubix/internal/geom"
	"rubix/internal/kcipher"
)

// sampleLines draws a deterministic golden-ratio-stride sample of the line
// space, the same pattern the mapping package's bijection tests use.
func sampleLines(g geom.Geometry, n int) []uint64 {
	mask := g.TotalLines() - 1
	lines := make([]uint64, n)
	for i := range lines {
		lines[i] = uint64(i) * 0x9e37_79b9_7f4a_7c15 & mask
	}
	return lines
}

// TestRubixSBatchMatchesScalar: MapBatch stages gang addresses through the
// cipher's batch ladder; the result must match the scalar path element for
// element at every gang size.
func TestRubixSBatchMatchesScalar(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, gs := range []int{1, 2, 4} {
		m, err := NewRubixS(g, gs, kcipher.KeyFromSeed(21))
		if err != nil {
			t.Fatal(err)
		}
		lines := sampleLines(g, 1<<12)
		phys := make([]uint64, len(lines))
		m.MapBatch(lines, phys)
		for i, line := range lines {
			if want := m.Map(line); phys[i] != want {
				t.Fatalf("GS%d: MapBatch[%d](%#x) = %#x, scalar = %#x", gs, i, line, phys[i], want)
			}
		}
		back := make([]uint64, len(phys))
		m.UnmapBatch(phys, back)
		for i := range phys {
			if back[i] != lines[i] {
				t.Fatalf("GS%d: UnmapBatch[%d] = %#x, want %#x", gs, i, back[i], lines[i])
			}
		}
	}
}

// TestStaticXORBatchMatchesScalar covers the Rubix-D ablation mapper.
func TestStaticXORBatchMatchesScalar(t *testing.T) {
	g := geom.DDR4_16GB()
	m, err := NewStaticXOR(g, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	lines := sampleLines(g, 1<<12)
	phys := make([]uint64, len(lines))
	m.MapBatch(lines, phys)
	for i, line := range lines {
		if want := m.Map(line); phys[i] != want {
			t.Fatalf("MapBatch[%d](%#x) = %#x, scalar = %#x", i, line, phys[i], want)
		}
	}
	back := make([]uint64, len(phys))
	m.UnmapBatch(phys, back)
	for i := range phys {
		if back[i] != lines[i] {
			t.Fatalf("UnmapBatch[%d] = %#x, want %#x", i, back[i], lines[i])
		}
	}
}

// TestRubixDBatchMatchesScalarQuiescent: with no remap episodes between the
// calls, MapBatch/UnmapBatch are exact scalar equivalents.
func TestRubixDBatchMatchesScalarQuiescent(t *testing.T) {
	g := geom.DDR4_16GB()
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	lines := sampleLines(g, 1<<12)
	phys := make([]uint64, len(lines))
	m.MapBatch(lines, phys)
	for i, line := range lines {
		if want := m.Map(line); phys[i] != want {
			t.Fatalf("MapBatch[%d](%#x) = %#x, scalar = %#x", i, line, phys[i], want)
		}
	}
	back := make([]uint64, len(phys))
	m.UnmapBatch(phys, back)
	for i := range phys {
		if back[i] != lines[i] {
			t.Fatalf("UnmapBatch[%d] = %#x, want %#x", i, back[i], lines[i])
		}
	}
}

// TestRubixDGenerationTracksRemaps: Generation must advance on every remap
// episode — swaps AND skips, because the pointer advance alone moves the
// translate() boundary — and hold still otherwise. This is the signal the
// memory controller's AccessBatch uses to invalidate pre-translations.
func TestRubixDGenerationTracksRemaps(t *testing.T) {
	g := geom.DDR4_16GB()
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	episodes := uint64(0)
	for i := uint64(0); i < 200; i++ {
		before := m.Generation()
		m.NoteActivation(i * 4096)
		episodes++
		if got := m.Generation(); got != before+1 {
			t.Fatalf("activation %d: generation %d -> %d, want +1 per episode at rate 1",
				i, before, got)
		}
	}
	if m.Generation() != episodes {
		t.Fatalf("generation %d, want %d", m.Generation(), episodes)
	}
	if m.Swaps()+m.Skips() != episodes {
		t.Fatalf("swaps %d + skips %d != %d episodes", m.Swaps(), m.Skips(), episodes)
	}

	// Rate 0: translation-only traffic must never move the generation.
	frozen, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		frozen.Map(i * 977)
		frozen.NoteActivation(i * 4096)
	}
	if frozen.Generation() != 0 {
		t.Fatal("generation moved without a remap episode")
	}
}

// TestRubixDBatchStaleAfterRemap pins the staleness contract down: a batch
// translated before a remap episode must disagree with the live mapping on
// at least one line of the remapped circuit, and re-translating after the
// generation bump restores agreement. A tiny geometry (1 Ki lines, 128 row
// addresses per circuit, translated exhaustively) makes the boundary cross
// a translated line within a handful of episodes.
func TestRubixDBatchStaleAfterRemap(t *testing.T) {
	g, err := geom.New(1, 1, 2, 64, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]uint64, g.TotalLines())
	for i := range lines {
		lines[i] = uint64(i)
	}
	before := make([]uint64, len(lines))
	m.MapBatch(lines, before)

	// Force remap episodes until the pre-translated batch goes stale.
	stale := false
	for i := uint64(0); i < 4096 && !stale; i++ {
		m.NoteActivation(lines[i%uint64(len(lines))])
		for j, line := range lines {
			if m.Map(line) != before[j] {
				stale = true
				break
			}
		}
	}
	if !stale {
		t.Fatal("thousands of remap episodes never invalidated a cached translation")
	}
	// Re-translation under the new generation restores exact agreement.
	after := make([]uint64, len(lines))
	m.MapBatch(lines, after)
	for j, line := range lines {
		if m.Map(line) != after[j] {
			t.Fatalf("re-translated batch entry %d still stale", j)
		}
	}
}

func BenchmarkRubixSMapBatch(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewRubixS(g, 4, kcipher.KeyFromSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	benchBatchMapper(b, g, m.MapBatch)
}

func BenchmarkRubixDMapBatch(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchBatchMapper(b, g, m.MapBatch)
}

func BenchmarkStaticXORMapBatch(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewStaticXOR(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchMapper(b, g, m.MapBatch)
}

func benchBatchMapper(b *testing.B, g geom.Geometry, mapBatch func(lines, phys []uint64)) {
	b.Helper()
	lines := sampleLines(g, 256)
	phys := make([]uint64, len(lines))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapBatch(lines, phys)
	}
}
