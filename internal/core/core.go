// Package core implements the paper's contribution: the Rubix randomized
// line-to-row mappings.
//
//   - RubixS (§4.3–§4.4): static randomization. The gang address (line
//     address minus the k low bits selecting a line within a gang of 1–4
//     contiguous lines) is encrypted with a programmable-width cipher; the
//     ciphertext concatenated with the untouched k bits is the physical line
//     index. Lines co-residing in a row lose all spatial correlation, which
//     eliminates hot rows; the gang preserves enough locality to recoup
//     row-buffer hits.
//
//   - RubixD (§5): dynamic randomization without a programmable cipher.
//     The line address splits into line-in-gang (k bits), gang-in-row
//     (p bits), and global row address. Each of the 2^p vertical groups
//     (v-groups) owns a remapping circuit {currKey, nextKey, Ptr} that
//     XOR-translates the row address and gradually migrates gangs from the
//     current key to the next (Security-Refresh style), one swap per remap
//     event (probability RemapRate per activation).
//
// Both satisfy mapping.Mapper and mapping.Inverter.
package core

import (
	"fmt"

	"rubix/internal/geom"
	"rubix/internal/kcipher"
	"rubix/internal/mapping"
	"rubix/internal/metrics"
	"rubix/internal/rng"
)

// GangBits returns log2 of the gang size, validating it.
func GangBits(gangSize int) (uint, error) {
	switch gangSize {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("core: unsupported gang size %d (want 1, 2, 4, or 8)", gangSize)
}

// --- Rubix-S ----------------------------------------------------------------

// RubixS is the static randomized mapping. It is immutable after
// construction and safe for concurrent use.
type RubixS struct {
	gangSize int
	gangBits uint
	gangMask uint64
	cipher   *kcipher.Cipher
}

var _ mapping.FullMapper = (*RubixS)(nil)

// NewRubixS builds Rubix-S for geometry g with the given gang size and
// cipher key. The cipher width is the line-address width minus the gang
// bits (e.g. 26 bits for the paper's 16 GB configuration at gang size 4).
func NewRubixS(g geom.Geometry, gangSize int, key kcipher.Key) (*RubixS, error) {
	gb, err := GangBits(gangSize)
	if err != nil {
		return nil, err
	}
	width := g.LineBits() - gb
	c, err := kcipher.New(width, key)
	if err != nil {
		return nil, fmt.Errorf("core: Rubix-S cipher: %w", err)
	}
	return &RubixS{
		gangSize: gangSize,
		gangBits: gb,
		gangMask: (uint64(1) << gb) - 1,
		cipher:   c,
	}, nil
}

// Name implements mapping.Mapper.
func (m *RubixS) Name() string { return fmt.Sprintf("Rubix-S(GS%d)", m.gangSize) }

// GangSize reports the number of contiguous lines randomized together.
func (m *RubixS) GangSize() int { return m.gangSize }

// CipherBits reports the width of the underlying cipher.
func (m *RubixS) CipherBits() uint { return m.cipher.Bits() }

// Map implements mapping.Mapper: encrypt the gang address, keep the
// line-in-gang bits.
func (m *RubixS) Map(line uint64) uint64 {
	gang := line >> m.gangBits
	return m.cipher.Encrypt(gang)<<m.gangBits | line&m.gangMask
}

// Unmap implements mapping.Inverter.
func (m *RubixS) Unmap(phys uint64) uint64 {
	gang := phys >> m.gangBits
	return m.cipher.Decrypt(gang)<<m.gangBits | phys&m.gangMask
}

// MapBatch implements mapping.BatchMapper: the gang addresses are staged
// into phys, encrypted in one ladder walk with the round schedule in
// registers, then recombined with the untouched line-in-gang bits. The
// staging is why lines and phys must not overlap.
func (m *RubixS) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = line >> m.gangBits
	}
	m.cipher.EncryptBatch(phys, phys)
	for i, line := range lines {
		phys[i] = phys[i]<<m.gangBits | line&m.gangMask
	}
}

// UnmapBatch implements mapping.BatchInverter.
func (m *RubixS) UnmapBatch(phys, lines []uint64) {
	lines = lines[:len(phys)]
	for i, p := range phys {
		lines[i] = p >> m.gangBits
	}
	m.cipher.DecryptBatch(lines, lines)
	for i, p := range phys {
		lines[i] = lines[i]<<m.gangBits | p&m.gangMask
	}
}

// StorageBytes reports the SRAM cost: one 96-bit key (the paper reports
// "just 16 bytes of storage" for key plus cipher state).
func (m *RubixS) StorageBytes() int { return 16 }

// --- Rubix-D ----------------------------------------------------------------

// vGroupState is the remapping circuit of one v-group (or v-segment).
type vGroupState struct {
	currKey uint64
	nextKey uint64
	ptr     uint64
	epochs  uint64 // completed epochs (for stats/tests)
}

// SwapOp describes one gang swap performed by a remap event, so the memory
// controller can charge its timing/energy cost: the paper's sequence is
// open-row-X, read, open-row-Y, write, open-row-X again — 3 ACTs and
// 2×gangSize CAS reads plus 2×gangSize CAS writes.
type SwapOp struct {
	RowX uint64 // global row of the gang at Ptr; addr: row
	RowY uint64 // global row of its destination (Ptr ^ nextKey); addr: row
	Acts int    // activations performed (3)
	CAS  int    // column accesses performed (4 × gangSize)
}

// RubixD is the dynamic randomized mapping. It is NOT safe for concurrent
// use: the simulator owns it single-threaded, as the hardware would.
type RubixD struct {
	gangSize  int
	gangBits  uint
	pBits     uint // gang-in-row bits
	rowBits   uint // global row address bits (per segment)
	segBits   uint // v-segment bits (0 = unsegmented)
	selBits   uint // channel+rank+bank bits (kept inside the translated address)
	rowMask   uint64
	groups    []vGroupState // indexed by vgroup<<segBits | segment
	remapRate float64       // probability of a remap event per activation
	rng       *rng.Xoshiro256
	swaps     uint64 // total swap operations performed
	skips     uint64 // remap events skipped (already-remapped location)
	gen       uint64 // remap episodes completed; see Generation
	obs       RemapObserver

	mSwaps *metrics.Counter
	mSkips *metrics.Counter
}

var _ mapping.FullMapper = (*RubixD)(nil)

// RubixDConfig configures NewRubixD.
type RubixDConfig struct {
	GangSize  int     // 1, 2, 4, or 8 lines per gang
	RemapRate float64 // remap probability per activation (paper: 0.01)
	Segments  int     // v-segments per v-group (power of two; 1 = none, §5.4)
	Seed      uint64  // PRNG seed for key generation and remap dice
	// NoStagger starts every circuit's Ptr at zero instead of a random
	// position. Staggered walks (the default) keep the per-circuit swap
	// traffic from aligning on the same global rows, which would itself
	// manufacture hot rows; tests use NoStagger for deterministic epochs.
	NoStagger bool
}

// NewRubixD builds Rubix-D for geometry g.
func NewRubixD(g geom.Geometry, cfg RubixDConfig) (*RubixD, error) {
	gb, err := GangBits(cfg.GangSize)
	if err != nil {
		return nil, err
	}
	if gb > g.SlotBits() {
		return nil, fmt.Errorf("core: gang size %d exceeds row of %d lines", cfg.GangSize, g.LinesPerRow())
	}
	if cfg.RemapRate < 0 || cfg.RemapRate > 1 {
		return nil, fmt.Errorf("core: remap rate %v out of [0, 1]", cfg.RemapRate)
	}
	segs := cfg.Segments
	if segs == 0 {
		segs = 1
	}
	if segs < 1 || segs&(segs-1) != 0 {
		return nil, fmt.Errorf("core: segments must be a power of two, got %d", cfg.Segments)
	}
	segBits := uint(0)
	for v := segs; v > 1; v >>= 1 {
		segBits++
	}
	p := g.SlotBits() - gb
	rowAddrBits := g.LineBits() - g.SlotBits()
	selBits := uint(0)
	for v := g.BanksTotal(); v > 1; v >>= 1 {
		selBits++
	}
	if segBits+selBits >= rowAddrBits {
		return nil, fmt.Errorf("core: %d segments do not fit %d row-address bits", segs, rowAddrBits)
	}
	d := &RubixD{
		gangSize:  cfg.GangSize,
		gangBits:  gb,
		pBits:     p,
		rowBits:   rowAddrBits - segBits,
		segBits:   segBits,
		selBits:   selBits,
		remapRate: cfg.RemapRate,
		rng:       rng.NewXoshiro256(cfg.Seed),
	}
	d.rowMask = (uint64(1) << d.rowBits) - 1
	n := (1 << p) << segBits
	d.groups = make([]vGroupState, n)
	for i := range d.groups {
		d.groups[i].currKey = d.rng.Next() & d.rowMask
		d.groups[i].nextKey = d.rng.Next() & d.rowMask
		if !cfg.NoStagger {
			d.groups[i].ptr = d.rng.Next() & d.rowMask
		}
	}
	return d, nil
}

// Name implements mapping.Mapper.
func (d *RubixD) Name() string { return fmt.Sprintf("Rubix-D(GS%d)", d.gangSize) }

// GangSize reports the number of contiguous lines per gang.
func (d *RubixD) GangSize() int { return d.gangSize }

// SetMetrics implements metrics.Settable: rubixd_remap_episodes counts
// episodes that swapped, rubixd_remap_skips those that found the location
// already remapped.
func (d *RubixD) SetMetrics(r *metrics.Recorder) {
	d.mSwaps = r.Counter("rubixd_remap_episodes")
	d.mSkips = r.Counter("rubixd_remap_skips")
}

// RemapObserver is notified after every remap episode. group is the circuit
// index (vgroup<<segBits | segment, matching Groups()); ptr is the circuit's
// pointer AFTER the episode; rolled reports that the episode completed an
// epoch (ptr wrapped to zero with nextKey folded into currKey). Package
// check implements it for epoch-completeness verification.
type RemapObserver interface {
	OnRemapStep(group int, ptr uint64, rolled bool)
}

// SetRemapObserver installs o; pass nil to detach. Observation is pull-free
// and does not perturb the mapping or its RNG.
func (d *RubixD) SetRemapObserver(o RemapObserver) { d.obs = o }

// RowAddrBits reports the per-circuit row-address width in bits.
func (d *RubixD) RowAddrBits() uint { return d.rowBits }

// TranslateGroup applies circuit group's current translation to a circuit-
// local row address (masked into domain). Exposed for invariant checking.
func (d *RubixD) TranslateGroup(group int, rowAddr uint64) uint64 {
	return translate(&d.groups[group], rowAddr&d.rowMask)
}

// UntranslateGroup inverts TranslateGroup for the same circuit state.
func (d *RubixD) UntranslateGroup(group int, rowAddr uint64) uint64 {
	return untranslate(&d.groups[group], rowAddr&d.rowMask)
}

// split decomposes an address into (rowAddr, segment, vgroup, lineInGang).
// It is deliberately domain-neutral: the seg/vgroup/lig coordinates are
// invariant under the per-circuit row translation, so split is applied to
// logical lines (Map) and physical lines (Unmap, NoteActivation) alike.
//
// The v-segment (§5.4) is formed from the LOW bits of the row-within-bank
// address — "every Nth row of the v-group forms a v-segment" — which sit
// just above the channel/rank/bank select bits of the global row index.
// The select bits stay inside the translated address so segmentation never
// exempts bank selection from randomization.
func (d *RubixD) split(addr uint64) (rowAddr, seg, vgroup, lig uint64) {
	lig = addr & ((1 << d.gangBits) - 1)
	vgroup = addr >> d.gangBits & ((1 << d.pBits) - 1)
	full := addr >> (d.gangBits + d.pBits)
	sel := full & ((1 << d.selBits) - 1)
	rest := full >> d.selBits
	seg = rest & ((1 << d.segBits) - 1)
	high := rest >> d.segBits
	rowAddr = high<<d.selBits | sel
	return rowAddr, seg, vgroup, lig
}

func (d *RubixD) join(rowAddr, seg, vgroup, lig uint64) uint64 {
	sel := rowAddr & ((1 << d.selBits) - 1)
	high := rowAddr >> d.selBits
	full := (high<<d.segBits|seg)<<d.selBits | sel
	return full<<(d.pBits+d.gangBits) | vgroup<<d.gangBits | lig
}

func (d *RubixD) group(vgroup, seg uint64) *vGroupState {
	return &d.groups[vgroup<<d.segBits|seg]
}

// translate applies the two-step translation of §5.1 to a row address using
// the given circuit: L' = L ^ currKey; if L' < Ptr or (L' ^ nextKey) < Ptr,
// L' ^= nextKey.
func translate(gs *vGroupState, rowAddr uint64) uint64 {
	l := rowAddr ^ gs.currKey
	if l < gs.ptr || l^gs.nextKey < gs.ptr {
		l ^= gs.nextKey
	}
	return l
}

// untranslate inverts translate for the same circuit state.
func untranslate(gs *vGroupState, phys uint64) uint64 {
	// A location p holds the content of logical row l where translate maps
	// l's image to p. Since translate either leaves l^currKey in place or
	// XORs it with nextKey, invert by testing both candidates.
	cand := phys
	if translate(gs, cand^gs.currKey) == phys {
		return cand ^ gs.currKey
	}
	cand = phys ^ gs.nextKey
	return cand ^ gs.currKey
}

// Map implements mapping.Mapper.
func (d *RubixD) Map(line uint64) uint64 {
	rowAddr, seg, vgroup, lig := d.split(line)
	gs := d.group(vgroup, seg)
	return d.join(translate(gs, rowAddr), seg, vgroup, lig)
}

// Unmap implements mapping.Inverter.
func (d *RubixD) Unmap(phys uint64) uint64 {
	rowAddr, seg, vgroup, lig := d.split(phys)
	gs := d.group(vgroup, seg)
	return d.join(untranslate(gs, rowAddr), seg, vgroup, lig)
}

// MapBatch implements mapping.BatchMapper. The whole batch is translated
// under the circuit state at call time: a remap episode between the call
// and the use of an entry invalidates it. Callers that can trigger remaps
// mid-batch (the memory controller's activation feedback) must watch
// Generation and re-translate the not-yet-consumed tail when it advances.
func (d *RubixD) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = d.Map(line)
	}
}

// UnmapBatch implements mapping.BatchInverter, under the same staleness
// contract as MapBatch.
func (d *RubixD) UnmapBatch(phys, lines []uint64) {
	lines = lines[:len(phys)]
	for i, p := range phys {
		lines[i] = d.Unmap(p)
	}
}

// Generation counts remap episodes: it advances every time any circuit's
// translation changes, so cached translations (batch pre-translation, the
// paranoid-mode collision window) are valid exactly while it holds still.
func (d *RubixD) Generation() uint64 { return d.gen }

// NoteActivation must be called by the memory controller on every row
// activation caused by a demand access to physical line phys. With
// probability RemapRate it performs one remap episode for the activated
// v-group (§5.4) and returns the swap performed, if any, so the controller
// can charge its cost. ok reports whether a swap happened.
func (d *RubixD) NoteActivation(phys uint64) (op SwapOp, ok bool) {
	if d.remapRate <= 0 {
		return SwapOp{}, false
	}
	if d.rng.Float64() >= d.remapRate {
		return SwapOp{}, false
	}
	_, seg, vgroup, _ := d.split(phys)
	return d.remapStep(vgroup, seg)
}

// remapStep advances the circuit of (vgroup, seg) by one episode: swap the
// gang at Ptr with its destination unless the location was already remapped,
// then advance Ptr, rolling the epoch when the walk completes.
func (d *RubixD) remapStep(vgroup, seg uint64) (op SwapOp, ok bool) {
	d.gen++
	gs := d.group(vgroup, seg)
	src := gs.ptr
	dst := src ^ gs.nextKey
	swapped := false
	if dst > src {
		// Physical gangs at row addresses src and dst exchange contents.
		op = SwapOp{
			RowX: d.globalRowOf(src, seg, vgroup),
			RowY: d.globalRowOf(dst, seg, vgroup),
			Acts: 3,
			CAS:  4 * d.gangSize,
		}
		swapped = true
		d.swaps++
		d.mSwaps.Inc()
	} else {
		d.skips++
		d.mSkips.Inc()
	}
	gs.ptr++
	rolled := false
	if gs.ptr == uint64(1)<<d.rowBits {
		// Epoch complete: fold nextKey into currKey, draw a fresh key.
		gs.currKey ^= gs.nextKey
		gs.nextKey = d.rng.Next() & d.rowMask
		gs.ptr = 0
		gs.epochs++
		rolled = true
	}
	if d.obs != nil {
		d.obs.OnRemapStep(int(vgroup<<d.segBits|seg), gs.ptr, rolled)
	}
	return op, swapped
}

// globalRowOf converts a circuit-local physical row address into the global
// row index used by the DRAM model.
func (d *RubixD) globalRowOf(rowAddr, seg, vgroup uint64) uint64 {
	// The physical line index is join(rowAddr, seg, vgroup, 0); its global
	// row drops the slot bits (= pBits + gangBits).
	return d.join(rowAddr, seg, vgroup, 0) >> (d.pBits + d.gangBits)
}

// Swaps reports the number of gang swaps performed so far.
func (d *RubixD) Swaps() uint64 { return d.swaps }

// Skips reports the number of remap episodes that skipped swapping.
func (d *RubixD) Skips() uint64 { return d.skips }

// Epochs reports the total completed epochs across all circuits.
func (d *RubixD) Epochs() uint64 {
	var n uint64
	for i := range d.groups {
		n += d.groups[i].epochs
	}
	return n
}

// StorageBytes reports the SRAM cost of the remapping metadata: 8 bytes
// (currKey+nextKey+Ptr packed; the paper's "less than 8 bytes for each pair
// of keys and ptr") per circuit.
func (d *RubixD) StorageBytes() int { return 8 * len(d.groups) }

// Groups reports the number of remapping circuits (v-groups × segments).
func (d *RubixD) Groups() int { return len(d.groups) }

// --- Static keyed-XOR (§6.2) -------------------------------------------------

// StaticXOR is Rubix-D with dynamic remapping disabled (§6.2): each v-group
// XORs the row address with its own boot-time random key. It retains static
// randomization (different gangs of a row come from unrelated addresses)
// while avoiding swap overheads. Immutable and safe for concurrent use.
type StaticXOR struct {
	gangSize int
	gangBits uint
	pBits    uint
	rowMask  uint64
	keys     []uint64 // one per v-group
}

var _ mapping.FullMapper = (*StaticXOR)(nil)

// NewStaticXOR builds the §6.2 keyed-XOR mapping.
func NewStaticXOR(g geom.Geometry, gangSize int, seed uint64) (*StaticXOR, error) {
	gb, err := GangBits(gangSize)
	if err != nil {
		return nil, err
	}
	p := g.SlotBits() - gb
	rowAddrBits := g.LineBits() - g.SlotBits()
	r := rng.NewXoshiro256(seed)
	keys := make([]uint64, 1<<p)
	mask := (uint64(1) << rowAddrBits) - 1
	for i := range keys {
		keys[i] = r.Next() & mask
	}
	return &StaticXOR{
		gangSize: gangSize,
		gangBits: gb,
		pBits:    p,
		rowMask:  mask,
		keys:     keys,
	}, nil
}

// Name implements mapping.Mapper.
func (m *StaticXOR) Name() string { return fmt.Sprintf("StaticXOR(GS%d)", m.gangSize) }

// Map implements mapping.Mapper.
func (m *StaticXOR) Map(line uint64) uint64 {
	lig := line & ((1 << m.gangBits) - 1)
	vgroup := line >> m.gangBits & ((1 << m.pBits) - 1)
	rowAddr := line >> (m.gangBits + m.pBits)
	rowAddr ^= m.keys[vgroup]
	return rowAddr<<(m.pBits+m.gangBits) | vgroup<<m.gangBits | lig
}

// Unmap implements mapping.Inverter (XOR is an involution).
func (m *StaticXOR) Unmap(phys uint64) uint64 { return m.Map(phys) }

// MapBatch implements mapping.BatchMapper.
func (m *StaticXOR) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = m.Map(line)
	}
}

// UnmapBatch implements mapping.BatchInverter (the mapping is an involution).
func (m *StaticXOR) UnmapBatch(phys, lines []uint64) { m.MapBatch(phys, lines) }
