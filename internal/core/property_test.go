package core

import (
	"testing"

	"rubix/internal/geom"
	"rubix/internal/kcipher"
)

// propertyGeometry builds a geometry with exactly the requested line-address
// width: 1 channel, 1 rank, 8 banks, 128-byte lines in 8 KB rows (6 bits of
// slot + 3 bits of bank + log2(rowsPerBank)), with rowsPerBank supplying the
// remaining bits.
func propertyGeometry(t *testing.T, lineBits uint) geom.Geometry {
	t.Helper()
	const fixedBits = 9 // 6 slot bits (8192/128 lines per row) + 3 bank bits
	if lineBits <= fixedBits {
		t.Fatalf("width %d too small for the fixed geometry bits", lineBits)
	}
	g, err := geom.New(1, 1, 8, 1<<(lineBits-fixedBits), 8192, 128)
	if err != nil {
		t.Fatalf("width %d: %v", lineBits, err)
	}
	if got := g.LineBits(); got != lineBits {
		t.Fatalf("geometry has %d line bits, want %d", got, lineBits)
	}
	return g
}

// TestRubixSBijectionAcrossWidths is the property sweep the paper's security
// argument rests on: for every supported line-address width (Rubix-S targets
// 20–34 bits, i.e. 128 MB–2 TB at 128 B lines) the randomized mapping is a
// bijection on the line-address domain. Small domains are enumerated
// exhaustively with a bitset; large ones are sampled with a stride chosen to
// sweep both dense low addresses and the full width.
func TestRubixSBijectionAcrossWidths(t *testing.T) {
	for lineBits := uint(20); lineBits <= 34; lineBits++ {
		g := propertyGeometry(t, lineBits)
		for _, gs := range []int{1, 4} {
			m, err := NewRubixS(g, gs, kcipher.KeyFromSeed(0xC0FFEE+uint64(lineBits)))
			if err != nil {
				t.Fatalf("width %d GS%d: %v", lineBits, gs, err)
			}
			if lineBits <= 22 {
				exhaustiveBijection(t, m, g, lineBits, gs)
			} else {
				sampledBijection(t, m, g, lineBits, gs)
			}
		}
	}
}

// exhaustiveBijection checks the permutation property over the whole domain.
func exhaustiveBijection(t *testing.T, m *RubixS, g geom.Geometry, lineBits uint, gs int) {
	t.Helper()
	total := g.TotalLines()
	seen := make([]uint64, (total+63)/64)
	for x := uint64(0); x < total; x++ {
		y := m.Map(x)
		if y >= total {
			t.Fatalf("width %d GS%d: Map(%#x) = %#x escapes the domain", lineBits, gs, x, y)
		}
		if seen[y/64]&(1<<(y%64)) != 0 {
			t.Fatalf("width %d GS%d: collision at physical line %#x", lineBits, gs, y)
		}
		seen[y/64] |= 1 << (y % 64)
		if m.Unmap(y) != x {
			t.Fatalf("width %d GS%d: Unmap(Map(%#x)) = %#x", lineBits, gs, x, m.Unmap(y))
		}
	}
}

// sampledBijection round-trips a deterministic sample of the domain and
// checks injectivity over the sample.
func sampledBijection(t *testing.T, m *RubixS, g geom.Geometry, lineBits uint, gs int) {
	t.Helper()
	total := g.TotalLines()
	const samples = 1 << 16
	stride := total / samples
	if stride == 0 {
		stride = 1
	}
	hit := make(map[uint64]uint64, samples)
	for i := uint64(0); i < samples; i++ {
		// Mix a striding sweep with a multiplicative scramble so both the
		// dense low lines and the high bits get exercised.
		x := (i*stride + i*0x9E3779B97F4A7C15) & (total - 1)
		y := m.Map(x)
		if y >= total {
			t.Fatalf("width %d GS%d: Map(%#x) = %#x escapes the domain", lineBits, gs, x, y)
		}
		if prev, ok := hit[y]; ok && prev != x {
			t.Fatalf("width %d GS%d: lines %#x and %#x both map to %#x", lineBits, gs, prev, x, y)
		}
		hit[y] = x
		if m.Unmap(y) != x {
			t.Fatalf("width %d GS%d: Unmap(Map(%#x)) = %#x", lineBits, gs, x, m.Unmap(y))
		}
	}
}
