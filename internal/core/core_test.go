package core

import (
	"testing"
	"testing/quick"

	"rubix/internal/geom"
	"rubix/internal/kcipher"
)

// --- Rubix-S -----------------------------------------------------------------

func TestRubixSGangSizes(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, gs := range []int{1, 2, 4, 8} {
		m, err := NewRubixS(g, gs, kcipher.KeyFromSeed(1))
		if err != nil {
			t.Fatalf("GS%d: %v", gs, err)
		}
		if m.GangSize() != gs {
			t.Fatalf("GangSize = %d, want %d", m.GangSize(), gs)
		}
	}
	if _, err := NewRubixS(g, 3, kcipher.KeyFromSeed(1)); err == nil {
		t.Fatal("gang size 3 should be rejected")
	}
}

func TestRubixSCipherWidth(t *testing.T) {
	// §4.3–4.4: 28-bit cipher for 16 GB at GS1, 26-bit at GS4.
	g := geom.DDR4_16GB()
	m1, _ := NewRubixS(g, 1, kcipher.KeyFromSeed(1))
	if m1.CipherBits() != 28 {
		t.Fatalf("GS1 cipher width = %d, want 28", m1.CipherBits())
	}
	m4, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(1))
	if m4.CipherBits() != 26 {
		t.Fatalf("GS4 cipher width = %d, want 26", m4.CipherBits())
	}
}

func TestRubixSRoundTrip(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, gs := range []int{1, 2, 4} {
		m, _ := NewRubixS(g, gs, kcipher.KeyFromSeed(3))
		f := func(raw uint64) bool {
			line := raw & (g.TotalLines() - 1)
			phys := m.Map(line)
			return phys < g.TotalLines() && m.Unmap(phys) == line
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Fatalf("GS%d: %v", gs, err)
		}
	}
}

func TestRubixSGangInteriorPreserved(t *testing.T) {
	// §4.4: the k low bits pass through, so lines of a gang co-reside in
	// the same row, adjacent.
	g := geom.DDR4_16GB()
	m, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(5))
	for gang := uint64(0); gang < 1000; gang++ {
		base := m.Map(gang * 4)
		if base&3 != 0 {
			t.Fatalf("gang base %#x not aligned", base)
		}
		for i := uint64(1); i < 4; i++ {
			if m.Map(gang*4+i) != base+i {
				t.Fatalf("line %d of gang %d not adjacent to its gang", i, gang)
			}
		}
	}
}

func TestRubixSBreaksSpatialCorrelation(t *testing.T) {
	// Consecutive gangs must land in unrelated rows: over a 4 KB page, the
	// 16 gangs should occupy ~16 distinct rows.
	g := geom.DDR4_16GB()
	m, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(7))
	rows := map[uint64]bool{}
	for line := uint64(0); line < 64; line++ {
		rows[g.GlobalRow(m.Map(line))] = true
	}
	if len(rows) < 15 {
		t.Fatalf("a page occupies %d rows under Rubix-S GS4, want ~16", len(rows))
	}
}

func TestRubixSDifferentKeysDifferentMaps(t *testing.T) {
	g := geom.DDR4_16GB()
	a, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(1))
	b, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(2))
	same := 0
	for line := uint64(0); line < 1000; line++ {
		if a.Map(line) == b.Map(line) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("two boot keys agree on %d/1000 lines", same)
	}
}

func TestRubixSStorage(t *testing.T) {
	g := geom.DDR4_16GB()
	m, _ := NewRubixS(g, 4, kcipher.KeyFromSeed(1))
	if m.StorageBytes() != 16 {
		t.Fatalf("storage = %d bytes, want the paper's 16", m.StorageBytes())
	}
}

// --- Rubix-D -----------------------------------------------------------------

func newD(t *testing.T, g geom.Geometry, cfg RubixDConfig) *RubixD {
	t.Helper()
	d, err := NewRubixD(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRubixDConfigValidation(t *testing.T) {
	g := geom.DDR4_16GB()
	if _, err := NewRubixD(g, RubixDConfig{GangSize: 3}); err == nil {
		t.Fatal("gang size 3 should be rejected")
	}
	if _, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 1.5}); err == nil {
		t.Fatal("remap rate > 1 should be rejected")
	}
	if _, err := NewRubixD(g, RubixDConfig{GangSize: 4, Segments: 3}); err == nil {
		t.Fatal("non-power-of-two segments should be rejected")
	}
}

func TestRubixDGroupsAndStorage(t *testing.T) {
	// §5.3: with a 28-bit line address and gang size 4: 2 bits line-in-gang,
	// 5 bits gang-in-row (32 v-groups), 21 bits row address; 8 bytes of
	// metadata per circuit = 256 bytes unsegmented (512 in the paper's
	// generous accounting), 16 KB-class with 32 segments.
	g := geom.DDR4_16GB()
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0.01})
	if d.Groups() != 32 {
		t.Fatalf("v-groups = %d, want 32", d.Groups())
	}
	if d.StorageBytes() != 32*8 {
		t.Fatalf("storage = %d", d.StorageBytes())
	}
	seg := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Segments: 32})
	if seg.Groups() != 32*32 {
		t.Fatalf("segmented circuits = %d, want 1024", seg.Groups())
	}
}

func TestRubixDRoundTrip(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, cfg := range []RubixDConfig{
		{GangSize: 1, RemapRate: 0, Seed: 1},
		{GangSize: 2, RemapRate: 0, Seed: 2},
		{GangSize: 4, RemapRate: 0, Seed: 3},
		{GangSize: 4, RemapRate: 0, Seed: 4, Segments: 32},
	} {
		d := newD(t, g, cfg)
		f := func(raw uint64) bool {
			line := raw & (g.TotalLines() - 1)
			phys := d.Map(line)
			return phys < g.TotalLines() && d.Unmap(phys) == line
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestRubixDBijectionThroughoutEpoch(t *testing.T) {
	// The mapping must remain a bijection at EVERY point of the remap walk.
	// Use a tiny geometry so we can verify exhaustively.
	g, err := geom.New(1, 1, 2, 64, 1024, 64) // 2^11 lines, 16 lines/row
	if err != nil {
		t.Fatal(err)
	}
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 9, NoStagger: true})
	total := g.TotalLines()
	for step := 0; step < 300; step++ {
		seen := make(map[uint64]uint64, total)
		for line := uint64(0); line < total; line++ {
			p := d.Map(line)
			if p >= total {
				t.Fatalf("step %d: phys %#x out of range", step, p)
			}
			if prev, dup := seen[p]; dup {
				t.Fatalf("step %d: Map(%d) == Map(%d)", step, line, prev)
			}
			seen[p] = line
			if d.Unmap(p) != line {
				t.Fatalf("step %d: Unmap(Map(%d)) = %d", step, line, d.Unmap(p))
			}
		}
		// Advance one remap episode on a rotating v-group.
		d.remapStep(uint64(step%4), 0)
	}
}

func TestRubixDVerticalRemap(t *testing.T) {
	// §5.3: the k+p low bits are unchanged — a gang moves across rows but
	// keeps its gang-in-row position (vertical randomization).
	g := geom.DDR4_16GB()
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0, Seed: 11})
	slotMask := uint64(g.LinesPerRow() - 1)
	f := func(raw uint64) bool {
		line := raw & (g.TotalLines() - 1)
		return d.Map(line)&slotMask == line&slotMask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRubixDScattersGangsOfARow(t *testing.T) {
	// Gangs that share a row in the identity mapping use different v-group
	// keys, so they scatter to different global rows.
	g := geom.DDR4_16GB()
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0, Seed: 13})
	rows := map[uint64]bool{}
	for gang := uint64(0); gang < 32; gang++ { // one 128-line row
		rows[g.GlobalRow(d.Map(gang*4))] = true
	}
	if len(rows) < 30 {
		t.Fatalf("one row's gangs occupy only %d rows under Rubix-D", len(rows))
	}
}

func TestRubixDEpochRollsKeys(t *testing.T) {
	// After a full walk the mapping equals XOR with (currKey ^ nextKey) and
	// a fresh epoch begins.
	g, err := geom.New(1, 1, 1, 16, 256, 64) // 4 lines/row, tiny
	if err != nil {
		t.Fatal(err)
	}
	d := newD(t, g, RubixDConfig{GangSize: 2, RemapRate: 1, Seed: 17, NoStagger: true})
	groups := d.Groups()
	if d.Epochs() != 0 {
		t.Fatal("fresh mapping has completed epochs")
	}
	steps := int(uint64(1) << d.rowBits)
	for v := 0; v < groups; v++ {
		for i := 0; i < steps; i++ {
			d.remapStep(uint64(v), 0)
		}
	}
	if got := d.Epochs(); got != uint64(groups) {
		t.Fatalf("epochs = %d, want %d", got, groups)
	}
	// Mapping still a bijection after the roll.
	seen := map[uint64]bool{}
	for line := uint64(0); line < g.TotalLines(); line++ {
		p := d.Map(line)
		if seen[p] {
			t.Fatal("collision after epoch roll")
		}
		seen[p] = true
	}
}

func TestRubixDSwapAccounting(t *testing.T) {
	// Over FULL epochs, exactly half of remap episodes swap and half skip
	// (Figure 10 (e)-(h)): location Ptr swaps iff Ptr^nextKey > Ptr, which
	// holds for exactly half the walk (nextKey != 0). At GS4 a swap costs
	// 3 ACTs and 16 CAS.
	g, err := geom.New(1, 1, 2, 256, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 19, NoStagger: true})
	walk := int(uint64(1) << d.rowBits)
	swaps, skips := 0, 0
	const epochs = 50
	for e := 0; e < epochs; e++ {
		for i := 0; i < walk; i++ {
			op, ok := d.remapStep(0, 0)
			if ok {
				swaps++
				if op.Acts != 3 || op.CAS != 16 {
					t.Fatalf("swap cost = %d ACTs / %d CAS, want 3/16", op.Acts, op.CAS)
				}
				if op.RowX == op.RowY {
					t.Fatal("swap with itself")
				}
			} else {
				skips++
			}
		}
	}
	frac := float64(swaps) / float64(swaps+skips)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("swap fraction %.3f over full epochs, want 0.5", frac)
	}
	if d.Swaps() != uint64(swaps) || d.Skips() != uint64(skips) {
		t.Fatal("counter mismatch")
	}
}

func TestRubixDNoteActivationRate(t *testing.T) {
	g := geom.DDR4_16GB()
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Seed: 21})
	events := 0
	const acts = 200000
	for i := 0; i < acts; i++ {
		if _, ok := d.NoteActivation(uint64(i) % g.TotalLines()); ok {
			events++
		}
	}
	// ~1% episodes, ~half of which swap → ~0.5% swap rate.
	rate := float64(events) / acts
	if rate < 0.003 || rate > 0.008 {
		t.Fatalf("swap rate %.4f, want ~0.005", rate)
	}
	// Zero rate must never fire.
	d0 := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 0, Seed: 22})
	for i := 0; i < 1000; i++ {
		if _, ok := d0.NoteActivation(uint64(i)); ok {
			t.Fatal("RemapRate 0 must not remap")
		}
	}
}

func TestRubixDRemapChangesMapping(t *testing.T) {
	// Dynamic remapping must actually move lines: after one full epoch,
	// every line whose key delta is non-zero has moved.
	g, err := geom.New(1, 1, 2, 256, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 23, NoStagger: true})
	total := g.TotalLines()
	before := make([]uint64, total)
	for i := range before {
		before[i] = d.Map(uint64(i))
	}
	walk := int(uint64(1) << d.rowBits)
	for v := 0; v < d.Groups(); v++ {
		for i := 0; i < walk; i++ {
			d.remapStep(uint64(v), 0)
		}
	}
	moved := 0
	for i := range before {
		if d.Map(uint64(i)) != before[i] {
			moved++
		}
	}
	// Each v-group's epoch XORs its row addresses with the old nextKey;
	// a zero key would leave that group in place, but with 8 groups the
	// chance all keys were zero is negligible.
	if moved < int(total)/2 {
		t.Fatalf("after a full epoch only %d/%d lines moved", moved, total)
	}
}

func TestRubixDSegmentsPartitionRows(t *testing.T) {
	// §5.4: every Nth row of a v-group forms a v-segment; remapping one
	// segment's circuit must not move rows of other segments.
	g := geom.DDR4_16GB()
	d := newD(t, g, RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 25, Segments: 4, NoStagger: true})
	// Segment bits sit above the bank-select bits of the global row index:
	// segment 0 vs segment 1 lines differ at bit slotBits+selBits.
	lineSeg0 := uint64(0)
	lineSeg1 := uint64(1) << (g.SlotBits() + d.selBits)
	before0, before1 := d.Map(lineSeg0), d.Map(lineSeg1)
	// Remap only segment 0 of v-group 0 far enough to move rowAddr 0.
	for i := 0; i < 64; i++ {
		d.remapStep(0, 0)
	}
	if d.Map(lineSeg1) != before1 {
		t.Fatal("remapping segment 0 moved a segment-1 line")
	}
	_ = before0 // segment-0 line may or may not have moved yet; bijection tests cover it
}

// --- StaticXOR (§6.2) ---------------------------------------------------------

func TestStaticXORRoundTrip(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, gs := range []int{1, 2, 4} {
		m, err := NewStaticXOR(g, gs, 31)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw uint64) bool {
			line := raw & (g.TotalLines() - 1)
			phys := m.Map(line)
			return phys < g.TotalLines() && m.Unmap(phys) == line
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("GS%d: %v", gs, err)
		}
	}
}

func TestStaticXORScattersRowGangs(t *testing.T) {
	g := geom.DDR4_16GB()
	m, err := NewStaticXOR(g, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[uint64]bool{}
	for gang := uint64(0); gang < 32; gang++ {
		rows[g.GlobalRow(m.Map(gang*4))] = true
	}
	if len(rows) < 30 {
		t.Fatalf("one row's gangs occupy only %d rows under StaticXOR", len(rows))
	}
}

func TestStaticXORIsXorLinear(t *testing.T) {
	// §5.2's pitfall, embraced deliberately per v-group: within one v-group
	// the mapping is XOR with a constant, so row-address deltas survive.
	g := geom.DDR4_16GB()
	m, _ := NewStaticXOR(g, 4, 41)
	slotBits := g.SlotBits()
	base := m.Map(0) >> slotBits
	for rowAddr := uint64(1); rowAddr < 64; rowAddr++ {
		got := m.Map(rowAddr<<slotBits) >> slotBits
		if got != base^rowAddr {
			t.Fatalf("v-group 0 mapping not XOR-linear at rowAddr %d", rowAddr)
		}
	}
}

