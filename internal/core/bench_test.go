package core

import (
	"testing"

	"rubix/internal/geom"
	"rubix/internal/kcipher"
)

func BenchmarkRubixSMap(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewRubixS(g, 4, kcipher.KeyFromSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	mask := g.TotalLines() - 1
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= m.Map(uint64(i) & mask)
	}
	_ = sink
}

func BenchmarkRubixDMap(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mask := g.TotalLines() - 1
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= m.Map(uint64(i) & mask)
	}
	_ = sink
}

func BenchmarkRubixDNoteActivation(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewRubixD(g, RubixDConfig{GangSize: 4, RemapRate: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mask := g.TotalLines() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NoteActivation(uint64(i) & mask)
	}
}

func BenchmarkStaticXORMap(b *testing.B) {
	g := geom.DDR4_16GB()
	m, err := NewStaticXOR(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	mask := g.TotalLines() - 1
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= m.Map(uint64(i) & mask)
	}
	_ = sink
}
