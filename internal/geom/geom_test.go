package geom

import (
	"testing"
	"testing/quick"
)

func TestPaperBaseline(t *testing.T) {
	g := DDR4_16GB()
	if got := g.TotalBytes(); got != 16<<30 {
		t.Fatalf("capacity = %d, want 16 GB", got)
	}
	if got := g.LineBits(); got != 28 {
		t.Fatalf("line-address width = %d, want the paper's 28 bits", got)
	}
	if got := g.LinesPerRow(); got != 128 {
		t.Fatalf("lines per row = %d, want 128 (8 KB rows / 64 B lines)", got)
	}
	if got := g.TotalRows(); got != 2*1024*1024 {
		t.Fatalf("total rows = %d, want 2M (128K x 16 banks)", got)
	}
	if got := g.BanksTotal(); got != 16 {
		t.Fatalf("banks = %d, want 16", got)
	}
	if got := g.PageLines(); got != 64 {
		t.Fatalf("page lines = %d, want 64", got)
	}
}

func TestMultiChannelGeometries(t *testing.T) {
	g2 := DDR4_32GB2Ch()
	if g2.TotalBytes() != 32<<30 || g2.Channels != 2 {
		t.Fatalf("2-channel geometry wrong: %v", g2)
	}
	g4 := DDR4_32GB4Ch()
	if g4.TotalBytes() != 32<<30 || g4.Channels != 4 {
		t.Fatalf("4-channel geometry wrong: %v", g4)
	}
}

func TestIllustrative(t *testing.T) {
	g := Illustrative4GB()
	if g.TotalBytes() != 4<<30 {
		t.Fatalf("capacity = %d, want 4 GB", g.TotalBytes())
	}
	if g.TotalRows() != 1024*1024 {
		t.Fatalf("rows = %d, want 1M", g.TotalRows())
	}
	if g.LinesPerRow() != 64 {
		t.Fatalf("lines per row = %d, want 64 (4 KB rows)", g.LinesPerRow())
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	cases := [][6]int{
		{3, 1, 16, 1024, 8192, 64},  // non-power-of-two channels
		{1, 1, 0, 1024, 8192, 64},   // zero banks
		{1, 1, 16, 1000, 8192, 64},  // non-power-of-two rows
		{1, 1, 16, 1024, 32, 64},    // row smaller than line
		{1, 1, 16, 1024, 8192, -64}, // negative line
	}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2], c[3], c[4], c[5]); err == nil {
			t.Errorf("New(%v) should fail", c)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, g := range []Geometry{DDR4_16GB(), DDR4_32GB2Ch(), DDR4_32GB4Ch(), Illustrative4GB()} {
		f := func(raw uint64) bool {
			phys := raw & (g.TotalLines() - 1)
			loc := g.Decode(phys)
			return g.Encode(loc) == phys
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	g := DDR4_32GB4Ch()
	f := func(raw uint64) bool {
		phys := raw & (g.TotalLines() - 1)
		loc := g.Decode(phys)
		return loc.Channel >= 0 && loc.Channel < g.Channels &&
			loc.Rank >= 0 && loc.Rank < g.Ranks &&
			loc.Bank >= 0 && loc.Bank < g.Banks &&
			loc.Row >= 0 && loc.Row < g.RowsPerBank &&
			loc.Slot >= 0 && loc.Slot < g.LinesPerRow() &&
			loc.Global == g.GlobalRow(phys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRowConsistency(t *testing.T) {
	g := DDR4_16GB()
	// Lines in the same row share a global row; adjacent rows differ.
	base := uint64(12345) << g.SlotBits()
	for slot := uint64(0); slot < uint64(g.LinesPerRow()); slot++ {
		if g.GlobalRow(base|slot) != 12345 {
			t.Fatalf("slot %d escaped its row", slot)
		}
	}
	if g.GlobalRow(base+uint64(g.LinesPerRow())) != 12346 {
		t.Fatal("next row-block should be global row + 1")
	}
}

func TestBankIDAndChannel(t *testing.T) {
	g := DDR4_32GB2Ch()
	f := func(raw uint64) bool {
		phys := raw & (g.TotalLines() - 1)
		loc := g.Decode(phys)
		gr := g.GlobalRow(phys)
		bid := g.BankID(gr)
		// Dense bank id must be stable per (channel, rank, bank) triple and
		// within range.
		if bid < 0 || bid >= g.BanksTotal() {
			return false
		}
		if g.ChannelOf(gr) != loc.Channel {
			return false
		}
		return g.RowInBank(gr) == loc.Row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBankIDDistinguishesBanks(t *testing.T) {
	g := DDR4_16GB()
	seen := map[int]bool{}
	for r := uint64(0); r < uint64(g.BanksTotal()); r++ {
		seen[g.BankID(r)] = true
	}
	if len(seen) != g.BanksTotal() {
		t.Fatalf("BankID covered %d of %d banks", len(seen), g.BanksTotal())
	}
}
