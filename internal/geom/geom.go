// Package geom describes DRAM geometry and the physical line-address codec.
//
// The simulator works in units of cache lines (64 B by default). A memory
// mapping (package mapping and package core) is a bijection from *program*
// line addresses to *physical* line indexes; this package defines how a
// physical line index decomposes into (channel, rank, bank, row, slot).
//
// The fixed physical layout, LSB to MSB, is
//
//	slot | channel | rank | bank | row
//
// so that physLine / LinesPerRow is a *global row index* that uniquely names
// one DRAM row across the whole memory system, which makes per-row
// activation accounting mapping-agnostic. All dimension sizes must be powers
// of two.
package geom

import (
	"fmt"
	"math/bits"
)

// Geometry describes a DRAM memory system.
type Geometry struct {
	Channels    int // number of memory channels
	Ranks       int // ranks per channel
	Banks       int // banks per rank
	RowsPerBank int // rows in each bank
	RowBytes    int // bytes per row (row-buffer size)
	LineBytes   int // bytes per cache line

	linesPerRow int
	slotBits    uint
	chanBits    uint
	rankBits    uint
	bankBits    uint
	rowBits     uint
}

// Location is a fully decoded physical line position.
type Location struct {
	Channel int
	Rank    int
	Bank    int    // bank within rank
	Row     int    // row within bank; addr: row
	Slot    int    // line within row
	Global  uint64 // global row index (unique across the system)
}

// DDR4_16GB returns the paper's baseline configuration (Table 1): 16 GB,
// one channel, one rank, 16 banks, 128K rows per bank, 8 KB rows, 64 B lines.
func DDR4_16GB() Geometry {
	g, err := New(1, 1, 16, 128*1024, 8*1024, 64)
	if err != nil {
		//lint:allow panicpolicy static configuration validated at test time; New cannot fail on these literals
		panic(err)
	}
	return g
}

// DDR4_32GB2Ch returns the scaled-up configuration of Figure 15 with two
// channels (32 GB total).
func DDR4_32GB2Ch() Geometry {
	g, err := New(2, 1, 16, 128*1024, 8*1024, 64)
	if err != nil {
		//lint:allow panicpolicy static configuration validated at test time; New cannot fail on these literals
		panic(err)
	}
	return g
}

// DDR4_32GB4Ch returns the scaled-up configuration of Figure 15 with four
// channels (32 GB total, 64K rows per bank).
func DDR4_32GB4Ch() Geometry {
	g, err := New(4, 1, 16, 64*1024, 8*1024, 64)
	if err != nil {
		//lint:allow panicpolicy static configuration validated at test time; New cannot fail on these literals
		panic(err)
	}
	return g
}

// Illustrative4GB returns the simple single-bank model of Figure 4: 4 GB,
// one bank, 1M rows of 4 KB each.
func Illustrative4GB() Geometry {
	g, err := New(1, 1, 1, 1024*1024, 4*1024, 64)
	if err != nil {
		//lint:allow panicpolicy static configuration validated at test time; New cannot fail on these literals
		panic(err)
	}
	return g
}

// New validates and builds a Geometry. All sizes must be powers of two and
// RowBytes must be a multiple of LineBytes.
func New(channels, ranks, banks, rowsPerBank, rowBytes, lineBytes int) (Geometry, error) {
	g := Geometry{
		Channels:    channels,
		Ranks:       ranks,
		Banks:       banks,
		RowsPerBank: rowsPerBank,
		RowBytes:    rowBytes,
		LineBytes:   lineBytes,
	}
	for _, d := range []struct {
		name string
		v    int
	}{
		{"channels", channels}, {"ranks", ranks}, {"banks", banks},
		{"rowsPerBank", rowsPerBank}, {"rowBytes", rowBytes}, {"lineBytes", lineBytes},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return Geometry{}, fmt.Errorf("geom: %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	if rowBytes < lineBytes {
		return Geometry{}, fmt.Errorf("geom: rowBytes (%d) smaller than lineBytes (%d)", rowBytes, lineBytes)
	}
	g.linesPerRow = rowBytes / lineBytes
	g.slotBits = log2(g.linesPerRow)
	g.chanBits = log2(channels)
	g.rankBits = log2(ranks)
	g.bankBits = log2(banks)
	g.rowBits = log2(rowsPerBank)
	return g, nil
}

func log2(v int) uint { return uint(bits.TrailingZeros64(uint64(v))) }

// LinesPerRow reports the number of cache lines per DRAM row.
func (g Geometry) LinesPerRow() int { return g.linesPerRow }

// SlotBits reports the number of line-in-row address bits.
func (g Geometry) SlotBits() uint { return g.slotBits }

// LineBits reports the width of a physical line address in bits
// (the paper's 28-bit address for the 16 GB configuration).
func (g Geometry) LineBits() uint {
	return g.slotBits + g.chanBits + g.rankBits + g.bankBits + g.rowBits
}

// TotalLines reports the number of cache lines in the memory system.
func (g Geometry) TotalLines() uint64 { return uint64(1) << g.LineBits() }

// TotalRows reports the number of DRAM rows across all channels, ranks, and
// banks (global row index space).
func (g Geometry) TotalRows() uint64 { return g.TotalLines() >> g.slotBits }

// TotalBytes reports the memory capacity in bytes.
func (g Geometry) TotalBytes() uint64 { return g.TotalLines() * uint64(g.LineBytes) }

// BanksTotal reports the number of independent banks across the system.
func (g Geometry) BanksTotal() int { return g.Channels * g.Ranks * g.Banks }

// PageLines reports the number of lines in a 4 KB OS page.
func (g Geometry) PageLines() int { return 4096 / g.LineBytes }

// GlobalRow returns the global row index of a physical line index.
func (g Geometry) GlobalRow(physLine uint64) uint64 { return physLine >> g.slotBits }

// Slot returns the line-within-row slot of a physical line index.
func (g Geometry) Slot(physLine uint64) int {
	return int(physLine & (uint64(g.linesPerRow) - 1))
}

// Decode decomposes a physical line index into a full Location.
func (g Geometry) Decode(physLine uint64) Location {
	var loc Location
	loc.Slot = g.Slot(physLine)
	gr := g.GlobalRow(physLine)
	loc.Global = gr
	loc.Channel = int(gr & (uint64(g.Channels) - 1))
	gr >>= g.chanBits
	loc.Rank = int(gr & (uint64(g.Ranks) - 1))
	gr >>= g.rankBits
	loc.Bank = int(gr & (uint64(g.Banks) - 1))
	gr >>= g.bankBits
	loc.Row = int(gr)
	return loc
}

// Encode is the inverse of Decode. Location.Global is ignored.
func (g Geometry) Encode(loc Location) uint64 {
	gr := uint64(loc.Row)
	gr = gr<<g.bankBits | uint64(loc.Bank)
	gr = gr<<g.rankBits | uint64(loc.Rank)
	gr = gr<<g.chanBits | uint64(loc.Channel)
	return gr<<g.slotBits | uint64(loc.Slot)
}

// BankID returns a dense index in [0, BanksTotal()) identifying the bank of
// a global row index.
func (g Geometry) BankID(globalRow uint64) int {
	return int(globalRow & (uint64(g.BanksTotal()) - 1))
}

// RowInBank returns the row-within-bank of a global row index.
func (g Geometry) RowInBank(globalRow uint64) int {
	return int(globalRow >> (g.chanBits + g.rankBits + g.bankBits))
}

// ChannelOf returns the channel of a global row index.
func (g Geometry) ChannelOf(globalRow uint64) int {
	return int(globalRow & (uint64(g.Channels) - 1))
}

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("%dGB: %dch x %drank x %dbank x %drows, %dB rows, %dB lines",
		g.TotalBytes()>>30, g.Channels, g.Ranks, g.Banks, g.RowsPerBank, g.RowBytes, g.LineBytes)
}
