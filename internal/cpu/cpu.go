// Package cpu provides the trace-driven core model.
//
// The paper simulates 4 (or 8) out-of-order, 8-wide cores at 3 GHz in gem5.
// For the memory-system questions Rubix answers, the core's only role is to
// convert memory latency into slowdown: each core retires instructions at a
// base CPI and, at a rate given by the workload's MPKI, issues an LLC miss
// whose latency stalls the core divided by the workload's memory-level
// parallelism (MLP). This reproduces the feedback loop — mitigation stalls →
// longer miss latency → lower IPC — that produces the paper's slowdowns.
package cpu

import (
	"rubix/internal/rng"
	"rubix/internal/workload"
)

// Config holds core-model parameters.
type Config struct {
	FreqGHz float64 // core clock (paper: 3 GHz)
	BaseCPI float64 // cycles per instruction absent LLC misses (8-wide OoO)
}

// DefaultConfig returns the paper's core configuration: 3 GHz, 8-wide
// out-of-order modelled as a base CPI of 0.4.
func DefaultConfig() Config { return Config{FreqGHz: 3.0, BaseCPI: 0.4} }

// Core is one simulated core running one workload.
type Core struct {
	ID      int
	Now     float64 // ns
	Retired uint64
	Target  uint64

	cfg     Config
	profile workload.Profile
	mlpCap  int // max overlapped misses (MSHR-limited MLP)
	meanGap float64
	rng     *rng.Xoshiro256

	// pipelined batches: high-MLP workloads keep several miss bursts in
	// flight, so a burst's latency (and its variance from bank conflicts)
	// is hidden behind subsequent bursts' compute and issue;
	// dependent-chain workloads (low MLP) stall on every burst.
	pending []float64 // completion times of in-flight bursts (ring)
	pHead   int
	// pendingC is the async twin of pending: StepBatchAsync parks a burst's
	// Completion future here and Waits on it only when the ring slot is
	// reused — the exact point finishBurst would consume the float. Lazily
	// sized on first async use so the serial path pays nothing.
	pendingC []Completion

	lines    []uint64   // StepBatch burst scratch, capacity >= mlpCap
	linesArr [16]uint64 // inline backing for lines at typical MLP (no heap alloc)
}

// New builds a core that will retire target instructions of the given
// workload profile.
func New(id int, cfg Config, p workload.Profile, target uint64, seed uint64) *Core {
	mpki := p.MPKI
	if mpki <= 0 {
		mpki = 0.001 // effectively no misses, but keep the loop finite
	}
	mlp := int(p.MLP)
	if mlp < 1 {
		mlp = 1
	}
	c := &Core{
		ID:      id,
		Target:  target,
		cfg:     cfg,
		profile: p,
		mlpCap:  mlp,
		meanGap: 1000 / mpki,
		rng:     rng.NewXoshiro256(seed),
	}
	// High-MLP workloads keep `mlp` bursts in flight (deep MSHR + memory
	// controller queues); dependent-chain workloads (mlp < 4) stall on
	// every burst.
	if mlp >= 4 {
		c.pending = make([]float64, mlp)
	} else {
		c.pending = make([]float64, 1)
	}
	if mlp <= len(c.linesArr) {
		c.lines = c.linesArr[:0]
	} else {
		c.lines = make([]uint64, 0, mlp)
	}
	return c
}

// Done reports whether the core has retired its instruction target.
func (c *Core) Done() bool { return c.Retired >= c.Target }

// AccessFunc issues a memory access at a given time and returns its
// completion time; the memory controller provides it.
type AccessFunc func(line uint64, arrival float64) float64

// BatchAccessFunc issues a batch of memory accesses, all arriving at the
// same time — one core's MLP burst — and returns the latest completion
// (at least arrival). The memory controller's AccessBatch provides it.
type BatchAccessFunc func(lines []uint64, arrival float64) float64

// Completion is a future for one burst's completion time. Wait blocks until
// the burst has been simulated and returns the latest completion time
// (at least the burst's arrival). The sharded simulator returns these from
// its routing layer so cores can run ahead of the DRAM shards by up to one
// pending-ring depth of bursts.
type Completion interface {
	Wait() float64
}

// AsyncBatchAccessFunc issues a batch of memory accesses, all arriving at
// the same time, and returns a future for the latest completion instead of
// blocking on it. The sharded router provides it.
type AsyncBatchAccessFunc func(lines []uint64, arrival float64) Completion

// Serial adapts a per-line AccessFunc to the batch shape by issuing the
// batch one access at a time, in order, at the common arrival time. It is
// the scalar reference the batch path is differentially tested against.
func Serial(f AccessFunc) BatchAccessFunc {
	return func(lines []uint64, arrival float64) float64 {
		maxCompletion := arrival
		for _, line := range lines {
			if comp := f(line, arrival); comp > maxCompletion {
				maxCompletion = comp
			}
		}
		return maxCompletion
	}
}

// Step simulates one memory-level-parallel episode: the compute gap leading
// up to the next LLC miss, then a batch of overlapped misses. Misses that
// belong to one burst (Generator.InBurst) are issued at the same time, as a
// real core's MSHRs would, up to the workload's MLP; the core then stalls
// until the last of them completes.
func (c *Core) Step(access AccessFunc) {
	gap := c.rng.Geometric(c.meanGap)
	c.Now += float64(gap) * c.cfg.BaseCPI / c.cfg.FreqGHz
	c.Retired += uint64(gap)

	issue := c.Now
	maxCompletion := issue
	for k := 0; ; k++ {
		addr := c.profile.Gen.Next()
		if comp := access(addr, issue); comp > maxCompletion {
			maxCompletion = comp
		}
		if k+1 >= c.mlpCap || !c.profile.Gen.InBurst() {
			break
		}
		// The compute between overlapped misses also overlaps with the
		// outstanding memory time.
		g := c.rng.Geometric(c.meanGap)
		c.Retired += uint64(g)
		c.Now += float64(g) * c.cfg.BaseCPI / c.cfg.FreqGHz
	}
	c.finishBurst(maxCompletion)
}

// StepBatch is Step with the burst issued through one batched controller
// call: the burst's addresses are collected first — generator and gap-RNG
// draws interleave in exactly Step's order, and all misses of a burst carry
// the same issue time there too — then handed to access as one batch.
// Step(f) and StepBatch(Serial(f)) are byte-identical by construction
// (TestStepBatchMatchesStep pins it).
//
// hot: one call per simulated miss burst.
func (c *Core) StepBatch(access BatchAccessFunc) {
	gap := c.rng.Geometric(c.meanGap)
	c.Now += float64(gap) * c.cfg.BaseCPI / c.cfg.FreqGHz
	c.Retired += uint64(gap)

	issue := c.Now
	c.lines = c.lines[:0]
	for k := 0; ; k++ {
		//lint:allow hotalloc append reuses the burst buffer truncated above; capacity growth stops at mlpCap after the first bursts
		c.lines = append(c.lines, c.profile.Gen.Next())
		if k+1 >= c.mlpCap || !c.profile.Gen.InBurst() {
			break
		}
		// The compute between overlapped misses also overlaps with the
		// outstanding memory time.
		g := c.rng.Geometric(c.meanGap)
		c.Retired += uint64(g)
		c.Now += float64(g) * c.cfg.BaseCPI / c.cfg.FreqGHz
	}
	c.finishBurst(access(c.lines, issue))
}

// StepBatchAsync is StepBatch with the burst issued through an async
// routing layer: the generator and gap-RNG draws, the issue time, and the
// point at which a burst's completion is consumed (the pending-ring slot
// reuse) are all identical to StepBatch, so StepBatch(f) and
// StepBatchAsync(asyncOf(f)) retire byte-identical core clocks.
//
// hot: one call per simulated miss burst on the sharded path.
func (c *Core) StepBatchAsync(access AsyncBatchAccessFunc) {
	gap := c.rng.Geometric(c.meanGap)
	c.Now += float64(gap) * c.cfg.BaseCPI / c.cfg.FreqGHz
	c.Retired += uint64(gap)

	issue := c.Now
	c.lines = c.lines[:0]
	for k := 0; ; k++ {
		//lint:allow hotalloc append reuses the burst buffer truncated above; capacity growth stops at mlpCap after the first bursts
		c.lines = append(c.lines, c.profile.Gen.Next())
		if k+1 >= c.mlpCap || !c.profile.Gen.InBurst() {
			break
		}
		// The compute between overlapped misses also overlaps with the
		// outstanding memory time.
		g := c.rng.Geometric(c.meanGap)
		c.Retired += uint64(g)
		c.Now += float64(g) * c.cfg.BaseCPI / c.cfg.FreqGHz
	}
	c.finishBurstAsync(access(c.lines, issue))
}

// finishBurstAsync is finishBurst over futures: the future entering the
// ring is not awaited until its slot is reused, mirroring exactly when
// finishBurst reads the evicted float — so the core clock advances through
// the same comparisons in the same order.
func (c *Core) finishBurstAsync(comp Completion) {
	if len(c.pending) > 1 {
		if c.pendingC == nil {
			//lint:allow hotalloc one-time lazy ring allocation on the first async burst; nil thereafter
			c.pendingC = make([]Completion, len(c.pending))
		}
		if old := c.pendingC[c.pHead]; old != nil {
			if v := old.Wait(); v > c.Now {
				c.Now = v
			}
		}
		c.pendingC[c.pHead] = comp
		c.pHead = (c.pHead + 1) % len(c.pending)
		return
	}
	if v := comp.Wait(); v > c.Now {
		c.Now = v
	}
}

// DrainPending awaits every outstanding async burst in ring order and
// retires their completion times into the core clock — the async
// counterpart of the implicit drain a finished serial core performs (a
// serial core's pending floats are already folded in as slots recycle; the
// final ring contents never advance Now past the last consumed slot, and
// the async path must consume the same set).
//
// cold: once per core at end of run.
func (c *Core) DrainPending() {
	for i := 0; i < len(c.pendingC); i++ {
		idx := (c.pHead + i) % len(c.pendingC)
		if f := c.pendingC[idx]; f != nil {
			f.Wait()
			c.pendingC[idx] = nil
		}
	}
}

// finishBurst retires one burst's completion time into the core clock: the
// pending ring hides it behind newer bursts for high-MLP workloads, while
// dependent-chain workloads stall on it immediately.
func (c *Core) finishBurst(maxCompletion float64) {
	if len(c.pending) > 1 {
		// Stall on the oldest in-flight burst's completion; newer bursts
		// drain while the core computes onward.
		if old := c.pending[c.pHead]; old > c.Now {
			c.Now = old
		}
		c.pending[c.pHead] = maxCompletion
		c.pHead = (c.pHead + 1) % len(c.pending)
		return
	}
	if maxCompletion > c.Now {
		c.Now = maxCompletion
	}
}

// IPC returns the core's achieved instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Now <= 0 {
		return 0
	}
	return float64(c.Retired) / (c.Now * c.cfg.FreqGHz)
}

// WorkloadName returns the name of the workload the core runs.
func (c *Core) WorkloadName() string { return c.profile.Gen.Name() }
