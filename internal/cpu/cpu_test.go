package cpu

import (
	"testing"

	"rubix/internal/workload"
)

// fixedGen emits a fixed address with configurable burst grouping.
type fixedGen struct {
	burst   bool
	next    uint64
	stride  uint64
	issued  int
	inGroup int
	group   int
}

func (f *fixedGen) Name() string { return "fixed" }
func (f *fixedGen) Next() uint64 {
	a := f.next
	f.next += f.stride
	f.issued++
	f.inGroup++
	if f.group > 0 && f.inGroup >= f.group {
		f.inGroup = 0
	}
	return a
}
func (f *fixedGen) InBurst() bool {
	if f.group <= 0 {
		return f.burst
	}
	return f.inGroup != 0
}

// flatMemory returns a fixed latency.
func flatMemory(lat float64) AccessFunc {
	return func(_ uint64, arrival float64) float64 { return arrival + lat }
}

func TestRetiresTarget(t *testing.T) {
	p := workload.Profile{Gen: &fixedGen{}, MPKI: 10, MLP: 1}
	c := New(0, DefaultConfig(), p, 100000, 1)
	for !c.Done() {
		c.Step(flatMemory(50))
	}
	if c.Retired < 100000 {
		t.Fatalf("retired %d, want >= 100000", c.Retired)
	}
	if c.Retired > 150000 {
		t.Fatalf("retired %d overshoots target wildly", c.Retired)
	}
}

func TestIPCComputeBound(t *testing.T) {
	// Negligible miss rate: IPC approaches 1/BaseCPI.
	p := workload.Profile{Gen: &fixedGen{}, MPKI: 0.001, MLP: 1}
	c := New(0, DefaultConfig(), p, 2_000_000, 1)
	for !c.Done() {
		c.Step(flatMemory(50))
	}
	if ipc := c.IPC(); ipc < 2.3 || ipc > 2.55 {
		t.Fatalf("compute-bound IPC %.2f, want ~2.5 (CPI 0.4)", ipc)
	}
}

func TestIPCMemoryBoundSerial(t *testing.T) {
	// MLP 1 (serial): each miss stalls for the full latency.
	p := workload.Profile{Gen: &fixedGen{}, MPKI: 10, MLP: 1}
	c := New(0, DefaultConfig(), p, 1_000_000, 1)
	for !c.Done() {
		c.Step(flatMemory(100))
	}
	// Per 100 instructions: 100*0.1333 ns compute + 1 miss * 100 ns.
	wantIPC := 100.0 / ((100*0.4/3 + 100) * 3)
	got := c.IPC()
	if got < 0.9*wantIPC || got > 1.1*wantIPC {
		t.Fatalf("serial IPC %.3f, want ~%.3f", got, wantIPC)
	}
}

func TestMLPHidesLatency(t *testing.T) {
	// Same miss rate, but bursts of 8 overlapped misses with a deep
	// pipeline: the 100 ns latency should be mostly hidden.
	serial := workload.Profile{Gen: &fixedGen{}, MPKI: 10, MLP: 1}
	cs := New(0, DefaultConfig(), serial, 1_000_000, 1)
	for !cs.Done() {
		cs.Step(flatMemory(100))
	}
	pipelined := workload.Profile{Gen: &fixedGen{burst: true}, MPKI: 10, MLP: 8}
	cp := New(0, DefaultConfig(), pipelined, 1_000_000, 1)
	for !cp.Done() {
		cp.Step(flatMemory(100))
	}
	if cp.IPC() < 3*cs.IPC() {
		t.Fatalf("MLP 8 IPC %.3f not much better than serial %.3f", cp.IPC(), cs.IPC())
	}
}

func TestBatchRespectsMLPCap(t *testing.T) {
	gen := &fixedGen{burst: true} // endless burst
	p := workload.Profile{Gen: gen, MPKI: 100, MLP: 4}
	c := New(0, DefaultConfig(), p, 10_000, 1)
	issues := map[float64]int{}
	for !c.Done() {
		c.Step(func(_ uint64, arrival float64) float64 {
			issues[arrival]++
			return arrival + 10
		})
	}
	for at, n := range issues {
		if n > 4 {
			t.Fatalf("%d misses issued at t=%.1f, MLP cap is 4", n, at)
		}
	}
}

func TestBurstBoundaryEndsBatch(t *testing.T) {
	gen := &fixedGen{group: 2} // bursts of exactly 2
	p := workload.Profile{Gen: gen, MPKI: 100, MLP: 8}
	c := New(0, DefaultConfig(), p, 10_000, 1)
	issues := map[float64]int{}
	for !c.Done() {
		c.Step(func(_ uint64, arrival float64) float64 {
			issues[arrival]++
			return arrival + 10
		})
	}
	for at, n := range issues {
		if n > 2 {
			t.Fatalf("%d misses at t=%.1f crossed a burst boundary", n, at)
		}
	}
}

func TestMissRateMatchesMPKI(t *testing.T) {
	gen := &fixedGen{}
	p := workload.Profile{Gen: gen, MPKI: 5, MLP: 1}
	c := New(0, DefaultConfig(), p, 4_000_000, 1)
	misses := 0
	for !c.Done() {
		c.Step(func(_ uint64, arrival float64) float64 {
			misses++
			return arrival + 20
		})
	}
	mpki := float64(misses) / float64(c.Retired) * 1000
	if mpki < 4.5 || mpki > 5.5 {
		t.Fatalf("achieved MPKI %.2f, want ~5", mpki)
	}
}

// TestStepBatchMatchesStep is the differential oracle for the batch issue
// path: with identical seeds and generator state, Step(f) and
// StepBatch(Serial(f)) must produce the same clock, retirement count, and
// the same (line, arrival) access sequence — byte-identical, not just
// statistically equivalent. Covered shapes: bursty high-MLP (pipelined
// pending ring) and serial MLP-1 (stall on every miss).
func TestStepBatchMatchesStep(t *testing.T) {
	type access struct {
		line    uint64
		arrival float64
	}
	cases := []struct {
		name string
		prof func() workload.Profile
	}{
		{"bursty-mlp8", func() workload.Profile {
			return workload.Profile{Gen: &fixedGen{group: 6, stride: 3}, MPKI: 10, MLP: 8}
		}},
		{"serial-mlp1", func() workload.Profile {
			return workload.Profile{Gen: &fixedGen{stride: 7}, MPKI: 20, MLP: 1}
		}},
	}
	// Line-dependent latency so any divergence in address order or issue
	// time feeds back into the clock and compounds.
	latency := func(line uint64, arrival float64) float64 {
		return arrival + 30 + float64(line%7)*11
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var scalarLog, batchLog []access
			scalar := New(0, DefaultConfig(), tc.prof(), 200_000, 42)
			for !scalar.Done() {
				scalar.Step(func(line uint64, arrival float64) float64 {
					scalarLog = append(scalarLog, access{line, arrival})
					return latency(line, arrival)
				})
			}
			batch := New(0, DefaultConfig(), tc.prof(), 200_000, 42)
			for !batch.Done() {
				batch.StepBatch(Serial(func(line uint64, arrival float64) float64 {
					batchLog = append(batchLog, access{line, arrival})
					return latency(line, arrival)
				}))
			}
			if scalar.Now != batch.Now || scalar.Retired != batch.Retired {
				t.Fatalf("clocks diverged: scalar (%.6f, %d) vs batch (%.6f, %d)",
					scalar.Now, scalar.Retired, batch.Now, batch.Retired)
			}
			if len(scalarLog) != len(batchLog) {
				t.Fatalf("access counts diverged: %d vs %d", len(scalarLog), len(batchLog))
			}
			for i := range scalarLog {
				if scalarLog[i] != batchLog[i] {
					t.Fatalf("access %d diverged: scalar %+v vs batch %+v",
						i, scalarLog[i], batchLog[i])
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		p := workload.Profile{Gen: &fixedGen{}, MPKI: 10, MLP: 4}
		c := New(0, DefaultConfig(), p, 100_000, 42)
		for !c.Done() {
			c.Step(flatMemory(30))
		}
		return c.Retired, c.Now
	}
	r1, n1 := run()
	r2, n2 := run()
	if r1 != r2 || n1 != n2 {
		t.Fatal("same seed must replay identically")
	}
}
