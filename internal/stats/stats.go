// Package stats provides small streaming statistics containers used by the
// simulator's instrumentation: a log-bucketed latency histogram with
// percentile queries, and a running mean/max accumulator. Everything is
// allocation-free on the hot path.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Histogram is a log₂-bucketed histogram for non-negative values. Bucket i
// covers [2^(i-1), 2^i) except bucket 0, which covers [0, 1). It answers
// approximate percentile queries with ≤ 2× relative error — plenty for
// latency distributions spanning 14 ns row hits to millisecond throttles.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     float64
	max     float64
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := 0
	if v >= 1 {
		b = int(math.Log2(v)) + 1
		if b > 63 {
			b = 63
		}
	}
	h.buckets[b]++
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns the approximate p-th percentile (p in [0, 100]): the
// upper bound of the bucket containing the p-th sample.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 1
			}
			return math.Exp2(float64(i))
		}
	}
	return h.max
}

// Merge adds all of o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// histogramJSON is the wire form of a Histogram. The fields are unexported
// in Histogram itself to keep the hot-path representation free to change;
// serialization goes through this fixed shape so stored results decode
// across refactors. Buckets are sparse: index/count pairs for the non-zero
// buckets only, in ascending index order (deterministic — no maps).
type histogramJSON struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Max     float64  `json:"max"`
	Bucket  []int    `json:"bucket,omitempty"`
	Samples []uint64 `json:"samples,omitempty"`
}

// MarshalJSON implements json.Marshaler. The encoding round-trips exactly:
// bucket counts are integers and sum/max re-encode to the same shortest
// float64 rendering, so Marshal(Unmarshal(x)) == x byte-for-byte — the
// property the persistent result store's byte-identity contract needs.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	w := histogramJSON{Count: h.count, Sum: h.sum, Max: h.max}
	for i, n := range h.buckets {
		if n != 0 {
			w.Bucket = append(w.Bucket, i)
			w.Samples = append(w.Samples, n)
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Bucket) != len(w.Samples) {
		return fmt.Errorf("stats: histogram bucket/samples length mismatch (%d vs %d)", len(w.Bucket), len(w.Samples))
	}
	*h = Histogram{count: w.Count, sum: w.Sum, max: w.Max}
	for i, b := range w.Bucket {
		if b < 0 || b >= len(h.buckets) {
			return fmt.Errorf("stats: histogram bucket index %d out of range", b)
		}
		h.buckets[b] = w.Samples[i]
	}
	return nil
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.max)
}

// Bars renders an ASCII bucket chart of the non-empty range.
func (h *Histogram) Bars(width int) string {
	if h.count == 0 {
		return "(empty)\n"
	}
	lo, hi := -1, -1
	var peak uint64
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(float64(h.buckets[i]) / float64(peak) * float64(width))
		upper := math.Exp2(float64(i))
		if i == 0 {
			upper = 1
		}
		fmt.Fprintf(&b, "%10.0f |%-*s| %d\n", upper, width, strings.Repeat("#", n), h.buckets[i])
	}
	return b.String()
}

// Running tracks mean/min/max of a stream without storing it.
type Running struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one sample.
func (r *Running) Add(v float64) {
	if r.n == 0 || v < r.min {
		r.min = v
	}
	if r.n == 0 || v > r.max {
		r.max = v
	}
	r.n++
	r.sum += v
}

// N reports the sample count.
func (r *Running) N() uint64 { return r.n }

// Mean reports the mean (0 when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Min reports the smallest sample (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max reports the largest sample (0 when empty).
func (r *Running) Max() float64 { return r.max }
