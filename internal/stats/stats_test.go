package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"rubix/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 6.2 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 16 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	r := rng.NewXoshiro256(1)
	for i := 0; i < 100000; i++ {
		h.Add(float64(r.Intn(1000)))
	}
	// Log buckets guarantee ≤2x relative error.
	p50 := h.Percentile(50)
	if p50 < 250 || p50 > 1024 {
		t.Fatalf("p50 = %v for uniform [0,1000)", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 512 || p99 > 2048 {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Percentile(100) > 1 {
		t.Fatal("negative sample not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10)
	b.Add(1000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merge lost samples: n=%d max=%v", a.Count(), a.Max())
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	single := func() *Histogram {
		var h Histogram
		h.Add(100)
		return &h
	}
	uniform := func() *Histogram {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Add(float64(i))
		}
		return &h
	}
	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want func(v float64) bool
	}{
		{"empty p0", &Histogram{}, 0, func(v float64) bool { return v == 0 }},
		{"empty p50", &Histogram{}, 50, func(v float64) bool { return v == 0 }},
		{"empty p100", &Histogram{}, 100, func(v float64) bool { return v == 0 }},
		// One sample of 100 lands in bucket [64, 128): every percentile
		// reports that bucket's upper bound.
		{"single p0", single(), 0, func(v float64) bool { return v == 128 }},
		{"single p50", single(), 50, func(v float64) bool { return v == 128 }},
		{"single p100", single(), 100, func(v float64) bool { return v == 128 }},
		// p0 means "the first sample": the smallest bucket's bound, never 0.
		{"uniform p0", uniform(), 0, func(v float64) bool { return v == 1 }},
		{"uniform p100", uniform(), 100, func(v float64) bool { return v >= 999 && v <= 2048 }},
		// Out-of-range p clamps instead of panicking or extrapolating.
		{"p below range", uniform(), -10, func(v float64) bool { return v == 1 }},
		{"p above range", uniform(), 250, func(v float64) bool { return v >= 999 && v <= 2048 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := tc.h.Percentile(tc.p); !tc.want(v) {
				t.Fatalf("Percentile(%v) = %v", tc.p, v)
			}
		})
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	low := func() *Histogram { // 100 samples in [0, 1)
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Add(0.5)
		}
		return &h
	}
	high := func() *Histogram { // 100 samples around 1e6
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Add(1e6)
		}
		return &h
	}
	t.Run("both empty", func(t *testing.T) {
		var a, b Histogram
		a.Merge(&b)
		if a.Count() != 0 || a.Mean() != 0 || a.Percentile(50) != 0 {
			t.Fatalf("empty merge dirtied the receiver: %s", a.String())
		}
	})
	t.Run("empty into populated", func(t *testing.T) {
		a, before := low(), low().String()
		var b Histogram
		a.Merge(&b)
		if a.String() != before {
			t.Fatalf("merging empty changed stats: %s -> %s", before, a.String())
		}
	})
	t.Run("populated into empty", func(t *testing.T) {
		var a Histogram
		a.Merge(high())
		if a.Count() != 100 || a.Max() != 1e6 {
			t.Fatalf("adopt failed: %s", a.String())
		}
	})
	t.Run("disjoint ranges", func(t *testing.T) {
		a := low()
		a.Merge(high())
		if a.Count() != 200 {
			t.Fatalf("count = %d, want 200", a.Count())
		}
		if got, want := a.Mean(), (100*0.5+100*1e6)/200; math.Abs(got-want) > 1e-6 {
			t.Fatalf("mean = %v, want %v", got, want)
		}
		// Half the mass is below 1, half near 1e6: p25 must come from the
		// low bucket, p75 from the high one.
		if p := a.Percentile(25); p != 1 {
			t.Fatalf("p25 = %v, want 1", p)
		}
		if p := a.Percentile(75); p < 1e6 || p > 2<<20 {
			t.Fatalf("p75 = %v, want ~1e6", p)
		}
		if a.Max() != 1e6 {
			t.Fatalf("max = %v", a.Max())
		}
	})
	t.Run("merge is commutative", func(t *testing.T) {
		a, b := low(), high()
		b2, a2 := low(), high()
		a.Merge(b)
		a2.Merge(b2)
		if a.String() != a2.String() {
			t.Fatalf("order changed stats: %s vs %s", a.String(), a2.String())
		}
	})
}

func TestHistogramRenders(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if s := h.String(); !strings.Contains(s, "p99") {
		t.Fatalf("summary missing fields: %s", s)
	}
	if bars := h.Bars(20); !strings.Contains(bars, "#") {
		t.Fatalf("bars missing: %s", bars)
	}
	var empty Histogram
	if empty.Bars(10) != "(empty)\n" {
		t.Fatal("empty bars wrong")
	}
}

// TestHistogramJSONRoundTrip pins the serialization contract the result
// store depends on: Unmarshal(Marshal(h)) restores every statistic, and a
// second Marshal reproduces the first byte-for-byte.
func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	r := rng.NewXoshiro256(11)
	for i := 0; i < 10_000; i++ {
		h.Add(math.Exp2(float64(r.Uint64n(20))))
	}
	h.Add(0.25) // bucket 0
	enc, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Mean() != h.Mean() || back.Max() != h.Max() ||
		back.Percentile(50) != h.Percentile(50) || back.Percentile(99) != h.Percentile(99) {
		t.Fatalf("round trip lost statistics: %s vs %s", back.String(), h.String())
	}
	enc2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("re-marshal changed bytes:\n 1: %s\n 2: %s", enc, enc2)
	}

	var empty Histogram
	enc, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != `{"count":0,"sum":0,"max":0}` {
		t.Fatalf("empty histogram encoding changed: %s", enc)
	}
	if err := json.Unmarshal([]byte(`{"count":1,"bucket":[99],"samples":[1,2]}`), &empty); err == nil {
		t.Fatal("mismatched bucket/samples lengths must not decode")
	}
	if err := json.Unmarshal([]byte(`{"count":1,"bucket":[99],"samples":[1]}`), &empty); err == nil {
		t.Fatal("out-of-range bucket index must not decode")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	for _, v := range []float64{3, -1, 7} {
		r.Add(v)
	}
	if r.N() != 3 || r.Mean() != 3 || r.Min() != -1 || r.Max() != 7 {
		t.Fatalf("running stats wrong: %+v", r)
	}
	var empty Running
	if empty.Mean() != 0 || empty.Min() != 0 {
		t.Fatal("empty running should report zeros")
	}
}
