package stats

import (
	"strings"
	"testing"

	"rubix/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 6.2 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 16 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	r := rng.NewXoshiro256(1)
	for i := 0; i < 100000; i++ {
		h.Add(float64(r.Intn(1000)))
	}
	// Log buckets guarantee ≤2x relative error.
	p50 := h.Percentile(50)
	if p50 < 250 || p50 > 1024 {
		t.Fatalf("p50 = %v for uniform [0,1000)", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 512 || p99 > 2048 {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Percentile(100) > 1 {
		t.Fatal("negative sample not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10)
	b.Add(1000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merge lost samples: n=%d max=%v", a.Count(), a.Max())
	}
}

func TestHistogramRenders(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if s := h.String(); !strings.Contains(s, "p99") {
		t.Fatalf("summary missing fields: %s", s)
	}
	if bars := h.Bars(20); !strings.Contains(bars, "#") {
		t.Fatalf("bars missing: %s", bars)
	}
	var empty Histogram
	if empty.Bars(10) != "(empty)\n" {
		t.Fatal("empty bars wrong")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	for _, v := range []float64{3, -1, 7} {
		r.Add(v)
	}
	if r.N() != 3 || r.Mean() != 3 || r.Min() != -1 || r.Max() != 7 {
		t.Fatalf("running stats wrong: %+v", r)
	}
	var empty Running
	if empty.Mean() != 0 || empty.Min() != 0 {
		t.Fatal("empty running should report zeros")
	}
}
