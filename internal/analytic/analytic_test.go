package analytic

import (
	"math"
	"testing"
)

func TestPaperFigure4Estimates(t *testing.T) {
	// §4.1: 64K lines into 1M rows: 61.5K rows with exactly 1 line,
	// 1.9K with 2, 40 with 3, none with 4+.
	const lines = 64 * 1024
	const rows = 1024 * 1024
	one := RowsWithExactly(lines, rows, 1)
	if math.Abs(one-61500) > 1000 {
		t.Fatalf("rows with 1 line = %.0f, paper says ~61.5K", one)
	}
	two := RowsWithExactly(lines, rows, 2)
	if math.Abs(two-1900) > 150 {
		t.Fatalf("rows with 2 lines = %.0f, paper says ~1.9K", two)
	}
	three := RowsWithExactly(lines, rows, 3)
	if math.Abs(three-40) > 10 {
		t.Fatalf("rows with 3 lines = %.0f, paper says ~40", three)
	}
	four := RowsWithAtLeast(lines, rows, 4)
	if four > 2 {
		t.Fatalf("rows with 4+ lines = %.2f, paper says none", four)
	}
}

func TestPMFSumsToRows(t *testing.T) {
	const lines = 1000
	const rows = 500
	sum := 0.0
	for k := 0; k <= 30; k++ {
		sum += RowsWithExactly(lines, rows, k)
	}
	if math.Abs(sum-rows) > 1 {
		t.Fatalf("PMF over k sums to %.2f rows, want %d", sum, rows)
	}
}

func TestAtLeastMonotone(t *testing.T) {
	prev := math.Inf(1)
	for k := 0; k < 10; k++ {
		v := RowsWithAtLeast(64*1024, 1024*1024, k)
		if v > prev {
			t.Fatalf("RowsWithAtLeast not monotone at k=%d", k)
		}
		prev = v
	}
	if RowsWithAtLeast(100, 100, 0) != 100 {
		t.Fatal("k=0 must return all rows")
	}
}

func TestHotRowsRandomKernel(t *testing.T) {
	// §4.1 random kernel: 1M accesses over 64K lines into 1M rows with one
	// activation per access; expected hot rows (>= 64 ACTs) below one row.
	hot := HotRows(1_000_000, 64*1024, 1024*1024, 64, 1)
	if hot > 1 {
		t.Fatalf("expected hot rows %.3f, paper estimates < 1", hot)
	}
	if hot <= 0 {
		t.Fatal("expectation should be positive (just tiny)")
	}
}

func TestHotRowsSequentialBaselineContrast(t *testing.T) {
	// Under the sequential mapping the same kernel makes all 1K footprint
	// rows hot; the randomized expectation must be orders of magnitude
	// below that.
	hot := HotRows(1_000_000, 64*1024, 1024*1024, 64, 1)
	if hot > 1000.0/100 {
		t.Fatalf("randomized hot rows %.2f not orders below the 1000 of the baseline", hot)
	}
}

func TestHotRowsEdgeCases(t *testing.T) {
	if HotRows(0, 100, 100, 64, 1) != 0 {
		t.Fatal("no accesses, no hot rows")
	}
	if HotRows(100, 0, 100, 64, 1) != 0 {
		t.Fatal("no footprint, no hot rows")
	}
	if HotRows(100, 100, 100, 64, 0) != 0 {
		t.Fatal("zero activation ratio, no hot rows")
	}
}

func TestBinomPMFStability(t *testing.T) {
	// Large n, tiny p must not overflow or NaN.
	v := binomPMF(1e9, 1e-9, 2)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("binomPMF unstable: %v", v)
	}
	// Poisson(1) approximation: P(2) ≈ e^-1/2 ≈ 0.1839.
	if math.Abs(v-0.1839) > 0.01 {
		t.Fatalf("binomPMF(1e9, 1e-9, 2) = %v, want ~0.1839", v)
	}
}
