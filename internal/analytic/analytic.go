// Package analytic provides the closed-form model behind Figure 4: how many
// rows become hot when a workload's footprint is scattered over memory by a
// randomized line-to-row mapping.
//
// Throwing L lines uniformly into R rows, the number of footprint lines in
// a given row is Binomial(L, 1/R); the paper's estimates (61.5K rows with
// exactly one line, 1.9K with two, 40 with three for L = 64K, R = 1M)
// follow directly.
package analytic

import "math"

// RowsWithExactly returns the expected number of rows containing exactly k
// of the L footprint lines when lines are mapped uniformly into R rows.
func RowsWithExactly(lines, rows uint64, k int) float64 {
	if rows == 0 {
		return 0
	}
	p := 1 / float64(rows)
	return float64(rows) * binomPMF(float64(lines), p, k)
}

// RowsWithAtLeast returns the expected number of rows containing at least k
// footprint lines.
func RowsWithAtLeast(lines, rows uint64, k int) float64 {
	if rows == 0 {
		return 0
	}
	p := 1 / float64(rows)
	// Sum the complement up to k-1; the tail beyond ~60 terms is negligible
	// for the sparse regimes this model is used in.
	cum := 0.0
	for i := 0; i < k; i++ {
		cum += binomPMF(float64(lines), p, i)
	}
	tail := 1 - cum
	if tail < 0 {
		tail = 0
	}
	return float64(rows) * tail
}

// binomPMF computes C(n, k) p^k (1-p)^(n-k) in log space for stability at
// large n and tiny p.
func binomPMF(n, p float64, k int) float64 {
	if k < 0 || float64(k) > n {
		return 0
	}
	kf := float64(k)
	logC := lgamma(n+1) - lgamma(kf+1) - lgamma(n-kf+1)
	logPMF := logC + kf*math.Log(p) + (n-kf)*math.Log1p(-p)
	return math.Exp(logPMF)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// HotRows estimates the expected number of hot rows for a kernel that makes
// `accesses` accesses spread uniformly over a footprint of `lines` lines
// mapped randomly into `rows` rows, with hotness threshold `threshold`
// activations and `actsPerLineAccess` activations per access (1 for a
// random kernel with no locality; 1/rowBufferReuse for kernels with
// row-buffer hits).
//
// A row holding k footprint lines receives approximately
// k × accesses/lines × actsPerLineAccess activations, so it is hot when
// k ≥ threshold × lines / (accesses × actsPerLineAccess).
func HotRows(accesses, lines, rows uint64, threshold int, actsPerLineAccess float64) float64 {
	if lines == 0 || accesses == 0 || actsPerLineAccess <= 0 {
		return 0
	}
	actsPerLine := float64(accesses) / float64(lines) * actsPerLineAccess
	kMin := int(math.Ceil(float64(threshold) / actsPerLine))
	if kMin < 1 {
		kMin = 1
	}
	return RowsWithAtLeast(lines, rows, kMin)
}
