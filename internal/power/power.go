// Package power estimates DRAM power from event counts, standing in for the
// Micron system power calculator the paper uses (§4.9, §5.7).
//
// The model is the standard IDD decomposition: a background term plus
// per-event energies for activate/precharge pairs and column accesses. The
// constants below are derived from Micron DDR4-2400 8 Gb (MT40A-class)
// datasheet currents at VDD = 1.2 V, scaled to a one-rank 16 GB DIMM, and
// land the baseline system in the ~2.8 W range the paper's percentages
// imply (a 120 mW increase is reported as 4.3%).
package power

import "rubix/internal/dram"

// Model holds the power-model constants.
type Model struct {
	BackgroundMW float64 // standby/idle power of the rank(s)
	ActEnergyNJ  float64 // energy per ACT+PRE pair
	CASEnergyNJ  float64 // energy per column access (read or write burst)
}

// DDR4DIMM16GB returns constants for the baseline 16 GB single-rank DIMM.
func DDR4DIMM16GB() Model {
	return Model{
		BackgroundMW: 1950,
		ActEnergyNJ:  5.0,
		CASEnergyNJ:  9.0,
	}
}

// Estimate computes average DRAM power in milliwatts over a run of
// elapsedNs given the DRAM statistics. Demand accesses each perform one
// column access; mitigation traffic contributes its recorded extra
// activations and column accesses.
func (m Model) Estimate(s *dram.Stats, elapsedNs float64) float64 {
	if elapsedNs <= 0 {
		return m.BackgroundMW
	}
	acts := float64(s.DemandActs + s.ExtraActs)
	cas := float64(s.Accesses + s.ExtraCAS)
	// nJ / ns = W; ×1000 = mW.
	dynamic := (acts*m.ActEnergyNJ + cas*m.CASEnergyNJ) / elapsedNs * 1000
	return m.BackgroundMW + dynamic
}
