package power

import (
	"testing"

	"rubix/internal/dram"
)

func TestBackgroundOnly(t *testing.T) {
	m := DDR4DIMM16GB()
	var s dram.Stats
	if got := m.Estimate(&s, 1e6); got != m.BackgroundMW {
		t.Fatalf("idle power = %.0f, want background %.0f", got, m.BackgroundMW)
	}
	if got := m.Estimate(&s, 0); got != m.BackgroundMW {
		t.Fatal("zero elapsed time must fall back to background")
	}
}

func TestDynamicScalesWithRates(t *testing.T) {
	m := DDR4DIMM16GB()
	s := dram.Stats{Accesses: 1000, DemandActs: 500}
	p1 := m.Estimate(&s, 1e6)
	p2 := m.Estimate(&s, 2e6) // same events over twice the time = lower power
	if p2 >= p1 {
		t.Fatalf("power should fall with rate: %.1f vs %.1f", p1, p2)
	}
	doubled := dram.Stats{Accesses: 2000, DemandActs: 1000}
	p3 := m.Estimate(&doubled, 1e6)
	if p3 <= p1 {
		t.Fatal("twice the events must cost more power")
	}
	// Dynamic part must scale exactly linearly.
	d1 := p1 - m.BackgroundMW
	d3 := p3 - m.BackgroundMW
	if d3 < 1.99*d1 || d3 > 2.01*d1 {
		t.Fatalf("dynamic power non-linear: %.2f vs %.2f", d1, d3)
	}
}

func TestActivationsCostPower(t *testing.T) {
	m := DDR4DIMM16GB()
	lowActs := dram.Stats{Accesses: 1_000_000, DemandActs: 100_000}
	highActs := dram.Stats{Accesses: 1_000_000, DemandActs: 1_000_000}
	pl := m.Estimate(&lowActs, 1e7)
	ph := m.Estimate(&highActs, 1e7)
	if ph <= pl {
		t.Fatal("a lower row-buffer hit rate (more ACTs) must cost more power")
	}
	// The paper's scale: ~2.7x more activations costs a few hundred mW.
	if delta := ph - pl; delta < 100 || delta > 1500 {
		t.Fatalf("ACT power delta %.0f mW implausible", delta)
	}
}

func TestMitigationTrafficCounted(t *testing.T) {
	m := DDR4DIMM16GB()
	clean := dram.Stats{Accesses: 1_000_000, DemandActs: 300_000}
	dirty := clean
	dirty.ExtraActs = 100_000
	dirty.ExtraCAS = 500_000
	if m.Estimate(&dirty, 1e7) <= m.Estimate(&clean, 1e7) {
		t.Fatal("migration traffic must cost power")
	}
}

func TestBaselineInPaperRange(t *testing.T) {
	// A representative baseline run: ~100M accesses/s, 30% miss rate.
	m := DDR4DIMM16GB()
	s := dram.Stats{Accesses: 10_000_000, DemandActs: 3_000_000}
	p := m.Estimate(&s, 1e8) // 100 ms
	// The paper's percentages imply a ~2.8 W baseline system.
	if p < 2000 || p > 3800 {
		t.Fatalf("baseline power %.0f mW outside the plausible DDR4 DIMM range", p)
	}
}
