package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rubix/internal/check"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/workload"
)

// runParanoid executes one small simulation with a fresh paranoid checker
// attached and fails the test on any violation.
func runParanoid(t *testing.T, mapName, mitName string, timing dram.Timing) *check.Checker {
	t.Helper()
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("xz", 2, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	chk := check.New(check.Config{SampleEvery: 8})
	_, err = Run(Config{
		Geometry:       g,
		Timing:         timing,
		TRH:            128,
		MappingName:    mapName,
		MitigationName: mitName,
		Workloads:      profiles,
		InstrPerCore:   2_000_000,
		Seed:           42,
		Check:          chk,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", mapName, mitName, err)
	}
	if chk.Checks() == 0 {
		t.Fatalf("%s/%s: paranoid mode ran no checks", mapName, mitName)
	}
	return chk
}

func TestParanoidCleanAcrossMappings(t *testing.T) {
	for _, mapName := range []string{
		"sequential", "coffeelake", "skylake", "mop",
		"largestride-gs4", "rubixs-gs4", "staticxor-gs4",
	} {
		runParanoid(t, mapName, "none", dram.Timing{})
	}
}

func TestParanoidCleanUnderMitigations(t *testing.T) {
	for _, mit := range []string{"aqua", "srs", "blockhammer", "trr", "para"} {
		runParanoid(t, "coffeelake", mit, dram.Timing{})
	}
}

func TestParanoidCleanWithRefreshTiming(t *testing.T) {
	runParanoid(t, "coffeelake", "none", dram.DDR4_2400().WithRefresh())
}

func TestParanoidCleanRubixD(t *testing.T) {
	// Rubix-D exercises the remap-observer path (window flushes + sampled
	// group round-trips); epoch rolls need far longer runs, which the
	// dedicated check-package test covers on a tiny geometry.
	runParanoid(t, "rubixd-gs4", "none", dram.Timing{})
}

// collidingMapper folds the whole address space onto 4096 physical lines —
// a bijection violation only runtime checking can see (it enters Run as a
// plain Mapper, so construction-time validation never runs). Any workload
// touching > 4096 distinct lines collides by pigeonhole, since the checker
// window holds more sampled pairs than the folded space.
type collidingMapper struct{}

func (collidingMapper) Name() string           { return "Colliding" }
func (collidingMapper) Map(line uint64) uint64 { return line & 0xFFF }

func TestParanoidCatchesCollidingMapper(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("mcf", 2, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	chk := check.New(check.Config{SampleEvery: 1, WindowLines: 1 << 16})
	_, err = Run(Config{
		Geometry:       g,
		TRH:            128,
		MitigationName: "none",
		CustomMapper:   collidingMapper{},
		Workloads:      profiles,
		InstrPerCore:   2_000_000,
		Seed:           42,
		Check:          chk,
	})
	if err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision failure, got %v", err)
	}
}

func TestSuiteParanoidOption(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}, Paranoid: true})
	if _, err := s.Run(RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteRetriesAfterTransientFailure(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}})
	calls := 0
	s.resolve = func(spec string, cores int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient resolver outage")
		}
		return ResolveWorkload(spec, cores, g, seed)
	}
	spec := RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	if _, err := s.Run(spec); err == nil {
		t.Fatal("first run should fail")
	}
	res, err := s.Run(spec)
	if err != nil {
		t.Fatalf("second run did not retry: %v", err)
	}
	if res == nil || res.MeanIPC <= 0 {
		t.Fatal("retried run returned no result")
	}
	// Third run must come from the cache, not re-resolve.
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("resolver called %d times, want 2 (fail, succeed, cached)", calls)
	}
}

func TestPrefetchAggregatesAllErrors(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}})
	specs := []RunSpec{
		{Workload: "nope1", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
		{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
		{Workload: "nope2", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
		{Workload: "nope3", Mapping: "coffeelake", Mitigation: "none", TRH: 128},
	}
	err := s.Prefetch(specs)
	if err == nil {
		t.Fatal("Prefetch with three bad specs returned nil")
	}
	for _, name := range []string{"nope1", "nope2", "nope3"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error drops %s: %v", name, err)
		}
	}
}

func TestSeedZeroHonoredWhenSet(t *testing.T) {
	if o := (Options{}).withDefaults(); o.Seed == 0 {
		t.Fatal("unset seed should get the default")
	}
	if o := (Options{SeedSet: true}).withDefaults(); o.Seed != 0 {
		t.Fatalf("explicit seed 0 remapped to %#x", o.Seed)
	}
	if o := (Options{Seed: 7}).withDefaults(); o.Seed != 7 {
		t.Fatal("non-zero seed must pass through")
	}
}

func TestReplayRelationsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs several full simulations")
	}
	opts := Options{Scale: 0.01, Cores: 2}
	spec := RunSpec{Workload: "mcf", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	results, err := Replay(opts, spec, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 relations, got %d", len(results))
	}
	for _, r := range results {
		if r.Skipped != "" {
			t.Fatalf("%s skipped on a deterministic mapping: %s", r.Name, r.Skipped)
		}
	}
}

func TestReplaySkipsSeedInvarianceForSeedKeyedMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs several full simulations")
	}
	opts := Options{Scale: 0.01, Cores: 2}
	spec := RunSpec{Workload: "mcf", Mapping: "rubixs-gs4", Mitigation: "none", TRH: 128}
	results, err := Replay(opts, spec, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range results {
		if r.Name == "seed-invariance" {
			found = r.Skipped != ""
		}
	}
	if !found {
		t.Fatal("seed-invariance not skipped for rubixs-gs4")
	}
}

// Ensure the paranoid failure message names the configuration, so sweep
// harnesses point at the offending run.
func TestParanoidErrorNamesConfig(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("xz", 1, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	chk := check.New(check.Config{SampleEvery: 1, WindowLines: 1 << 16})
	_, err = Run(Config{
		Geometry:       g,
		TRH:            128,
		MitigationName: "none",
		CustomMapper:   collidingMapper{},
		Workloads:      profiles,
		InstrPerCore:   1_000_000,
		Seed:           42,
		Check:          chk,
	})
	if err == nil || !strings.Contains(err.Error(), "Colliding") {
		t.Fatalf("failure should name the config, got %v", err)
	}
	_ = fmt.Sprintf("%v", err)
}
