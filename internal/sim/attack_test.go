package sim

import (
	"testing"

	"rubix/internal/geom"
)

func TestAttackProfilesKinds(t *testing.T) {
	g := geom.DDR4_16GB()
	m, err := MapperFor("coffeelake", g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for kind, wantRows := range map[AttackKind]int{
		SingleSided: 1,
		DoubleSided: 2,
		ManySided:   8,
	} {
		profiles, err := AttackProfiles(kind, g, m, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(profiles) != 4 {
			t.Fatalf("%s: %d profiles, want 4", kind, len(profiles))
		}
		// Count distinct rows each attacker touches.
		for _, p := range profiles {
			rows := map[uint64]bool{}
			for i := 0; i < 64; i++ {
				phys := m.Map(p.Gen.Next())
				rows[g.GlobalRow(phys)] = true
			}
			if len(rows) != wantRows {
				t.Fatalf("%s: attacker touches %d rows, want %d", kind, len(rows), wantRows)
			}
		}
	}
	if _, err := AttackProfiles("bogus", g, m, 1, 1); err == nil {
		t.Fatal("unknown attack kind accepted")
	}
}

func TestAttackTargetsAdjacentRows(t *testing.T) {
	// Double-sided aggressors must sandwich the victim: global rows at
	// ±BanksTotal (physical adjacency within the bank).
	g := geom.DDR4_16GB()
	m, err := MapperFor("rubixs-gs4", g, 7)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := AttackProfiles(DoubleSided, g, m, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	r1 := g.GlobalRow(m.Map(profiles[0].Gen.Next()))
	r2 := g.GlobalRow(m.Map(profiles[0].Gen.Next()))
	if r2 < r1 {
		r1, r2 = r2, r1
	}
	if r2-r1 != 2*uint64(g.BanksTotal()) {
		t.Fatalf("aggressors %d apart in global rows, want 2 banks' stride %d", r2-r1, 2*g.BanksTotal())
	}
}

func TestAttackResolvesThroughAnyMapping(t *testing.T) {
	// The same logical attack must reach the same physical rows regardless
	// of the mapping — the attacker aims at physical rows by construction.
	g := geom.DDR4_16GB()
	for _, name := range []string{"coffeelake", "skylake", "rubixs-gs1", "rubixd-gs4", "staticxor-gs2"} {
		m, err := MapperFor(name, g, 5)
		if err != nil {
			t.Fatal(err)
		}
		profiles, err := AttackProfiles(SingleSided, g, m, 1, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		row := g.GlobalRow(m.Map(profiles[0].Gen.Next()))
		for i := 0; i < 16; i++ {
			if got := g.GlobalRow(m.Map(profiles[0].Gen.Next())); got != row {
				t.Fatalf("%s: single-sided attack wandered from row %d to %d", name, row, got)
			}
		}
	}
}

func TestAttackEndToEndSecurity(t *testing.T) {
	// The full loop through sim.Run: secure mitigations keep the watchdog
	// clean under a double-sided attack; the unprotected system does not.
	g := geom.DDR4_16GB()
	run := func(mit string) *Result {
		m, err := MapperFor("coffeelake", g, 9)
		if err != nil {
			t.Fatal(err)
		}
		profiles, err := AttackProfiles(DoubleSided, g, m, 2, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    "coffeelake",
			MitigationName: mit,
			Workloads:      profiles,
			InstrPerCore:   4_000_000,
			Seed:           9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if v := run("none").DRAM.TotalOverTRH(); v == 0 {
		t.Fatal("unprotected system survived a double-sided attack")
	}
	for _, mit := range []string{"aqua", "srs", "blockhammer"} {
		if v := run(mit).DRAM.TotalOverTRH(); v != 0 {
			t.Errorf("%s: %d watchdog violations under attack", mit, v)
		}
	}
}
