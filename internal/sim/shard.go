package sim

// Channel-sharded simulation: one run is split across the geometry's memory
// channels, each shard owning the DRAM banks, mitigation state, census, and
// metrics/check ledgers of its channels, with a single-threaded producer
// (the core event loop) translating every access and routing it to the
// owning shard. The produced Result is byte-identical to the serial path —
// DESIGN.md §14 lays out the determinism argument; TestShardedMatchesSerial
// enforces it differentially.
//
// The rendezvous is the cores' MLP pending ring: a core may run at most
// ring-depth bursts ahead of the shards, and it consumes a burst's
// completion future at exactly the point the serial loop consumes the
// float, so the producer's issue order — and therefore every shard's FIFO
// message order — is byte-for-byte the serial heap-pop order.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rubix/internal/check"
	"rubix/internal/core"
	"rubix/internal/cpu"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/mapping"
	"rubix/internal/memctrl"
	"rubix/internal/metrics"
	"rubix/internal/mitigation"
	"rubix/internal/power"
)

// shardBurstCap is the number of accesses one shardMsg carries inline;
// bursts larger than this (MLP > 16) are split into consecutive messages.
const shardBurstCap = 16

// shardQueueDepth bounds each shard's inbox. Deep enough that the producer
// rarely blocks mid-sweep, small enough that a stalled shard applies
// backpressure within a few thousand accesses.
const shardQueueDepth = 256

// shardMsg is one shard's slice of one core burst. It travels by value
// through the shard's channel, so the steady-state routing path performs no
// heap allocation.
type shardMsg struct {
	b       *burstState
	arrival float64
	n       int32
	writes  uint32 // bitmask over the n items
	lines   [shardBurstCap]uint64
	phys    [shardBurstCap]uint64 // addr: phys
}

// burstState is the rendezvous for one core burst fanned out across shards.
// Each shard folds its local max completion into comp[shard] (its own slot
// — no two shards share one) and decrements remaining; the last decrementer
// signals done. The producer is the only goroutine that calls Wait and the
// only one that recycles, so the freelist needs no lock; the atomic
// decrement chain plus the channel receive give the producer a
// happens-before edge over every shard's comp write.
type burstState struct {
	router    *shardRouter
	remaining atomic.Int32
	done      chan struct{} // buffered 1, reusable across recycles
	arrival   float64
	comp      []float64 // per shard: local max completion

	// Single-access (dynamic-mode) results, written by the worker only for
	// n == 1 messages and read by the producer after the inline rendezvous.
	activated bool
	actStart  float64
	finalPhys uint64 // addr: phys
}

// Wait implements cpu.Completion: block until every shard has retired its
// slice, then fold the per-shard maxima. Max is exact and commutative over
// floats, so the fold order cannot perturb the result. Producer-only.
func (b *burstState) Wait() float64 {
	<-b.done
	v := b.arrival
	for _, c := range b.comp {
		if c > v {
			v = c
		}
	}
	//lint:allow hotalloc freelist growth is bounded by the in-flight burst count (cores × MLP ring depth) and amortizes to zero once the pool is warm
	b.router.free = append(b.router.free, b)
	return v
}

// resolved is an already-completed cpu.Completion, returned by the dynamic
// (Rubix-D) routing path, which rendezvouses inline per access.
type resolved float64

// Wait returns the completion time immediately.
func (v resolved) Wait() float64 { return float64(v) }

// shardRouter is the producer-side routing layer: it owns the translation
// front end (batch mapper, write marking, Rubix-D reactions — everything
// that must stay in global issue order) and the per-shard inboxes.
type shardRouter struct {
	g      geom.Geometry
	shards int
	batch  mapping.BatchedMapper
	dyn    memctrl.Dynamic // non-nil selects the synchronous per-access path

	writeFrac  float64
	writeAccum float64

	in    []chan shardMsg
	ctrls []*memctrl.Controller
	mods  []*dram.Module
	wg    sync.WaitGroup

	free    []*burstState // producer-only recycle pool
	physBuf []uint64
	physArr [shardBurstCap]uint64

	// Rubix-D swap charging (producer-side, shards idle by construction).
	timing     dram.Timing
	rec        *metrics.Recorder // parent recorder
	mRemapSwap *metrics.Counter
	remapSwaps uint64
}

// shardOf returns the shard owning a physical line: channels are assigned
// round-robin, ch mod shards, which for power-of-two shard counts is the
// channel's low bits.
func (r *shardRouter) shardOf(phys uint64) int {
	return r.g.ChannelOf(r.g.GlobalRow(phys)) & (r.shards - 1)
}

// worker drains one shard's inbox: every message's accesses run through the
// shard's own controller (mitigation grant, DRAM timing, census, checker)
// in the exact order the producer issued them.
//
// hot: the sharded simulation main loop; one iteration per routed message.
func (r *shardRouter) worker(sid int) {
	defer r.wg.Done()
	ctrl := r.ctrls[sid]
	for m := range r.in[sid] {
		localMax := m.arrival
		var last memctrl.RoutedResult
		for i := int32(0); i < m.n; i++ {
			res := ctrl.AccessPretranslated(m.lines[i], m.phys[i], m.arrival, m.writes&(1<<uint(i)) != 0)
			if res.Completion > localMax {
				localMax = res.Completion
			}
			last = res
		}
		b := m.b
		if localMax > b.comp[sid] {
			b.comp[sid] = localMax
		}
		// On the dynamic path every message is a whole single-access burst,
		// so the writer is unique; on the static path a burst can split
		// into n==1 messages on several shards, which must not all write
		// the shared result slots.
		if r.dyn != nil {
			b.activated = last.Activated
			b.actStart = last.ActStart
			b.finalPhys = last.FinalPhys
		}
		if b.remaining.Add(-1) == 0 {
			b.done <- struct{}{}
		}
	}
}

// getBurst returns a clean burstState from the recycle pool.
//
// hot: once per core burst; steady state is allocation-free once the pool
// has grown to the cores' aggregate pending-ring depth.
func (r *shardRouter) getBurst(arrival float64) *burstState {
	var b *burstState
	if n := len(r.free); n > 0 {
		b = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		//lint:allow hotalloc pool growth stops at the cores' aggregate MLP ring depth (tens of entries); steady state recycles
		b = &burstState{router: r, done: make(chan struct{}, 1), comp: make([]float64, r.shards)}
	}
	b.arrival = arrival
	for i := range b.comp {
		b.comp[i] = 0
	}
	b.activated = false
	b.actStart = 0
	b.finalPhys = 0
	return b
}

// markWrites replicates the controller's deterministic write marking on the
// producer, in global issue order, returning the burst's write bitmask.
func (r *shardRouter) markWrites(n int) uint32 {
	if r.writeFrac <= 0 {
		return 0
	}
	var w uint32
	for i := 0; i < n; i++ {
		r.writeAccum += r.writeFrac
		if r.writeAccum >= 1 {
			r.writeAccum--
			w |= 1 << uint(i)
		}
	}
	return w
}

// translate runs the burst through the batch mapper into the reusable
// scratch buffer.
func (r *shardRouter) translate(lines []uint64) []uint64 {
	if cap(r.physBuf) < len(lines) {
		//lint:allow hotalloc scratch growth is monotone and stops at the largest burst ever seen
		r.physBuf = make([]uint64, len(lines))
	}
	phys := r.physBuf[:len(lines)]
	r.batch.MapBatch(lines, phys)
	return phys
}

// route fans one core burst out to the owning shards and returns the
// rendezvous future. Two passes: the first counts the messages each shard
// will receive so remaining can be stored before any send (a fast shard
// must not observe a partial count and signal early), the second fills and
// sends. Items reach each shard in burst order, and bursts reach it in
// producer issue order, so every shard sees the serial order restricted to
// its channels.
//
// hot: once per core burst.
func (r *shardRouter) route(lines []uint64, arrival float64) cpu.Completion {
	phys := r.translate(lines)
	writes := r.markWrites(len(lines))
	b := r.getBurst(arrival)

	var cnt [shardBurstCap]int32
	for _, p := range phys {
		cnt[r.shardOf(p)]++
	}
	var msgs int32
	for s := 0; s < r.shards; s++ {
		msgs += (cnt[s] + shardBurstCap - 1) / shardBurstCap
	}
	b.remaining.Store(msgs)

	for s := 0; s < r.shards; s++ {
		if cnt[s] == 0 {
			continue
		}
		var m shardMsg
		m.b = b
		m.arrival = arrival
		for i, p := range phys {
			if r.shardOf(p) != s {
				continue
			}
			m.lines[m.n] = lines[i]
			m.phys[m.n] = p
			if writes&(1<<uint(i)) != 0 {
				m.writes |= 1 << uint(m.n)
			}
			m.n++
			if m.n == shardBurstCap {
				r.in[s] <- m
				m = shardMsg{b: b, arrival: arrival}
			}
		}
		if m.n > 0 {
			r.in[s] <- m
		}
	}
	return b
}

// routeDynamic is the Rubix-D routing path: every access rendezvouses
// synchronously so the producer can feed the remap engine in serial order
// and re-translate the burst tail when a remap episode advances the
// generation — the exact protocol of memctrl.AccessBatch. Byte-identical to
// serial, with no overlap across shards (documented: Rubix-D shards for
// correctness symmetry, not for speedup).
//
// hot: once per core burst on the dynamic path.
func (r *shardRouter) routeDynamic(lines []uint64, arrival float64) cpu.Completion {
	phys := r.translate(lines)
	writes := r.markWrites(len(lines))
	gen := r.dyn.Generation()
	maxC := arrival
	for i := range lines {
		if g := r.dyn.Generation(); g != gen {
			// A remap episode invalidated the pre-translation; redo the
			// tail under the new circuit state.
			r.batch.MapBatch(lines[i:], phys[i:])
			gen = g
		}
		sid := r.shardOf(phys[i])
		b := r.getBurst(arrival)
		b.remaining.Store(1)
		var m shardMsg
		m.b = b
		m.arrival = arrival
		m.n = 1
		m.lines[0] = lines[i]
		m.phys[0] = phys[i]
		if writes&(1<<uint(i)) != 0 {
			m.writes = 1
		}
		r.in[sid] <- m
		<-b.done
		if b.activated {
			if op, ok := r.dyn.NoteActivation(b.finalPhys); ok {
				r.chargeSwap(op, b.actStart)
			}
		}
		if c := b.comp[sid]; c > maxC {
			maxC = c
		}
		//lint:allow hotalloc freelist growth is bounded by the in-flight burst count and amortizes to zero once the pool is warm
		r.free = append(r.free, b)
	}
	return resolved(maxC)
}

// chargeSwap charges one Rubix-D gang swap across the shard modules owning
// the swapped rows — the sharded twin of memctrl.(*Controller).chargeSwap,
// same operations, same arithmetic (memctrl.SwapBlockNs). Safe without
// locking: the dynamic path holds every shard idle at the rendezvous, and
// the per-access done-channel handshakes order these writes against the
// workers' own accesses.
//
// cold: swaps are rare (RemapRate ≈ 1%) next to the access stream.
func (r *shardRouter) chargeSwap(op core.SwapOp, at float64) {
	modOf := func(row uint64) *dram.Module {
		return r.mods[r.g.ChannelOf(row)&(r.shards-1)]
	}
	x := modOf(op.RowX)
	x.ForceActivate(op.RowX, at)
	modOf(op.RowY).ForceActivate(op.RowY, at)
	x.ForceActivate(op.RowX, at)
	x.AddExtraCAS(op.CAS)
	x.BlockChannel(op.RowX, at, memctrl.SwapBlockNs(r.timing, op))
	r.remapSwaps++
	r.mRemapSwap.Inc()
	r.rec.Event(metrics.EvRemapSwap, at, op.RowX)
}

// remapFan fans core.RemapObserver events out to every shard's checker, in
// shard order: a remap episode changes the mapping under all of them, so
// each collision window must flush and each runs the epoch checks.
type remapFan struct {
	children []*check.Checker
}

// OnRemapStep implements core.RemapObserver.
func (f *remapFan) OnRemapStep(group int, ptr uint64, rolled bool) {
	for _, c := range f.children {
		c.OnRemapStep(group, ptr, rolled)
	}
}

// shardableMitigations lists the mitigation names whose state partitions by
// channel: per-row trackers and per-row release grants never couple rows of
// different channels (bank indices embed the channel bits), and neither
// scheme draws randomness. Everything else — probabilistic schemes (PARA,
// DSAC) and row-migration schemes with global quarantine/migration state
// (AQUA, SRS) — falls back to the serial loop.
var shardableMitigations = map[string]bool{
	"none":        true,
	"blockhammer": true,
	"bh":          true,
	"trr":         true,
}

// effectiveShards resolves Config.Shards against the run's geometry and
// mitigation. 0 auto-selects the channel count when the run is shardable
// and 1 otherwise; explicit counts are validated (power of two, ≥ 0) and
// clamped to the channel count; runs whose mitigation cannot be partitioned
// fall back to serial regardless.
func effectiveShards(cfg Config) (int, error) {
	s := cfg.Shards
	if s < 0 {
		return 0, fmt.Errorf("sim: Shards = %d, want ≥ 0", s)
	}
	if s&(s-1) != 0 {
		return 0, fmt.Errorf("sim: Shards = %d, want a power of two", s)
	}
	shardable := cfg.MitigationFactory == nil && shardableMitigations[cfg.MitigationName]
	if s == 0 {
		if !shardable {
			return 1, nil
		}
		s = cfg.Geometry.Channels
	}
	if s > cfg.Geometry.Channels {
		s = cfg.Geometry.Channels
	}
	if s <= 1 || !shardable {
		return 1, nil
	}
	return s, nil
}

// runSharded executes one simulation split across `shards` shard event
// loops and assembles a Result byte-identical to the serial path's. The
// mapper, checker attachment, and map latency are the ones Run already
// resolved; per-shard DRAM modules, mitigations, controllers, recorders,
// and checkers are built here and merged back in fixed shard order.
//
// cold: setup and merge; the per-access work lives in route/worker.
func runSharded(cfg Config, shards int, mapper mapping.Mapper, lat float64) (*Result, error) {
	rec := cfg.Metrics
	chk := cfg.Check

	router := &shardRouter{
		g:          cfg.Geometry,
		shards:     shards,
		batch:      mapping.Batched(mapper),
		writeFrac:  cfg.WriteFraction,
		timing:     cfg.Timing,
		rec:        rec,
		mRemapSwap: rec.Counter("memctrl_remap_swaps"),
		in:         make([]chan shardMsg, shards),
		ctrls:      make([]*memctrl.Controller, shards),
		mods:       make([]*dram.Module, shards),
	}
	router.physBuf = router.physArr[:0]
	if d, ok := mapper.(memctrl.Dynamic); ok {
		router.dyn = d
	}

	recChildren := make([]*metrics.Recorder, shards)
	chkChildren := make([]*check.Checker, shards)
	mits := make([]mitigation.Mitigator, shards)
	for s := 0; s < shards; s++ {
		recChildren[s] = rec.Fork()
		chkChildren[s] = chk.Fork()
		mod := dram.New(dram.Config{
			Geometry:    cfg.Geometry,
			Timing:      cfg.Timing,
			TRH:         cfg.TRH,
			LineCensus:  cfg.LineCensus,
			LatencyHist: cfg.LatencyHist,
			Metrics:     recChildren[s],
			Check:       chkChildren[s],
		})
		mit, err := mitigation.ByName(cfg.MitigationName, mod, cfg.TRH, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mits[s] = mit
		metrics.Attach(recChildren[s], mit)
		if chk != nil {
			mit = check.WrapMitigator(chkChildren[s], mit)
		}
		router.mods[s] = mod
		router.ctrls[s] = memctrl.New(memctrl.Config{
			DRAM: mod, Map: mapper, Mit: mit,
			MapLatencyNs: lat,
			Metrics:      recChildren[s], Check: chkChildren[s],
		})
		router.in[s] = make(chan shardMsg, shardQueueDepth)
	}
	if chk != nil {
		if ro, ok := mapper.(remapObservable); ok {
			ro.SetRemapObserver(&remapFan{children: chkChildren})
		}
	}

	cores := make([]*cpu.Core, len(cfg.Workloads))
	for i, p := range cfg.Workloads {
		cores[i] = cpu.New(i, cfg.Core, p, cfg.InstrPerCore, cfg.Seed+uint64(i)*7919+1)
	}

	rec.Phase("simulate")

	//lint:allow waitgroup Add IS in the spawning function, before the go statements below; the analyzer flags it because runSharded is itself reachable from Suite.Prefetch's worker goroutines, whose lifetime wholly contains this WaitGroup's
	router.wg.Add(shards)
	for s := 0; s < shards; s++ {
		go router.worker(s)
	}
	issue := router.route
	if router.dyn != nil {
		issue = router.routeDynamic
	}
	runCoresAsync(cores, issue)
	for s := 0; s < shards; s++ {
		close(router.in[s])
	}
	router.wg.Wait()

	rec.Phase("census")
	stats := dram.FinalizeSharded(router.mods)
	var mitigations uint64
	for s := 0; s < shards; s++ {
		mitigations += mits[s].Mitigations()
		chkChildren[s].OnRunEnd(router.mods[s].Stats().DemandActs, router.mods[s].Stats().ExtraActs)
		chk.Absorb(chkChildren[s])
		rec.Absorb(recChildren[s])
	}
	chk.OnRunEnd(stats.DemandActs, stats.ExtraActs)

	res := &Result{
		Mapping:     mapper.Name(),
		Mitigation:  mits[0].Name(),
		IPC:         make([]float64, len(cores)),
		DRAM:        stats,
		Mitigations: mitigations,
		RemapSwaps:  router.remapSwaps,
		Shards:      shards,
	}
	for i, c := range cores {
		res.IPC[i] = c.IPC()
		res.MeanIPC += c.IPC()
		if c.Now > res.ElapsedNs {
			res.ElapsedNs = c.Now
		}
		res.WorkloadNames = append(res.WorkloadNames, c.WorkloadName())
	}
	res.MeanIPC /= float64(len(cores))
	res.PowerMW = power.DDR4DIMM16GB().Estimate(stats, res.ElapsedNs)
	res.Config = fmt.Sprintf("%s/%s/TRH=%d", res.Mapping, res.Mitigation, cfg.TRH)
	if rec != nil {
		rec.Gauge("sim_elapsed_ns").Set(res.ElapsedNs)
		rec.Gauge("sim_mean_ipc").Set(res.MeanIPC)
		for i, ipc := range res.IPC {
			rec.Gauge(ipcGaugeName(i)).Set(ipc)
		}
		if stats.Latency != nil {
			rec.Hist("dram_latency_ns").Merge(stats.Latency)
		}
		res.Metrics = rec.Snapshot()
	}
	if err := chk.Err(); err != nil {
		return nil, fmt.Errorf("sim: paranoid check failed for %s: %w", res.Config, err)
	}
	return res, nil
}
