package sim

import (
	"fmt"
	"sync"
	"testing"
)

// renderResult formats everything observable about a run into one string so
// two runs can be compared byte-for-byte. DRAM is dereferenced (a pointer
// would print its address) and Latency histograms stay disabled, so every
// field is plain value data.
func renderResult(r *Result) string {
	return fmt.Sprintf("cfg=%s map=%s mit=%s ipc=%v mean=%v elapsed=%v dram=%+v mit=%d swaps=%d power=%v wl=%v",
		r.Config, r.Mapping, r.Mitigation, r.IPC, r.MeanIPC, r.ElapsedNs,
		*r.DRAM, r.Mitigations, r.RemapSwaps, r.PowerMW, r.WorkloadNames)
}

// TestPrefetchConcurrent drives the Suite cache from many goroutines at once
// — both through Prefetch's worker fan-out and through direct racing Run
// calls on overlapping keys — so `go test -race` can observe any unsynchronized
// access in the cache or the per-entry once. Every caller must get the same
// cached *Result for a given key.
func TestPrefetchConcurrent(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"mcf", "xz"}, Mixes: []int{}, Seed: 17})
	specs := []RunSpec{
		{"mcf", "coffeelake", "none", 1000, false},
		{"mcf", "rubixs-gs1", "none", 1000, false},
		{"xz", "coffeelake", "none", 1000, false},
		{"xz", "rubixs-gs1", "none", 1000, false},
	}
	if err := s.Prefetch(specs); err != nil {
		t.Fatal(err)
	}

	// Race direct Run calls over the (now warm) cache plus one cold spec, with
	// parallelism strictly greater than one regardless of GOMAXPROCS.
	const callers = 8
	cold := RunSpec{"mcf", "sequential", "none", 1000, false}
	all := append(append([]RunSpec(nil), specs...), cold)
	results := make([][]*Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, k := range all {
				res, err := s.Run(k)
				if err != nil {
					t.Errorf("caller %d: %v", c, err)
					return
				}
				results[c] = append(results[c], res)
			}
		}(c)
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		if len(results[c]) != len(results[0]) {
			t.Fatalf("caller %d saw %d results, caller 0 saw %d", c, len(results[c]), len(results[0]))
		}
		for i := range results[c] {
			if results[c][i] != results[0][i] {
				t.Errorf("caller %d key %d: got a different *Result than caller 0 — cache returned a duplicate run", c, i)
			}
		}
	}
}

// TestDeterministicReplayBytes runs the same configuration twice from fresh
// suites with identical seeds and requires byte-identical statistics —
// stronger than TestDeterministicReplay's field spot-checks. This is the
// contract the determinism analyzer (internal/lint) enforces statically:
// no wall-clock, no global RNG, no map-order leakage.
func TestDeterministicReplayBytes(t *testing.T) {
	run := func() string {
		s := NewSuite(Options{Scale: 0.004, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 29})
		res, err := s.Run(RunSpec{Workload: "mcf", Mapping: "rubixd-gs2", Mitigation: "aqua", TRH: 1000, LineCensus: true})
		if err != nil {
			t.Fatal(err)
		}
		return renderResult(res)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds produced different stats:\n run 1: %s\n run 2: %s", a, b)
	}
}
