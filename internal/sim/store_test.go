package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rubix/internal/geom"
	"rubix/internal/workload"
)

// memStore is an in-memory ResultStore double with counters.
type memStore struct {
	mu      sync.Mutex
	entries map[string][]byte // guarded by mu
	gets    int               // guarded by mu
	puts    int               // guarded by mu
}

func newMemStore() *memStore { return &memStore{entries: map[string][]byte{}} }

func (m *memStore) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	data, ok := m.entries[key]
	return data, ok
}

func (m *memStore) Put(key string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	m.entries[key] = append([]byte(nil), payload...)
	return nil
}

// TestStoreKeyGolden pins the canonical hash preimage and the derived key
// byte-for-byte. If this test fails because storePreimage changed — a new
// result-determining Options field, a reordered line, different formatting
// — bump storeKeyVersion and regenerate, or stores written by older builds
// will serve results for the wrong configuration.
func TestStoreKeyGolden(t *testing.T) {
	spec := RunSpec{Workload: "mcf", Mapping: "rubixs-gs4", Mitigation: "aqua", TRH: 128, LineCensus: true}
	opts := Options{Scale: 0.5, Cores: 2, Seed: 7, SeedSet: true, Shards: 1}
	want := "rubix-result v1\n" +
		"workload=\"mcf\"\n" +
		"mapping=\"rubixs-gs4\"\n" +
		"mitigation=\"aqua\"\n" +
		"trh=128\n" +
		"linecensus=true\n" +
		"seed=7\n" +
		"scale=0x1p-01\n" +
		"cores=2\n" +
		"shards=1\n" +
		"geometry=1/1/16/131072/8192/64\n"
	got := storePreimage(spec, opts.withDefaults())
	if string(got) != want {
		t.Fatalf("canonical preimage changed — bump storeKeyVersion.\n got: %q\nwant: %q", got, want)
	}
	sum := sha256.Sum256([]byte(want))
	if key := StoreKey(spec, opts); key != hex.EncodeToString(sum[:]) {
		t.Fatalf("StoreKey = %s, want sha256 of the canonical preimage", key)
	}
}

// TestStoreKeyDiscriminates proves the key separates everything that
// changes a Result and merges what does not.
func TestStoreKeyDiscriminates(t *testing.T) {
	spec := RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	base := Options{Scale: 0.25, Cores: 2, Seed: 9, SeedSet: true}
	baseKey := StoreKey(spec, base)

	// Result-determining variations must change the key.
	variants := map[string]Options{
		"seed":     {Scale: 0.25, Cores: 2, Seed: 10, SeedSet: true},
		"scale":    {Scale: 0.26, Cores: 2, Seed: 9, SeedSet: true},
		"cores":    {Scale: 0.25, Cores: 4, Seed: 9, SeedSet: true},
		"shards":   {Scale: 0.25, Cores: 2, Seed: 9, SeedSet: true, Shards: 2},
		"geometry": {Scale: 0.25, Cores: 2, Seed: 9, SeedSet: true, Geometry: geom.DDR4_32GB4Ch()},
	}
	for name, o := range variants {
		if StoreKey(spec, o) == baseKey {
			t.Errorf("changing %s did not change the store key", name)
		}
	}
	specVariant := spec
	specVariant.TRH = 256
	if StoreKey(specVariant, base) == baseKey {
		t.Error("changing the spec TRH did not change the store key")
	}

	// Non-result-determining variations must NOT change the key: the
	// workload sweep list, the Prefetch worker bound, and paranoid checking
	// all leave the single named simulation identical.
	same := base
	same.Workloads = []string{"xz", "mcf"}
	same.Workers = 3
	same.Paranoid = true
	if StoreKey(spec, same) != baseKey {
		t.Error("sweep-enumeration/observer options leaked into the store key")
	}

	// The unset seed resolves to the default before hashing, so "default by
	// omission" and "default explicitly" share the entry they share the
	// simulation with.
	if StoreKey(spec, Options{}) != StoreKey(spec, Options{Seed: 0x5242_1BCA, SeedSet: true}) {
		t.Error("resolved default seed and explicit default seed disagree on the key")
	}
}

// TestSuiteStoreTier exercises the full persistence cycle: a fresh run
// populates the store, and a brand-new Suite (a process restart, as far as
// the cache is concerned) serves the identical Result from the store
// without resolving or simulating anything.
func TestSuiteStoreTier(t *testing.T) {
	st := newMemStore()
	spec := RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	mk := func() Options {
		return Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}, Seed: 5, Store: st}
	}

	var done, hits int
	opts := mk()
	opts.OnRunDone = func(RunSpec, *Result, int64) { done++ }
	opts.OnStoreHit = func(RunSpec) { hits++ }
	s1 := NewSuite(opts)
	res1, err := s1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 || hits != 0 {
		t.Fatalf("fresh run: done=%d hits=%d, want 1/0", done, hits)
	}
	if st.puts != 1 {
		t.Fatalf("fresh run performed %d Puts, want 1", st.puts)
	}
	// A second Run on the same Suite is a memory-cache hit: no new store
	// traffic at all.
	gets := st.gets
	if _, err := s1.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st.gets != gets || st.puts != 1 {
		t.Fatalf("memory-cache hit touched the store (gets %d→%d, puts %d)", gets, st.gets, st.puts)
	}

	// "Restart": a fresh Suite over the same store. The resolver is rigged
	// to fail, proving the store tier never reaches resolution/simulation.
	opts2 := mk()
	opts2.OnRunDone = func(RunSpec, *Result, int64) { t.Error("store hit ran a fresh simulation") }
	opts2.OnStoreHit = func(RunSpec) { hits++ }
	s2 := NewSuite(opts2)
	s2.resolve = func(string, int, geom.Geometry, uint64) ([]workload.Profile, error) {
		return nil, errors.New("resolver must not be called on a store hit")
	}
	res2, err := s2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("restart run: %d store hits, want 1", hits)
	}

	// The three access paths must agree byte-for-byte on the wire.
	enc1, err := EncodeResult(res1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeResult(res2)
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := st.Get(StoreKey(spec, mk()))
	if !ok {
		t.Fatal("stored entry vanished")
	}
	if !bytes.Equal(enc1, enc2) || !bytes.Equal(enc1, stored) {
		t.Fatal("fresh, store-hit, and stored encodings differ")
	}
}

// TestSuiteStoreBadPayload pins the self-healing path: an entry that
// decodes to garbage is reported via OnStoreErr, treated as a miss, and
// overwritten by the fresh result.
func TestSuiteStoreBadPayload(t *testing.T) {
	st := newMemStore()
	spec := RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	opts := Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}, Seed: 5, Store: st}
	key := StoreKey(spec, opts)
	if err := st.Put(key, []byte("not a result")); err != nil {
		t.Fatal(err)
	}
	var storeErrs, done int
	opts.OnStoreErr = func(_ RunSpec, err error) {
		if err == nil {
			t.Error("OnStoreErr called with nil error")
		}
		storeErrs++
	}
	opts.OnRunDone = func(RunSpec, *Result, int64) { done++ }
	s := NewSuite(opts)
	res, err := s.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if storeErrs != 1 || done != 1 {
		t.Fatalf("storeErrs=%d done=%d, want 1/1 (decode failure then fresh run)", storeErrs, done)
	}
	// The bad entry was healed with the fresh encoding.
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if stored, ok := st.Get(key); !ok || !bytes.Equal(stored, enc) {
		t.Fatal("fresh result did not overwrite the corrupt entry")
	}
}

// TestRunCallbacksCountFailures is the regression test for the progress
// undercount bug: OnRunDone used to be the only run-completion callback and
// fired only on success, so failed runs vanished from progress counts and
// timing tables. Across a fail-then-succeed sequence, the pair of callbacks
// must account for both attempts.
func TestRunCallbacksCountFailures(t *testing.T) {
	var mu sync.Mutex
	var failed, succeeded int // both guarded by mu
	opts := Options{
		Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}, Seed: 5,
		OnRunDone: func(_ RunSpec, res *Result, wallNs int64) {
			mu.Lock()
			defer mu.Unlock()
			succeeded++
			if res == nil || wallNs < 0 {
				t.Error("OnRunDone with nil result or negative wall time")
			}
		},
		OnRunErr: func(_ RunSpec, err error, wallNs int64) {
			mu.Lock()
			defer mu.Unlock()
			failed++
			if err == nil || wallNs < 0 {
				t.Error("OnRunErr with nil error or negative wall time")
			}
		},
	}
	s := NewSuite(opts)
	calls := 0
	s.resolve = func(spec string, cores int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient resolver outage")
		}
		return ResolveWorkload(spec, cores, g, seed)
	}
	spec := RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	if _, err := s.Run(spec); err == nil {
		t.Fatal("first run should fail")
	}
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	// Cached third run: no further callbacks of either kind.
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if failed != 1 || succeeded != 1 {
		t.Fatalf("callbacks saw %d failures and %d successes, want 1 and 1", failed, succeeded)
	}
}

// TestEncodeResultRoundTrip pins the wire-encoding property the store tier
// and the sweep service rely on: decode(encode(r)) re-encodes to the same
// bytes, including the optional latency histogram.
func TestEncodeResultRoundTrip(t *testing.T) {
	profiles, err := ResolveWorkload("xz", 2, geom.DDR4_16GB(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry:       geom.DDR4_16GB(),
		TRH:            128,
		MappingName:    "coffeelake",
		MitigationName: "none",
		Workloads:      profiles,
		InstrPerCore:   1_000_000,
		Seed:           5,
		LineCensus:     true,
		LatencyHist:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Latency == nil {
		t.Fatal("test wants a populated latency histogram")
	}
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding after decode changed bytes:\n 1: %s\n 2: %s", enc, enc2)
	}
	if dec.DRAM.Latency == nil || dec.DRAM.Latency.Count() != res.DRAM.Latency.Count() {
		t.Fatal("latency histogram did not survive the round trip")
	}
	// Garbage and structurally empty payloads must error (the store tier
	// maps these to misses).
	for _, bad := range [][]byte{nil, []byte("{"), []byte(`"str"`), []byte(`{}`)} {
		if _, err := DecodeResult(bad); err == nil {
			t.Errorf("DecodeResult(%q) accepted a non-result", bad)
		}
	}
}

// TestStorePreimageUnambiguous: field values containing newlines or literal
// key= prefixes cannot forge another configuration's preimage, because
// strings are %q-quoted.
func TestStorePreimageUnambiguous(t *testing.T) {
	a := RunSpec{Workload: "mcf\nmapping=\"evil\"", Mapping: "x", Mitigation: "none", TRH: 1}
	b := RunSpec{Workload: "mcf", Mapping: "evil\"\nmapping=\"x", Mitigation: "none", TRH: 1}
	o := Options{}
	if StoreKey(a, o) == StoreKey(b, o) {
		t.Fatal("preimage is ambiguous under newline injection")
	}
	pa := storePreimage(a, o.withDefaults())
	if got := fmt.Sprintf("%s", pa); len(bytes.Split(pa, []byte("\n"))) != 12 {
		t.Fatalf("quoted fields leaked raw newlines into the preimage:\n%s", got)
	}
}
