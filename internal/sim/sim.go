// Package sim wires the substrates into a runnable system — workloads →
// cores → memory controller (mapping + mitigation) → DRAM — and provides
// the experiment harness that regenerates every table and figure of the
// paper's evaluation.
package sim

import (
	"fmt"

	"rubix/internal/check"
	"rubix/internal/core"
	"rubix/internal/cpu"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/kcipher"
	"rubix/internal/mapping"
	"rubix/internal/memctrl"
	"rubix/internal/metrics"
	"rubix/internal/mitigation"
	"rubix/internal/power"
	"rubix/internal/workload"
)

// MapperFor constructs a mapping by name for geometry g. Names:
// sequential, coffeelake, skylake, mop, largestride-gs{1,2,4},
// rubixs-gs{1,2,4}, rubixd-gs{1,2,4}, staticxor-gs{1,2,4}.
//
// The result is the full translation surface — scalar and batched, both
// directions — so callers never need capability type assertions.
func MapperFor(name string, g geom.Geometry, seed uint64) (mapping.FullMapper, error) {
	switch name {
	case "sequential":
		return mapping.NewSequential(), nil
	case "coffeelake":
		return mapping.NewCoffeeLake(g)
	case "skylake":
		return mapping.NewSkylake(g)
	case "mop":
		return mapping.NewMOP(g)
	}
	var gs int
	var base string
	if n, err := fmt.Sscanf(name, "rubixs-gs%d", &gs); n == 1 && err == nil {
		base = "rubixs"
	} else if n, err := fmt.Sscanf(name, "rubixd-gs%d", &gs); n == 1 && err == nil {
		base = "rubixd"
	} else if n, err := fmt.Sscanf(name, "staticxor-gs%d", &gs); n == 1 && err == nil {
		base = "staticxor"
	} else if n, err := fmt.Sscanf(name, "largestride-gs%d", &gs); n == 1 && err == nil {
		base = "largestride"
	} else {
		return nil, fmt.Errorf("sim: unknown mapping %q", name)
	}
	switch base {
	case "rubixs":
		return core.NewRubixS(g, gs, kcipher.KeyFromSeed(seed))
	case "rubixd":
		return core.NewRubixD(g, core.RubixDConfig{GangSize: gs, RemapRate: 0.01, Seed: seed})
	case "staticxor":
		return core.NewStaticXOR(g, gs, seed)
	default: // "largestride", the only base left after the Sscanf chain
		return mapping.NewLargeStride(g, gs)
	}
}

// Config describes one simulation run.
type Config struct {
	Geometry geom.Geometry
	Timing   dram.Timing
	TRH      int // Rowhammer threshold (watchdog + mitigation threshold)

	// MappingName selects the line-to-row mapping (see MapperFor).
	MappingName string
	// CustomMapper, when non-nil, overrides MappingName — used by ablation
	// studies that need non-default mapping parameters (remap rate,
	// v-segments).
	CustomMapper mapping.Mapper
	// MitigationName selects the Rowhammer mitigation: none, aqua, srs,
	// blockhammer, trr, para, dsac.
	MitigationName string
	// MitigationFactory, when non-nil, overrides MitigationName — used by
	// ablation studies that need non-default mitigation parameters
	// (alternative trackers, custom thresholds).
	MitigationFactory func(*dram.Module) (mitigation.Mitigator, error)

	// Workloads holds one profile per core.
	Workloads []workload.Profile
	// InstrPerCore is the retirement target per core (paper: 250M).
	InstrPerCore uint64

	Core       cpu.Config
	Seed       uint64
	LineCensus bool // enable the Table 3 activating-line census
	// MapLatencyNs overrides the mapping pipeline latency (default: 1 ns
	// for Rubix-S — the 3-cycle K-Cipher — and 0.33 ns for XOR mappings).
	MapLatencyNs float64
	// WriteFraction marks this share of memory accesses as writebacks
	// (0 = read-only traffic, the evaluation default).
	WriteFraction float64
	// LatencyHist collects the per-access memory latency distribution
	// (Result.DRAM.Latency).
	LatencyHist bool
	// Shards splits the run across channel-sharded event loops: 0
	// auto-selects the geometry's channel count when the mitigation's state
	// partitions by channel (none, blockhammer, trr) and serial otherwise;
	// 1 forces the serial loop; an explicit power of two is clamped to the
	// channel count. The sharded path produces byte-identical Result stats
	// (DESIGN.md §14); runs that cannot shard fall back to serial silently,
	// reported in Result.Shards.
	Shards int
	// Metrics, when non-nil, records run-level counters, gauges, phase
	// timings, and (if configured) an event trace across the whole stack.
	// Nil disables observability at zero cost.
	Metrics *metrics.Recorder
	// Check, when non-nil, runs the paranoid-mode invariant checker over
	// the whole run (sampled bijection/collision spot-checks, activation
	// conservation, refresh/tRC timing, Rubix-D epoch completeness); Run
	// fails with the collected violations. Nil disables checking at zero
	// cost. One Checker serves exactly one run.
	Check *check.Checker
}

// Result summarizes one simulation run.
type Result struct {
	Config      string
	Mapping     string
	Mitigation  string
	IPC         []float64 // per core
	MeanIPC     float64
	ElapsedNs   float64 // simulated time (max over cores)
	DRAM        *dram.Stats
	Mitigations uint64
	RemapSwaps  uint64
	PowerMW     float64
	// Per-workload names aligned with IPC.
	WorkloadNames []string
	// Metrics is the final observability snapshot, nil unless Config.Metrics
	// was set.
	Metrics *metrics.Snapshot
	// Shards reports how many shard event loops executed the run (1 =
	// serial, including silent fallbacks).
	Shards int
}

// HitRate is a convenience accessor for the run's row-buffer hit rate.
func (r *Result) HitRate() float64 { return r.DRAM.HitRate() }

// Run executes one simulation and returns its results.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("sim: no workloads configured")
	}
	if cfg.InstrPerCore == 0 {
		cfg.InstrPerCore = 250_000_000
	}
	if cfg.Core == (cpu.Config{}) {
		cfg.Core = cpu.DefaultConfig()
	}
	if cfg.Timing == (dram.Timing{}) {
		cfg.Timing = dram.DDR4_2400()
	}

	rec := cfg.Metrics
	rec.Phase("warmup")

	mapper := cfg.CustomMapper
	if mapper == nil {
		var err error
		mapper, err = MapperFor(cfg.MappingName, cfg.Geometry, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	chk := cfg.Check
	if fm, ok := mapper.(mapping.FullMapper); ok {
		chk.AttachFullMapper(cfg.Geometry, fm)
	} else {
		// Map-only doubles (ablation/test fakes) get the reduced surface:
		// collision window and census only, no inverse or batch probes.
		chk.AttachMapper(cfg.Geometry, mapper)
	}
	lat := cfg.MapLatencyNs
	if lat == 0 {
		lat = defaultMapLatency(cfg.MappingName, cfg.Core.FreqGHz)
	}
	shards, err := effectiveShards(cfg)
	if err != nil {
		return nil, err
	}
	if shards > 1 {
		return runSharded(cfg, shards, mapper, lat)
	}

	mod := dram.New(dram.Config{
		Geometry:    cfg.Geometry,
		Timing:      cfg.Timing,
		TRH:         cfg.TRH,
		LineCensus:  cfg.LineCensus,
		LatencyHist: cfg.LatencyHist,
		Metrics:     rec,
		Check:       chk,
	})
	var mit mitigation.Mitigator
	if cfg.MitigationFactory != nil {
		mit, err = cfg.MitigationFactory(mod)
	} else {
		mit, err = mitigation.ByName(cfg.MitigationName, mod, cfg.TRH, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	metrics.Attach(rec, mapper, mit)
	if chk != nil {
		// The mapper is observed via hooks, not wrapping, so memctrl's
		// Dynamic type-assertion on it keeps working; the mitigation IS
		// wrapped (its interface is closed), after metrics.Attach so the
		// real scheme still receives its recorder.
		if ro, ok := mapper.(remapObservable); ok {
			ro.SetRemapObserver(chk)
		}
		mit = check.WrapMitigator(chk, mit)
	}
	ctrl := memctrl.New(memctrl.Config{
		DRAM: mod, Map: mapper, Mit: mit,
		MapLatencyNs: lat, WriteFraction: cfg.WriteFraction,
		Metrics: rec, Check: chk,
	})

	cores := make([]*cpu.Core, len(cfg.Workloads))
	for i, p := range cfg.Workloads {
		cores[i] = cpu.New(i, cfg.Core, p, cfg.InstrPerCore, cfg.Seed+uint64(i)*7919+1)
	}

	rec.Phase("simulate")

	runCores(cores, ctrl.AccessBatch)

	rec.Phase("census")
	stats := mod.Finalize()
	chk.OnRunEnd(stats.DemandActs, stats.ExtraActs)
	res := &Result{
		Mapping:     mapper.Name(),
		Mitigation:  mit.Name(),
		IPC:         make([]float64, len(cores)),
		DRAM:        stats,
		Mitigations: mit.Mitigations(),
		RemapSwaps:  ctrl.RemapSwaps(),
		Shards:      1,
	}
	for i, c := range cores {
		res.IPC[i] = c.IPC()
		res.MeanIPC += c.IPC()
		if c.Now > res.ElapsedNs {
			res.ElapsedNs = c.Now
		}
		res.WorkloadNames = append(res.WorkloadNames, c.WorkloadName())
	}
	res.MeanIPC /= float64(len(cores))
	res.PowerMW = power.DDR4DIMM16GB().Estimate(stats, res.ElapsedNs)
	res.Config = fmt.Sprintf("%s/%s/TRH=%d", res.Mapping, res.Mitigation, cfg.TRH)
	if rec != nil {
		rec.Gauge("sim_elapsed_ns").Set(res.ElapsedNs)
		rec.Gauge("sim_mean_ipc").Set(res.MeanIPC)
		for i, ipc := range res.IPC {
			rec.Gauge(ipcGaugeName(i)).Set(ipc)
		}
		if stats.Latency != nil {
			rec.Hist("dram_latency_ns").Merge(stats.Latency)
		}
		res.Metrics = rec.Snapshot()
	}
	if err := chk.Err(); err != nil {
		return nil, fmt.Errorf("sim: paranoid check failed for %s: %w", res.Config, err)
	}
	return res, nil
}

// remapObservable is implemented by dynamic mappers (core.RubixD) that can
// report remap episodes to an observer.
type remapObservable interface {
	SetRemapObserver(core.RemapObserver)
}

// ipcGaugeNames caches the per-core IPC gauge names so sweep harnesses
// that execute thousands of runs don't re-format the same strings at the
// end of every run. 64 covers every configuration in the evaluation.
var ipcGaugeNames = func() [64]string {
	var names [64]string
	for i := range names {
		names[i] = fmt.Sprintf("sim_ipc_core%d", i)
	}
	return names
}()

func ipcGaugeName(i int) string {
	if i < len(ipcGaugeNames) {
		return ipcGaugeNames[i]
	}
	return fmt.Sprintf("sim_ipc_core%d", i)
}

// defaultMapLatency models the address-translation pipeline latency: the
// paper's K-Cipher takes 3 cycles; XOR-based translations take one.
func defaultMapLatency(name string, freqGHz float64) float64 {
	if freqGHz <= 0 {
		freqGHz = 3
	}
	switch {
	case len(name) >= 6 && name[:6] == "rubixs":
		return 3 / freqGHz
	default:
		return 1 / freqGHz
	}
}

// --- workload profile builders -------------------------------------------------

// coreBase spreads per-core footprints across the program address space so
// multiprogrammed workloads do not alias. A page-granular jitter keeps the
// bases off power-of-two boundaries: perfectly aligned slices would alias
// into the same rows under large-stride-style mappings, an artifact of the
// synthetic layout rather than of the mapping under study.
func coreBase(g geom.Geometry, coreID, cores int) uint64 {
	slice := g.TotalLines() / uint64(cores)
	// Page-granular, odd-multiplier jitter of up to half the slice: large
	// enough that footprints land in disjoint row ranges under every
	// mapping, odd so power-of-two strides cannot cancel it.
	jitterPages := (uint64(coreID) * 296_873) % (slice / 128)
	return uint64(coreID)*slice + jitterPages*64
}

// ResolveWorkload resolves a workload spec string into one profile per
// core. A spec is either a SPEC workload name run in "rate" mode on every
// core ("mcf"), a multiprogrammed mix ("mix1".."mix16", one distinct SPEC
// workload per core), or a STREAM kernel ("stream-copy", "stream-scale",
// "stream-add", "stream-triad"). This is the single entry point for
// workload resolution; the per-family builders below are internal.
func ResolveWorkload(spec string, cores int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
	var mix int
	if n, err := fmt.Sscanf(spec, "mix%d", &mix); n == 1 && err == nil {
		return mixProfiles(mix, g, seed)
	}
	for k := workload.StreamCopy; k <= workload.StreamTriad; k++ {
		if spec == "stream-"+k.String() {
			return streamProfiles(k, cores, g, seed)
		}
	}
	return rateProfiles(spec, cores, g, seed)
}

// rateProfiles builds n copies of the named SPEC workload (SPEC "rate"
// mode), one per core, with disjoint footprints and decorrelated seeds.
func rateProfiles(name string, n int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
	p, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	out := make([]workload.Profile, n)
	for i := 0; i < n; i++ {
		gen, err := workload.NewSpec(p, coreBase(g, i, n), seed+uint64(i)*104729+11)
		if err != nil {
			return nil, err
		}
		out[i] = workload.Profile{Gen: gen, MPKI: p.MPKI, MLP: p.MLP}
	}
	return out, nil
}

// mixProfiles builds the paper's mixN workload (1-based index into
// workload.MixTable), one distinct SPEC workload per core.
func mixProfiles(mix int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
	table := workload.MixTable()
	if mix < 1 || mix > len(table) {
		return nil, fmt.Errorf("sim: mix index %d out of range 1..%d", mix, len(table))
	}
	names := table[mix-1]
	out := make([]workload.Profile, len(names))
	for i, name := range names {
		p, err := workload.SpecByName(name)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewSpec(p, coreBase(g, i, len(names)), seed+uint64(i)*104729+11)
		if err != nil {
			return nil, err
		}
		out[i] = workload.Profile{Gen: gen, MPKI: p.MPKI, MLP: p.MLP}
	}
	return out, nil
}

// streamProfiles builds n copies of a STREAM kernel with 1 GiB arrays
// (§5.13), one per core.
func streamProfiles(k workload.StreamKernel, n int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
	arrayBytes := uint64(1) << 30
	// Three arrays of 1 GiB per core must fit in the per-core slice of the
	// address space; shrink proportionally on small geometries.
	perCore := g.TotalLines() / uint64(n) * 64
	for arrayBytes*3 > perCore {
		arrayBytes /= 2
	}
	if arrayBytes == 0 {
		return nil, fmt.Errorf("sim: geometry too small for STREAM")
	}
	out := make([]workload.Profile, n)
	for i := 0; i < n; i++ {
		gen, err := workload.NewStreamSuite(k, coreBase(g, i, n), arrayBytes)
		if err != nil {
			return nil, err
		}
		out[i] = workload.Profile{Gen: gen, MPKI: workload.StreamMPKI, MLP: 8}
	}
	return out, nil
}
