package sim

import (
	"fmt"
	"reflect"
	"testing"

	"rubix/internal/check"
	"rubix/internal/geom"
)

// TestShardedMatchesSerial is the differential oracle for the tentpole
// claim: the sharded run's Result is byte-identical to the serial path
// across geometries, mappings, and every shardable mitigation — including
// reflect.DeepEqual over the full DRAM stats (float latency decomposition,
// per-window census, latency histogram pointer target, and the unexported
// currentStart).
func TestShardedMatchesSerial(t *testing.T) {
	geos := map[string]geom.Geometry{
		"2ch": geom.DDR4_32GB2Ch(),
		"4ch": geom.DDR4_32GB4Ch(),
	}
	cases := []struct {
		name     string
		mapping  string
		mit      string
		writes   float64
		latHist  bool
	}{
		{"coffeelake-none", "coffeelake", "none", 0, false},
		{"coffeelake-blockhammer", "coffeelake", "blockhammer", 0, false},
		{"rubixs-none", "rubixs-gs4", "none", 0, true},
		{"rubixs-trr", "rubixs-gs4", "trr", 0, false},
		{"rubixs-bh-writes", "rubixs-gs2", "bh", 0.25, true},
		{"staticxor-trr", "staticxor-gs2", "trr", 0, false},
	}
	for gname, g := range geos {
		for _, tc := range cases {
			t.Run(gname+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				mkCfg := func() Config {
					profiles, err := ResolveWorkload("mix1", 4, g, 42)
					if err != nil {
						t.Fatal(err)
					}
					return Config{
						Geometry:       g,
						TRH:            1000,
						MappingName:    tc.mapping,
						MitigationName: tc.mit,
						Workloads:      profiles,
						InstrPerCore:   2_000_000,
						Seed:           42,
						WriteFraction:  tc.writes,
						LatencyHist:    tc.latHist,
					}
				}
				serial, err := Run(func() Config { c := mkCfg(); c.Shards = 1; return c }())
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				sharded, err := Run(func() Config { c := mkCfg(); c.Shards = 0; return c }())
				if err != nil {
					t.Fatalf("sharded: %v", err)
				}
				assertShardedEqual(t, serial, sharded, g.Channels)
			})
		}
	}
}

// TestShardedRubixD pins the dynamic-mapping path: Rubix-D remap
// generations cross shard rendezvous points, swaps are charged across shard
// modules, and the result — including RemapSwaps — still matches serial
// byte for byte.
func TestShardedRubixD(t *testing.T) {
	g := geom.DDR4_32GB4Ch()
	mkCfg := func() Config {
		profiles, err := ResolveWorkload("mcf", 4, g, 7)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Geometry:       g,
			TRH:            500,
			MappingName:    "rubixd-gs2",
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   2_000_000,
			Seed:           7,
		}
	}
	serial, err := Run(func() Config { c := mkCfg(); c.Shards = 1; return c }())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	sharded, err := Run(func() Config { c := mkCfg(); c.Shards = 4; return c }())
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if serial.RemapSwaps == 0 {
		t.Fatal("test vacuous: no remap swaps occurred")
	}
	assertShardedEqual(t, serial, sharded, 4)
}

// assertShardedEqual compares a serial and a sharded Result field by field
// (after equalizing the Shards report) and fails with the first divergence.
func assertShardedEqual(t *testing.T, serial, sharded *Result, wantShards int) {
	t.Helper()
	if sharded.Shards != wantShards {
		t.Fatalf("sharded run used %d shards, want %d", sharded.Shards, wantShards)
	}
	a, b := *serial, *sharded
	a.Shards, b.Shards = 0, 0
	if !reflect.DeepEqual(a.DRAM, b.DRAM) {
		t.Errorf("DRAM stats diverge:\nserial:  %+v\nsharded: %+v", *a.DRAM, *b.DRAM)
	}
	a.DRAM, b.DRAM = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results diverge:\nserial:  %+v\nsharded: %+v", a, b)
	}
}

// TestShardedSerialFallback pins the eligibility rules: non-partitionable
// mitigations and single-channel geometries run serial regardless of the
// requested shard count, and invalid counts fail fast.
func TestShardedSerialFallback(t *testing.T) {
	g1 := geom.DDR4_16GB()
	g4 := geom.DDR4_32GB4Ch()
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		{"aqua falls back", Config{Geometry: g4, MitigationName: "aqua", Shards: 4}, 1},
		{"srs auto stays serial", Config{Geometry: g4, MitigationName: "srs", Shards: 0}, 1},
		{"para falls back", Config{Geometry: g4, MitigationName: "para", Shards: 2}, 1},
		{"one channel", Config{Geometry: g1, MitigationName: "none", Shards: 4}, 1},
		{"clamped to channels", Config{Geometry: g4, MitigationName: "none", Shards: 8}, 4},
		{"auto on none", Config{Geometry: g4, MitigationName: "trr", Shards: 0}, 4},
		{"explicit two", Config{Geometry: g4, MitigationName: "blockhammer", Shards: 2}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := effectiveShards(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("effectiveShards = %d, want %d", got, tc.want)
			}
		})
	}
	if _, err := effectiveShards(Config{Geometry: g4, MitigationName: "none", Shards: 3}); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	if _, err := effectiveShards(Config{Geometry: g4, MitigationName: "none", Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestShardRendezvousHammer stresses the burst rendezvous under the race
// detector: several sharded runs execute concurrently, each fanning
// high-MLP bursts across 4 shard workers, and each must still reproduce its
// serial twin exactly. Any unsynchronized access in the burstState counter
// chain, the completion slots, or the message recycling shows up under
// `go test -race` (the CI race matrix runs this with -count=2).
func TestShardRendezvousHammer(t *testing.T) {
	g := geom.DDR4_32GB4Ch()
	mkCfg := func(seed uint64, shards int) Config {
		// stream-add has MLP 8: bursts split across shards on nearly every
		// step, maximizing rendezvous traffic.
		profiles, err := ResolveWorkload("stream-add", 4, g, seed)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Geometry:       g,
			TRH:            1000,
			MappingName:    "coffeelake",
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   1_000_000,
			Seed:           seed,
			Shards:         shards,
		}
	}
	for _, seed := range []uint64{3, 5, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			serial, err := Run(mkCfg(seed, 1))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			sharded, err := Run(mkCfg(seed, 4))
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			assertShardedEqual(t, serial, sharded, 4)
		})
	}
}

// TestShardedParanoid runs the sharded path under the full paranoid checker
// (forked per shard, absorbed at the end): conservation ledgers must close
// on every shard and on the merged parent.
func TestShardedParanoid(t *testing.T) {
	g := geom.DDR4_32GB4Ch()
	profiles, err := ResolveWorkload("mix2", 4, g, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry:       g,
		TRH:            1000,
		MappingName:    "rubixs-gs4",
		MitigationName: "blockhammer",
		Workloads:      profiles,
		InstrPerCore:   2_000_000,
		Seed:           11,
		Shards:         4,
		Check:          check.New(check.Config{SampleEvery: 8}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", res.Shards)
	}
}
