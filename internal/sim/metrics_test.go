package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"rubix/internal/geom"
	"rubix/internal/metrics"
)

// metricsRun executes a hot configuration (mcf/coffeelake/aqua at a scale
// that is known to trigger mitigations) with a recorder attached.
func metricsRun(t *testing.T, cfg metrics.Config) *Result {
	t.Helper()
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("mcf", 4, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry:       g,
		TRH:            128,
		MappingName:    "coffeelake",
		MitigationName: "aqua",
		Workloads:      profiles,
		InstrPerCore:   50_000_000,
		Seed:           42,
		Metrics:        metrics.New(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetricsEndToEnd checks the acceptance criterion: a hot run emits
// non-zero activation, row-hit/miss, tracker, and mitigation counters plus
// all three phase timings.
func TestMetricsEndToEnd(t *testing.T) {
	res := metricsRun(t, metrics.Config{TraceEvents: 64})
	snap := res.Metrics
	if snap == nil {
		t.Fatal("Result.Metrics nil with recorder configured")
	}
	for _, name := range []string{
		"dram_acts_demand", "dram_acts_extra", "dram_row_hits", "dram_row_misses",
		"memctrl_accesses", "tracker_lookups", "tracker_reports", "mitigation_actions",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s is zero on a hot AQUA run", name)
		}
	}
	if snap.Counters["dram_acts_demand"] != res.DRAM.DemandActs {
		t.Errorf("dram_acts_demand %d != DRAM.DemandActs %d",
			snap.Counters["dram_acts_demand"], res.DRAM.DemandActs)
	}
	if snap.Counters["mitigation_actions"] != res.Mitigations {
		t.Errorf("mitigation_actions %d != Result.Mitigations %d",
			snap.Counters["mitigation_actions"], res.Mitigations)
	}
	if snap.Gauges["sim_mean_ipc"] != res.MeanIPC {
		t.Errorf("sim_mean_ipc gauge %v != MeanIPC %v", snap.Gauges["sim_mean_ipc"], res.MeanIPC)
	}
	phases := map[string]bool{}
	for _, p := range snap.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"warmup", "simulate", "census"} {
		if !phases[want] {
			t.Errorf("phase %q missing from snapshot (have %v)", want, snap.Phases)
		}
	}
	if len(snap.Events) == 0 {
		t.Error("no events traced with TraceEvents=64")
	}
}

// TestMetricsDisabledLeavesResultBare confirms the nil-recorder contract:
// no Config.Metrics, no Result.Metrics, identical simulation outcome.
func TestMetricsDisabledLeavesResultBare(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("mcf", 4, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Geometry: g, TRH: 128, MappingName: "coffeelake", MitigationName: "aqua",
		Workloads: profiles, InstrPerCore: 50_000_000, Seed: 42,
	}
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics != nil {
		t.Fatal("Result.Metrics non-nil without a recorder")
	}
	instrumented := metricsRun(t, metrics.Config{})
	if bare.MeanIPC != instrumented.MeanIPC || bare.Mitigations != instrumented.Mitigations {
		t.Fatalf("instrumentation changed the simulation: IPC %v vs %v, mitigations %d vs %d",
			bare.MeanIPC, instrumented.MeanIPC, bare.Mitigations, instrumented.Mitigations)
	}
}

// TestMetricsJSONDeterministic is the determinism contract for the
// observability surface itself: two identical runs must produce
// byte-identical snapshots once the wall-clock phase timings — the one
// sanctioned nondeterministic field — are stripped.
func TestMetricsJSONDeterministic(t *testing.T) {
	take := func() []byte {
		res := metricsRun(t, metrics.Config{TraceEvents: 128})
		data, err := res.Metrics.StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := take(), take()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different metrics JSON:\n%s\n---\n%s", a, b)
	}
	var decoded map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if _, ok := decoded["counters"]; !ok {
		t.Fatal("snapshot JSON missing counters")
	}
}

// TestRubixDMetricsCounters checks the dynamic-mapping counters flow end to
// end: a Rubix-D run must report remap episodes and controller swap charges
// consistent with Result.RemapSwaps.
func TestRubixDMetricsCounters(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("lbm", 4, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry: g, TRH: 128, MappingName: "rubixd-gs4", MitigationName: "none",
		Workloads: profiles, InstrPerCore: 2_000_000, Seed: 7,
		Metrics: metrics.New(metrics.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics
	if snap.Counters["rubixd_remap_episodes"] == 0 {
		t.Error("rubixd_remap_episodes is zero on a Rubix-D run")
	}
	if snap.Counters["memctrl_remap_swaps"] != res.RemapSwaps {
		t.Errorf("memctrl_remap_swaps %d != Result.RemapSwaps %d",
			snap.Counters["memctrl_remap_swaps"], res.RemapSwaps)
	}
	if snap.Counters["rubixd_remap_episodes"] != res.RemapSwaps {
		t.Errorf("rubixd_remap_episodes %d != controller swap charges %d",
			snap.Counters["rubixd_remap_episodes"], res.RemapSwaps)
	}
}
