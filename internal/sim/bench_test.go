package sim

import (
	"fmt"
	"testing"

	"rubix/internal/cpu"
	"rubix/internal/geom"
)

// benchmarkRun measures one full system run end to end at a given core
// count — the scheduler benchmark the heap event loop is gated on. The
// 4/16/64 sweep shows the O(cores)→O(log cores) event-loop scaling.
func benchmarkRun(b *testing.B, cores int) {
	b.Helper()
	g := geom.DDR4_16GB()
	for i := 0; i < b.N; i++ {
		profiles, err := ResolveWorkload("gcc", cores, g, 42)
		if err != nil {
			b.Fatal(err)
		}
		_, err = Run(Config{
			Geometry:       g,
			TRH:            128,
			MappingName:    "coffeelake",
			MitigationName: "none",
			Workloads:      profiles,
			InstrPerCore:   2_000_000,
			Seed:           42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCores4(b *testing.B)  { benchmarkRun(b, 4) }
func BenchmarkRunCores16(b *testing.B) { benchmarkRun(b, 16) }
func BenchmarkRunCores64(b *testing.B) { benchmarkRun(b, 64) }

var benchSink float64

// BenchmarkSchedulerOnly isolates the event loop: cores with near-zero
// memory latency so Step cost is dominated by the scheduler pick.
func BenchmarkSchedulerOnly(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("cores%d", n), func(b *testing.B) {
			g := geom.DDR4_16GB()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				profiles, err := ResolveWorkload("gcc", n, g, 42)
				if err != nil {
					b.Fatal(err)
				}
				cs := make([]*cpu.Core, n)
				for j, p := range profiles {
					cs[j] = cpu.New(j, cpu.DefaultConfig(), p, 200_000, 42+uint64(j))
				}
				runCores(cs, cpu.Serial(func(line uint64, arrival float64) float64 {
					benchSink = arrival
					return arrival + 30
				}))
			}
		})
	}
}
