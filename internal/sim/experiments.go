// Experiment harness: one entry point per table/figure of the paper's
// evaluation. Each experiment returns structured rows plus a formatted
// table, so the CLIs, benchmarks, and EXPERIMENTS.md all share one code
// path. Runs are cached and executed in parallel across workloads.

package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"rubix/internal/analytic"
	"rubix/internal/check"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/metrics"
	"rubix/internal/workload"
)

// Options configures an experiment suite.
type Options struct {
	// Scale is the fraction of the paper's 250M-instruction budget each
	// core retires (1.0 = full size). Hot-row counts scale with simulated
	// time; performance ratios are stable from ~0.1 up.
	Scale float64
	// Cores is the core count (paper: 4; Figure 15 uses 8).
	Cores int
	// Workloads restricts the SPEC suite (nil = all 18).
	Workloads []string
	// Mixes restricts the mix suite (nil = all 16; empty slice = none).
	Mixes []int
	// Seed decorrelates all randomness. The zero value selects the default
	// suite seed UNLESS SeedSet is true: seed 0 is a legal, distinct RNG
	// stream, and callers that mean it must say so explicitly.
	Seed uint64
	// SeedSet marks Seed as explicitly chosen, so Seed == 0 is honored
	// instead of being replaced by the default.
	SeedSet bool
	// Geometry overrides the baseline 16 GB geometry when non-zero.
	Geometry geom.Geometry
	// Paranoid attaches a fresh check.Checker to every simulation the Suite
	// runs; a run with invariant violations fails with them.
	Paranoid bool
	// Shards is passed to every run's Config.Shards: 0 auto-shards
	// shardable runs across the geometry's channels, 1 forces serial (see
	// Config.Shards).
	Shards int
	// Workers bounds Prefetch's concurrent simulations. 0 derives the
	// default NumCPU / shards (min 1), so in-run shard parallelism and
	// across-run parallelism don't multiply into oversubscription.
	Workers int
	// OnRunDone, when non-nil, is called after each fresh (non-cached)
	// simulation completes successfully, with the spec, its result, and the
	// wall time it took in nanoseconds. Called from whichever goroutine ran
	// the simulation; the callback must be safe for concurrent use under
	// Prefetch. Used by CLIs for progress reporting.
	OnRunDone func(spec RunSpec, res *Result, wallNs int64)
	// OnRunErr, when non-nil, is called after each fresh simulation attempt
	// that fails, with the spec, the error, and the wall time spent before
	// failing. Together with OnRunDone it accounts for every attempted run
	// — progress reporting that only listened to OnRunDone used to
	// undercount sweeps with failures and silently drop them from timing
	// tables. Same concurrency contract as OnRunDone.
	OnRunErr func(spec RunSpec, err error, wallNs int64)
	// Store, when non-nil, adds a persistent tier under the in-memory
	// cache: Run consults it (by the canonical StoreKey) before
	// simulating, and persists every fresh successful Result to it.
	// Corrupt or stale entries surface as misses. The interface is
	// satisfied by internal/store.Store.
	Store ResultStore
	// OnStoreHit, when non-nil, is called when Run serves a spec from the
	// persistent store instead of simulating. Same concurrency contract as
	// OnRunDone.
	OnStoreHit func(spec RunSpec)
	// OnStoreErr, when non-nil, receives store-tier failures that Run
	// swallowed to keep the simulation result authoritative: a stored
	// payload that no longer decodes (served as a miss), or a failed
	// Put/encode after a successful run (result still returned). Same
	// concurrency contract as OnRunDone.
	OnStoreErr func(spec RunSpec, err error)
}

// withDefaults normalizes options.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Workloads == nil {
		o.Workloads = workload.SpecNames()
	}
	if o.Mixes == nil {
		o.Mixes = make([]int, 16)
		for i := range o.Mixes {
			o.Mixes[i] = i + 1
		}
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = 0x5242_1BCA // "RB"
	}
	if o.Geometry == (geom.Geometry{}) {
		o.Geometry = geom.DDR4_16GB()
	}
	return o
}

func (o Options) instrPerCore() uint64 {
	return uint64(250_000_000 * o.Scale)
}

// allWorkloadNames returns the SPEC workloads plus the configured mixes.
func (o Options) allWorkloadNames() []string {
	names := append([]string(nil), o.Workloads...)
	for _, m := range o.Mixes {
		names = append(names, fmt.Sprintf("mix%d", m))
	}
	return names
}

// RunSpec names one simulation configuration on a Suite: which workload to
// run under which mapping and mitigation, at which Rowhammer threshold, and
// whether to collect the activating-line census. The zero value is not a
// valid spec. RunSpec is comparable and doubles as the Suite's cache key,
// so two Runs with equal specs share one simulation.
type RunSpec struct {
	Workload   string // SPEC name, "mixN", or "stream-<kernel>"
	Mapping    string // mapping name (see MapperFor)
	Mitigation string // mitigation name (see mitigation.ByName)
	TRH        int    // Rowhammer threshold
	LineCensus bool   // collect the Table 3 activating-line census
}

// String renders the spec the way reports caption configurations.
func (k RunSpec) String() string {
	return fmt.Sprintf("%s/%s/%s/TRH=%d", k.Workload, k.Mapping, k.Mitigation, k.TRH)
}

// Suite caches simulation runs shared between experiments.
type Suite struct {
	opts Options
	// resolve is ResolveWorkload, swappable by tests exercising the
	// failed-run retry path.
	resolve func(spec string, cores int, g geom.Geometry, seed uint64) ([]workload.Profile, error)

	mu    sync.Mutex
	cache map[RunSpec]*runEntry // guarded by mu
}

type runEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewSuite builds an experiment suite.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), resolve: ResolveWorkload, cache: make(map[RunSpec]*runEntry)}
}

// Run executes (or returns the cached result of) one configuration. Only
// successful runs stay cached: a failed entry is dropped so a later Run of
// the same spec retries instead of replaying a possibly-transient error
// forever. With Options.Store set, a persistent tier sits under the
// in-memory cache: a store hit skips the simulation entirely, and every
// fresh success is persisted so identical runs are never recomputed across
// process restarts.
func (s *Suite) Run(spec RunSpec) (*Result, error) {
	s.mu.Lock()
	e, ok := s.cache[spec]
	if !ok {
		e = &runEntry{}
		s.cache[spec] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		start := metrics.WallNow()
		var key string
		if s.opts.Store != nil {
			key = s.storeKey(spec)
			if data, ok := s.opts.Store.Get(key); ok {
				res, err := DecodeResult(data)
				if err == nil {
					e.res = res
					if s.opts.OnStoreHit != nil {
						s.opts.OnStoreHit(spec)
					}
					return
				}
				// A payload the store verified but we cannot decode means
				// the result encoding moved without a key-version bump;
				// treat as a miss, resimulate, and overwrite below.
				if s.opts.OnStoreErr != nil {
					s.opts.OnStoreErr(spec, err)
				}
			}
		}
		profiles, err := s.resolve(spec.Workload, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
		if err != nil {
			e.err = err
		} else {
			var chk *check.Checker
			if s.opts.Paranoid {
				chk = check.New(check.Config{})
			}
			e.res, e.err = Run(Config{
				Geometry:       s.opts.Geometry,
				TRH:            spec.TRH,
				MappingName:    spec.Mapping,
				MitigationName: spec.Mitigation,
				Workloads:      profiles,
				InstrPerCore:   s.opts.instrPerCore(),
				Seed:           s.opts.Seed,
				LineCensus:     spec.LineCensus,
				Shards:         s.opts.Shards,
				Check:          chk,
			})
		}
		if e.err != nil {
			if s.opts.OnRunErr != nil {
				s.opts.OnRunErr(spec, e.err, metrics.WallNow()-start)
			}
			return
		}
		if s.opts.Store != nil {
			// Persist before reporting done, so an OnRunDone observer that
			// restarts the process immediately still finds the entry. A
			// store failure never fails the run — the simulation result is
			// authoritative — but it is reported, not swallowed silently.
			if data, err := EncodeResult(e.res); err != nil {
				if s.opts.OnStoreErr != nil {
					s.opts.OnStoreErr(spec, err)
				}
			} else if err := s.opts.Store.Put(key, data); err != nil {
				if s.opts.OnStoreErr != nil {
					s.opts.OnStoreErr(spec, err)
				}
			}
		}
		if s.opts.OnRunDone != nil {
			s.opts.OnRunDone(spec, e.res, metrics.WallNow()-start)
		}
	})
	if e.err != nil {
		// Evict the failed entry — but only if the slot still holds it;
		// a concurrent Run may already have installed a fresh attempt.
		s.mu.Lock()
		if s.cache[spec] == e {
			delete(s.cache, spec)
		}
		s.mu.Unlock()
	}
	return e.res, e.err
}

// Prefetch executes the given configurations in parallel, filling the
// cache so subsequent Run calls return instantly. Duplicate specs cost
// nothing: the per-spec sync.Once guarantees each unique configuration is
// simulated exactly once even when Prefetch races with Run. Every failure
// is reported — the returned error joins one error per failed spec, in
// spec order.
func (s *Suite) Prefetch(specs []RunSpec) error {
	workers := s.prefetchWorkers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Each index is delivered to exactly one worker, so errs[i]
				// has a single writer and wg.Wait orders it before the read.
				//lint:allow goroutineescape distinct-index writes, one writer per slot, sequenced by wg.Wait
				_, errs[i] = s.Run(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errors.Join(errs...)
}

// prefetchWorkers resolves the Prefetch worker count: Options.Workers when
// set, else NumCPU divided by the per-run shard count (each sharded run
// already occupies that many goroutines), never below one. Before the
// divisor existed, Prefetch hardcoded NumCPU, which multiplied with in-run
// shards into NumCPU × shards runnable goroutines.
func (s *Suite) prefetchWorkers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	sh := s.opts.Shards
	if sh == 0 {
		sh = s.opts.Geometry.Channels
	}
	if sh < 1 {
		sh = 1
	}
	w := runtime.NumCPU() / sh
	if w < 1 {
		w = 1
	}
	return w
}

// NormPerf returns the performance of (mapName, mitName, trh) on wl
// normalized to the unprotected Coffee Lake baseline, the paper's metric.
func (s *Suite) NormPerf(wl, mapName, mitName string, trh int) (float64, error) {
	base, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: trh})
	if err != nil {
		return 0, err
	}
	res, err := s.Run(RunSpec{Workload: wl, Mapping: mapName, Mitigation: mitName, TRH: trh})
	if err != nil {
		return 0, err
	}
	if base.MeanIPC == 0 {
		return 0, fmt.Errorf("sim: zero baseline IPC for %s", wl)
	}
	return res.MeanIPC / base.MeanIPC, nil
}

// MeanNormPerf averages NormPerf across the workload list.
func (s *Suite) MeanNormPerf(wls []string, mapName, mitName string, trh int) (float64, error) {
	specs := make([]RunSpec, 0, 2*len(wls))
	for _, wl := range wls {
		specs = append(specs,
			RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: trh},
			RunSpec{Workload: wl, Mapping: mapName, Mitigation: mitName, TRH: trh})
	}
	if err := s.Prefetch(specs); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, wl := range wls {
		v, err := s.NormPerf(wl, mapName, mitName, trh)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(len(wls)), nil
}

// BestGS returns the paper's per-scheme gang-size choice: GS4 for AQUA
// (cheap mitigations, keep row-buffer hits), GS2 for SRS under Rubix-D,
// GS1 for BlockHammer (expensive mitigations, kill every hot row).
func BestGS(flavor, mit string) string {
	switch mit {
	case "aqua":
		return flavor + "-gs4"
	case "srs":
		if flavor == "rubixd" {
			return flavor + "-gs2"
		}
		return flavor + "-gs4"
	case "blockhammer":
		return flavor + "-gs1"
	}
	return flavor + "-gs4"
}

// --- Figure 3: baseline mappings vs threshold ----------------------------------

// Fig3Row is one bar of Figure 3.
type Fig3Row struct {
	Mitigation string
	TRH        int
	CoffeeLake float64 // normalized performance
	Skylake    float64
}

// Fig3 sweeps the Rowhammer threshold for the three secure mitigations on
// the Intel mappings.
func (s *Suite) Fig3() ([]Fig3Row, error) {
	wls := s.opts.allWorkloadNames()
	var rows []Fig3Row
	for _, mit := range []string{"aqua", "srs", "blockhammer"} {
		for _, trh := range []int{1024, 512, 256, 128} {
			cl, err := s.MeanNormPerf(wls, "coffeelake", mit, trh)
			if err != nil {
				return nil, err
			}
			sl, err := s.MeanNormPerf(wls, "skylake", mit, trh)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig3Row{mit, trh, cl, sl})
		}
	}
	return rows, nil
}

// FormatFig3 renders Figure 3 rows as a table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: normalized performance vs T_RH (Intel mappings)\n")
	fmt.Fprintf(&b, "%-12s %6s %12s %12s\n", "mitigation", "T_RH", "CoffeeLake", "Skylake")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %12.3f %12.3f\n", r.Mitigation, r.TRH, r.CoffeeLake, r.Skylake)
	}
	return b.String()
}

// --- Table 2: workload characteristics -------------------------------------------

// Table2Row is one workload's characterization.
type Table2Row struct {
	Workload   string
	MPKI       float64
	UniqueRows float64
	Hot64      int
	Hot512     int
}

// Table2 characterizes the SPEC suite on the unprotected Coffee Lake
// baseline.
func (s *Suite) Table2() ([]Table2Row, error) {
	specs := make([]RunSpec, 0, len(s.opts.Workloads))
	for _, wl := range s.opts.Workloads {
		specs = append(specs, RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128})
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, wl := range s.opts.Workloads {
		res, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128})
		if err != nil {
			return nil, err
		}
		p, err := workload.SpecByName(wl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Workload:   wl,
			MPKI:       p.MPKI,
			UniqueRows: res.DRAM.MeanUniqueRows(),
			Hot64:      res.DRAM.TotalHot64(),
			Hot512:     res.DRAM.TotalHot512(),
		})
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: workload characteristics (CoffeeLake, unprotected)\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %10s %10s\n", "workload", "MPKI", "uniq rows/w", "ACT-64+", "ACT-512+")
	var sumU float64
	var sum64, sum512 int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.2f %12.0f %10d %10d\n", r.Workload, r.MPKI, r.UniqueRows, r.Hot64, r.Hot512)
		sumU += r.UniqueRows
		sum64 += r.Hot64
		sum512 += r.Hot512
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-12s %8s %12.0f %10.0f %10.0f\n", "average", "", sumU/n, float64(sum64)/n, float64(sum512)/n)
	}
	return b.String()
}

// --- Figure 4: illustrative microkernels ------------------------------------------

// Fig4Row reports one kernel under one mapping.
type Fig4Row struct {
	Kernel   string
	Mapping  string
	HotRows  int
	Analytic float64 // closed-form expectation (randomized mapping only)
}

// Fig4 reproduces the illustrative model: a 4 GB single-bank memory with
// 4 KB rows, three kernels with a 4 MB footprint and 1M accesses, under the
// sequential and the encrypted (Rubix-S GS1) mapping.
func (s *Suite) Fig4() ([]Fig4Row, error) {
	g := geom.Illustrative4GB()
	const footprintLines = 4 << 20 / 64 // 4 MB
	const accesses = 1_000_000

	kernels := []struct {
		name string
		gen  func() (workload.Generator, error)
	}{
		{"stream", func() (workload.Generator, error) { return workload.NewStream(0, footprintLines) }},
		{"stride-64", func() (workload.Generator, error) { return workload.NewStride(0, footprintLines, 64) }},
		{"random", func() (workload.Generator, error) { return workload.NewRandom(0, footprintLines, s.opts.Seed) }},
	}

	var rows []Fig4Row
	for _, mapName := range []string{"sequential", "rubixs-gs1"} {
		for _, k := range kernels {
			gen, err := k.gen()
			if err != nil {
				return nil, err
			}
			hot, err := s.runKernel(g, mapName, gen, accesses)
			if err != nil {
				return nil, err
			}
			row := Fig4Row{Kernel: k.name, Mapping: mapName, HotRows: hot}
			if mapName == "rubixs-gs1" {
				acts := 1.0 // stride & random: every access activates
				if k.name == "stream" || k.name == "stride-64" {
					// With randomization, each line is accessed ~16 times
					// (1M accesses / 64K lines); a row holding k lines gets
					// ~16k activations.
					acts = 1.0
				}
				row.Analytic = analytic.HotRows(accesses, footprintLines, g.TotalRows(), 64, acts)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// kernelChunk is runKernel's translation batch: large enough to amortize
// the batch mapper's per-call setup, small enough to stay in L1.
const kernelChunk = 256

// runKernel drives a raw generator through a mapping into a DRAM module
// with no core model (back-to-back accesses, as in the Figure 4 model) and
// returns the hot-row (>=64 ACTs) count. Addresses are translated in
// chunks through MapBatch; the generator draws are independent of access
// results, so chunked pre-translation replays the scalar loop exactly
// (runKernel only runs static mappings).
func (s *Suite) runKernel(g geom.Geometry, mapName string, gen workload.Generator, accesses int) (int, error) {
	mapper, err := MapperFor(mapName, g, s.opts.Seed)
	if err != nil {
		return 0, err
	}
	// The Figure 4 model is deliberately simple: an open-page policy with
	// no adaptive close, so a streaming kernel pays one activation per row.
	timing := dram.DDR4_2400()
	timing.OpenMax = 1 << 30
	mod := dram.New(dram.Config{Geometry: g, Timing: timing})
	now := 0.0
	var lines, phys [kernelChunk]uint64
	for done := 0; done < accesses; {
		n := kernelChunk
		if rem := accesses - done; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			lines[j] = gen.Next()
		}
		mapper.MapBatch(lines[:n], phys[:n])
		for j := 0; j < n; j++ {
			res := mod.Access(phys[j], now)
			now = res.Completion
		}
		done += n
	}
	return mod.Finalize().TotalHot64(), nil
}

// FormatFig4 renders Figure 4 rows.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: hot rows of illustrative kernels (4GB, 4KB rows, 4MB footprint, 1M accesses)\n")
	fmt.Fprintf(&b, "%-12s %-12s %10s %12s\n", "kernel", "mapping", "hot rows", "analytic")
	for _, r := range rows {
		an := ""
		if r.Analytic != 0 {
			an = fmt.Sprintf("%.2f", r.Analytic)
		}
		fmt.Fprintf(&b, "%-12s %-12s %10d %12s\n", r.Kernel, r.Mapping, r.HotRows, an)
	}
	return b.String()
}

// --- Table 3: activating lines per hot row ------------------------------------------

// Table3Row reports the activating-line distribution for one workload.
type Table3Row struct {
	Workload   string
	HotRows    int
	Pct1to32   float64
	Pct32to64  float64
	Pct64to128 float64
	AvgLines   float64
}

// Table3 measures, for each hot row on the baseline mapping, how many
// distinct lines contributed activations (workloads with 100+ hot rows).
func (s *Suite) Table3() ([]Table3Row, error) {
	specs := make([]RunSpec, 0, len(s.opts.Workloads))
	for _, wl := range s.opts.Workloads {
		specs = append(specs, RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128, LineCensus: true})
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, wl := range s.opts.Workloads {
		res, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128, LineCensus: true})
		if err != nil {
			return nil, err
		}
		var buckets [3]int
		lineSum, hot := 0, 0
		for _, w := range res.DRAM.Windows {
			for i := range buckets {
				buckets[i] += w.LineBuckets[i]
			}
			lineSum += w.LineSum
			hot += w.Hot64
		}
		if hot < 100 {
			continue
		}
		rows = append(rows, Table3Row{
			Workload:   wl,
			HotRows:    hot,
			Pct1to32:   100 * float64(buckets[0]) / float64(hot),
			Pct32to64:  100 * float64(buckets[1]) / float64(hot),
			Pct64to128: 100 * float64(buckets[2]) / float64(hot),
			AvgLines:   float64(lineSum) / float64(hot),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: activating lines per hot row (workloads with 100+ hot rows)\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %8s %9s %9s\n", "workload", "hot rows", "1-32", "32-64", "64-128", "avg lines")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %7.1f%% %7.1f%% %8.1f%% %9.1f\n",
			r.Workload, r.HotRows, r.Pct1to32, r.Pct32to64, r.Pct64to128, r.AvgLines)
	}
	return b.String()
}

// --- Figure 7 / Figure 12: hot-row census ---------------------------------------------

// HotRowsRow reports hot-row counts for one workload across mappings.
type HotRowsRow struct {
	Workload string
	Counts   []int // aligned with the mapping list passed in
}

// HotRows counts ACT-64+ hot rows per workload for each mapping (Figure 7
// uses {coffeelake, skylake, rubixs-gs4}; Figure 12 adds the other Rubix
// variants, averaged over workloads).
func (s *Suite) HotRows(mappings []string) ([]HotRowsRow, error) {
	var specs []RunSpec
	for _, wl := range s.opts.Workloads {
		for _, m := range mappings {
			specs = append(specs, RunSpec{Workload: wl, Mapping: m, Mitigation: "none", TRH: 128})
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []HotRowsRow
	for _, wl := range s.opts.Workloads {
		row := HotRowsRow{Workload: wl}
		for _, m := range mappings {
			res, err := s.Run(RunSpec{Workload: wl, Mapping: m, Mitigation: "none", TRH: 128})
			if err != nil {
				return nil, err
			}
			row.Counts = append(row.Counts, res.DRAM.TotalHot64())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHotRows renders a hot-row census.
func FormatHotRows(title string, mappings []string, rows []HotRowsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s", title, "workload")
	for _, m := range mappings {
		fmt.Fprintf(&b, " %14s", m)
	}
	fmt.Fprintln(&b)
	sums := make([]float64, len(mappings))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for i, c := range r.Counts {
			fmt.Fprintf(&b, " %14d", c)
			sums[i] += float64(c)
		}
		fmt.Fprintln(&b)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-12s", "mean")
		for _, s := range sums {
			fmt.Fprintf(&b, " %14.1f", s/float64(len(rows)))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- Figure 8 / Figure 13: per-workload performance at TRH 128 ---------------------------

// PerfRow reports normalized performance for one workload across mappings.
type PerfRow struct {
	Workload string
	Perf     []float64 // aligned with mappings
}

// PerfAtTRH evaluates one mitigation at the given threshold across the
// mappings, per workload, normalized to unprotected Coffee Lake.
func (s *Suite) PerfAtTRH(mit string, trh int, mappings []string) ([]PerfRow, error) {
	wls := s.opts.allWorkloadNames()
	var specs []RunSpec
	for _, wl := range wls {
		specs = append(specs, RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: trh})
		for _, m := range mappings {
			specs = append(specs, RunSpec{Workload: wl, Mapping: m, Mitigation: mit, TRH: trh})
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []PerfRow
	for _, wl := range wls {
		row := PerfRow{Workload: wl}
		for _, m := range mappings {
			v, err := s.NormPerf(wl, m, mit, trh)
			if err != nil {
				return nil, err
			}
			row.Perf = append(row.Perf, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPerf renders per-workload performance rows.
func FormatPerf(title string, mappings []string, rows []PerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s", title, "workload")
	for _, m := range mappings {
		fmt.Fprintf(&b, " %14s", m)
	}
	fmt.Fprintln(&b)
	sums := make([]float64, len(mappings))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for i, v := range r.Perf {
			fmt.Fprintf(&b, " %14.3f", v)
			sums[i] += v
		}
		fmt.Fprintln(&b)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-12s", "mean")
		for _, s := range sums {
			fmt.Fprintf(&b, " %14.3f", s/float64(len(rows)))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- Figure 9 / Table 4 / §4.8 / §4.9: gang-size sensitivity ------------------------------

// GangSizeRow reports the average slowdown of one configuration.
type GangSizeRow struct {
	Mapping     string
	Mitigation  string
	SlowdownPct float64
	HitRate     float64
	PowerMW     float64
	HotRows     float64
}

// GangSweep measures mean slowdown, hit rate, power, and hot rows for each
// (mapping, mitigation) pair over the SPEC workloads.
func (s *Suite) GangSweep(mappings, mitigations []string, trh int) ([]GangSizeRow, error) {
	wls := s.opts.Workloads
	var specs []RunSpec
	for _, wl := range wls {
		specs = append(specs, RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: trh})
		for _, m := range mappings {
			for _, mit := range mitigations {
				specs = append(specs, RunSpec{Workload: wl, Mapping: m, Mitigation: mit, TRH: trh})
			}
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []GangSizeRow
	for _, m := range mappings {
		for _, mit := range mitigations {
			var perf, hit, pow, hot float64
			for _, wl := range wls {
				v, err := s.NormPerf(wl, m, mit, trh)
				if err != nil {
					return nil, err
				}
				res, err := s.Run(RunSpec{Workload: wl, Mapping: m, Mitigation: mit, TRH: trh})
				if err != nil {
					return nil, err
				}
				perf += v
				hit += res.HitRate()
				pow += res.PowerMW
				hot += float64(res.DRAM.TotalHot64())
			}
			n := float64(len(wls))
			rows = append(rows, GangSizeRow{
				Mapping:     m,
				Mitigation:  mit,
				SlowdownPct: 100 * (1 - perf/n),
				HitRate:     hit / n,
				PowerMW:     pow / n,
				HotRows:     hot / n,
			})
		}
	}
	return rows, nil
}

// FormatGangSweep renders gang-size sensitivity rows.
func FormatGangSweep(title string, rows []GangSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-18s %-12s %10s %8s %10s %10s\n",
		title, "mapping", "mitigation", "slowdown", "RBHR", "power mW", "hot rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-12s %9.2f%% %7.1f%% %10.0f %10.1f\n",
			r.Mapping, r.Mitigation, r.SlowdownPct, 100*r.HitRate, r.PowerMW, r.HotRows)
	}
	return b.String()
}

// --- §5.4: remap rate bookkeeping ----------------------------------------------------

// RemapStats reports Rubix-D remapping activity for one workload.
type RemapStats struct {
	Workload    string
	Swaps       uint64
	DemandActs  uint64
	ExtraActPct float64 // extra activations as % of demand activations
}

// RemapRate measures Rubix-D swap overhead (§5.4 expects ~1.5% extra
// activations at a 1% remap rate, since half the episodes skip).
func (s *Suite) RemapRate(gs int) ([]RemapStats, error) {
	mapName := fmt.Sprintf("rubixd-gs%d", gs)
	var specs []RunSpec
	for _, wl := range s.opts.Workloads {
		specs = append(specs, RunSpec{Workload: wl, Mapping: mapName, Mitigation: "none", TRH: 128})
	}
	if err := s.Prefetch(specs); err != nil {
		return nil, err
	}
	var rows []RemapStats
	for _, wl := range s.opts.Workloads {
		res, err := s.Run(RunSpec{Workload: wl, Mapping: mapName, Mitigation: "none", TRH: 128})
		if err != nil {
			return nil, err
		}
		r := RemapStats{Workload: wl, Swaps: res.RemapSwaps, DemandActs: res.DRAM.DemandActs}
		if res.DRAM.DemandActs > 0 {
			r.ExtraActPct = 100 * float64(res.DRAM.ExtraActs) / float64(res.DRAM.DemandActs)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// --- Sorting helper used by reports ---------------------------------------------------

// SortRowsByHotness orders Table 2 rows the way the paper prints them
// (descending ACT-64+).
func SortRowsByHotness(rows []Table2Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Hot64 > rows[j].Hot64 })
}
