package sim

import (
	"fmt"
	"testing"

	"rubix/internal/cpu"
	"rubix/internal/geom"
	"rubix/internal/workload"
)

// linearRunCores is the retired O(cores)-per-event scheduler, kept as the
// ordering oracle for the heap: always advance the first core holding the
// strictly smallest Now (ties resolve to the lowest index).
func linearRunCores(cores []*cpu.Core, access cpu.AccessFunc) {
	for {
		var next *cpu.Core
		for _, c := range cores {
			if c.Done() {
				continue
			}
			if next == nil || c.Now < next.Now {
				next = c
			}
		}
		if next == nil {
			break
		}
		next.Step(access)
	}
}

// buildCores constructs n deterministic cores over disjoint footprints,
// fresh for each scheduler under test.
func buildCores(t *testing.T, n int, instr uint64) []*cpu.Core {
	t.Helper()
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("mcf", n, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]*cpu.Core, n)
	for i, p := range profiles {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), p, instr, 42+uint64(i)*7919+1)
	}
	return cores
}

// access is a deterministic stand-in for the memory controller with enough
// latency spread (a bank-conflict-like modulus) to interleave cores
// nontrivially.
func orderRecordingAccess(order *[]uint64) cpu.AccessFunc {
	return func(line uint64, arrival float64) float64 {
		*order = append(*order, line)
		return arrival + 30 + float64(line%7)*12
	}
}

// TestHeapMatchesLinearScan: the heap scheduler must reproduce the linear
// scan's access stream event for event — same lines, same order — and
// leave every core in the identical final state, at 4, 16, and 64 cores.
func TestHeapMatchesLinearScan(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		t.Run(fmt.Sprintf("cores%d", n), func(t *testing.T) {
			const instr = 400_000
			var gotOrder, wantOrder []uint64
			heapCores := buildCores(t, n, instr)
			runCores(heapCores, cpu.Serial(orderRecordingAccess(&gotOrder)))
			linCores := buildCores(t, n, instr)
			linearRunCores(linCores, orderRecordingAccess(&wantOrder))

			if len(gotOrder) != len(wantOrder) {
				t.Fatalf("event counts differ: heap %d vs linear %d", len(gotOrder), len(wantOrder))
			}
			for i := range gotOrder {
				if gotOrder[i] != wantOrder[i] {
					t.Fatalf("event %d differs: heap accessed line %d, linear %d",
						i, gotOrder[i], wantOrder[i])
				}
			}
			for i := range heapCores {
				if heapCores[i].Now != linCores[i].Now || heapCores[i].Retired != linCores[i].Retired {
					t.Fatalf("core %d final state differs: heap (Now %.2f, Retired %d) vs linear (Now %.2f, Retired %d)",
						i, heapCores[i].Now, heapCores[i].Retired, linCores[i].Now, linCores[i].Retired)
				}
			}
		})
	}
}

// TestHeapTieBreakOrder: cores deliberately forced onto identical
// timestamps must still be served in index order.
func TestHeapTieBreakOrder(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload("gcc", 8, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]*cpu.Core, 8)
	for i, p := range profiles {
		// Identical seeds: every core generates the same gap sequence, so
		// timestamps collide constantly and the tie-break does the work.
		cores[i] = cpu.New(i, cpu.DefaultConfig(), p, 100_000, 12345)
	}
	var heapIDs, linIDs []uint64
	quarter := g.TotalLines() / 8
	idOf := func(line uint64) uint64 { return line / quarter }
	runCores(cores, cpu.Serial(func(line uint64, arrival float64) float64 {
		heapIDs = append(heapIDs, idOf(line))
		return arrival + 40
	}))
	for i, p := range mustProfiles(t, "gcc", 8, g, 7) {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), p, 100_000, 12345)
	}
	linearRunCores(cores, func(line uint64, arrival float64) float64 {
		linIDs = append(linIDs, idOf(line))
		return arrival + 40
	})
	if len(heapIDs) != len(linIDs) {
		t.Fatalf("event counts differ: %d vs %d", len(heapIDs), len(linIDs))
	}
	for i := range heapIDs {
		if heapIDs[i] != linIDs[i] {
			t.Fatalf("tie-break order diverged at event %d: heap core %d, linear core %d",
				i, heapIDs[i], linIDs[i])
		}
	}
}

func mustProfiles(t *testing.T, wl string, n int, g geom.Geometry, seed uint64) []workload.Profile {
	t.Helper()
	p, err := ResolveWorkload(wl, n, g, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
