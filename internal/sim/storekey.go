// Store-tier glue for the experiment Suite: the canonical key that names a
// simulation result in a persistent store, and the wire encoding of a
// Result. The store itself (internal/store) is payload-agnostic; THIS file
// decides what "the same run" means.
//
// A RunSpec alone is NOT a sufficient store key: two Suites with different
// Options run different simulations for the same spec. The key therefore
// hashes the spec together with every Options field that can change a
// Result:
//
//   - Seed (resolved: the default-seed substitution happens before
//     hashing, so "unset" and "explicitly the default" share an entry, as
//     they share a simulation),
//   - Scale (hex float formatting — exact, no decimal rounding),
//   - Cores,
//   - Geometry (all six shape fields),
//   - Shards (Result.Shards records the shard count, so two shard settings
//     produce byte-different Results even though the statistics match).
//
// Deliberately excluded, with the reason each exclusion is sound:
//
//   - Workloads/Mixes: sweep enumeration inputs; the spec names the one
//     workload that runs.
//   - Workers: across-run parallelism, invisible to any single Result.
//   - Paranoid: an attached checker can fail a run but never changes a
//     successful Result, and only successful Results are stored.
//   - The callbacks (OnRunDone etc.): observers.
//
// The preimage is versioned and built from fixed-order %q/%d/%x writes —
// no maps, no floats in decimal — so the same configuration hashes
// identically across processes, platforms, and Go versions. Adding a
// result-determining Options field REQUIRES extending storePreimage and
// bumping storeKeyVersion; TestStoreKeyGolden exists to make forgetting
// that a test failure instead of silent cross-version cache poisoning.

package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ResultStore is the persistence interface the Suite's store tier runs on.
// internal/store.Store satisfies it; tests substitute in-memory fakes. Get
// reports misses (including corrupt or truncated entries) as ok=false, and
// implementations must be safe for concurrent use — Prefetch calls from
// every worker.
type ResultStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// storeKeyVersion is the canonical-preimage format version. Bump it
// whenever storePreimage changes shape or a new result-determining field
// joins the hash, so entries written under the old derivation become misses
// instead of mismatched hits.
const storeKeyVersion = 1

// storePreimage renders the canonical hash preimage for (spec, opts). opts
// must already be normalized (withDefaults); StoreKey handles that for
// external callers.
func storePreimage(spec RunSpec, o Options) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "rubix-result v%d\n", storeKeyVersion)
	fmt.Fprintf(&b, "workload=%q\n", spec.Workload)
	fmt.Fprintf(&b, "mapping=%q\n", spec.Mapping)
	fmt.Fprintf(&b, "mitigation=%q\n", spec.Mitigation)
	fmt.Fprintf(&b, "trh=%d\n", spec.TRH)
	fmt.Fprintf(&b, "linecensus=%t\n", spec.LineCensus)
	fmt.Fprintf(&b, "seed=%d\n", o.Seed)
	// Hex float formatting is exact: every float64 has one canonical 'x'
	// rendering, unlike shortest-decimal which is library-dependent.
	fmt.Fprintf(&b, "scale=%s\n", strconv.FormatFloat(o.Scale, 'x', -1, 64))
	fmt.Fprintf(&b, "cores=%d\n", o.Cores)
	fmt.Fprintf(&b, "shards=%d\n", o.Shards)
	fmt.Fprintf(&b, "geometry=%d/%d/%d/%d/%d/%d\n",
		o.Geometry.Channels, o.Geometry.Ranks, o.Geometry.Banks,
		o.Geometry.RowsPerBank, o.Geometry.RowBytes, o.Geometry.LineBytes)
	return []byte(b.String())
}

// StoreKey derives the content-addressed store key for one simulation:
// hex SHA-256 of the canonical (RunSpec + result-determining Options)
// preimage. Equal keys mean "a stored Result may be served instead of
// simulating"; the derivation is stable across processes and restarts.
func StoreKey(spec RunSpec, opts Options) string {
	sum := sha256.Sum256(storePreimage(spec, opts.withDefaults()))
	return hex.EncodeToString(sum[:])
}

// storeKey is the Suite-internal variant: s.opts is normalized at NewSuite,
// so the withDefaults re-normalization is skipped.
func (s *Suite) storeKey(spec RunSpec) string {
	sum := sha256.Sum256(storePreimage(spec, s.opts))
	return hex.EncodeToString(sum[:])
}

// EncodeResult renders a Result as its canonical wire form: compact JSON
// with struct-ordered fields. The encoding is deterministic for
// deterministic content (encoding/json sorts the map keys inside a metrics
// snapshot; every other field is a struct, slice, or scalar), and it
// round-trips: DecodeResult(EncodeResult(r)) re-encodes to the same bytes.
// The sweep service stores and serves these exact bytes, which is what
// makes "fresh simulation", "memory cache", and "store hit" byte-identical
// over HTTP.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("sim: encode nil Result")
	}
	return json.Marshal(r)
}

// DecodeResult parses EncodeResult output. A payload that does not decode,
// or decodes to something that cannot be a simulation result, is an error —
// the store tier treats that as a miss and resimulates.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sim: decode stored result: %w", err)
	}
	if r.DRAM == nil || len(r.IPC) == 0 {
		return nil, fmt.Errorf("sim: decode stored result: missing core fields")
	}
	return &r, nil
}
