package sim

import "rubix/internal/cpu"

// coreHeap is an index min-heap over the run's cores, keyed on (Now, ID).
// It replaces the event loop's O(cores) linear scan per event with an
// O(log cores) sift, which matters at the 8-to-64-core configurations of
// the multi-channel studies.
//
// Determinism argument: the linear scan picked the first core whose Now
// was strictly smaller than every earlier core's — i.e. the minimum Now,
// ties broken toward the lowest core index. The heap orders by exactly
// that lexicographic (Now, ID) key, so it pops the identical core at every
// step and the access stream reaching the memory controller is unchanged
// (TestHeapMatchesLinearScan pins this at 4/16/64 cores). Core.Now never
// decreases across Step, so after stepping the minimum we only ever need a
// sift-down.
type coreHeap struct {
	cores []*cpu.Core
}

// newCoreHeap builds a heap over the not-yet-done cores. Establishing the
// heap by repeated sift-down is O(n) and allocation-free beyond the one
// index slice.
//
// cold: one-time setup; the per-step loop only sifts in place.
func newCoreHeap(cores []*cpu.Core) *coreHeap {
	h := &coreHeap{cores: make([]*cpu.Core, 0, len(cores))}
	for _, c := range cores {
		if !c.Done() {
			h.cores = append(h.cores, c)
		}
	}
	for i := len(h.cores)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *coreHeap) less(i, j int) bool {
	a, b := h.cores[i], h.cores[j]
	return a.Now < b.Now || (a.Now == b.Now && a.ID < b.ID)
}

func (h *coreHeap) siftDown(i int) {
	n := len(h.cores)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.cores[i], h.cores[m] = h.cores[m], h.cores[i]
		i = m
	}
}

// min returns the earliest core without removing it.
func (h *coreHeap) min() *cpu.Core { return h.cores[0] }

// fixMin restores heap order after the minimum's Now increased.
func (h *coreHeap) fixMin() { h.siftDown(0) }

// popMin removes the earliest core (it retired its instruction target).
func (h *coreHeap) popMin() {
	n := len(h.cores) - 1
	h.cores[0] = h.cores[n]
	h.cores[n] = nil
	h.cores = h.cores[:n]
	if n > 0 {
		h.siftDown(0)
	}
}

// runCores drives the event loop: always advance the earliest core so
// accesses reach the controller in (approximately) global time order. Each
// core step hands its whole MLP burst to the controller as one batch
// (cpu.StepBatch), which is where the batched translation path pays off;
// wrap scalar access functions with cpu.Serial.
//
// hot: the simulation main loop; every per-step allocation multiplies by
// the instruction budget.
func runCores(cores []*cpu.Core, access cpu.BatchAccessFunc) {
	h := newCoreHeap(cores)
	for len(h.cores) > 0 {
		c := h.min()
		c.StepBatch(access)
		if c.Done() {
			h.popMin()
		} else {
			h.fixMin()
		}
	}
}

// runCoresAsync is runCores over the sharded issue path: identical heap
// discipline — StepBatchAsync advances Now through the same comparisons as
// StepBatch, so the pop order (and therefore the access stream order) is
// byte-for-byte the serial one — with the burst handed to the routing layer
// as a future instead of a blocking call. The final drain retires the
// still-in-flight futures without advancing any core clock, matching the
// serial loop (whose leftover ring entries are likewise never folded in).
//
// hot: the sharded simulation main loop.
func runCoresAsync(cores []*cpu.Core, access cpu.AsyncBatchAccessFunc) {
	h := newCoreHeap(cores)
	for len(h.cores) > 0 {
		c := h.min()
		c.StepBatchAsync(access)
		if c.Done() {
			h.popMin()
		} else {
			h.fixMin()
		}
	}
	for _, c := range cores {
		c.DrainPending()
	}
}
