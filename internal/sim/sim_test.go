package sim

import (
	"strings"
	"testing"

	"rubix/internal/geom"
)

func runN(t *testing.T, wl, mapName, mitName string, trh int, instr uint64) *Result {
	t.Helper()
	g := geom.DDR4_16GB()
	profiles, err := ResolveWorkload(wl, 4, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry:       g,
		TRH:            trh,
		MappingName:    mapName,
		MitigationName: mitName,
		Workloads:      profiles,
		InstrPerCore:   instr,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallRun(t *testing.T, wl, mapName, mitName string, trh int) *Result {
	return runN(t, wl, mapName, mitName, trh, 8_000_000)
}

// hotRun uses enough instructions for mcf to form hot rows.
func hotRun(t *testing.T, wl, mapName, mitName string, trh int) *Result {
	return runN(t, wl, mapName, mitName, trh, 50_000_000)
}

func TestMapperForAllNames(t *testing.T) {
	g := geom.DDR4_16GB()
	names := []string{
		"sequential", "coffeelake", "skylake", "mop",
		"largestride-gs1", "largestride-gs4",
		"rubixs-gs1", "rubixs-gs2", "rubixs-gs4",
		"rubixd-gs1", "rubixd-gs2", "rubixd-gs4",
		"staticxor-gs1", "staticxor-gs2", "staticxor-gs4",
	}
	for _, n := range names {
		m, err := MapperFor(n, g, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if m.Name() == "" {
			t.Fatalf("%s: empty mapper name", n)
		}
	}
	if _, err := MapperFor("bogus", g, 1); err == nil {
		t.Fatal("unknown mapping accepted")
	}
	if _, err := MapperFor("rubixs-gs3", g, 1); err == nil {
		t.Fatal("invalid gang size accepted")
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	res := smallRun(t, "gcc", "coffeelake", "none", 128)
	if len(res.IPC) != 4 {
		t.Fatalf("IPC entries = %d, want 4 cores", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 2.6 {
			t.Fatalf("core %d IPC %.2f implausible", i, ipc)
		}
	}
	if res.ElapsedNs <= 0 {
		t.Fatal("no simulated time")
	}
	if res.DRAM.Accesses == 0 {
		t.Fatal("no memory traffic")
	}
	if res.PowerMW < 1000 || res.PowerMW > 6000 {
		t.Fatalf("power %.0f mW out of range", res.PowerMW)
	}
	if !strings.Contains(res.Config, "CoffeeLake") {
		t.Fatalf("config string %q missing mapping", res.Config)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	g := geom.DDR4_16GB()
	profiles, _ := ResolveWorkload("gcc", 4, g, 1)
	if _, err := Run(Config{Geometry: g, MappingName: "bogus", MitigationName: "none", Workloads: profiles}); err == nil {
		t.Fatal("bad mapping accepted")
	}
	if _, err := Run(Config{Geometry: g, MappingName: "coffeelake", MitigationName: "bogus", Workloads: profiles}); err == nil {
		t.Fatal("bad mitigation accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := smallRun(t, "mcf", "rubixd-gs4", "srs", 128)
	b := smallRun(t, "mcf", "rubixd-gs4", "srs", 128)
	if a.MeanIPC != b.MeanIPC || a.DRAM.Accesses != b.DRAM.Accesses ||
		a.Mitigations != b.Mitigations || a.RemapSwaps != b.RemapSwaps {
		t.Fatal("identical configs must replay identically")
	}
}

func TestRubixReducesHotRows(t *testing.T) {
	base := hotRun(t, "mcf", "coffeelake", "none", 128)
	rub := hotRun(t, "mcf", "rubixs-gs1", "none", 128)
	if base.DRAM.TotalHot64() == 0 {
		t.Fatal("baseline mcf should have hot rows even at small scale")
	}
	if rub.DRAM.TotalHot64() >= base.DRAM.TotalHot64()/10 {
		t.Fatalf("Rubix-S GS1 hot rows %d vs baseline %d: want >10x reduction",
			rub.DRAM.TotalHot64(), base.DRAM.TotalHot64())
	}
}

func TestRubixReducesMitigations(t *testing.T) {
	base := hotRun(t, "mcf", "coffeelake", "aqua", 128)
	rub := hotRun(t, "mcf", "rubixs-gs4", "aqua", 128)
	if base.Mitigations == 0 {
		t.Fatal("baseline AQUA on mcf should migrate")
	}
	if rub.Mitigations*10 > base.Mitigations {
		t.Fatalf("Rubix migrations %d vs baseline %d: want >10x reduction",
			rub.Mitigations, base.Mitigations)
	}
}

func TestSecureMitigationsKeepWatchdogClean(t *testing.T) {
	for _, mit := range []string{"aqua", "srs", "blockhammer"} {
		for _, mapName := range []string{"coffeelake", "rubixs-gs4"} {
			res := hotRun(t, "mcf", mapName, mit, 128)
			if v := res.DRAM.TotalOverTRH(); v != 0 {
				t.Errorf("%s/%s: %d rows exceeded TRH", mapName, mit, v)
			}
		}
	}
}

func TestUnprotectedBaselineViolates(t *testing.T) {
	res := hotRun(t, "mcf", "coffeelake", "none", 128)
	if res.DRAM.TotalOverTRH() == 0 {
		t.Fatal("unprotected mcf at TRH=128 should have watchdog violations")
	}
}

func TestGangSizeTradeoff(t *testing.T) {
	// Row-buffer hit rate must increase with gang size (§4.7-4.8).
	hr := map[string]float64{}
	for _, m := range []string{"rubixs-gs1", "rubixs-gs2", "rubixs-gs4"} {
		hr[m] = smallRun(t, "lbm", m, "none", 128).HitRate()
	}
	if !(hr["rubixs-gs1"] < hr["rubixs-gs2"] && hr["rubixs-gs2"] < hr["rubixs-gs4"]) {
		t.Fatalf("hit rates not ordered by gang size: %v", hr)
	}
	if hr["rubixs-gs1"] > 0.02 {
		t.Fatalf("GS1 hit rate %.3f, want ~0", hr["rubixs-gs1"])
	}
}

func TestRubixDRemapsDuringRun(t *testing.T) {
	res := smallRun(t, "lbm", "rubixd-gs4", "none", 128)
	if res.RemapSwaps == 0 {
		t.Fatal("Rubix-D performed no swaps")
	}
	// §5.4: at RR=1% the extra-activation overhead is a few percent.
	extra := float64(res.DRAM.ExtraActs) / float64(res.DRAM.DemandActs)
	if extra <= 0 || extra > 0.06 {
		t.Fatalf("remap ACT overhead %.3f, want ~0.015", extra)
	}
}

func TestResolveWorkloadVariants(t *testing.T) {
	g := geom.DDR4_16GB()
	if p, err := ResolveWorkload("mix3", 4, g, 1); err != nil || len(p) != 4 {
		t.Fatalf("mix3: %v (%d profiles)", err, len(p))
	}
	if p, err := ResolveWorkload("stream-triad", 4, g, 1); err != nil || len(p) != 4 {
		t.Fatalf("stream-triad: %v", err)
	}
	if _, err := ResolveWorkload("mix99", 4, g, 1); err == nil {
		t.Fatal("mix99 accepted")
	}
	if _, err := ResolveWorkload("nosuchworkload", 4, g, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRateProfilesDisjointFootprints(t *testing.T) {
	g := geom.DDR4_16GB()
	profiles, err := rateProfiles("gcc", 4, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	quarter := g.TotalLines() / 4
	for i, p := range profiles {
		for j := 0; j < 1000; j++ {
			a := p.Gen.Next()
			if a/quarter != uint64(i) {
				t.Fatalf("core %d accessed outside its address-space slice", i)
			}
		}
	}
}

func TestMultiChannelRun(t *testing.T) {
	g := geom.DDR4_32GB4Ch()
	profiles, err := rateProfiles("gcc", 8, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Geometry:       g,
		TRH:            128,
		MappingName:    "rubixs-gs4",
		MitigationName: "aqua",
		Workloads:      profiles,
		InstrPerCore:   4_000_000,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 8 {
		t.Fatalf("cores = %d, want 8", len(res.IPC))
	}
	if res.DRAM.TotalOverTRH() != 0 {
		t.Fatal("watchdog violation on the 4-channel system")
	}
}

func TestBestGS(t *testing.T) {
	if BestGS("rubixs", "aqua") != "rubixs-gs4" {
		t.Fatal("AQUA wants GS4")
	}
	if BestGS("rubixs", "blockhammer") != "rubixs-gs1" {
		t.Fatal("BlockHammer wants GS1")
	}
	if BestGS("rubixd", "srs") != "rubixd-gs2" {
		t.Fatal("Rubix-D SRS wants GS2")
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}})
	r1, err := s.Run(RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache returned a different result object")
	}
}

func TestNormPerfBaselineIsOne(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}})
	v, err := s.NormPerf("xz", "coffeelake", "none", 128)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("baseline normalized to %v, want exactly 1", v)
	}
}

func TestFig4MicrokernelShape(t *testing.T) {
	s := NewSuite(Options{Scale: 1, Workloads: []string{}, Mixes: []int{}})
	rows, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, r := range rows {
		got[r.Kernel+"/"+r.Mapping] = r.HotRows
	}
	// Figure 4(c): sequential mapping: stream 0, stride-64 ~1K, random ~1K;
	// encrypted mapping: all ~0.
	if got["stream/sequential"] != 0 {
		t.Errorf("stream/sequential hot rows = %d, want 0", got["stream/sequential"])
	}
	if v := got["stride-64/sequential"]; v < 900 || v > 1100 {
		t.Errorf("stride-64/sequential hot rows = %d, want ~1K", v)
	}
	if v := got["random/sequential"]; v < 900 || v > 1100 {
		t.Errorf("random/sequential hot rows = %d, want ~1K", v)
	}
	for _, k := range []string{"stream", "stride-64", "random"} {
		if v := got[k+"/rubixs-gs1"]; v > 1 {
			t.Errorf("%s/rubixs-gs1 hot rows = %d, want <= 1", k, v)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Cores != 4 || len(o.Workloads) != 18 || len(o.Mixes) != 16 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.instrPerCore() != 250_000_000 {
		t.Fatalf("instr budget = %d", o.instrPerCore())
	}
	// Empty (non-nil) mixes stay empty.
	o2 := Options{Mixes: []int{}}.withDefaults()
	if len(o2.Mixes) != 0 {
		t.Fatal("explicit empty mixes overridden")
	}
}
