// Ablation studies beyond the paper's headline artifacts: the design knobs
// DESIGN.md calls out — Rubix-D's remap rate and v-segmentation, and the
// paper's §7.3 remark that Rubix also reduces victim-refresh (TRR) work.

package sim

import (
	"fmt"
	"strings"

	"rubix/internal/core"
	"rubix/internal/dram"
	"rubix/internal/mitigation"
	"rubix/internal/tracker"
)

// RemapRateRow reports one remap-rate setting.
type RemapRateRow struct {
	Rate        float64
	SlowdownPct float64 // vs unprotected Coffee Lake
	ExtraActPct float64 // remap ACT overhead
	Swaps       uint64
	HotRows     float64
}

// AblationRemapRate sweeps Rubix-D's remap probability. Higher rates change
// the mapping faster (shorter remap period, harder for an attacker to learn
// neighbourhoods) at the price of swap bandwidth.
func (s *Suite) AblationRemapRate(gs int, rates []float64) ([]RemapRateRow, error) {
	wls := s.opts.Workloads
	var out []RemapRateRow
	for _, rate := range rates {
		var perf, extra, hot float64
		var swaps uint64
		for _, wl := range wls {
			base, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128})
			if err != nil {
				return nil, err
			}
			profiles, err := ResolveWorkload(wl, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
			if err != nil {
				return nil, err
			}
			mapper, err := core.NewRubixD(s.opts.Geometry, core.RubixDConfig{
				GangSize: gs, RemapRate: rate, Seed: s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			res, err := Run(Config{
				Geometry:       s.opts.Geometry,
				TRH:            128,
				CustomMapper:   mapper,
				MitigationName: "none",
				Workloads:      profiles,
				InstrPerCore:   s.opts.instrPerCore(),
				Seed:           s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			perf += res.MeanIPC / base.MeanIPC
			if res.DRAM.DemandActs > 0 {
				extra += float64(res.DRAM.ExtraActs) / float64(res.DRAM.DemandActs)
			}
			swaps += res.RemapSwaps
			hot += float64(res.DRAM.TotalHot64())
		}
		n := float64(len(wls))
		out = append(out, RemapRateRow{
			Rate:        rate,
			SlowdownPct: 100 * (1 - perf/n),
			ExtraActPct: 100 * extra / n,
			Swaps:       swaps,
			HotRows:     hot / n,
		})
	}
	return out, nil
}

// FormatRemapRate renders the remap-rate ablation.
func FormatRemapRate(rows []RemapRateRow) string {
	var b strings.Builder
	b.WriteString("Ablation: Rubix-D remap rate (GS4, no mitigation)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s %10s\n", "rate", "slowdown", "extra ACTs", "swaps", "hot rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.2f%% %9.2f%% %11.2f%% %12d %10.1f\n",
			100*r.Rate, r.SlowdownPct, r.ExtraActPct, r.Swaps, r.HotRows)
	}
	return b.String()
}

// SegmentRow reports one v-segmentation setting (§5.4).
type SegmentRow struct {
	Segments     int
	StorageBytes int
	// RemapPeriodActs is the activations needed to walk one circuit's full
	// epoch at a 1% remap rate (paper: ~200M unsegmented, 6.25M at 32).
	RemapPeriodActs float64
	SlowdownPct     float64
}

// AblationSegments sweeps Rubix-D's v-segment count: more segments shorten
// the remap period (faster full-memory re-randomization) at a linear SRAM
// cost, with no performance effect — exactly the paper's claim.
func (s *Suite) AblationSegments(gs int, segments []int) ([]SegmentRow, error) {
	wls := s.opts.Workloads
	for _, wl := range wls {
		if _, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128}); err != nil {
			return nil, err
		}
	}
	var out []SegmentRow
	for _, segs := range segments {
		var perf float64
		var storage int
		var period float64
		for _, wl := range wls {
			base, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128})
			if err != nil {
				return nil, err
			}
			profiles, err := ResolveWorkload(wl, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
			if err != nil {
				return nil, err
			}
			mapper, err := core.NewRubixD(s.opts.Geometry, core.RubixDConfig{
				GangSize: gs, RemapRate: 0.01, Segments: segs, Seed: s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			storage = mapper.StorageBytes()
			// One circuit covers TotalRows/segments positions; at a 1%
			// episode rate each position advance needs ~100 activations.
			period = float64(s.opts.Geometry.TotalRows()) / float64(segs) * 100
			res, err := Run(Config{
				Geometry:       s.opts.Geometry,
				TRH:            128,
				CustomMapper:   mapper,
				MitigationName: "none",
				Workloads:      profiles,
				InstrPerCore:   s.opts.instrPerCore(),
				Seed:           s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			perf += res.MeanIPC / base.MeanIPC
		}
		out = append(out, SegmentRow{
			Segments:        segs,
			StorageBytes:    storage,
			RemapPeriodActs: period,
			SlowdownPct:     100 * (1 - perf/float64(len(wls))),
		})
	}
	return out, nil
}

// FormatSegments renders the segmentation ablation.
func FormatSegments(rows []SegmentRow) string {
	var b strings.Builder
	b.WriteString("Ablation: Rubix-D v-segments (GS4, RR=1%) — §5.4\n")
	fmt.Fprintf(&b, "%9s %10s %18s %10s\n", "segments", "SRAM", "remap period", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %9dB %15.1fM ACTs %9.2f%%\n",
			r.Segments, r.StorageBytes, r.RemapPeriodActs/1e6, r.SlowdownPct)
	}
	return b.String()
}

// PagePolicyRow reports one DRAM page-policy setting.
type PagePolicyRow struct {
	Policy      string
	OpenMax     int
	HitRate     float64
	SlowdownPct float64 // vs open-adaptive
	HotRows     float64
}

// AblationPagePolicy compares DRAM page policies under the baseline mapping:
// closed-page (row closes after each access), the paper's open-adaptive
// (16-access maximum), and pure open-page. The policy moves both the
// row-buffer hit rate and the activation counts that feed hot rows — which
// is why the paper pins it (Table 1) before studying mappings.
func (s *Suite) AblationPagePolicy() ([]PagePolicyRow, error) {
	policies := []struct {
		name    string
		openMax int
	}{
		{"closed-page", 1},
		{"open-adaptive-16", 16},
		{"open-page", 1 << 30},
	}
	wls := s.opts.Workloads
	var out []PagePolicyRow
	var adaptive float64
	for _, pol := range policies {
		var ipc, hit, hot float64
		for _, wl := range wls {
			profiles, err := ResolveWorkload(wl, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
			if err != nil {
				return nil, err
			}
			timing := dram.DDR4_2400()
			timing.OpenMax = pol.openMax
			res, err := Run(Config{
				Geometry:       s.opts.Geometry,
				Timing:         timing,
				TRH:            128,
				MappingName:    "coffeelake",
				MitigationName: "none",
				Workloads:      profiles,
				InstrPerCore:   s.opts.instrPerCore(),
				Seed:           s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			ipc += res.MeanIPC
			hit += res.HitRate()
			hot += float64(res.DRAM.TotalHot64())
		}
		n := float64(len(wls))
		if pol.openMax == 16 {
			adaptive = ipc / n
		}
		out = append(out, PagePolicyRow{
			Policy:  pol.name,
			OpenMax: pol.openMax,
			HitRate: hit / n,
			HotRows: hot / n,
			// Slowdown filled in below once the adaptive reference exists.
			SlowdownPct: ipc / n,
		})
	}
	for i := range out {
		out[i].SlowdownPct = 100 * (1 - out[i].SlowdownPct/adaptive)
	}
	return out, nil
}

// FormatPagePolicy renders the page-policy ablation.
func FormatPagePolicy(rows []PagePolicyRow) string {
	var b strings.Builder
	b.WriteString("Ablation: DRAM page policy (CoffeeLake, unprotected)\n")
	fmt.Fprintf(&b, "%-18s %8s %10s %10s\n", "policy", "RBHR", "slowdown", "hot rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %7.1f%% %9.2f%% %10.1f\n", r.Policy, 100*r.HitRate, r.SlowdownPct, r.HotRows)
	}
	return b.String()
}

// WriteTrafficRow reports one writeback-fraction setting.
type WriteTrafficRow struct {
	WriteFraction float64
	SlowdownPct   float64 // vs read-only traffic
	WriteCAS      uint64
}

// AblationWriteTraffic measures the cost of modelling writeback traffic
// (write-recovery time before precharges): the evaluation's read-only model
// is a uniform simplification, and this quantifies what it leaves out.
func (s *Suite) AblationWriteTraffic(fracs []float64) ([]WriteTrafficRow, error) {
	wls := s.opts.Workloads
	var out []WriteTrafficRow
	var base float64
	for fi, frac := range fracs {
		var ipc float64
		var writes uint64
		for _, wl := range wls {
			profiles, err := ResolveWorkload(wl, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
			if err != nil {
				return nil, err
			}
			res, err := Run(Config{
				Geometry:       s.opts.Geometry,
				TRH:            128,
				MappingName:    "coffeelake",
				MitigationName: "none",
				Workloads:      profiles,
				InstrPerCore:   s.opts.instrPerCore(),
				Seed:           s.opts.Seed,
				WriteFraction:  frac,
			})
			if err != nil {
				return nil, err
			}
			ipc += res.MeanIPC
			writes += res.DRAM.WriteCAS
		}
		n := float64(len(wls))
		if fi == 0 {
			base = ipc / n
		}
		out = append(out, WriteTrafficRow{
			WriteFraction: frac,
			SlowdownPct:   100 * (1 - ipc/n/base),
			WriteCAS:      writes,
		})
	}
	return out, nil
}

// FormatWriteTraffic renders the write-traffic ablation.
func FormatWriteTraffic(rows []WriteTrafficRow) string {
	var b strings.Builder
	b.WriteString("Ablation: writeback traffic (CoffeeLake, unprotected)\n")
	fmt.Fprintf(&b, "%10s %10s %14s\n", "write frac", "slowdown", "write CAS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.0f%% %9.2f%% %14d\n", 100*r.WriteFraction, r.SlowdownPct, r.WriteCAS)
	}
	return b.String()
}

// TrackerRow reports one tracker configuration.
type TrackerRow struct {
	Scheme      string
	Tracker     string
	SlowdownPct float64
	Mitigations uint64
}

// AblationTrackers compares activation-tracker choices: AQUA with the
// default Misra-Gries table versus Hydra's hybrid group/row counters, and
// BlockHammer with idealized per-row counters versus the real design's
// counting Bloom filters (whose over-estimates throttle innocent rows —
// the fidelity the paper's idealization hides). All on the baseline
// Coffee Lake mapping at T_RH = 128, where trackers are busiest.
func (s *Suite) AblationTrackers() ([]TrackerRow, error) {
	trh := 128
	configs := []struct {
		scheme  string
		tracker string
		factory func(*dram.Module) (mitigation.Mitigator, error)
	}{
		{"aqua", "misra-gries", func(d *dram.Module) (mitigation.Mitigator, error) {
			return mitigation.NewAQUA(d, mitigation.AQUAConfig{TRH: trh}), nil
		}},
		{"aqua", "hydra", func(d *dram.Module) (mitigation.Mitigator, error) {
			return mitigation.NewAQUA(d, mitigation.AQUAConfig{
				TRH:     trh,
				Tracker: tracker.NewHydra(tracker.HydraConfig{Threshold: trh / 2}),
			}), nil
		}},
		{"blockhammer", "per-row", func(d *dram.Module) (mitigation.Mitigator, error) {
			return mitigation.NewBlockHammer(d, mitigation.BlockHammerConfig{TRH: trh}), nil
		}},
		{"blockhammer", "cbf-32k", func(d *dram.Module) (mitigation.Mitigator, error) {
			return mitigation.NewBlockHammer(d, mitigation.BlockHammerConfig{
				TRH:     trh,
				Tracker: tracker.NewCBF(tracker.CBFConfig{Threshold: 1 << 30, Counters: 32768, Seed: s.opts.Seed}),
			}), nil
		}},
		{"blockhammer", "cbf-4k", func(d *dram.Module) (mitigation.Mitigator, error) {
			return mitigation.NewBlockHammer(d, mitigation.BlockHammerConfig{
				TRH:     trh,
				Tracker: tracker.NewCBF(tracker.CBFConfig{Threshold: 1 << 30, Counters: 4096, Seed: s.opts.Seed}),
			}), nil
		}},
	}
	wls := s.opts.Workloads
	var out []TrackerRow
	for _, cfg := range configs {
		var perf float64
		var mits uint64
		for _, wl := range wls {
			base, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: trh})
			if err != nil {
				return nil, err
			}
			profiles, err := ResolveWorkload(wl, s.opts.Cores, s.opts.Geometry, s.opts.Seed)
			if err != nil {
				return nil, err
			}
			res, err := Run(Config{
				Geometry:          s.opts.Geometry,
				TRH:               trh,
				MappingName:       "coffeelake",
				MitigationFactory: cfg.factory,
				Workloads:         profiles,
				InstrPerCore:      s.opts.instrPerCore(),
				Seed:              s.opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			perf += res.MeanIPC / base.MeanIPC
			mits += res.Mitigations
		}
		out = append(out, TrackerRow{
			Scheme:      cfg.scheme,
			Tracker:     cfg.tracker,
			SlowdownPct: 100 * (1 - perf/float64(len(wls))),
			Mitigations: mits,
		})
	}
	return out, nil
}

// FormatTrackers renders the tracker ablation.
func FormatTrackers(rows []TrackerRow) string {
	var b strings.Builder
	b.WriteString("Ablation: activation trackers (CoffeeLake, TRH=128)\n")
	fmt.Fprintf(&b, "%-14s %-14s %10s %14s\n", "scheme", "tracker", "slowdown", "mitigations")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %9.2f%% %14d\n", r.Scheme, r.Tracker, r.SlowdownPct, r.Mitigations)
	}
	return b.String()
}

// TRRRow reports victim-refresh activity under one mapping.
type TRRRow struct {
	Mapping     string
	Refreshes   uint64
	SlowdownPct float64
}

// AblationTRR measures §7.3's remark: Rubix also reduces the work of
// victim-refresh mitigations by eliminating the hot rows that trigger them
// (TRR remains insecure either way — this is purely an overhead study).
func (s *Suite) AblationTRR(mappings []string) ([]TRRRow, error) {
	wls := s.opts.Workloads
	var out []TRRRow
	for _, m := range mappings {
		var perf float64
		var refreshes uint64
		for _, wl := range wls {
			base, err := s.Run(RunSpec{Workload: wl, Mapping: "coffeelake", Mitigation: "none", TRH: 128})
			if err != nil {
				return nil, err
			}
			res, err := s.Run(RunSpec{Workload: wl, Mapping: m, Mitigation: "trr", TRH: 128})
			if err != nil {
				return nil, err
			}
			perf += res.MeanIPC / base.MeanIPC
			refreshes += res.Mitigations
		}
		out = append(out, TRRRow{
			Mapping:     m,
			Refreshes:   refreshes,
			SlowdownPct: 100 * (1 - perf/float64(len(wls))),
		})
	}
	return out, nil
}

// FormatTRR renders the TRR ablation.
func FormatTRR(rows []TRRRow) string {
	var b strings.Builder
	b.WriteString("Ablation: victim-refresh (TRR) work by mapping — §7.3 remark\n")
	fmt.Fprintf(&b, "%-14s %14s %10s\n", "mapping", "refreshes", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %9.2f%%\n", r.Mapping, r.Refreshes, r.SlowdownPct)
	}
	return b.String()
}
