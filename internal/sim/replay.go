// Differential replay: metamorphic relations run as whole-sim comparisons.
// Where paranoid mode checks invariants within one run, replay checks
// invariants BETWEEN runs — counters that must not move when the seed does,
// must scale linearly with the instruction budget, and the Rubix-S gang-size-1
// degenerate case that must equal the raw cipher (see internal/check/replay.go
// for the relations themselves).

package sim

import (
	"errors"
	"fmt"

	"rubix/internal/check"
)

// ReplayOptions configures Replay. The zero value selects the defaults.
type ReplayOptions struct {
	// Seeds are compared pairwise for seed-invariance (default {1, 2, 3}).
	Seeds []uint64
	// ScaleFactor is the instruction-budget multiplier for the
	// scale-linearity relation (default 4).
	ScaleFactor int
	// Tol bounds the permitted drift (zero fields take check defaults).
	Tol check.Tolerance
}

// RelationResult reports one metamorphic relation's outcome: Err is nil on
// pass; Skipped carries the reason when the relation does not apply to the
// spec (e.g. seed-invariance on a seed-keyed mapping).
type RelationResult struct {
	Name    string
	Skipped string
	Err     error
}

// seedInvariantMappings are the mappings whose layout does not depend on the
// seed, so their structural counters must not either. The Rubix and
// staticxor families derive their keys from the seed and are excluded.
func seedInvariantMapping(name string) bool {
	switch name {
	case "sequential", "coffeelake", "skylake", "mop":
		return true
	}
	// largestride-gs* is deterministic too (the gang size is in the name).
	return len(name) >= 11 && name[:11] == "largestride"
}

func runStatsOf(res *Result) check.RunStats {
	return check.RunStats{
		Accesses:   res.DRAM.Accesses,
		RowHits:    res.DRAM.RowHits,
		DemandActs: res.DRAM.DemandActs,
		ExtraActs:  res.DRAM.ExtraActs,
		Hot64:      res.DRAM.TotalHot64(),
		Hot512:     res.DRAM.TotalHot512(),
	}
}

// Replay runs the differential-replay relations for one configuration. Each
// relation simulates the spec from scratch two or more times (fresh Suite
// state each run — replay deliberately bypasses the cache) and compares
// structural counters. It returns one RelationResult per relation plus an
// error joining the failures.
func Replay(opts Options, spec RunSpec, ro ReplayOptions) ([]RelationResult, error) {
	opts = opts.withDefaults()
	if len(ro.Seeds) == 0 {
		ro.Seeds = []uint64{1, 2, 3}
	}
	if ro.ScaleFactor == 0 {
		ro.ScaleFactor = 4
	}

	runOnce := func(seed, instr uint64) (check.RunStats, error) {
		profiles, err := ResolveWorkload(spec.Workload, opts.Cores, opts.Geometry, seed)
		if err != nil {
			return check.RunStats{}, err
		}
		res, err := Run(Config{
			Geometry:       opts.Geometry,
			TRH:            spec.TRH,
			MappingName:    spec.Mapping,
			MitigationName: spec.Mitigation,
			Workloads:      profiles,
			InstrPerCore:   instr,
			Seed:           seed,
			LineCensus:     spec.LineCensus,
		})
		if err != nil {
			return check.RunStats{}, err
		}
		return runStatsOf(res), nil
	}

	var results []RelationResult

	seedRes := RelationResult{Name: "seed-invariance"}
	if !seedInvariantMapping(spec.Mapping) {
		seedRes.Skipped = fmt.Sprintf("mapping %q is seed-keyed", spec.Mapping)
	} else {
		seedRes.Err = check.SeedInvariance(func(seed uint64) (check.RunStats, error) {
			return runOnce(seed, opts.instrPerCore())
		}, ro.Seeds, ro.Tol)
	}
	results = append(results, seedRes)

	scaleRes := RelationResult{Name: "scale-linearity"}
	scaleRes.Err = check.ScaleLinearity(func(instr uint64) (check.RunStats, error) {
		return runOnce(opts.Seed, instr)
	}, opts.instrPerCore(), ro.ScaleFactor, ro.Tol)
	results = append(results, scaleRes)

	cipherRes := RelationResult{Name: "cipher-equivalence"}
	cipherRes.Err = check.CipherEquivalence(opts.Geometry, opts.Seed, 0)
	results = append(results, cipherRes)

	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Name, r.Err))
		}
	}
	return results, errors.Join(errs...)
}
