package sim

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rubix/internal/geom"
	"rubix/internal/workload"
)

// TestPrefetchWorkerDerivation pins the oversubscription fix: the Prefetch
// worker count divides NumCPU by the per-run shard count (auto shards come
// from the geometry's channels), never drops below one, and an explicit
// Options.Workers overrides the derivation.
func TestPrefetchWorkerDerivation(t *testing.T) {
	ncpu := runtime.NumCPU()
	min1 := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	cases := []struct {
		name string
		opts Options
		want int
	}{
		{"explicit", Options{Workers: 3}, 3},
		{"serial default", Options{}, ncpu}, // 1-channel default geometry
		{"auto shards 4ch", Options{Geometry: geom.DDR4_32GB4Ch()}, min1(ncpu / 4)},
		{"explicit shards", Options{Geometry: geom.DDR4_32GB4Ch(), Shards: 2}, min1(ncpu / 2)},
		{"forced serial", Options{Geometry: geom.DDR4_32GB4Ch(), Shards: 1}, ncpu},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := NewSuite(tc.opts).prefetchWorkers(); got != tc.want {
				t.Fatalf("prefetchWorkers = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestPrefetchHonorsWorkers proves the configured bound is the bound that
// actually limits Prefetch's fan-out, by counting concurrent resolver
// entries through a swapped-in blocking resolver.
func TestPrefetchHonorsWorkers(t *testing.T) {
	s := NewSuite(Options{Scale: 0.004, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 5, Workers: 1})
	var inFlight, maxInFlight atomic.Int64
	var mu sync.Mutex
	inner := s.resolve
	s.resolve = func(spec string, cores int, g geom.Geometry, seed uint64) ([]workload.Profile, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		mu.Lock()
		if n > maxInFlight.Load() {
			maxInFlight.Store(n)
		}
		mu.Unlock()
		return inner(spec, cores, g, seed)
	}
	specs := []RunSpec{
		{"mcf", "coffeelake", "none", 1000, false},
		{"mcf", "sequential", "none", 1000, false},
		{"mcf", "rubixs-gs1", "none", 1000, false},
	}
	if err := s.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got != 1 {
		t.Fatalf("observed %d concurrent runs with Workers=1", got)
	}
}

// tinySuite runs experiments at a very small scale over two workloads so the
// runner plumbing is exercised quickly.
func tinySuite() *Suite {
	return NewSuite(Options{
		Scale:     0.01,
		Workloads: []string{"mcf", "xz"},
		Mixes:     []int{1},
		Seed:      11,
	})
}

func TestTable2Runner(t *testing.T) {
	s := tinySuite()
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.UniqueRows <= 0 {
			t.Errorf("%s: no unique rows", r.Workload)
		}
		if r.MPKI <= 0 {
			t.Errorf("%s: missing MPKI", r.Workload)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "average") {
		t.Fatalf("formatting missing rows:\n%s", out)
	}
}

func TestHotRowsRunner(t *testing.T) {
	s := tinySuite()
	maps := []string{"coffeelake", "rubixs-gs4"}
	rows, err := s.HotRows(maps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Counts) != 2 {
			t.Fatalf("%s: %d counts", r.Workload, len(r.Counts))
		}
	}
	out := FormatHotRows("t", maps, rows)
	if !strings.Contains(out, "mean") {
		t.Fatal("formatting missing mean row")
	}
}

func TestPerfRunnerIncludesMixes(t *testing.T) {
	s := tinySuite()
	rows, err := s.PerfAtTRH("aqua", 128, []string{"rubixs-gs4"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 SPEC workloads + 1 mix.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (incl. mix1)", len(rows))
	}
	found := false
	for _, r := range rows {
		if r.Workload == "mix1" {
			found = true
		}
		for _, v := range r.Perf {
			if v <= 0 || v > 2 {
				t.Errorf("%s: normalized perf %v implausible", r.Workload, v)
			}
		}
	}
	if !found {
		t.Fatal("mix1 missing from performance rows")
	}
}

func TestGangSweepRunner(t *testing.T) {
	s := tinySuite()
	rows, err := s.GangSweep([]string{"rubixs-gs4"}, []string{"none", "aqua"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.HitRate <= 0 || r.HitRate >= 1 {
			t.Errorf("%s/%s: hit rate %v", r.Mapping, r.Mitigation, r.HitRate)
		}
		if r.PowerMW < 1000 {
			t.Errorf("%s/%s: power %v", r.Mapping, r.Mitigation, r.PowerMW)
		}
	}
	out := FormatGangSweep("t", rows)
	if !strings.Contains(out, "rubixs-gs4") {
		t.Fatal("formatting broken")
	}
}

func TestTable3Runner(t *testing.T) {
	// Table 3 needs hot rows with a line census; mcf at fuller scale.
	s := NewSuite(Options{Scale: 0.15, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 3})
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Skip("mcf produced <100 hot rows at this scale")
	}
	r := rows[0]
	total := r.Pct1to32 + r.Pct32to64 + r.Pct64to128
	if total < 99 || total > 101 {
		t.Fatalf("bucket percentages sum to %v", total)
	}
	// The paper's key observation: hot rows draw activations from MANY
	// lines (avg 56 of 128); our synthetic mcf should also be multi-line.
	if r.AvgLines < 8 {
		t.Fatalf("avg activating lines %v: hot rows should be multi-line", r.AvgLines)
	}
}

func TestRemapRateRunner(t *testing.T) {
	s := NewSuite(Options{Scale: 0.05, Workloads: []string{"lbm"}, Mixes: []int{}, Seed: 5})
	rows, err := s.RemapRate(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Swaps == 0 {
		t.Fatal("no swaps recorded")
	}
	// §5.4: ~1.5% extra activations at RR=1% (half of 1% episodes swap,
	// each swap costs 3 ACTs).
	if r.ExtraActPct < 0.5 || r.ExtraActPct > 4 {
		t.Fatalf("extra ACT overhead %.2f%%, want ~1.5%%", r.ExtraActPct)
	}
}

func TestFig3RunnerShape(t *testing.T) {
	s := NewSuite(Options{Scale: 0.02, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 13})
	rows, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 mitigations x 4 thresholds
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Within each mitigation, performance must not IMPROVE as the
	// threshold drops (mitigations only get busier).
	byMit := map[string][]Fig3Row{}
	for _, r := range rows {
		byMit[r.Mitigation] = append(byMit[r.Mitigation], r)
	}
	for mit, rs := range byMit {
		// rs is ordered 1024, 512, 256, 128.
		if rs[len(rs)-1].CoffeeLake > rs[0].CoffeeLake*1.05 {
			t.Errorf("%s: perf at TRH=128 (%v) better than at 1024 (%v)",
				mit, rs[len(rs)-1].CoffeeLake, rs[0].CoffeeLake)
		}
	}
	if out := FormatFig3(rows); !strings.Contains(out, "blockhammer") {
		t.Fatal("formatting broken")
	}
}

func TestSortRowsByHotness(t *testing.T) {
	rows := []Table2Row{{Workload: "a", Hot64: 1}, {Workload: "b", Hot64: 9}, {Workload: "c", Hot64: 5}}
	SortRowsByHotness(rows)
	if rows[0].Workload != "b" || rows[2].Workload != "a" {
		t.Fatalf("sorted order wrong: %v", rows)
	}
}
