// Attack workloads: Rowhammer access patterns driven through the simulated
// memory system, used by the security examples and tests. The attacker is
// assumed to know the memory mapping (the paper's threat model gives the
// attacker user-level code execution and, for baseline mappings, the
// line-to-row layout is public knowledge).

package sim

import (
	"fmt"

	"rubix/internal/geom"
	"rubix/internal/mapping"
	"rubix/internal/workload"
)

// AttackKind selects a hammering pattern.
type AttackKind string

// Supported attack patterns.
const (
	// SingleSided hammers one aggressor row.
	SingleSided AttackKind = "single-sided"
	// DoubleSided hammers the two rows sandwiching a victim.
	DoubleSided AttackKind = "double-sided"
	// ManySided hammers eight rows around the victim (TRRespass-style).
	ManySided AttackKind = "many-sided"
)

// AttackProfiles builds attacker workloads for the given mapping: each core
// runs the hammering loop against aggressor rows physically adjacent to a
// victim row in its address-space slice. The mapper must be invertible
// (all mappers in this repository are); for Rubix the attacker is assumed
// to have somehow learned the mapping — the mitigations must hold anyway
// (§4.10: their security does not depend on the mapping).
func AttackProfiles(kind AttackKind, g geom.Geometry, m mapping.Mapper, cores int, seed uint64) ([]workload.Profile, error) {
	inv, ok := m.(mapping.Inverter)
	if !ok {
		return nil, fmt.Errorf("sim: mapper %s is not invertible", m.Name())
	}
	resolve := func(globalRow uint64, slot int) uint64 {
		return inv.Unmap(globalRow<<g.SlotBits() | uint64(slot))
	}
	// Physically adjacent rows within a bank differ by BanksTotal in the
	// global row index.
	stride := uint64(g.BanksTotal())
	out := make([]workload.Profile, cores)
	for i := 0; i < cores; i++ {
		// Place each attacker's victim in a different region.
		victim := (uint64(i+1)*2048 + 1) * stride
		var rows []uint64
		switch kind {
		case SingleSided:
			rows = []uint64{victim + stride}
		case DoubleSided:
			rows = []uint64{victim - stride, victim + stride}
		case ManySided:
			for d := uint64(1); d <= 4; d++ {
				rows = append(rows, victim-d*stride, victim+d*stride)
			}
		default:
			return nil, fmt.Errorf("sim: unknown attack kind %q", kind)
		}
		gen, err := workload.NewAttack(string(kind), rows, resolve)
		if err != nil {
			return nil, err
		}
		// A hammering loop is pure memory traffic: model it as an extreme
		// MPKI with no memory-level parallelism.
		out[i] = workload.Profile{Gen: gen, MPKI: 500, MLP: 1}
	}
	return out, nil
}
