// Attack workloads: Rowhammer access patterns driven through the simulated
// memory system, used by the security examples and tests. The attacker is
// assumed to know the memory mapping (the paper's threat model gives the
// attacker user-level code execution and, for baseline mappings, the
// line-to-row layout is public knowledge).

package sim

import (
	"fmt"

	"rubix/internal/geom"
	"rubix/internal/mapping"
	"rubix/internal/workload"
)

// AttackKind selects a hammering pattern.
type AttackKind string

// Supported attack patterns.
const (
	// SingleSided hammers one aggressor row.
	SingleSided AttackKind = "single-sided"
	// DoubleSided hammers the two rows sandwiching a victim.
	DoubleSided AttackKind = "double-sided"
	// ManySided hammers eight rows around the victim (TRRespass-style).
	ManySided AttackKind = "many-sided"
)

// attackSlots is the number of in-row slots workload.Attack cycles through
// to defeat naive line-level caching.
const attackSlots = 8

// AttackProfiles builds attacker workloads for the given mapping: each core
// runs the hammering loop against aggressor rows physically adjacent to a
// victim row in its address-space slice. For Rubix the attacker is assumed
// to have somehow learned the mapping — the mitigations must hold anyway
// (§4.10: their security does not depend on the mapping).
//
// For static mappings the whole aggressor-row × slot table is translated up
// front in one UnmapBatch call, so the hammering loop indexes a table
// instead of walking the cipher per access. Dynamic mappings (Rubix-D)
// keep the live per-access Unmap: their inverse changes with every remap
// episode, which is exactly what the attacker has to fight.
func AttackProfiles(kind AttackKind, g geom.Geometry, m mapping.FullMapper, cores int, seed uint64) ([]workload.Profile, error) {
	_, dynamic := m.(remapObservable)
	// Physically adjacent rows within a bank differ by BanksTotal in the
	// global row index.
	stride := uint64(g.BanksTotal())
	out := make([]workload.Profile, cores)
	for i := 0; i < cores; i++ {
		// Place each attacker's victim in a different region.
		victim := (uint64(i+1)*2048 + 1) * stride
		var rows []uint64
		switch kind {
		case SingleSided:
			rows = []uint64{victim + stride}
		case DoubleSided:
			rows = []uint64{victim - stride, victim + stride}
		case ManySided:
			for d := uint64(1); d <= 4; d++ {
				rows = append(rows, victim-d*stride, victim+d*stride)
			}
		default:
			return nil, fmt.Errorf("sim: unknown attack kind %q", kind)
		}
		resolve := liveResolver(g, m)
		if !dynamic {
			resolve = precomputedResolver(g, m, rows)
		}
		gen, err := workload.NewAttack(string(kind), rows, resolve)
		if err != nil {
			return nil, err
		}
		// A hammering loop is pure memory traffic: model it as an extreme
		// MPKI with no memory-level parallelism.
		out[i] = workload.Profile{Gen: gen, MPKI: 500, MLP: 1}
	}
	return out, nil
}

// liveResolver translates (row, slot) through the mapper's inverse at call
// time — required under dynamic mappings, whose inverse is time-varying.
func liveResolver(g geom.Geometry, m mapping.FullMapper) workload.RowResolver {
	return func(globalRow uint64, slot int) uint64 {
		return m.Unmap(globalRow<<g.SlotBits() | uint64(slot))
	}
}

// precomputedResolver batch-translates the aggressor rows' slot table once
// and serves lookups from it. Valid only for static mappings.
func precomputedResolver(g geom.Geometry, m mapping.FullMapper, rows []uint64) workload.RowResolver {
	phys := make([]uint64, 0, len(rows)*attackSlots)
	for _, r := range rows {
		for s := 0; s < attackSlots; s++ {
			phys = append(phys, r<<g.SlotBits()|uint64(s))
		}
	}
	table := make([]uint64, len(phys))
	m.UnmapBatch(phys, table)
	rows = append([]uint64(nil), rows...)
	live := liveResolver(g, m)
	return func(globalRow uint64, slot int) uint64 {
		for i, r := range rows {
			if r == globalRow {
				return table[i*attackSlots+slot]
			}
		}
		// A row the table was not built for (never happens for generators
		// built here); fall back to the live translation.
		return live(globalRow, slot)
	}
}
