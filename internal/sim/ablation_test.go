package sim

import (
	"strings"
	"testing"
)

func ablationSuite() *Suite {
	return NewSuite(Options{Scale: 0.03, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 21})
}

func TestAblationRemapRate(t *testing.T) {
	s := ablationSuite()
	rows, err := s.AblationRemapRate(4, []float64{0, 0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Swaps != 0 {
		t.Fatal("rate 0 must not swap")
	}
	if rows[1].Swaps == 0 || rows[2].Swaps <= rows[1].Swaps {
		t.Fatalf("swap counts not increasing with rate: %d, %d", rows[1].Swaps, rows[2].Swaps)
	}
	if rows[2].ExtraActPct <= rows[1].ExtraActPct {
		t.Fatal("extra ACT overhead must grow with the remap rate")
	}
	if out := FormatRemapRate(rows); !strings.Contains(out, "swaps") {
		t.Fatal("format broken")
	}
}

func TestAblationSegments(t *testing.T) {
	s := ablationSuite()
	rows, err := s.AblationSegments(4, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].StorageBytes != 32*rows[0].StorageBytes {
		t.Fatalf("segment SRAM should scale linearly: %d vs %d", rows[0].StorageBytes, rows[1].StorageBytes)
	}
	if rows[1].RemapPeriodActs*32 != rows[0].RemapPeriodActs {
		t.Fatalf("remap period should shrink 32x: %v vs %v", rows[0].RemapPeriodActs, rows[1].RemapPeriodActs)
	}
	// §5.4's numbers: unsegmented period ~200M activations on the 16 GB
	// geometry at RR=1%.
	if rows[0].RemapPeriodActs < 150e6 || rows[0].RemapPeriodActs > 250e6 {
		t.Fatalf("unsegmented remap period %v, want ~200M ACTs", rows[0].RemapPeriodActs)
	}
	if out := FormatSegments(rows); !strings.Contains(out, "SRAM") {
		t.Fatal("format broken")
	}
}

func TestAblationTrackers(t *testing.T) {
	s := NewSuite(Options{Scale: 0.1, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 31})
	rows, err := s.AblationTrackers()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]TrackerRow{}
	for _, r := range rows {
		byKey[r.Scheme+"/"+r.Tracker] = r
	}
	// Hydra's pessimistic group seeding must over-mitigate relative to
	// Misra-Gries at this ultra-low threshold.
	if byKey["aqua/hydra"].Mitigations <= byKey["aqua/misra-gries"].Mitigations {
		t.Fatal("Hydra at TRH=128 should over-mitigate vs Misra-Gries")
	}
	// A small CBF must throttle at least as much as the ideal per-row
	// tracker (over-estimates, never under).
	if byKey["blockhammer/cbf-4k"].Mitigations < byKey["blockhammer/per-row"].Mitigations {
		t.Fatal("CBF should throttle at least as often as exact counters")
	}
	if out := FormatTrackers(rows); !strings.Contains(out, "misra-gries") {
		t.Fatal("format broken")
	}
}

func TestAblationPagePolicy(t *testing.T) {
	s := ablationSuite()
	rows, err := s.AblationPagePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PagePolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	if byName["closed-page"].HitRate != 0 {
		t.Fatal("closed-page cannot have row-buffer hits")
	}
	if byName["open-page"].HitRate < byName["closed-page"].HitRate {
		t.Fatal("open-page must beat closed-page on hit rate")
	}
	if byName["open-adaptive-16"].SlowdownPct != 0 {
		t.Fatal("adaptive is the reference point")
	}
	if byName["closed-page"].SlowdownPct <= 0 {
		t.Fatal("closed-page should cost performance")
	}
	if out := FormatPagePolicy(rows); !strings.Contains(out, "closed-page") {
		t.Fatal("format broken")
	}
}

func TestAblationWriteTraffic(t *testing.T) {
	s := ablationSuite()
	rows, err := s.AblationWriteTraffic([]float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].WriteCAS != 0 {
		t.Fatal("read-only run recorded writes")
	}
	if rows[1].WriteCAS == 0 {
		t.Fatal("write run recorded no writes")
	}
	if rows[1].SlowdownPct <= 0 {
		t.Fatal("write recovery should cost performance")
	}
	if out := FormatWriteTraffic(rows); !strings.Contains(out, "write frac") {
		t.Fatal("format broken")
	}
}

func TestAblationTRR(t *testing.T) {
	s := NewSuite(Options{Scale: 0.15, Workloads: []string{"mcf"}, Mixes: []int{}, Seed: 23})
	rows, err := s.AblationTRR([]string{"coffeelake", "rubixs-gs4"})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Refreshes == 0 {
		t.Fatal("TRR on the baseline mapping should fire for mcf")
	}
	if rows[1].Refreshes*10 > rows[0].Refreshes {
		t.Fatalf("Rubix should slash victim refreshes: %d vs %d", rows[1].Refreshes, rows[0].Refreshes)
	}
	if out := FormatTRR(rows); !strings.Contains(out, "refreshes") {
		t.Fatal("format broken")
	}
}
