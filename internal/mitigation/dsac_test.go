package mitigation

import "testing"

func TestDSACRefreshesMostAggressors(t *testing.T) {
	d := newDRAM(t, 1<<30)
	m := NewDSAC(d, DSACConfig{TRH: 128, Seed: 1})
	stride := uint64(d.Geom.BanksTotal())
	// Drive 1000 independent aggressors to the report threshold.
	for agg := uint64(1); agg <= 1000; agg++ {
		row := agg * 100 * stride
		for i := 0; i < 64; i++ {
			m.OnACT(row, float64(i))
		}
	}
	total := m.Mitigations() + m.Escapes()
	if total != 1000 {
		t.Fatalf("reports = %d, want 1000", total)
	}
	frac := float64(m.Escapes()) / float64(total)
	if frac < 0.09 || frac > 0.19 {
		t.Fatalf("escape fraction %.3f, want ~0.139", frac)
	}
}

func TestDSACEscapeConfigurable(t *testing.T) {
	d := newDRAM(t, 1<<30)
	m := NewDSAC(d, DSACConfig{TRH: 128, Escape: 0.069, Seed: 2}) // PAT
	stride := uint64(d.Geom.BanksTotal())
	for agg := uint64(1); agg <= 2000; agg++ {
		row := agg * 50 * stride
		for i := 0; i < 64; i++ {
			m.OnACT(row, float64(i))
		}
	}
	frac := float64(m.Escapes()) / float64(m.Mitigations()+m.Escapes())
	if frac < 0.04 || frac > 0.10 {
		t.Fatalf("PAT escape fraction %.3f, want ~0.069", frac)
	}
}

func TestDSACStillNotSecure(t *testing.T) {
	// Even ignoring Half-Double, escapes alone let a patient attacker
	// exceed T_RH: over many report cycles some reports are missed, and —
	// structurally, like TRR — the victim refreshes hammer distance 2.
	const trh = 128
	d := newDRAM(t, trh)
	m := NewDSAC(d, DSACConfig{TRH: trh, Seed: 3})
	rows := []uint64{5, 5 + uint64(d.Geom.BanksTotal())}
	hammerThroughMitigator(d, m, rows, 100000)
	if d.Finalize().TotalOverTRH() == 0 {
		t.Fatal("approximate in-DRAM TRR should not survive a sustained attack")
	}
}

func TestDSACByName(t *testing.T) {
	d := newDRAM(t, 128)
	m, err := ByName("dsac", d, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "DSAC" {
		t.Fatalf("name = %s", m.Name())
	}
}
