// Package mitigation implements the Rowhammer mitigations the paper
// evaluates (§2.5): the secure, aggressor-focused schemes AQUA (quarantine
// migration), SRS (scalable row-swap), and BlockHammer (activation-rate
// control), plus victim-refresh TRR (for the Table 5 comparison and the
// Half-Double demonstration) and a no-op baseline.
//
// A Mitigator plugs into the memory controller at three points:
//
//  1. TranslateRow — row-migration schemes (AQUA, SRS) redirect accesses to
//     a row's current physical location;
//  2. ReleaseTime — rate-control schemes (BlockHammer) delay the earliest
//     activation time of a throttled row;
//  3. OnACT — every demand activation feeds the scheme's tracker and may
//     trigger a mitigative action, whose cost is charged to the DRAM module
//     (channel blocking, extra activations, extra column accesses).
package mitigation

import (
	"fmt"

	"rubix/internal/dram"
	"rubix/internal/metrics"
	"rubix/internal/rng"
	"rubix/internal/tracker"
)

// Mitigator is a pluggable Rowhammer mitigation.
type Mitigator interface {
	// Name identifies the scheme in reports.
	Name() string
	// TranslateRow maps a post-mapping global row to its current physical
	// global row (identity except for migration schemes).
	TranslateRow(row uint64) uint64
	// ReleaseTime returns the earliest time an activation of row may start,
	// given the request's arrival. Rate-control schemes move it forward.
	ReleaseTime(row uint64, arrival float64) float64
	// OnACT is invoked for every demand activation of row at actStart.
	OnACT(row uint64, actStart float64)
	// ResetWindow is invoked at every refresh-window boundary.
	ResetWindow()
	// Mitigations reports how many mitigative actions were performed
	// (migrations, swaps, throttled activations, victim refreshes).
	Mitigations() uint64
}

// --- None --------------------------------------------------------------------

// None is the unprotected baseline.
type None struct{}

// NewNone returns the unprotected baseline mitigator.
func NewNone() None { return None{} }

// Name implements Mitigator.
func (None) Name() string { return "None" }

// TranslateRow implements Mitigator.
func (None) TranslateRow(row uint64) uint64 { return row }

// ReleaseTime implements Mitigator.
func (None) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator.
func (None) OnACT(uint64, float64) {}

// ResetWindow implements Mitigator.
func (None) ResetWindow() {}

// Mitigations implements Mitigator.
func (None) Mitigations() uint64 { return 0 }

// --- shared migration bookkeeping ---------------------------------------------

// indirection tracks row relocations with forward (original→current) and
// reverse (current→original) maps, identity when absent.
type indirection struct {
	fwd map[uint64]uint64
	rev map[uint64]uint64
}

func newIndirection() indirection {
	return indirection{fwd: make(map[uint64]uint64), rev: make(map[uint64]uint64)}
}

func (in *indirection) current(orig uint64) uint64 {
	if c, ok := in.fwd[orig]; ok {
		return c
	}
	return orig
}

func (in *indirection) original(cur uint64) uint64 {
	if o, ok := in.rev[cur]; ok {
		return o
	}
	return cur
}

// relocate moves the content currently at cur to dst and records it.
func (in *indirection) relocate(cur, dst uint64) {
	orig := in.original(cur)
	delete(in.rev, cur)
	if orig == dst {
		delete(in.fwd, orig)
	} else {
		in.fwd[orig] = dst
		in.rev[dst] = orig
	}
}

// set records that orig's content currently lives at cur, dropping the
// entries entirely when a row is back home.
func (in *indirection) set(orig, cur uint64) {
	if orig == cur {
		delete(in.fwd, orig)
	} else {
		in.fwd[orig] = cur
		in.rev[cur] = orig
	}
}

// swap exchanges the contents of physical rows a and b.
func (in *indirection) swap(a, b uint64) {
	oa, ob := in.original(a), in.original(b)
	delete(in.rev, a)
	delete(in.rev, b)
	in.set(oa, b)
	in.set(ob, a)
}

// --- AQUA ---------------------------------------------------------------------

// AQUA (Saxena et al., MICRO 2022) migrates an aggressor row to a quarantine
// region when it reaches T_RH/2 activations (the halved threshold accounts
// for tracker reset). The migration ties up the channel for several
// microseconds.
type AQUA struct {
	dram       *dram.Module
	trk        tracker.Tracker
	ind        indirection
	quarBase   uint64 // first quarantine row
	quarRows   uint64
	quarNext   uint64
	slotEpoch  []uint32 // window in which each slot was last assigned
	epoch      uint32
	migrateNs  float64
	migrations uint64

	rec      *metrics.Recorder
	mActions *metrics.Counter
}

// AQUAConfig configures NewAQUA.
type AQUAConfig struct {
	TRH             int // Rowhammer threshold
	TrackerCapacity int // Misra-Gries entries (0 = auto-size)
	// Tracker overrides the default Misra-Gries activation tracker (e.g.
	// a Hydra instance for tracking-fidelity studies). It must report at
	// T_RH/2.
	Tracker tracker.Tracker
	// QuarantineRows sizes the quarantine region (0 = 65536, ~3% of the
	// 16 GB baseline). AQUA's guarantee requires that a quarantine slot is
	// not reused within one refresh window, so the region must be sized
	// for the worst-case migrations per window.
	QuarantineRows uint64
	MigrateNs      float64 // channel-blocking time per migration (0 = 2000)
}

// NewAQUA builds the AQUA mitigator over module d.
func NewAQUA(d *dram.Module, cfg AQUAConfig) *AQUA {
	if cfg.QuarantineRows == 0 {
		cfg.QuarantineRows = 65536
	}
	if cfg.MigrateNs == 0 {
		cfg.MigrateNs = 2000
	}
	threshold := cfg.TRH / 2
	if threshold < 1 {
		threshold = 1
	}
	capacity := cfg.TrackerCapacity
	if capacity == 0 {
		capacity = autoTrackerCapacity(d, threshold)
	}
	trk := cfg.Tracker
	if trk == nil {
		trk = tracker.NewMisraGries(threshold, capacity)
	}
	total := d.Geom.TotalRows()
	return &AQUA{
		dram:      d,
		trk:       trk,
		ind:       newIndirection(),
		quarBase:  total - cfg.QuarantineRows,
		quarRows:  cfg.QuarantineRows,
		slotEpoch: make([]uint32, cfg.QuarantineRows),
		epoch:     1,
		migrateNs: cfg.MigrateNs,
	}
}

// autoTrackerCapacity sizes a Misra-Gries table so that any row reaching the
// threshold within a refresh window is guaranteed to be tracked: the window
// activation budget (window / tRC per bank × banks) divided by the threshold.
func autoTrackerCapacity(d *dram.Module, threshold int) int {
	budget := d.Timing.RefreshWindow / d.Timing.TRC * float64(d.Geom.BanksTotal())
	c := int(budget / float64(threshold))
	if c < 64 {
		c = 64
	}
	if c > 1<<20 {
		c = 1 << 20
	}
	return c
}

// Name implements Mitigator.
func (a *AQUA) Name() string { return "AQUA" }

// SetMetrics implements metrics.Settable: mitigation_actions counts
// migrations; the tracker's counters are wired through.
func (a *AQUA) SetMetrics(r *metrics.Recorder) {
	a.rec = r
	a.mActions = r.Counter("mitigation_actions")
	metrics.Attach(r, a.trk)
}

// TranslateRow implements Mitigator.
func (a *AQUA) TranslateRow(row uint64) uint64 { return a.ind.current(row) }

// ReleaseTime implements Mitigator.
func (a *AQUA) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator.
func (a *AQUA) OnACT(row uint64, actStart float64) {
	if !a.trk.RecordACT(row) {
		return
	}
	// Migrate the aggressor to the next quarantine slot not yet assigned
	// in this refresh window: reusing a slot within a window would give the
	// row two 64-activation tenancies, breaking the T_RH bound. If every
	// slot has been used (an attack far beyond the region's design point)
	// fall back to round-robin reuse.
	var dst uint64
	found := false
	for try := uint64(0); try < a.quarRows; try++ {
		slot := a.quarNext % a.quarRows
		a.quarNext++
		if a.slotEpoch[slot] != a.epoch {
			a.slotEpoch[slot] = a.epoch
			dst = a.quarBase + slot
			found = true
			break
		}
	}
	if !found {
		dst = a.quarBase + a.quarNext%a.quarRows
		a.quarNext++
	}
	if dst == row {
		return
	}
	// If the slot is occupied from an earlier window, restore its occupant
	// to the occupant's original home first (residency expiry).
	if occupant, ok := a.ind.rev[dst]; ok {
		a.ind.relocate(dst, occupant)
		a.forceTracked(dst, actStart)
		a.forceTracked(occupant, actStart)
		a.dram.AddExtraCAS(2 * a.dram.Geom.LinesPerRow())
		a.dram.BlockChannel(dst, actStart, a.migrateNs)
	}
	a.ind.relocate(row, dst)
	// Copy cost: read the source row, write the destination row; the
	// channel is blocked for the duration and both rows are activated.
	a.dram.BlockChannel(row, actStart, a.migrateNs)
	a.forceTracked(row, actStart)
	a.forceTracked(dst, actStart)
	a.dram.AddExtraCAS(2 * a.dram.Geom.LinesPerRow())
	a.migrations++
	a.mActions.Inc()
	a.rec.Event(metrics.EvMitigation, actStart, row)
}

// forceTracked performs a mitigation-generated activation and feeds it to
// the tracker: migration reads/writes are real ACT commands and must count
// toward the row's budget. A report triggered here is deliberately left for
// the next demand activation to act on (the row's count has just reset).
func (a *AQUA) forceTracked(row uint64, at float64) {
	a.dram.ForceActivate(row, at)
	a.trk.RecordACT(row)
}

// ResetWindow implements Mitigator.
func (a *AQUA) ResetWindow() {
	a.trk.Reset()
	a.epoch++
}

// Mitigations implements Mitigator.
func (a *AQUA) Mitigations() uint64 { return a.migrations }

// --- SRS ----------------------------------------------------------------------

// SRS — Scalable Row-Swap (Woo et al., HPCA 2023) — swaps an aggressor row
// with a random row in memory once it reaches T_RH/3 activations (the lower
// threshold defends the birthday-paradox attack on randomized swaps).
type SRS struct {
	dram   *dram.Module
	trk    *tracker.MisraGries
	ind    indirection
	rng    *rng.Xoshiro256
	swapNs float64
	swaps  uint64

	rec      *metrics.Recorder
	mActions *metrics.Counter
}

// SRSConfig configures NewSRS.
type SRSConfig struct {
	TRH             int
	TrackerCapacity int     // 0 = auto-size
	SwapNs          float64 // channel-blocking time per swap (0 = 4000)
	Seed            uint64
}

// NewSRS builds the SRS mitigator over module d.
func NewSRS(d *dram.Module, cfg SRSConfig) *SRS {
	if cfg.SwapNs == 0 {
		cfg.SwapNs = 4000
	}
	threshold := cfg.TRH / 3
	if threshold < 1 {
		threshold = 1
	}
	capacity := cfg.TrackerCapacity
	if capacity == 0 {
		capacity = autoTrackerCapacity(d, threshold)
	}
	return &SRS{
		dram:   d,
		trk:    tracker.NewMisraGries(threshold, capacity),
		ind:    newIndirection(),
		rng:    rng.NewXoshiro256(cfg.Seed ^ 0x5253), // "RS"
		swapNs: cfg.SwapNs,
	}
}

// Name implements Mitigator.
func (s *SRS) Name() string { return "SRS" }

// SetMetrics implements metrics.Settable: mitigation_actions counts swaps.
func (s *SRS) SetMetrics(r *metrics.Recorder) {
	s.rec = r
	s.mActions = r.Counter("mitigation_actions")
	metrics.Attach(r, s.trk)
}

// TranslateRow implements Mitigator.
func (s *SRS) TranslateRow(row uint64) uint64 { return s.ind.current(row) }

// ReleaseTime implements Mitigator.
func (s *SRS) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator.
func (s *SRS) OnACT(row uint64, actStart float64) {
	if !s.trk.RecordACT(row) {
		return
	}
	dst := s.rng.Uint64n(s.dram.Geom.TotalRows())
	if dst == row {
		return
	}
	s.ind.swap(row, dst)
	// Swap cost: the paper's sequence activates X, Y, then X again and
	// streams both rows through the controller, blocking the channel for
	// roughly twice a one-way migration. The swap's own activations count
	// toward the rows' budgets — SRS's T_RH/3 threshold exists precisely so
	// that up to three tenancies per window stay under T_RH.
	s.dram.BlockChannel(row, actStart, s.swapNs)
	for _, r := range [3]uint64{row, dst, row} {
		s.dram.ForceActivate(r, actStart)
		s.trk.RecordACT(r)
	}
	s.dram.AddExtraCAS(4 * s.dram.Geom.LinesPerRow())
	s.swaps++
	s.mActions.Inc()
	s.rec.Event(metrics.EvMitigation, actStart, row)
}

// ResetWindow implements Mitigator.
func (s *SRS) ResetWindow() { s.trk.Reset() }

// Mitigations implements Mitigator.
func (s *SRS) Mitigations() uint64 { return s.swaps }

// --- BlockHammer ----------------------------------------------------------------

// BlockHammer (Yağlıkçı et al., HPCA 2021) rate-limits activations so no row
// can receive more than T_RH activations within a refresh window. Rows whose
// count reaches the blacklist threshold (T_RH/2) have subsequent activations
// delayed to a minimum inter-activation interval of window/T_RH.
type BlockHammer struct {
	trk         tracker.Counting
	blacklist   int
	minInterval float64
	nextAllowed map[uint64]float64
	throttled   uint64
	delayNs     float64

	rec      *metrics.Recorder
	mActions *metrics.Counter
	gDelay   *metrics.Gauge
}

// BlockHammerConfig configures NewBlockHammer.
type BlockHammerConfig struct {
	TRH int
	// Tracker overrides the idealized per-row counters with another
	// Counting tracker — e.g. tracker.NewCBF for the real BlockHammer's
	// counting-Bloom-filter, whose over-estimates throttle some innocent
	// rows (tracking-fidelity studies). Its report threshold is unused;
	// only Count feeds the blacklist.
	Tracker tracker.Counting
}

// NewBlockHammer builds the BlockHammer mitigator over module d.
func NewBlockHammer(d *dram.Module, cfg BlockHammerConfig) *BlockHammer {
	trh := cfg.TRH
	if trh < 2 {
		trh = 2
	}
	// The counter only feeds the blacklist decision; give it an
	// unreachable report threshold so counts never auto-reset mid-window.
	// The activation budget after blacklisting is TRH - TRH/2, spread over
	// the window, so no row can exceed TRH activations per window.
	trk := cfg.Tracker
	if trk == nil {
		trk = tracker.NewPerRow(1<<30, d.Geom.TotalRows())
	}
	return &BlockHammer{
		trk:         trk,
		blacklist:   trh / 2,
		minInterval: d.Timing.RefreshWindow / float64(trh-trh/2),
		nextAllowed: make(map[uint64]float64),
	}
}

// Name implements Mitigator.
func (b *BlockHammer) Name() string { return "BlockHammer" }

// SetMetrics implements metrics.Settable: mitigation_actions counts
// throttled activations, blockhammer_delay_ns the total injected delay.
func (b *BlockHammer) SetMetrics(r *metrics.Recorder) {
	b.rec = r
	b.mActions = r.Counter("mitigation_actions")
	b.gDelay = r.Gauge("blockhammer_delay_ns")
	metrics.Attach(r, b.trk)
}

// TranslateRow implements Mitigator.
func (b *BlockHammer) TranslateRow(row uint64) uint64 { return row }

// ReleaseTime implements Mitigator: delays activations of blacklisted rows.
func (b *BlockHammer) ReleaseTime(row uint64, arrival float64) float64 {
	if int(b.trk.Count(row)) < b.blacklist {
		return arrival
	}
	t := arrival
	if na, ok := b.nextAllowed[row]; ok && na > t {
		t = na
	}
	b.nextAllowed[row] = t + b.minInterval
	if t > arrival {
		b.throttled++
		b.delayNs += t - arrival
		b.mActions.Inc()
		b.gDelay.Set(b.delayNs)
		b.rec.Event(metrics.EvMitigation, arrival, row)
	}
	return t
}

// OnACT implements Mitigator.
func (b *BlockHammer) OnACT(row uint64, _ float64) {
	b.trk.RecordACT(row)
}

// ResetWindow implements Mitigator. Activation counts reset with the
// refresh window, but grant reservations carry over: wiping them would let
// queued-up requests land in the new window on top of its fresh
// pre-blacklist budget, exceeding T_RH. With reservations persisting, a
// window sees at most TRH/2 un-throttled plus TRH/2 granted activations.
func (b *BlockHammer) ResetWindow() {
	b.trk.Reset()
}

// Mitigations implements Mitigator: the number of throttled activations.
func (b *BlockHammer) Mitigations() uint64 { return b.throttled }

// DelayNs reports the total injected delay.
func (b *BlockHammer) DelayNs() float64 { return b.delayNs }

// --- TRR (victim refresh) --------------------------------------------------------

// TRR models in-DRAM Target Row Refresh: when an aggressor reaches T_RH/2
// activations, its neighbour rows (distance 1) are refreshed. A refresh is
// an activation of the victim row, which is exactly why Half-Double works:
// heavy hammering of row A makes TRR activate A±1 thousands of times,
// hammering A±2 (§1, Figure 1b). TRR is included for the Table 5 comparison
// and the attack example; it is NOT a secure mitigation.
type TRR struct {
	dram      *dram.Module
	trk       *tracker.PerRow
	refreshes uint64

	rec      *metrics.Recorder
	mActions *metrics.Counter
}

// NewTRR builds the TRR mitigator over module d with threshold trh.
func NewTRR(d *dram.Module, trh int) *TRR {
	t := trh / 2
	if t < 1 {
		t = 1
	}
	return &TRR{dram: d, trk: tracker.NewPerRow(t, d.Geom.TotalRows())}
}

// Name implements Mitigator.
func (t *TRR) Name() string { return "TRR" }

// SetMetrics implements metrics.Settable: mitigation_actions counts victim
// refreshes.
func (t *TRR) SetMetrics(r *metrics.Recorder) {
	t.rec = r
	t.mActions = r.Counter("mitigation_actions")
	metrics.Attach(r, t.trk)
}

// TranslateRow implements Mitigator.
func (t *TRR) TranslateRow(row uint64) uint64 { return row }

// ReleaseTime implements Mitigator.
func (t *TRR) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator: refresh the neighbours when the tracker fires.
func (t *TRR) OnACT(row uint64, actStart float64) {
	if !t.trk.RecordACT(row) {
		return
	}
	// Physically adjacent rows within a bank differ by BanksTotal in the
	// global row index (banks occupy the low bits of the global row).
	stride := uint64(t.dram.Geom.BanksTotal())
	total := t.dram.Geom.TotalRows()
	if row >= stride {
		t.dram.ForceActivate(row-stride, actStart)
	}
	if row+stride < total {
		t.dram.ForceActivate(row+stride, actStart)
	}
	t.refreshes++
	t.mActions.Inc()
	t.rec.Event(metrics.EvMitigation, actStart, row)
}

// ResetWindow implements Mitigator.
func (t *TRR) ResetWindow() { t.trk.Reset() }

// Mitigations implements Mitigator.
func (t *TRR) Mitigations() uint64 { return t.refreshes }

// --- helpers -----------------------------------------------------------------

// ByName constructs a mitigator by scheme name; used by the CLIs.
// Valid names: none, aqua, srs, blockhammer, trr.
func ByName(name string, d *dram.Module, trh int, seed uint64) (Mitigator, error) {
	switch name {
	case "none":
		return NewNone(), nil
	case "aqua":
		return NewAQUA(d, AQUAConfig{TRH: trh}), nil
	case "srs":
		return NewSRS(d, SRSConfig{TRH: trh, Seed: seed}), nil
	case "blockhammer", "bh":
		return NewBlockHammer(d, BlockHammerConfig{TRH: trh}), nil
	case "trr":
		return NewTRR(d, trh), nil
	case "para":
		return NewPARA(d, PARAConfig{TRH: trh, Seed: seed}), nil
	case "dsac":
		return NewDSAC(d, DSACConfig{TRH: trh, Seed: seed}), nil
	}
	return nil, fmt.Errorf("mitigation: unknown scheme %q", name)
}
