package mitigation

import (
	"testing"

	"rubix/internal/dram"
	"rubix/internal/geom"
)

func newDRAM(t *testing.T, trh int) *dram.Module {
	t.Helper()
	return dram.New(dram.Config{Geometry: geom.DDR4_16GB(), Timing: dram.DDR4_2400(), TRH: trh})
}

func TestByName(t *testing.T) {
	d := newDRAM(t, 128)
	for _, name := range []string{"none", "aqua", "srs", "blockhammer", "bh", "trr"} {
		m, err := ByName(name, d, 128, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := ByName("nosuch", d, 128, 1); err == nil {
		t.Fatal("unknown scheme should error")
	}
}

func TestNoneIsTransparent(t *testing.T) {
	var m Mitigator = NewNone()
	if m.TranslateRow(42) != 42 {
		t.Fatal("None must not translate")
	}
	if m.ReleaseTime(42, 100) != 100 {
		t.Fatal("None must not delay")
	}
	m.OnACT(42, 0)
	if m.Mitigations() != 0 {
		t.Fatal("None must not mitigate")
	}
}

// --- indirection -------------------------------------------------------------

func TestIndirectionRelocate(t *testing.T) {
	in := newIndirection()
	if in.current(5) != 5 {
		t.Fatal("identity by default")
	}
	in.relocate(5, 100)
	if in.current(5) != 100 || in.original(100) != 5 {
		t.Fatal("relocation not recorded")
	}
	// Move again: original key follows the content.
	in.relocate(100, 200)
	if in.current(5) != 200 || in.original(200) != 5 {
		t.Fatal("second relocation broke the chain")
	}
	// Moving home again erases the entry.
	in.relocate(200, 5)
	if len(in.fwd) != 0 || len(in.rev) != 0 {
		t.Fatal("relocating home should clear maps")
	}
}

func TestIndirectionSwap(t *testing.T) {
	in := newIndirection()
	in.swap(1, 2)
	if in.current(1) != 2 || in.current(2) != 1 {
		t.Fatal("swap not recorded")
	}
	// Swapping back restores identity.
	in.swap(1, 2)
	if in.current(1) != 1 || in.current(2) != 2 {
		t.Fatal("double swap should restore identity")
	}
	if len(in.fwd) != 0 {
		t.Fatal("identity swaps should leave no entries")
	}
	// Chain: 1→2, then 2's new content (orig 1) swaps with 3.
	in.swap(1, 2)
	in.swap(2, 3)
	if in.current(1) != 3 {
		t.Fatalf("content of 1 should be at 3, got %d", in.current(1))
	}
}

// --- AQUA ---------------------------------------------------------------------

func TestAQUAMigratesAtHalfThreshold(t *testing.T) {
	d := newDRAM(t, 128)
	a := NewAQUA(d, AQUAConfig{TRH: 128})
	row := uint64(77)
	for i := 0; i < 63; i++ {
		a.OnACT(row, float64(i))
	}
	if a.Mitigations() != 0 {
		t.Fatal("migrated before T_RH/2")
	}
	a.OnACT(row, 64)
	if a.Mitigations() != 1 {
		t.Fatalf("migrations = %d, want 1 at T_RH/2 = 64", a.Mitigations())
	}
	// The row now lives in the quarantine region.
	cur := a.TranslateRow(row)
	if cur == row {
		t.Fatal("aggressor not relocated")
	}
	if cur < d.Geom.TotalRows()-65536 {
		t.Fatalf("destination %d outside the quarantine region", cur)
	}
}

func TestAQUAChargesDRAM(t *testing.T) {
	d := newDRAM(t, 128)
	a := NewAQUA(d, AQUAConfig{TRH: 128, MigrateNs: 2000})
	for i := 0; i <= 64; i++ {
		a.OnACT(7, float64(i))
	}
	s := d.Stats()
	if s.ExtraActs != 2 {
		t.Fatalf("extra ACTs = %d, want 2 (read src, write dst)", s.ExtraActs)
	}
	if s.ExtraCAS != uint64(2*d.Geom.LinesPerRow()) {
		t.Fatalf("extra CAS = %d, want a full row each way", s.ExtraCAS)
	}
	// Channel blocked: a subsequent access must land after the migration.
	res := d.Access(7<<d.Geom.SlotBits(), 65)
	if res.Completion < 2000 {
		t.Fatalf("access at %.0f ignored the migration channel block", res.Completion)
	}
}

func TestAQUAQuarantineWrapRestoresOccupant(t *testing.T) {
	d := newDRAM(t, 128)
	a := NewAQUA(d, AQUAConfig{TRH: 128, QuarantineRows: 2})
	hammer := func(row uint64) {
		for i := 0; i <= 64; i++ {
			a.OnACT(a.TranslateRow(row), float64(i))
		}
	}
	hammer(10)
	hammer(20)
	hammer(30) // wraps onto 10's quarantine slot
	// Row 10 must be back home (restored), row 30 in quarantine.
	if cur := a.TranslateRow(10); cur != 10 {
		t.Fatalf("evicted quarantine occupant at %d, want restored to 10", cur)
	}
	if cur := a.TranslateRow(30); cur == 30 {
		t.Fatal("row 30 should be quarantined")
	}
}

// hammerThroughMitigator drives a double-sided style hammering loop through
// a mitigator exactly as the memory controller would: every access is
// translated, and every resulting activation is fed back to the scheme.
func hammerThroughMitigator(d *dram.Module, m Mitigator, rows []uint64, accesses int) {
	now := 0.0
	for i := 0; i < accesses; i++ {
		logical := rows[i%len(rows)]
		cur := m.TranslateRow(logical)
		phys := cur << d.Geom.SlotBits()
		start := now
		if !d.WouldHit(phys) {
			start = m.ReleaseTime(cur, now)
		}
		res := d.Access(phys, start)
		now = res.Completion
		if res.Activated {
			m.OnACT(cur, res.ActStart)
		}
	}
}

func TestAQUASecurityUnderAttack(t *testing.T) {
	// Hammer two same-bank logical rows hard through the translation; no
	// physical row may exceed T_RH activations in the DRAM census.
	const trh = 128
	d := newDRAM(t, trh)
	a := NewAQUA(d, AQUAConfig{TRH: trh})
	rows := []uint64{5, 5 + uint64(d.Geom.BanksTotal())}
	hammerThroughMitigator(d, a, rows, 100000)
	s := d.Finalize()
	if v := s.TotalOverTRH(); v != 0 {
		t.Fatalf("AQUA watchdog violations: %d", v)
	}
	if a.Mitigations() == 0 {
		t.Fatal("attack triggered no migrations")
	}
}

// --- SRS ----------------------------------------------------------------------

func TestSRSSwapsAtThirdThreshold(t *testing.T) {
	d := newDRAM(t, 128)
	s := NewSRS(d, SRSConfig{TRH: 128, Seed: 3})
	row := uint64(99)
	for i := 0; i < 41; i++ {
		s.OnACT(row, float64(i))
	}
	if s.Mitigations() != 0 {
		t.Fatal("swapped before T_RH/3")
	}
	s.OnACT(row, 42)
	if s.Mitigations() != 1 {
		t.Fatalf("swaps = %d, want 1 at T_RH/3 = 42", s.Mitigations())
	}
	cur := s.TranslateRow(row)
	if cur == row {
		t.Fatal("aggressor not swapped")
	}
	// The displaced row's content is now at the aggressor's old location.
	if s.TranslateRow(cur) != row {
		t.Fatal("swap is not symmetric")
	}
}

func TestSRSChargesDRAM(t *testing.T) {
	d := newDRAM(t, 128)
	s := NewSRS(d, SRSConfig{TRH: 128, Seed: 5, SwapNs: 4000})
	for i := 0; i <= 42; i++ {
		s.OnACT(55, float64(i))
	}
	st := d.Stats()
	if st.ExtraActs != 3 {
		t.Fatalf("extra ACTs = %d, want 3 (X, Y, X)", st.ExtraActs)
	}
	if st.ExtraCAS != uint64(4*d.Geom.LinesPerRow()) {
		t.Fatalf("extra CAS = %d, want 4 rows' worth", st.ExtraCAS)
	}
}

func TestSRSSecurityUnderAttack(t *testing.T) {
	const trh = 128
	d := newDRAM(t, trh)
	s := NewSRS(d, SRSConfig{TRH: trh, Seed: 7})
	rows := []uint64{5, 5 + uint64(d.Geom.BanksTotal())}
	hammerThroughMitigator(d, s, rows, 100000)
	if v := d.Finalize().TotalOverTRH(); v != 0 {
		t.Fatalf("SRS watchdog violations: %d", v)
	}
	if s.Mitigations() == 0 {
		t.Fatal("attack triggered no swaps")
	}
}

func TestBlockHammerSecurityUnderAttack(t *testing.T) {
	const trh = 128
	d := newDRAM(t, trh)
	b := NewBlockHammer(d, BlockHammerConfig{TRH: trh})
	rows := []uint64{5, 5 + uint64(d.Geom.BanksTotal())}
	hammerThroughMitigator(d, b, rows, 20000)
	if v := d.Finalize().TotalOverTRH(); v != 0 {
		t.Fatalf("BlockHammer watchdog violations: %d", v)
	}
	if b.Mitigations() == 0 {
		t.Fatal("attack triggered no throttling")
	}
}

// --- BlockHammer ----------------------------------------------------------------

func TestBlockHammerThrottlesBlacklistedRows(t *testing.T) {
	d := newDRAM(t, 128)
	b := NewBlockHammer(d, BlockHammerConfig{TRH: 128})
	row := uint64(31)
	// Below the blacklist threshold: no delay.
	for i := 0; i < 63; i++ {
		b.OnACT(row, float64(i))
		if got := b.ReleaseTime(row, float64(i)); got != float64(i) {
			t.Fatalf("delayed before blacklist at ACT %d", i)
		}
	}
	b.OnACT(row, 63) // count reaches 64 = TRH/2
	r1 := b.ReleaseTime(row, 1000)
	if r1 != 1000 {
		t.Fatal("first throttled grant should start immediately")
	}
	r2 := b.ReleaseTime(row, 1001)
	min := d.Timing.RefreshWindow / float64(128-64)
	if r2-r1 < min-1 {
		t.Fatalf("grant spacing %.0f, want >= %.0f", r2-r1, min)
	}
	if b.Mitigations() == 0 {
		t.Fatal("throttles not counted")
	}
}

func TestBlockHammerGuarantee(t *testing.T) {
	// Sum of pre-blacklist and granted activations within a window can
	// never exceed T_RH.
	const trh = 128
	d := newDRAM(t, trh)
	b := NewBlockHammer(d, BlockHammerConfig{TRH: trh})
	row := uint64(8)
	now := 0.0
	granted := 0
	for i := 0; i < 10000; i++ {
		t0 := b.ReleaseTime(row, now)
		if t0 >= d.Timing.RefreshWindow {
			break // next grant falls outside the window
		}
		b.OnACT(row, t0)
		granted++
		now = t0 + 1
	}
	if granted > trh {
		t.Fatalf("BlockHammer granted %d ACTs in one window, TRH is %d", granted, trh)
	}
}

func TestBlockHammerWindowReset(t *testing.T) {
	d := newDRAM(t, 128)
	b := NewBlockHammer(d, BlockHammerConfig{TRH: 128})
	row := uint64(9)
	for i := 0; i < 100; i++ {
		b.OnACT(row, float64(i))
	}
	b.ResetWindow()
	if got := b.ReleaseTime(row, 5); got != 5 {
		t.Fatal("blacklist survived the window reset")
	}
}

// --- TRR ----------------------------------------------------------------------

func TestTRRRefreshesNeighbours(t *testing.T) {
	d := newDRAM(t, 1<<30) // watchdog off; we inspect raw counts
	trr := NewTRR(d, 128)
	row := uint64(1000 * 16) // aligned so neighbours exist
	for i := 0; i < 64; i++ {
		trr.OnACT(row, float64(i))
	}
	if trr.Mitigations() != 1 {
		t.Fatalf("victim refreshes = %d, want 1 at TRH/2", trr.Mitigations())
	}
	s := d.Finalize()
	// The two neighbour activations must appear in the census.
	if s.ExtraActs != 2 {
		t.Fatalf("neighbour refreshes = %d, want 2", s.ExtraActs)
	}
}

func TestTRRHalfDoubleEffect(t *testing.T) {
	// Half-Double: hammering row A drives TRR to activate A±1 often enough
	// that A±1 themselves exceed the threshold — the victim refreshes ARE
	// the distance-2 hammer. This is why TRR is not secure.
	const trh = 128
	d := dram.New(dram.Config{Geometry: geom.DDR4_16GB(), Timing: dram.DDR4_2400(), TRH: trh})
	trr := NewTRR(d, trh)
	stride := uint64(d.Geom.BanksTotal())
	a := uint64(5000) * stride
	// The attacker can activate A far more than TRH times because TRR
	// never blocks the aggressor, only refreshes victims.
	for i := 0; i < 100*trh; i++ {
		trr.OnACT(a, float64(i))
	}
	s := d.Finalize()
	// Neighbours got 100*trh/(trh/2) * ... activations — far over TRH.
	if v := s.TotalOverTRH(); v == 0 {
		t.Fatal("Half-Double should drive the neighbours over TRH under TRR")
	}
}

func TestMitigatorInterfaces(t *testing.T) {
	d := newDRAM(t, 128)
	ms := []Mitigator{
		NewNone(),
		NewAQUA(d, AQUAConfig{TRH: 128}),
		NewSRS(d, SRSConfig{TRH: 128}),
		NewBlockHammer(d, BlockHammerConfig{TRH: 128}),
		NewTRR(d, 128),
	}
	for _, m := range ms {
		m.ResetWindow() // must not panic on fresh state
		if m.TranslateRow(1) != 1 {
			t.Errorf("%s translates before any mitigation", m.Name())
		}
	}
}
