package mitigation

import (
	"math"
	"testing"

	"rubix/internal/dram"
	"rubix/internal/geom"
)

func TestPARAProbabilityDerivation(t *testing.T) {
	d := newDRAM(t, 128)
	p := NewPARA(d, PARAConfig{TRH: 128})
	// p = 1 - 2^(-40/128) ≈ 0.195.
	want := 1 - math.Exp2(-40.0/128)
	if math.Abs(p.Probability()-want) > 1e-9 {
		t.Fatalf("derived probability %v, want %v", p.Probability(), want)
	}
	// Explicit probability wins.
	p2 := NewPARA(d, PARAConfig{Probability: 0.01})
	if p2.Probability() != 0.01 {
		t.Fatal("explicit probability ignored")
	}
}

func TestPARARefreshRate(t *testing.T) {
	d := newDRAM(t, 1<<30)
	p := NewPARA(d, PARAConfig{Probability: 0.1, Seed: 1})
	const acts = 100000
	for i := 0; i < acts; i++ {
		p.OnACT(uint64(i%1000)*16, 0)
	}
	rate := float64(p.Mitigations()) / acts
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("refresh rate %.3f, want ~0.1", rate)
	}
	// Each refresh activates up to two neighbours.
	s := d.Finalize()
	if s.ExtraActs < p.Mitigations() || s.ExtraActs > 2*p.Mitigations() {
		t.Fatalf("extra ACTs %d vs %d refreshes", s.ExtraActs, p.Mitigations())
	}
}

func TestPARACatchesSustainedAggressor(t *testing.T) {
	// Over T_RH activations, the probability of zero refreshes must be
	// negligible (that is the scheme's whole argument).
	d := newDRAM(t, 1<<30)
	p := NewPARA(d, PARAConfig{TRH: 128, Seed: 2})
	row := uint64(5000 * 16)
	for i := 0; i < 128; i++ {
		p.OnACT(row, float64(i))
	}
	if p.Mitigations() == 0 {
		t.Fatal("PARA fired zero refreshes over a full T_RH of activations")
	}
}

func TestPARAIsNotSecureAgainstHalfDouble(t *testing.T) {
	// Like TRR, PARA's victim refreshes hammer distance-2 rows.
	const trh = 128
	d := dram.New(dram.Config{Geometry: geom.DDR4_16GB(), Timing: dram.DDR4_2400(), TRH: trh})
	p := NewPARA(d, PARAConfig{TRH: trh, Seed: 3})
	a := uint64(5000) * uint64(d.Geom.BanksTotal())
	for i := 0; i < 100*trh; i++ {
		p.OnACT(a, float64(i))
	}
	if d.Finalize().TotalOverTRH() == 0 {
		t.Fatal("sustained hammering under PARA should push neighbours past TRH")
	}
}

func TestPARAByName(t *testing.T) {
	d := newDRAM(t, 128)
	m, err := ByName("para", d, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "PARA" {
		t.Fatalf("name = %s", m.Name())
	}
}
