// DSAC — a model of in-DRAM stochastic-approximate-counting TRR in the
// style of Samsung's DSAC and SK Hynix's PAT (§7.3). These DDR5 mechanisms
// improve on DDR4 TRR but, because of DRAM's severe area budget, still use
// approximate tracking that lets a fraction of aggressors escape between
// mitigations (the paper quotes 13.9% for DSAC and 6.9% for PAT).
//
// The model abstracts the stochastic counter replacement as a per-report
// escape probability: when the tracker would fire for an aggressor, with
// probability Escape the mitigation silently misses it (counts reset, no
// victim refresh). This reproduces the paper's point that even improved
// in-DRAM mitigation "cannot eliminate all forms of Rowhammer attacks" —
// the security watchdog shows residual over-threshold rows under attack.

package mitigation

import (
	"rubix/internal/dram"
	"rubix/internal/metrics"
	"rubix/internal/rng"
	"rubix/internal/tracker"
)

// DSAC is the approximate in-DRAM victim-refresh mitigation.
type DSAC struct {
	dram      *dram.Module
	trk       *tracker.PerRow
	escape    float64
	rng       *rng.Xoshiro256
	refreshes uint64
	escapes   uint64

	rec      *metrics.Recorder
	mActions *metrics.Counter
}

// DSACConfig configures NewDSAC.
type DSACConfig struct {
	TRH int
	// Escape is the probability that a threshold report is missed
	// (0 = 0.139, the paper's DSAC figure; use 0.069 for PAT).
	Escape float64
	Seed   uint64
}

// NewDSAC builds the approximate TRR model over module d.
func NewDSAC(d *dram.Module, cfg DSACConfig) *DSAC {
	t := cfg.TRH / 2
	if t < 1 {
		t = 1
	}
	esc := cfg.Escape
	if esc == 0 {
		esc = 0.139
	}
	return &DSAC{
		dram:   d,
		trk:    tracker.NewPerRow(t, d.Geom.TotalRows()),
		escape: esc,
		rng:    rng.NewXoshiro256(cfg.Seed ^ 0xD5AC),
	}
}

// Name implements Mitigator.
func (t *DSAC) Name() string { return "DSAC" }

// SetMetrics implements metrics.Settable: mitigation_actions counts victim
// refreshes (escaped reports are not actions).
func (t *DSAC) SetMetrics(r *metrics.Recorder) {
	t.rec = r
	t.mActions = r.Counter("mitigation_actions")
	metrics.Attach(r, t.trk)
}

// TranslateRow implements Mitigator.
func (t *DSAC) TranslateRow(row uint64) uint64 { return row }

// ReleaseTime implements Mitigator.
func (t *DSAC) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator.
func (t *DSAC) OnACT(row uint64, actStart float64) {
	if !t.trk.RecordACT(row) {
		return
	}
	if t.rng.Float64() < t.escape {
		// Stochastic counting missed this aggressor: no victim refresh.
		t.escapes++
		return
	}
	stride := uint64(t.dram.Geom.BanksTotal())
	total := t.dram.Geom.TotalRows()
	if row >= stride {
		t.dram.ForceActivate(row-stride, actStart)
	}
	if row+stride < total {
		t.dram.ForceActivate(row+stride, actStart)
	}
	t.refreshes++
	t.mActions.Inc()
	t.rec.Event(metrics.EvMitigation, actStart, row)
}

// ResetWindow implements Mitigator.
func (t *DSAC) ResetWindow() { t.trk.Reset() }

// Mitigations implements Mitigator.
func (t *DSAC) Mitigations() uint64 { return t.refreshes }

// Escapes reports how many aggressor reports were missed.
func (t *DSAC) Escapes() uint64 { return t.escapes }
