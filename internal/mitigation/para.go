// PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014), the
// original stateless Rowhammer mitigation: on every activation, with a
// small probability p, refresh the neighbouring rows. No tracker at all;
// the probability is chosen so that an aggressor performing T_RH
// activations triggers a neighbour refresh with overwhelming probability.
//
// PARA shares victim-refresh TRR's structural weakness — it acts on the
// victims, preserving aggressor-victim adjacency — so Half-Double-style
// pressure transfers to distance 2. It is included, like TRR, as a
// baseline for the Table 5 comparison and tracking studies, NOT as a
// secure mitigation.

package mitigation

import (
	"math"

	"rubix/internal/dram"
	"rubix/internal/metrics"
	"rubix/internal/rng"
)

// PARA is the stateless probabilistic victim-refresh mitigation.
type PARA struct {
	dram      *dram.Module
	p         float64
	rng       *rng.Xoshiro256
	refreshes uint64

	rec      *metrics.Recorder
	mActions *metrics.Counter
}

// PARAConfig configures NewPARA.
type PARAConfig struct {
	// Probability of refreshing the neighbours on each activation. Zero
	// derives it from TRH such that an aggressor evades with probability
	// below 2^-40: p = 1 - 2^(-40/TRH).
	Probability float64
	TRH         int
	Seed        uint64
}

// NewPARA builds a PARA mitigator over module d.
func NewPARA(d *dram.Module, cfg PARAConfig) *PARA {
	p := cfg.Probability
	if p <= 0 {
		trh := cfg.TRH
		if trh < 1 {
			trh = 1
		}
		p = 1 - math.Exp2(-40/float64(trh))
	}
	if p > 1 {
		p = 1
	}
	return &PARA{dram: d, p: p, rng: rng.NewXoshiro256(cfg.Seed ^ 0x9A7A)}
}

// Name implements Mitigator.
func (p *PARA) Name() string { return "PARA" }

// SetMetrics implements metrics.Settable: mitigation_actions counts victim
// refreshes.
func (p *PARA) SetMetrics(r *metrics.Recorder) {
	p.rec = r
	p.mActions = r.Counter("mitigation_actions")
}

// TranslateRow implements Mitigator.
func (p *PARA) TranslateRow(row uint64) uint64 { return row }

// ReleaseTime implements Mitigator.
func (p *PARA) ReleaseTime(_ uint64, arrival float64) float64 { return arrival }

// OnACT implements Mitigator: flip the coin, refresh the neighbours.
func (p *PARA) OnACT(row uint64, actStart float64) {
	if p.rng.Float64() >= p.p {
		return
	}
	stride := uint64(p.dram.Geom.BanksTotal())
	total := p.dram.Geom.TotalRows()
	if row >= stride {
		p.dram.ForceActivate(row-stride, actStart)
	}
	if row+stride < total {
		p.dram.ForceActivate(row+stride, actStart)
	}
	p.refreshes++
	p.mActions.Inc()
	p.rec.Event(metrics.EvMitigation, actStart, row)
}

// ResetWindow implements Mitigator: PARA is stateless.
func (p *PARA) ResetWindow() {}

// Mitigations implements Mitigator.
func (p *PARA) Mitigations() uint64 { return p.refreshes }

// Probability reports the configured refresh probability.
func (p *PARA) Probability() float64 { return p.p }
