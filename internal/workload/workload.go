// Package workload generates memory-access streams (LLC-miss traces) for
// the simulator.
//
// The paper evaluates 18 SPEC CPU2017 rate workloads, 16 four-way mixes,
// the STREAM suite, three illustrative microkernels (Figure 4), and —
// implicitly, for the security analysis — Rowhammer attack patterns. The
// SPEC traces themselves are proprietary, so each workload is replaced by a
// synthetic generator calibrated to the published characteristics (Table 2:
// MPKI, unique rows activated, hot-row counts): a mixture of sequential
// streaming, page-strided accesses, uniform-random accesses within the
// footprint, and a Zipf-distributed hot-page set. The mixture exercises the
// same line-to-row behaviour the paper studies, which is what Rubix acts on.
package workload

import (
	"fmt"

	"rubix/internal/rng"
)

// Generator produces a stream of program line addresses.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next line address accessed.
	Next() uint64
	// InBurst reports whether the NEXT access continues the current
	// memory-level-parallel group: a run of misses that a real core's
	// MSHRs would issue concurrently (a spatial burst, a prefetchable
	// stride). The core model batches such accesses at one issue time;
	// independent (dependent-chain) accesses serialize.
	InBurst() bool
}

// Profile bundles a generator with the core-model parameters of the
// workload it represents.
type Profile struct {
	Gen  Generator
	MPKI float64 // LLC misses per kilo-instruction
	MLP  float64 // memory-level parallelism of the core running it
}

// --- Microkernels (Figure 4) --------------------------------------------------

// Stream sequentially walks a footprint of lines, wrapping around.
type Stream struct {
	base  uint64
	lines uint64
	pos   uint64
}

// NewStream builds the stream microkernel over [base, base+lines).
func NewStream(base, lines uint64) (*Stream, error) {
	if lines == 0 {
		return nil, fmt.Errorf("workload: Stream with zero lines")
	}
	return &Stream{base: base, lines: lines}, nil
}

// Name implements Generator.
func (s *Stream) Name() string { return "stream" }

// Next implements Generator.
func (s *Stream) Next() uint64 {
	a := s.base + s.pos
	s.pos++
	if s.pos == s.lines {
		s.pos = 0
	}
	return a
}

// InBurst implements Generator: a stream is fully prefetchable.
func (s *Stream) InBurst() bool { return true }

// Stride walks the footprint with a fixed line stride (the paper's stride-64
// kernel touches one line per 4 KB page, then advances to the next line of
// each page once the footprint is exhausted).
type Stride struct {
	base   uint64
	lines  uint64
	stride uint64
	pos    uint64
	offset uint64
}

// NewStride builds the strided microkernel over [base, base+lines) with the
// given line stride.
func NewStride(base, lines, stride uint64) (*Stride, error) {
	if lines == 0 || stride == 0 {
		return nil, fmt.Errorf("workload: Stride with zero lines or stride (lines=%d, stride=%d)", lines, stride)
	}
	return &Stride{base: base, lines: lines, stride: stride}, nil
}

// Name implements Generator.
func (s *Stride) Name() string { return fmt.Sprintf("stride-%d", s.stride) }

// Next implements Generator.
func (s *Stride) Next() uint64 {
	a := s.base + s.pos + s.offset
	s.pos += s.stride
	if s.pos >= s.lines {
		s.pos = 0
		s.offset++
		if s.offset == s.stride {
			s.offset = 0
		}
	}
	return a
}

// InBurst implements Generator: strided walks are prefetchable.
func (s *Stride) InBurst() bool { return true }

// Random accesses uniform-random lines within the footprint.
type Random struct {
	base  uint64
	lines uint64
	rng   *rng.Xoshiro256
}

// NewRandom builds the random microkernel over [base, base+lines).
func NewRandom(base, lines uint64, seed uint64) (*Random, error) {
	if lines == 0 {
		return nil, fmt.Errorf("workload: Random with zero lines")
	}
	return &Random{base: base, lines: lines, rng: rng.NewXoshiro256(seed)}, nil
}

// Name implements Generator.
func (r *Random) Name() string { return "random" }

// Next implements Generator.
func (r *Random) Next() uint64 { return r.base + r.rng.Uint64n(r.lines) }

// InBurst implements Generator: random accesses are independent, so a real
// core still overlaps them through its MSHRs.
func (r *Random) InBurst() bool { return true }

// --- SPEC-calibrated synthetic workloads ---------------------------------------

// SpecParams calibrates one synthetic SPEC CPU2017 stand-in.
type SpecParams struct {
	Name string
	// MPKI is the LLC misses per kilo-instruction (Table 2).
	MPKI float64
	// Pages is the 4 KB-page footprint touched during a refresh window.
	Pages int
	// Mixture weights; they need not sum to one (they are normalized).
	WStream float64 // sequential streaming over the footprint
	WStride float64 // page-strided walk (one line per page)
	WRandom float64 // uniform random line within the footprint
	WHot    float64 // Zipf-distributed accesses to the hot-page set
	// HotPages is the size of the hot set; ZipfS its skew.
	HotPages int
	ZipfS    float64
	// BurstLen is the mean run length of spatially-sequential misses
	// (geometrically distributed). Real LLC miss streams are bursty:
	// streaming and prefetch-friendly workloads miss many consecutive
	// lines in a row, pointer-chasing workloads do not. It controls the
	// row-buffer hit rate. Zero means 8.
	BurstLen float64
	// HotBurst is the mean run length within hot pages. Hot-page traffic
	// is typically pointer-y (hash tables, trees, metadata), so its runs
	// are much shorter than streaming runs — which is what makes hot pages
	// accumulate activations. Zero means max(1, BurstLen/4).
	HotBurst float64
	// MLP is the memory-level parallelism assumed for the core model.
	MLP float64
}

// Spec is a synthetic SPEC workload generator.
type Spec struct {
	p      SpecParams
	base   uint64 // base line address of this instance's footprint
	lines  uint64 // footprint in lines
	pageLn uint64 // lines per page (64)
	rng    *rng.Xoshiro256
	zipf   *rng.Zipf
	hotOff []uint64 // shuffled placement of hot pages within the footprint
	cw     [4]float64

	seqPos    uint64
	stridePos uint64
	strideOff uint64

	burstLen  float64
	hotBurst  float64
	burstLeft int
	burstComp int    // component of the current burst
	burstAddr uint64 // next line of the current burst (random/hot components)
	burstWrap uint64 // exclusive upper bound the burst wraps at
	burstBase uint64 // wrap base
}

// PageLines is the number of 64 B lines in a 4 KB page.
const PageLines = 64

// NewSpec builds a synthetic SPEC workload instance with its footprint based
// at line address base.
func NewSpec(p SpecParams, base uint64, seed uint64) (*Spec, error) {
	if p.Pages <= 0 {
		return nil, fmt.Errorf("workload: %s has no footprint", p.Name)
	}
	r := rng.NewXoshiro256(seed)
	s := &Spec{
		p:      p,
		base:   base,
		lines:  uint64(p.Pages) * PageLines,
		pageLn: PageLines,
		rng:    r,
	}
	s.burstLen = p.BurstLen
	if s.burstLen <= 0 {
		s.burstLen = 8
	}
	s.hotBurst = p.HotBurst
	if s.hotBurst <= 0 {
		s.hotBurst = s.burstLen / 4
	}
	if s.hotBurst < 1 {
		s.hotBurst = 1
	}
	if p.WStream+p.WStride+p.WRandom+p.WHot <= 0 {
		s.p.WRandom = 1
	}
	// The mixture weights are ACCESS shares, but a component is drawn per
	// BURST; divide each weight by its component's mean burst length so the
	// resulting access distribution matches the configured shares.
	w := [4]float64{
		s.p.WStream / s.burstLen,
		s.p.WStride / max(1, s.burstLen/2),
		s.p.WRandom / s.burstLen,
		s.p.WHot / s.hotBurst,
	}
	total := w[0] + w[1] + w[2] + w[3]
	s.cw[0] = w[0] / total
	s.cw[1] = s.cw[0] + w[1]/total
	s.cw[2] = s.cw[1] + w[2]/total
	s.cw[3] = 1
	if p.WHot > 0 {
		hp := p.HotPages
		if hp <= 0 {
			hp = 1
		}
		if hp > p.Pages {
			hp = p.Pages
		}
		zs := p.ZipfS
		if zs <= 0 {
			zs = 0.6
		}
		s.zipf = rng.NewZipf(r, hp, zs)
		// Scatter the hot pages across the footprint so hot rows are not
		// artificially adjacent.
		s.hotOff = make([]uint64, hp)
		for i := range s.hotOff {
			s.hotOff[i] = uint64(r.Intn(p.Pages))
		}
	}
	return s, nil
}

// Name implements Generator.
func (s *Spec) Name() string { return s.p.Name }

// Params returns the calibration parameters.
func (s *Spec) Params() SpecParams { return s.p }

// Next implements Generator. Misses arrive in spatially-sequential bursts:
// a component is drawn per burst, and the burst then walks consecutive
// lines (within the page for the hot component), which is what gives the
// baseline mapping its row-buffer hits.
func (s *Spec) Next() uint64 {
	if s.burstLeft <= 0 {
		s.newBurst()
	}
	s.burstLeft--
	switch s.burstComp {
	case 0: // stream
		a := s.base + s.seqPos
		s.seqPos++
		if s.seqPos == s.lines {
			s.seqPos = 0
		}
		return a
	case 1: // page stride: one line per page, every access a new page
		a := s.base + s.stridePos + s.strideOff
		s.stridePos += s.pageLn
		if s.stridePos >= s.lines {
			s.stridePos = 0
			s.strideOff++
			if s.strideOff == s.pageLn {
				s.strideOff = 0
			}
		}
		return a
	default: // random or hot: sequential within the burst window
		a := s.burstAddr
		s.burstAddr++
		if s.burstAddr >= s.burstWrap {
			s.burstAddr = s.burstBase
		}
		return a
	}
}

// newBurst draws the next burst's component, length, and start address.
func (s *Spec) newBurst() {
	u := s.rng.Float64()
	n := s.rng.Geometric(s.burstLen)
	switch {
	case u < s.cw[0]:
		s.burstComp = 0
	case u < s.cw[1]:
		s.burstComp = 1
		n = s.rng.Geometric(s.burstLen / 2) // strided runs are shorter
	case u < s.cw[2]:
		s.burstComp = 2
		start := s.rng.Uint64n(s.lines)
		s.burstAddr = s.base + start
		s.burstBase = s.base
		s.burstWrap = s.base + s.lines
	default:
		s.burstComp = 3
		n = s.rng.Geometric(s.hotBurst)
		page := s.hotOff[s.zipf.Next()]
		pb := s.base + page*s.pageLn
		s.burstAddr = pb + s.rng.Uint64n(s.pageLn)
		s.burstBase = pb
		s.burstWrap = pb + s.pageLn
		if n > int(s.pageLn) {
			n = int(s.pageLn)
		}
	}
	s.burstLeft = n
}

// InBurst implements Generator: accesses within one spatial burst overlap
// in the core's MSHRs; burst boundaries serialize.
func (s *Spec) InBurst() bool { return s.burstLeft > 0 }

// --- STREAM suite ---------------------------------------------------------------

// StreamKernel identifies one of McCalpin's STREAM kernels.
type StreamKernel int

// The four STREAM kernels.
const (
	StreamCopy  StreamKernel = iota // c[i] = a[i]
	StreamScale                     // b[i] = k*c[i]
	StreamAdd                       // c[i] = a[i] + b[i]
	StreamTriad                     // a[i] = b[i] + k*c[i]
)

func (k StreamKernel) String() string {
	switch k {
	case StreamCopy:
		return "copy"
	case StreamScale:
		return "scale"
	case StreamAdd:
		return "add"
	case StreamTriad:
		return "triad"
	}
	return "unknown"
}

// arrays reports how many arrays the kernel touches per element.
func (k StreamKernel) arrays() int {
	if k == StreamAdd || k == StreamTriad {
		return 3
	}
	return 2
}

// StreamSuite generates the interleaved array accesses of a STREAM kernel
// over arrays of the given size (§5.13 uses 1 GiB arrays).
type StreamSuite struct {
	kernel     StreamKernel
	base       uint64
	lines      uint64 // lines per array
	blockStart uint64
	inBlock    uint64
	phase      int
}

// NewStreamSuite builds the generator. arrayBytes is the per-array size.
func NewStreamSuite(kernel StreamKernel, base uint64, arrayBytes uint64) (*StreamSuite, error) {
	lines := arrayBytes / 64
	if lines == 0 {
		return nil, fmt.Errorf("workload: STREAM array of %d bytes holds no cache line", arrayBytes)
	}
	return &StreamSuite{kernel: kernel, base: base, lines: lines}, nil
}

// Name implements Generator.
func (s *StreamSuite) Name() string { return "stream-" + s.kernel.String() }

// streamBlock is the number of consecutive lines missed per array before
// switching to the next array: hardware prefetchers and the vectorized loop
// make STREAM's miss trace arrive in line-sequential runs.
const streamBlock = 8

// Next implements Generator: round-robin blocks of consecutive lines across
// the kernel's arrays.
func (s *StreamSuite) Next() uint64 {
	a := s.base + uint64(s.phase)*s.lines + s.blockStart + s.inBlock
	s.inBlock++
	if s.inBlock == streamBlock {
		s.inBlock = 0
		s.phase++
		if s.phase == s.kernel.arrays() {
			s.phase = 0
			s.blockStart += streamBlock
			if s.blockStart >= s.lines {
				s.blockStart = 0
			}
		}
	}
	return a
}

// InBurst implements Generator: STREAM is fully prefetchable.
func (s *StreamSuite) InBurst() bool { return true }

// StreamMPKI is the paper's characterization of STREAM: "LLC MPKI of more
// than 50".
const StreamMPKI = 55.0

// --- Attack patterns --------------------------------------------------------------

// RowResolver translates a global row index and slot into the program line
// address that reaches it — the attacker's knowledge of the memory mapping.
// mapping.Inverter composed with the geometry provides it; the sim package
// wires this up.
type RowResolver func(globalRow uint64, slot int) uint64

// Attack hammers a set of aggressor rows in round-robin, the access pattern
// of single-sided (1 row), double-sided (2 rows around a victim) and
// many-sided attacks. Accesses alternate lines within each aggressor row to
// defeat naive line-level caching; every access targets a closed row, so
// each is an activation.
type Attack struct {
	name    string
	rows    []uint64
	resolve RowResolver
	i       int
	slot    int
}

// NewAttack builds an attack on the given aggressor global rows.
func NewAttack(name string, rows []uint64, resolve RowResolver) (*Attack, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: attack %q with no aggressor rows", name)
	}
	return &Attack{name: name, rows: rows, resolve: resolve}, nil
}

// Name implements Generator.
func (a *Attack) Name() string { return a.name }

// Next implements Generator.
func (a *Attack) Next() uint64 {
	r := a.rows[a.i]
	addr := a.resolve(r, a.slot)
	a.i++
	if a.i == len(a.rows) {
		a.i = 0
		a.slot = (a.slot + 1) % 8
	}
	return addr
}

// InBurst implements Generator: hammering loops chain accesses with fences
// and flushes, so they do not overlap.
func (a *Attack) InBurst() bool { return false }
