package workload

import "testing"

// must unwraps constructor results; tests treat construction failure as a
// fatal setup bug.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestStreamSequentialWraps(t *testing.T) {
	s := must(NewStream(100, 4))
	want := []uint64{100, 101, 102, 103, 100, 101}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("access %d = %d, want %d", i, got, w)
		}
	}
	if !s.InBurst() {
		t.Fatal("stream is always prefetchable")
	}
}

func TestStrideVisitsOneLinePerStride(t *testing.T) {
	// Stride 64 over 256 lines: pages at 0, 64, 128, 192, then offset 1.
	s := must(NewStride(0, 256, 64))
	want := []uint64{0, 64, 128, 192, 1, 65}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("access %d = %d, want %d", i, got, w)
		}
	}
}

func TestStrideCoversAllLines(t *testing.T) {
	s := must(NewStride(0, 64, 8))
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		seen[s.Next()]++
	}
	if len(seen) != 64 {
		t.Fatalf("one full cycle visited %d/64 lines", len(seen))
	}
}

func TestRandomStaysInFootprint(t *testing.T) {
	r := must(NewRandom(1000, 50, 1))
	for i := 0; i < 10000; i++ {
		a := r.Next()
		if a < 1000 || a >= 1050 {
			t.Fatalf("address %d outside [1000, 1050)", a)
		}
	}
}

func TestSpecFootprintBounds(t *testing.T) {
	p, err := SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g := must(NewSpec(p, 1<<20, 7))
	lines := uint64(p.Pages) * PageLines
	for i := 0; i < 200000; i++ {
		a := g.Next()
		if a < 1<<20 || a >= 1<<20+lines {
			t.Fatalf("gcc access %#x escaped its footprint", a)
		}
	}
}

func TestSpecAccessSharesMatchWeights(t *testing.T) {
	// With burst-length weighting, the share of accesses landing in the
	// hot set should approximate WHot.
	p := SpecParams{
		Name: "synthetic", MPKI: 1, Pages: 1000,
		WStream: 0.25, WRandom: 0.25, WHot: 0.50,
		HotPages: 100, ZipfS: 0.3, BurstLen: 16, HotBurst: 1, MLP: 4,
	}
	g := must(NewSpec(p, 0, 3))
	hotPages := map[uint64]bool{}
	for _, off := range g.hotOff {
		hotPages[off] = true
	}
	inHot := 0
	const draws = 300000
	for i := 0; i < draws; i++ {
		page := g.Next() / PageLines
		if hotPages[page] {
			inHot++
		}
	}
	share := float64(inHot) / draws
	// Hot pages also receive a sliver of stream/random traffic (100/1000
	// pages ≈ +5% of the other half), so expect ~0.52-0.58.
	if share < 0.45 || share > 0.68 {
		t.Fatalf("hot-set access share %.2f, want ~0.55", share)
	}
}

func TestSpecBurstsAreSequential(t *testing.T) {
	p := SpecParams{Name: "x", MPKI: 1, Pages: 100, WRandom: 1, BurstLen: 8, MLP: 4}
	g := must(NewSpec(p, 0, 5))
	prev := g.Next()
	seqSteps, total := 0, 0
	for i := 0; i < 10000; i++ {
		inBurst := g.InBurst()
		a := g.Next()
		if inBurst {
			total++
			if a == prev+1 || (a == 0 && prev != 0) { // sequential modulo wrap
				seqSteps++
			}
		}
		prev = a
	}
	if total == 0 {
		t.Fatal("no in-burst accesses seen")
	}
	if frac := float64(seqSteps) / float64(total); frac < 0.95 {
		t.Fatalf("only %.2f of in-burst steps were sequential", frac)
	}
}

func TestSpecDeterminism(t *testing.T) {
	p, _ := SpecByName("mcf")
	a := must(NewSpec(p, 0, 42))
	b := must(NewSpec(p, 0, 42))
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must replay identically")
		}
	}
}

func TestSpecTableComplete(t *testing.T) {
	table := SpecTable()
	if len(table) != 18 {
		t.Fatalf("SPEC table has %d workloads, want the paper's 18", len(table))
	}
	seen := map[string]bool{}
	for _, p := range table {
		if p.Pages <= 0 || p.MPKI <= 0 {
			t.Errorf("%s: non-positive footprint or MPKI", p.Name)
		}
		if p.MLP < 1 {
			t.Errorf("%s: MLP %v < 1", p.Name, p.MLP)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
	}
	if _, err := SpecByName("lbm"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMixTableValid(t *testing.T) {
	for i, mix := range MixTable() {
		for _, name := range mix {
			if _, err := SpecByName(name); err != nil {
				t.Errorf("mix%d references unknown workload %s", i+1, name)
			}
		}
	}
	if len(MixNames()) != 16 {
		t.Fatal("want 16 mixes")
	}
}

func TestStreamSuiteKernels(t *testing.T) {
	for k := StreamCopy; k <= StreamTriad; k++ {
		s := must(NewStreamSuite(k, 0, 1<<20)) // 16K lines per array
		seen := map[uint64]bool{}
		arrays := k.arrays()
		for i := 0; i < 1000; i++ {
			a := s.Next()
			seen[a/(1<<20/64)] = true
			if a >= uint64(arrays)<<20/64 {
				t.Fatalf("%v accessed beyond its arrays", k)
			}
		}
		if len(seen) != arrays {
			t.Fatalf("%v touched %d arrays, want %d", k, len(seen), arrays)
		}
	}
}

func TestStreamSuiteBlocksAreSequential(t *testing.T) {
	s := must(NewStreamSuite(StreamCopy, 0, 1<<20))
	// First streamBlock accesses hit array 0 sequentially.
	for i := uint64(0); i < streamBlock; i++ {
		if got := s.Next(); got != i {
			t.Fatalf("block access %d = %d", i, got)
		}
	}
	// Next streamBlock hit array 1 at the same offsets.
	arrLines := uint64(1 << 20 / 64)
	for i := uint64(0); i < streamBlock; i++ {
		if got := s.Next(); got != arrLines+i {
			t.Fatalf("array-1 block access %d = %d", i, got)
		}
	}
}

func TestAttackRoundRobinsAggressors(t *testing.T) {
	resolve := func(row uint64, slot int) uint64 { return row*128 + uint64(slot) }
	a := must(NewAttack("double-sided", []uint64{10, 20}, resolve))
	r1 := a.Next() / 128
	r2 := a.Next() / 128
	r3 := a.Next() / 128
	if r1 != 10 || r2 != 20 || r3 != 10 {
		t.Fatalf("rows = %d,%d,%d; want 10,20,10", r1, r2, r3)
	}
	if a.InBurst() {
		t.Fatal("hammering accesses must not overlap")
	}
}

func TestProfileGeneratorsImplementInterface(t *testing.T) {
	var _ Generator = (*Stream)(nil)
	var _ Generator = (*Stride)(nil)
	var _ Generator = (*Random)(nil)
	var _ Generator = (*Spec)(nil)
	var _ Generator = (*StreamSuite)(nil)
	var _ Generator = (*Attack)(nil)
}

func TestHotBurstDefaults(t *testing.T) {
	p := SpecParams{Name: "x", MPKI: 1, Pages: 10, WHot: 1, HotPages: 5, BurstLen: 16, MLP: 1}
	g := must(NewSpec(p, 0, 1))
	if g.hotBurst != 4 {
		t.Fatalf("hot burst default = %v, want BurstLen/4", g.hotBurst)
	}
	p.BurstLen = 2
	g2 := must(NewSpec(p, 0, 1))
	if g2.hotBurst != 1 {
		t.Fatalf("hot burst floor = %v, want 1", g2.hotBurst)
	}
}

func TestZipfHeadGetsMoreTraffic(t *testing.T) {
	p := SpecParams{
		Name: "x", MPKI: 1, Pages: 1000, WHot: 1,
		HotPages: 50, ZipfS: 0.8, BurstLen: 4, HotBurst: 1, MLP: 1,
	}
	g := must(NewSpec(p, 0, 9))
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[g.Next()/PageLines]++
	}
	head := counts[g.hotOff[0]]
	tail := counts[g.hotOff[len(g.hotOff)-1]]
	if head <= tail {
		t.Fatalf("zipf head (%d) should beat tail (%d)", head, tail)
	}
}

func TestConstructorsRejectEmptyFootprints(t *testing.T) {
	if _, err := NewStream(0, 0); err == nil {
		t.Error("NewStream accepted zero lines")
	}
	if _, err := NewStride(0, 0, 8); err == nil {
		t.Error("NewStride accepted zero lines")
	}
	if _, err := NewStride(0, 64, 0); err == nil {
		t.Error("NewStride accepted zero stride")
	}
	if _, err := NewRandom(0, 0, 1); err == nil {
		t.Error("NewRandom accepted zero lines")
	}
	if _, err := NewSpec(SpecParams{Name: "empty"}, 0, 1); err == nil {
		t.Error("NewSpec accepted an empty footprint")
	}
	if _, err := NewStreamSuite(StreamCopy, 0, 63); err == nil {
		t.Error("NewStreamSuite accepted a sub-line array")
	}
	if _, err := NewAttack("x", nil, nil); err == nil {
		t.Error("NewAttack accepted zero aggressors")
	}
}
