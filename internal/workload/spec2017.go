// SPEC CPU2017 synthetic stand-ins, calibrated to the paper's Table 2
// (MPKI, unique rows activated per 64 ms window, hot-row counts). The
// mixture weights and footprints below were fit empirically against the
// simulator's baseline (Coffee Lake mapping, unprotected) so that the
// workload suite reproduces the published workload characteristics; see
// EXPERIMENTS.md for the paper-vs-measured comparison.

package workload

import "fmt"

// SpecTable returns the calibration parameters for the 18 SPEC CPU2017 rate
// workloads of Table 2, in the paper's order (descending MPKI).
func SpecTable() []SpecParams {
	return []SpecParams{
		// Heavy, hot-row-forming workloads.
		{Name: "blender", BurstLen: 32, HotBurst: 8, MPKI: 12.78, Pages: 4400, WStream: 0.30, WStride: 0.03, WRandom: 0.65, WHot: 0.02, HotPages: 4000, ZipfS: 0.08, MLP: 4},
		{Name: "lbm", BurstLen: 10, HotBurst: 3, MPKI: 20.87, Pages: 14700, WStream: 0.30, WStride: 0.25, WRandom: 0.10, WHot: 0.35, HotPages: 14700, ZipfS: 0.05, MLP: 6},
		{Name: "gcc", BurstLen: 6, MPKI: 6.12, Pages: 5200, WStream: 0.25, WStride: 0.25, WRandom: 0.35, WHot: 0.06, HotPages: 160, ZipfS: 0.30, MLP: 4},
		{Name: "cactuBSSN", BurstLen: 8, MPKI: 2.57, Pages: 2600, WStream: 0.25, WStride: 0.25, WRandom: 0.10, WHot: 0.40, HotPages: 2600, ZipfS: 0.15, MLP: 6},
		{Name: "mcf", BurstLen: 6, HotBurst: 3, MPKI: 5.81, Pages: 2450, WStream: 0.10, WStride: 0.10, WRandom: 0.30, WHot: 0.50, HotPages: 2450, ZipfS: 0.15, MLP: 2},
		{Name: "roms", BurstLen: 18, MPKI: 3.33, Pages: 13950, WStream: 0.30, WStride: 0.10, WRandom: 0.10, WHot: 0.50, HotPages: 1650, HotBurst: 2, ZipfS: 0.25, MLP: 6},
		// Moderate workloads with small hot sets.
		{Name: "perlbench", BurstLen: 6, MPKI: 0.71, Pages: 5700, WStream: 0.15, WStride: 0.05, WRandom: 0.35, WHot: 0.45, HotPages: 425, HotBurst: 1, ZipfS: 0.30, MLP: 3},
		{Name: "xz", BurstLen: 6, MPKI: 0.40, Pages: 5400, WStream: 0.15, WStride: 0.10, WRandom: 0.45, WHot: 0.30, HotPages: 124, HotBurst: 1, ZipfS: 0.25, MLP: 3},
		{Name: "nab", BurstLen: 12, MPKI: 0.53, Pages: 2200, WStream: 0.25, WStride: 0.10, WRandom: 0.55, WHot: 0.10, HotPages: 47, HotBurst: 2, ZipfS: 0.40, MLP: 4},
		{Name: "namd", BurstLen: 12, MPKI: 0.37, Pages: 1700, WStream: 0.25, WStride: 0.10, WRandom: 0.57, WHot: 0.08, HotPages: 26, HotBurst: 2, ZipfS: 0.40, MLP: 4},
		{Name: "imagick", BurstLen: 12, MPKI: 0.13, Pages: 550, WStream: 0.35, WStride: 0.05, WRandom: 0.30, WHot: 0.30, HotPages: 22, HotBurst: 2, ZipfS: 0.40, MLP: 4},
		// Light workloads: almost no hot rows.
		{Name: "bwaves", BurstLen: 24, MPKI: 0.21, Pages: 850, WStream: 0.50, WStride: 0.10, WRandom: 0.35, WHot: 0.05, HotPages: 5, HotBurst: 2, ZipfS: 0.40, MLP: 6},
		{Name: "wrf", BurstLen: 12, MPKI: 0.02, Pages: 352, WStream: 0.30, WStride: 0.10, WRandom: 0.15, WHot: 0.45, HotPages: 5, HotBurst: 2, ZipfS: 0.30, MLP: 4},
		{Name: "exchange2", BurstLen: 2, MPKI: 0.01, Pages: 64, WStream: 0.20, WStride: 0.10, WRandom: 0.40, WHot: 0.30, HotPages: 4, HotBurst: 1, ZipfS: 0.50, MLP: 2},
		{Name: "deepsjeng", BurstLen: 1, MPKI: 0.25, Pages: 34050, WStream: 0.00, WStride: 0.10, WRandom: 0.88, WHot: 0.02, HotPages: 4, ZipfS: 0.40, MLP: 2},
		{Name: "povray", BurstLen: 2, MPKI: 0.01, Pages: 196, WStream: 0.25, WStride: 0.05, WRandom: 0.40, WHot: 0.30, HotPages: 2, ZipfS: 0.50, MLP: 2},
		{Name: "parest", BurstLen: 8, MPKI: 0.10, Pages: 1200, WStream: 0.40, WStride: 0.10, WRandom: 0.49, WHot: 0.02, HotPages: 1, HotBurst: 2, ZipfS: 0.40, MLP: 4},
		{Name: "leela", BurstLen: 1, MPKI: 0.02, Pages: 440, WStream: 0.00, WStride: 0.10, WRandom: 0.90, WHot: 0.00, MLP: 2},
	}
}

// SpecByName looks up a workload's calibration parameters.
func SpecByName(name string) (SpecParams, error) {
	for _, p := range SpecTable() {
		if p.Name == name {
			return p, nil
		}
	}
	return SpecParams{}, fmt.Errorf("workload: unknown SPEC workload %q", name)
}

// SpecNames returns the workload names in table order.
func SpecNames() []string {
	t := SpecTable()
	names := make([]string, len(t))
	for i, p := range t {
		names[i] = p.Name
	}
	return names
}

// MixTable returns the 16 four-workload mixes. The paper draws each mix as
// four random SPEC2017 workloads; this table was drawn once with a fixed
// seed and is frozen here for reproducibility.
func MixTable() [16][4]string {
	return [16][4]string{
		{"blender", "mcf", "xz", "parest"},
		{"lbm", "perlbench", "namd", "leela"},
		{"gcc", "cactuBSSN", "bwaves", "povray"},
		{"mcf", "roms", "deepsjeng", "wrf"},
		{"blender", "lbm", "imagick", "exchange2"},
		{"gcc", "mcf", "nab", "xz"},
		{"roms", "cactuBSSN", "perlbench", "leela"},
		{"lbm", "mcf", "parest", "povray"},
		{"blender", "gcc", "deepsjeng", "namd"},
		{"cactuBSSN", "xz", "bwaves", "wrf"},
		{"lbm", "roms", "nab", "imagick"},
		{"mcf", "perlbench", "exchange2", "leela"},
		{"blender", "cactuBSSN", "xz", "deepsjeng"},
		{"gcc", "roms", "namd", "parest"},
		{"lbm", "gcc", "povray", "bwaves"},
		{"blender", "roms", "mcf", "nab"},
	}
}

// MixNames returns "mix1" .. "mix16".
func MixNames() []string {
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("mix%d", i+1)
	}
	return names
}
