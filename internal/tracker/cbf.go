// Counting Bloom filter tracker — the structure the real BlockHammer
// (Yağlıkçı et al., HPCA 2021) uses to blacklist rapidly-activated rows
// with a few KB of SRAM instead of one counter per row. The paper's
// evaluation idealizes BlockHammer's tracker as per-row counters; this CBF
// implementation lets tracking-fidelity studies quantify what the
// idealization hides (false-positive throttling of innocent rows).

package tracker

import (
	"rubix/internal/metrics"
	"rubix/internal/rng"
)

// CBF is a counting Bloom filter over row addresses. Like any Bloom
// structure it never under-counts a row (no false negatives — the security
// property), but hash collisions can over-count (false positives — an
// innocent row may be reported).
type CBF struct {
	threshold uint32
	counters  []uint32
	mask      uint64
	seeds     []uint64
	reports   uint64

	mLookups *metrics.Counter
	mReports *metrics.Counter
}

// CBFConfig configures NewCBF.
type CBFConfig struct {
	// Threshold is the report threshold (typically T_RH/2).
	Threshold int
	// Counters is the filter size (power of two; 0 = 32768, BlockHammer's
	// dual-filter scale).
	Counters int
	// Hashes is the number of hash functions (0 = 4).
	Hashes int
	// Seed diversifies the hash functions.
	Seed uint64
}

// NewCBF builds a counting-Bloom-filter tracker.
func NewCBF(cfg CBFConfig) *CBF {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.Counters == 0 {
		cfg.Counters = 32768
	}
	if cfg.Counters < 2 || cfg.Counters&(cfg.Counters-1) != 0 {
		cfg.Counters = 32768
	}
	if cfg.Hashes == 0 {
		cfg.Hashes = 4
	}
	sm := rng.NewSplitMix64(cfg.Seed ^ 0xCBF)
	seeds := make([]uint64, cfg.Hashes)
	for i := range seeds {
		seeds[i] = sm.Next()
	}
	return &CBF{
		threshold: uint32(cfg.Threshold),
		counters:  make([]uint32, cfg.Counters),
		mask:      uint64(cfg.Counters) - 1,
		seeds:     seeds,
	}
}

// Name implements Tracker.
func (c *CBF) Name() string { return "CountingBloomFilter" }

// SetMetrics implements metrics.Settable.
func (c *CBF) SetMetrics(r *metrics.Recorder) {
	c.mLookups = r.Counter("tracker_lookups")
	c.mReports = r.Counter("tracker_reports")
}

// Estimate returns the filter's activation estimate for a row: the minimum
// over its hash positions — an upper bound on the true count.
func (c *CBF) Estimate(row uint64) uint32 {
	min := uint32(1<<31 - 1)
	for _, s := range c.seeds {
		v := c.counters[rng.Mix64(row^s)&c.mask]
		if v < min {
			min = v
		}
	}
	return min
}

// RecordACT implements Tracker: increment all hash positions; report when
// the minimum reaches the threshold. Reporting clears the row's positions
// down to zero, which may under-reset colliding rows — conservative in the
// safe direction (they will be reported sooner, never later).
func (c *CBF) RecordACT(row uint64) bool {
	c.mLookups.Inc()
	min := uint32(1<<31 - 1)
	for _, s := range c.seeds {
		idx := rng.Mix64(row^s) & c.mask
		c.counters[idx]++
		if c.counters[idx] < min {
			min = c.counters[idx]
		}
	}
	if min >= c.threshold {
		for _, s := range c.seeds {
			c.counters[rng.Mix64(row^s)&c.mask] = 0
		}
		c.reports++
		c.mReports.Inc()
		return true
	}
	return false
}

// Count implements Counting: the filter's (over-)estimate.
func (c *CBF) Count(row uint64) uint32 { return c.Estimate(row) }

// Reset implements Tracker.
func (c *CBF) Reset() { clear(c.counters) }

// Reports returns the cumulative number of threshold reports.
func (c *CBF) Reports() uint64 { return c.reports }

// SizeBytes reports the filter's SRAM cost (2-byte counters suffice at the
// thresholds studied).
func (c *CBF) SizeBytes() int { return 2 * len(c.counters) }
