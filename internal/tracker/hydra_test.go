package tracker

import (
	"testing"

	"rubix/internal/rng"
)

func TestHydraDetectsAggressor(t *testing.T) {
	h := NewHydra(HydraConfig{Threshold: 64})
	reported := false
	for i := 0; i < 200 && !reported; i++ {
		reported = h.RecordACT(42)
	}
	if !reported {
		t.Fatal("Hydra missed a solo aggressor")
	}
}

func TestHydraNeverUnderCounts(t *testing.T) {
	// Security property: a row hammered N >= threshold times must be
	// reported, regardless of interleaved noise (group counters only
	// over-count).
	h := NewHydra(HydraConfig{Threshold: 64, GroupSize: 64})
	r := rng.NewXoshiro256(1)
	reported := false
	for i := 0; i < 64; i++ {
		if h.RecordACT(999_999) {
			reported = true
		}
		for j := 0; j < 8; j++ {
			if h.RecordACT(r.Uint64n(100_000)) && false {
				t.Log("noise reported (fine)")
			}
		}
	}
	if !reported {
		t.Fatal("aggressor with exactly threshold activations escaped")
	}
}

func TestHydraGroupGraduation(t *testing.T) {
	h := NewHydra(HydraConfig{Threshold: 100, GroupSize: 8, GroupThresholdFrac: 0.5})
	// 50 activations spread over the group warm it up (threshold 50).
	for i := 0; i < 50; i++ {
		h.RecordACT(uint64(i % 8))
	}
	if h.WarmGroups() != 1 {
		t.Fatalf("warm groups = %d, want 1", h.WarmGroups())
	}
	// Further activations go to per-row counters.
	h.RecordACT(3)
	if h.TrackedRows() != 1 {
		t.Fatalf("tracked rows = %d, want 1", h.TrackedRows())
	}
}

func TestHydraSeedsRowCountPessimistically(t *testing.T) {
	// After graduation, a row's counter starts at the group count, so it
	// reports EARLIER than an exact tracker would — never later.
	h := NewHydra(HydraConfig{Threshold: 64, GroupSize: 4, GroupThresholdFrac: 0.8})
	acts := 0
	reported := false
	for i := 0; i < 64 && !reported; i++ {
		reported = h.RecordACT(0)
		acts++
	}
	if !reported {
		t.Fatal("no report within threshold activations")
	}
	if acts > 64 {
		t.Fatalf("reported after %d > 64 activations", acts)
	}
}

func TestHydraReset(t *testing.T) {
	h := NewHydra(HydraConfig{Threshold: 16, GroupSize: 8})
	for i := 0; i < 15; i++ {
		h.RecordACT(5)
	}
	h.Reset()
	for i := 0; i < 15; i++ {
		if h.RecordACT(5) {
			t.Fatal("state survived Reset")
		}
	}
}

func TestHydraDefaults(t *testing.T) {
	h := NewHydra(HydraConfig{Threshold: 0, GroupSize: 100, GroupThresholdFrac: 5})
	if h.rowThreshold != 1 || h.groupShift != 7 {
		t.Fatalf("defaults not applied: threshold %d shift %d", h.rowThreshold, h.groupShift)
	}
}

func TestCBFNoFalseNegatives(t *testing.T) {
	// A hammered row must be reported within threshold activations even
	// amid noise: collisions only raise estimates.
	c := NewCBF(CBFConfig{Threshold: 64, Counters: 4096, Seed: 1})
	r := rng.NewXoshiro256(2)
	acts := 0
	reported := false
	for i := 0; i < 64 && !reported; i++ {
		reported = c.RecordACT(777)
		acts++
		for j := 0; j < 16; j++ {
			c.RecordACT(r.Uint64n(1 << 20))
		}
	}
	if !reported {
		t.Fatalf("aggressor not reported within %d activations", acts)
	}
}

func TestCBFEstimateUpperBounds(t *testing.T) {
	c := NewCBF(CBFConfig{Threshold: 1000, Counters: 1 << 16, Seed: 3})
	for i := 0; i < 37; i++ {
		c.RecordACT(12345)
	}
	if est := c.Estimate(12345); est < 37 {
		t.Fatalf("estimate %d under-counts true 37", est)
	}
}

func TestCBFFalsePositivesExist(t *testing.T) {
	// With a deliberately tiny filter, heavy traffic must cause innocent
	// rows to report — the cost the paper's idealized tracker hides.
	c := NewCBF(CBFConfig{Threshold: 64, Counters: 64, Hashes: 2, Seed: 4})
	r := rng.NewXoshiro256(5)
	reports := 0
	for i := 0; i < 50000; i++ {
		if c.RecordACT(r.Uint64n(1 << 30)) {
			reports++
		}
	}
	if reports == 0 {
		t.Fatal("a saturated tiny CBF should misreport")
	}
}

func TestCBFResetAndSize(t *testing.T) {
	c := NewCBF(CBFConfig{Threshold: 8, Counters: 1024, Seed: 6})
	for i := 0; i < 7; i++ {
		c.RecordACT(9)
	}
	c.Reset()
	if c.Estimate(9) != 0 {
		t.Fatal("counters survived Reset")
	}
	if c.SizeBytes() != 2048 {
		t.Fatalf("size = %d, want 2048", c.SizeBytes())
	}
}

func TestCBFReportClearsRow(t *testing.T) {
	c := NewCBF(CBFConfig{Threshold: 4, Counters: 1 << 14, Seed: 7})
	for i := 0; i < 3; i++ {
		if c.RecordACT(11) {
			t.Fatal("early report")
		}
	}
	if !c.RecordACT(11) {
		t.Fatal("no report at threshold")
	}
	if c.Estimate(11) != 0 {
		t.Fatal("row not cleared after report")
	}
}

func TestHybridTrackersImplementInterface(t *testing.T) {
	var _ Tracker = NewHydra(HydraConfig{Threshold: 4})
	var _ Tracker = NewCBF(CBFConfig{Threshold: 4})
}
