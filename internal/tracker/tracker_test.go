package tracker

import (
	"testing"

	"rubix/internal/rng"
)

func TestMisraGriesReportsAtThreshold(t *testing.T) {
	trk := NewMisraGries(4, 16)
	for i := 0; i < 3; i++ {
		if trk.RecordACT(7) {
			t.Fatalf("reported after %d activations, threshold is 4", i+1)
		}
	}
	if !trk.RecordACT(7) {
		t.Fatal("no report at threshold")
	}
	// Reporting resets the row's count.
	if trk.RecordACT(7) {
		t.Fatal("count should restart after a report")
	}
	if trk.Reports() != 1 {
		t.Fatalf("reports = %d, want 1", trk.Reports())
	}
}

func TestMisraGriesThresholdOne(t *testing.T) {
	trk := NewMisraGries(1, 4)
	if !trk.RecordACT(5) {
		t.Fatal("threshold 1 must report on first activation")
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	// The heavy-hitters guarantee: with capacity c, a row receiving more
	// than total/c activations cannot evade detection. Hammer one row amid
	// noise from many others and verify detection.
	const threshold = 64
	const capacity = 128
	trk := NewMisraGries(threshold, capacity)
	r := rng.NewXoshiro256(1)
	reported := false
	// Interleave: 1 aggressor ACT per 32 noise ACTs; noise spread over 10K
	// rows. Aggressor performs 3*threshold ACTs total.
	for i := 0; i < 3*threshold; i++ {
		if trk.RecordACT(424242) {
			reported = true
		}
		for j := 0; j < 32; j++ {
			trk.RecordACT(r.Uint64n(10000))
		}
	}
	if !reported {
		t.Fatal("Misra-Gries missed an aggressor with 3x threshold activations")
	}
}

func TestMisraGriesCapacityBounded(t *testing.T) {
	trk := NewMisraGries(1000, 8)
	r := rng.NewXoshiro256(2)
	for i := 0; i < 100000; i++ {
		trk.RecordACT(r.Uint64n(1 << 20))
		if trk.Entries() > 8 {
			t.Fatalf("entries = %d exceeds capacity 8", trk.Entries())
		}
	}
}

func TestMisraGriesReset(t *testing.T) {
	trk := NewMisraGries(4, 16)
	trk.RecordACT(1)
	trk.RecordACT(1)
	trk.RecordACT(1)
	trk.Reset()
	for i := 0; i < 3; i++ {
		if trk.RecordACT(1) {
			t.Fatal("count survived Reset")
		}
	}
}

func TestMisraGriesDecrementEviction(t *testing.T) {
	// Fill the table, then hammer new rows; old single-count entries must
	// decay away so the table keeps tracking.
	trk := NewMisraGries(100, 4)
	for row := uint64(0); row < 4; row++ {
		trk.RecordACT(row)
	}
	if trk.Entries() != 4 {
		t.Fatalf("entries = %d, want 4", trk.Entries())
	}
	// A burst of distinct rows decrements everyone to the floor.
	for row := uint64(100); row < 108; row++ {
		trk.RecordACT(row)
	}
	if trk.Entries() >= 4 {
		t.Fatalf("stale entries (%d) not evicted by decrement-all", trk.Entries())
	}
}

func TestPerRowExact(t *testing.T) {
	trk := NewPerRow(3, 100)
	if trk.RecordACT(42) || trk.RecordACT(42) {
		t.Fatal("reported before threshold")
	}
	if trk.Count(42) != 2 {
		t.Fatalf("count = %d, want 2", trk.Count(42))
	}
	if !trk.RecordACT(42) {
		t.Fatal("no report at threshold 3")
	}
	if trk.Count(42) != 0 {
		t.Fatal("count should reset after report")
	}
	if trk.Count(43) != 0 {
		t.Fatal("untouched row should count 0")
	}
}

func TestPerRowResetIsO1AndComplete(t *testing.T) {
	trk := NewPerRow(1000, 1000)
	for row := uint64(0); row < 1000; row++ {
		trk.RecordACT(row)
		trk.RecordACT(row)
	}
	trk.Reset()
	for row := uint64(0); row < 1000; row++ {
		if trk.Count(row) != 0 {
			t.Fatalf("row %d count survived Reset", row)
		}
	}
	// Epoch stamping: counts work again after reset.
	trk.RecordACT(5)
	if trk.Count(5) != 1 {
		t.Fatal("count broken after Reset")
	}
}

func TestPerRowIndependentRows(t *testing.T) {
	trk := NewPerRow(10, 64)
	for i := 0; i < 9; i++ {
		trk.RecordACT(1)
	}
	trk.RecordACT(2)
	if trk.Count(1) != 9 || trk.Count(2) != 1 {
		t.Fatalf("cross-row interference: %d, %d", trk.Count(1), trk.Count(2))
	}
}

// densePerRow is the retired dense-array PerRow, kept as the differential
// oracle for the open-addressed table: one stamped counter per row, exact
// by construction.
type densePerRow struct {
	threshold uint32
	epoch     uint32
	stamped   []uint32
	counts    []uint32
}

func newDensePerRow(threshold int, totalRows uint64) *densePerRow {
	return &densePerRow{
		threshold: uint32(threshold),
		epoch:     1,
		stamped:   make([]uint32, totalRows),
		counts:    make([]uint32, totalRows),
	}
}

func (t *densePerRow) recordACT(row uint64) bool {
	if t.stamped[row] != t.epoch {
		t.stamped[row] = t.epoch
		t.counts[row] = 0
	}
	t.counts[row]++
	if t.counts[row] >= t.threshold {
		t.counts[row] = 0
		return true
	}
	return false
}

func (t *densePerRow) count(row uint64) uint32 {
	if t.stamped[row] != t.epoch {
		return 0
	}
	return t.counts[row]
}

func (t *densePerRow) reset() { t.epoch++ }

// TestPerRowDifferentialVsDense drives the flat table and the dense oracle
// with an identical skewed stream — enough distinct rows to force several
// table growths — and demands identical reports, counts, and window-reset
// behavior.
func TestPerRowDifferentialVsDense(t *testing.T) {
	const totalRows = 1 << 16
	flat := NewPerRow(5, totalRows)
	dense := newDensePerRow(5, totalRows)
	r := rng.NewXoshiro256(99)
	for win := 0; win < 4; win++ {
		for i := 0; i < 60_000; i++ {
			var row uint64
			if i%3 == 0 {
				row = r.Uint64n(64) // hot set: drives threshold reports
			} else {
				row = r.Uint64n(totalRows)
			}
			if got, want := flat.RecordACT(row), dense.recordACT(row); got != want {
				t.Fatalf("win %d event %d row %d: flat reported %v, dense %v", win, i, row, got, want)
			}
			if i%97 == 0 {
				probe := r.Uint64n(totalRows)
				if got, want := flat.Count(probe), dense.count(probe); got != want {
					t.Fatalf("win %d event %d: Count(%d) = %d, dense %d", win, i, probe, got, want)
				}
			}
		}
		flat.Reset()
		dense.reset()
	}
}

// TestPerRowGrowthPreservesCounts fills past several load-factor doublings
// within one window and checks every count survived the rehashes.
func TestPerRowGrowthPreservesCounts(t *testing.T) {
	trk := NewPerRow(1<<30, 1<<20)
	const n = 10_000 // >> perRowInitSlots
	for row := uint64(0); row < n; row++ {
		for k := uint64(0); k <= row%3; k++ {
			trk.RecordACT(row)
		}
	}
	for row := uint64(0); row < n; row++ {
		if got, want := trk.Count(row), uint32(row%3+1); got != want {
			t.Fatalf("row %d count = %d, want %d", row, got, want)
		}
	}
}

func TestPerRowSteadyStateAllocFree(t *testing.T) {
	trk := NewPerRow(1<<30, 1<<20)
	for row := uint64(0); row < 4096; row++ {
		trk.RecordACT(row)
	}
	row := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		trk.RecordACT(row & 4095)
		row++
	}); allocs != 0 {
		t.Fatalf("RecordACT allocates %.1f objects per call on warmed table, want 0", allocs)
	}
}

func TestTrackerInterfaceCompliance(t *testing.T) {
	for _, trk := range []Tracker{NewMisraGries(4, 4), NewPerRow(4, 16)} {
		if trk.Name() == "" {
			t.Error("empty tracker name")
		}
		trk.RecordACT(0)
		trk.Reset()
	}
}
