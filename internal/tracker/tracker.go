// Package tracker implements DRAM activation trackers: the components that
// watch per-row activation counts and flag rows that reach a mitigation
// threshold within the refresh window.
//
// Two trackers are provided, matching the paper's methodology (§3.1):
//
//   - MisraGries: the space-efficient heavy-hitters tracker used by AQUA and
//     SRS. With capacity c it guarantees that any row with more than
//     (ACTs in window)/c activations is tracked, so sizing c = window
//     activation budget / threshold gives guaranteed detection.
//
//   - PerRow: the idealized SRAM tracker used for BlockHammer — one counter
//     per row in memory, exact by construction.
//
// Trackers count *activations* (ACT commands), not accesses: row-buffer hits
// do not disturb neighbouring rows. Counts reset every refresh window
// (64 ms), which is why mitigations use a tracker threshold of T_RH/2.
package tracker

import "rubix/internal/metrics"

// Tracker watches row activations and reports rows reaching a threshold.
type Tracker interface {
	// Name identifies the tracker in reports.
	Name() string
	// RecordACT registers one activation of the given global row and
	// reports whether the row has reached the mitigation threshold. When it
	// returns true the tracker also resets its count for that row (the
	// mitigation is assumed to neutralize the row's history).
	RecordACT(row uint64) bool
	// Reset clears all counts; called at every refresh-window boundary.
	Reset()
}

// Counting is a Tracker that can also report its current in-window count
// (or a safe over-estimate) for a row — what rate-control schemes like
// BlockHammer consult for their blacklist decision. PerRow is exact; CBF
// over-estimates (never under), which preserves the security property at
// the cost of false-positive throttling.
type Counting interface {
	Tracker
	Count(row uint64) uint32
}

// --- Misra-Gries -------------------------------------------------------------

// MisraGries is a heavy-hitters activation tracker with a bounded number of
// entries. The classic decrement-all step is implemented with a global
// floor so each operation is O(1) amortized.
type MisraGries struct {
	threshold uint32
	capacity  int
	floor     uint32
	counts    map[uint64]uint32 // stored as true count; entry live iff count > floor
	reports   uint64

	mLookups   *metrics.Counter
	mReports   *metrics.Counter
	mEvictions *metrics.Counter
}

// NewMisraGries builds a tracker that reports a row when it accumulates
// threshold activations, using at most capacity concurrent entries.
// threshold must be >= 1 and capacity >= 1.
func NewMisraGries(threshold int, capacity int) *MisraGries {
	if threshold < 1 {
		threshold = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	// The capacity is a logical entry bound, not a storage commitment: a
	// low-threshold tracker may be entitled to millions of entries yet hold
	// a few thousand for its whole life. Cap the pre-size hint and let the
	// map grow to workloads that actually need it.
	hint := capacity
	if hint > 1<<12 {
		hint = 1 << 12
	}
	return &MisraGries{
		threshold: uint32(threshold),
		capacity:  capacity,
		counts:    make(map[uint64]uint32, hint),
	}
}

// Name implements Tracker.
func (t *MisraGries) Name() string { return "Misra-Gries" }

// SetMetrics implements metrics.Settable: tracker_lookups counts RecordACT
// calls, tracker_reports threshold reports, tracker_evictions the entries
// dropped by the decrement-all step.
func (t *MisraGries) SetMetrics(r *metrics.Recorder) {
	t.mLookups = r.Counter("tracker_lookups")
	t.mReports = r.Counter("tracker_reports")
	t.mEvictions = r.Counter("tracker_evictions")
}

// RecordACT implements Tracker.
func (t *MisraGries) RecordACT(row uint64) bool {
	t.mLookups.Inc()
	if c, ok := t.counts[row]; ok {
		c++
		if c-t.floor >= t.threshold {
			// Report and reset: the mitigation acts on this row now.
			delete(t.counts, row)
			t.reports++
			t.mReports.Inc()
			return true
		}
		t.counts[row] = c
		return false
	}
	if len(t.counts) < t.capacity {
		t.counts[row] = t.floor + 1
		if 1 >= t.threshold {
			delete(t.counts, row)
			t.reports++
			t.mReports.Inc()
			return true
		}
		return false
	}
	// Table full: Misra-Gries decrement-all, realized as floor increment
	// with lazy eviction of entries that fall to the floor.
	t.floor++
	//lint:allow determinism order-independent: every entry at or below the floor is deleted, whatever order the map yields them
	for r, c := range t.counts {
		if c <= t.floor {
			delete(t.counts, r)
			t.mEvictions.Inc()
		}
	}
	return false
}

// Reset implements Tracker.
func (t *MisraGries) Reset() {
	t.floor = 0
	clear(t.counts)
}

// Entries reports the number of live entries (for tests and sizing studies).
func (t *MisraGries) Entries() int { return len(t.counts) }

// Reports returns the cumulative number of threshold reports.
func (t *MisraGries) Reports() uint64 { return t.reports }

// --- Per-row counters ---------------------------------------------------------

// PerRow is an exact tracker with one counter per row in memory, as assumed
// for BlockHammer in the paper ("an idealized SRAM tracker with one counter
// per row"). The *hardware* it models is a dense counter array; the
// simulation stores only rows actually touched this window, in an
// open-addressed epoch-stamped table, so constructing a tracker over a
// 2M-row module costs a few KB instead of two row-sized arrays. Untouched
// rows read as count 0 — exactly what the dense array would hold — and
// resets are O(1) via the epoch stamp.
type PerRow struct {
	threshold uint32
	epoch     uint32
	slots     []perRowSlot
	mask      uint64
	shift     uint
	live      int // slots claimed in the current epoch
	reports   uint64

	mLookups *metrics.Counter
	mReports *metrics.Counter
}

// perRowSlot holds one touched row. A slot is free iff its epoch differs
// from the tracker's current epoch, so Reset (epoch++) frees every slot at
// once without touching memory.
type perRowSlot struct {
	row   uint64 // addr: row
	epoch uint32
	count uint32
}

const perRowInitSlots = 1 << 10

// NewPerRow builds an exact tracker over totalRows rows reporting at
// threshold activations. totalRows documents the modeled counter-array
// size; storage is proportional to rows touched per window.
func NewPerRow(threshold int, totalRows uint64) *PerRow {
	if threshold < 1 {
		threshold = 1
	}
	_ = totalRows
	return &PerRow{
		threshold: uint32(threshold),
		epoch:     1,
		slots:     make([]perRowSlot, perRowInitSlots),
		mask:      perRowInitSlots - 1,
		shift:     64 - 10,
	}
}

// Name implements Tracker.
func (t *PerRow) Name() string { return "PerRowCounter" }

// SetMetrics implements metrics.Settable.
func (t *PerRow) SetMetrics(r *metrics.Recorder) {
	t.mLookups = r.Counter("tracker_lookups")
	t.mReports = r.Counter("tracker_reports")
}

// slot returns the table entry for row, claiming a free slot on first touch
// this epoch. Fibonacci hashing with linear probing; the probe path only
// crosses slots live in the current epoch, so stale entries can be
// reclaimed freely.
func (t *PerRow) slot(row uint64) *perRowSlot {
	if (t.live+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := (row * 0x9E3779B97F4A7C15) >> t.shift
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch {
			s.row = row
			s.epoch = t.epoch
			s.count = 0
			t.live++
			return s
		}
		if s.row == row {
			return s
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table and reinserts only the current epoch's live
// entries.
//
// cold: geometric growth amortizes to zero allocations per recorded ACT
// once the table covers the window's working set.
func (t *PerRow) grow() {
	old := t.slots
	t.slots = make([]perRowSlot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	t.shift--
	for oi := range old {
		s := &old[oi]
		if s.epoch != t.epoch {
			continue
		}
		i := (s.row * 0x9E3779B97F4A7C15) >> t.shift
		for t.slots[i].epoch == t.epoch {
			i = (i + 1) & t.mask
		}
		t.slots[i] = *s
	}
}

// RecordACT implements Tracker.
func (t *PerRow) RecordACT(row uint64) bool {
	t.mLookups.Inc()
	s := t.slot(row)
	s.count++
	if s.count >= t.threshold {
		s.count = 0
		t.reports++
		t.mReports.Inc()
		return true
	}
	return false
}

// Count returns the current in-window count for a row (0 if untouched this
// window). Used by BlockHammer's throttle decision.
func (t *PerRow) Count(row uint64) uint32 {
	i := (row * 0x9E3779B97F4A7C15) >> t.shift
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch {
			return 0
		}
		if s.row == row {
			return s.count
		}
		i = (i + 1) & t.mask
	}
}

// Reset implements Tracker.
func (t *PerRow) Reset() {
	t.live = 0
	t.epoch++
	if t.epoch == 0 {
		// Epoch wrapped: stale slots stamped 0 would read as live. Clear
		// once per 2^32 windows.
		clear(t.slots)
		t.epoch = 1
	}
}

// Reports returns the cumulative number of threshold reports.
func (t *PerRow) Reports() uint64 { return t.reports }
