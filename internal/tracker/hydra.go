// Hydra (Qureshi et al., ISCA 2022) — the hybrid tracker the paper cites
// (§2.4) for low-cost tracking at ultra-low thresholds. Hydra keeps a small
// SRAM structure of GROUP counters; only when a group becomes warm does it
// fall back to per-row counters (held in DRAM in the real design, with an
// SRAM cache). This gives per-row accuracy at a fraction of per-row SRAM.
//
// The simulator models Hydra's two levels functionally:
//
//   - Group Count Table (GCT): one counter per group of rows. Counts
//     activations to the whole group until the group threshold is reached.
//   - Row Count Table (RCT): per-row counters, materialized lazily for rows
//     of warm groups, initialized to the group threshold (a row can have at
//     most that many activations when its group graduates).
//
// The DRAM-access cost of RCT lookups is not charged to the memory model
// (the real design hides most of it behind an SRAM cache); Hydra here is a
// functional alternative to MisraGries/PerRow for tracking studies.

package tracker

import "rubix/internal/metrics"

// Hydra is the hybrid group/row activation tracker.
type Hydra struct {
	rowThreshold   uint32
	groupThreshold uint32
	groupShift     uint
	groups         map[uint64]uint32
	rows           map[uint64]uint32
	reports        uint64

	mLookups *metrics.Counter
	mReports *metrics.Counter
}

// HydraConfig configures NewHydra.
type HydraConfig struct {
	// Threshold is the per-row report threshold (typically T_RH/2).
	Threshold int
	// GroupSize is the number of consecutive rows per group counter
	// (power of two; 0 = 128, Hydra's default granularity).
	GroupSize int
	// GroupThresholdFrac is the fraction of Threshold at which a group
	// graduates to per-row tracking (0 = 0.8, Hydra's default).
	GroupThresholdFrac float64
}

// NewHydra builds a Hydra tracker.
func NewHydra(cfg HydraConfig) *Hydra {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 128
	}
	if cfg.GroupSize < 1 || cfg.GroupSize&(cfg.GroupSize-1) != 0 {
		cfg.GroupSize = 128
	}
	frac := cfg.GroupThresholdFrac
	if frac <= 0 || frac > 1 {
		frac = 0.8
	}
	shift := uint(0)
	for v := cfg.GroupSize; v > 1; v >>= 1 {
		shift++
	}
	gt := uint32(float64(cfg.Threshold) * frac)
	if gt < 1 {
		gt = 1
	}
	return &Hydra{
		rowThreshold:   uint32(cfg.Threshold),
		groupThreshold: gt,
		groupShift:     shift,
		groups:         make(map[uint64]uint32),
		rows:           make(map[uint64]uint32),
	}
}

// Name implements Tracker.
func (h *Hydra) Name() string { return "Hydra" }

// SetMetrics implements metrics.Settable.
func (h *Hydra) SetMetrics(r *metrics.Recorder) {
	h.mLookups = r.Counter("tracker_lookups")
	h.mReports = r.Counter("tracker_reports")
}

// RecordACT implements Tracker.
//
// While a group is cold, its counter aggregates the whole group's
// activations — a conservative over-count per row, which preserves the
// security guarantee (no row can exceed its true count unnoticed). When the
// group counter reaches the group threshold, the activated row graduates to
// an exact per-row counter seeded with the group count (an upper bound on
// the row's own activations so far).
func (h *Hydra) RecordACT(row uint64) bool {
	h.mLookups.Inc()
	group := row >> h.groupShift
	if gc, warm := h.groups[group]; !warm || gc < h.groupThreshold {
		gc++
		h.groups[group] = gc
		if gc >= h.rowThreshold {
			// The group counter alone proves SOME row may have reached the
			// threshold; report this row and restart its group. (With
			// groupThreshold < rowThreshold this only triggers when
			// groupThreshold is configured at 1.0.)
			delete(h.groups, group)
			h.reports++
			h.mReports.Inc()
			return true
		}
		return false
	}
	// Warm group: exact per-row tracking. A row seen for the first time
	// after graduation is seeded with the group count (an upper bound on
	// its own prior activations — pessimistic, which is what makes Hydra
	// over-mitigate at ultra-low thresholds); after a report the row
	// restarts at zero, since the mitigation neutralized its history.
	rc, ok := h.rows[row]
	if !ok {
		rc = h.groups[group]
	}
	rc++
	if rc >= h.rowThreshold {
		h.rows[row] = 0
		h.reports++
		h.mReports.Inc()
		return true
	}
	h.rows[row] = rc
	return false
}

// Reset implements Tracker.
func (h *Hydra) Reset() {
	clear(h.groups)
	clear(h.rows)
}

// Reports returns the cumulative number of threshold reports.
func (h *Hydra) Reports() uint64 { return h.reports }

// WarmGroups reports how many groups graduated to per-row tracking (sizing
// studies).
func (h *Hydra) WarmGroups() int {
	n := 0
	//lint:allow determinism order-independent: counts entries matching a predicate, order cannot reach the total
	for _, gc := range h.groups {
		if gc >= h.groupThreshold {
			n++
		}
	}
	return n
}

// TrackedRows reports the number of materialized per-row counters.
func (h *Hydra) TrackedRows() int { return len(h.rows) }
