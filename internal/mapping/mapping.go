// Package mapping defines the memory-mapping interface and the baseline
// (non-randomized) line-to-row mappings the paper evaluates against:
// Sequential, Intel Coffee Lake, Intel Skylake, Minimalist Open-Page (MOP),
// and the cipher-free large-stride design of §6.1.
//
// A Mapper is a bijection from program line addresses to physical line
// indexes; package geom defines how a physical line index decomposes into
// (channel, rank, bank, row, slot). The Rubix mappings themselves live in
// package core, since they are the paper's contribution.
package mapping

import (
	"fmt"

	"rubix/internal/geom"
)

// Mapper translates a program line address into a physical line index.
// Implementations must be bijections over [0, g.TotalLines()).
type Mapper interface {
	// Name identifies the mapping in reports (e.g. "CoffeeLake").
	Name() string
	// Map translates a program line address to a physical line index.
	Map(line uint64) uint64
}

// Inverter is implemented by mappers that can translate back from physical
// line index to program line address. All mappers in this repository
// implement it; it is used by property tests and by row-migration
// bookkeeping.
type Inverter interface {
	Unmap(phys uint64) uint64
}

// validateGeometry rejects geometries the baseline mappers silently
// mis-handle: rowBits truncates a non-power-of-two RowsPerBank (dropping
// rows from the address space, so the "bijection" loses range), and the
// selBits arithmetic assumes LineBits splits exactly into slot + select +
// row bits.
func validateGeometry(g geom.Geometry) error {
	if g.RowsPerBank <= 0 || g.RowsPerBank&(g.RowsPerBank-1) != 0 {
		return fmt.Errorf("mapping: RowsPerBank must be a positive power of two, got %d", g.RowsPerBank)
	}
	if g.LineBits() < g.SlotBits()+uint(rowBits(g)) {
		return fmt.Errorf("mapping: geometry %v has fewer line bits than slot+row bits", g)
	}
	return nil
}

// xorFold XORs the bits of v above width down onto the low width bits,
// producing a simple XOR-hash as used by Intel bank-selection functions.
func xorFold(v uint64, width uint) uint64 {
	if width == 0 {
		return 0
	}
	mask := (uint64(1) << width) - 1
	h := uint64(0)
	for v != 0 {
		h ^= v & mask
		v >>= width
	}
	return h
}

// --- Sequential ------------------------------------------------------------

// Sequential is the identity mapping: consecutive lines fill a row, then the
// next global row. It is the mapping of the Figure 4 illustrative model
// ("sequential mapping that places the 4KB page within the same row").
type Sequential struct{}

// NewSequential returns the identity mapping.
func NewSequential() Sequential { return Sequential{} }

// Name implements Mapper.
func (Sequential) Name() string { return "Sequential" }

// Map implements Mapper.
func (Sequential) Map(line uint64) uint64 { return line }

// Unmap implements Inverter.
func (Sequential) Unmap(phys uint64) uint64 { return phys }

// --- Coffee Lake -----------------------------------------------------------

// CoffeeLake models the Intel Coffee Lake mapping (§2.3): 128 consecutive
// lines (two 4 KB pages) reside in the same row, with an XOR-based hash
// selecting the bank (and channel/rank when present). It is the paper's
// baseline mapping.
type CoffeeLake struct {
	g        geom.Geometry
	selBits  uint   // channel+rank+bank bits
	selMask  uint64 // mask of selBits
	slotBits uint
}

// NewCoffeeLake builds the Coffee Lake mapping for geometry g.
func NewCoffeeLake(g geom.Geometry) (*CoffeeLake, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	return &CoffeeLake{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		selMask:  uint64(g.BanksTotal()) - 1,
		slotBits: g.SlotBits(),
	}, nil
}

func rowBits(g geom.Geometry) int {
	// rows-per-bank bit width
	n := 0
	for v := g.RowsPerBank; v > 1; v >>= 1 {
		n++
	}
	return n
}

// Name implements Mapper.
func (m *CoffeeLake) Name() string { return "CoffeeLake" }

// Map implements Mapper. The low slot bits are untouched (consecutive 128
// lines share a row); the bank-select bits are XOR-hashed with the row bits.
func (m *CoffeeLake) Map(line uint64) uint64 {
	slot := line & ((1 << m.slotBits) - 1)
	block := line >> m.slotBits // global-row-sized block of program space
	sel := block & m.selMask
	row := block >> m.selBits
	sel ^= xorFold(row, m.selBits) & m.selMask
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter. XOR with a function of untouched bits is its
// own inverse.
func (m *CoffeeLake) Unmap(phys uint64) uint64 { return m.Map(phys) }

// --- Skylake ---------------------------------------------------------------

// Skylake models the Intel Skylake mapping (§2.3): pairs of lines alternate
// between two banks, so lines 0,1,4,5,...,60,61 of a 4 KB page reside in a
// row of one bank and lines 2,3,6,7,...,62,63 in a row of another; 32 lines
// of each page share a row, and four consecutive pages fill it.
type Skylake struct {
	g        geom.Geometry
	selBits  uint
	slotBits uint
}

// NewSkylake builds the Skylake mapping for geometry g. The geometry must
// have at least two total banks and 128-line rows (the configuration the
// mapping was reverse-engineered on).
func NewSkylake(g geom.Geometry) (*Skylake, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	if g.BanksTotal() < 2 {
		return nil, fmt.Errorf("mapping: Skylake requires >= 2 banks, geometry has %d", g.BanksTotal())
	}
	if g.LinesPerRow() < 4 {
		return nil, fmt.Errorf("mapping: Skylake requires >= 4 lines per row, geometry has %d", g.LinesPerRow())
	}
	return &Skylake{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
	}, nil
}

// Name implements Mapper.
func (m *Skylake) Name() string { return "Skylake" }

// Map implements Mapper.
//
// Bit plan for a line address (LSB first): b0 = line in pair; b1 = bank-pair
// select; b2.. = successive pairs. The slot is rebuilt from b0 plus the next
// slotBits-1 bits above b1, so each row interleaves pairs from a page with a
// stride of 4 lines and spans four consecutive pages (for 128-line rows).
func (m *Skylake) Map(line uint64) uint64 {
	b0 := line & 1
	bankLow := line >> 1 & 1
	upper := line >> 2 // pair stream above the bank-select bit

	slotHigh := upper & ((1 << (m.slotBits - 1)) - 1) // slotBits-1 bits
	slot := slotHigh<<1 | b0
	rest := upper >> (m.slotBits - 1)

	// Remaining bank/rank/channel select bits come from the low bits of
	// rest; the row address is what is left.
	selRestBits := m.selBits - 1
	selRest := rest & ((1 << selRestBits) - 1)
	row := rest >> selRestBits

	sel := selRest<<1 | bankLow
	sel ^= xorFold(row, m.selBits) & ((1 << m.selBits) - 1)
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter.
func (m *Skylake) Unmap(phys uint64) uint64 {
	slot := phys & ((1 << m.slotBits) - 1)
	gr := phys >> m.slotBits
	sel := gr & ((1 << m.selBits) - 1)
	row := gr >> m.selBits
	sel ^= xorFold(row, m.selBits) & ((1 << m.selBits) - 1)

	bankLow := sel & 1
	selRest := sel >> 1
	b0 := slot & 1
	slotHigh := slot >> 1

	rest := row<<(m.selBits-1) | selRest
	upper := rest<<(m.slotBits-1) | slotHigh
	return upper<<2 | bankLow<<1 | b0
}

// --- MOP (Minimalist Open-Page) ---------------------------------------------

// MOP models the Minimalist Open-Page mapping (Kaseridis et al., MICRO-44;
// §7.1): gangs of four lines round-robin across all banks, so only four
// lines of each 4 KB page land in the same row, but gangs at the same page
// offset of consecutive pages co-reside — preserving spatial correlation,
// which is why MOP does not fix hot rows (Figure 17).
type MOP struct {
	g        geom.Geometry
	selBits  uint
	slotBits uint
	gangBits uint // log2 lines per MOP gang (= 2)
}

// NewMOP builds the MOP mapping for geometry g. Rows must hold at least one
// full MOP gang (4 lines): with fewer, gangsPerRow (slotBits - gangBits)
// would underflow its uint and Map would produce a garbage non-bijection.
func NewMOP(g geom.Geometry) (*MOP, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	if g.LinesPerRow() < 4 {
		return nil, fmt.Errorf("mapping: MOP requires >= 4 lines per row, geometry has %d", g.LinesPerRow())
	}
	return &MOP{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
		gangBits: 2,
	}, nil
}

// Name implements Mapper.
func (m *MOP) Name() string { return "MOP" }

// Map implements Mapper.
func (m *MOP) Map(line uint64) uint64 {
	lig := line & ((1 << m.gangBits) - 1) // line in MOP gang
	gang := line >> m.gangBits
	sel := gang & ((1 << m.selBits) - 1) // round-robin across banks
	rest := gang >> m.selBits

	gangsPerRow := m.slotBits - m.gangBits
	slotGang := rest & ((1 << gangsPerRow) - 1)
	row := rest >> gangsPerRow

	slot := slotGang<<m.gangBits | lig
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter.
func (m *MOP) Unmap(phys uint64) uint64 {
	slot := phys & ((1 << m.slotBits) - 1)
	gr := phys >> m.slotBits
	sel := gr & ((1 << m.selBits) - 1)
	row := gr >> m.selBits

	lig := slot & ((1 << m.gangBits) - 1)
	slotGang := slot >> m.gangBits

	gangsPerRow := m.slotBits - m.gangBits
	rest := row<<gangsPerRow | slotGang
	gang := rest<<m.selBits | sel
	return gang<<m.gangBits | lig
}

// --- Large stride (§6.1) ----------------------------------------------------

// LargeStride is the cipher-free randomization alternative of §6.1: the
// most-significant bits of the gang address choose the gang-in-row, so gangs
// co-resident in a row are strided by hundreds of megabytes (512 MB for the
// 16 GB / 32-gangs-per-row configuration) and are unlikely to be accessed
// together. Unlike Rubix-S it is not robust to adversarially large strides.
type LargeStride struct {
	g        geom.Geometry
	gangBits uint // log2 gang size in lines
	pBits    uint // gang-in-row bits
	restBits uint // row+bank select bits
	selBits  uint // channel+rank+bank bits within rest
	slotBits uint
}

// NewLargeStride builds the large-stride mapping with a gang of gangSize
// lines (1, 2, or 4). Like the Intel mappings it keeps an XOR-based bank
// hash, so strided patterns do not serialize on one bank.
func NewLargeStride(g geom.Geometry, gangSize int) (*LargeStride, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	gb, err := gangBitsFor(gangSize)
	if err != nil {
		return nil, err
	}
	if uint(gb) >= g.SlotBits() {
		return nil, fmt.Errorf("mapping: gang size %d does not fit a %d-line row", gangSize, g.LinesPerRow())
	}
	p := g.SlotBits() - uint(gb)
	return &LargeStride{
		g:        g,
		gangBits: uint(gb),
		pBits:    p,
		restBits: g.LineBits() - g.SlotBits(),
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
	}, nil
}

func gangBitsFor(gangSize int) (int, error) {
	switch gangSize {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("mapping: unsupported gang size %d (want 1, 2, 4, or 8)", gangSize)
}

// Name implements Mapper.
func (m *LargeStride) Name() string {
	return fmt.Sprintf("LargeStride(GS%d)", 1<<m.gangBits)
}

// Map implements Mapper: the top pBits of the gang address become the
// gang-in-row, and the remaining (spatially local) bits become the global
// row, so consecutive gangs land in consecutive rows; the bank-select bits
// are XOR-hashed with the row bits as in the Intel mappings.
func (m *LargeStride) Map(line uint64) uint64 {
	lig := line & ((1 << m.gangBits) - 1)
	gang := line >> m.gangBits
	gangAddrBits := m.pBits + m.restBits
	top := gang >> (gangAddrBits - m.pBits) // top pBits
	rest := gang & ((1 << (gangAddrBits - m.pBits)) - 1)
	rest = m.bankHash(rest)
	slot := top<<m.gangBits | lig
	return rest<<m.slotBits | slot
}

// bankHash XORs the row bits of a global row index into its bank-select
// bits; it is an involution.
func (m *LargeStride) bankHash(globalRow uint64) uint64 {
	sel := globalRow & ((1 << m.selBits) - 1)
	row := globalRow >> m.selBits
	sel ^= xorFold(row, m.selBits) & ((1 << m.selBits) - 1)
	return row<<m.selBits | sel
}

// Unmap implements Inverter.
func (m *LargeStride) Unmap(phys uint64) uint64 {
	slot := phys & ((1 << m.slotBits) - 1)
	rest := m.bankHash(phys >> m.slotBits)
	lig := slot & ((1 << m.gangBits) - 1)
	top := slot >> m.gangBits
	gangAddrBits := m.pBits + m.restBits
	gang := top<<(gangAddrBits-m.pBits) | rest
	return gang<<m.gangBits | lig
}
