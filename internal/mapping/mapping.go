// Package mapping defines the memory-mapping interface and the baseline
// (non-randomized) line-to-row mappings the paper evaluates against:
// Sequential, Intel Coffee Lake, Intel Skylake, Minimalist Open-Page (MOP),
// and the cipher-free large-stride design of §6.1.
//
// A Mapper is a bijection from program line addresses to physical line
// indexes; package geom defines how a physical line index decomposes into
// (channel, rank, bank, row, slot). The Rubix mappings themselves live in
// package core, since they are the paper's contribution.
package mapping

import (
	"fmt"

	"rubix/internal/geom"
)

// Mapper translates a program line address into a physical line index.
// Implementations must be bijections over [0, g.TotalLines()).
type Mapper interface {
	// Name identifies the mapping in reports (e.g. "CoffeeLake").
	Name() string
	// Map translates a program line address to a physical line index.
	Map(line uint64) uint64
}

// Inverter is implemented by mappers that can translate back from physical
// line index to program line address. All mappers in this repository
// implement it; it is used by property tests and by row-migration
// bookkeeping.
type Inverter interface {
	Unmap(phys uint64) uint64
}

// BatchMapper is implemented by mappers that translate whole batches in one
// call, amortizing per-call setup (mask/shift loads, cipher round-schedule
// loads) across the batch. MapBatch stores Map(lines[i]) into phys[i] for
// every i < len(lines); len(phys) must be at least len(lines) and the two
// slices must not overlap (implementations may stage intermediate values in
// phys). For dynamic mappers the whole batch is translated under the state
// at call time — callers that interleave translation with remapping events
// must re-translate the untouched tail (see memctrl.Controller.AccessBatch).
type BatchMapper interface {
	MapBatch(lines, phys []uint64)
}

// BatchInverter is the batched companion of Inverter: UnmapBatch stores
// Unmap(phys[i]) into lines[i], under the same length and no-overlap
// contract as MapBatch.
type BatchInverter interface {
	UnmapBatch(phys, lines []uint64)
}

// FullMapper is the complete translation surface: scalar and batched, both
// directions. Every mapper in this repository implements it; sim.MapperFor
// returns it so callers need no capability type assertions.
type FullMapper interface {
	Mapper
	Inverter
	BatchMapper
	BatchInverter
}

// BatchedMapper is the forward translation surface Batched returns: the
// scalar Map plus the batched MapBatch. It deliberately omits the inverse
// direction so forward-only mappers (test doubles, custom experimental
// mappings) stay usable.
type BatchedMapper interface {
	Mapper
	BatchMapper
}

// Batched returns a batch-capable view of m: m itself when it implements
// MapBatch natively, otherwise an adapter whose MapBatch is a per-line
// fallback loop. The adapter keeps single-line mappers working behind the
// batched call sites (the memory controller's queue drain) with identical
// translation semantics.
func Batched(m Mapper) BatchedMapper {
	if bm, ok := m.(BatchedMapper); ok {
		return bm
	}
	return scalarBatch{m}
}

// scalarBatch adapts a scalar-only Mapper to the batch surface.
type scalarBatch struct{ Mapper }

// MapBatch implements BatchMapper with a per-line loop.
func (s scalarBatch) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = s.Mapper.Map(line)
	}
}

// validateGeometry rejects geometries the baseline mappers silently
// mis-handle: rowBits truncates a non-power-of-two RowsPerBank (dropping
// rows from the address space, so the "bijection" loses range), and the
// selBits arithmetic assumes LineBits splits exactly into slot + select +
// row bits.
func validateGeometry(g geom.Geometry) error {
	if g.RowsPerBank <= 0 || g.RowsPerBank&(g.RowsPerBank-1) != 0 {
		return fmt.Errorf("mapping: RowsPerBank must be a positive power of two, got %d", g.RowsPerBank)
	}
	if g.LineBits() < g.SlotBits()+uint(rowBits(g)) {
		return fmt.Errorf("mapping: geometry %v has fewer line bits than slot+row bits", g)
	}
	return nil
}

// xorFold XORs the bits of v above width down onto the low width bits,
// producing a simple XOR-hash as used by Intel bank-selection functions.
func xorFold(v uint64, width uint) uint64 {
	if width == 0 {
		return 0
	}
	mask := (uint64(1) << width) - 1
	h := uint64(0)
	for v != 0 {
		h ^= v & mask
		v >>= width
	}
	return h
}

// --- Sequential ------------------------------------------------------------

// Sequential is the identity mapping: consecutive lines fill a row, then the
// next global row. It is the mapping of the Figure 4 illustrative model
// ("sequential mapping that places the 4KB page within the same row").
type Sequential struct{}

// NewSequential returns the identity mapping.
func NewSequential() Sequential { return Sequential{} }

// Name implements Mapper.
func (Sequential) Name() string { return "Sequential" }

// Map implements Mapper.
func (Sequential) Map(line uint64) uint64 { return line }

// Unmap implements Inverter.
func (Sequential) Unmap(phys uint64) uint64 { return phys }

// MapBatch implements BatchMapper: the identity batch is a copy.
func (Sequential) MapBatch(lines, phys []uint64) { copy(phys[:len(lines)], lines) }

// UnmapBatch implements BatchInverter.
func (Sequential) UnmapBatch(phys, lines []uint64) { copy(lines[:len(phys)], phys) }

// --- Coffee Lake -----------------------------------------------------------

// CoffeeLake models the Intel Coffee Lake mapping (§2.3): 128 consecutive
// lines (two 4 KB pages) reside in the same row, with an XOR-based hash
// selecting the bank (and channel/rank when present). It is the paper's
// baseline mapping.
type CoffeeLake struct {
	g        geom.Geometry
	selBits  uint   // channel+rank+bank bits
	selMask  uint64 // mask of selBits
	slotBits uint
	slotMask uint64 // (1 << slotBits) - 1, hoisted off the per-call path
}

// NewCoffeeLake builds the Coffee Lake mapping for geometry g.
func NewCoffeeLake(g geom.Geometry) (*CoffeeLake, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	return &CoffeeLake{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		selMask:  uint64(g.BanksTotal()) - 1,
		slotBits: g.SlotBits(),
		slotMask: (uint64(1) << g.SlotBits()) - 1,
	}, nil
}

func rowBits(g geom.Geometry) int {
	// rows-per-bank bit width
	n := 0
	for v := g.RowsPerBank; v > 1; v >>= 1 {
		n++
	}
	return n
}

// Name implements Mapper.
func (m *CoffeeLake) Name() string { return "CoffeeLake" }

// Map implements Mapper. The low slot bits are untouched (consecutive 128
// lines share a row); the bank-select bits are XOR-hashed with the row bits.
func (m *CoffeeLake) Map(line uint64) uint64 {
	slot := line & m.slotMask
	block := line >> m.slotBits // global-row-sized block of program space
	sel := block & m.selMask
	row := block >> m.selBits
	sel ^= xorFold(row, m.selBits) & m.selMask
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter. XOR with a function of untouched bits is its
// own inverse.
func (m *CoffeeLake) Unmap(phys uint64) uint64 { return m.Map(phys) }

// MapBatch implements BatchMapper.
func (m *CoffeeLake) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = m.Map(line)
	}
}

// UnmapBatch implements BatchInverter (the mapping is an involution).
func (m *CoffeeLake) UnmapBatch(phys, lines []uint64) { m.MapBatch(phys, lines) }

// --- Skylake ---------------------------------------------------------------

// Skylake models the Intel Skylake mapping (§2.3): pairs of lines alternate
// between two banks, so lines 0,1,4,5,...,60,61 of a 4 KB page reside in a
// row of one bank and lines 2,3,6,7,...,62,63 in a row of another; 32 lines
// of each page share a row, and four consecutive pages fill it.
type Skylake struct {
	g        geom.Geometry
	selBits  uint
	slotBits uint
	// Hoisted masks, previously recomputed on every Map/Unmap call.
	slotMask     uint64 // (1 << slotBits) - 1
	slotHighMask uint64 // (1 << (slotBits - 1)) - 1
	selMask      uint64 // (1 << selBits) - 1
	selRestMask  uint64 // (1 << (selBits - 1)) - 1
}

// NewSkylake builds the Skylake mapping for geometry g. The geometry must
// have at least two total banks and 128-line rows (the configuration the
// mapping was reverse-engineered on).
func NewSkylake(g geom.Geometry) (*Skylake, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	if g.BanksTotal() < 2 {
		return nil, fmt.Errorf("mapping: Skylake requires >= 2 banks, geometry has %d", g.BanksTotal())
	}
	if g.LinesPerRow() < 4 {
		return nil, fmt.Errorf("mapping: Skylake requires >= 4 lines per row, geometry has %d", g.LinesPerRow())
	}
	m := &Skylake{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
	}
	m.slotMask = (uint64(1) << m.slotBits) - 1
	m.slotHighMask = (uint64(1) << (m.slotBits - 1)) - 1
	m.selMask = (uint64(1) << m.selBits) - 1
	m.selRestMask = (uint64(1) << (m.selBits - 1)) - 1
	return m, nil
}

// Name implements Mapper.
func (m *Skylake) Name() string { return "Skylake" }

// Map implements Mapper.
//
// Bit plan for a line address (LSB first): b0 = line in pair; b1 = bank-pair
// select; b2.. = successive pairs. The slot is rebuilt from b0 plus the next
// slotBits-1 bits above b1, so each row interleaves pairs from a page with a
// stride of 4 lines and spans four consecutive pages (for 128-line rows).
func (m *Skylake) Map(line uint64) uint64 {
	b0 := line & 1
	bankLow := line >> 1 & 1
	upper := line >> 2 // pair stream above the bank-select bit

	slotHigh := upper & m.slotHighMask // slotBits-1 bits
	slot := slotHigh<<1 | b0
	rest := upper >> (m.slotBits - 1)

	// Remaining bank/rank/channel select bits come from the low bits of
	// rest; the row address is what is left.
	selRest := rest & m.selRestMask
	row := rest >> (m.selBits - 1)

	sel := selRest<<1 | bankLow
	sel ^= xorFold(row, m.selBits) & m.selMask
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter.
func (m *Skylake) Unmap(phys uint64) uint64 {
	slot := phys & m.slotMask
	gr := phys >> m.slotBits
	sel := gr & m.selMask
	row := gr >> m.selBits
	sel ^= xorFold(row, m.selBits) & m.selMask

	bankLow := sel & 1
	selRest := sel >> 1
	b0 := slot & 1
	slotHigh := slot >> 1

	rest := row<<(m.selBits-1) | selRest
	upper := rest<<(m.slotBits-1) | slotHigh
	return upper<<2 | bankLow<<1 | b0
}

// MapBatch implements BatchMapper.
func (m *Skylake) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = m.Map(line)
	}
}

// UnmapBatch implements BatchInverter.
func (m *Skylake) UnmapBatch(phys, lines []uint64) {
	lines = lines[:len(phys)]
	for i, p := range phys {
		lines[i] = m.Unmap(p)
	}
}

// --- MOP (Minimalist Open-Page) ---------------------------------------------

// MOP models the Minimalist Open-Page mapping (Kaseridis et al., MICRO-44;
// §7.1): gangs of four lines round-robin across all banks, so only four
// lines of each 4 KB page land in the same row, but gangs at the same page
// offset of consecutive pages co-reside — preserving spatial correlation,
// which is why MOP does not fix hot rows (Figure 17).
type MOP struct {
	g        geom.Geometry
	selBits  uint
	slotBits uint
	gangBits uint // log2 lines per MOP gang (= 2)
	// Hoisted masks, previously recomputed on every Map/Unmap call.
	gangMask    uint64 // (1 << gangBits) - 1
	selMask     uint64 // (1 << selBits) - 1
	slotMask    uint64 // (1 << slotBits) - 1
	gangsPerRow uint   // slotBits - gangBits
	gprMask     uint64 // (1 << gangsPerRow) - 1
}

// NewMOP builds the MOP mapping for geometry g. Rows must hold at least one
// full MOP gang (4 lines): with fewer, gangsPerRow (slotBits - gangBits)
// would underflow its uint and Map would produce a garbage non-bijection.
func NewMOP(g geom.Geometry) (*MOP, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	if g.LinesPerRow() < 4 {
		return nil, fmt.Errorf("mapping: MOP requires >= 4 lines per row, geometry has %d", g.LinesPerRow())
	}
	m := &MOP{
		g:        g,
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
		gangBits: 2,
	}
	m.gangMask = (uint64(1) << m.gangBits) - 1
	m.selMask = (uint64(1) << m.selBits) - 1
	m.slotMask = (uint64(1) << m.slotBits) - 1
	m.gangsPerRow = m.slotBits - m.gangBits
	m.gprMask = (uint64(1) << m.gangsPerRow) - 1
	return m, nil
}

// Name implements Mapper.
func (m *MOP) Name() string { return "MOP" }

// Map implements Mapper.
func (m *MOP) Map(line uint64) uint64 {
	lig := line & m.gangMask // line in MOP gang
	gang := line >> m.gangBits
	sel := gang & m.selMask // round-robin across banks
	rest := gang >> m.selBits

	slotGang := rest & m.gprMask
	row := rest >> m.gangsPerRow

	slot := slotGang<<m.gangBits | lig
	return (row<<m.selBits|sel)<<m.slotBits | slot
}

// Unmap implements Inverter.
func (m *MOP) Unmap(phys uint64) uint64 {
	slot := phys & m.slotMask
	gr := phys >> m.slotBits
	sel := gr & m.selMask
	row := gr >> m.selBits

	lig := slot & m.gangMask
	slotGang := slot >> m.gangBits

	rest := row<<m.gangsPerRow | slotGang
	gang := rest<<m.selBits | sel
	return gang<<m.gangBits | lig
}

// MapBatch implements BatchMapper.
func (m *MOP) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = m.Map(line)
	}
}

// UnmapBatch implements BatchInverter.
func (m *MOP) UnmapBatch(phys, lines []uint64) {
	lines = lines[:len(phys)]
	for i, p := range phys {
		lines[i] = m.Unmap(p)
	}
}

// --- Large stride (§6.1) ----------------------------------------------------

// LargeStride is the cipher-free randomization alternative of §6.1: the
// most-significant bits of the gang address choose the gang-in-row, so gangs
// co-resident in a row are strided by hundreds of megabytes (512 MB for the
// 16 GB / 32-gangs-per-row configuration) and are unlikely to be accessed
// together. Unlike Rubix-S it is not robust to adversarially large strides.
type LargeStride struct {
	g        geom.Geometry
	gangBits uint // log2 gang size in lines
	pBits    uint // gang-in-row bits
	restBits uint // row+bank select bits
	selBits  uint // channel+rank+bank bits within rest
	slotBits uint
	// Hoisted masks, previously recomputed on every Map/Unmap call.
	gangMask uint64 // (1 << gangBits) - 1
	restMask uint64 // (1 << restBits) - 1
	selMask  uint64 // (1 << selBits) - 1
	slotMask uint64 // (1 << slotBits) - 1
}

// NewLargeStride builds the large-stride mapping with a gang of gangSize
// lines (1, 2, or 4). Like the Intel mappings it keeps an XOR-based bank
// hash, so strided patterns do not serialize on one bank.
func NewLargeStride(g geom.Geometry, gangSize int) (*LargeStride, error) {
	if err := validateGeometry(g); err != nil {
		return nil, err
	}
	gb, err := gangBitsFor(gangSize)
	if err != nil {
		return nil, err
	}
	if uint(gb) >= g.SlotBits() {
		return nil, fmt.Errorf("mapping: gang size %d does not fit a %d-line row", gangSize, g.LinesPerRow())
	}
	p := g.SlotBits() - uint(gb)
	m := &LargeStride{
		g:        g,
		gangBits: uint(gb),
		pBits:    p,
		restBits: g.LineBits() - g.SlotBits(),
		selBits:  g.LineBits() - g.SlotBits() - uint(rowBits(g)),
		slotBits: g.SlotBits(),
	}
	m.gangMask = (uint64(1) << m.gangBits) - 1
	m.restMask = (uint64(1) << m.restBits) - 1
	m.selMask = (uint64(1) << m.selBits) - 1
	m.slotMask = (uint64(1) << m.slotBits) - 1
	return m, nil
}

func gangBitsFor(gangSize int) (int, error) {
	switch gangSize {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("mapping: unsupported gang size %d (want 1, 2, 4, or 8)", gangSize)
}

// Name implements Mapper.
func (m *LargeStride) Name() string {
	return fmt.Sprintf("LargeStride(GS%d)", 1<<m.gangBits)
}

// Map implements Mapper: the top pBits of the gang address become the
// gang-in-row, and the remaining (spatially local) bits become the global
// row, so consecutive gangs land in consecutive rows; the bank-select bits
// are XOR-hashed with the row bits as in the Intel mappings.
func (m *LargeStride) Map(line uint64) uint64 {
	lig := line & m.gangMask
	gang := line >> m.gangBits
	top := gang >> m.restBits // top pBits
	rest := gang & m.restMask
	rest = m.bankHash(rest)
	slot := top<<m.gangBits | lig
	return rest<<m.slotBits | slot
}

// bankHash XORs the row bits of a global row index into its bank-select
// bits; it is an involution.
func (m *LargeStride) bankHash(globalRow uint64) uint64 {
	sel := globalRow & m.selMask
	row := globalRow >> m.selBits
	sel ^= xorFold(row, m.selBits) & m.selMask
	return row<<m.selBits | sel
}

// Unmap implements Inverter.
func (m *LargeStride) Unmap(phys uint64) uint64 {
	slot := phys & m.slotMask
	rest := m.bankHash(phys >> m.slotBits)
	lig := slot & m.gangMask
	top := slot >> m.gangBits
	gang := top<<m.restBits | rest
	return gang<<m.gangBits | lig
}

// MapBatch implements BatchMapper.
func (m *LargeStride) MapBatch(lines, phys []uint64) {
	phys = phys[:len(lines)]
	for i, line := range lines {
		phys[i] = m.Map(line)
	}
}

// UnmapBatch implements BatchInverter.
func (m *LargeStride) UnmapBatch(phys, lines []uint64) {
	lines = lines[:len(phys)]
	for i, p := range phys {
		lines[i] = m.Unmap(p)
	}
}

// Every baseline mapper provides the full translation surface.
var (
	_ FullMapper = Sequential{}
	_ FullMapper = (*CoffeeLake)(nil)
	_ FullMapper = (*Skylake)(nil)
	_ FullMapper = (*MOP)(nil)
	_ FullMapper = (*LargeStride)(nil)
)
