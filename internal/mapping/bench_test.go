package mapping

import (
	"testing"

	"rubix/internal/geom"
)

func benchMapper(b *testing.B, m Mapper) {
	b.Helper()
	g := geom.DDR4_16GB()
	mask := g.TotalLines() - 1
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= m.Map(uint64(i) & mask)
	}
	_ = sink
}

func BenchmarkMapSequential(b *testing.B) { benchMapper(b, NewSequential()) }

func BenchmarkMapCoffeeLake(b *testing.B) {
	m, err := NewCoffeeLake(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapper(b, m)
}

func BenchmarkMapSkylake(b *testing.B) {
	m, err := NewSkylake(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapper(b, m)
}

func BenchmarkMapMOP(b *testing.B) {
	m, err := NewMOP(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapper(b, m)
}

func BenchmarkMapLargeStride(b *testing.B) {
	m, err := NewLargeStride(geom.DDR4_16GB(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchMapper(b, m)
}
