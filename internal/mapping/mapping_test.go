package mapping

import (
	"testing"
	"testing/quick"

	"rubix/internal/geom"
)

func mustCoffeeLake(t testing.TB, g geom.Geometry) *CoffeeLake {
	t.Helper()
	m, err := NewCoffeeLake(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustMOP(t testing.TB, g geom.Geometry) *MOP {
	t.Helper()
	m, err := NewMOP(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allMappers(t *testing.T, g geom.Geometry) []FullMapper {
	t.Helper()
	sky, err := NewSkylake(g)
	if err != nil {
		t.Fatal(err)
	}
	ls1, err := NewLargeStride(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls4, err := NewLargeStride(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []FullMapper{
		NewSequential(),
		mustCoffeeLake(t, g),
		sky,
		mustMOP(t, g),
		ls1,
		ls4,
	}
}

func TestRoundTripAllMappers(t *testing.T) {
	for _, g := range []geom.Geometry{geom.DDR4_16GB(), geom.DDR4_32GB2Ch(), geom.DDR4_32GB4Ch()} {
		for _, m := range allMappers(t, g) {
			f := func(raw uint64) bool {
				line := raw & (g.TotalLines() - 1)
				phys := m.Map(line)
				return phys < g.TotalLines() && m.Unmap(phys) == line
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
				t.Fatalf("%s on %v: %v", m.Name(), g, err)
			}
		}
	}
}

func TestBijectionDense(t *testing.T) {
	// Exhaustively check a dense sub-range for collisions through each
	// mapping on the baseline geometry.
	g := geom.DDR4_16GB()
	for _, m := range allMappers(t, g) {
		seen := make(map[uint64]uint64, 1<<16)
		for line := uint64(0); line < 1<<16; line++ {
			p := m.Map(line)
			if prev, dup := seen[p]; dup {
				t.Fatalf("%s: Map(%d) == Map(%d) == %#x", m.Name(), line, prev, p)
			}
			seen[p] = line
		}
	}
}

func TestCoffeeLakeRowPlacement(t *testing.T) {
	// §2.3: 128 consecutive lines (two 4 KB pages) share a row.
	g := geom.DDR4_16GB()
	m := mustCoffeeLake(t, g)
	for block := uint64(0); block < 64; block++ {
		base := block * 128
		row := g.GlobalRow(m.Map(base))
		for i := uint64(1); i < 128; i++ {
			if g.GlobalRow(m.Map(base+i)) != row {
				t.Fatalf("line %d of block %d left its row", i, block)
			}
		}
		if g.GlobalRow(m.Map(base+128)) == row {
			t.Fatalf("block %d+1 shares a row with block %d", block, block)
		}
	}
}

func TestCoffeeLakeBankHashSpreadsBlocks(t *testing.T) {
	// Consecutive 128-line blocks should spread across banks.
	g := geom.DDR4_16GB()
	m := mustCoffeeLake(t, g)
	banks := map[int]bool{}
	for block := uint64(0); block < 16; block++ {
		banks[g.Decode(m.Map(block*128)).Bank] = true
	}
	if len(banks) < 8 {
		t.Fatalf("16 consecutive blocks use only %d banks", len(banks))
	}
}

func TestSkylakePairInterleaving(t *testing.T) {
	// §2.3: lines 0,1,4,5,... of a page share a row in one bank;
	// lines 2,3,6,7,... share a row in another.
	g := geom.DDR4_16GB()
	m, err := NewSkylake(g)
	if err != nil {
		t.Fatal(err)
	}
	evenRow := g.GlobalRow(m.Map(0))
	oddRow := g.GlobalRow(m.Map(2))
	if evenRow == oddRow {
		t.Fatal("line pairs 0-1 and 2-3 should be in different rows")
	}
	for i := uint64(0); i < 64; i++ {
		row := g.GlobalRow(m.Map(i))
		want := evenRow
		if i>>1&1 == 1 {
			want = oddRow
		}
		if row != want {
			t.Fatalf("line %d in row %d, want %d", i, row, want)
		}
	}
}

func TestSkylakeFourPagesPerRow(t *testing.T) {
	// §2.3: the contents of four consecutive pages co-reside in a row, so a
	// row receives 32 lines of each page.
	g := geom.DDR4_16GB()
	m, err := NewSkylake(g)
	if err != nil {
		t.Fatal(err)
	}
	rowCount := map[uint64]int{}
	for line := uint64(0); line < 4*64; line++ { // four pages
		rowCount[g.GlobalRow(m.Map(line))]++
	}
	if len(rowCount) != 2 {
		t.Fatalf("four pages map to %d rows, want 2", len(rowCount))
	}
	for row, n := range rowCount {
		if n != 128 {
			t.Fatalf("row %d holds %d of the four pages' lines, want 128", row, n)
		}
	}
}

func TestMOPFourLinesPerPagePerRow(t *testing.T) {
	// §7.1: MOP places only four lines of a 4 KB page in the same row, but
	// gangs at the same offset of consecutive pages co-reside.
	g := geom.DDR4_16GB()
	m := mustMOP(t, g)
	pageRows := map[uint64]int{}
	for i := uint64(0); i < 64; i++ { // one page
		pageRows[g.GlobalRow(m.Map(i))]++
	}
	for row, n := range pageRows {
		if n != 4 {
			t.Fatalf("row %d holds %d lines of the page, want 4 (MOP)", row, n)
		}
	}
	// Same gang slot of consecutive pages shares a row (spatial correlation
	// survives — MOP's weakness).
	r0 := g.GlobalRow(m.Map(0))
	r1 := g.GlobalRow(m.Map(64)) // line 0 of next page
	if r0 != r1 {
		t.Fatal("MOP should co-locate gang 0 of consecutive pages")
	}
}

func TestLargeStrideCoResidencyDistance(t *testing.T) {
	// §6.1: gangs co-resident in a row are strided by memory-size/gangs-per-
	// row (512 MB for 16 GB, 32 gangs per row at GS4).
	g := geom.DDR4_16GB()
	m, err := NewLargeStride(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	row0 := g.GlobalRow(m.Map(0))
	// Consecutive gangs must not share the row.
	if g.GlobalRow(m.Map(4)) == row0 {
		t.Fatal("consecutive gangs share a row under large-stride")
	}
	// The gang 512 MB away (2^23 lines) should land in the same row.
	const strideLines = 512 << 20 / 64
	if g.GlobalRow(m.Map(strideLines)) != row0 {
		t.Fatal("gang at 512 MB stride should co-reside")
	}
	// Lines within a gang stay together.
	for i := uint64(1); i < 4; i++ {
		if g.GlobalRow(m.Map(i)) != row0 {
			t.Fatalf("line %d escaped its gang's row", i)
		}
	}
}

func TestLargeStrideRejectsBadGang(t *testing.T) {
	g := geom.DDR4_16GB()
	if _, err := NewLargeStride(g, 3); err == nil {
		t.Fatal("gang size 3 should be rejected")
	}
	if _, err := NewLargeStride(g, 256); err == nil {
		t.Fatal("gang larger than a row should be rejected")
	}
}

func TestSkylakeRequiresBanks(t *testing.T) {
	g, err := geom.New(1, 1, 1, 1024, 8192, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSkylake(g); err == nil {
		t.Fatal("Skylake on a single-bank geometry should be rejected")
	}
}

func TestXorFold(t *testing.T) {
	if xorFold(0, 4) != 0 {
		t.Fatal("xorFold(0) != 0")
	}
	if got := xorFold(0xF0F, 4); got != 0xF^0xF0F&0xF {
		// 0xF0F folds as 0xF ^ 0x0 ^ 0xF... compute directly:
		want := uint64(0xF ^ 0x0 ^ 0xF)
		if got != want {
			t.Fatalf("xorFold(0xF0F, 4) = %#x, want %#x", got, want)
		}
	}
	if xorFold(0xABCD, 0) != 0 {
		t.Fatal("zero width must fold to 0")
	}
}

// --- cross-mapper bijection/involution property table -------------------------
//
// Every mapper × {baseline, small, 2^20-line, adversarial} geometry:
// exhaustive bijection verification where the line space is <= 2^20,
// deterministic sampling above, explicit rejection where the mapper cannot
// support the geometry. The sub-4-line geometry is the regression for the
// MOP gangsPerRow uint underflow: before validation, NewMOP accepted it and
// produced a non-bijective garbage mapping.
func TestCrossMapperBijectionPropertyTable(t *testing.T) {
	mustGeom := func(ch, rk, bk, rows, rowB, lineB int) geom.Geometry {
		t.Helper()
		g, err := geom.New(ch, rk, bk, rows, rowB, lineB)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	geoms := []struct {
		name string
		g    geom.Geometry
	}{
		{"baseline-16GB", geom.DDR4_16GB()},                    // 2^28 lines, sampled
		{"small-1Ki", mustGeom(1, 1, 2, 64, 512, 64)},          // 2^10 lines, exhaustive
		{"pow20-64MiB", mustGeom(1, 1, 16, 512, 8192, 64)},     // 2^20 lines, exhaustive
		{"odd-2ch-64Ki", mustGeom(2, 1, 8, 128, 2048, 64)},     // 2^16 lines, exhaustive
		{"sub4-lines-per-row", mustGeom(1, 1, 2, 32, 128, 64)}, // 2 lines/row: MOP+Skylake reject
	}
	// rejects names the geometries each constructor must refuse.
	mappers := []struct {
		name    string
		build   func(g geom.Geometry) (FullMapper, error)
		rejects map[string]bool
	}{
		{"sequential", func(g geom.Geometry) (FullMapper, error) { return NewSequential(), nil }, nil},
		{"coffeelake", func(g geom.Geometry) (FullMapper, error) { return NewCoffeeLake(g) }, nil},
		{"skylake", func(g geom.Geometry) (FullMapper, error) { return NewSkylake(g) },
			map[string]bool{"sub4-lines-per-row": true}},
		{"mop", func(g geom.Geometry) (FullMapper, error) { return NewMOP(g) },
			map[string]bool{"sub4-lines-per-row": true}},
		{"largestride-gs1", func(g geom.Geometry) (FullMapper, error) { return NewLargeStride(g, 1) }, nil},
		{"largestride-gs4", func(g geom.Geometry) (FullMapper, error) { return NewLargeStride(g, 4) },
			map[string]bool{"sub4-lines-per-row": true}},
	}
	for _, ge := range geoms {
		for _, mc := range mappers {
			t.Run(mc.name+"/"+ge.name, func(t *testing.T) {
				m, err := mc.build(ge.g)
				if mc.rejects[ge.name] {
					if err == nil {
						t.Fatalf("%s must reject geometry %v", mc.name, ge.g)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				verifyBijection(t, m, ge.g)
			})
		}
	}
}

// verifyBijection checks that m is a bijection over [0, TotalLines()):
// exhaustively (with a seen-bitmap, so collisions are caught, not just
// round-trip failures) when the space is <= 2^20 lines, sampled above.
func verifyBijection(t *testing.T, m FullMapper, g geom.Geometry) {
	t.Helper()
	total := g.TotalLines()
	if total <= 1<<20 {
		seen := make([]bool, total)
		for line := uint64(0); line < total; line++ {
			phys := m.Map(line)
			if phys >= total {
				t.Fatalf("%s: Map(%#x) = %#x escapes [0, %#x)", m.Name(), line, phys, total)
			}
			if seen[phys] {
				t.Fatalf("%s: physical line %#x hit twice (line %#x)", m.Name(), phys, line)
			}
			seen[phys] = true
			if back := m.Unmap(phys); back != line {
				t.Fatalf("%s: Unmap(Map(%#x)) = %#x", m.Name(), line, back)
			}
		}
		return
	}
	mask := total - 1
	for i := uint64(0); i < 1<<16; i++ {
		line := i * 0x9e37_79b9_7f4a_7c15 & mask
		phys := m.Map(line)
		if phys >= total {
			t.Fatalf("%s: Map(%#x) = %#x escapes [0, %#x)", m.Name(), line, phys, total)
		}
		if back := m.Unmap(phys); back != line {
			t.Fatalf("%s: Unmap(Map(%#x)) = %#x", m.Name(), line, back)
		}
	}
}

// TestXORMappersAreInvolutions: Sequential and CoffeeLake translate by
// XOR-ing a function of untouched bits, so Map is its own inverse.
func TestXORMappersAreInvolutions(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, m := range []Mapper{NewSequential(), mustCoffeeLake(t, g)} {
		mask := g.TotalLines() - 1
		for i := uint64(0); i < 1<<14; i++ {
			line := i * 0x9e37_79b9_7f4a_7c15 & mask
			if m.Map(m.Map(line)) != line {
				t.Fatalf("%s: Map(Map(%#x)) != identity", m.Name(), line)
			}
		}
	}
}

// TestRejectNonPowerOfTwoRows: rowBits silently truncates a non-power-of-two
// RowsPerBank, so every validated constructor must reject it.
func TestRejectNonPowerOfTwoRows(t *testing.T) {
	g := geom.DDR4_16GB()
	g.RowsPerBank = 3000 // mutate a copy: geom.New would refuse this
	if _, err := NewCoffeeLake(g); err == nil {
		t.Fatal("CoffeeLake accepted non-power-of-two RowsPerBank")
	}
	if _, err := NewSkylake(g); err == nil {
		t.Fatal("Skylake accepted non-power-of-two RowsPerBank")
	}
	if _, err := NewMOP(g); err == nil {
		t.Fatal("MOP accepted non-power-of-two RowsPerBank")
	}
	if _, err := NewLargeStride(g, 4); err == nil {
		t.Fatal("LargeStride accepted non-power-of-two RowsPerBank")
	}
}
