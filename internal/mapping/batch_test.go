package mapping

import (
	"testing"

	"rubix/internal/geom"
)

// --- batch-vs-scalar differential oracle --------------------------------------
//
// The MapBatch/UnmapBatch contract (DESIGN.md §12): a batch call is
// element-for-element identical to the scalar loop it replaces. Every mapper
// is checked over exhaustive small geometries and a golden-ratio-stride
// sample of the baseline 2^28-line space, same coverage pattern as
// TestCrossMapperBijectionPropertyTable.

// batchLines builds the probe set for a geometry: every line when the space
// is <= 2^16, a 2^14-point golden-ratio-stride sample above.
func batchLines(g geom.Geometry) []uint64 {
	total := g.TotalLines()
	if total <= 1<<16 {
		lines := make([]uint64, total)
		for i := range lines {
			lines[i] = uint64(i)
		}
		return lines
	}
	mask := total - 1
	lines := make([]uint64, 1<<14)
	for i := range lines {
		lines[i] = uint64(i) * 0x9e37_79b9_7f4a_7c15 & mask
	}
	return lines
}

// verifyBatchMatchesScalar drives both directions of the batch surface
// against the scalar loop on the same mapper.
func verifyBatchMatchesScalar(t *testing.T, m FullMapper, g geom.Geometry) {
	t.Helper()
	lines := batchLines(g)
	phys := make([]uint64, len(lines))
	m.MapBatch(lines, phys)
	for i, line := range lines {
		if want := m.Map(line); phys[i] != want {
			t.Fatalf("%s: MapBatch[%d](%#x) = %#x, scalar Map = %#x",
				m.Name(), i, line, phys[i], want)
		}
	}
	back := make([]uint64, len(phys))
	m.UnmapBatch(phys, back)
	for i, p := range phys {
		if want := m.Unmap(p); back[i] != want {
			t.Fatalf("%s: UnmapBatch[%d](%#x) = %#x, scalar Unmap = %#x",
				m.Name(), i, p, back[i], want)
		}
		if back[i] != lines[i] {
			t.Fatalf("%s: batch round trip lost line %#x (got %#x)",
				m.Name(), lines[i], back[i])
		}
	}
}

// TestMapBatchMatchesScalar: the differential oracle for every baseline
// mapper × geometry combination the property table covers.
func TestMapBatchMatchesScalar(t *testing.T) {
	mustGeom := func(ch, rk, bk, rows, rowB, lineB int) geom.Geometry {
		t.Helper()
		g, err := geom.New(ch, rk, bk, rows, rowB, lineB)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	geoms := []struct {
		name string
		g    geom.Geometry
	}{
		{"baseline-16GB", geom.DDR4_16GB()},
		{"2ch-32GB", geom.DDR4_32GB2Ch()},
		{"4ch-32GB", geom.DDR4_32GB4Ch()},
		{"small-1Ki", mustGeom(1, 1, 2, 64, 512, 64)},
		{"odd-2ch-64Ki", mustGeom(2, 1, 8, 128, 2048, 64)},
	}
	mappers := []struct {
		name    string
		build   func(g geom.Geometry) (FullMapper, error)
		rejects map[string]bool
	}{
		{"sequential", func(g geom.Geometry) (FullMapper, error) { return NewSequential(), nil }, nil},
		{"coffeelake", func(g geom.Geometry) (FullMapper, error) { return NewCoffeeLake(g) }, nil},
		{"skylake", func(g geom.Geometry) (FullMapper, error) { return NewSkylake(g) }, nil},
		{"mop", func(g geom.Geometry) (FullMapper, error) { return NewMOP(g) }, nil},
		{"largestride-gs1", func(g geom.Geometry) (FullMapper, error) { return NewLargeStride(g, 1) }, nil},
		{"largestride-gs4", func(g geom.Geometry) (FullMapper, error) { return NewLargeStride(g, 4) }, nil},
	}
	for _, ge := range geoms {
		for _, mc := range mappers {
			t.Run(mc.name+"/"+ge.name, func(t *testing.T) {
				m, err := mc.build(ge.g)
				if mc.rejects[ge.name] {
					if err == nil {
						t.Fatalf("%s must reject geometry %v", mc.name, ge.g)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				verifyBatchMatchesScalar(t, m, ge.g)
			})
		}
	}
}

// TestMapBatchEmptyAndSingle: degenerate batch sizes must be safe no-ops /
// exact scalar equivalents.
func TestMapBatchEmptyAndSingle(t *testing.T) {
	g := geom.DDR4_16GB()
	for _, m := range allMappers(t, g) {
		m.MapBatch(nil, nil) // must not panic
		lines := []uint64{12345}
		phys := []uint64{0}
		m.MapBatch(lines, phys)
		if phys[0] != m.Map(12345) {
			t.Fatalf("%s: single-element batch diverged from scalar", m.Name())
		}
	}
}

// mapOnly is a Mapper with no batch surface, standing in for external
// implementations that predate the batch API.
type mapOnly struct{}

func (mapOnly) Name() string          { return "map-only" }
func (mapOnly) Map(line uint64) uint64 { return line ^ 0x5a5a }

// TestBatchedAdapter: Batched must hand back native implementations
// unchanged and synthesize a scalar loop for Map-only mappers.
func TestBatchedAdapter(t *testing.T) {
	g := geom.DDR4_16GB()
	native := mustCoffeeLake(t, g)
	if got := Batched(native); got != BatchedMapper(native) {
		t.Fatal("Batched(native BatchedMapper) must return the mapper itself")
	}
	wrapped := Batched(mapOnly{})
	lines := []uint64{0, 1, 0xdead, 0xbeef}
	phys := make([]uint64, len(lines))
	wrapped.MapBatch(lines, phys)
	for i, line := range lines {
		if phys[i] != line^0x5a5a {
			t.Fatalf("adapter MapBatch[%d] = %#x, want %#x", i, phys[i], line^0x5a5a)
		}
	}
}

// --- batch benchmarks ---------------------------------------------------------

const benchBatch = 256

func benchMapBatch(b *testing.B, m FullMapper) {
	b.Helper()
	g := geom.DDR4_16GB()
	mask := g.TotalLines() - 1
	lines := make([]uint64, benchBatch)
	phys := make([]uint64, benchBatch)
	for i := range lines {
		lines[i] = uint64(i) * 0x9e37_79b9_7f4a_7c15 & mask
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MapBatch(lines, phys)
	}
	benchSink ^= phys[0]
}

var benchSink uint64

func BenchmarkMapBatchSequential(b *testing.B) { benchMapBatch(b, NewSequential()) }

func BenchmarkMapBatchCoffeeLake(b *testing.B) {
	m, err := NewCoffeeLake(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapBatch(b, m)
}

func BenchmarkMapBatchSkylake(b *testing.B) {
	m, err := NewSkylake(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapBatch(b, m)
}

func BenchmarkMapBatchMOP(b *testing.B) {
	m, err := NewMOP(geom.DDR4_16GB())
	if err != nil {
		b.Fatal(err)
	}
	benchMapBatch(b, m)
}

func BenchmarkMapBatchLargeStride(b *testing.B) {
	m, err := NewLargeStride(geom.DDR4_16GB(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchMapBatch(b, m)
}
