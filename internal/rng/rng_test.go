package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Mix64 is built from invertible steps; spot-check injectivity over a
	// dense set of structured inputs.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := Mix64(i)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, v)
		}
		seen[v] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	flips := 0
	trials := 0
	for i := uint64(1); i < 1000; i++ {
		base := Mix64(i)
		for b := uint(0); b < 64; b += 7 {
			diff := base ^ Mix64(i^(1<<b))
			flips += popcount(diff)
			trials++
		}
	}
	mean := float64(flips) / float64(trials)
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean %f bits, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(7), NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must yield the same sequence")
		}
	}
	c := NewSplitMix64(8)
	if NewSplitMix64(7).Next() == c.Next() {
		t.Fatal("different seeds should diverge immediately")
	}
}

func TestXoshiroUint64nRange(t *testing.T) {
	x := NewXoshiro256(1)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := x.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroUint64nUniform(t *testing.T) {
	x := NewXoshiro256(99)
	const n = 10
	const draws = 100000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[x.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	for i := 0; i < 100000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	x := NewXoshiro256(17)
	for _, mean := range []float64{2, 10, 100, 1000} {
		sum := 0
		const draws = 200000
		for i := 0; i < draws; i++ {
			sum += x.Geometric(mean)
		}
		got := float64(sum) / draws
		if got < 0.93*mean || got > 1.07*mean {
			t.Fatalf("Geometric(%v) sample mean %v, want within 7%%", mean, got)
		}
	}
}

func TestGeometricMinimumOne(t *testing.T) {
	x := NewXoshiro256(4)
	for i := 0; i < 10000; i++ {
		if x.Geometric(1.5) < 1 {
			t.Fatal("Geometric must return >= 1")
		}
	}
	if x.Geometric(0.5) != 1 {
		t.Fatal("mean <= 1 must return exactly 1")
	}
}

func TestZipfSkew(t *testing.T) {
	x := NewXoshiro256(5)
	z := NewZipf(x, 100, 1.0)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// With s=1 the top rank should draw roughly twice rank 2 and far more
	// than rank 50.
	if counts[0] < counts[1] {
		t.Fatalf("rank 0 (%d) should beat rank 1 (%d)", counts[0], counts[1])
	}
	ratio := float64(counts[0]) / float64(counts[49]+1)
	if ratio < 25 {
		t.Fatalf("rank0/rank49 ratio %v, want ~50 for s=1", ratio)
	}
}

func TestZipfCoversDomain(t *testing.T) {
	x := NewXoshiro256(6)
	z := NewZipf(x, 8, 0.2)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 8 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("low-skew Zipf over 8 ranks should hit all of them, got %d", len(seen))
	}
}

func TestPanics(t *testing.T) {
	x := NewXoshiro256(1)
	for name, f := range map[string]func(){
		"Uint64n(0)": func() { x.Uint64n(0) },
		"Intn(0)":    func() { x.Intn(0) },
		"NewZipf(0)": func() { NewZipf(x, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}
