// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator. All state is explicit: there are
// no package-level generators, so two simulations constructed with the same
// seeds replay identically regardless of goroutine scheduling.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator, also used to seed others and as a
//     keyed bit mixer (its finalizer is a high-quality 64→64 hash).
//   - Xoshiro256: xoshiro256**, the main workhorse for workload generation.
package rng

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea, and Flood. The zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}

// Mix64 applies the splitmix64 finalizer to x. It is a bijective 64-bit
// mixing function with excellent avalanche behaviour, usable as a keyed hash
// via Mix64(x ^ key).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, as recommended by the xoshiro authors. Any seed, including 0,
// yields a valid non-degenerate state.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		//lint:allow panicpolicy programmer-error guard on the hot sampling path, mirroring math/rand's contract
		panic("rng: Uint64n with n == 0")
	}
	// Plain rejection keeps the distribution exactly uniform and is simple
	// to verify. The retry probability is below 1/2 per iteration.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := x.Next()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		//lint:allow panicpolicy programmer-error guard on the hot sampling path, mirroring math/rand's contract
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Geometric returns a sample from the geometric distribution with mean m
// (number of trials until the first success, minimum 1). It is used for
// miss inter-arrival gaps: a workload with MPKI k has mean gap 1000/k.
func (x *Xoshiro256) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	u := x.Float64()
	if u <= 0 {
		u = 1e-18
	}
	p := 1 / m
	k := int(math.Ceil(math.Log(u) / math.Log1p(-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Zipf samples from a bounded Zipf distribution over [0, n) with exponent
// s > 0 via inverse-CDF lookup on a precomputed table. Rank 0 is the most
// popular element. Memory is O(n); intended for n up to a few million.
type Zipf struct {
	cdf []float64
	rng *Xoshiro256
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s, driven by r.
// It panics if n < 1.
func NewZipf(r *Xoshiro256, n int, s float64) *Zipf {
	if n < 1 {
		//lint:allow panicpolicy programmer-error guard, mirroring math/rand's Zipf contract
		panic("rng: NewZipf with n < 1")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
