package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// LockDiscipline infers, per struct field, which mutex guards it — from the
// majority of access sites holding that mutex — and then flags the minority
// accesses performed outside the lock, plus guarded fields whose declaration
// does not record the invariant. The inference is seeded and overridden by
// explicit `// guarded by <mu>` annotations on the field declaration (doc or
// trailing comment), which always win over the majority vote; the suggested
// fix for an inferred-but-unannotated field inserts exactly that annotation,
// so `rubixlint -fix` converges in one pass.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "Infers which mutex guards each struct field from majority-locked " +
		"access sites (or a `// guarded by mu` annotation, which takes " +
		"precedence) and flags field accesses outside the lock region: " +
		"writes require the mutex held exclusively, reads accept RLock on an " +
		"RWMutex. Constructors — functions returning the owning struct type " +
		"— are exempt, since the value is not yet shared. Suppress " +
		"intentionally unsynchronized accesses with //lint:allow " +
		"lockdiscipline <why>.",
	NeedsProgram: true,
	Run:          runLockDiscipline,
}

// guardInfo is the per-field inference result: the guarding synchronizer,
// whether it came from a declaration annotation, and the vote tally.
type guardInfo struct {
	obj      types.Object // the mutex object (field or package-level var)
	declared bool         // from a `// guarded by` annotation
	locked   int          // access sites holding obj
	total    int          // all access sites
}

// guardsFor computes (once per Program) the guard map over every loaded
// package. A field is inferred guarded by mutex M when strictly more than
// half of its access sites hold M, with at least two locked sites — a single
// locked access is no pattern, and a 50/50 split is ambiguity, not
// discipline.
func (f *concFacts) guardsFor(p *Program) map[*types.Var]*guardInfo {
	if f.guardsDone {
		return f.guards
	}
	f.guardsDone = true
	f.guards = make(map[*types.Var]*guardInfo)
	for fv, info := range f.fieldDecl { // declared annotations, order-free
		if info.guardObj != nil {
			f.guards[fv] = &guardInfo{obj: info.guardObj, declared: true}
		}
	}
	counts := make(map[*types.Var]map[types.Object]int)
	totals := make(map[*types.Var]int)
	for _, fa := range f.fields {
		if !guardableField(p, f, fa.field) {
			continue
		}
		totals[fa.field]++
		eff := f.effectiveHolds(fa.holds, fa.fn, fa.spawn)
		for m := range eff {
			if counts[fa.field] == nil {
				counts[fa.field] = make(map[types.Object]int)
			}
			counts[fa.field][m]++
		}
	}
	for fv, byMu := range counts { // result keyed per field: order-free
		if f.guards[fv] != nil {
			continue // declared guard wins
		}
		var best types.Object
		bestN := 0
		cands := make([]types.Object, 0, len(byMu))
		for m := range byMu { // key extraction: sorted below
			cands = append(cands, m)
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if byMu[a] != byMu[b] {
				return byMu[a] > byMu[b]
			}
			if a.Name() != b.Name() {
				return a.Name() < b.Name()
			}
			return a.Pos() < b.Pos()
		})
		if len(cands) > 0 {
			best, bestN = cands[0], byMu[cands[0]]
		}
		if best != nil && bestN >= 2 && bestN*2 > totals[fv] {
			gi := &guardInfo{obj: best, locked: bestN, total: totals[fv]}
			// An annotation can name a guard that is not visible from the
			// declaration scope — a mutex in the struct that embeds this one
			// (Checker.mu guarding bankClock fields). Such an annotation has
			// no guardObj, but if it names the inferred guard it records the
			// same invariant, so it counts as declared.
			if info := f.fieldDecl[fv]; info != nil && info.guardObj == nil && info.guard == best.Name() {
				gi.declared = true
			}
			f.guards[fv] = gi
		}
	}
	// Fill tallies for declared guards too, so diagnostics can cite them.
	for fv, g := range f.guards {
		if g.declared {
			g.total = totals[fv]
			g.locked = counts[fv][g.obj]
		}
	}
	return f.guards
}

// guardableField reports whether the field is a candidate for guard
// inference: declared in a loaded package and not itself a synchronizer.
func guardableField(p *Program, f *concFacts, fv *types.Var) bool {
	if fv == nil || fv.Pkg() == nil || p.byPath[fv.Pkg().Path()] == nil {
		return false
	}
	if _, ok := f.fieldDecl[fv]; !ok {
		return false
	}
	switch typeName(fv.Type()) {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
		if named, ok := derefNamed(fv.Type()); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" {
			return false
		}
	}
	if declaredInPath(fv.Type(), "sync/atomic") || declaredInPath(fv.Type(), "sync") {
		return false
	}
	return true
}

// derefNamed unwraps a pointer to its named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// declaredInPath reports whether t's named form is declared in the package
// with exactly that import path.
func declaredInPath(t types.Type, path string) bool {
	return declaredIn(t, func(p string) bool { return p == path })
}

// guardIsRW reports whether the guard object is an RWMutex, whose RLock
// suffices for reads.
func guardIsRW(obj types.Object) bool {
	return typeName(obj.Type()) == "RWMutex"
}

func runLockDiscipline(pass *Pass) error {
	facts := pass.Prog.concurrency()
	guards := facts.guardsFor(pass.Prog)

	// Annotation findings: walk this package's struct declarations in source
	// order, report once per ast.Field whose (first) inferred guard is not
	// yet recorded, and attach the annotation fix.
	reported := make(map[*ast.Field]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fv, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					g := guards[fv]
					if g == nil || g.declared || reported[fld] {
						continue
					}
					reported[fld] = true
					pass.Report(name.Pos(), fmt.Sprintf(
						"field %s is guarded by %s (%d/%d access sites hold it) but the declaration does not record the invariant",
						fieldLabel(fv), g.obj.Name(), g.locked, g.total),
						annotationFix(fld, g.obj.Name()))
				}
			}
			return true
		})
	}

	// Access findings: every access in this package to a guarded field made
	// without the guard held (in the required mode).
	seen := make(map[string]bool)
	for _, fa := range facts.fields {
		if fa.pkg != pass.LintPkg {
			continue
		}
		g := guards[fa.field]
		if g == nil {
			continue
		}
		eff := facts.effectiveHolds(fa.holds, fa.fn, fa.spawn)
		okHeld := eff.holdsWrite(g.obj)
		if !fa.write && guardIsRW(g.obj) {
			okHeld = eff.holdsAny(g.obj)
		}
		if okHeld {
			continue
		}
		if isConstructorOf(pass.Prog, fa.fn, fa.field) {
			continue
		}
		key := fmt.Sprintf("%d", fa.pos)
		if seen[key] {
			continue
		}
		seen[key] = true
		verb := "read of"
		need := "held"
		if fa.write {
			verb = "write to"
			if guardIsRW(g.obj) {
				need = "held exclusively"
			}
		}
		how := fmt.Sprintf("inferred from %d/%d locked access sites", g.locked, g.total)
		if g.declared {
			how = "declared on the field"
		}
		pass.Report(fa.pos, fmt.Sprintf(
			"%s %s without %s %s (guard %s)",
			verb, fieldLabel(fa.field), g.obj.Name(), need, how))
	}
	return nil
}

// fieldLabel renders Owner.field for diagnostics.
func fieldLabel(fv *types.Var) string {
	owner := ""
	if fv.Pkg() != nil {
		owner = pkgBase(fv.Pkg().Path()) + "."
	}
	return owner + fv.Name()
}

// isConstructorOf reports whether fn returns the struct type owning the
// field — the constructor exemption: a value under construction is not yet
// shared, so its unlocked initialization is fine.
func isConstructorOf(p *Program, fn *types.Func, fv *types.Var) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	owner := ownerNamed(p, fv)
	if owner == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if n, ok := derefNamed(res.At(i).Type()); ok && n.Obj() == owner.Obj() {
			return true
		}
	}
	return false
}

// ownerNamed returns the named struct type declaring the field, if known.
func ownerNamed(p *Program, fv *types.Var) *types.Named {
	if info := p.conc.fieldDecl[fv]; info != nil {
		return info.owner
	}
	return nil
}

// annotationFix builds the `// guarded by <mu>` insertion for a field
// declaration: appended to the trailing comment when one exists, otherwise
// as a new trailing comment.
func annotationFix(fld *ast.Field, guard string) SuggestedFix {
	ann := "guarded by " + guard
	if fld.Comment != nil && len(fld.Comment.List) > 0 {
		last := fld.Comment.List[len(fld.Comment.List)-1]
		return SuggestedFix{
			Message: "record the inferred guard on the field declaration",
			Edits:   []TextEdit{{Pos: last.End(), End: last.End(), NewText: "; " + ann}},
		}
	}
	return SuggestedFix{
		Message: "record the inferred guard on the field declaration",
		Edits:   []TextEdit{{Pos: fld.End(), End: fld.End(), NewText: " // " + ann}},
	}
}
