package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Bitwidth enforces address-arithmetic discipline: a silently truncated
// line or row address fabricates or hides hot rows, the very quantity the
// evaluation measures. It flags
//
//   - shifts by a constant amount at or past the operand's bit width
//     (legal Go, but the result is always 0 — a classic width bug);
//   - constant masks with bits above the line-address domain
//     (kcipher.MaxBits = 40 bits; wider masks indicate width confusion);
//   - narrowing integer conversions (e.g. uint64→uint32) whose operand is
//     not provably in range via a constant, a mask, a right shift, or a
//     preceding comparison guard on the same expression.
var Bitwidth = &Analyzer{
	Name: "bitwidth",
	Doc:  "flag over-wide shifts, over-wide address masks, and unguarded narrowing conversions",
	Run:  runBitwidth,
}

// maxAddressBits is the widest supported physical line address
// (kcipher.MaxBits); constant masks with bits at or above it are flagged.
const maxAddressBits = 40

func runBitwidth(pass *Pass) error {
	for _, f := range pass.Files {
		guards := collectComparisonGuards(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.SHL, token.SHR:
					checkShift(pass, n.X, n.Y, n.Pos())
				case token.AND, token.AND_NOT:
					checkMask(pass, n)
				}
			case *ast.AssignStmt:
				if n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN {
					checkShift(pass, n.Lhs[0], n.Rhs[0], n.Pos())
				}
			case *ast.CallExpr:
				checkNarrowing(pass, n, guards)
			}
			return true
		})
	}
	return nil
}

// intWidth returns the bit width of an integer type (int/uint/uintptr count
// as 64: the simulator targets 64-bit hosts, and assuming less would flag
// every int conversion). The second result is false for non-integers.
func intWidth(t types.Type) (int, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0, false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8, true
	case types.Int16, types.Uint16:
		return 16, true
	case types.Int32, types.Uint32:
		return 32, true
	default: // Int64, Uint64, Int, Uint, Uintptr, UntypedInt
		return 64, true
	}
}

func isSigned(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned == 0
}

// constUint returns e's constant value as a uint64 if it has one.
func constUint(pass *Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	u, exact := constant.Uint64Val(v)
	return u, exact
}

func checkShift(pass *Pass, x, y ast.Expr, pos token.Pos) {
	w, ok := intWidth(pass.TypeOf(x))
	if !ok {
		return
	}
	// A constant left operand adopts the shift's contextual type; flagging
	// it against an assumed 64-bit width would be wrong, so skip constants.
	if tv, ok := pass.Info.Types[x]; ok && tv.Value != nil {
		return
	}
	amt, ok := constUint(pass, y)
	if ok && amt >= uint64(w) {
		pass.Reportf(pos, "shift by %d on a %d-bit operand always yields 0", amt, w)
	}
}

func checkMask(pass *Pass, n *ast.BinaryExpr) {
	// Identify the constant side; both-constant expressions fold at compile
	// time and are not address masks.
	mask, ok := constUint(pass, n.Y)
	operand := n.X
	if !ok {
		mask, ok = constUint(pass, n.X)
		operand = n.Y
	}
	if !ok {
		return
	}
	if tv, okc := pass.Info.Types[operand]; okc && tv.Value != nil {
		return
	}
	if _, okw := intWidth(pass.TypeOf(operand)); !okw {
		return
	}
	if mask != ^uint64(0) && mask>>maxAddressBits != 0 {
		pass.Reportf(n.Pos(), "mask %#x has bits above the %d-bit line-address domain", mask, maxAddressBits)
	}
}

// checkNarrowing flags T(expr) when T is a narrower integer type than expr's
// and the operand is not provably in range.
func checkNarrowing(pass *Pass, call *ast.CallExpr, guards []guard) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dstW, ok := intWidth(tv.Type)
	if !ok {
		return
	}
	arg := call.Args[0]
	srcT := pass.TypeOf(arg)
	srcW, ok := intWidth(srcT)
	if !ok || dstW >= srcW {
		return
	}
	// Effective width of the destination's value range: a signed target
	// loses one bit to the sign.
	effDst := dstW
	if isSigned(tv.Type) {
		effDst--
	}
	if u, isConst := constUint(pass, arg); isConst {
		if effDst >= 64 || u>>effDst == 0 {
			return
		}
	}
	if maxBits(pass, arg) <= effDst {
		return
	}
	if guardedBefore(pass, guards, arg, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "narrowing conversion from %d-bit %s to %d-bit %s may truncate an address; mask, range-check, or annotate with //lint:allow bitwidth <why>",
		srcW, srcT, dstW, tv.Type)
}

// maxBits conservatively bounds the number of significant bits of e: masks
// and right shifts narrow the bound, everything else falls back to the
// operand's type width.
func maxBits(pass *Pass, e ast.Expr) int {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return maxBits(pass, x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.AND:
			b := 64
			if m, ok := constUint(pass, x.Y); ok {
				b = bitsOf(m)
			} else if m, ok := constUint(pass, x.X); ok {
				b = bitsOf(m)
			}
			return min(b, maxBitsOperands(pass, x))
		case token.SHR:
			if amt, ok := constUint(pass, x.Y); ok {
				b := maxBits(pass, x.X) - int(min(amt, 64))
				return max(b, 0)
			}
		case token.REM:
			if m, ok := constUint(pass, x.Y); ok && m > 0 {
				return bitsOf(m - 1)
			}
		}
	}
	if u, ok := constUint(pass, e); ok {
		return bitsOf(u)
	}
	if w, ok := intWidth(pass.TypeOf(e)); ok {
		return w
	}
	return 64
}

func maxBitsOperands(pass *Pass, x *ast.BinaryExpr) int {
	return min(maxBits(pass, x.X), maxBits(pass, x.Y))
}

func bitsOf(u uint64) int {
	n := 0
	for u != 0 {
		u >>= 1
		n++
	}
	return n
}

// guard records one comparison in the file: any expression compared with a
// relational operator. guardedBefore accepts a conversion whose operand was
// compared earlier in the same function, the "explicit range guard" pattern:
//
//	if v > math.MaxUint32 { return err }
//	u := uint32(v)
type guard struct {
	exprText string
	pos      token.Pos
	fn       ast.Node
}

func collectComparisonGuards(pass *Pass, f *ast.File) []guard {
	var guards []guard
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				guards = append(guards,
					guard{exprText: exprText(pass, be.X), pos: be.Pos(), fn: fd},
					guard{exprText: exprText(pass, be.Y), pos: be.Pos(), fn: fd})
			}
			return true
		})
	}
	return guards
}

func guardedBefore(pass *Pass, guards []guard, arg ast.Expr, at token.Pos) bool {
	text := exprText(pass, arg)
	if text == "" {
		return false
	}
	for _, g := range guards {
		if g.pos < at && g.exprText == text && g.fn.Pos() <= at && at <= g.fn.End() {
			return true
		}
	}
	return false
}

// exprText renders small expressions (identifiers and selector chains) for
// textual guard matching; composite expressions return "" and never match.
func exprText(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprText(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(pass, x.X)
	}
	return ""
}
