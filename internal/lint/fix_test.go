package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rubix/internal/lint"
)

// TestAnnotationFixIdempotent applies lockdiscipline's `// guarded by`
// annotation fix to a scratch copy of the golden package and verifies the
// contract printed on SuggestedFix: after one -fix pass the annotation
// findings are gone and a second pass has nothing left to edit.
func TestAnnotationFixIdempotent(t *testing.T) {
	root := t.TempDir()
	pkgDir := filepath.Join(root, "lockdiscipline")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join("testdata", "src", "lockdiscipline")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	run := func() ([]lint.Diagnostic, map[string][]byte) {
		pkgs, err := lint.NewLoader(root, "").LoadAll()
		if err != nil {
			t.Fatalf("loading scratch copy: %v", err)
		}
		diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.LockDiscipline}, lint.EverythingScope)
		if err != nil {
			t.Fatal(err)
		}
		var fset = pkgs[0].Fset
		contents, _, _, err := lint.ApplyFixes(fset, diags)
		if err != nil {
			t.Fatal(err)
		}
		return diags, contents
	}

	diags, contents := run()
	annotations := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "does not record the invariant") {
			annotations++
		}
	}
	if annotations == 0 {
		t.Fatal("scratch copy produced no annotation findings; fixture drifted")
	}
	if len(contents) == 0 {
		t.Fatal("annotation fixes produced no edits")
	}
	patched := false
	for file, data := range contents {
		if strings.Contains(string(data), "; guarded by mu") {
			patched = true
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !patched {
		t.Fatal("patched sources missing the inserted `; guarded by mu` annotation")
	}

	diags2, contents2 := run()
	for _, d := range diags2 {
		if strings.Contains(d.Message, "does not record the invariant") {
			t.Errorf("annotation finding survived the fix: %s", d)
		}
	}
	if len(contents2) != 0 {
		t.Errorf("second -fix pass still wants to edit %d file(s); fix not idempotent", len(contents2))
	}
	// The access findings (which carry no fix) must be unchanged by the
	// annotation pass: it documents the invariant, it does not alter code.
	accesses := func(ds []lint.Diagnostic) int {
		n := 0
		for _, d := range ds {
			if strings.Contains(d.Message, "without mu held") || strings.Contains(d.Message, "without rw held") {
				n++
			}
		}
		return n
	}
	if a, b := accesses(diags), accesses(diags2); a != b {
		t.Errorf("access findings changed across the fix: %d → %d", a, b)
	}
}

// TestAddrAnnotationFixIdempotent applies addrspace's `// addr:` annotation
// fix to a scratch copy of the geom golden package and verifies the same
// convergence contract as the lockdiscipline fix: one pass annotates the
// inferred field, the second pass finds nothing left to edit.
func TestAddrAnnotationFixIdempotent(t *testing.T) {
	root := t.TempDir()
	pkgDir := filepath.Join(root, "geom")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join("testdata", "src", "geom")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	run := func() ([]lint.Diagnostic, map[string][]byte) {
		pkgs, err := lint.NewLoader(root, "").LoadAll()
		if err != nil {
			t.Fatalf("loading scratch copy: %v", err)
		}
		diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.AddrSpace}, lint.EverythingScope)
		if err != nil {
			t.Fatal(err)
		}
		contents, _, _, err := lint.ApplyFixes(pkgs[0].Fset, diags)
		if err != nil {
			t.Fatal(err)
		}
		return diags, contents
	}

	diags, contents := run()
	inferred := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "does not record the domain") {
			inferred++
		}
	}
	if inferred == 0 {
		t.Fatal("scratch copy produced no inference findings; fixture drifted")
	}
	if len(contents) == 0 {
		t.Fatal("annotation fixes produced no edits")
	}
	patched := false
	for file, data := range contents {
		if strings.Contains(string(data), "addr: row") {
			patched = true
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !patched {
		t.Fatal("patched sources missing the inserted `addr: row` annotation")
	}

	diags2, contents2 := run()
	for _, d := range diags2 {
		if strings.Contains(d.Message, "does not record the domain") {
			t.Errorf("inference finding survived the fix: %s", d)
		}
	}
	if len(contents2) != 0 {
		t.Errorf("second -fix pass still wants to edit %d file(s); fix not idempotent", len(contents2))
	}
}
