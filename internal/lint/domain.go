package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file is the domain layer of the value-flow engine: a small powerset
// lattice over the *semantic* domains a bare integer can live in. The bit
// bound of graph.go answers "how many bits survive"; the domain lattice
// answers "which address space (or time unit) is this number in". Rubix's
// correctness argument is exactly a domain discipline — a logical line
// address must pass through a Mapper before it may index anything row-keyed,
// and a physical line must never be mapped twice — yet all four address
// domains (and all three time units) are plain uint64/float64 in Go, so the
// type checker cannot see a violation. The lattice makes it checkable:
//
//   - domain is a bitmask; ⊥ (0) means "not a tracked value", a single bit
//     means "known to live in that domain", and multiple bits mean "mixed" —
//     the error state the analyzers report.
//   - join is set union (parallel flow paths merge), meet is intersection.
//     Both are idempotent, commutative, and associative; TestDomainLattice
//     pins the laws.
//   - conversions between domains are *pinned nodes*: the declared
//     parameters and results of the converter surfaces (Mapper.Map is
//     line→phys, kcipher.Encrypt is line→cipher, geom.GlobalRow is
//     phys→row, ...) plus any declaration carrying an `// addr:` or
//     `// unit:` annotation. A pinned node emits exactly its declared
//     domain and is opaque to every other domain — propagation stops there,
//     which is what makes a conversion an *edge* of the domain graph rather
//     than a leak.
//
// Two domain families share the machinery: the address family
// (line/phys/row/cipher) checked by the addrspace analyzer, and the unit
// family (ns/cycle/refresh) checked by unitflow. The families never mix with
// each other — an address is not a time — so each analyzer queries only its
// own family's taint maps.
type domain uint16

const (
	domLine domain = 1 << iota // logical (pre-map) line address
	domPhys                    // physical (randomized) line index
	domRow                     // DRAM global-row coordinate
	domCipher                  // K-Cipher ciphertext
	domNs                      // wall-clock nanoseconds (float64 sim time)
	domCycle                   // DRAM/CPU clock cycles
	domRefresh                 // refresh-window counts (epochs)
)

// addrFamily and unitFamily partition the tracked domains.
const (
	addrFamily = domLine | domPhys | domRow | domCipher
	unitFamily = domNs | domCycle | domRefresh
)

// domainNames maps each single-bit domain to its annotation spelling.
var domainNames = map[domain]string{
	domLine: "line", domPhys: "phys", domRow: "row", domCipher: "cipher",
	domNs: "ns", domCycle: "cycle", domRefresh: "refresh",
}

// domainOrder fixes the rendering order of mixed masks.
var domainOrder = []domain{domLine, domPhys, domRow, domCipher, domNs, domCycle, domRefresh}

// parseDomain resolves an annotation spelling to its domain bit.
func parseDomain(name string) (domain, bool) {
	for d, n := range domainNames { // tiny fixed map; order-free lookup
		if n == name {
			return d, true
		}
	}
	return 0, false
}

// String renders a mask: "line", "line|phys" for mixed, "⊥" for empty.
func (d domain) String() string {
	if d == 0 {
		return "⊥"
	}
	var parts []string
	for _, b := range domainOrder {
		if d&b != 0 {
			parts = append(parts, domainNames[b])
		}
	}
	return strings.Join(parts, "|")
}

// join is the lattice join (set union of possible domains).
func (d domain) join(o domain) domain { return d | o }

// meet is the lattice meet (set intersection).
func (d domain) meet(o domain) domain { return d & o }

// single reports whether the mask names exactly one domain.
func (d domain) single() bool { return d != 0 && d&(d-1) == 0 }

// family returns the mask restricted to the address or unit family.
func (d domain) family(f domain) domain { return d & f }

// --- annotation grammar ------------------------------------------------------

// Annotation grammar (DESIGN §13):
//
//	// addr: line|phys|row|cipher          on a struct field or var decl
//	// unit: ns|cycle|refresh              on a struct field or var decl
//	// addr: <domain> <param>[ <param>...] in a function's doc comment
//	// unit: <domain> <param>[ <param>...] in a function's doc comment
//	// hot                                 in a function's doc comment
//	// cold                                in a function's doc comment
//
// A declaration annotation pins the object: it seeds its domain there and
// makes the node opaque to every other domain. A `// hot` function is an
// allocation-gated root for the hotalloc analyzer; `// cold` stops hot
// reachability (an explicitly-amortized or debug-only callee).
var (
	addrAnnRE = regexp.MustCompile(`\baddr:\s*([a-z]+)((?:\s+[A-Za-z_][A-Za-z0-9_]*)*)`)
	unitAnnRE = regexp.MustCompile(`\bunit:\s*([a-z]+)((?:\s+[A-Za-z_][A-Za-z0-9_]*)*)`)
	hotAnnRE  = regexp.MustCompile(`(?m)^\s*hot\b`)
	coldAnnRE = regexp.MustCompile(`(?m)^\s*cold\b`)
)

// domainFacts is the module-wide domain database, built once per Program on
// first use by addrspace/unitflow/hotalloc (the same memoization pattern as
// concFacts).
type domainFacts struct {
	// pins maps a node to the single domain it is declared to carry. Pinned
	// nodes are barriers: they emit their domain and absorb nothing.
	pins map[node]domain
	// pinPos locates each pin for diagnostics.
	pinPos map[node]token.Position
	// annotated records objects pinned by an explicit annotation (as opposed
	// to the signature pin table), so the inference pass skips them.
	annotated map[types.Object]bool
	// converters are functions whose parameter and result domains differ —
	// their bodies ARE the conversion, so domain sink checks are skipped
	// inside them.
	converters map[*types.Func]bool
	// outParams records, per pinned function, the parameter indexes that are
	// out-slices with a declared domain (MapBatch's phys, EncryptBatch's
	// dst): a call seeds the caller-side container with that domain.
	outParams map[*types.Func]map[int]domain
	// hot and cold are the function-level hotalloc annotations.
	hot  map[*types.Func]token.Position
	cold map[*types.Func]bool
	// coldPkgs are packages whose doc comment carries `// cold`: hot
	// reachability never enters them (opt-in debug machinery like the
	// paranoid-mode checker).
	coldPkgs map[string]bool

	// taints caches one barrier-aware propagation per single domain.
	taints map[domain]TaintMap
	// barriers is the set of all pinned nodes (opaque to foreign domains).
	barriers map[node]bool
	// hotReached memoizes hot-function reachability (see hotalloc.go).
	hotReached map[*types.Func]hotReach
}

// domains returns the memoized domain database for the program.
func (p *Program) domains() *domainFacts {
	if p.dom != nil {
		return p.dom
	}
	f := &domainFacts{
		pins:       make(map[node]domain),
		pinPos:     make(map[node]token.Position),
		annotated:  make(map[types.Object]bool),
		converters: make(map[*types.Func]bool),
		outParams:  make(map[*types.Func]map[int]domain),
		hot:        make(map[*types.Func]token.Position),
		cold:       make(map[*types.Func]bool),
		coldPkgs:   make(map[string]bool),
		taints:     make(map[domain]TaintMap),
		barriers:   make(map[node]bool),
	}
	p.dom = f
	for _, pkg := range p.pkgs {
		f.collectSignaturePins(p, pkg)
	}
	// Annotations are collected after the signature table so explicit
	// declarations join (and can tighten) the by-name pins; the unit seeds
	// run last and skip anything already pinned or annotated.
	for _, pkg := range p.pkgs {
		f.collectAnnotations(p, pkg)
	}
	for _, pkg := range p.pkgs {
		f.collectUnitPins(p, pkg)
	}
	for n := range f.pins { // barrier set: order-free
		f.barriers[n] = true
	}
	f.collectScrubBarriers(p)
	return f
}

// scrubPkgs are packages whose function results scrub domain taint: a hash
// or PRNG output is uniform bits, not an address in any domain, even though
// an address may have been mixed into it. Without this, kcipher's Feistel
// rounds passing through rng.Mix64 would leak line/cipher taint to every
// other Mix64 caller (trackers, Bloom filters, samplers) via the
// context-insensitive result node.
var scrubPkgs = map[string]bool{"rng": true}

// collectScrubBarriers marks every result node of every function in a scrub
// package as a barrier. The nodes carry no pin, so no domain seeds there —
// taint of every family simply dies at the result.
func (f *domainFacts) collectScrubBarriers(p *Program) {
	for fn := range p.fns { // barrier set insertion: order-free
		pkg := fn.Pkg()
		if pkg == nil || !scrubPkgs[pkgBase(pkg.Path())] {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			f.barriers[resultNode(fn, i)] = true
		}
	}
}

// pinNode records a pinned declaration, joining with any existing pin (a
// node pinned to two different domains is itself a finding surfaced by the
// analyzers via mixedPin checks).
func (f *domainFacts) pinNode(n node, d domain, pos token.Position) {
	if n == (node{}) || d == 0 {
		return
	}
	f.pins[n] = f.pins[n].join(d)
	if _, ok := f.pinPos[n]; !ok {
		f.pinPos[n] = pos
	}
}

// --- signature pin table -----------------------------------------------------

// funcDomains describes the declared domain contract of one translation
// surface by name: parameter domains (by index) and result domains (by
// index). outIdx marks out-slice parameters (filled by the callee).
type funcDomains struct {
	params  map[int]domain
	results map[int]domain
	out     map[int]domain
}

// addrFuncPins is the signature pin table keyed by function/method name.
// Matching is by name within the address-domain packages (addrDomainPkgs),
// mirroring how addrwidth seeds its sources: the same table covers the real
// module and the flat golden-testdata layout.
var addrFuncPins = map[string]funcDomains{
	"Map":          {params: map[int]domain{0: domLine}, results: map[int]domain{0: domPhys}},
	"Unmap":        {params: map[int]domain{0: domPhys}, results: map[int]domain{0: domLine}},
	"MapBatch":     {params: map[int]domain{0: domLine}, out: map[int]domain{1: domPhys}},
	"UnmapBatch":   {params: map[int]domain{0: domPhys}, out: map[int]domain{1: domLine}},
	"Encrypt":      {params: map[int]domain{0: domLine}, results: map[int]domain{0: domCipher}},
	"Decrypt":      {params: map[int]domain{0: domCipher}, results: map[int]domain{0: domLine}},
	"EncryptBatch": {params: map[int]domain{1: domLine}, out: map[int]domain{0: domCipher}},
	"DecryptBatch": {params: map[int]domain{1: domCipher}, out: map[int]domain{0: domLine}},
	// geom's physical-address codec: decoders take phys lines, GlobalRow
	// produces the row coordinate, Encode produces a phys line.
	"GlobalRow": {params: map[int]domain{0: domPhys}, results: map[int]domain{0: domRow}},
	"Decode":    {params: map[int]domain{0: domPhys}},
	"Slot":      {params: map[int]domain{0: domPhys}},
	"Encode":    {results: map[int]domain{0: domPhys}},
}

// addrDomainPkgs are the packages whose declarations participate in the
// signature pin table: the translation surfaces and the row-keyed state.
var addrDomainPkgs = map[string]bool{
	"mapping": true, "core": true, "kcipher": true, "geom": true,
	"dram": true, "tracker": true, "memctrl": true, "mitigation": true,
	"check": true, "sim": true, "cpu": true,
}

// isAddrDomainPkg reports whether path participates in domain pinning.
func isAddrDomainPkg(path string) bool { return addrDomainPkgs[pkgBase(path)] }

// paramDomainNames pins integer parameters by exact (lowercased) name in the
// address-domain packages: the row-keyed census/tracker surfaces and the
// line/phys plumbing name their coordinates consistently.
var paramDomainNames = map[string]domain{
	"line": domLine, "lineaddr": domLine, "lines": domLine,
	"phys": domPhys, "physline": domPhys, "physaddr": domPhys,
	"row": domRow, "globalrow": domRow,
}

// collectSignaturePins walks one package's function declarations (and
// interface method declarations) and applies the pin table.
func (f *domainFacts) collectSignaturePins(p *Program, pkg *Package) {
	if !isAddrDomainPkg(pkg.Path) {
		return
	}
	pinFunc := func(fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		fd, byName := addrFuncPins[fn.Name()]
		params, results := sig.Params(), sig.Results()
		pinnedParam, pinnedResult := domain(0), domain(0)
		for i := 0; i < params.Len(); i++ {
			pv := params.At(i)
			d := domain(0)
			if byName {
				d = fd.params[i] | fd.out[i]
			}
			if d == 0 {
				if nd, ok := paramDomainNames[strings.ToLower(pv.Name())]; ok && isAddrCarrier(pv.Type()) {
					d = nd
				}
			}
			if d != 0 && isAddrCarrier(pv.Type()) {
				f.pinNode(objNode(pv), d, pkg.Fset.Position(pv.Pos()))
				pinnedParam |= d
			}
		}
		if byName {
			for i, d := range fd.out {
				if i < params.Len() && isAddrCarrier(params.At(i).Type()) {
					if f.outParams[fn] == nil {
						f.outParams[fn] = make(map[int]domain)
					}
					f.outParams[fn][i] = d
				}
			}
			for i, d := range fd.results {
				if i < results.Len() && isAddrCarrier(results.At(i).Type()) {
					f.pinNode(resultNode(fn, i), d, pkg.Fset.Position(fn.Pos()))
					pinnedResult |= d
				}
			}
			for _, d := range fd.out {
				pinnedResult |= d
			}
		}
		// A function that declares different domains on its inputs and
		// outputs is a converter; its body is the conversion and is exempt
		// from domain sink checks.
		if pinnedParam != 0 && pinnedResult != 0 && pinnedParam != pinnedResult {
			f.converters[fn] = true
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					pinFunc(fn)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
								pinFunc(fn)
							}
						}
					}
				}
			}
		}
	}
}

// isAddrCarrier reports whether t can carry an address: a ≥32-bit integer or
// a slice of them (batches).
func isAddrCarrier(t types.Type) bool {
	if w, ok := intWidth(t); ok {
		return w >= 32
	}
	if w, ok := sliceElemIntWidth(t); ok {
		return w >= 32
	}
	return false
}

// isUnitCarrier reports whether t can carry a time quantity: any integer,
// float, or slice thereof.
func isUnitCarrier(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsFloat) != 0
	case *types.Slice:
		return isUnitCarrier(u.Elem())
	}
	return false
}

// --- unit seeding ------------------------------------------------------------

// unitSuffixes and unitExactNames seed the time-unit family by declaration
// name: float64 simulation timestamps and durations are ns, cycle counters
// say so, and refresh-window counters follow the census vocabulary. dram's
// Timing struct fields and time.Duration-typed declarations are ns
// regardless of name (a Duration's native unit is the nanosecond).
var (
	unitExactNames = map[string]domain{
		"now": domNs, "arrival": domNs, "earliest": domNs, "deadline": domNs,
		"completion": domNs,
		"cycles":     domCycle,
		"epoch":      domRefresh, "epochs": domRefresh, "windows": domRefresh,
	}
	unitSuffixes = []struct {
		suffix string
		d      domain
	}{
		{"ns", domNs},
		{"cycles", domCycle},
		{"cycle", domCycle},
	}
)

// unitForName resolves a declaration name to its seeded unit, if any.
func unitForName(name string) (domain, bool) {
	l := strings.ToLower(name)
	if d, ok := unitExactNames[l]; ok {
		return d, true
	}
	for _, s := range unitSuffixes {
		if strings.HasSuffix(l, s.suffix) && len(l) > len(s.suffix) {
			return s.d, true
		}
	}
	return 0, false
}

// isDurationType reports whether t is time.Duration (possibly named).
func isDurationType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// unitPkgs are the packages whose timing declarations seed the unit family.
var unitPkgs = map[string]bool{
	"dram": true, "memctrl": true, "cpu": true, "sim": true, "metrics": true,
	"mitigation": true, "tracker": true, "check": true, "core": true,
}

// isUnitPkg reports whether path holds timed simulation state.
func isUnitPkg(path string) bool { return unitPkgs[pkgBase(path)] }

// collectUnitPins seeds the unit family over one package: Timing struct
// fields, name-matched declarations, and time.Duration-typed declarations.
// Called lazily from unitflow's seed (kept separate from the address pins so
// the two families stay independently testable).
func (f *domainFacts) collectUnitPins(p *Program, pkg *Package) {
	if !isUnitPkg(pkg.Path) {
		return
	}
	// The dram/memctrl Timing structs are the unit ground truth: every float
	// field is a nanosecond quantity (DESIGN §13), whatever its mnemonic
	// name (TRCD, RowLease, ...).
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Timing" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok || f.annotated[obj] {
						continue
					}
					if bt, ok := obj.Type().Underlying().(*types.Basic); !ok || bt.Info()&types.IsFloat == 0 {
						continue
					}
					f.pinNode(node{obj: obj}, domNs, pkg.Fset.Position(obj.Pos()))
					f.barriers[node{obj: obj}] = true
				}
			}
			return true
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Defs[id].(*types.Var)
			if !ok || f.annotated[obj] {
				return true
			}
			nd := node{obj: obj}
			if _, pinned := f.pins[nd]; pinned {
				return true
			}
			if isDurationType(obj.Type()) {
				f.pinNode(nd, domNs, pkg.Fset.Position(obj.Pos()))
				f.barriers[nd] = true
				return true
			}
			if !isUnitCarrier(obj.Type()) {
				return true
			}
			if d, ok := unitForName(obj.Name()); ok {
				f.pinNode(nd, d, pkg.Fset.Position(obj.Pos()))
				f.barriers[nd] = true
			}
			return true
		})
	}
}

// --- annotations -------------------------------------------------------------

// collectAnnotations walks declarations for `// addr:`, `// unit:`,
// `// hot`, and `// cold` directives.
func (f *domainFacts) collectAnnotations(p *Program, pkg *Package) {
	// Declaration-form annotations ignore trailing prose: `// addr: row (the
	// open row)` pins row. The <param> list form is only meaningful on a
	// function doc (collectFuncAnnotations).
	pinObjFromComment := func(obj types.Object, txt string, pos token.Position) {
		for _, m := range addrAnnRE.FindAllStringSubmatch(txt, -1) {
			if d, ok := parseDomain(m[1]); ok && d&addrFamily != 0 {
				f.pinNode(objNode(obj), d, pos)
				f.barriers[objNode(obj)] = true
				f.annotated[obj] = true
			}
		}
		for _, m := range unitAnnRE.FindAllStringSubmatch(txt, -1) {
			if d, ok := parseDomain(m[1]); ok && d&unitFamily != 0 {
				f.pinNode(objNode(obj), d, pos)
				f.barriers[objNode(obj)] = true
				f.annotated[obj] = true
			}
		}
	}
	for _, file := range pkg.Files {
		// `// cold` in the package doc marks the whole package cold for hot
		// reachability: every function in it is off the measured path.
		if file.Doc != nil && coldAnnRE.MatchString(file.Doc.Text()) {
			f.coldPkgs[pkgBase(pkg.Path)] = true
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, fld := range n.Fields.List {
					txt := commentText(fld)
					if txt == "" {
						continue
					}
					for _, name := range fld.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							pinObjFromComment(obj, txt, pkg.Fset.Position(name.Pos()))
						}
					}
				}
			case *ast.GenDecl:
				// Package-level or local var decls: // addr: / // unit: on
				// the spec's doc or line comment.
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					txt := ""
					if n.Doc != nil {
						txt += n.Doc.Text() + " "
					}
					if vs.Doc != nil {
						txt += vs.Doc.Text() + " "
					}
					if vs.Comment != nil {
						txt += vs.Comment.Text()
					}
					if txt == "" {
						continue
					}
					for _, name := range vs.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							pinObjFromComment(obj, txt, pkg.Fset.Position(name.Pos()))
						}
					}
				}
			case *ast.FuncDecl:
				f.collectFuncAnnotations(p, pkg, n)
				return true
			}
			return true
		})
	}
}

// collectFuncAnnotations handles the function-doc grammar: `// hot`,
// `// cold`, and `// addr|unit: <domain> <param>...` lines naming specific
// parameters (or `return` for the first result).
func (f *domainFacts) collectFuncAnnotations(p *Program, pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	txt := fd.Doc.Text()
	if hotAnnRE.MatchString(txt) {
		f.hot[fn] = pkg.Fset.Position(fd.Name.Pos())
	}
	if coldAnnRE.MatchString(txt) {
		f.cold[fn] = true
	}
	apply := func(matches [][]string, family domain) {
		for _, m := range matches {
			d, ok := parseDomain(m[1])
			if !ok || d&family == 0 {
				continue
			}
			names := strings.Fields(m[2])
			if len(names) == 0 {
				continue // declaration-form annotation; not valid on a func
			}
			sig := fn.Type().(*types.Signature)
			for _, want := range names {
				if want == "return" {
					if sig.Results().Len() > 0 {
						f.pinNode(resultNode(fn, 0), d, pkg.Fset.Position(fd.Name.Pos()))
						f.barriers[resultNode(fn, 0)] = true
					}
					continue
				}
				params := sig.Params()
				for i := 0; i < params.Len(); i++ {
					if pv := params.At(i); pv.Name() == want {
						f.pinNode(objNode(pv), d, pkg.Fset.Position(pv.Pos()))
						f.barriers[objNode(pv)] = true
						f.annotated[pv] = true
					}
				}
			}
		}
	}
	apply(addrAnnRE.FindAllStringSubmatch(txt, -1), addrFamily)
	apply(unitAnnRE.FindAllStringSubmatch(txt, -1), unitFamily)
}

// --- barrier-aware propagation ----------------------------------------------

// TaintStop is Taint with opacity: propagation never enters a node in stop
// (seeds themselves excepted). Pinned declarations use it to make domain
// conversions flow-terminating — a phys value reaching Unmap's result node
// must NOT emerge as a phys-tainted "line".
func (p *Program) TaintStop(key string, seed func() []Source, stop map[node]bool) TaintMap {
	if tm, ok := p.taintCache[key]; ok {
		return tm
	}
	sources := seed()
	sort.Slice(sources, func(i, j int) bool {
		a, b := sources[i].pos, sources[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	tm := make(TaintMap)
	var work []node
	for _, s := range sources {
		st, ok := tm[s.n]
		if !ok || s.bound > st.bound {
			if !ok {
				st = taintState{bound: s.bound, pos: s.pos, what: s.what}
			} else {
				st.bound = s.bound
			}
			tm[s.n] = st
			work = append(work, s.n)
		}
	}
	seeded := make(map[node]bool, len(tm))
	for n := range tm { // order-free: membership set
		seeded[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		st := tm[n]
		for _, e := range p.edges[n] {
			if stop[e.to] && !seeded[e.to] {
				continue // opaque barrier: the domain dies at the pin
			}
			nb := e.tf.apply(st.bound)
			cur, ok := tm[e.to]
			if ok && cur.bound >= nb {
				continue
			}
			if !ok {
				cur = taintState{bound: nb, pos: st.pos, what: st.what}
			} else {
				cur.bound = nb
			}
			tm[e.to] = cur
			work = append(work, e.to)
		}
	}
	p.taintCache[key] = tm
	return tm
}

// domainTaint runs (once, memoized) the barrier-aware propagation for one
// single-bit domain, seeding every pin of that domain plus the caller-side
// out-slice containers of the batch surfaces.
func (p *Program) domainTaint(d domain) TaintMap {
	f := p.domains()
	if tm, ok := f.taints[d]; ok {
		return tm
	}
	key := "domain:" + domainNames[d]
	tm := p.TaintStop(key, func() []Source {
		var srcs []Source
		for n, pd := range f.pins {
			if pd&d == 0 {
				continue
			}
			what := "pinned declaration"
			switch {
			case n.obj != nil:
				what = fmt.Sprintf("%s value %q", d, n.obj.Name())
			case n.fn != nil:
				what = fmt.Sprintf("%s result of %s", d, n.fn.Name())
			}
			srcs = append(srcs, Source{n: n, bound: 64, pos: f.pinPos[n], what: what})
		}
		// Out-slice arguments: a call MapBatch(lines, phys) fills the
		// caller's phys container with phys-domain values.
		for _, pkg := range p.pkgs {
			ev := &evaluator{prog: p, pkg: pkg}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(nd ast.Node) bool {
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := ev.staticCallee(call)
					if fn == nil {
						return true
					}
					outs := f.outParams[fn]
					if outs == nil {
						return true
					}
					for i, od := range outs {
						if od&d == 0 || i >= len(call.Args) {
							continue
						}
						target := ev.lvalueNode(call.Args[i])
						if target == (node{}) || f.barriers[target] {
							continue
						}
						srcs = append(srcs, Source{
							n: target, bound: 64,
							pos:  pkg.Fset.Position(call.Args[i].Pos()),
							what: fmt.Sprintf("%s batch filled by %s", d, fn.Name()),
						})
					}
					return true
				})
			}
		}
		return srcs
	}, f.barriers)
	f.taints[d] = tm
	return tm
}

// domainsOf queries which domains of a family the expression may carry, with
// one representative hit per domain bit.
func (p *Program) domainsOf(pkg *Package, e ast.Expr, family domain) (domain, map[domain]Hit) {
	f := p.domains()
	// A call to a function with a pinned first result carries exactly the
	// declared result domain: the contract overrides flow-level modeling.
	// This matters for interface methods without loaded bodies (Mapper.Map),
	// where the conservative passthrough would otherwise leak the argument's
	// domain around the pin.
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		ev := &evaluator{prog: p, pkg: pkg}
		if fn := ev.staticCallee(call); fn != nil {
			if d, ok := f.pins[resultNode(fn, 0)]; ok && d.family(family) != 0 {
				d = d.family(family)
				return d, map[domain]Hit{d: {
					Bound: 64,
					Pos:   f.pinPos[resultNode(fn, 0)],
					What:  fmt.Sprintf("%s result of %s", d, fn.Name()),
				}}
			}
		}
	}
	flows := p.Origins(pkg, e)
	if len(flows) == 0 {
		return 0, nil
	}
	var mask domain
	hits := make(map[domain]Hit)
	for _, d := range domainOrder {
		if d&family == 0 {
			continue
		}
		if hit, ok := p.domainTaint(d).Query(flows); ok {
			mask |= d
			hits[d] = hit
		}
	}
	return mask, hits
}

// insideConverter reports whether pos lies within the body of a converter
// function: the body IS the conversion, so cross-domain sightings there are
// the mechanism, not a bug.
func (f *domainFacts) insideConverter(p *Program, pkg *Package, pos token.Pos) bool {
	ev := &evaluator{prog: p, pkg: pkg}
	fn := ev.enclosingFunc(pos)
	return fn != nil && f.converters[fn]
}
