// Package linttest runs lint analyzers against golden testdata packages,
// in the spirit of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout: <root>/<pkg>/*.go, where each file marks expected
// findings with an end-of-line comment
//
//	// want "regexp"
//
// Every diagnostic must match a want on its line, and every want must be
// matched — so testdata demonstrates flagged cases (want lines) and allowed
// cases (clean or //lint:allow'd lines) side by side.
package linttest

import (
	"regexp"
	"strings"
	"sync"
	"testing"

	"rubix/internal/lint"
)

// loaders caches one loaded package tree per testdata root: the source
// importer re-type-checks the standard library per Loader, which is the
// dominant cost of these tests.
var loaders = struct {
	sync.Mutex
	m map[string][]*lint.Package // guarded by Mutex
}{m: make(map[string][]*lint.Package)}

func loadRoot(t *testing.T, root string) []*lint.Package {
	t.Helper()
	loaders.Lock()
	defer loaders.Unlock()
	if pkgs, ok := loaders.m[root]; ok {
		return pkgs
	}
	pkgs, err := lint.NewLoader(root, "").LoadAll()
	if err != nil {
		t.Fatalf("loading testdata %s: %v", root, err)
	}
	loaders.m[root] = pkgs
	return pkgs
}

// Run applies the analyzer to the testdata package at <root>/<pkgPath> and
// compares its (post-suppression) diagnostics with the // want comments. The
// whole testdata tree is loaded and handed to lint.Run — interprocedural
// analyzers need the full value-flow graph — with a scope that reports only
// on the target package.
func Run(t *testing.T, root string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	pkgs := loadRoot(t, root)
	var target *lint.Package
	for _, p := range pkgs {
		if p.Path == pkgPath {
			target = p
			break
		}
	}
	if target == nil {
		t.Fatalf("testdata package %q not found under %s", pkgPath, root)
	}
	onlyTarget := func(_ *lint.Analyzer, path string) bool { return path == pkgPath }
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a}, onlyTarget)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	wants := collectWants(t, target)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantPattern = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantPattern.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
