package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks every non-test package under Root using only
// the standard library: project-internal imports resolve against the loaded
// tree, everything else (the standard library) is type-checked from source
// via go/importer. Test files are excluded by design — the analyzers gate
// production code, and the seedflow contract explicitly exempts _test.go.
type Loader struct {
	// Root is the directory spanning the package tree.
	Root string
	// ModulePath maps Root to an import-path prefix ("" means import paths
	// are plain Root-relative directories, the layout of lint testdata).
	ModulePath string

	fset  *token.FileSet
	std   types.Importer
	dirs  map[string]string // import path -> absolute dir
	pkgs  map[string]*Package
	state map[string]int // 0 unvisited, 1 in progress, 2 done
}

// NewLoader builds a Loader rooted at root.
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		dirs:       make(map[string]string),
		pkgs:       make(map[string]*Package),
		state:      make(map[string]int),
	}
}

// LoadAll discovers and type-checks every package under Root, returning them
// sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// discover walks Root and records every directory holding non-test Go files.
func (l *Loader) discover() error {
	root, err := filepath.Abs(l.Root)
	if err != nil {
		return err
	}
	l.Root = root
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			l.dirs[l.importPath(path)] = path
		}
		return nil
	})
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.Type().IsRegular() && isLintableGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// importPath maps an absolute directory under Root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	rel = filepath.ToSlash(rel)
	if l.ModulePath == "" {
		return rel
	}
	return l.ModulePath + "/" + rel
}

// load type-checks one discovered package (and, recursively, its project
// dependencies). It returns nil for directories whose files all failed the
// parse filter.
func (l *Loader) load(path string) (*Package, error) {
	switch l.state[path] {
	case 2:
		return l.pkgs[path], nil
	case 1:
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.state[path] = 1
	dir := l.dirs[path]

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !e.Type().IsRegular() || !isLintableGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.state[path] = 2
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &loaderImporter{l: l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.state[path] = 2
	return pkg, nil
}

// loaderImporter resolves project packages from the loaded tree and
// delegates everything else to the source importer.
type loaderImporter struct {
	l *Loader
}

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if _, ok := li.l.dirs[path]; ok {
		pkg, err := li.l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: package %q has no lintable Go files", path)
		}
		return pkg.Types, nil
	}
	return li.l.std.Import(path)
}

// FindModule locates the enclosing Go module from dir upward and returns its
// root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if mod, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(mod), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
