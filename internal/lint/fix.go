package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// TextEdit replaces the source range [Pos, End) with NewText. End == Pos
// inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a machine-applicable repair for one diagnostic. Fixes are
// designed to be idempotent: applying a fix removes the finding, so a second
// rubixlint -fix run produces no further edits.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// fileEdit is one edit resolved to byte offsets within a file.
type fileEdit struct {
	start, end int
	newText    string
}

// ApplyFixes applies the first fix of every diagnostic that carries one,
// returning the new contents per file, the number of fixes applied, and the
// diagnostics left unfixed (no fix attached, or its edits overlapped an
// already-applied fix). It does not write anything to disk.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, int, []Diagnostic, error) {
	byFile := make(map[string][]fileEdit)
	var unfixed []Diagnostic
	applied := 0
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			unfixed = append(unfixed, d)
			continue
		}
		fix := d.Fixes[0]
		ok := true
		var resolved []struct {
			file string
			fe   fileEdit
		}
		for _, e := range fix.Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if !pos.IsValid() || !end.IsValid() || pos.Filename != end.Filename || end.Offset < pos.Offset {
				ok = false
				break
			}
			fe := fileEdit{start: pos.Offset, end: end.Offset, newText: e.NewText}
			if overlaps(byFile[pos.Filename], fe) {
				ok = false
				break
			}
			resolved = append(resolved, struct {
				file string
				fe   fileEdit
			}{pos.Filename, fe})
		}
		if !ok {
			unfixed = append(unfixed, d)
			continue
		}
		for _, r := range resolved {
			byFile[r.file] = append(byFile[r.file], r.fe)
		}
		applied++
	}
	out := make(map[string][]byte)
	for file, edits := range byFile { // key extraction not needed: map result
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		patched, err := patch(src, edits)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("lint: applying fixes to %s: %w", file, err)
		}
		out[file] = patched
	}
	return out, applied, unfixed, nil
}

// overlaps reports whether fe intersects any already-accepted edit.
func overlaps(edits []fileEdit, fe fileEdit) bool {
	for _, e := range edits {
		if fe.start < e.end && e.start < fe.end {
			return true
		}
		// Two pure insertions at the same offset would be order-dependent.
		if fe.start == fe.end && e.start == e.end && fe.start == e.start {
			return true
		}
	}
	return false
}

// patch applies non-overlapping edits to src, back to front.
func patch(src []byte, edits []fileEdit) ([]byte, error) {
	sorted := append([]fileEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start > sorted[j].start })
	out := append([]byte(nil), src...)
	for _, e := range sorted {
		if e.end > len(out) {
			return nil, fmt.Errorf("edit range [%d, %d) outside file of %d bytes", e.start, e.end, len(out))
		}
		out = append(out[:e.start], append([]byte(e.newText), out[e.end:]...)...)
	}
	return out, nil
}
