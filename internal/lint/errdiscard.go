package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// ErrDiscard enforces the follow-through of the de-panicking work: the
// constructors and mapping surfaces that now return errors instead of
// panicking are only safer if callers actually look at those errors. The
// analyzer flags every discarded error result of a module-internal call —
// `_ = f()`, `v, _ := f()`, and a bare `f()` statement — anywhere in the
// module, including commands and examples. Standard-library callees are out
// of scope (discarding fmt.Println's error is idiomatic).
//
// Where the enclosing function can propagate (its last result is an error
// and the other results have mechanical zero values), the finding carries a
// fix that names the error and returns it; elsewhere the finding is
// fix-less and wants a real handler or a justified //lint:allow errdiscard.
var ErrDiscard = &Analyzer{
	Name:         "errdiscard",
	Doc:          "error results of module-internal calls must not be discarded",
	NeedsProgram: true,
	Run:          runErrDiscard,
}

var errType = types.Universe.Lookup("error").Type()

func runErrDiscard(pass *Pass) error {
	ev := &evaluator{prog: pass.Prog, pkg: pass.LintPkg}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, ev, f, n)
			case *ast.AssignStmt:
				checkBlankAssign(pass, ev, f, n)
			}
			return true
		})
	}
	return nil
}

// moduleCallee resolves the call's static callee if it is module-internal
// (its defining package is part of the loaded program).
func moduleCallee(ev *evaluator, call *ast.CallExpr) *types.Func {
	fn := ev.staticCallee(call)
	if fn == nil || fn.Pkg() == nil || ev.prog.Package(fn.Pkg().Path()) == nil {
		return nil
	}
	return fn
}

// errResultIndexes returns the indexes of a call's error-typed results.
func errResultIndexes(pass *Pass, call *ast.CallExpr) []int {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return nil
	}
	var out []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				out = append(out, i)
			}
		}
	default:
		if types.Identical(tv.Type, errType) {
			out = append(out, 0)
		}
	}
	return out
}

// checkBareCall flags `f()` statements whose results include an error.
// Defer and go statements are distinct AST nodes and are not flagged.
func checkBareCall(pass *Pass, ev *evaluator, file *ast.File, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleCallee(ev, call)
	if fn == nil {
		return
	}
	errIdxs := errResultIndexes(pass, call)
	if len(errIdxs) == 0 {
		return
	}
	var fixes []SuggestedFix
	if zeros, ok := enclosingReturnZeros(pass, file, stmt.Pos()); ok {
		nres := 1
		if t, ok := pass.Info.Types[call].Type.(*types.Tuple); ok {
			nres = t.Len()
		}
		lhs := make([]string, nres)
		for i := range lhs {
			lhs[i] = "_"
		}
		lhs[errIdxs[0]] = "err"
		head := strings.Join(lhs, ", ")
		if nres == 1 {
			head = "err"
		}
		indent := indentAt(pass, stmt.Pos())
		fixes = append(fixes, SuggestedFix{
			Message: "check the error and propagate it",
			Edits: []TextEdit{{
				Pos: stmt.Pos(),
				End: stmt.End(),
				NewText: fmt.Sprintf("if %s := %s; err != nil {\n%s\treturn %s\n%s}",
					head, nodeText(pass, call), indent, zeros, indent),
			}},
		})
	}
	pass.Report(call.Pos(), fmt.Sprintf(
		"error result of %s is discarded; handle it, or annotate //lint:allow errdiscard <why>",
		calleeLabel(fn)), fixes...)
}

// checkBlankAssign flags `_ = f()` and `v, _ := f()` forms that drop an
// error result of a module-internal call.
func checkBlankAssign(pass *Pass, ev *evaluator, file *ast.File, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleCallee(ev, call)
	if fn == nil {
		return
	}
	errIdxs := errResultIndexes(pass, call)
	for _, i := range errIdxs {
		if i >= len(n.Lhs) {
			continue
		}
		blank, ok := n.Lhs[i].(*ast.Ident)
		if !ok || blank.Name != "_" {
			continue
		}
		var fixes []SuggestedFix
		zeros, canReturn := enclosingReturnZeros(pass, file, n.Pos())
		if canReturn && n.Tok == token.DEFINE {
			// v, _ := f()  →  v, err := f(); if err != nil { return ..., err }
			indent := indentAt(pass, n.Pos())
			fixes = append(fixes, SuggestedFix{
				Message: "name the error and propagate it",
				Edits: []TextEdit{
					{Pos: blank.Pos(), End: blank.End(), NewText: "err"},
					{Pos: n.End(), End: n.End(), NewText: fmt.Sprintf(
						"\n%sif err != nil {\n%s\treturn %s\n%s}", indent, indent, zeros, indent)},
				},
			})
		} else if canReturn && len(n.Lhs) == 1 {
			// _ = f()  →  if err := f(); err != nil { return ..., err }
			indent := indentAt(pass, n.Pos())
			fixes = append(fixes, SuggestedFix{
				Message: "check the error and propagate it",
				Edits: []TextEdit{{
					Pos: n.Pos(),
					End: n.End(),
					NewText: fmt.Sprintf("if err := %s; err != nil {\n%s\treturn %s\n%s}",
						nodeText(pass, call), indent, zeros, indent),
				}},
			})
		}
		pass.Report(blank.Pos(), fmt.Sprintf(
			"error result of %s is discarded; handle it, or annotate //lint:allow errdiscard <why>",
			calleeLabel(fn)), fixes...)
	}
}

// calleeLabel renders a callee for diagnostics: pkg.Func or pkg.Recv.Method.
func calleeLabel(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), named.Obj().Name(), fn.Name())
		}
	}
	return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
}

// enclosingReturnZeros determines whether the function enclosing pos can
// propagate an error — its last result is error and the preceding results
// have mechanical zero values — and returns the rendered return operands
// ("zeroA, zeroB, err").
func enclosingReturnZeros(pass *Pass, file *ast.File, pos token.Pos) (string, bool) {
	ft := enclosingFuncType(file, pos)
	if ft == nil || ft.Results == nil {
		return "", false
	}
	var resTypes []types.Type
	for _, field := range ft.Results.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			return "", false
		}
		nnames := len(field.Names)
		if nnames == 0 {
			nnames = 1
		}
		for j := 0; j < nnames; j++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(resTypes) == 0 || !types.Identical(resTypes[len(resTypes)-1], errType) {
		return "", false
	}
	parts := make([]string, 0, len(resTypes))
	for _, t := range resTypes[:len(resTypes)-1] {
		z, ok := zeroExpr(t)
		if !ok {
			return "", false
		}
		parts = append(parts, z)
	}
	parts = append(parts, "err")
	return strings.Join(parts, ", "), true
}

// enclosingFuncType finds the innermost FuncDecl/FuncLit whose body spans
// pos and returns its type.
func enclosingFuncType(file *ast.File, pos token.Pos) *ast.FuncType {
	var best *ast.FuncType
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Type
			}
		case *ast.FuncLit:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Type
			}
		}
		return true
	})
	return best
}

// zeroExpr renders the zero value of a type, when it has a context-free
// spelling (structs and arrays would need qualified type names; callers
// degrade to a fix-less finding there).
func zeroExpr(t types.Type) (string, bool) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsNumeric != 0:
			return "0", true
		case u.Info()&types.IsString != 0:
			return `""`, true
		case u.Info()&types.IsBoolean != 0:
			return "false", true
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "nil", true
	}
	return "", false
}

// indentAt reproduces the leading indentation of the line holding pos,
// assuming tab indentation (the repository is gofmt'd).
func indentAt(pass *Pass, pos token.Pos) string {
	col := pass.Fset.Position(pos).Column
	if col < 1 {
		col = 1
	}
	return strings.Repeat("\t", col-1)
}

// nodeText renders an AST node back to source text.
func nodeText(pass *Pass, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, n); err != nil {
		return ""
	}
	return buf.String()
}
