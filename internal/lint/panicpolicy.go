package lint

import (
	"go/ast"
	"go/types"
)

// Panicpolicy keeps library packages panic-free: a panic in internal/...
// tears down a whole experiment sweep (and, under the parallel harness,
// every sibling run on the worker pool) instead of failing one
// configuration with an error. Permitted exceptions are init functions
// (programmer-error guards that fire before any experiment starts) and
// sites annotated //lint:allow panicpolicy with a justification — the
// documented invariant-guard idiom for unreachable states and Must*
// constructors.
var Panicpolicy = &Analyzer{
	Name: "panicpolicy",
	Doc:  "library packages return errors instead of panicking, except documented invariant guards",
	Run:  runPanicpolicy,
}

func runPanicpolicy(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue // init-time guards fire before any experiment runs
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj := pass.Info.Uses[id]; obj != nil {
					if _, ok := obj.(*types.Builtin); !ok {
						return true // shadowed panic
					}
				}
				pass.Reportf(call.Pos(), "panic in library package; return an error, or annotate an invariant guard with //lint:allow panicpolicy <why>")
				return true
			})
		}
	}
	return nil
}
