package lint

import (
	"fmt"
	"go/token"
	"go/types"
)

// WaitGroup checks sync.WaitGroup protocol: Add must happen in the spawning
// goroutine before the spawn (Add inside the spawned goroutine races Wait —
// Wait can observe the counter at zero and return before the goroutine gets
// scheduled); every body that calls a non-deferred Done must not return
// before reaching it (an early error return skips Done and Wait hangs); and
// Add/Done/Wait must pair up module-wide per WaitGroup alias class. Alias
// classes follow pointer flow, so a *sync.WaitGroup handed to a helper
// unifies with its caller's and a Done inside the helper counts.
var WaitGroup = &Analyzer{
	Name: "waitgroup",
	Doc: "Checks sync.WaitGroup protocol: Add before the spawn (never inside " +
		"the spawned goroutine, where it races Wait), no return paths that " +
		"skip a non-deferred Done, and module-wide Add/Done/Wait pairing per " +
		"WaitGroup alias class. Suppress intentional protocol deviations " +
		"with //lint:allow waitgroup <why>.",
	NeedsProgram: true,
	Run:          runWaitGroup,
}

func runWaitGroup(pass *Pass) error {
	facts := pass.Prog.concurrency()
	reach := facts.reachFromSpawns(pass.Prog)
	inGoroutine := func(op wgOp) bool {
		if op.spawn >= 0 {
			return true
		}
		return op.fn != nil && reach[op.fn]
	}

	// Rule 1: Add inside the spawned goroutine (directly, or in a helper the
	// goroutine calls — the interprocedural case).
	for _, op := range facts.wgs {
		if op.kind != wgAdd || op.pkg != pass.LintPkg || !inGoroutine(op) {
			continue
		}
		pass.Report(op.pos,
			"wg.Add inside the spawned goroutine races Wait (the counter can be observed at zero before this runs); call Add in the spawning function, before the go statement")
	}

	// Rule 2: a return before the first non-deferred Done in the same body
	// skips the Done on that path and Wait never unblocks. Bodies with a
	// deferred Done are exempt (that is the fix this rule suggests), and the
	// rule only applies in goroutine context — sequential code that returns
	// before a Done is doing ordinary control flow, not breaking a handoff.
	type bodyDone struct {
		first    token.Pos
		deferred bool
		inGo     bool
	}
	dones := make(map[token.Pos]*bodyDone)
	var bodyOrder []token.Pos
	for _, op := range facts.wgs {
		if op.kind != wgDone || op.pkg != pass.LintPkg {
			continue
		}
		bd := dones[op.body]
		if bd == nil {
			bd = &bodyDone{first: token.Pos(-1)}
			dones[op.body] = bd
			bodyOrder = append(bodyOrder, op.body)
		}
		if op.deferred {
			bd.deferred = true
		} else if bd.first == token.Pos(-1) || op.pos < bd.first {
			bd.first = op.pos
		}
		if inGoroutine(op) {
			bd.inGo = true
		}
	}
	for _, body := range bodyOrder {
		bd := dones[body]
		if bd.deferred || bd.first == token.Pos(-1) || !bd.inGo {
			continue
		}
		for _, ret := range facts.rets {
			if ret.pkg != pass.LintPkg || ret.body != body {
				continue
			}
			if ret.pos < bd.first {
				pass.Report(ret.pos,
					"return before wg.Done on this path — Wait never unblocks; use `defer wg.Done()` at the top of the body")
			}
		}
	}

	// Rule 3: module-wide pairing per alias class. Report once per class, at
	// the first op of the class that lives in this package, so exactly one
	// package owns each finding.
	u := facts.aliasClasses(pass.Prog, isWaitGroupObj)
	type classOps struct {
		adds, dones, waits int
		first              token.Pos // globally first op (walk order)
		firstPkg           *Package
	}
	classes := make(map[types.Object]*classOps)
	var classOrder []types.Object
	for _, op := range facts.wgs {
		r := u.find(op.obj)
		c := classes[r]
		if c == nil {
			c = &classOps{first: op.pos, firstPkg: op.pkg}
			classes[r] = c
			classOrder = append(classOrder, r)
		}
		switch op.kind {
		case wgAdd:
			c.adds++
		case wgDone:
			c.dones++
		case wgWait:
			c.waits++
		}
	}
	for _, r := range classOrder {
		c := classes[r]
		if c.firstPkg != pass.LintPkg {
			continue // the package of the first op owns the finding
		}
		switch {
		case c.waits > 0 && c.adds == 0:
			pass.Report(c.first, fmt.Sprintf(
				"%s is Waited on but never Added to — Wait returns immediately; the goroutines it should gate are unguarded", wgLabel(r)))
		case c.adds > 0 && c.dones == 0:
			pass.Report(c.first, fmt.Sprintf(
				"%s has Add but no Done anywhere in the module — Wait hangs forever", wgLabel(r)))
		case c.dones > 0 && c.adds == 0:
			pass.Report(c.first, fmt.Sprintf(
				"%s has Done but no Add anywhere in the module — Done panics on a zero counter", wgLabel(r)))
		}
	}
	return nil
}

// wgLabel names a WaitGroup object for diagnostics.
func wgLabel(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return "WaitGroup field " + fieldLabel(v)
	}
	return "WaitGroup " + o.Name()
}
