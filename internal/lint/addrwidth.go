package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AddrWidth is the interprocedural deepening of the syntactic bitwidth pass:
// it taints line/row/bank address values at their definition sites in the
// address-arithmetic packages (mapping, kcipher, dram, core), follows them
// through assignments, returns, call arguments, struct fields, and element
// flows with a bit-bound transform per edge (masks cap, shifts shift), and
// flags any flow through a narrowing conversion whose destination cannot hold
// the bound that survives. Where the syntactic pass sees only the expression
// inside the conversion, this one knows that a value returned by
// mapping.Map carries up to 40 bits even after it crossed two helper
// functions and a struct field. Address batches are seeded the same way:
// a []uint64 with an address-slice name in those packages, or any []uint64
// parameter of a MapBatch/UnmapBatch/EncryptBatch/DecryptBatch
// implementation, taints the container, and element reads inherit the
// bound.
//
// A finding comes with a machine-applicable fix that masks the operand to the
// destination width, making the truncation explicit (and the re-run clean:
// the mask caps the bound). Deliberate narrowings are annotated
// //lint:allow bitwidth — honored here too via AltAllow, since this analyzer
// subsumes the syntactic narrowing check.
var AddrWidth = &Analyzer{
	Name:         "addrwidth",
	AltAllow:     []string{"bitwidth"},
	Doc:          "address-typed values must not flow through narrowing conversions below the address width unless masked or annotated",
	NeedsProgram: true,
	Run:          runAddrWidth,
}

// addrNameParts mark an identifier as address-carrying; addrNameVeto
// disqualifies identifiers that merely describe address geometry (widths,
// counts, masks) rather than carrying an address.
var (
	addrNameParts = []string{"line", "row", "phys", "addr", "gang", "victim", "aggr", "block"}
	addrNameVeto  = []string{"bits", "width", "mask", "count", "per", "size", "rate", "num", "rows", "lines", "blocks"}
)

// isAddrName reports whether a defined identifier names an address value.
func isAddrName(name string) bool {
	l := strings.ToLower(name)
	for _, v := range addrNameVeto {
		if strings.Contains(l, v) {
			return false
		}
	}
	for _, p := range addrNameParts {
		if strings.Contains(l, p) {
			return true
		}
	}
	return false
}

// addrSliceVeto is the veto list for []uint64 identifiers. It deliberately
// omits the plural geometry words ("lines", "rows", "blocks"): on a scalar
// they describe a count, but a slice named "lines" IS a batch of addresses —
// exactly the values MapBatch moves.
var addrSliceVeto = []string{"bits", "width", "mask", "count", "per", "size", "rate", "num"}

// isAddrSliceName reports whether a defined identifier names a slice of
// address values.
func isAddrSliceName(name string) bool {
	l := strings.ToLower(name)
	for _, v := range addrSliceVeto {
		if strings.Contains(l, v) {
			return false
		}
	}
	for _, p := range addrNameParts {
		if strings.Contains(l, p) {
			return true
		}
	}
	return false
}

// sliceElemIntWidth returns the element bit width when t is a slice of
// (unnamed or named) integers.
func sliceElemIntWidth(t types.Type) (int, bool) {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return 0, false
	}
	return intWidth(sl.Elem())
}

// addrResultFuncs are function/method names whose results carry addresses
// regardless of result naming: the mapper and cipher surfaces.
var addrResultFuncs = map[string]bool{
	"Map": true, "Unmap": true, "Encrypt": true, "Decrypt": true,
}

// addrBatchFuncs are the batched translation surfaces: every []uint64
// parameter carries addresses, in any package — element reads inside the
// implementation inherit the container's 40-bit taint.
var addrBatchFuncs = map[string]bool{
	"MapBatch": true, "UnmapBatch": true, "EncryptBatch": true, "DecryptBatch": true,
}

func runAddrWidth(pass *Pass) error {
	prog := pass.Prog
	tm := prog.Taint("addrwidth", func() []Source {
		var srcs []Source
		for _, pkg := range prog.Packages() {
			srcPkg := isAddrSourcePkg(pkg.Path)
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					switch obj := pkg.Info.Defs[id].(type) {
					case *types.Var:
						if !srcPkg {
							return true
						}
						if w, isInt := intWidth(obj.Type()); isInt && w >= 64 && isAddrName(obj.Name()) {
							srcs = append(srcs, Source{
								n:     objNode(obj),
								bound: maxAddressBits,
								pos:   pkg.Fset.Position(obj.Pos()),
								what:  fmt.Sprintf("address value %q", obj.Name()),
							})
							return true
						}
						// Batches: a []uint64 named like a pile of addresses
						// taints the container, so element reads carry the
						// same 40-bit bound as a scalar address.
						if w, isInt := sliceElemIntWidth(obj.Type()); isInt && w >= 64 && isAddrSliceName(obj.Name()) {
							srcs = append(srcs, Source{
								n:     objNode(obj),
								bound: maxAddressBits,
								pos:   pkg.Fset.Position(obj.Pos()),
								what:  fmt.Sprintf("address batch %q", obj.Name()),
							})
						}
					case *types.Func:
						sig := obj.Type().(*types.Signature)
						if srcPkg && addrResultFuncs[obj.Name()] {
							res := sig.Results()
							for i := 0; i < res.Len(); i++ {
								if w, isInt := intWidth(res.At(i).Type()); isInt && w == 64 {
									srcs = append(srcs, Source{
										n:     resultNode(obj, i),
										bound: maxAddressBits,
										pos:   pkg.Fset.Position(obj.Pos()),
										what:  fmt.Sprintf("result of %s.%s", pkg.Types.Name(), obj.Name()),
									})
								}
							}
						}
						// The batched translation surfaces carry addresses in
						// their slice parameters wherever they are declared —
						// implementations of mapping.BatchMapper live outside
						// the address-arithmetic packages too.
						if addrBatchFuncs[obj.Name()] {
							params := sig.Params()
							for i := 0; i < params.Len(); i++ {
								p := params.At(i)
								if w, isInt := sliceElemIntWidth(p.Type()); isInt && w >= 64 {
									srcs = append(srcs, Source{
										n:     objNode(p),
										bound: maxAddressBits,
										pos:   pkg.Fset.Position(p.Pos()),
										what:  fmt.Sprintf("address batch %q of %s.%s", p.Name(), pkg.Types.Name(), obj.Name()),
									})
								}
							}
						}
					}
					return true
				})
			}
		}
		return srcs
	})
	if len(tm) == 0 {
		return nil
	}
	ev := &evaluator{prog: prog, pkg: pass.LintPkg}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dstW, isInt := intWidth(tv.Type)
			if !isInt || dstW >= 64 {
				return true
			}
			effDst := dstW
			if isSigned(tv.Type) {
				effDst--
			}
			arg := call.Args[0]
			hit, tainted := tm.Query(ev.origins(arg))
			if !tainted || hit.Bound <= effDst {
				return true
			}
			// The syntactic bound may already prove the value fits (e.g. a
			// local mask the graph also models — but keep both, the cheaper
			// one wins).
			if maxBits(pass, arg) <= effDst {
				return true
			}
			fix := maskFix(pass, arg, effDst)
			pass.Report(call.Pos(), fmt.Sprintf(
				"%s (%s) may carry %d bits here and narrows to %d-bit %s; mask explicitly, or annotate //lint:allow bitwidth <why>",
				hit.What, shortPos(hit.Pos), hit.Bound, dstW, tv.Type), fix...)
			return true
		})
	}
	return nil
}

// maskFix builds the suggested fix that masks the conversion operand to
// effDst bits, making the truncation explicit and the finding disappear on
// the next run.
func maskFix(pass *Pass, arg ast.Expr, effDst int) []SuggestedFix {
	if effDst <= 0 || effDst >= 64 {
		return nil
	}
	mask := fmt.Sprintf("%#x", uint64(1)<<effDst-1)
	text := fmt.Sprintf(" & %s", mask)
	if _, isBinary := ast.Unparen(arg).(*ast.BinaryExpr); isBinary && arg == ast.Unparen(arg) {
		// a+b & mask would bind wrong; parenthesize the operand.
		return []SuggestedFix{{
			Message: fmt.Sprintf("mask the operand to %d bits", effDst),
			Edits: []TextEdit{
				{Pos: arg.Pos(), End: arg.Pos(), NewText: "("},
				{Pos: arg.End(), End: arg.End(), NewText: ")" + text},
			},
		}}
	}
	return []SuggestedFix{{
		Message: fmt.Sprintf("mask the operand to %d bits", effDst),
		Edits:   []TextEdit{{Pos: arg.End(), End: arg.End(), NewText: text}},
	}}
}
