package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the interprocedural value-flow IR the dataflow analyzers
// (observereffect, addrwidth) run on. The IR is a graph over abstract value
// nodes:
//
//   - one node per named value object (locals, parameters, package variables,
//     struct fields — field-based: one node per field declaration, shared by
//     every instance);
//   - one node per (function, result-index) pair, representing the i-th
//     return value of that function across all call sites.
//
// Edges record "value may flow from → to", each annotated with a bit-bound
// transform (see xform) so the taint engine can track how many significant
// bits survive masks, shifts, and conversions along the way. Flows through
// assignments, returns, call arguments, struct-field reads/writes, composite
// literals, channel sends/receives, and slice/map element accesses are
// modeled; the analysis is flow-insensitive and context-insensitive (one
// summary node set per function, shared by all call sites), which is
// conservative in the taint direction. Closure result values are the one
// documented hole: a FuncLit's returns have no result node, so taint
// returned out of a closure is dropped (taint flowing *into* closures and
// sinks *inside* closure bodies are still tracked).
type node struct {
	obj types.Object // named value; nil for result nodes
	fn  *types.Func  // owning function, for result nodes
	idx int          // result index, for result nodes
}

// resultNode names the i-th result of fn.
func resultNode(fn *types.Func, i int) node { return node{fn: fn, idx: i} }

// objNode names a variable/parameter/field object.
func objNode(obj types.Object) node { return node{obj: obj} }

// xform is a monotone bit-bound transform f(b) = min(b+add, cap), clamped to
// [0, 64]. Masking by a constant sets cap; shifting adjusts add; a narrowing
// conversion caps at the destination width. Composition of two xforms is
// again an xform, and joining parallel paths takes the pointwise maximum —
// conservative (never under-reports the surviving bit width).
type xform struct {
	add int
	cap int
}

var identity = xform{add: 0, cap: 64}

// apply evaluates the transform on a concrete bound.
func (x xform) apply(b int) int {
	b += x.add
	if b > x.cap {
		b = x.cap
	}
	if b < 0 {
		b = 0
	}
	if b > 64 {
		b = 64
	}
	return b
}

// compose returns the transform "x then y".
func (x xform) compose(y xform) xform {
	c := xform{add: clamp64(x.add + y.add), cap: x.cap + y.add}
	if c.cap > y.cap {
		c.cap = y.cap
	}
	if c.cap < 0 {
		c.cap = 0
	}
	if c.cap > 64 {
		c.cap = 64
	}
	return c
}

// join returns the pointwise maximum of two transforms (conservative merge
// of parallel flow paths).
func (x xform) join(y xform) xform {
	if y.add > x.add {
		x.add = y.add
	}
	if y.cap > x.cap {
		x.cap = y.cap
	}
	return x
}

func clamp64(v int) int {
	if v > 64 {
		return 64
	}
	if v < -64 {
		return -64
	}
	return v
}

// capAt returns the transform that caps the bound at w bits.
func capAt(w int) xform { return xform{add: 0, cap: w} }

// Flow is one abstract value a given expression may have been derived from,
// with the bit-bound transform accumulated between the node and the
// expression.
type Flow struct {
	n  node
	tf xform
}

type edgeTo struct {
	to node
	tf xform
}

// funcBody locates the declaration of a function that has a body in the
// loaded program.
type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Program is the whole-module view the interprocedural analyzers share: the
// value-flow graph, the function-declaration index, and the static call
// graph. Build once per Run via BuildProgram.
type Program struct {
	pkgs   []*Package
	byPath map[string]*Package

	fns   map[*types.Func]*funcBody
	edges map[node][]edgeTo

	// callees is the static call graph: for each function with a body, the
	// set of functions it calls directly (interface callees resolve to the
	// interface method object).
	callees map[*types.Func]map[*types.Func]bool

	taintCache map[string]TaintMap

	// conc memoizes the concurrency-fact database (see conc.go), built on
	// first use by a concurrency analyzer.
	conc *concFacts

	// dom memoizes the domain-fact database (see domain.go), built on first
	// use by addrspace, unitflow, or hotalloc.
	dom *domainFacts

	// ifaceImpls memoizes interface-method → concrete-implementation edges
	// (see hotalloc.go), built on first use by hot reachability.
	ifaceImpls map[*types.Func][]*types.Func
}

// BuildProgram constructs the value-flow graph over the loaded packages.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		pkgs:       pkgs,
		byPath:     make(map[string]*Package),
		fns:        make(map[*types.Func]*funcBody),
		edges:      make(map[node][]edgeTo),
		callees:    make(map[*types.Func]map[*types.Func]bool),
		taintCache: make(map[string]TaintMap),
	}
	for _, pkg := range pkgs {
		p.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.fns[fn] = &funcBody{pkg: pkg, decl: fd}
				}
			}
		}
	}
	for _, pkg := range pkgs {
		ev := &evaluator{prog: p, pkg: pkg}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn != nil {
					ev.buildFunc(fn, fd)
				}
			}
		}
		// Package-level variable initializers flow into their variables.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							obj := pkg.Info.Defs[name]
							if obj != nil {
								ev.addFlows(ev.origins(vs.Values[i]), objNode(obj))
							}
						}
					}
				}
			}
		}
	}
	return p
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Packages returns the loaded packages, sorted by import path.
func (p *Program) Packages() []*Package { return p.pkgs }

// HasBody reports whether fn's declaration (with body) was loaded.
func (p *Program) HasBody(fn *types.Func) bool { return p.fns[fn] != nil }

// Callees returns fn's direct static callees, sorted by full name.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	set := p.callees[fn]
	out := make([]*types.Func, 0, len(set))
	for c := range set { // key extraction: sorted below
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

func (p *Program) addEdge(from Flow, to node) {
	if from.n == (node{}) || to == (node{}) {
		return
	}
	p.edges[from.n] = append(p.edges[from.n], edgeTo{to: to, tf: from.tf})
}

// evaluator walks one package's functions, adding edges to the program graph
// and computing expression origins.
type evaluator struct {
	prog *Program
	pkg  *Package
}

func (ev *evaluator) addFlows(flows []Flow, to node) {
	for _, f := range flows {
		ev.prog.addEdge(f, to)
	}
}

// buildFunc adds the edges induced by one function declaration: named-result
// wiring, statement-level flows, and call-site argument bindings.
func (ev *evaluator) buildFunc(fn *types.Func, fd *ast.FuncDecl) {
	// Named results flow into the function's result nodes (covers naked
	// returns).
	if fd.Type.Results != nil {
		idx := 0
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := ev.pkg.Info.Defs[name]; obj != nil {
					ev.prog.addEdge(Flow{n: objNode(obj), tf: identity}, resultNode(fn, idx))
				}
				idx++
			}
		}
	}
	// fnStack tracks the enclosing function for return statements; FuncLit
	// bodies push nil (closure results have no node — see the package
	// comment).
	fnStack := []*types.Func{fn}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fnStack = append(fnStack, nil)
			ast.Inspect(n.Body, walk)
			fnStack = fnStack[:len(fnStack)-1]
			return false
		case *ast.AssignStmt:
			ev.buildAssign(n)
		case *ast.SendStmt:
			ev.addFlows(ev.origins(n.Value), ev.lvalueNode(n.Chan))
		case *ast.ReturnStmt:
			cur := fnStack[len(fnStack)-1]
			if cur == nil || len(n.Results) == 0 {
				return true
			}
			if len(n.Results) == 1 && cur.Type().(*types.Signature).Results().Len() > 1 {
				// return f() forwarding a tuple.
				for i, fl := range ev.callResults(n.Results[0], cur.Type().(*types.Signature).Results().Len()) {
					for _, f := range fl {
						ev.prog.addEdge(f, resultNode(cur, i))
					}
				}
				return true
			}
			for i, res := range n.Results {
				ev.addFlows(ev.origins(res), resultNode(cur, i))
			}
		case *ast.RangeStmt:
			src := ev.origins(n.X)
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs != nil {
					ev.addFlows(src, ev.lvalueNode(lhs))
				}
			}
		case *ast.CallExpr:
			ev.buildCall(n)
		case *ast.CompositeLit:
			ev.buildCompositeLit(n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// buildAssign adds edges for one assignment statement, including tuple
// assignments from calls, type assertions, map reads, and channel receives.
func (ev *evaluator) buildAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs := n.Rhs[0]
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			for i, fl := range ev.callResultFlows(call, len(n.Lhs)) {
				if i < len(n.Lhs) {
					ev.addFlows(fl, ev.lvalueNode(n.Lhs[i]))
				}
			}
			return
		}
		// v, ok := m[k] / <-ch / x.(T): both targets derive from the operand.
		src := ev.origins(rhs)
		for _, lhs := range n.Lhs {
			ev.addFlows(src, ev.lvalueNode(lhs))
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			ev.addFlows(ev.origins(n.Rhs[i]), ev.lvalueNode(lhs))
		}
	}
}

// buildCall binds argument flows to parameter nodes for calls whose callee
// is statically known and has a loaded body, and records the call edge.
func (ev *evaluator) buildCall(call *ast.CallExpr) {
	fn := ev.staticCallee(call)
	if fn == nil {
		return
	}
	ev.recordCallEdge(call, fn)
	body := ev.prog.fns[fn]
	if body == nil {
		return
	}
	fd := body.decl
	// Receiver binding.
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := body.pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				ev.addFlows(ev.origins(sel.X), objNode(obj))
			}
		}
	}
	// Parameter binding (variadic tail args all bind the final parameter).
	params := paramObjs(body.pkg, fd)
	for i, arg := range call.Args {
		j := i
		if j >= len(params) {
			j = len(params) - 1
		}
		if j >= 0 && params[j] != nil {
			ev.addFlows(ev.origins(arg), objNode(params[j]))
		}
	}
}

// recordCallEdge adds caller→callee to the static call graph, attributing
// calls inside closures to the enclosing declared function.
func (ev *evaluator) recordCallEdge(call *ast.CallExpr, callee *types.Func) {
	caller := ev.enclosingFunc(call.Pos())
	if caller == nil {
		return
	}
	set := ev.prog.callees[caller]
	if set == nil {
		set = make(map[*types.Func]bool)
		ev.prog.callees[caller] = set
	}
	set[callee] = true
}

// enclosingFunc finds the declared function whose body spans pos.
func (ev *evaluator) enclosingFunc(pos token.Pos) *types.Func {
	for _, f := range ev.pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
					fn, _ := ev.pkg.Info.Defs[fd.Name].(*types.Func)
					return fn
				}
			}
		}
	}
	return nil
}

// buildCompositeLit wires element values into field nodes (struct literals)
// so T{F: v} taints field F the same way t.F = v does.
func (ev *evaluator) buildCompositeLit(lit *ast.CompositeLit) {
	tv, ok := ev.pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if fobj, ok := ev.pkg.Info.Uses[key].(*types.Var); ok {
					ev.addFlows(ev.origins(kv.Value), objNode(fobj))
				}
			}
			continue
		}
		if i < st.NumFields() {
			ev.addFlows(ev.origins(elt), objNode(st.Field(i)))
		}
	}
}

// lvalueNode resolves an assignment target to its abstract node: the object
// for identifiers, the field object for selectors, and the container's base
// for index/star/paren forms (element writes taint the container).
func (ev *evaluator) lvalueNode(lhs ast.Expr) node {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return node{}
		}
		if obj := ev.pkg.Info.Defs[x]; obj != nil {
			return objNode(obj)
		}
		if obj := ev.pkg.Info.Uses[x]; obj != nil {
			return objNode(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := ev.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return objNode(sel.Obj())
		}
		if obj := ev.pkg.Info.Uses[x.Sel]; obj != nil {
			return objNode(obj)
		}
	case *ast.IndexExpr:
		return ev.lvalueNode(x.X)
	case *ast.StarExpr:
		return ev.lvalueNode(x.X)
	case *ast.ParenExpr:
		return ev.lvalueNode(x.X)
	}
	return node{}
}

// staticCallee resolves the *types.Func a call targets, if any: declared
// functions, methods (through the static receiver type), and interface
// methods (the interface's method object). Calls through plain function
// values and closures return nil.
func (ev *evaluator) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := ev.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := ev.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := ev.pkg.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// callResultFlows returns, per result index, the flows a call expression's
// results derive from. Known callees contribute their result nodes; callees
// without a loaded body (stdlib, interface methods, function values)
// additionally pass their arguments through, conservatively.
func (ev *evaluator) callResultFlows(call *ast.CallExpr, nresults int) [][]Flow {
	out := make([][]Flow, nresults)
	fn := ev.staticCallee(call)
	var passthrough []Flow
	if fn == nil || ev.prog.fns[fn] == nil {
		passthrough = ev.argPassthrough(call)
	}
	for i := range out {
		if fn != nil {
			out[i] = append(out[i], Flow{n: resultNode(fn, i), tf: identity})
		}
		out[i] = append(out[i], passthrough...)
	}
	return out
}

// callResults is callResultFlows for an expression expected to be a call;
// non-calls degrade to origins on every index.
func (ev *evaluator) callResults(e ast.Expr, nresults int) [][]Flow {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return ev.callResultFlows(call, nresults)
	}
	out := make([][]Flow, nresults)
	src := ev.origins(e)
	for i := range out {
		out[i] = src
	}
	return out
}

// argPassthrough unions the origins of a call's arguments (and method
// receiver), the conservative model for callees we cannot see into.
func (ev *evaluator) argPassthrough(call *ast.CallExpr) []Flow {
	var flows []Flow
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method value receiver (skip package qualifiers, which resolve to
		// no value origins anyway).
		flows = append(flows, ev.origins(sel.X)...)
	}
	for _, arg := range call.Args {
		flows = append(flows, ev.origins(arg)...)
	}
	return flows
}

// paramObjs collects the parameter objects of a function declaration, in
// order.
func paramObjs(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

// origins computes the abstract values an expression may be derived from,
// with accumulated bit-bound transforms. This is the expression-level half
// of the dataflow engine; the graph edges built above are its statement-
// level half.
func (ev *evaluator) origins(e ast.Expr) []Flow {
	info := ev.pkg.Info
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			switch obj.(type) {
			case *types.Var:
				return []Flow{{n: objNode(obj), tf: identity}}
			}
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			// Field read: the field node alone. Field nodes are shared across
			// instances, so a tainted write to any instance's field reaches
			// every read; adding the container's own taint here would make
			// one tainted field contaminate all of its siblings through the
			// container (field-insensitivity blowup).
			return []Flow{{n: objNode(sel.Obj()), tf: identity}}
		}
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok {
			return []Flow{{n: objNode(obj), tf: identity}}
		}
		return nil
	case *ast.ParenExpr:
		return ev.origins(x.X)
	case *ast.StarExpr:
		return ev.origins(x.X)
	case *ast.SliceExpr:
		return ev.origins(x.X)
	case *ast.IndexExpr:
		if tv, ok := info.Types[x.X]; ok && tv.IsValue() {
			return ev.origins(x.X) // element read: container taint
		}
		return nil // generic instantiation
	case *ast.TypeAssertExpr:
		return ev.origins(x.X)
	case *ast.UnaryExpr:
		return ev.origins(x.X) // incl. & (address-of) and <- (receive)
	case *ast.BinaryExpr:
		return ev.binaryOrigins(x)
	case *ast.CompositeLit:
		// Struct literals are fresh values: their elements flow into field
		// nodes (buildCompositeLit), not into the container, for the same
		// field-sensitivity reason as the selector case above. Indexed
		// collections (slices, arrays, maps) *are* their elements — an index
		// read returns the container's origins — so those union.
		if tv, ok := info.Types[x]; ok {
			if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct {
				return nil
			}
		}
		var flows []Flow
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			flows = append(flows, ev.origins(elt)...)
		}
		return flows
	case *ast.CallExpr:
		return ev.callOrigins(x)
	}
	return nil
}

// binaryOrigins models bit-bound arithmetic: masks cap the bound, constant
// shifts add/subtract, mod caps, everything else joins conservatively.
func (ev *evaluator) binaryOrigins(x *ast.BinaryExpr) []Flow {
	both := func(tf xform) []Flow {
		flows := composeAll(ev.origins(x.X), tf)
		return append(flows, composeAll(ev.origins(x.Y), tf)...)
	}
	switch x.Op {
	case token.AND:
		if m, ok := ev.constUintOf(x.Y); ok {
			return composeAll(ev.origins(x.X), capAt(bitsOf(m)))
		}
		if m, ok := ev.constUintOf(x.X); ok {
			return composeAll(ev.origins(x.Y), capAt(bitsOf(m)))
		}
		return both(identity)
	case token.AND_NOT:
		return both(identity)
	case token.SHR:
		if amt, ok := ev.constUintOf(x.Y); ok {
			return composeAll(ev.origins(x.X), xform{add: -int(min(amt, 64)), cap: 64})
		}
		return ev.origins(x.X)
	case token.SHL:
		if amt, ok := ev.constUintOf(x.Y); ok {
			return composeAll(ev.origins(x.X), xform{add: int(min(amt, 64)), cap: 64})
		}
		return composeAll(ev.origins(x.X), capAt(64))
	case token.REM:
		if m, ok := ev.constUintOf(x.Y); ok && m > 0 {
			return composeAll(ev.origins(x.X), capAt(bitsOf(m-1)))
		}
		return both(identity)
	case token.ADD, token.SUB, token.OR, token.XOR:
		return both(xform{add: 1, cap: 64})
	case token.MUL, token.QUO:
		return both(xform{add: 64, cap: 64}) // product bounds are not unary; give up precisely
	default: // comparisons, &&, ||: boolean result still derives from operands
		return both(identity)
	}
}

// callOrigins models conversions, builtins, and function calls.
func (ev *evaluator) callOrigins(call *ast.CallExpr) []Flow {
	info := ev.pkg.Info
	// Conversion T(x): the value is x's, capped at T's width for integers.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		tf := identity
		if w, ok := intWidth(tv.Type); ok {
			tf = capAt(w)
		}
		return composeAll(ev.origins(call.Args[0]), tf)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "append", "min", "max", "real", "imag", "complex":
				var flows []Flow
				for _, arg := range call.Args {
					flows = append(flows, ev.origins(arg)...)
				}
				return flows
			default: // make, new, panic, print, delete, clear, copy, ...
				return nil
			}
		}
	}
	flows := ev.callResultFlows(call, 1)
	return flows[0]
}

func (ev *evaluator) constUintOf(e ast.Expr) (uint64, bool) {
	p := &Pass{Info: ev.pkg.Info}
	return constUint(p, e)
}

func composeAll(flows []Flow, tf xform) []Flow {
	if tf == identity {
		return flows
	}
	out := make([]Flow, len(flows))
	for i, f := range flows {
		out[i] = Flow{n: f.n, tf: f.tf.compose(tf)}
	}
	return out
}
