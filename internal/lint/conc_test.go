package lint

import (
	"go/types"
	"testing"
)

// concFactsFor loads the golden testdata tree and builds its concurrency
// facts once per test.
func concFactsFor(t *testing.T) (*Program, *concFacts) {
	t.Helper()
	p := loadTestProgram(t)
	return p, p.concurrency()
}

// findFunc resolves a function or method by its FullName, e.g.
// "(lockdiscipline.Counter).Inc" or "goroutineescape.Pooled".
func findFunc(t *testing.T, p *Program, fullName string) *types.Func {
	t.Helper()
	for fn := range p.fns {
		if fn.FullName() == fullName {
			return fn
		}
	}
	t.Fatalf("function %q not found in program", fullName)
	return nil
}

// findField resolves a struct field object by owner type name and field name.
func findField(t *testing.T, f *concFacts, owner, name string) *types.Var {
	t.Helper()
	for fv, info := range f.fieldDecl {
		if fv.Name() != name || info.owner == nil {
			continue
		}
		if info.owner.Obj().Name() == owner {
			return fv
		}
	}
	t.Fatalf("field %s.%s not found in fieldDecl", owner, name)
	return nil
}

// TestLockRegions pins the held-set walk on the lockdiscipline fixtures:
// plain Lock/Unlock pairs, deferred unlocks (held to the end), and unlocked
// accesses, per access site of Counter.n.
func TestLockRegions(t *testing.T) {
	_, f := concFactsFor(t)
	n := findField(t, f, "Counter", "n")
	mu := findField(t, f, "Counter", "mu")

	holdsByFn := make(map[string]bool)
	for _, fa := range f.fields {
		if fa.field != n || fa.fn == nil {
			continue
		}
		holdsByFn[fa.fn.Name()] = fa.holds.holdsAny(mu)
	}
	want := map[string]bool{
		"Inc":  true,  // Lock/Unlock pair
		"Dec":  true,  // defer Unlock holds to the end
		"Set":  true,  // Lock/Unlock pair
		"Peek": false, // no lock at all
		"Racy": false, // suppressed in reports, but the fact is unlocked
	}
	for fn, held := range want {
		got, ok := holdsByFn[fn]
		if !ok {
			t.Errorf("no access fact for Counter.n in %s", fn)
			continue
		}
		if got != held {
			t.Errorf("%s: holdsAny(mu) = %v, want %v", fn, got, held)
		}
	}
}

// TestLockModes pins read/write mode tracking on the RWMutex fixture: Lock
// acquires exclusively, RLock does not.
func TestLockModes(t *testing.T) {
	_, f := concFactsFor(t)
	avg := findField(t, f, "Stats", "avg")
	rw := findField(t, f, "Stats", "rw")

	for _, fa := range f.fields {
		if fa.field != avg || fa.fn == nil {
			continue
		}
		switch fa.fn.Name() {
		case "SetA", "SetB":
			if !fa.holds.holdsWrite(rw) {
				t.Errorf("%s: rw should be held exclusively", fa.fn.Name())
			}
		case "Read", "BadWrite":
			if !fa.holds.holdsAny(rw) || fa.holds.holdsWrite(rw) {
				t.Errorf("%s: rw should be held in read mode only", fa.fn.Name())
			}
		}
	}
}

// TestEntryHeld pins the must-hold fixpoint on the interprocedural fixtures:
// grow (all callers locked) inherits mu, shrink (one unlocked caller) does
// not.
func TestEntryHeld(t *testing.T) {
	p, f := concFactsFor(t)
	mu := findField(t, f, "Table", "mu")
	grow := findFunc(t, p, "(*lockdiscipline.Table).grow")
	shrink := findFunc(t, p, "(*lockdiscipline.Table).shrink")

	if !f.entryHeld[grow].holdsAny(mu) {
		t.Error("grow: entryHeld should include mu (every caller locks)")
	}
	if f.entryHeld[shrink].holdsAny(mu) {
		t.Error("shrink: entryHeld must not include mu (Compact calls it unlocked)")
	}
}

// TestSpawnCaptures pins spawn-site capture sets: a FuncLit spawned by `go`
// captures its free variables, and a closure handed to a worker-pool
// parameter is recognized as a spawn with the same capture rule.
func TestSpawnCaptures(t *testing.T) {
	p, f := concFactsFor(t)

	captures := func(spawner string) map[string]bool {
		out := make(map[string]bool)
		for _, sp := range f.spawns {
			if sp.fn == nil || sp.fn.FullName() != spawner {
				continue
			}
			for _, o := range sp.captured {
				out[o.Name()] = true
			}
		}
		return out
	}

	if got := captures("goroutineescape.Direct"); !got["count"] {
		t.Errorf("Direct's goroutine should capture count, got %v", got)
	}
	if got := captures("(*goroutineescape.Sim).Helper"); !got["s"] {
		t.Errorf("Helper's goroutine should capture the receiver s, got %v", got)
	}
	// Worker pool: the spawn site is the closure passed to Pool, recorded
	// against the calling function Pooled even though the `go` statement
	// lives inside Pool.
	if got := captures("goroutineescape.Pooled"); !got["hits"] {
		t.Errorf("Pooled's pool closure should capture hits, got %v", got)
	}
	_ = p
}

// TestCallHolds pins that call facts carry the held set at the call site:
// Table.Reserve calls grow from inside a loop while holding mu.
func TestCallHolds(t *testing.T) {
	p, f := concFactsFor(t)
	mu := findField(t, f, "Table", "mu")
	reserve := findFunc(t, p, "(*lockdiscipline.Table).Reserve")
	grow := findFunc(t, p, "(*lockdiscipline.Table).grow")

	found := false
	for _, cf := range f.calls {
		if cf.caller == reserve && cf.callee == grow {
			found = true
			if !cf.holds.holdsAny(mu) {
				t.Error("Reserve → grow call site should hold mu (deferred unlock)")
			}
		}
	}
	if !found {
		t.Fatal("no call fact for Reserve → grow")
	}
}

// TestWaitGroupAliasPairing pins union-find over value-flow edges: the
// WaitGroup in HelperDone and the *sync.WaitGroup parameter of worker are
// one alias class, so the helper's Done pairs with the caller's Add.
func TestWaitGroupAliasPairing(t *testing.T) {
	p, f := concFactsFor(t)
	u := f.aliasClasses(p, isWaitGroupObj)

	var addObj, doneObj types.Object
	for _, op := range f.wgs {
		if op.fn == nil {
			continue
		}
		switch {
		case op.fn.FullName() == "waitgroup.HelperDone" && op.kind == wgAdd:
			addObj = op.obj
		case op.fn.FullName() == "waitgroup.worker" && op.kind == wgDone:
			doneObj = op.obj
		}
	}
	if addObj == nil || doneObj == nil {
		t.Fatalf("missing wg ops: add=%v done=%v", addObj, doneObj)
	}
	if u.find(addObj) != u.find(doneObj) {
		t.Error("HelperDone's WaitGroup and worker's parameter should share an alias class")
	}
}

// TestChanAliasPairing pins the same unification for channels: the channel
// made in Paired and the parameter of produce are one class, so the helper's
// send matches the caller's receive.
func TestChanAliasPairing(t *testing.T) {
	p, f := concFactsFor(t)
	u := f.aliasClasses(p, isChanObj)

	var sendObj, recvObj types.Object
	for _, op := range f.chans {
		if op.fn == nil {
			continue
		}
		switch {
		case op.fn.FullName() == "goroutineleak.produce" && op.kind == chanSend:
			sendObj = op.obj
		case op.fn.FullName() == "goroutineleak.Paired" && op.kind == chanRecv:
			recvObj = op.obj
		}
	}
	if sendObj == nil || recvObj == nil {
		t.Fatalf("missing chan ops: send=%v recv=%v", sendObj, recvObj)
	}
	if u.find(sendObj) != u.find(recvObj) {
		t.Error("Paired's channel and produce's parameter should share an alias class")
	}
}

// TestGuardAnnotationResolution pins declaration-side parsing: Ledger.total
// carries `// guarded by mu` and resolves to the sibling mutex field.
func TestGuardAnnotationResolution(t *testing.T) {
	_, f := concFactsFor(t)
	total := findField(t, f, "Ledger", "total")
	mu := findField(t, f, "Ledger", "mu")

	info := f.fieldDecl[total]
	if info.guard != "mu" {
		t.Fatalf("annotation text = %q, want mu", info.guard)
	}
	if info.guardObj != mu {
		t.Errorf("annotation resolved to %v, want sibling field mu", info.guardObj)
	}
}
