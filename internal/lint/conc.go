package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file extends the value-flow IR (graph.go) with concurrency facts: the
// shared substrate the lockdiscipline, goroutineescape, goroutineleak, and
// waitgroup analyzers run on. The facts are collected in one deterministic
// walk over every loaded function body:
//
//   - lock regions: a sequential walk tracks the set of sync.Mutex /
//     sync.RWMutex objects held at each point. Lock/RLock add to the held
//     set, Unlock/RUnlock remove; `defer mu.Unlock()` leaves the mutex held
//     to the end of the function. Locks acquired inside a branch, loop, or
//     select arm are scoped to it (the held set is restored afterwards),
//     which is conservative: a lock the walk cannot prove held is treated as
//     not held.
//   - entry locks: a must-analysis fixpoint infers, for each unexported
//     function, the intersection of locks held at all of its call sites
//     (entryHeld), so a locked public method calling an unlocked private
//     helper does not make the helper's field accesses look unguarded.
//     Calls made from inside goroutine bodies contribute only their locally
//     held locks (a goroutine does not inherit its spawner's locks).
//   - spawn sites: every `go` statement, plus closures passed to worker-pool
//     parameters — a parameter p is a spawn parameter if the callee (or a
//     transitive callee it forwards p to) executes `go p(...)`. Each spawn
//     records the closure body and its captured variables (free variables of
//     the FuncLit, or argument origins for `go f(args)`).
//   - field and variable accesses: every struct-field read/write and every
//     variable write, annotated with the held set, the enclosing function,
//     and the enclosing spawn (if inside a goroutine body).
//   - channel operations: send/recv/close sites per channel object, with
//     select membership; channel objects are merged into alias classes via
//     union-find over the value-flow edges, so a channel passed into a
//     helper unifies with the caller's.
//   - WaitGroup operations: Add/Done/Wait sites per WaitGroup object (alias
//     classes like channels), with deferred-call and goroutine context.
//   - struct metadata: per field declaration, the declaring ast.Field, the
//     owning named type, sibling fields, and any `// guarded by <name>`
//     annotation on the field's doc or trailing comment.
//
// Known unsoundness (documented in DESIGN.md §11): the held-set walk is
// syntactic (a mutex reached through two different pointers is two objects);
// closure bodies not passed to `go` or a spawn parameter are walked with the
// caller's held set (they may actually run later); base objects of nested
// selector paths (a.b.c) resolve to the intermediate field node, not the
// root; and dynamic calls (function values, interface methods without
// bodies) are opaque.

// lockMode distinguishes write locks (Lock) from read locks (RLock).
type lockMode uint8

const (
	lockWrite lockMode = iota
	lockRead
)

// lockSet maps a mutex object to the strongest mode it is held in.
type lockSet map[types.Object]lockMode

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// acquire records the mutex as held, upgrading read → write but never
// downgrading.
func (ls lockSet) acquire(o types.Object, m lockMode) {
	if cur, ok := ls[o]; ok && cur == lockWrite {
		return
	}
	ls[o] = m
}

func (ls lockSet) release(o types.Object) { delete(ls, o) }

// holdsWrite reports whether o is held exclusively.
func (ls lockSet) holdsWrite(o types.Object) bool {
	m, ok := ls[o]
	return ok && m == lockWrite
}

// holdsAny reports whether o is held in any mode.
func (ls lockSet) holdsAny(o types.Object) bool {
	_, ok := ls[o]
	return ok
}

// union merges o into ls, keeping the strongest mode per mutex.
func (ls lockSet) union(o lockSet) lockSet {
	if len(o) == 0 {
		return ls
	}
	out := ls.clone()
	for k, v := range o {
		out.acquire(k, v)
	}
	return out
}

// intersect keeps only mutexes held in both sets, at the weaker mode.
func (ls lockSet) intersect(o lockSet) lockSet {
	out := make(lockSet)
	for k, v := range ls {
		if ov, ok := o[k]; ok {
			m := v
			if ov == lockRead {
				m = lockRead
			}
			out[k] = m
		}
	}
	return out
}

func (ls lockSet) equal(o lockSet) bool {
	if len(ls) != len(o) {
		return false
	}
	for k, v := range ls {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// fieldAccess is one read or write of a struct field.
type fieldAccess struct {
	field *types.Var // the field object (one per declaration, all instances)
	pos   token.Pos
	pkg   *Package    // package containing the access site
	write bool        // assignment, IncDec, or element write through the field
	holds lockSet     // locally held locks at the site (see effectiveHolds)
	fn    *types.Func // enclosing declared function; nil at package scope
	spawn int         // enclosing spawn id, or -1
	base  []types.Object
}

// varWrite is one write to a named variable (local or package-level).
type varWrite struct {
	obj   types.Object
	pos   token.Pos
	pkg   *Package
	holds lockSet
	fn    *types.Func
	spawn int
}

// callFact is one static call site with its concurrency context and the
// named objects each argument (and the receiver) derives from — the binding
// the goroutineescape analyzer threads capture taint through.
type callFact struct {
	caller   *types.Func
	callee   *types.Func
	holds    lockSet
	spawn    int // spawn id if the call happens inside a goroutine body, else -1
	pos      token.Pos
	argObjs  [][]types.Object
	recvObjs []types.Object
}

type chanOpKind uint8

const (
	chanSend chanOpKind = iota
	chanRecv
	chanClose
)

// chanOp is one channel operation site.
type chanOp struct {
	obj       types.Object
	kind      chanOpKind
	pos       token.Pos
	pkg       *Package
	fn        *types.Func
	spawn     int
	selectPos token.Pos // enclosing select statement, or NoPos
	selectDef bool      // that select has a default clause
}

type wgOpKind uint8

const (
	wgAdd wgOpKind = iota
	wgDone
	wgWait
)

// wgOp is one sync.WaitGroup Add/Done/Wait site.
type wgOp struct {
	obj      types.Object
	kind     wgOpKind
	pos      token.Pos
	pkg      *Package
	fn       *types.Func
	spawn    int
	deferred bool      // `defer wg.Done()` or inside a deferred closure
	body     token.Pos // Pos of the enclosing body block (function or closure)
}

// retFact is one return statement, keyed by its enclosing body block so the
// waitgroup analyzer can pair early returns against Done sites.
type retFact struct {
	pos   token.Pos
	pkg   *Package
	fn    *types.Func
	spawn int
	body  token.Pos
}

// spawnSite is one goroutine creation point.
type spawnSite struct {
	id       int
	fn       *types.Func // the spawning function
	pkg      *Package
	pos      token.Pos
	body     *ast.BlockStmt // closure body for FuncLit spawns; nil for go f()
	callee   *types.Func    // static callee for `go f(...)`; nil for closures
	captured []types.Object // free variables / argument origins, position order
}

// fieldDeclInfo is the declaration-side metadata of one struct field.
type fieldDeclInfo struct {
	pkg      *Package
	field    *ast.Field   // the declaring field (may name several objects)
	owner    *types.Named // owning named struct type; nil for anonymous structs
	guard    string       // `guarded by <name>` annotation text, if any
	guardObj types.Object // resolved guard (sibling field or package var)
	siblings []*types.Var // all fields of the owning struct, in order
}

// concFacts is the complete concurrency-fact database, built once per
// Program and shared by the four concurrency analyzers.
type concFacts struct {
	spawns    []*spawnSite
	fields    []fieldAccess
	varWrites []varWrite
	calls     []callFact
	chans     []chanOp
	wgs       []wgOp
	rets      []retFact
	ticks     []struct {
		pos token.Pos
		pkg *Package
	}

	fieldDecl map[*types.Var]*fieldDeclInfo
	buffered  map[types.Object]bool // channel objects assigned a buffered make

	entryHeld map[*types.Func]lockSet

	// spawnReach memoizes the union of goroutineReach over all spawns.
	spawnReach map[*types.Func]bool

	// guards is the lockdiscipline inference result, memoized here because
	// the analyzer runs once per package but the inference is module-global.
	guards     map[*types.Var]*guardInfo
	guardsDone bool
}

// concurrency builds (once) and returns the concurrency facts for the
// program. Run is single-threaded per Program, so a plain memo suffices.
func (p *Program) concurrency() *concFacts {
	if p.conc != nil {
		return p.conc
	}
	f := &concFacts{
		fieldDecl: make(map[*types.Var]*fieldDeclInfo),
		buffered:  make(map[types.Object]bool),
		entryHeld: make(map[*types.Func]lockSet),
	}
	w := &concWalker{prog: p, facts: f}
	w.collectSpawnParams()
	for _, pkg := range p.pkgs {
		w.pkg = pkg
		w.ev = &evaluator{prog: p, pkg: pkg}
		w.collectStructDecls()
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				ctx := &concCtx{fn: fn, spawn: -1, held: lockSet{}, body: fd.Body.Pos()}
				w.stmt(fd.Body, ctx)
			}
		}
	}
	w.resolveGuardAnnotations()
	f.computeEntryHeld(p)
	p.conc = f
	return f
}

// effectiveHolds is the held set the analyzers should treat an access as
// having: the locally tracked locks plus, for sites not inside a goroutine
// body, the locks every caller provably holds at the enclosing function's
// entry.
func (f *concFacts) effectiveHolds(holds lockSet, fn *types.Func, spawn int) lockSet {
	if spawn >= 0 || fn == nil {
		return holds
	}
	return holds.union(f.entryHeld[fn])
}

// computeEntryHeld runs the must-hold fixpoint: for each unexported function
// with at least one static call site, the intersection over call sites of
// (locks held at the site ∪ entry locks of the caller). Exported functions
// and functions with no observed callers start (and stay) empty — they can
// be entered from anywhere.
func (f *concFacts) computeEntryHeld(p *Program) {
	callers := make(map[*types.Func][]callFact)
	for _, cf := range f.calls {
		if cf.callee != nil && p.fns[cf.callee] != nil && !cf.callee.Exported() {
			callers[cf.callee] = append(callers[cf.callee], cf)
		}
	}
	fns := make([]*types.Func, 0, len(callers))
	for fn := range callers { // key extraction: sorted below
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	// Optimistic initialization to ⊤ (nil marks "not yet constrained"), then
	// decrease to the fixpoint. The lattice is finite (subsets of the mutex
	// universe) and every step intersects, so this terminates.
	top := make(map[*types.Func]bool, len(fns))
	for _, fn := range fns {
		top[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			var acc lockSet
			first := true
			bottom := false
			for _, cf := range callers[fn] {
				at := cf.holds
				if cf.spawn < 0 && cf.caller != nil && !top[cf.caller] {
					at = at.union(f.entryHeld[cf.caller])
				} else if cf.spawn < 0 && cf.caller != nil && top[cf.caller] {
					// Caller still ⊤: skip this site optimistically.
					continue
				}
				if first {
					acc = at.clone()
					first = false
				} else {
					acc = acc.intersect(at)
				}
				if len(acc) == 0 {
					bottom = true
					break
				}
			}
			if first && !bottom {
				continue // all call sites still ⊤; stay ⊤ this round
			}
			if acc == nil {
				acc = lockSet{}
			}
			if top[fn] || !f.entryHeld[fn].equal(acc) {
				top[fn] = false
				f.entryHeld[fn] = acc
				changed = true
			}
		}
	}
	// Anything still ⊤ is in a caller cycle with no grounded entry: treat as
	// unconstrained (empty), the conservative answer.
	for fn, t := range top {
		if t {
			f.entryHeld[fn] = lockSet{}
		}
	}
}

// concCtx is the walk state for one body: the enclosing declared function,
// the enclosing spawn (goroutine) id, the locally held lock set, whether we
// are inside a deferred closure, and the Pos of the nearest enclosing body
// block (for Done/return pairing).
type concCtx struct {
	fn       *types.Func
	spawn    int
	held     lockSet
	deferred bool
	body     token.Pos
}

func (c *concCtx) fork() *concCtx {
	return &concCtx{fn: c.fn, spawn: c.spawn, held: c.held.clone(), deferred: c.deferred, body: c.body}
}

// concWalker drives the fact-collection walk.
type concWalker struct {
	prog  *Program
	facts *concFacts
	pkg   *Package
	ev    *evaluator

	// spawnParams marks (function, parameter index) pairs whose argument is
	// eventually launched via a `go` statement (worker pools).
	spawnParams map[*types.Func]map[int]bool
}

// guardedByRE extracts the mutex name from a `guarded by mu` comment.
var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// collectStructDecls indexes every struct field declared in the current
// package: owning type, siblings, and `guarded by` annotations.
func (w *concWalker) collectStructDecls() {
	for _, file := range w.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			var owner *types.Named
			var st *ast.StructType
			if ok {
				st, _ = ts.Type.(*ast.StructType)
				if st != nil {
					if tn, ok := w.pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						owner, _ = tn.Type().(*types.Named)
					}
				}
			} else if s, isStruct := n.(*ast.StructType); isStruct {
				// Anonymous struct (e.g. a package-level cache var). Only
				// record it if we have not already seen it under a TypeSpec.
				st = s
			}
			if st == nil || st.Fields == nil {
				return true
			}
			var siblings []*types.Var
			var infos []*fieldDeclInfo
			for _, fld := range st.Fields.List {
				info := &fieldDeclInfo{pkg: w.pkg, field: fld, owner: owner}
				if txt := commentText(fld); txt != "" {
					if m := guardedByRE.FindStringSubmatch(txt); m != nil {
						info.guard = m[1]
					}
				}
				names := fld.Names
				if len(names) == 0 {
					// Embedded field: its object is in Defs via the type name?
					// go/types defines embedded fields through the struct type;
					// recover the *types.Var by position from the struct type.
					if tv, ok := w.pkg.Info.Types[st]; ok {
						if s, ok := tv.Type.Underlying().(*types.Struct); ok {
							for i := 0; i < s.NumFields(); i++ {
								fv := s.Field(i)
								if fv.Embedded() && fv.Pos() == fld.Type.Pos() || fv.Pos() == fieldNamePos(fld) {
									if _, seen := w.facts.fieldDecl[fv]; !seen {
										w.facts.fieldDecl[fv] = info
										siblings = append(siblings, fv)
										infos = append(infos, info)
									}
									break
								}
							}
						}
					}
					continue
				}
				for _, name := range names {
					fv, ok := w.pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if _, seen := w.facts.fieldDecl[fv]; seen {
						continue
					}
					w.facts.fieldDecl[fv] = info
					siblings = append(siblings, fv)
					infos = append(infos, info)
				}
			}
			for _, info := range infos {
				info.siblings = siblings
			}
			return true
		})
	}
}

// fieldNamePos returns the position an embedded field's object is declared
// at: the embedded type name (unwrapping a pointer).
func fieldNamePos(fld *ast.Field) token.Pos {
	t := fld.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if sel, ok := t.(*ast.SelectorExpr); ok {
		return sel.Sel.Pos()
	}
	return t.Pos()
}

// commentText joins a field's doc and trailing comments.
func commentText(fld *ast.Field) string {
	var parts []string
	if fld.Doc != nil {
		parts = append(parts, fld.Doc.Text())
	}
	if fld.Comment != nil {
		parts = append(parts, fld.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// resolveGuardAnnotations resolves each `guarded by <name>` annotation to a
// sibling field or package-level variable after all declarations are
// indexed.
func (w *concWalker) resolveGuardAnnotations() {
	for _, info := range w.facts.fieldDecl {
		if info.guard == "" {
			continue
		}
		for _, sib := range info.siblings {
			if sib.Name() == info.guard {
				info.guardObj = sib
				break
			}
		}
		if info.guardObj == nil && info.pkg.Types != nil {
			if o := info.pkg.Types.Scope().Lookup(info.guard); o != nil {
				info.guardObj = o
			}
		}
	}
}

// collectSpawnParams finds worker-pool parameters: a fixpoint over "go p()"
// seeds and parameter forwarding, so `func pool(w func()) { go w() }` and
// any wrapper that passes its own func param into pool are both recognized.
func (w *concWalker) collectSpawnParams() {
	w.spawnParams = make(map[*types.Func]map[int]bool)
	type fwd struct {
		from    *types.Func // function whose param is forwarded
		fromIdx int
		to      *types.Func // callee receiving it
		toIdx   int
	}
	var forwards []fwd
	mark := func(fn *types.Func, idx int) bool {
		if w.spawnParams[fn] == nil {
			w.spawnParams[fn] = make(map[int]bool)
		}
		if w.spawnParams[fn][idx] {
			return false
		}
		w.spawnParams[fn][idx] = true
		return true
	}
	for _, pkg := range w.prog.pkgs {
		ev := &evaluator{prog: w.prog, pkg: pkg}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				params := paramObjs(pkg, fd)
				paramIdx := func(e ast.Expr) (int, bool) {
					id, ok := ast.Unparen(e).(*ast.Ident)
					if !ok {
						return 0, false
					}
					obj := pkg.Info.Uses[id]
					for i, p := range params {
						if p != nil && p == obj {
							return i, true
						}
					}
					return 0, false
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						if i, ok := paramIdx(n.Call.Fun); ok {
							mark(fn, i)
						}
					case *ast.CallExpr:
						callee := ev.staticCallee(n)
						if callee == nil || w.prog.fns[callee] == nil {
							return true
						}
						for ai, arg := range n.Args {
							if i, ok := paramIdx(arg); ok {
								forwards = append(forwards, fwd{from: fn, fromIdx: i, to: callee, toIdx: ai})
							}
						}
					}
					return true
				})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range forwards {
			if w.spawnParams[f.to][f.toIdx] {
				if mark(f.from, f.fromIdx) {
					changed = true
				}
			}
		}
	}
}

// --- the statement walk ------------------------------------------------------

func (w *concWalker) stmts(list []ast.Stmt, ctx *concCtx) {
	for _, s := range list {
		w.stmt(s, ctx)
	}
}

// stmt processes one statement, mutating ctx.held for lock operations at
// this nesting level and forking it for nested control flow.
func (w *concWalker) stmt(s ast.Stmt, ctx *concCtx) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, ctx)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, ctx)
	case *ast.ExprStmt:
		w.expr(s.X, ctx)
	case *ast.AssignStmt:
		w.assign(s, ctx)
	case *ast.IncDecStmt:
		w.writeTarget(s.X, ctx)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, ctx)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.chanOpAt(s.Chan, chanSend, s.Chan.Pos(), ctx, token.NoPos, false)
		w.expr(s.Value, ctx)
	case *ast.GoStmt:
		w.spawnFromGo(s, ctx)
	case *ast.DeferStmt:
		w.deferStmt(s, ctx)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, ctx)
		}
		w.facts.rets = append(w.facts.rets, retFact{
			pos: s.Pos(), pkg: w.pkg, fn: ctx.fn, spawn: ctx.spawn, body: ctx.body,
		})
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, ctx)
		}
		w.expr(s.Cond, ctx)
		w.stmt(s.Body, ctx.fork())
		if s.Else != nil {
			w.stmt(s.Else, ctx.fork())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, ctx)
		}
		inner := ctx.fork()
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmt(s.Body, inner)
	case *ast.RangeStmt:
		if tv, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.chanOpAt(s.X, chanRecv, s.X.Pos(), ctx, token.NoPos, false)
			}
		}
		w.expr(s.X, ctx)
		w.stmt(s.Body, ctx.fork())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, ctx)
		}
		if s.Tag != nil {
			w.expr(s.Tag, ctx)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := ctx.fork()
				for _, e := range cc.List {
					w.expr(e, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, ctx)
		}
		w.stmt(s.Assign, ctx)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, ctx.fork())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			inner := ctx.fork()
			if cc.Comm != nil {
				w.selectComm(cc.Comm, inner, s.Pos(), hasDefault)
			}
			w.stmts(cc.Body, inner)
		}
	}
}

// selectComm records the channel operation of one select arm.
func (w *concWalker) selectComm(comm ast.Stmt, ctx *concCtx, selPos token.Pos, hasDefault bool) {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		w.chanOpAt(comm.Chan, chanSend, comm.Chan.Pos(), ctx, selPos, hasDefault)
		w.expr(comm.Value, ctx)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.chanOpAt(u.X, chanRecv, u.Pos(), ctx, selPos, hasDefault)
		}
	case *ast.AssignStmt:
		for _, r := range comm.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.chanOpAt(u.X, chanRecv, u.Pos(), ctx, selPos, hasDefault)
			}
		}
		for _, l := range comm.Lhs {
			w.writeTarget(l, ctx)
		}
	}
}

// deferStmt handles `defer`: a deferred Unlock keeps the mutex held for the
// rest of the function; a deferred Done is a correctly paired Done; a
// deferred closure is walked with a copy of the current held set.
func (w *concWalker) deferStmt(s *ast.DeferStmt, ctx *concCtx) {
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		if kind, target, ok := w.syncCall(sel); ok && target != nil {
			switch kind {
			case "Unlock", "RUnlock":
				return // held to end of function by the walk model
			case "Done":
				w.facts.wgs = append(w.facts.wgs, wgOp{
					obj: target, kind: wgDone, pos: s.Pos(), pkg: w.pkg,
					fn: ctx.fn, spawn: ctx.spawn, deferred: true, body: ctx.body,
				})
				return
			}
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		inner := ctx.fork()
		inner.deferred = true
		w.stmt(lit.Body, inner)
		for _, arg := range s.Call.Args {
			w.expr(arg, ctx)
		}
		return
	}
	// Other deferred calls: record like a normal call, marked deferred for
	// WaitGroup ops inside helper bodies is not tracked; the call itself is.
	w.expr(s.Call, ctx)
}

// assign records writes for the left-hand sides and reads for everything
// else, plus buffered-channel make detection.
func (w *concWalker) assign(s *ast.AssignStmt, ctx *concCtx) {
	for _, rhs := range s.Rhs {
		w.expr(rhs, ctx)
	}
	for i, lhs := range s.Lhs {
		w.writeTarget(lhs, ctx)
		if i < len(s.Rhs) {
			w.noteBufferedMake(lhs, s.Rhs[i])
		}
	}
}

// noteBufferedMake marks ch as buffered for `ch := make(chan T, n)` with a
// non-zero constant n.
func (w *concWalker) noteBufferedMake(lhs, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if tv, ok := w.pkg.Info.Types[call.Args[0]]; !ok || tv.Type == nil {
		return
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	n := w.ev.lvalueNode(lhs)
	if n.obj == nil {
		return
	}
	if v, ok := w.ev.constUintOf(call.Args[1]); ok && v > 0 {
		w.facts.buffered[n.obj] = true
	}
}

// writeTarget records the write implied by an assignment target and scans
// its sub-expressions (index keys, selector bases) as reads.
func (w *concWalker) writeTarget(lhs ast.Expr, ctx *concCtx) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := w.pkg.Info.Defs[x]
		if obj == nil {
			obj = w.pkg.Info.Uses[x]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			w.facts.varWrites = append(w.facts.varWrites, varWrite{
				obj: v, pos: x.Pos(), pkg: w.pkg, holds: ctx.held.clone(),
				fn: ctx.fn, spawn: ctx.spawn,
			})
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				w.facts.fields = append(w.facts.fields, fieldAccess{
					field: fv, pos: x.Sel.Pos(), pkg: w.pkg, write: true,
					holds: ctx.held.clone(), fn: ctx.fn, spawn: ctx.spawn,
					base: flowObjs(w.ev.origins(x.X)),
				})
			}
			w.expr(x.X, ctx)
			return
		}
		// Package-qualified var write (pkg.Var = ...).
		if v, ok := w.pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			w.facts.varWrites = append(w.facts.varWrites, varWrite{
				obj: v, pos: x.Sel.Pos(), pkg: w.pkg, holds: ctx.held.clone(),
				fn: ctx.fn, spawn: ctx.spawn,
			})
		}
	case *ast.IndexExpr:
		// m[k] = v writes the container.
		w.writeTarget(x.X, ctx)
		w.expr(x.Index, ctx)
	case *ast.StarExpr:
		w.writeTarget(x.X, ctx)
	case *ast.ParenExpr:
		w.writeTarget(x.X, ctx)
	}
}

// expr scans an expression for reads, calls, channel ops, and nested
// closures. Lock/WaitGroup method calls mutate ctx.held / record ops.
func (w *concWalker) expr(e ast.Expr, ctx *concCtx) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		return
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				w.facts.fields = append(w.facts.fields, fieldAccess{
					field: fv, pos: x.Sel.Pos(), pkg: w.pkg, write: false,
					holds: ctx.held.clone(), fn: ctx.fn, spawn: ctx.spawn,
					base: flowObjs(w.ev.origins(x.X)),
				})
			}
		}
		w.expr(x.X, ctx)
	case *ast.CallExpr:
		w.call(x, ctx)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.chanOpAt(x.X, chanRecv, x.Pos(), ctx, token.NoPos, false)
		}
		w.expr(x.X, ctx)
	case *ast.BinaryExpr:
		w.expr(x.X, ctx)
		w.expr(x.Y, ctx)
	case *ast.ParenExpr:
		w.expr(x.X, ctx)
	case *ast.StarExpr:
		w.expr(x.X, ctx)
	case *ast.IndexExpr:
		w.expr(x.X, ctx)
		w.expr(x.Index, ctx)
	case *ast.SliceExpr:
		w.expr(x.X, ctx)
		w.expr(x.Low, ctx)
		w.expr(x.High, ctx)
		w.expr(x.Max, ctx)
	case *ast.TypeAssertExpr:
		w.expr(x.X, ctx)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			w.expr(elt, ctx)
		}
	case *ast.FuncLit:
		// A closure not passed to go/defer/worker-pool runs, as far as this
		// model knows, synchronously: walk it with a copy of the held set so
		// lock mutations inside do not leak out.
		inner := ctx.fork()
		inner.body = x.Body.Pos()
		w.stmt(x.Body, inner)
	case *ast.KeyValueExpr:
		w.expr(x.Key, ctx)
		w.expr(x.Value, ctx)
	}
}

// call classifies a call expression: sync primitive (mutates held / records
// a WaitGroup op), close/time.Tick builtin, worker-pool spawn argument, or a
// plain call (records a callFact and binds nothing further here — graph.go
// already built the value edges).
func (w *concWalker) call(call *ast.CallExpr, ctx *concCtx) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if kind, target, ok := w.syncCall(sel); ok {
			w.expr(sel.X, ctx)
			if target == nil {
				return
			}
			switch kind {
			case "Lock":
				ctx.held.acquire(target, lockWrite)
			case "RLock":
				ctx.held.acquire(target, lockRead)
			case "Unlock", "RUnlock":
				ctx.held.release(target)
			case "Add":
				w.facts.wgs = append(w.facts.wgs, wgOp{
					obj: target, kind: wgAdd, pos: call.Pos(), pkg: w.pkg,
					fn: ctx.fn, spawn: ctx.spawn, deferred: ctx.deferred, body: ctx.body,
				})
				for _, a := range call.Args {
					w.expr(a, ctx)
				}
			case "Done":
				w.facts.wgs = append(w.facts.wgs, wgOp{
					obj: target, kind: wgDone, pos: call.Pos(), pkg: w.pkg,
					fn: ctx.fn, spawn: ctx.spawn, deferred: ctx.deferred, body: ctx.body,
				})
			case "Wait":
				w.facts.wgs = append(w.facts.wgs, wgOp{
					obj: target, kind: wgWait, pos: call.Pos(), pkg: w.pkg,
					fn: ctx.fn, spawn: ctx.spawn, deferred: ctx.deferred, body: ctx.body,
				})
			}
			return
		}
	}
	// close(ch) and time.Tick.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "close" && len(call.Args) == 1 {
				w.chanOpAt(call.Args[0], chanClose, call.Pos(), ctx, token.NoPos, false)
			}
			for _, a := range call.Args {
				w.expr(a, ctx)
			}
			return
		}
	}
	callee := w.ev.staticCallee(call)
	if callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "time" && callee.Name() == "Tick" {
			w.facts.ticks = append(w.facts.ticks, struct {
				pos token.Pos
				pkg *Package
			}{call.Pos(), w.pkg})
		}
		cf := callFact{
			caller: ctx.fn, callee: callee, holds: ctx.held.clone(),
			spawn: ctx.spawn, pos: call.Pos(),
		}
		for _, arg := range call.Args {
			cf.argObjs = append(cf.argObjs, flowObjs(w.ev.origins(arg)))
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			cf.recvObjs = flowObjs(w.ev.origins(sel.X))
		}
		w.facts.calls = append(w.facts.calls, cf)
	}
	// Worker-pool spawn: a FuncLit argument at a spawn-param position is a
	// goroutine body.
	for ai, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok && callee != nil && w.spawnParams[callee][ai] {
			w.spawnFromLit(lit, call.Pos(), ctx)
			continue
		}
		w.expr(arg, ctx)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, ctx)
	}
}

// spawnFromGo records a `go` statement as a spawn site and walks a closure
// body in goroutine context (fresh held set).
func (w *concWalker) spawnFromGo(s *ast.GoStmt, ctx *concCtx) {
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.spawnFromLit(lit, s.Pos(), ctx)
		for _, arg := range s.Call.Args {
			w.expr(arg, ctx)
		}
		return
	}
	// go f(args) / go obj.Method(args): captured = argument and receiver
	// origins; the callee body is walked on its own, and goroutine context
	// reachability goes through spawn.callee.
	sp := &spawnSite{
		id: len(w.facts.spawns), fn: ctx.fn, pkg: w.pkg, pos: s.Pos(),
		callee: w.ev.staticCallee(s.Call),
	}
	var objs []types.Object
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		objs = append(objs, flowObjs(w.ev.origins(sel.X))...)
	}
	for _, arg := range s.Call.Args {
		objs = append(objs, flowObjs(w.ev.origins(arg))...)
		w.expr(arg, ctx)
	}
	sp.captured = dedupObjs(objs)
	w.facts.spawns = append(w.facts.spawns, sp)
	w.facts.calls = append(w.facts.calls, callFact{
		caller: ctx.fn, callee: sp.callee, holds: lockSet{}, spawn: sp.id, pos: s.Pos(),
	})
}

// spawnFromLit records a FuncLit goroutine body and walks it with spawn
// context: empty held set, the spawn id, the closure body block.
func (w *concWalker) spawnFromLit(lit *ast.FuncLit, pos token.Pos, ctx *concCtx) {
	sp := &spawnSite{
		id: len(w.facts.spawns), fn: ctx.fn, pkg: w.pkg, pos: pos,
		body:     lit.Body,
		captured: w.capturedVars(lit),
	}
	w.facts.spawns = append(w.facts.spawns, sp)
	inner := &concCtx{fn: ctx.fn, spawn: sp.id, held: lockSet{}, body: lit.Body.Pos()}
	w.stmt(lit.Body, inner)
}

// capturedVars collects the free variables of a closure: every variable
// (non-field) used inside the literal but declared outside it, in first-use
// order.
func (w *concWalker) capturedVars(lit *ast.FuncLit) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside (params, locals)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// chanOpAt records one channel operation, resolving the channel expression
// to an object (ident or field selector).
func (w *concWalker) chanOpAt(ch ast.Expr, kind chanOpKind, pos token.Pos, ctx *concCtx, selPos token.Pos, selDef bool) {
	obj := exprObj(w.pkg, ch)
	if obj == nil {
		return
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return
	}
	w.facts.chans = append(w.facts.chans, chanOp{
		obj: obj, kind: kind, pos: pos, pkg: w.pkg, fn: ctx.fn, spawn: ctx.spawn,
		selectPos: selPos, selectDef: selDef,
	})
}

// syncCall classifies sel as a method call on a sync.Mutex / sync.RWMutex /
// sync.WaitGroup and resolves the receiver to its declaring object. The
// bool result reports "this is a sync call" even when the receiver object
// cannot be resolved (target nil), so callers skip held mutation but also
// do not record a spurious callFact.
func (w *concWalker) syncCall(sel *ast.SelectorExpr) (kind string, target types.Object, ok bool) {
	fn, isFn := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", nil, false
	}
	tname := typeName(recv.Type())
	switch tname {
	case "Mutex", "RWMutex":
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			if fn.Name() == "TryLock" || fn.Name() == "TryRLock" {
				return fn.Name(), nil, true // unmodeled; don't track
			}
			return fn.Name(), w.syncTarget(sel), true
		}
	case "WaitGroup":
		switch fn.Name() {
		case "Add", "Done", "Wait":
			return fn.Name(), w.syncTarget(sel), true
		}
	}
	return "", nil, false
}

// syncTarget resolves the receiver of a sync method call to the object that
// names the synchronizer: a variable, a struct field, or — for promoted
// methods on an embedded Mutex — the embedded field itself.
func (w *concWalker) syncTarget(sel *ast.SelectorExpr) types.Object {
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		idx := s.Index()
		if len(idx) > 1 {
			// Promoted method: the path's last field step is the embedded
			// synchronizer.
			t := s.Recv()
			var field *types.Var
			for _, i := range idx[:len(idx)-1] {
				st, ok := derefStruct(t)
				if !ok {
					return nil
				}
				field = st.Field(i)
				t = field.Type()
			}
			return field
		}
	}
	return exprObj(w.pkg, sel.X)
}

// exprObj resolves an expression naming a value to its object: identifiers,
// field selectors (the field object), and &x / *x / (x) unwrap.
func exprObj(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprObj(pkg, x.X)
		}
	case *ast.StarExpr:
		return exprObj(pkg, x.X)
	}
	return nil
}

// derefStruct unwraps pointers/named types down to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			t = x.Underlying()
		case *types.Struct:
			return x, true
		default:
			return nil, false
		}
	}
}

// typeName returns the name of a (possibly pointered) named type.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// flowObjs extracts the named objects from a flow set.
func flowObjs(flows []Flow) []types.Object {
	var out []types.Object
	for _, f := range flows {
		if f.n.obj != nil {
			out = append(out, f.n.obj)
		}
	}
	return dedupObjs(out)
}

func dedupObjs(objs []types.Object) []types.Object {
	seen := make(map[types.Object]bool, len(objs))
	out := objs[:0]
	for _, o := range objs {
		if o != nil && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// --- derived views shared by the analyzers -----------------------------------

// goroutineReach returns the set of functions reachable from the spawn's
// body: the direct callees recorded inside the closure (or the named callee
// for `go f()`), closed over the static call graph.
func (f *concFacts) goroutineReach(p *Program, sp *spawnSite) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var frontier []*types.Func
	add := func(fn *types.Func) {
		if fn != nil && !reach[fn] {
			reach[fn] = true
			frontier = append(frontier, fn)
		}
	}
	if sp.callee != nil {
		add(sp.callee)
	}
	for _, cf := range f.calls {
		if cf.spawn == sp.id {
			add(cf.callee)
		}
	}
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		for callee := range p.callees[fn] { // set closure: order-independent
			add(callee)
		}
	}
	return reach
}

// unionFind is a tiny disjoint-set over objects, used for channel and
// WaitGroup alias classes.
type unionFind struct {
	parent map[types.Object]types.Object
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[types.Object]types.Object)}
}

func (u *unionFind) find(o types.Object) types.Object {
	p, ok := u.parent[o]
	if !ok {
		u.parent[o] = o
		return o
	}
	if p == o {
		return o
	}
	r := u.find(p)
	u.parent[o] = r
	return r
}

// union merges the classes of a and b deterministically (the representative
// with the smaller Pos wins), so class representatives are stable across
// runs regardless of merge order.
func (u *unionFind) union(a, b types.Object) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb.Pos() < ra.Pos() {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// aliasClasses builds the union-find for objects satisfying isKind, merging
// along every value-flow edge connecting two such objects.
func (f *concFacts) aliasClasses(p *Program, isKind func(types.Object) bool) *unionFind {
	u := newUnionFind()
	for from, edges := range p.edges { // partition is merge-order independent
		if from.obj == nil || !isKind(from.obj) {
			continue
		}
		for _, e := range edges {
			if e.to.obj != nil && isKind(e.to.obj) {
				u.union(from.obj, e.to.obj)
			}
		}
	}
	return u
}

// isChanObj reports whether o is channel-typed.
func isChanObj(o types.Object) bool {
	if o == nil || o.Type() == nil {
		return false
	}
	_, ok := o.Type().Underlying().(*types.Chan)
	return ok
}

// isWaitGroupObj reports whether o is a sync.WaitGroup (possibly through a
// pointer).
func isWaitGroupObj(o types.Object) bool {
	if o == nil || o.Type() == nil {
		return false
	}
	t := o.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
