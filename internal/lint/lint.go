// Package lint is a small static-analysis framework plus the project's four
// analyzers. It enforces, as machine-checked invariants, the contracts the
// simulator's evaluation rests on:
//
//   - determinism: simulation packages must not consult wall-clock time,
//     math/rand, mutable package-level state, or unordered map iteration —
//     the "same seeds ⇒ same activations" replay contract of internal/rng.
//   - bitwidth: line/row address arithmetic must not silently truncate —
//     shifts past the operand width, masks wider than the line-address
//     domain, and unguarded narrowing conversions are flagged.
//   - seedflow: every RNG must be seeded from configuration, never from a
//     literal constant, so experiments stay reseedable.
//   - panicpolicy: library packages return errors instead of panicking,
//     except documented programmer-error invariant guards.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis but is
// built only on the standard library's go/ast and go/types, because this
// repository vendors no third-party dependencies. Findings are suppressed
// with an annotation on the offending line (or the line above):
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory: an allow directive without one does not
// suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the analyzer identifier used in reports and allow directives.
	Name string
	// AltAllow lists additional allow-directive names honored for this
	// analyzer's findings (addrwidth accepts bitwidth directives, since it
	// subsumes that pass's narrowing check).
	AltAllow []string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// NeedsProgram requests the whole-module value-flow Program on the pass
	// (built once per Run and shared by every interprocedural analyzer).
	NeedsProgram bool
	// Run inspects one package via the pass and reports findings.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the interprocedural value-flow view of the whole module; nil
	// unless the analyzer sets NeedsProgram.
	Prog *Program
	// LintPkg is the loaded package under analysis (the same data the
	// fields above expose, plus its import path and directory).
	LintPkg *Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes holds machine-applicable repairs, best first; rubixlint -fix
	// applies the first one.
	Fixes []SuggestedFix
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Report records a finding at pos with optional suggested fixes.
func (p *Pass) Report(pos token.Pos, message string, fixes ...SuggestedFix) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  message,
		Fixes:    fixes,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// All returns the project's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Bitwidth, Seedflow, Panicpolicy,
		ObserverEffect, AddrWidth, ErrDiscard,
		LockDiscipline, GoroutineEscape, GoroutineLeak, WaitGroup,
	}
}

// Scope decides which analyzers run on which packages.
type Scope func(a *Analyzer, pkgPath string) bool

// EverythingScope runs every analyzer on every package (used by golden
// tests, which select scope by testdata layout instead).
func EverythingScope(*Analyzer, string) bool { return true }

// DefaultScope is the repository policy: seedflow and errdiscard gate every
// package; panicpolicy gates library (internal/...) packages; determinism,
// bitwidth, and addrwidth gate the simulation packages — internal/... minus
// the lint tool itself, which is tooling rather than simulation and may
// e.g. iterate maps after sorting for report ordering; observereffect gates
// the simulation packages minus internal/metrics, whose own implementation
// legitimately reads the values it records; the concurrency analyzers
// (lockdiscipline, goroutineescape, goroutineleak, waitgroup) gate every
// package, because goroutine fan-outs live in the command drivers and the
// lint tooling as much as in the library.
func DefaultScope(modulePath string) Scope {
	internalPrefix := modulePath + "/internal/"
	lintPrefix := modulePath + "/internal/lint"
	metricsPath := modulePath + "/internal/metrics"
	return func(a *Analyzer, pkgPath string) bool {
		inInternal := strings.HasPrefix(pkgPath, internalPrefix)
		simPkg := inInternal && !strings.HasPrefix(pkgPath, lintPrefix)
		switch a.Name {
		case "seedflow", "errdiscard":
			return true
		case "lockdiscipline", "goroutineescape", "goroutineleak", "waitgroup":
			// Concurrency safety gates everything: library packages, the
			// command drivers (which own the goroutine fan-outs), and the
			// lint tooling itself (linttest caches across parallel tests).
			return true
		case "panicpolicy":
			return inInternal
		case "observereffect":
			return simPkg && pkgPath != metricsPath
		default: // determinism, bitwidth, addrwidth
			return simPkg
		}
	}
}

// Run applies the analyzers to the packages under the scope policy, filters
// suppressed findings, and returns the rest ordered by position. The
// whole-module value-flow Program is built once, lazily, and shared by every
// analyzer that requests it.
func Run(pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]Diagnostic, error) {
	var diags []Diagnostic
	var prog *Program
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			if !scope(a, pkg.Path) {
				continue
			}
			if a.NeedsProgram && prog == nil {
				prog = BuildProgram(pkgs)
			}
			var raw []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				LintPkg:  pkg,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				suppressed := allows.covers(a.Name, d.Pos)
				for _, alt := range a.AltAllow {
					suppressed = suppressed || allows.covers(alt, d.Pos)
				}
				if !suppressed {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowKey identifies one suppressed (analyzer, file, line).
type allowKey struct {
	analyzer string
	file     string
	line     int
}

type allowSet map[allowKey]bool

// covers reports whether a valid allow directive targets the diagnostic.
func (s allowSet) covers(analyzer string, pos token.Position) bool {
	return s[allowKey{analyzer, pos.Filename, pos.Line}]
}

// collectAllows parses //lint:allow directives. A directive suppresses the
// named analyzers on its own line and on the following line, so it can ride
// at the end of the offending line or stand alone above it. Directives
// without a justification are ignored.
func collectAllows(pkg *Package) allowSet {
	s := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				names, justification, _ := strings.Cut(strings.TrimSpace(text), " ")
				if strings.TrimSpace(justification) == "" {
					continue // a bare directive documents nothing; not honored
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					s[allowKey{name, pos.Filename, pos.Line}] = true
					s[allowKey{name, pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return s
}
