// Package lint is a small static-analysis framework plus the project's
// analyzer suite. It enforces, as machine-checked invariants, the contracts
// the simulator's evaluation rests on:
//
//   - determinism: simulation packages must not consult wall-clock time,
//     math/rand, mutable package-level state, or unordered map iteration —
//     the "same seeds ⇒ same activations" replay contract of internal/rng.
//   - bitwidth / addrwidth: line/row address arithmetic must not silently
//     truncate — shifts past the operand width, masks wider than the
//     line-address domain, and unguarded narrowing conversions are flagged,
//     locally and through the value-flow graph.
//   - seedflow: every RNG must be seeded from configuration, never from a
//     literal constant, so experiments stay reseedable.
//   - panicpolicy: library packages return errors instead of panicking,
//     except documented programmer-error invariant guards.
//   - observereffect / errdiscard: metrics reads must not feed back into
//     simulation state, and module-internal errors must be handled.
//   - lockdiscipline, goroutineescape, goroutineleak, waitgroup: the
//     concurrency-safety gates over the shared concurrency-facts layer.
//   - addrspace / unitflow: values live in one address domain
//     (line/phys/row/cipher) or time unit (ns/cycle/refresh) and may only
//     change domain through a declared converter (see domain.go).
//   - hotalloc: functions marked `// hot` — and everything they reach
//     through the call graph — must not allocate; `// cold` stops the
//     traversal.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis but is
// built only on the standard library's go/ast and go/types, because this
// repository vendors no third-party dependencies. Findings are suppressed
// with an annotation on the offending line (or the line above):
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory: an allow directive without one does not
// suppress anything. AuditAllows judges the directives themselves: stale
// or unjustified guards and unknown analyzer names are reported by the
// driver's -allow-audit mode.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the analyzer identifier used in reports and allow directives.
	Name string
	// AltAllow lists additional allow-directive names honored for this
	// analyzer's findings (addrwidth accepts bitwidth directives, since it
	// subsumes that pass's narrowing check).
	AltAllow []string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// NeedsProgram requests the whole-module value-flow Program on the pass
	// (built once per Run and shared by every interprocedural analyzer).
	NeedsProgram bool
	// Run inspects one package via the pass and reports findings.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the interprocedural value-flow view of the whole module; nil
	// unless the analyzer sets NeedsProgram.
	Prog *Program
	// LintPkg is the loaded package under analysis (the same data the
	// fields above expose, plus its import path and directory).
	LintPkg *Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes holds machine-applicable repairs, best first; rubixlint -fix
	// applies the first one.
	Fixes []SuggestedFix
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Report records a finding at pos with optional suggested fixes.
func (p *Pass) Report(pos token.Pos, message string, fixes ...SuggestedFix) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  message,
		Fixes:    fixes,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// All returns the project's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Bitwidth, Seedflow, Panicpolicy,
		ObserverEffect, AddrWidth, ErrDiscard,
		LockDiscipline, GoroutineEscape, GoroutineLeak, WaitGroup,
		AddrSpace, UnitFlow, HotAlloc,
	}
}

// ByName resolves an analyzer from the suite by its identifier.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Scope decides which analyzers run on which packages.
type Scope func(a *Analyzer, pkgPath string) bool

// EverythingScope runs every analyzer on every package (used by golden
// tests, which select scope by testdata layout instead).
func EverythingScope(*Analyzer, string) bool { return true }

// scopeClass names one row of the repository scope policy.
type scopeClass int

const (
	// scopeAll gates every package: library code, the command drivers
	// (which own the goroutine fan-outs), and the lint tooling itself.
	scopeAll scopeClass = iota
	// scopeInternal gates library (internal/...) packages.
	scopeInternal
	// scopeSim gates the simulation packages: internal/... minus the lint
	// tool (tooling rather than simulation; may e.g. iterate maps after
	// sorting for report ordering) and minus the service infrastructure
	// (internal/server batches requests with real timers, internal/store
	// persists to disk — wall-clock and syscall nondeterminism is their
	// job, and none of their state feeds back into simulation results).
	scopeSim
	// scopeSimNoMetrics is scopeSim minus internal/metrics, whose own
	// implementation legitimately reads the values it records.
	scopeSimNoMetrics
)

// analyzerScope is the declarative scope pin table: every analyzer in All()
// has exactly one row here (TestAnalyzerScopeTable pins the bijection), so
// adding an analyzer without deciding its scope is a test failure rather
// than a silent fall-through.
var analyzerScope = map[string]scopeClass{
	"seedflow":        scopeAll,
	"errdiscard":      scopeAll,
	"lockdiscipline":  scopeAll,
	"goroutineescape": scopeAll,
	"goroutineleak":   scopeAll,
	"waitgroup":       scopeAll,
	"panicpolicy":     scopeInternal,
	"observereffect":  scopeSimNoMetrics,
	"determinism":     scopeSim,
	"bitwidth":        scopeSim,
	"addrwidth":       scopeSim,
	"addrspace":       scopeSim,
	"unitflow":        scopeSim,
	"hotalloc":        scopeSim,
}

// DefaultScope is the repository policy, driven by the analyzerScope pin
// table. An analyzer missing from the table defaults to the narrowest class
// (scopeSim) — but the table test keeps that from happening unnoticed.
func DefaultScope(modulePath string) Scope {
	internalPrefix := modulePath + "/internal/"
	lintPrefix := modulePath + "/internal/lint"
	serverPrefix := modulePath + "/internal/server"
	storePrefix := modulePath + "/internal/store"
	metricsPath := modulePath + "/internal/metrics"
	return func(a *Analyzer, pkgPath string) bool {
		inInternal := strings.HasPrefix(pkgPath, internalPrefix)
		simPkg := inInternal &&
			!strings.HasPrefix(pkgPath, lintPrefix) &&
			!strings.HasPrefix(pkgPath, serverPrefix) &&
			!strings.HasPrefix(pkgPath, storePrefix)
		class, ok := analyzerScope[a.Name]
		if !ok {
			class = scopeSim
		}
		switch class {
		case scopeAll:
			return true
		case scopeInternal:
			return inInternal
		case scopeSimNoMetrics:
			return simPkg && pkgPath != metricsPath
		default:
			return simPkg
		}
	}
}

// rawDiagnostics applies the analyzers to one package and returns the
// findings before allow-directive suppression. The shared value-flow Program
// is built lazily through *prog.
func rawDiagnostics(pkgs []*Package, pkg *Package, analyzers []*Analyzer, scope Scope, prog **Program) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		if !scope(a, pkg.Path) {
			continue
		}
		if a.NeedsProgram && *prog == nil {
			*prog = BuildProgram(pkgs)
		}
		var got []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     *prog,
			LintPkg:  pkg,
			diags:    &got,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		raw = append(raw, got...)
	}
	return raw, nil
}

// sortDiags orders diagnostics by position, then analyzer name.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run applies the analyzers to the packages under the scope policy, filters
// suppressed findings, and returns the rest ordered by position. The
// whole-module value-flow Program is built once, lazily, and shared by every
// analyzer that requests it.
func Run(pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]Diagnostic, error) {
	var diags []Diagnostic
	var prog *Program
	for _, pkg := range pkgs {
		raw, err := rawDiagnostics(pkgs, pkg, analyzers, scope, &prog)
		if err != nil {
			return nil, err
		}
		allows := collectAllows(pkg)
		for _, d := range raw {
			a, _ := ByName(d.Analyzer)
			suppressed := allows.covers(d.Analyzer, d.Pos)
			if a != nil {
				for _, alt := range a.AltAllow {
					suppressed = suppressed || allows.covers(alt, d.Pos)
				}
			}
			if !suppressed {
				diags = append(diags, d)
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

// AllowDirective is one parsed //lint:allow comment, justified or not.
type AllowDirective struct {
	Pos           token.Position
	Names         []string // analyzer names the directive targets
	Justification string
}

// AuditFinding is one allow-audit result: a directive that should be removed
// (stale — the finding it suppressed no longer fires) or repaired (missing
// the mandatory justification, or naming an unknown analyzer).
type AuditFinding struct {
	Directive AllowDirective
	// Kind is "stale", "unjustified", or "unknown-analyzer".
	Kind string
	// Name is the specific analyzer name within the directive the finding is
	// about (stale and unknown-analyzer findings are per-name).
	Name string
}

// String formats the audit finding the way compilers do.
func (f AuditFinding) String() string {
	p := f.Directive.Pos
	switch f.Kind {
	case "unjustified":
		return fmt.Sprintf("%s:%d: //lint:allow %s has no justification (the directive is ignored; add a reason or delete it)",
			p.Filename, p.Line, strings.Join(f.Directive.Names, ","))
	case "unknown-analyzer":
		return fmt.Sprintf("%s:%d: //lint:allow names unknown analyzer %q", p.Filename, p.Line, f.Name)
	default:
		return fmt.Sprintf("%s:%d: stale //lint:allow %s: no %s finding fires here anymore; remove the guard",
			p.Filename, p.Line, f.Name, f.Name)
	}
}

// AuditAllows re-runs the analyzers without suppression and reports every
// allow directive that no longer earns its keep: stale guards (the named
// analyzer produces no finding on the guarded lines), guards missing the
// mandatory justification, and guards naming analyzers that do not exist. A
// directive at line L covers findings at L and L+1, so a guard is live if a
// raw finding of an accepted name lands on either line.
func AuditAllows(pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]AuditFinding, error) {
	// acceptedAs maps each allow-directive name to the analyzer names whose
	// findings it suppresses (itself, plus analyzers listing it in AltAllow).
	// Liveness is judged only against the analyzers actually being run;
	// spelling validity is judged against the full registry, so auditing a
	// -only subset neither flags real-but-unselected names as unknown nor
	// declares their guards stale.
	acceptedAs := make(map[string]map[string]bool)
	selected := make(map[string]bool)
	for _, a := range analyzers {
		selected[a.Name] = true
		if acceptedAs[a.Name] == nil {
			acceptedAs[a.Name] = make(map[string]bool)
		}
		acceptedAs[a.Name][a.Name] = true
		for _, alt := range a.AltAllow {
			if acceptedAs[alt] == nil {
				acceptedAs[alt] = make(map[string]bool)
			}
			acceptedAs[alt][a.Name] = true
			selected[alt] = true
		}
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
		for _, alt := range a.AltAllow {
			known[alt] = true
		}
	}

	var out []AuditFinding
	var prog *Program
	for _, pkg := range pkgs {
		// A package no selected analyzer covers contributes no raw findings,
		// so judging its guards would report every one of them stale. The
		// whole module stays loaded for the value-flow graph; only packages
		// inside the requested scope are audited.
		inScope := false
		for _, a := range analyzers {
			if scope(a, pkg.Path) {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		raw, err := rawDiagnostics(pkgs, pkg, analyzers, scope, &prog)
		if err != nil {
			return nil, err
		}
		// live[analyzer][file:line] marks directive lines a raw finding keeps
		// alive (the finding's own line and the line above it).
		live := make(map[string]map[allowKey]bool)
		for _, d := range raw {
			m := live[d.Analyzer]
			if m == nil {
				m = make(map[allowKey]bool)
				live[d.Analyzer] = m
			}
			m[allowKey{d.Analyzer, d.Pos.Filename, d.Pos.Line}] = true
			m[allowKey{d.Analyzer, d.Pos.Filename, d.Pos.Line - 1}] = true
		}
		for _, dir := range collectAllowDirectives(pkg) {
			if strings.TrimSpace(dir.Justification) == "" {
				out = append(out, AuditFinding{Directive: dir, Kind: "unjustified"})
				continue
			}
			for _, name := range dir.Names {
				if !known[name] {
					out = append(out, AuditFinding{Directive: dir, Kind: "unknown-analyzer", Name: name})
					continue
				}
				if !selected[name] {
					continue // registered analyzer, not in this run: liveness unknowable
				}
				alive := false
				for analyzer := range acceptedAs[name] { // tiny set; result order-free
					if live[analyzer][allowKey{analyzer, dir.Pos.Filename, dir.Pos.Line}] {
						alive = true
					}
				}
				if !alive {
					out = append(out, AuditFinding{Directive: dir, Kind: "stale", Name: name})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Directive.Pos.Filename != b.Directive.Pos.Filename {
			return a.Directive.Pos.Filename < b.Directive.Pos.Filename
		}
		if a.Directive.Pos.Line != b.Directive.Pos.Line {
			return a.Directive.Pos.Line < b.Directive.Pos.Line
		}
		return a.Name < b.Name
	})
	return out, nil
}

// allowKey identifies one suppressed (analyzer, file, line).
type allowKey struct {
	analyzer string
	file     string
	line     int
}

type allowSet map[allowKey]bool

// covers reports whether a valid allow directive targets the diagnostic.
func (s allowSet) covers(analyzer string, pos token.Position) bool {
	return s[allowKey{analyzer, pos.Filename, pos.Line}]
}

// collectAllowDirectives parses every //lint:allow comment in the package,
// including unjustified ones (Run ignores those; the allow audit reports
// them).
func collectAllowDirectives(pkg *Package) []AllowDirective {
	var out []AllowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				names, justification, _ := strings.Cut(strings.TrimSpace(text), " ")
				dir := AllowDirective{
					Pos:           pkg.Fset.Position(c.Pos()),
					Justification: strings.TrimSpace(justification),
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						dir.Names = append(dir.Names, name)
					}
				}
				if len(dir.Names) > 0 {
					out = append(out, dir)
				}
			}
		}
	}
	return out
}

// collectAllows indexes the justified allow directives for suppression. A
// directive suppresses the named analyzers on its own line and on the
// following line, so it can ride at the end of the offending line or stand
// alone above it. Directives without a justification are ignored.
func collectAllows(pkg *Package) allowSet {
	s := make(allowSet)
	for _, dir := range collectAllowDirectives(pkg) {
		if dir.Justification == "" {
			continue // a bare directive documents nothing; not honored
		}
		for _, name := range dir.Names {
			s[allowKey{name, dir.Pos.Filename, dir.Pos.Line}] = true
			s[allowKey{name, dir.Pos.Filename, dir.Pos.Line + 1}] = true
		}
	}
	return s
}
