// Package goroutineescape exercises escape detection: mutable state captured
// by a spawned goroutine and written without synchronization.
package goroutineescape

import "sync"

// Direct is the true positive: a captured local written inside the goroutine
// while the spawner still reads it.
func Direct() int {
	count := 0
	go func() {
		count++ // want "writes count, captured from the spawning function"
	}()
	return count
}

type Sim struct {
	mu    sync.Mutex
	total int
	done  chan int
}

// Helper is the interprocedural positive: the goroutine body delegates the
// write to a method, and the captured receiver taints it one call deep.
func (s *Sim) Helper() {
	go func() {
		s.bump()
	}()
}

func (s *Sim) bump() {
	s.total++ // want "writes goroutineescape.total"
}

// Locked is the negative: the goroutine takes the captured mutex first.
func (s *Sim) Locked() {
	go func() {
		s.mu.Lock()
		s.total++
		s.mu.Unlock()
	}()
}

// Channel is the negative idiom the analyzer should never flag: results
// leave the goroutine over a channel instead of shared memory.
func (s *Sim) Channel() {
	go func() {
		v := 41 + 1
		s.done <- v
	}()
}

// Pool spawns its argument: callers' closures run on goroutines even though
// no `go` statement appears at their call sites.
func Pool(job func()) {
	go job()
}

// Pooled is the worker-pool positive: the closure handed to Pool escapes to
// a goroutine, so its captured write is shared state.
func Pooled() int {
	hits := 0
	Pool(func() {
		hits++ // want "writes hits"
	})
	return hits
}

// Waited is the annotated negative: the write is ordered by wg.Wait, which
// the analyzer cannot see, so the author vouches for it.
func Waited() int {
	var wg sync.WaitGroup
	out := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		//lint:allow goroutineescape fixture: single writer, sequenced by wg.Wait below
		out = 42
	}()
	wg.Wait()
	return out
}
