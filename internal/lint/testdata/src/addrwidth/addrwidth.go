// Package addrwidth exercises the interprocedural address-width analyzer:
// values carrying the 40-bit address bound must not pass through narrowing
// conversions that cannot hold them.
package addrwidth

import "mapping"

// Direct is the true positive: a mapper result narrowed to 32 bits.
func Direct(m mapping.Mapper, line uint64) uint32 {
	row := m.Map(line)
	return uint32(row) // want "may carry 40 bits.*narrows to 32-bit"
}

// shift drops three bits; the engine composes the transform through the
// call.
func shift(v uint64) uint64 {
	return v >> 3
}

// Indirect is the interprocedural positive: the bound survives a helper
// call (40 - 3 = 37 bits) and still overflows uint16.
func Indirect(m mapping.Mapper, line uint64) uint16 {
	r := shift(m.Map(line))
	return uint16(r) // want "may carry 37 bits.*narrows to 16-bit"
}

// Masked is the mask negative: capping to the destination width first makes
// the narrowing explicit and safe.
func Masked(m mapping.Mapper, line uint64) uint32 {
	return uint32(m.Map(line) & 0xffffffff)
}

// Allowed is the annotated negative, via the bitwidth directive this
// analyzer honors as an alternative name.
func Allowed(m mapping.Mapper, line uint64) uint8 {
	return uint8(m.Map(line)) //lint:allow bitwidth fixture: only the low byte keys the histogram bucket
}

// Wide is the clean negative: converting to a 64-bit type loses nothing.
func Wide(m mapping.Mapper, line uint64) uint64 {
	return uint64(int64(m.Map(line)))
}

// BatchTable implements the batched translation surface. Its []uint64
// parameters are seeded as address batches regardless of package, so
// element reads inside the body carry the 40-bit bound.
type BatchTable struct{ bank []uint32 }

// MapBatch narrows a batch element without masking: the batch positive.
func (t *BatchTable) MapBatch(lines, phys []uint64) {
	for i, line := range lines {
		t.bank[i] = uint32(line) // want "may carry 40 bits.*narrows to 32-bit"
		phys[i] = line
	}
}

// UnmapBatch masks before narrowing: explicit, and the bound is capped.
func (t *BatchTable) UnmapBatch(phys, lines []uint64) {
	for i := range phys {
		t.bank[i] = uint32(phys[i] & 0xffffffff)
		lines[i] = phys[i]
	}
}

// Gather is the negative for ordinary slice parameters: a function outside
// the batch surface gets no container seed from its name alone.
func Gather(values []uint64) uint32 {
	return uint32(values[0])
}
