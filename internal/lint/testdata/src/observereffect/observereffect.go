// Package observereffect exercises the observer-effect analyzer: values read
// from the metrics package must not flow into simulation state.
package observereffect

import (
	"dram"
	"metrics"
)

// Direct is the true positive: a counter read written straight into state.
func Direct(b *dram.Bank, c *metrics.Counter) {
	b.Threshold = c.Value() // want "metrics.Value.*written into simulation state"
}

// launder moves the value through a helper so only interprocedural tracking
// can connect the read to the sink.
func launder(v uint64) uint64 {
	w := v + 1
	return w
}

// Indirect is the interprocedural positive: snapshot field → local → helper
// function → argument of a state-package method.
func Indirect(b *dram.Bank, r *metrics.Recorder) {
	s := r.Snapshot()
	v := launder(s.Counters["acts"])
	b.Activate(v) // want "passed into dram.Activate"
}

// Build is the composite-literal positive: telemetry initializing state.
func Build(c *metrics.Counter) *dram.Bank {
	return &dram.Bank{Threshold: c.Value()} // want "initializes simulation state"
}

// Allowed is the annotated negative: a justified allow suppresses the
// finding.
func Allowed(b *dram.Bank, c *metrics.Counter) {
	b.Threshold = c.Value() //lint:allow observereffect fixture: threshold calibration harness runs outside the replay path
}

// Wire is the plumbing negative: handing a metrics-typed handle into a
// state-package call is wiring the subsystem, not feedback.
func Wire(b *dram.Bank, r *metrics.Recorder) *metrics.Counter {
	c := r.Counter("acts")
	dram.Attach(b, c)
	return c
}

// Clean is the untainted negative: ordinary state math is untouched.
func Clean(b *dram.Bank, rows uint64) {
	b.Threshold = rows * 2
}
