// Package errdiscard exercises the discarded-error analyzer: error results
// of module-internal calls must be handled.
package errdiscard

import (
	"fmt"

	"dram"
)

// Drop is the true positive: the constructor's error vanishes into a blank.
func Drop() *dram.Bank {
	b, _ := dram.New(8) // want "error result of dram.New is discarded"
	return b
}

// Bare is the statement positive: the call's only result is an error and the
// statement throws it away.
func Bare() {
	dram.Check() // want "error result of dram.Check is discarded"
}

// Blank is the explicit-discard positive.
func Blank() {
	_ = dram.Check() // want "error result of dram.Check is discarded"
}

// wrap adds a module-internal hop; the callee is resolved through the
// program's package set, not by import path prefix.
func wrap() (*dram.Bank, error) {
	return dram.New(2)
}

// DropWrapped is the interprocedural positive: the discarded error comes out
// of a same-module helper, two packages away from where it originated.
func DropWrapped() {
	_, _ = wrap() // want "error result of errdiscard.wrap is discarded"
}

// Allowed is the annotated negative.
func Allowed() {
	_ = dram.Check() //lint:allow errdiscard fixture: Check cannot fail for the default geometry
}

// Handled is the clean negative: the error is inspected.
func Handled() (*dram.Bank, error) {
	b, err := dram.New(8)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Stdlib is the out-of-scope negative: discarding a standard-library error
// is not this analyzer's business.
func Stdlib() {
	fmt.Println("ok")
}
