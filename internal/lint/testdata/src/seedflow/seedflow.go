// Package seedflow is golden testdata for the seed-flow analyzer.
package seedflow

import "rng"

// Config carries the experiment seed, the sanctioned seed source.
type Config struct {
	Seed uint64
}

// HardcodedSeed freezes the replay forever: flagged.
func HardcodedSeed() *rng.SplitMix64 {
	return rng.NewSplitMix64(42) // want "NewSplitMix64 seeded with the constant 42"
}

// HardcodedExpression is still a compile-time constant: flagged.
func HardcodedExpression() *rng.Xoshiro256 {
	return rng.NewXoshiro256(0x5242 ^ 7) // want "NewXoshiro256 seeded with the constant 21061"
}

// FromConfig threads the seed from configuration: allowed.
func FromConfig(cfg Config) *rng.Xoshiro256 {
	return rng.NewXoshiro256(cfg.Seed)
}

// DerivedFromConfig decorrelates a sub-generator with a constant tweak on a
// configured seed — the derivation stays reseedable: allowed.
func DerivedFromConfig(cfg Config) *rng.SplitMix64 {
	return rng.NewSplitMix64(cfg.Seed ^ 0xCBF)
}
