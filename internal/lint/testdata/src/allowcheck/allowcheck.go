// Package allowcheck verifies that an undocumented allow directive does not
// suppress anything: the justification is part of the contract.
package allowcheck

// Bare has an allow directive with no justification, so the panic is still
// flagged.
func Bare() {
	//lint:allow panicpolicy
	panic("unjustified") // want "panic in library package"
}

// Documented carries a reason and is suppressed.
func Documented() {
	//lint:allow panicpolicy unreachable by construction, exercised in golden tests
	panic("justified")
}
