// Package addrspace exercises the address-domain discipline: tracked
// integers live in exactly one of line/phys/row/cipher and may only change
// domain through a declared converter. Domain sources are the mapping/geom
// fixtures' pinned signatures and the `// addr:` annotation below.
package addrspace

import (
	"geom"
	"mapping"
)

// current tracks the open row of the fixture's bank.
var current uint64 // addr: row

// DoubleMap is the classic positive: a mapped (phys) value fed back into
// Map is double randomization.
func DoubleMap(m mapping.Mapper, line uint64) uint64 {
	return m.Map(m.Map(line)) // want "phys value passed to line parameter \"line\" of Map without conversion"
}

// RowIntoUnmap is the cross-converter positive: GlobalRow produces a row
// coordinate, not the physical line Unmap expects.
func RowIntoUnmap(m mapping.Mapper, p uint64) uint64 {
	return m.Unmap(geom.GlobalRow(p)) // want "row value passed to phys parameter \"phys\" of Unmap without conversion"
}

// RoundTrip is the clean negative: line → phys → line through the declared
// converters.
func RoundTrip(m mapping.Mapper, line uint64) uint64 {
	return m.Unmap(m.Map(line))
}

// Mixed is the mixed-domain positive: v is phys on one path and line on the
// other, so no single conversion can be right.
func Mixed(m mapping.Mapper, a uint64, cond bool) uint64 {
	v := m.Map(a)
	if cond {
		v = m.Unmap(m.Map(a))
	}
	return m.Map(v) // want "mixed-domain value \(line\|phys\) passed to line parameter"
}

// launder forwards its argument; the domain follows the flow.
func launder(v uint64) uint64 { return v }

// Interproc is the interprocedural positive: the phys domain survives the
// helper call.
func Interproc(m mapping.Mapper, a uint64) uint64 {
	p := launder(m.Map(a))
	return m.Map(p) // want "phys value passed to line parameter \"line\" of Map without conversion"
}

// Batch is the out-slice positive: MapBatch fills phys with phys-domain
// values, so feeding that buffer back into the line slot is double mapping.
func Batch(s mapping.Sequential, lines, phys []uint64) {
	s.MapBatch(lines, phys)
	s.MapBatch(phys, phys) // want "phys value passed to line parameter \"lines\" of MapBatch without conversion"
}

// StoreRow is the clean pinned-write negative: a row stored into the
// row-annotated variable.
func StoreRow(p uint64) {
	current = geom.GlobalRow(p)
}

// StorePhys is the pinned-write positive: an untranslated phys line stored
// into row-keyed state.
func StorePhys(m mapping.Mapper, a uint64) {
	current = m.Map(a) // want "phys value assigned to row-pinned \"current\""
}

// Allowed is the annotated negative: a justified guard suppresses the
// double-mapping finding.
func Allowed(m mapping.Mapper, line uint64) uint64 {
	//lint:allow addrspace fixture: deliberate double scramble models a two-level mapper
	return m.Map(m.Map(line))
}

// Untracked is the clean negative: values with no known domain are not
// bound by the discipline.
func Untracked(m mapping.Mapper, x uint64) uint64 {
	return m.Map(x ^ 0xdead)
}
