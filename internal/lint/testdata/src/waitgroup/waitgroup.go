// Package waitgroup exercises WaitGroup protocol checking: Add placement,
// Done coverage on every path, and module-wide Add/Done/Wait pairing.
package waitgroup

import "sync"

// Canonical is the clean pattern: Add before the spawn, deferred Done.
func Canonical(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// AddInside is the true positive: Add races Wait from inside the goroutine.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine races Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// AddInHelper is the interprocedural positive: the goroutine reaches the Add
// through a helper call.
func AddInHelper() {
	var wg sync.WaitGroup
	go func() {
		register(&wg)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func register(wg *sync.WaitGroup) {
	wg.Add(1) // want "wg.Add inside the spawned goroutine races Wait"
}

// EarlyReturn is the skipped-Done positive: the error path returns before
// the non-deferred Done, so Wait hangs.
func EarlyReturn(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if fail {
			return // want "return before wg.Done on this path"
		}
		work()
		wg.Done()
	}()
	wg.Wait()
}

// DeferredDone is the negative for the same shape: defer covers every path.
func DeferredDone(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fail {
			return
		}
		work()
	}()
	wg.Wait()
}

// HelperDone is the interprocedural pairing negative: the Done lives in a
// helper the WaitGroup pointer flows into, unified by alias classes.
func HelperDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func work() {}
