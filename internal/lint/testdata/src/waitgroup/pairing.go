package waitgroup

import "sync"

// NoDone is the pairing positive: Add with no Done anywhere in the module.
// The finding lands on the class's first operation.
func NoDone() {
	var wg sync.WaitGroup
	wg.Add(1) // want "has Add but no Done anywhere in the module"
	go work()
	wg.Wait()
}

// WaitOnly waits on a WaitGroup nothing was ever added to: Wait is a no-op
// and the goroutines it should gate are unguarded.
func WaitOnly() {
	var wg sync.WaitGroup
	go work()
	wg.Wait() // want "Waited on but never Added to"
}

// DoneOnly panics at runtime: Done on a zero counter.
func DoneOnly() {
	var wg sync.WaitGroup
	wg.Done() // want "has Done but no Add anywhere in the module"
}

// Rendezvous is the annotated negative: the Add inside the goroutine is
// ordered before Wait by the channel handshake, and the author vouches for
// the deviation.
func Rendezvous() {
	var wg sync.WaitGroup
	ready := make(chan struct{}, 1)
	go func() {
		//lint:allow waitgroup fixture: the ready handshake orders this Add before Wait
		wg.Add(1)
		ready <- struct{}{}
		defer wg.Done()
		work()
	}()
	<-ready
	wg.Wait()
}
