// Package dram is a miniature simulation-state package (classified by
// basename): writes into its structs and calls into its functions are
// observereffect sinks, and its error-returning constructors feed the
// errdiscard testdata.
package dram

import "errors"

// Bank is a sliver of simulation state.
type Bank struct {
	Threshold uint64
	Rows      []uint64
}

// Timing mirrors the real module's timing block: every float field is a
// nanosecond quantity by the DESIGN §13 ground-truth rule, whatever its
// mnemonic name.
type Timing struct {
	TRCD float64
	TRP  float64
}

// Attach wires an opaque probe handle into the bank; metrics-typed
// arguments are exempt at this sink.
func Attach(b *Bank, probe any) {}

// Activate touches a row — simulation behavior.
func (b *Bank) Activate(row uint64) {
	b.Rows[row&(uint64(len(b.Rows))-1)]++
}

// New builds a bank, rejecting non-positive sizes.
func New(rows int) (*Bank, error) {
	if rows <= 0 {
		return nil, errors.New("dram: rows must be positive")
	}
	return &Bank{Rows: make([]uint64, rows)}, nil
}

// Check validates invariants.
func Check() error { return nil }
