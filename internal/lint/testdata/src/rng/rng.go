// Package rng is a stub of the project's internal/rng, just enough surface
// for the seedflow golden tests: the analyzer matches constructors by
// package name and function name, exactly as it does on the real package.
package rng

// SplitMix64 mirrors the real generator's shape.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Xoshiro256 mirrors the real generator's shape.
type Xoshiro256 struct{ s [4]uint64 }

// NewXoshiro256 returns a generator derived from seed.
func NewXoshiro256(seed uint64) *Xoshiro256 { return &Xoshiro256{s: [4]uint64{seed, 1, 2, 3}} }
