// Package hotalloc exercises the static allocation gate: a `// hot`
// function and everything it reaches through the call graph (interface
// dispatch included) must not allocate; `// cold` stops traversal.
package hotalloc

// Table is preallocated state the hot path may use freely.
type Table struct {
	slots []uint64
	n     int
}

// Sink is the dispatch interface: gating a hot caller gates every loaded
// implementation.
type Sink interface {
	Put(v uint64)
}

// Counter implements Sink without allocating.
type Counter struct{ total uint64 }

// Put implements Sink.
func (c *Counter) Put(v uint64) { c.total += v }

// Logger implements Sink with an allocation on every call.
type Logger struct{ lines []uint64 }

// Put implements Sink by remembering each value.
func (l *Logger) Put(v uint64) {
	l.lines = append(l.lines, v) // want "append growth in function hotalloc.Logger.Put reachable from // hot hotalloc.Drain"
}

// Step is the direct positive: a make on the measured path.
//
// hot: one call per simulated access.
func Step(t *Table, n int) {
	t.slots = make([]uint64, n) // want "make allocation in // hot function hotalloc.Step"
	record(t, uint64(n))
}

// record is the interprocedural positive: reached from Step without its own
// annotation.
func record(t *Table, v uint64) {
	t.slots = append(t.slots, v) // want "append growth in function hotalloc.record reachable from // hot hotalloc.Step"
}

// Dispatch is the closure positive.
//
// hot
func Dispatch(t *Table) func() {
	return func() { t.n++ } // want "closure allocation \(func literal\) in // hot function hotalloc.Dispatch"
}

// Box is the pointer-literal positive.
//
// hot
func Box() *Table {
	return &Table{} // want "heap allocation \(&composite literal\) in // hot function hotalloc.Box"
}

// observe boxes its argument into the empty interface.
func observe(v any) {}

// Feed is the interface-escape positive: a concrete uint64 boxed at the
// call site.
//
// hot
func Feed(x uint64) {
	observe(x) // want "interface escape \(boxing uint64\) in // hot function hotalloc.Feed"
}

// Drain is the dynamic-dispatch root: the Sink call resolves to every
// loaded implementation, so Logger.Put above is gated while Counter.Put
// stays clean.
//
// hot
func Drain(s Sink, vs []uint64) {
	for _, v := range vs {
		s.Put(v)
	}
}

// grow doubles the table; amortized growth is declared off the hot path.
//
// cold
func grow(t *Table) {
	t.slots = append(t.slots, 0)
}

// Record is the cold negative: the only allocation it reaches sits behind a
// `// cold` boundary.
//
// hot
func Record(t *Table) {
	if t.n == len(t.slots) {
		grow(t)
	}
	t.slots[t.n&(len(t.slots)-1)]++
	t.n++
}

// validate reports whether the value is admissible; boxing into an
// error-returning callee is exempt (the error path is cold by convention).
func validate(v any) error { return nil }

// Check is the error-path negative.
//
// hot
func Check(x uint64) error {
	return validate(x)
}

// Scratch is the annotated negative: a justified allocation.
//
// hot
func Scratch(n int) []uint64 {
	//lint:allow hotalloc fixture: the scratch buffer is grown once at startup
	return make([]uint64, n)
}

// Idle is the unannotated negative: allocations outside the hot-reachable
// region are not this analyzer's business.
func Idle(n int) []uint64 {
	return make([]uint64, n)
}
