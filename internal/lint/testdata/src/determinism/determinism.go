// Package determinism is golden testdata: flagged lines carry want
// comments, allowed lines show the sanctioned alternatives.
package determinism

import (
	"math/rand" // want "import of math/rand is nondeterministic"
	"sort"
	"time"
)

// table is write-once package state: initialized here, only ever read.
var table = [4]uint64{1, 2, 3, 5}

// hits is mutated by Record, so it is shared mutable state.
var hits int // want "package-level variable hits is mutated"

// Record bumps the package counter (flagged at the declaration above).
func Record() { hits++ }

// Sample mixes two forbidden ambient sources.
func Sample() int64 {
	now := time.Now().UnixNano() // want "time.Now reads the wall clock"
	return now + rand.Int63()
}

// Elapsed uses the wall clock to measure simulated work.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// SumUnordered iterates a map directly.
func SumUnordered(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is nondeterministic"
		out = append(out, v)
	}
	return out
}

// SumCommutative is order-independent, which the annotation records.
func SumCommutative(m map[string]int) int {
	total := 0
	//lint:allow determinism addition is commutative, order cannot reach output
	for _, v := range m {
		total += v
	}
	return total
}

// BootStamp is telemetry about the host run, not simulation state — the
// sanctioned use of the wall clock, recorded with an allow annotation.
func BootStamp() int64 {
	//lint:allow determinism telemetry-only timestamp, never feeds simulation state
	return time.Now().UnixNano()
}

// SumSorted extracts and sorts the keys first — the preferred rewrite.
func SumSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m { // key extraction: allowed, order is sorted away below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// First reads the table without mutating it (allowed).
func First() uint64 { return table[0] }
