// Package bitwidth is golden testdata for the bit-width analyzer.
package bitwidth

import "math"

// ShiftPastWidth always yields zero: flagged.
func ShiftPastWidth(x uint32) uint32 {
	return x << 32 // want "shift by 32 on a 32-bit operand"
}

// ShiftAssignPastWidth is the compound-assignment form: flagged.
func ShiftAssignPastWidth(x uint16) uint16 {
	x >>= 16 // want "shift by 16 on a 16-bit operand"
	return x
}

// ShiftInRange is ordinary address arithmetic: allowed.
func ShiftInRange(x uint64, bits uint) uint64 {
	return x<<3 | x>>(64-bits)
}

// MaskPastDomain has bits above the 40-bit line-address domain: flagged.
func MaskPastDomain(addr uint64) uint64 {
	return addr & 0x1FF_FFFF_FFFF // want "mask 0x1ffffffffff has bits above the 40-bit line-address domain"
}

// MaskInDomain is allowed (36 bits fit the address domain).
func MaskInDomain(addr uint64) uint64 {
	return addr & 0xF_FFFF_FFFF
}

// NarrowUnguarded may truncate: flagged.
func NarrowUnguarded(line uint64) uint32 {
	return uint32(line) // want "narrowing conversion from 64-bit uint64 to 32-bit uint32"
}

// NarrowMasked provably fits: allowed.
func NarrowMasked(line uint64) uint32 {
	return uint32(line & 0xFFFF_FFFF)
}

// NarrowShifted keeps only the high half: allowed.
func NarrowShifted(line uint64) uint32 {
	return uint32(line >> 32)
}

// NarrowGuarded range-checks first: allowed.
func NarrowGuarded(line uint64) (uint32, bool) {
	if line > math.MaxUint32 {
		return 0, false
	}
	return uint32(line), true
}

// NarrowAnnotated documents a deliberate truncation: allowed.
func NarrowAnnotated(word uint64) uint32 {
	//lint:allow bitwidth deliberate low-half split of a 64-bit word
	return uint32(word)
}

// NarrowSignedTarget loses the sign bit too: flagged.
func NarrowSignedTarget(row uint64) int32 {
	return int32(row) // want "narrowing conversion from 64-bit uint64 to 32-bit int32"
}

// WidenIsFine: int is 64-bit on supported hosts, no narrowing.
func WidenIsFine(slot uint32) int {
	return int(slot)
}
