// Package metrics is a miniature of the real internal/metrics package: the
// observereffect analyzer classifies it by basename and treats its reads as
// taint sources.
package metrics

// Counter counts events.
type Counter struct{ v uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reads the count back — a telemetry read.
func (c *Counter) Value() uint64 { return c.v }

// Snapshot is a point-in-time view of all recorded metrics.
type Snapshot struct {
	Counters map[string]uint64
}

// Recorder hands out metric handles.
type Recorder struct{ counters map[string]*Counter }

// Counter returns the named counter handle.
func (r *Recorder) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot captures current values — a telemetry read.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Counters: make(map[string]uint64)}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	return s
}

// WallNow is the sanctioned host clock — still a telemetry read.
func WallNow() int64 { return 0 }
