// Package geom is a miniature of the real address-geometry package: its
// codec signatures pin the phys→row conversion, and its row-keyed struct
// exercises the addrspace annotation inference.
package geom

// GlobalRow extracts the global row coordinate of a physical line.
func GlobalRow(phys uint64) uint64 { return phys >> 3 }

// Encode rebuilds a physical line from a row coordinate and a slot.
func Encode(row, slot uint64) uint64 { return row<<3 | slot }

// Frame is row-keyed state whose field domain is inferred from its writes:
// it is only ever written with GlobalRow results.
type Frame struct {
	row uint64 // want "consistently carries row"
}

// Note records the frame's current row.
func Note(f *Frame, phys uint64) {
	f.row = GlobalRow(phys)
}
