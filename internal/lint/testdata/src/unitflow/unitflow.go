// Package unitflow exercises the time-unit discipline: ns/cycle/refresh
// quantities must not meet in additive arithmetic or comparisons without an
// explicit multiplicative conversion. Seeds come from the `// unit:`
// annotations below and the dram fixture's Timing ground truth.
package unitflow

import "dram"

// clock is the simulation clock.
var clock float64 // unit: ns

// elapsed counts DRAM cycles.
var elapsed float64 // unit: cycle

// windows counts refresh windows.
var windows uint64 // unit: refresh

// Mix is the direct positive: cycles added to nanoseconds.
func Mix() float64 {
	return clock + elapsed // want "operands of \"\+\" mix units \(ns vs cycle\)"
}

// Compare is the comparison positive: ordering ns against a cycle count.
func Compare() bool {
	return clock < elapsed // want "operands of \"<\" mix units \(ns vs cycle\)"
}

// Accumulate is the compound-assignment positive: += is the same bug as +.
func Accumulate(t dram.Timing) float64 {
	total := t.TRCD
	total += elapsed // want "compound assignment \"\+=\" mixes units .*cycle"
	return total
}

// Budget is the cross-package positive: a Timing field (ns by the dram
// ground truth) compared against a refresh-window count.
func Budget(t dram.Timing) bool {
	return t.TRP > float64(windows) // want "operands of \">\" mix units \(ns vs refresh\)"
}

// Retag is the foreign-write positive: a cycle count stored into the
// ns-pinned clock.
func Retag() {
	clock = elapsed // want "cycle value assigned to ns-pinned \"clock\""
}

// Convert is the conversion negative: multiplying by the rate is the
// declared conversion idiom, so the sum is clean.
func Convert(nsPerCycle float64) float64 {
	return clock + elapsed*nsPerCycle
}

// ConvertAssign is the conversion negative for compound assignment.
func ConvertAssign(nsPerCycle float64) float64 {
	total := clock
	total += elapsed * nsPerCycle
	return total
}

// deadline derives a ns deadline from the clock.
func deadline(slack float64) float64 { return clock + slack }

// Interproc is the interprocedural positive: the helper's ns result meets a
// cycle count one call away.
func Interproc() bool {
	return deadline(5) > elapsed // want "operands of \">\" mix units \(ns vs cycle\)"
}

// SameUnit is the clean negative: both operands are nanoseconds.
func SameUnit(t dram.Timing) float64 {
	return clock + t.TRCD + t.TRP
}

// Allowed is the annotated negative.
func Allowed() float64 {
	//lint:allow unitflow fixture: the cycle count is dimensionless in this reduction
	return clock + elapsed
}
