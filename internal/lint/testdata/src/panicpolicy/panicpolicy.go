// Package panicpolicy is golden testdata for the panic-policy analyzer.
package panicpolicy

import "fmt"

// Open panics on bad input instead of returning the error: flagged.
func Open(name string) string {
	if name == "" {
		panic("empty name") // want "panic in library package"
	}
	return name
}

// OpenChecked is the sanctioned shape: allowed.
func OpenChecked(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("empty name")
	}
	return name, nil
}

// init-time guards run before any experiment starts: allowed.
func init() {
	if MaxWidth <= 0 {
		panic("panicpolicy: bad MaxWidth")
	}
}

// MaxWidth is checked by init above.
const MaxWidth = 40

// MustOpen documents its invariant guard: allowed.
func MustOpen(name string) string {
	if name == "" {
		//lint:allow panicpolicy Must-constructor for static configuration; callers pass literals
		panic("empty name")
	}
	return name
}
