// Package lockdiscipline exercises guard inference: majority-locked access
// sites imply a guard, minority unlocked accesses are flagged, annotations
// override the vote, and constructors are exempt.
package lockdiscipline

import "sync"

// Counter's n is locked at 3 of 5 access sites — majority infers mu.
type Counter struct {
	mu sync.Mutex
	n  int // want "field lockdiscipline.n is .*by mu .*does not record the invariant"
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *Counter) Set(v int) {
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
}

// Peek is the true positive: an unlocked read of a majority-locked field.
func (c *Counter) Peek() int {
	return c.n // want "read of lockdiscipline.n without mu held"
}

// Racy is the annotated negative: a justified allow suppresses the finding.
func (c *Counter) Racy() int {
	//lint:allow lockdiscipline fixture: approximate stat read is fine off the hot path
	return c.n
}

// Gauge's v is locked at 3 of 4 sites; the fourth lives in the constructor,
// which is exempt — the value is not shared yet.
type Gauge struct {
	mu sync.Mutex
	v  int // want "field lockdiscipline.v is .*by mu .*does not record"
}

// NewGauge writes v unlocked: constructor exemption, no finding.
func NewGauge(v int) *Gauge {
	g := &Gauge{}
	g.v = v
	return g
}

func (g *Gauge) Bump() {
	g.mu.Lock()
	g.v++
	g.mu.Unlock()
}

func (g *Gauge) Drop() {
	g.mu.Lock()
	g.v--
	g.mu.Unlock()
}

func (g *Gauge) Zero() {
	g.mu.Lock()
	g.v = 0
	g.mu.Unlock()
}

// Stats exercises RWMutex modes: reads accept RLock, writes need Lock.
type Stats struct {
	rw  sync.RWMutex
	avg float64 // want "field lockdiscipline.avg is .*by rw .*does not record"
}

func (s *Stats) SetA(v float64) {
	s.rw.Lock()
	s.avg = v
	s.rw.Unlock()
}

func (s *Stats) SetB(v float64) {
	s.rw.Lock()
	defer s.rw.Unlock()
	s.avg = v
}

// Read under RLock is the mode-aware negative.
func (s *Stats) Read() float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.avg
}

// BadWrite holds only the read lock for a write: flagged.
func (s *Stats) BadWrite(v float64) {
	s.rw.RLock()
	s.avg = v // want "write to lockdiscipline.avg without rw held exclusively"
	s.rw.RUnlock()
}

// Ledger's total carries a declared annotation: it wins even though the
// majority vote alone could not infer a guard from one locked site.
type Ledger struct {
	mu    sync.Mutex
	total int // guarded by mu
}

func (l *Ledger) Deposit(v int) {
	l.mu.Lock()
	l.total += v
	l.mu.Unlock()
}

// Balance is flagged because of the declaration, not the vote.
func (l *Ledger) Balance() int {
	return l.total // want "read of lockdiscipline.total without mu held .*declared on the field"
}
