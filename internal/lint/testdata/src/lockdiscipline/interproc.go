package lockdiscipline

import "sync"

// Table exercises interprocedural hold tracking: unexported helpers inherit
// the locks every caller holds (a must-intersection over call sites).
type Table struct {
	mu   sync.Mutex
	rows int // want "field lockdiscipline.rows is .*by mu .*does not record"
}

// grow touches rows without locking, but every caller holds mu — the
// entry-held intersection keeps it a locked site (interprocedural negative).
func (t *Table) grow() {
	t.rows++
}

func (t *Table) Insert() {
	t.mu.Lock()
	t.grow()
	t.rows++
	t.mu.Unlock()
}

func (t *Table) Reserve(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < n; i++ {
		t.grow()
	}
	t.rows += n
}

// shrink is called from one locked and one unlocked site, so the
// intersection is empty and its access really is unguarded
// (interprocedural positive).
func (t *Table) shrink() {
	t.rows-- // want "write to lockdiscipline.rows without mu held"
}

func (t *Table) Remove() {
	t.mu.Lock()
	t.shrink()
	t.mu.Unlock()
}

// Compact forgets the lock before calling shrink.
func (t *Table) Compact() {
	t.shrink()
}
