// Package goroutineleak exercises leak detection: channel ops that can never
// unblock, dead selects, and unstoppable time.Tick tickers.
package goroutineleak

import "time"

// DeadRecv is the true positive: nothing in the module ever sends on or
// closes orphan, so the goroutine blocks forever.
func DeadRecv() {
	orphan := make(chan int)
	go func() {
		<-orphan // want "receive on channel orphan has no matching send or close"
	}()
}

// DeadSend is the unbuffered-send positive.
func DeadSend() {
	sink := make(chan int)
	go func() {
		sink <- 1 // want "send on unbuffered channel sink has no matching receive"
	}()
}

// Buffered is the negative: a buffered send does not block while capacity
// remains, so a missing receiver is not a guaranteed leak.
func Buffered() {
	buf := make(chan int, 4)
	go func() {
		buf <- 1
	}()
}

// Paired is the interprocedural negative: the send happens in a helper the
// channel flows into, and alias classes unify it with the receive here.
func Paired() int {
	ch := make(chan int)
	go produce(ch)
	return <-ch
}

func produce(out chan int) {
	out <- 7
}

// DeadSelect has only dead arms and no default: flagged at the select.
func DeadSelect() {
	a := make(chan int)
	b := make(chan int)
	go func() {
		select { // want "every arm of this select is a dead channel op"
		case <-a:
		case b <- 1:
		}
	}()
}

// DefaultSelect is the negative: a default arm always exits.
func DefaultSelect() {
	a := make(chan int)
	go func() {
		select {
		case <-a:
		default:
		}
	}()
}

// Tick is flagged unconditionally: time.Tick tickers cannot be stopped.
func Tick() <-chan time.Time {
	return time.Tick(1) // want "time.Tick leaks its ticker"
}

// Stopped is the negative: time.NewTicker can be stopped.
func Stopped() *time.Ticker {
	return time.NewTicker(1)
}

// Shutdown is the annotated negative: a receive that blocks until process
// exit is the intended lifecycle, so the author vouches for it.
func Shutdown() {
	hold := make(chan struct{})
	go func() {
		//lint:allow goroutineleak fixture: intentional block-until-exit guard
		<-hold
	}()
}
