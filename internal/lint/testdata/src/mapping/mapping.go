// Package mapping is a miniature of the real address-mapping package: the
// addrwidth analyzer seeds its address-named values and Map/Unmap results
// with the 40-bit address bound.
package mapping

// Mapper maps line addresses.
type Mapper interface {
	Map(line uint64) uint64
	Unmap(phys uint64) uint64
}

// Sequential is the identity mapping.
type Sequential struct{}

// Map returns the line unchanged.
func (Sequential) Map(line uint64) uint64 { return line }

// Unmap returns the physical line unchanged.
func (Sequential) Unmap(phys uint64) uint64 { return phys }

// MapBatch is the batched surface stub: element writes into phys taint the
// caller-visible container the way the real adapters do.
func (s Sequential) MapBatch(lines, phys []uint64) {
	for i, line := range lines {
		phys[i] = s.Map(line)
	}
}
