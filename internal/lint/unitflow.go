package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// UnitFlow runs the domain lattice over time units instead of address
// spaces: nanoseconds (the simulator's float64 clock), DRAM/CPU cycles, and
// refresh-window counts. Seeds come from dram/memctrl timing declarations
// (Timing struct fields and *Ns-suffixed names), the simulation clock
// vocabulary (now/arrival/earliest/deadline), time.Duration-typed
// declarations (a Duration's native unit is the nanosecond), and `// unit:`
// annotations. The analyzer flags additive arithmetic and comparisons whose
// operands carry different units — exactly the ns-vs-cycle and
// lost-refresh-accounting class of bug PR 4 fixed by hand (tRP charged on
// every ACT, tWR dropped on refresh catch-up) — and writes into `// unit:`
// pinned declarations from a foreign unit. Multiplication and division are
// exempt: they are how unit conversions are written (cycles × ns/cycle), so
// an explicit conversion clears the finding.
var UnitFlow = &Analyzer{
	Name: "unitflow",
	Doc: "time quantities must not mix units (ns/cycle/refresh) in additive " +
		"arithmetic or comparisons without an explicit multiplicative " +
		"conversion or `// unit:` boundary annotation",
	NeedsProgram: true,
	Run:          runUnitFlow,
}

// mixableUnitOps are the operators where operand units must agree: additive
// arithmetic and ordering/equality. MUL/QUO/SHL/SHR are the conversion
// idiom; bitwise ops on times do not occur.
var mixableUnitOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// unitConverted reports whether e is an explicit multiplicative conversion
// (the cycles × ns/cycle idiom). The flow graph conservatively carries both
// operands' taint through a product, but a multiply or divide is exactly how
// a unit change is written, so the converted value's declared unit is
// whatever the author converted to — the operand units are not held against
// it at unit sinks.
func unitConverted(e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && (b.Op == token.MUL || b.Op == token.QUO)
}

func runUnitFlow(pass *Pass) error {
	prog := pass.Prog
	facts := prog.domains()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkUnitMix(pass, facts, n)
			case *ast.AssignStmt:
				checkAssignDomains(pass, facts, n, unitFamily)
				checkOpAssignUnits(pass, facts, n)
			case *ast.CallExpr:
				checkCallDomains(pass, facts, n, unitFamily)
			}
			return true
		})
	}
	return nil
}

// checkUnitMix flags additive/comparison expressions whose two operands
// carry known, different units.
func checkUnitMix(pass *Pass, facts *domainFacts, x *ast.BinaryExpr) {
	if !mixableUnitOps[x.Op] {
		return
	}
	if unitConverted(x.X) || unitConverted(x.Y) {
		return // an explicit conversion fixes the expression's unit
	}
	prog := pass.Prog
	uL, hL := prog.domainsOf(pass.LintPkg, x.X, unitFamily)
	if uL == 0 {
		return
	}
	uR, hR := prog.domainsOf(pass.LintPkg, x.Y, unitFamily)
	if uR == 0 {
		return
	}
	combined := uL.join(uR)
	if combined.single() {
		return // same unit on both sides
	}
	for d, h := range hR { // merge for the message; rendered in lattice order
		if _, ok := hL[d]; !ok {
			hL[d] = h
		}
	}
	pass.Report(x.OpPos, fmt.Sprintf(
		"operands of %q mix units (%s vs %s): %s; insert an explicit conversion "+
			"(multiply/divide by the rate) or annotate //lint:allow unitflow <why>",
		x.Op, uL, uR, describeHits(hL)))
}

// checkOpAssignUnits extends the mix check to compound assignment: now +=
// cycles is the same bug as now + cycles.
func checkOpAssignUnits(pass *Pass, facts *domainFacts, n *ast.AssignStmt) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	if unitConverted(n.Rhs[0]) {
		return // an explicit conversion fixes the added value's unit
	}
	prog := pass.Prog
	uL, hL := prog.domainsOf(pass.LintPkg, n.Lhs[0], unitFamily)
	// A pinned target contributes its declared unit even though pinned nodes
	// carry no propagated taint.
	ev := &evaluator{prog: prog, pkg: pass.LintPkg}
	if target := ev.lvalueNode(n.Lhs[0]); target != (node{}) {
		if want, ok := facts.pins[target]; ok && want.family(unitFamily) != 0 {
			uL = uL.join(want.family(unitFamily))
			if _, seen := hL[want.family(unitFamily)]; !seen {
				if hL == nil {
					hL = make(map[domain]Hit)
				}
				hL[want.family(unitFamily)] = Hit{Pos: facts.pinPos[target], What: "pinned declaration"}
			}
		}
	}
	if uL == 0 {
		return
	}
	uR, hR := prog.domainsOf(pass.LintPkg, n.Rhs[0], unitFamily)
	if uR == 0 {
		return
	}
	if uL.join(uR).single() {
		return
	}
	for d, h := range hR { // merge for the message; rendered in lattice order
		if _, ok := hL[d]; !ok {
			hL[d] = h
		}
	}
	pass.Report(n.TokPos, fmt.Sprintf(
		"compound assignment %q mixes units (%s vs %s): %s; insert an explicit "+
			"conversion or annotate //lint:allow unitflow <why>",
		n.Tok, uL, uR, describeHits(hL)))
}
