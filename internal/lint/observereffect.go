package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ObserverEffect enforces the "telemetry is write-only from the hot path"
// contract of internal/metrics: the disabled-parity guarantee (a run with
// metrics off is byte-identical to one with metrics on) holds only if no
// value *read back* from the observability subsystem — counter loads,
// snapshot fields, histogram stats, the sanctioned wall clock — ever feeds
// simulation state, mapper decisions, or RNG consumption. The analyzer
// taints every metrics read and follows it interprocedurally through
// assignments, returns, call arguments, struct fields, and channel/slice
// element flows; a tainted value reaching a write into a simulation-state
// struct, or an argument of a simulation-package function, is reported.
//
// Values whose static type is declared in internal/metrics (handles,
// recorders, snapshots) are exempt at sinks: wiring the subsystem through
// the stack is plumbing, not feedback.
//
// There is deliberately no suggested fix: a telemetry read feeding the
// simulation is an architectural violation with no mechanical repair.
// Genuinely one-way uses (host-time progress reporting) carry
// //lint:allow observereffect <why>.
var ObserverEffect = &Analyzer{
	Name:         "observereffect",
	Doc:          "values read from internal/metrics must not flow into simulation state, mapper decisions, or RNG consumption",
	NeedsProgram: true,
	Run:          runObserverEffect,
}

// metricsReadFuncs are the functions/methods of the metrics package whose
// results constitute telemetry reads.
var metricsReadFuncs = map[string]bool{
	"Value":    true, // Counter.Value, Gauge.Value
	"Snapshot": true, // Recorder.Snapshot
	"WallNow":  true, // the sanctioned wall clock (host time, not sim time)
}

func runObserverEffect(pass *Pass) error {
	prog := pass.Prog
	tm := prog.Taint("observereffect", func() []Source {
		var srcs []Source
		for _, pkg := range prog.Packages() {
			if !isMetricsPkg(pkg.Path) {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					switch obj := pkg.Info.Defs[id].(type) {
					case *types.Func:
						if !metricsReadFuncs[obj.Name()] {
							return true
						}
						for i := 0; i < obj.Type().(*types.Signature).Results().Len(); i++ {
							srcs = append(srcs, Source{
								n:     resultNode(obj, i),
								bound: 64,
								pos:   pkg.Fset.Position(obj.Pos()),
								what:  "metrics." + obj.Name(),
							})
						}
					case *types.Var:
						if obj.IsField() && obj.Name() != "_" {
							srcs = append(srcs, Source{
								n:     objNode(obj),
								bound: 64,
								pos:   pkg.Fset.Position(obj.Pos()),
								what:  "metrics field " + obj.Name(),
							})
						}
					}
					return true
				})
			}
		}
		return srcs
	})
	if len(tm) == 0 {
		return nil
	}
	ev := &evaluator{prog: prog, pkg: pass.LintPkg}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkObserverAssign(pass, ev, tm, n)
			case *ast.CompositeLit:
				checkObserverCompositeLit(pass, ev, tm, n)
			case *ast.CallExpr:
				checkObserverCall(pass, ev, tm, n)
			}
			return true
		})
	}
	return nil
}

// checkObserverAssign flags tainted values written into simulation-state
// locations: struct fields of state-package types and state-package
// package-level variables.
func checkObserverAssign(pass *Pass, ev *evaluator, tm TaintMap, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		target, ok := stateWriteTarget(pass, lhs)
		if !ok {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(n.Rhs) == len(n.Lhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0]
		default:
			continue
		}
		if metricsTyped(pass, lhs) || metricsTyped(pass, rhs) {
			continue
		}
		if hit, ok := tm.Query(ev.origins(rhs)); ok {
			pass.Reportf(n.Pos(),
				"value derived from %s (%s) is written into simulation state (%s); telemetry is write-only from the hot path — restructure, or annotate //lint:allow observereffect <why>",
				hit.What, shortPos(hit.Pos), target)
		}
	}
}

// checkObserverCompositeLit flags tainted values placed into fields of
// state-package struct literals.
func checkObserverCompositeLit(pass *Pass, ev *evaluator, tm TaintMap, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !declaredIn(tv.Type, isStatePkg) {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		val := elt
		var field *types.Var
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok {
				field, _ = pass.Info.Uses[key].(*types.Var)
			}
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil || declaredIn(field.Type(), isMetricsPkg) || metricsTyped(pass, val) {
			continue
		}
		if hit, ok := tm.Query(ev.origins(val)); ok {
			pass.Reportf(val.Pos(),
				"value derived from %s (%s) initializes simulation state (field %s of %s); telemetry is write-only from the hot path — restructure, or annotate //lint:allow observereffect <why>",
				hit.What, shortPos(hit.Pos), field.Name(), tv.Type)
		}
	}
}

// checkObserverCall flags tainted arguments to simulation-package functions
// and methods (mapper decisions, RNG consumption, state mutation APIs).
func checkObserverCall(pass *Pass, ev *evaluator, tm TaintMap, call *ast.CallExpr) {
	fn := ev.staticCallee(call)
	if fn == nil || fn.Pkg() == nil || !isStatePkg(fn.Pkg().Path()) {
		return
	}
	for _, arg := range call.Args {
		if metricsTyped(pass, arg) {
			continue
		}
		if hit, ok := tm.Query(ev.origins(arg)); ok {
			pass.Reportf(arg.Pos(),
				"value derived from %s (%s) is passed into %s.%s; telemetry must not steer the simulation — restructure, or annotate //lint:allow observereffect <why>",
				hit.What, shortPos(hit.Pos), fn.Pkg().Name(), fn.Name())
		}
	}
}

// stateWriteTarget reports whether lhs writes simulation state: a field of a
// struct declared in a state package, or a package-level variable of a state
// package. Local variables are intermediate flow, not state.
func stateWriteTarget(pass *Pass, lhs ast.Expr) (string, bool) {
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			if field.Pkg() != nil && isStatePkg(field.Pkg().Path()) && !declaredIn(field.Type(), isMetricsPkg) {
				return fmt.Sprintf("field %s.%s", field.Pkg().Name(), field.Name()), true
			}
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok {
			if obj.Pkg() != nil && isStatePkg(obj.Pkg().Path()) && obj.Parent() == obj.Pkg().Scope() {
				return fmt.Sprintf("package variable %s.%s", obj.Pkg().Name(), obj.Name()), true
			}
		}
	case *ast.IndexExpr:
		return stateWriteTarget(pass, x.X)
	case *ast.StarExpr:
		return stateWriteTarget(pass, x.X)
	case *ast.ParenExpr:
		return stateWriteTarget(pass, x.X)
	}
	return "", false
}

// metricsTyped reports whether e's static type is declared in the metrics
// package — handle/recorder/snapshot plumbing, exempt at sinks.
func metricsTyped(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && declaredIn(tv.Type, isMetricsPkg)
}

// shortPos renders a source position with the file's base name only, keeping
// diagnostics stable across checkouts.
func shortPos(p fmt.Stringer) string {
	return pkgBase(p.String())
}
