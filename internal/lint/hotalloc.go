package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc is the static half of the allocation-free hot-path contract that
// cmd/benchdiff checks dynamically: a function annotated `// hot` (the PR 4
// census/scheduler/event-ring paths, the PR 7 MapBatch loops) must not
// allocate, and neither may anything it reaches through the static call
// graph — composite literals of reference kinds, append growth, make/new,
// closure creation, and concrete-to-interface escapes are all flagged inside
// the hot-reachable region. Interface calls resolve to every loaded
// implementation, so marking memctrl's batch drain hot gates each mapper's
// MapBatch. Traversal stops at `// cold` functions (explicitly-amortized
// growth paths, opt-in debug hooks) and error-constructing calls are exempt
// (the error path is cold by convention). Justify a deliberate allocation
// with //lint:allow hotalloc <why> — the same contract benchdiff's
// allocs/op gate enforces at run time, now visible at review time.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated `// hot` (and everything they reach) must not " +
		"allocate: no make/new/&T{}/slice/map literals, append growth, " +
		"closures, or interface escapes; `// cold` stops traversal",
	NeedsProgram: true,
	Run:          runHotAlloc,
}

// hotReach is the memoized reachability result: for every function reachable
// from a `// hot` root, one representative path (its parent in the BFS tree
// and the root it came from).
type hotReach struct {
	root   *types.Func
	parent *types.Func
}

// hotReachability computes the hot-reachable set over the static call graph,
// resolving interface method callees to every loaded implementation.
func (f *domainFacts) hotReachability(p *Program) map[*types.Func]hotReach {
	if f.hotReached != nil {
		return f.hotReached
	}
	f.hotReached = make(map[*types.Func]hotReach)
	impls := p.interfaceImpls()

	roots := make([]*types.Func, 0, len(f.hot))
	for fn := range f.hot { // key extraction: sorted below
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	for _, root := range roots {
		if _, seen := f.hotReached[root]; seen {
			continue
		}
		f.hotReached[root] = hotReach{root: root}
		work := []*types.Func{root}
		for len(work) > 0 {
			fn := work[0]
			work = work[1:]
			for _, callee := range p.Callees(fn) {
				targets := []*types.Func{callee}
				if iface := impls[callee]; len(iface) > 0 {
					targets = append(targets, iface...)
				}
				for _, t := range targets {
					if f.cold[t] {
						continue
					}
					if p := t.Pkg(); p != nil && f.coldPkgs[pkgBase(p.Path())] {
						continue // the whole package is off the measured path
					}
					if _, seen := f.hotReached[t]; seen {
						continue
					}
					if !p.HasBody(t) {
						continue // out-of-module: the dynamic gate covers it
					}
					f.hotReached[t] = hotReach{root: root, parent: fn}
					work = append(work, t)
				}
			}
		}
	}
	return f.hotReached
}

// interfaceImpls maps each interface method object to the concrete methods
// (with loaded bodies) of types implementing that interface — the dynamic
// dispatch edge the plain call graph cannot see.
func (p *Program) interfaceImpls() map[*types.Func][]*types.Func {
	if p.ifaceImpls != nil {
		return p.ifaceImpls
	}
	p.ifaceImpls = make(map[*types.Func][]*types.Func)

	// Collect the interface methods that appear as call-graph callees.
	ifaceMethods := make(map[*types.Func]*types.Interface)
	for _, set := range p.callees {
		for callee := range set { // membership only; output sorted below
			if callee.Type() == nil {
				continue
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				ifaceMethods[callee] = it
			}
		}
	}
	if len(ifaceMethods) == 0 {
		return p.ifaceImpls
	}
	// Match every named type in the loaded packages against each interface.
	for _, pkg := range p.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for m, it := range ifaceMethods { // deterministic: sorted below
				var recv types.Type = named
				if !types.Implements(recv, it) {
					recv = types.NewPointer(named)
					if !types.Implements(recv, it) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
				if impl, ok := obj.(*types.Func); ok && p.HasBody(impl) {
					p.ifaceImpls[m] = append(p.ifaceImpls[m], impl)
				}
			}
		}
	}
	for m := range p.ifaceImpls { // per-key sort: deterministic traversal
		impls := p.ifaceImpls[m]
		sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
	}
	return p.ifaceImpls
}

func runHotAlloc(pass *Pass) error {
	prog := pass.Prog
	facts := prog.domains()
	reach := facts.hotReachability(prog)
	if len(reach) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			hr, hot := reach[fn]
			if !hot {
				continue
			}
			checkHotBody(pass, facts, fn, fd, hr)
		}
	}
	return nil
}

// hotPathLabel renders "hot mapping.MapBatch" or "reachable from hot
// memctrl.AccessBatch via accessMapped" for diagnostics.
func hotPathLabel(facts *domainFacts, fn *types.Func, hr hotReach) string {
	if hr.root == fn {
		return fmt.Sprintf("// hot function %s", funcLabel(fn))
	}
	via := ""
	if hr.parent != nil && hr.parent != hr.root {
		via = fmt.Sprintf(" via %s", funcLabel(hr.parent))
	}
	return fmt.Sprintf("function %s reachable from // hot %s%s", funcLabel(fn), funcLabel(hr.root), via)
}

// funcLabel renders pkg.Name or pkg.(T).Name for diagnostics.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = pkgBase(fn.Pkg().Path()) + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + typeName(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + fn.Name()
}

// checkHotBody walks one hot-reachable function body and reports every
// static allocation site.
func checkHotBody(pass *Pass, facts *domainFacts, fn *types.Func, fd *ast.FuncDecl, hr hotReach) {
	where := hotPathLabel(facts, fn, hr)
	report := func(pos token.Pos, kind string) {
		pass.Report(pos, fmt.Sprintf(
			"%s in %s; hoist it out of the hot path, mark the callee // cold, or annotate //lint:allow hotalloc <why>",
			kind, where))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure allocation (func literal)")
			return false // the closure body runs elsewhere; sites inside it belong to its own analysis
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocation")
			case *types.Map:
				report(n.Pos(), "map literal allocation")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					report(n.Pos(), "heap allocation (&composite literal)")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					// The panic path is the crash path: allocations while the
					// program dies (fmt.Sprintf in an invariant guard) are
					// irrelevant to steady-state alloc counts.
					return false
				}
			}
			checkHotCall(pass, n, report)
		}
		return true
	})
}

// checkHotCall flags allocating builtins and concrete-to-interface argument
// escapes at one call site.
func checkHotCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocation")
			case "new":
				report(call.Pos(), "new allocation")
			case "append":
				report(call.Pos(), "append growth")
			}
			return
		}
	}
	// Interface escapes: a concrete value passed where an interface is
	// expected boxes the value. Error-constructing/reporting callees are
	// exempt — the error path is the cold path by convention — as is panic.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	if signatureReturnsError(sig) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		j := i
		if j >= params.Len() {
			j = params.Len() - 1
		}
		if j < 0 {
			break
		}
		pt := params.At(j).Type()
		if sig.Variadic() && j == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if bt, ok := at.Underlying().(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		if tvArg, ok := pass.Info.Types[arg]; ok && tvArg.Value != nil && allocFreeConstKind(at) {
			continue // small constants stay in the read-only data segment
		}
		report(arg.Pos(), fmt.Sprintf("interface escape (boxing %s)", strings.TrimPrefix(at.String(), "untyped ")))
	}
}

// allocFreeConstKind reports whether boxing a constant of this type cannot
// allocate per call (strings and bools intern; small ints stay in the
// runtime's static box cache).
func allocFreeConstKind(t types.Type) bool {
	bt, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return bt.Info()&(types.IsString|types.IsBoolean|types.IsInteger) != 0
}

// signatureReturnsError reports whether any result of the signature is the
// error type.
func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
