package lint

import "testing"

// allDomains enumerates every single-bit domain of both families.
var allDomains = []domain{domLine, domPhys, domRow, domCipher, domNs, domCycle, domRefresh}

// TestDomainLattice pins the lattice laws the propagation relies on: join
// and meet are idempotent, commutative, and associative; they absorb each
// other; ⊥ is the identity of join and the zero of meet.
func TestDomainLattice(t *testing.T) {
	elems := []domain{0}
	elems = append(elems, allDomains...)
	// A few mixed masks exercise the non-atom part of the powerset.
	elems = append(elems, domLine|domPhys, domNs|domCycle|domRefresh, addrFamily, unitFamily, addrFamily|unitFamily)

	for _, a := range elems {
		if got := a.join(a); got != a {
			t.Errorf("join not idempotent: %v ∨ %v = %v", a, a, got)
		}
		if got := a.meet(a); got != a {
			t.Errorf("meet not idempotent: %v ∧ %v = %v", a, a, got)
		}
		if got := a.join(0); got != a {
			t.Errorf("⊥ not join identity: %v ∨ ⊥ = %v", a, got)
		}
		if got := a.meet(0); got != 0 {
			t.Errorf("⊥ not meet zero: %v ∧ ⊥ = %v", a, got)
		}
		for _, b := range elems {
			if a.join(b) != b.join(a) {
				t.Errorf("join not commutative: %v, %v", a, b)
			}
			if a.meet(b) != b.meet(a) {
				t.Errorf("meet not commutative: %v, %v", a, b)
			}
			if got := a.join(a.meet(b)); got != a {
				t.Errorf("absorption a ∨ (a ∧ b) failed: %v, %v → %v", a, b, got)
			}
			if got := a.meet(a.join(b)); got != a {
				t.Errorf("absorption a ∧ (a ∨ b) failed: %v, %v → %v", a, b, got)
			}
			for _, c := range elems {
				if a.join(b.join(c)) != a.join(b).join(c) {
					t.Errorf("join not associative: %v, %v, %v", a, b, c)
				}
				if a.meet(b.meet(c)) != a.meet(b).meet(c) {
					t.Errorf("meet not associative: %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

// TestDomainSingleAndString pins the mask predicates and rendering the
// diagnostics depend on.
func TestDomainSingleAndString(t *testing.T) {
	if domain(0).String() != "⊥" {
		t.Errorf("⊥ renders as %q", domain(0).String())
	}
	for _, d := range allDomains {
		if !d.single() {
			t.Errorf("%v is an atom but single() is false", d)
		}
		if _, ok := domainNames[d]; !ok {
			t.Errorf("atom %b has no name", uint16(d))
		}
	}
	for _, c := range []struct {
		d    domain
		want string
	}{
		{domLine, "line"},
		{domLine | domPhys, "line|phys"},
		{domPhys | domLine, "line|phys"}, // rendering order is lattice order, not join order
		{domNs | domRefresh, "ns|refresh"},
	} {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%b) = %q, want %q", uint16(c.d), got, c.want)
		}
	}
	if (domLine | domPhys).single() {
		t.Error("mixed mask reported single")
	}
}

// TestParseDomainRoundTrip pins that every annotation spelling resolves to
// the atom that renders back to it.
func TestParseDomainRoundTrip(t *testing.T) {
	for _, d := range allDomains {
		got, ok := parseDomain(d.String())
		if !ok || got != d {
			t.Errorf("parseDomain(%q) = %v, %v", d.String(), got, ok)
		}
	}
	if _, ok := parseDomain("parsec"); ok {
		t.Error("parseDomain accepted an unknown spelling")
	}
}

// TestDomainFamilies pins the family partition: every atom belongs to
// exactly one family, and family() is a restriction.
func TestDomainFamilies(t *testing.T) {
	if addrFamily&unitFamily != 0 {
		t.Fatalf("families overlap: %v", addrFamily&unitFamily)
	}
	for _, d := range allDomains {
		inAddr := d.family(addrFamily) != 0
		inUnit := d.family(unitFamily) != 0
		if inAddr == inUnit {
			t.Errorf("%v not in exactly one family", d)
		}
	}
	mixed := domLine | domNs
	if got := mixed.family(addrFamily); got != domLine {
		t.Errorf("family restriction: %v → %v, want line", mixed, got)
	}
	if got := mixed.family(unitFamily); got != domNs {
		t.Errorf("family restriction: %v → %v, want ns", mixed, got)
	}
}

// TestConverterTableSoundness pins the conversion-edge contract of the
// signature pin table: every surface declaring both an input and an output
// domain must actually convert (different domains on each side), and every
// declared domain is a single atom of the address family — a table row
// pinning a mixed mask would poison the seeds.
func TestConverterTableSoundness(t *testing.T) {
	for name, fd := range addrFuncPins {
		var in, out domain
		check := func(d domain, side string) {
			if !d.single() {
				t.Errorf("%s: %s domain %v is not a single atom", name, side, d)
			}
			if d.family(addrFamily) != d {
				t.Errorf("%s: %s domain %v leaves the address family", name, side, d)
			}
		}
		for _, d := range fd.params {
			check(d, "param")
			in |= d
		}
		for _, d := range fd.results {
			check(d, "result")
			out |= d
		}
		for _, d := range fd.out {
			check(d, "out-slice")
			out |= d
		}
		if in != 0 && out != 0 && in == out {
			t.Errorf("%s: declares %v on both sides; a converter must convert", name, in)
		}
	}
}

// TestAnalyzerScopeTable pins the bijection between the registered suite and
// the scope pin table: every analyzer has exactly one scope row and every
// row names a registered analyzer.
func TestAnalyzerScopeTable(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
		if _, ok := analyzerScope[a.Name]; !ok {
			t.Errorf("analyzer %q registered in All() but missing from analyzerScope", a.Name)
		}
	}
	for name := range analyzerScope {
		if !names[name] {
			t.Errorf("analyzerScope row %q names no registered analyzer", name)
		}
	}
	if len(analyzerScope) != len(All()) {
		t.Errorf("analyzerScope has %d rows, All() has %d analyzers", len(analyzerScope), len(All()))
	}
}
