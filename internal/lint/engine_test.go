package lint

import (
	"fmt"
	"go/types"
	"sort"
	"testing"
)

// TestXformLattice pins the bit-bound transform algebra the taint engine
// rests on: apply/compose agreement, join as pointwise maximum, and
// clamping.
func TestXformLattice(t *testing.T) {
	mask32 := capAt(32)
	shr3 := xform{add: -3, cap: 64}
	shl2 := xform{add: 2, cap: 64}

	cases := []struct {
		name string
		tf   xform
		in   int
		want int
	}{
		{"identity", identity, 40, 40},
		{"mask caps", mask32, 40, 32},
		{"mask no-op below cap", mask32, 12, 12},
		{"shift right", shr3, 40, 37},
		{"shift left", shl2, 40, 42},
		{"clamp low", xform{add: -80, cap: 64}, 40, 0},
		{"clamp high", xform{add: 80, cap: 64}, 40, 64},
	}
	for _, c := range cases {
		if got := c.tf.apply(c.in); got != c.want {
			t.Errorf("%s: apply(%d) = %d, want %d", c.name, c.in, got, c.want)
		}
	}

	// Composition must agree with sequential application on sample bounds.
	pairs := []struct{ a, b xform }{
		{mask32, shr3}, {shr3, mask32}, {shl2, mask32}, {mask32, capAt(16)},
		{xform{add: 5, cap: 20}, xform{add: -2, cap: 64}},
	}
	for _, p := range pairs {
		c := p.a.compose(p.b)
		for _, in := range []int{0, 8, 16, 33, 40, 64} {
			if got, want := c.apply(in), p.b.apply(p.a.apply(in)); got != want {
				t.Errorf("compose(%v, %v).apply(%d) = %d, want %d (sequential)", p.a, p.b, in, got, want)
			}
		}
	}

	// Join is conservative: never below either side.
	j := mask32.join(shr3)
	for _, in := range []int{0, 16, 40, 64} {
		if j.apply(in) < mask32.apply(in) || j.apply(in) < shr3.apply(in) {
			t.Errorf("join(%v, %v).apply(%d) = %d under-approximates", mask32, shr3, in, j.apply(in))
		}
	}
}

// loadTestProgram builds the Program over the golden testdata tree.
func loadTestProgram(t *testing.T) *Program {
	t.Helper()
	pkgs, err := NewLoader("testdata/src", "").LoadAll()
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return BuildProgram(pkgs)
}

// lookupFunc finds a package-level function in the loaded program.
func lookupFunc(t *testing.T, p *Program, pkgPath, name string) *types.Func {
	t.Helper()
	pkg := p.Package(pkgPath)
	if pkg == nil {
		t.Fatalf("package %q not loaded", pkgPath)
	}
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("%s.%s not found", pkgPath, name)
	}
	return fn
}

// TestTransferSummary pins the per-function digest: addrwidth.shift drops
// three bits from parameter 0 to result 0.
func TestTransferSummary(t *testing.T) {
	p := loadTestProgram(t)
	shift := lookupFunc(t, p, "addrwidth", "shift")
	sum := p.Summary(shift)
	tf, ok := sum[0][0]
	if !ok {
		t.Fatalf("Summary(shift) = %v, want param 0 → result 0", sum)
	}
	if got := tf.apply(40); got != 37 {
		t.Errorf("shift summary transforms 40 → %d, want 37", got)
	}

	// launder (observereffect testdata) adds one bit of slack but still
	// forwards its parameter.
	launder := lookupFunc(t, p, "observereffect", "launder")
	sum = p.Summary(launder)
	if _, ok := sum[0][0]; !ok {
		t.Fatalf("Summary(launder) = %v, want param 0 → result 0", sum)
	}
}

// TestCallGraph pins static call-graph construction, including interface
// callees (resolved to the interface method object).
func TestCallGraph(t *testing.T) {
	p := loadTestProgram(t)
	indirect := lookupFunc(t, p, "addrwidth", "Indirect")
	var names []string
	for _, c := range p.Callees(indirect) {
		names = append(names, c.FullName())
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	if !want["(mapping.Mapper).Map"] {
		t.Errorf("Callees(Indirect) = %v, missing interface method (mapping.Mapper).Map", names)
	}
	if !want["addrwidth.shift"] {
		t.Errorf("Callees(Indirect) = %v, missing addrwidth.shift", names)
	}
}

// TestTaintDeterminism pins that two independent propagations over the same
// program agree node-for-node — the lint suite's own replay contract.
func TestTaintDeterminism(t *testing.T) {
	seed := func(p *Program) TaintMap {
		return p.Taint("det-test", func() []Source {
			helper := p.Package("dram")
			var srcs []Source
			scope := helper.Types.Scope()
			for _, name := range scope.Names() {
				obj := scope.Lookup(name)
				if fn, ok := obj.(*types.Func); ok {
					srcs = append(srcs, Source{
						n: resultNode(fn, 0), bound: 40,
						pos:  helper.Fset.Position(fn.Pos()),
						what: fn.Name(),
					})
				}
			}
			return srcs
		})
	}
	// Two independent loads type-check into distinct object identities, so
	// project each map to a stable rendering (node source position + state)
	// before comparing.
	render := func(p *Program, tm TaintMap) []string {
		var out []string
		for n, st := range tm { // key extraction: sorted below
			var at string
			switch {
			case n.obj != nil:
				at = p.pkgs[0].Fset.Position(n.obj.Pos()).String()
			case n.fn != nil:
				at = fmt.Sprintf("%s#%d", n.fn.FullName(), n.idx)
			}
			out = append(out, fmt.Sprintf("%s bound=%d what=%s", at, st.bound, st.what))
		}
		sort.Strings(out)
		return out
	}
	pa := loadTestProgram(t)
	pb := loadTestProgram(t)
	a := render(pa, seed(pa))
	b := render(pb, seed(pb))
	if len(a) != len(b) {
		t.Fatalf("taint maps differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("taint state diverges:\n  %s\n  %s", a[i], b[i])
		}
	}
}
