package lint_test

import (
	"testing"

	"rubix/internal/lint"
	"rubix/internal/lint/linttest"
)

const testdata = "testdata/src"

func TestDeterminism(t *testing.T) {
	linttest.Run(t, testdata, lint.Determinism, "determinism")
}

func TestBitwidth(t *testing.T) {
	linttest.Run(t, testdata, lint.Bitwidth, "bitwidth")
}

func TestSeedflow(t *testing.T) {
	linttest.Run(t, testdata, lint.Seedflow, "seedflow")
}

func TestPanicpolicy(t *testing.T) {
	linttest.Run(t, testdata, lint.Panicpolicy, "panicpolicy")
}

func TestObserverEffect(t *testing.T) {
	linttest.Run(t, testdata, lint.ObserverEffect, "observereffect")
}

func TestAddrWidth(t *testing.T) {
	linttest.Run(t, testdata, lint.AddrWidth, "addrwidth")
}

func TestErrDiscard(t *testing.T) {
	linttest.Run(t, testdata, lint.ErrDiscard, "errdiscard")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, testdata, lint.LockDiscipline, "lockdiscipline")
}

func TestGoroutineEscape(t *testing.T) {
	linttest.Run(t, testdata, lint.GoroutineEscape, "goroutineescape")
}

func TestGoroutineLeak(t *testing.T) {
	linttest.Run(t, testdata, lint.GoroutineLeak, "goroutineleak")
}

func TestWaitGroup(t *testing.T) {
	linttest.Run(t, testdata, lint.WaitGroup, "waitgroup")
}

func TestAddrSpace(t *testing.T) {
	linttest.Run(t, testdata, lint.AddrSpace, "addrspace")
}

// TestAddrSpaceInference runs the annotation-inference half on the geom
// fixture: inference only fires inside the address-domain packages.
func TestAddrSpaceInference(t *testing.T) {
	linttest.Run(t, testdata, lint.AddrSpace, "geom")
}

func TestUnitFlow(t *testing.T) {
	linttest.Run(t, testdata, lint.UnitFlow, "unitflow")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, testdata, lint.HotAlloc, "hotalloc")
}

// TestDefaultScope pins the repository policy: which analyzers gate which
// package families.
func TestDefaultScope(t *testing.T) {
	scope := lint.DefaultScope("rubix")
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"determinism", "rubix/internal/sim", true},
		{"determinism", "rubix/internal/lint", false},
		{"determinism", "rubix/internal/server", false},
		{"determinism", "rubix/internal/store", false},
		{"determinism", "rubix/cmd/rubixsim", false},
		{"bitwidth", "rubix/internal/geom", true},
		{"bitwidth", "rubix/internal/lint/linttest", false},
		{"seedflow", "rubix/cmd/rubixsim", true},
		{"seedflow", "rubix/internal/workload", true},
		{"panicpolicy", "rubix/internal/workload", true},
		{"panicpolicy", "rubix/internal/lint", true},
		{"panicpolicy", "rubix/internal/server", true},
		{"panicpolicy", "rubix/examples/quickstart", false},
		{"observereffect", "rubix/internal/sim", true},
		{"observereffect", "rubix/internal/metrics", false},
		{"observereffect", "rubix/internal/lint", false},
		{"observereffect", "rubix/cmd/rubixsim", false},
		{"addrwidth", "rubix/internal/mapping", true},
		{"addrwidth", "rubix/internal/lint", false},
		{"errdiscard", "rubix/cmd/rubixsim", true},
		{"errdiscard", "rubix/internal/store", true},
		{"errdiscard", "rubix/examples/quickstart", true},
		{"errdiscard", "rubix/internal/kcipher", true},
		{"lockdiscipline", "rubix/internal/sim", true},
		{"lockdiscipline", "rubix/internal/server", true},
		{"lockdiscipline", "rubix/cmd/experiments", true},
		{"lockdiscipline", "rubix/internal/lint/linttest", true},
		{"goroutineescape", "rubix/internal/check", true},
		{"goroutineescape", "rubix/cmd/rubixsim", true},
		{"goroutineleak", "rubix/internal/metrics", true},
		{"goroutineleak", "rubix/examples/quickstart", true},
		{"waitgroup", "rubix/internal/sim", true},
		{"waitgroup", "rubix/internal/lint", true},
		{"addrspace", "rubix/internal/mapping", true},
		{"addrspace", "rubix/internal/memctrl", true},
		{"addrspace", "rubix/internal/lint", false},
		{"addrspace", "rubix/cmd/rubixsim", false},
		{"unitflow", "rubix/internal/dram", true},
		{"unitflow", "rubix/internal/lint/linttest", false},
		{"hotalloc", "rubix/internal/memctrl", true},
		{"hotalloc", "rubix/internal/server", false},
		{"hotalloc", "rubix/examples/quickstart", false},
	}
	for _, c := range cases {
		a := byName[c.analyzer]
		if a == nil {
			t.Fatalf("analyzer %q not registered", c.analyzer)
		}
		if got := scope(a, c.pkg); got != c.want {
			t.Errorf("scope(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

// TestAllowRequiresJustification guards the directive contract: a bare
// //lint:allow without a reason must not suppress findings. The testdata
// package "allowcheck" contains one bare directive over a panic; the
// finding must survive.
func TestAllowRequiresJustification(t *testing.T) {
	linttest.Run(t, testdata, lint.Panicpolicy, "allowcheck")
}
