package lint

import (
	"go/ast"
	"go/types"
)

// Seedflow keeps experiments reseedable: every RNG constructed in
// production code must take its seed from a parameter or configuration
// value. A literal seed hard-wires one replay forever — sweeps, ablations,
// and decorrelation across cores all silently collapse onto it. Deriving a
// seed from a config value (cfg.Seed ^ 0xCBF) is fine; the derivation stays
// under the experiment's control.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "RNG constructors outside _test.go must be seeded from configuration, not literal constants",
	Run:  runSeedflow,
}

// rngConstructors are the seed-taking constructors of internal/rng, keyed by
// name; the seed is their first argument.
var rngConstructors = map[string]bool{
	"NewSplitMix64": true,
	"NewXoshiro256": true,
}

func runSeedflow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "rng" || !rngConstructors[fn.Name()] {
				return true
			}
			seed := call.Args[0]
			if tv, ok := pass.Info.Types[seed]; ok && tv.Value != nil {
				pass.Reportf(seed.Pos(), "%s seeded with the constant %s; thread the seed from configuration so runs stay reseedable", fn.Name(), tv.Value.ExactString())
			}
			return true
		})
	}
	return nil
}

// calledFunc resolves the function object a call targets, if it is a named
// function or method.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
