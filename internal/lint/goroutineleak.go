package lint

import (
	"fmt"
	"go/token"
	"go/types"
)

// GoroutineLeak flags spawned goroutines whose only exit is a channel
// operation that can never complete: a receive on a channel alias class with
// no send and no close anywhere in the module, an unbuffered send with no
// receive, a select whose every arm is dead (and that has no default), and
// time.Tick — whose ticker is unreachable and never stopped. Channel alias
// classes come from union-find over the value-flow edges, so a channel
// passed into a helper unifies with its caller's and the matching send can
// live across a function boundary.
//
// Known unsoundness: a channel stored into a container or returned from a
// closure falls out of the alias classes; channels handed to exported API
// could be operated on by callers outside the module. Both directions are
// documented in DESIGN.md §11 — the analyzer only reports an op as dead
// when the module shows no counterpart at all.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "Flags goroutines blocked forever: receives on channels nothing " +
		"sends to or closes, unbuffered sends nothing receives, selects " +
		"whose every arm is dead, and time.Tick tickers that can never be " +
		"stopped. Operations are matched module-wide through channel alias " +
		"classes. Suppress process-lifetime goroutines with //lint:allow " +
		"goroutineleak <why>.",
	NeedsProgram: true,
	Run:          runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	facts := pass.Prog.concurrency()
	u := facts.aliasClasses(pass.Prog, isChanObj)

	type classStat struct {
		sends, recvs, closes int
		buffered             bool
	}
	stats := make(map[types.Object]*classStat)
	at := func(o types.Object) *classStat {
		r := u.find(o)
		s := stats[r]
		if s == nil {
			s = &classStat{}
			stats[r] = s
		}
		return s
	}
	for _, op := range facts.chans {
		s := at(op.obj)
		switch op.kind {
		case chanSend:
			s.sends++
		case chanRecv:
			s.recvs++
		case chanClose:
			s.closes++
		}
	}
	for o, buf := range facts.buffered { // flag only; order-free
		if buf {
			at(o).buffered = true
		}
	}

	// A channel op is in goroutine context when it sits in a closure body
	// spawned by `go` (or a worker pool), or in a function reachable from
	// one.
	inGoroutine := facts.goroutineContext(pass.Prog)

	deadRecv := func(op chanOp) bool {
		s := at(op.obj)
		return s.sends == 0 && s.closes == 0
	}
	deadSend := func(op chanOp) bool {
		s := at(op.obj)
		return s.recvs == 0 && !s.buffered
	}

	// Group select arms by their select statement; free-standing ops are
	// judged individually.
	selects := make(map[token.Pos][]chanOp)
	var order []token.Pos
	seen := make(map[token.Pos]bool)
	for _, op := range facts.chans {
		if op.pkg != pass.LintPkg || !inGoroutine(op) {
			continue
		}
		if op.selectPos != token.NoPos {
			if !seen[op.selectPos] {
				seen[op.selectPos] = true
				order = append(order, op.selectPos)
			}
			selects[op.selectPos] = append(selects[op.selectPos], op)
			continue
		}
		switch op.kind {
		case chanRecv:
			if deadRecv(op) {
				pass.Report(op.pos, fmt.Sprintf(
					"goroutine blocks forever: receive on %s has no matching send or close anywhere in the module",
					chanLabel(op.obj)))
			}
		case chanSend:
			if deadSend(op) {
				pass.Report(op.pos, fmt.Sprintf(
					"goroutine blocks forever: send on unbuffered %s has no matching receive anywhere in the module",
					chanLabel(op.obj)))
			}
		}
	}
	for _, selPos := range order {
		ops := selects[selPos]
		if len(ops) == 0 || ops[0].selectDef {
			continue // a default arm always exits
		}
		allDead := true
		for _, op := range ops {
			switch op.kind {
			case chanRecv:
				if !deadRecv(op) {
					allDead = false
				}
			case chanSend:
				if !deadSend(op) {
					allDead = false
				}
			}
		}
		if allDead {
			pass.Report(selPos,
				"goroutine blocks forever: every arm of this select is a dead channel op (no matching sender/receiver/close in the module) and there is no default")
		}
	}

	for _, t := range facts.ticks {
		if t.pkg == pass.LintPkg {
			pass.Report(t.pos,
				"time.Tick leaks its ticker (it can never be stopped); use time.NewTicker and defer Stop")
		}
	}
	return nil
}

// chanLabel names a channel object for diagnostics.
func chanLabel(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return "channel field " + fieldLabel(v)
	}
	return "channel " + o.Name()
}

// goroutineContext returns a predicate over ops: inside a spawned closure,
// or in a function reachable from any spawn body. The reachable-function
// set is computed once and memoized on the facts.
func (f *concFacts) goroutineContext(p *Program) func(chanOp) bool {
	reach := f.reachFromSpawns(p)
	return func(op chanOp) bool {
		if op.spawn >= 0 {
			return true
		}
		return op.fn != nil && reach[op.fn]
	}
}

// reachFromSpawns unions goroutineReach over every spawn site.
func (f *concFacts) reachFromSpawns(p *Program) map[*types.Func]bool {
	if f.spawnReach != nil {
		return f.spawnReach
	}
	all := make(map[*types.Func]bool)
	for _, sp := range f.spawns {
		for fn := range f.goroutineReach(p, sp) { // set union: order-free
			all[fn] = true
		}
	}
	f.spawnReach = all
	return all
}
