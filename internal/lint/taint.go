package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Source seeds the taint engine: the abstract node the taint enters at, the
// bit bound it carries there (for addrwidth; observereffect uses 64), and a
// human-readable description used in diagnostics.
type Source struct {
	n     node
	bound int
	pos   token.Position
	what  string
}

// taintState is the lattice element per node: the widest bit bound observed
// and the (deterministically chosen) representative source.
type taintState struct {
	bound int
	pos   token.Position
	what  string
}

// TaintMap is the fixpoint of one taint propagation over the program graph.
type TaintMap map[node]taintState

// Taint runs (and caches, per key) one taint propagation seeded by the given
// sources. Propagation is a FIFO worklist over the value-flow edges; the
// per-node bound only grows and is clamped to [0, 64], so the fixpoint is
// reached in bounded iterations.
func (p *Program) Taint(key string, seed func() []Source) TaintMap {
	if tm, ok := p.taintCache[key]; ok {
		return tm
	}
	sources := seed()
	// Deterministic worklist order: seed in source-position order.
	sort.Slice(sources, func(i, j int) bool {
		a, b := sources[i].pos, sources[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	tm := make(TaintMap)
	var work []node
	for _, s := range sources {
		st, ok := tm[s.n]
		if !ok || s.bound > st.bound {
			if !ok {
				st = taintState{bound: s.bound, pos: s.pos, what: s.what}
			} else {
				st.bound = s.bound
			}
			tm[s.n] = st
			work = append(work, s.n)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		st := tm[n]
		for _, e := range p.edges[n] {
			nb := e.tf.apply(st.bound)
			cur, ok := tm[e.to]
			if ok && cur.bound >= nb {
				continue
			}
			if !ok {
				cur = taintState{bound: nb, pos: st.pos, what: st.what}
			} else {
				cur.bound = nb
			}
			tm[e.to] = cur
			work = append(work, e.to)
		}
	}
	p.taintCache[key] = tm
	return tm
}

// Hit describes one tainted flow reaching a query point.
type Hit struct {
	Bound int            // bits the value may carry at the query point
	Pos   token.Position // representative source position
	What  string         // source description
}

// Query checks whether any of the flows is tainted, returning the hit with
// the widest surviving bound.
func (tm TaintMap) Query(flows []Flow) (Hit, bool) {
	var best Hit
	found := false
	for _, f := range flows {
		st, ok := tm[f.n]
		if !ok {
			continue
		}
		b := f.tf.apply(st.bound)
		if !found || b > best.Bound {
			best = Hit{Bound: b, Pos: st.pos, What: st.what}
			found = true
		}
	}
	return best, found
}

// Origins exposes the expression evaluator to analyzers: the abstract values
// expression e (from package pkg) may derive from.
func (p *Program) Origins(pkg *Package, e ast.Expr) []Flow {
	ev := &evaluator{prog: p, pkg: pkg}
	return ev.origins(e)
}

// Summary computes fn's transfer summary: for each parameter index, the
// result indexes a value entering that parameter can reach, with the
// composed bit-bound transform along the widest path. Summaries are the
// per-function digest of the global graph; tests pin them, and DESIGN.md §8
// documents how they relate to the context-insensitive propagation.
func (p *Program) Summary(fn *types.Func) map[int]map[int]xform {
	body := p.fns[fn]
	if body == nil {
		return nil
	}
	params := paramObjs(body.pkg, body.decl)
	nres := fn.Type().(*types.Signature).Results().Len()
	out := make(map[int]map[int]xform)
	for i, pobj := range params {
		if pobj == nil {
			continue
		}
		reach := p.reachability(objNode(pobj))
		for r := 0; r < nres; r++ {
			if tf, ok := reach[resultNode(fn, r)]; ok {
				if out[i] == nil {
					out[i] = make(map[int]xform)
				}
				out[i][r] = tf
			}
		}
	}
	return out
}

// reachability walks the graph from a node, composing transforms and joining
// parallel paths, until the per-node transforms stop improving.
func (p *Program) reachability(from node) map[node]xform {
	seen := map[node]xform{from: identity}
	work := []node{from}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		tf := seen[n]
		for _, e := range p.edges[n] {
			next := tf.compose(e.tf)
			cur, ok := seen[e.to]
			if ok {
				joined := cur.join(next)
				if joined == cur {
					continue
				}
				next = joined
			}
			seen[e.to] = next
			work = append(work, e.to)
		}
	}
	return seen
}

// --- package classification shared by the dataflow analyzers ----------------

// pkgBase returns the last path element of an import path — the package
// classifiers below match on it so the same analyzers run against both the
// real module ("rubix/internal/metrics") and the flat golden-testdata layout
// ("metrics").
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isMetricsPkg reports whether path is the observability package: the taint
// source domain of the observereffect analyzer.
func isMetricsPkg(path string) bool { return pkgBase(path) == "metrics" }

// statePkgs are the packages holding simulation state: writes into their
// structs, or calls into their functions, with telemetry-derived values are
// observer-effect violations.
var statePkgs = map[string]bool{
	"core": true, "cpu": true, "dram": true, "geom": true, "kcipher": true,
	"mapping": true, "memctrl": true, "mitigation": true, "rng": true,
	"sim": true, "tracker": true, "workload": true,
}

// isStatePkg reports whether path holds simulation state.
func isStatePkg(path string) bool { return statePkgs[pkgBase(path)] }

// addrSourcePkgs are the packages whose address-named values seed the
// addrwidth taint: the line/row arithmetic lives here.
var addrSourcePkgs = map[string]bool{
	"mapping": true, "kcipher": true, "dram": true, "core": true,
}

// isAddrSourcePkg reports whether path defines address values.
func isAddrSourcePkg(path string) bool { return addrSourcePkgs[pkgBase(path)] }

// declaredIn reports whether a type's named form is declared in a package
// satisfying the classifier (unwrapping pointers and slices).
func declaredIn(t types.Type, classify func(string) bool) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Named:
			if pkg := x.Obj().Pkg(); pkg != nil {
				return classify(pkg.Path())
			}
			return false
		default:
			return false
		}
	}
}
