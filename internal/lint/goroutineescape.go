package lint

import (
	"fmt"
	"go/types"
)

// GoroutineEscape flags mutable, unsynchronized state escaping from a
// spawning function into a goroutine: a write, inside the goroutine closure
// (or a helper it calls directly), to a variable captured from the spawner —
// or through a captured base — with no lock held on the path and no
// channel/atomic type involved. Such writes race with the spawner and with
// sibling goroutines the moment the spawn site runs more than once.
//
// The check is deliberately depth-one interprocedural: writes are examined
// in the closure body itself and in functions the body calls directly, with
// capture taint carried through the call's argument/receiver bindings. Full
// transitive reachability would flood: everything a worker calls (the whole
// simulator, for Suite.Prefetch) would count as "escaped". DESIGN.md §11
// records this as a known unsoundness trade.
var GoroutineEscape = &Analyzer{
	Name: "goroutineescape",
	Doc: "Flags writes inside a goroutine (or a directly-called helper) to " +
		"variables or struct fields captured from the spawning function " +
		"without a lock held — shared mutable state on a concurrent path. " +
		"Channel, sync, and atomic types are exempt, as are fields with an " +
		"established lockdiscipline guard (those are that analyzer's " +
		"findings). Suppress deliberate patterns (distinct-index writes into " +
		"a shared slice, single-writer hand-off) with //lint:allow " +
		"goroutineescape <why>.",
	NeedsProgram: true,
	Run:          runGoroutineEscape,
}

func runGoroutineEscape(pass *Pass) error {
	facts := pass.Prog.concurrency()
	guards := facts.guardsFor(pass.Prog)
	seen := make(map[string]bool)

	for _, sp := range facts.spawns {
		captured := make(map[types.Object]bool, len(sp.captured))
		for _, o := range sp.captured {
			captured[o] = true
		}
		if len(captured) == 0 {
			continue
		}
		// Depth-one taint: parameters (and receivers) of functions called
		// directly from the closure body, bound from captured values.
		tainted := make(map[types.Object]bool)
		direct := make(map[*types.Func]bool)
		for _, cf := range facts.calls {
			if cf.spawn != sp.id || cf.callee == nil {
				continue
			}
			body := pass.Prog.fns[cf.callee]
			if body == nil {
				continue
			}
			direct[cf.callee] = true
			params := paramObjs(body.pkg, body.decl)
			for ai, objs := range cf.argObjs {
				j := ai
				if j >= len(params) {
					j = len(params) - 1
				}
				if j < 0 || params[j] == nil {
					continue
				}
				for _, o := range objs {
					if captured[o] {
						tainted[params[j]] = true
					}
				}
			}
			if body.decl.Recv != nil && len(body.decl.Recv.List) == 1 && len(body.decl.Recv.List[0].Names) == 1 {
				if robj := body.pkg.Info.Defs[body.decl.Recv.List[0].Names[0]]; robj != nil {
					for _, o := range cf.recvObjs {
						if captured[o] {
							tainted[robj] = true
						}
					}
				}
			}
		}

		// Direct writes to captured variables inside the closure body.
		for _, vw := range facts.varWrites {
			if vw.spawn != sp.id || vw.pkg != pass.LintPkg {
				continue
			}
			if !captured[vw.obj] || len(vw.holds) > 0 {
				continue
			}
			if syncExempt(vw.obj.Type()) {
				continue
			}
			key := fmt.Sprintf("%d", vw.pos)
			if seen[key] {
				continue
			}
			seen[key] = true
			pass.Report(vw.pos, escapeMsg(vw.obj.Name(), sp, pass))
		}

		// Field writes through captured (or depth-one tainted) bases, in the
		// closure body or in directly-called helpers.
		for _, fa := range facts.fields {
			if !fa.write || fa.pkg != pass.LintPkg {
				continue
			}
			inBody := fa.spawn == sp.id
			inHelper := fa.spawn == -1 && fa.fn != nil && direct[fa.fn]
			if !inBody && !inHelper {
				continue
			}
			eff := facts.effectiveHolds(fa.holds, fa.fn, fa.spawn)
			if len(eff) > 0 {
				continue
			}
			if guards[fa.field] != nil {
				continue // lockdiscipline reports guarded-field misuse
			}
			if syncExempt(fa.field.Type()) || fieldDeclaredInMetrics(fa.field) {
				continue
			}
			if fa.field.Pkg() == nil || pass.Prog.byPath[fa.field.Pkg().Path()] == nil {
				continue // stdlib struct fields are not ours to police
			}
			through := false
			for _, b := range fa.base {
				if captured[b] || (inHelper && tainted[b]) {
					through = true
					break
				}
			}
			if !through {
				continue
			}
			key := fmt.Sprintf("%d", fa.pos)
			if seen[key] {
				continue
			}
			seen[key] = true
			pass.Report(fa.pos, escapeMsg(fieldLabel(fa.field), sp, pass))
		}
	}
	return nil
}

// escapeMsg renders the finding with the spawn site for context.
func escapeMsg(what string, sp *spawnSite, pass *Pass) string {
	where := "a goroutine"
	if sp.fn != nil {
		where = fmt.Sprintf("the goroutine spawned by %s", sp.fn.Name())
	}
	return fmt.Sprintf(
		"%s writes %s, captured from the spawning function, with no lock held"+
			" — unsynchronized shared state on a concurrent path (spawn at %s)",
		where, what, shortPos(pass.Fset.Position(sp.pos)))
}

// syncExempt reports whether writes through values of this type are
// synchronization by construction: channels, sync.* primitives, and
// sync/atomic types.
func syncExempt(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return declaredInPath(t, "sync") || declaredInPath(t, "sync/atomic")
}

// fieldDeclaredInMetrics exempts telemetry fields: the metrics package has
// its own single-writer contract (Recorder) and publication discipline
// (Publisher), checked by observereffect and the race tests.
func fieldDeclaredInMetrics(fv *types.Var) bool {
	return fv.Pkg() != nil && isMetricsPkg(fv.Pkg().Path())
}
