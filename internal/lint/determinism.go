package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the replay contract of internal/rng: a simulation
// constructed with the same seeds must produce bit-identical results, so
// simulation packages may not consult ambient nondeterminism.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand, wall-clock time, mutable package-level state, " +
		"and unordered map iteration in simulation packages",
	Run: runDeterminism,
}

// forbiddenImports are ambient-randomness packages: their generators are
// seeded implicitly (or shared across goroutines), which breaks replay.
var forbiddenImports = map[string]string{
	"math/rand":    "use internal/rng with an explicit seed",
	"math/rand/v2": "use internal/rng with an explicit seed",
}

// timeFuncs are wall-clock accessors. Simulated time is a float64 the model
// advances itself; reading host time couples results to the machine.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPathOf(imp)
			if hint, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is nondeterministic across runs; %s", path, hint)
			}
		}
	}
	reportMutablePackageState(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && !isKeyExtraction(n) {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; extract and sort the keys, or annotate an order-independent use with //lint:allow determinism <why>")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isKeyExtraction recognizes the sanctioned sorted-key idiom's first half —
// a loop that does nothing but collect the map's keys into a slice:
//
//	for k := range m { keys = append(keys, k) }
//
// Order cannot escape such a loop (the caller is expected to sort keys), so
// it is whitelisted.
func isKeyExtraction(n *ast.RangeStmt) bool {
	if n.Value != nil {
		if v, ok := n.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	key, ok := n.Key.(*ast.Ident)
	if !ok || key.Name == "_" || len(n.Body.List) != 1 {
		return false
	}
	assign, ok := n.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

func importPathOf(imp *ast.ImportSpec) string {
	if len(imp.Path.Value) < 2 {
		return ""
	}
	return imp.Path.Value[1 : len(imp.Path.Value)-1]
}

func checkTimeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !timeFuncs[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation time must come from the model (telemetry-only reads may carry //lint:allow determinism <justification>)", fn.Name())
}

// reportMutablePackageState flags package-level variables that the package
// itself mutates (assignment, ++/--, or address-taking anywhere outside the
// declaration). Write-once tables and interface-conformance assertions pass;
// counters and caches do not — shared mutable state makes results depend on
// goroutine scheduling.
func reportMutablePackageState(pass *Pass) {
	vars := make(map[*types.Var]*ast.Ident)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						vars[v] = name
					}
				}
			}
		}
	}
	if len(vars) == 0 {
		return
	}
	mutated := make(map[*types.Var]bool)
	record := func(e ast.Expr) {
		if v, ok := pass.Info.Uses[rootIdent(e)].(*types.Var); ok && vars[v] != nil {
			mutated[v] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					record(lhs)
				}
			case *ast.IncDecStmt:
				record(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					record(n.X)
				}
			}
			return true
		})
	}
	for v, name := range vars {
		if mutated[v] {
			pass.Reportf(name.Pos(), "package-level variable %s is mutated; simulation state must live in explicitly constructed values", name.Name)
		}
	}
}

// rootIdent unwraps index/selector/star/paren chains to the base identifier,
// so `m[k] = v` and `s.f++` attribute the mutation to m and s.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
