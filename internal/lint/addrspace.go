package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AddrSpace enforces Rubix's address-domain discipline over the value-flow
// graph: every tracked integer lives in exactly one of four domains —
// logical line, physical (randomized) line, DRAM row coordinate, or K-Cipher
// ciphertext — and may only change domain by passing through a declared
// converter (Mapper.Map/Unmap, kcipher Encrypt/Decrypt, geom's codec) or an
// `// addr:` annotated boundary. The analyzer flags:
//
//   - cross-domain arguments: a phys value fed back into Map (double
//     mapping), a logical line indexing a row-keyed census or tracker table
//     without translation (unmapped indexing), ciphertext escaping without
//     Decrypt;
//   - mixed-domain values: a batch slice or variable reached by two
//     different address domains (one half of it translated, the other not);
//   - writes into `// addr:` pinned fields or variables from a foreign
//     domain.
//
// It also infers domains for unannotated address-named struct fields in the
// domain packages — a field written exclusively with phys values carries
// phys — and suggests the `// addr: <domain>` annotation as an
// autofix, so `rubixlint -fix` converges the tree to a fully-annotated
// state the same way lockdiscipline's `// guarded by` pass does.
var AddrSpace = &Analyzer{
	Name: "addrspace",
	Doc: "address values must stay in their domain (line/phys/row/cipher) " +
		"and cross only through Mapper/geom/cipher conversions; " +
		"inferred-but-unannotated address fields get an `// addr:` " +
		"annotation autofix",
	NeedsProgram: true,
	Run:          runAddrSpace,
}

func runAddrSpace(pass *Pass) error {
	prog := pass.Prog
	facts := prog.domains()

	// Sink checks: call arguments against pinned parameter domains, and
	// assignments into pinned declarations.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCallDomains(pass, facts, n, addrFamily)
			case *ast.AssignStmt:
				checkAssignDomains(pass, facts, n, addrFamily)
			}
			return true
		})
	}

	// Inference: unannotated address-named fields in the domain packages
	// whose incoming flows carry exactly one address domain.
	inferAddrAnnotations(pass, facts)
	return nil
}

// checkCallDomains verifies every argument of a call against the callee's
// pinned parameter domains, and every argument expression against itself
// (mixed-domain detection applies even at unpinned sinks of pinned callees).
func checkCallDomains(pass *Pass, facts *domainFacts, call *ast.CallExpr, family domain) {
	prog := pass.Prog
	ev := &evaluator{prog: prog, pkg: pass.LintPkg}
	fn := ev.staticCallee(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	outs := facts.outParams[fn]
	anyPinned := false
	for i := 0; i < params.Len(); i++ {
		if _, pinned := facts.pins[objNode(params.At(i))]; pinned {
			anyPinned = true
		}
	}
	if !anyPinned {
		return
	}
	if facts.insideConverter(prog, pass.LintPkg, call.Pos()) {
		return // the converter body is the conversion
	}
	for i, arg := range call.Args {
		j := i
		if j >= params.Len() {
			j = params.Len() - 1 // variadic tail
		}
		if j < 0 {
			break
		}
		want, pinned := facts.pins[objNode(params.At(j))]
		if !pinned || want.family(family) == 0 {
			continue
		}
		if outs != nil && outs[j] != 0 {
			continue // out-slice: filled by the callee, not read from the caller
		}
		if family == unitFamily && unitConverted(arg) {
			continue // explicit multiplicative conversion fixes the unit
		}
		got, hits := prog.domainsOf(pass.LintPkg, arg, family)
		if got == 0 {
			continue // untracked value: the discipline only binds known domains
		}
		want = want.family(family)
		if got == want {
			continue
		}
		if !got.single() {
			pass.Report(arg.Pos(), fmt.Sprintf(
				"mixed-domain value (%s) passed to %s parameter %q of %s: %s",
				got, want, params.At(j).Name(), fn.Name(), describeHits(hits)))
			continue
		}
		pass.Report(arg.Pos(), fmt.Sprintf(
			"%s value passed to %s parameter %q of %s without conversion (%s); "+
				"translate it through the declared converter, or annotate //lint:allow addrspace <why>",
			got, want, params.At(j).Name(), fn.Name(), describeHits(hits)))
	}
}

// checkAssignDomains verifies assignments into pinned declarations: the
// right-hand side must carry the declared domain (or be untracked).
func checkAssignDomains(pass *Pass, facts *domainFacts, n *ast.AssignStmt, family domain) {
	prog := pass.Prog
	ev := &evaluator{prog: prog, pkg: pass.LintPkg}
	if facts.insideConverter(prog, pass.LintPkg, n.Pos()) {
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break // tuple assignment: call results carry their own pins
		}
		target := ev.lvalueNode(lhs)
		if target == (node{}) {
			continue
		}
		want, pinned := facts.pins[target]
		if !pinned || want.family(family) == 0 {
			continue
		}
		if family == unitFamily && unitConverted(n.Rhs[i]) {
			continue // explicit multiplicative conversion fixes the unit
		}
		got, hits := prog.domainsOf(pass.LintPkg, n.Rhs[i], family)
		if got == 0 {
			continue
		}
		want = want.family(family)
		if got == want {
			continue
		}
		label := "declaration"
		if target.obj != nil {
			label = fmt.Sprintf("%q", target.obj.Name())
		}
		pass.Report(n.Rhs[i].Pos(), fmt.Sprintf(
			"%s value assigned to %s-pinned %s (%s); convert it first, or annotate //lint:allow addrspace <why>",
			got, want, label, describeHits(hits)))
	}
}

// describeHits renders the representative source of each domain bit, in
// lattice order, for diagnostics.
func describeHits(hits map[domain]Hit) string {
	var parts []string
	for _, d := range domainOrder {
		if h, ok := hits[d]; ok {
			parts = append(parts, fmt.Sprintf("%s from %s at %s", d, h.What, shortPos(h.Pos)))
		}
	}
	return strings.Join(parts, "; ")
}

// inferAddrAnnotations proposes `// addr: <domain>` annotations for
// unannotated, address-named struct fields in the domain packages whose
// incoming flows carry exactly one address domain.
func inferAddrAnnotations(pass *Pass, facts *domainFacts) {
	if !isAddrDomainPkg(pass.LintPkg.Path) {
		return
	}
	prog := pass.Prog
	reported := make(map[*ast.Field]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fv, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || reported[fld] {
						continue
					}
					if facts.annotated[fv] {
						continue
					}
					if _, pinned := facts.pins[objNode(fv)]; pinned {
						continue
					}
					if !isAddrCarrier(fv.Type()) || !isAddrName(fv.Name()) && !isAddrSliceVar(fv) {
						continue
					}
					// Which address domains reach the field node?
					var mask domain
					var best Hit
					for _, d := range domainOrder {
						if d&addrFamily == 0 {
							continue
						}
						if st, ok := prog.domainTaint(d)[objNode(fv)]; ok {
							mask |= d
							best = Hit{Bound: st.bound, Pos: st.pos, What: st.what}
						}
					}
					if !mask.single() {
						continue // nothing inferred, or mixed (flagged at the sinks)
					}
					reported[fld] = true
					pass.Report(name.Pos(), fmt.Sprintf(
						"field %s consistently carries %s addresses (e.g. %s) but the declaration does not record the domain",
						fieldLabel(fv), mask, best.What),
						addrAnnotationFix(fld, mask))
				}
			}
			return true
		})
	}
}

// isAddrSliceVar reports whether the variable is a slice of addresses by
// name (the batch vocabulary).
func isAddrSliceVar(fv *types.Var) bool {
	if _, ok := sliceElemIntWidth(fv.Type()); !ok {
		return false
	}
	return isAddrSliceName(fv.Name())
}

// addrAnnotationFix appends `// addr: <domain>` to the field declaration,
// riding an existing trailing comment when there is one — the same
// converging shape as lockdiscipline's `// guarded by` fix.
func addrAnnotationFix(fld *ast.Field, d domain) SuggestedFix {
	ann := "addr: " + d.String()
	if fld.Comment != nil && len(fld.Comment.List) > 0 {
		last := fld.Comment.List[len(fld.Comment.List)-1]
		return SuggestedFix{
			Message: "record the inferred address domain on the field declaration",
			Edits:   []TextEdit{{Pos: last.End(), End: last.End(), NewText: "; " + ann}},
		}
	}
	return SuggestedFix{
		Message: "record the inferred address domain on the field declaration",
		Edits:   []TextEdit{{Pos: fld.End(), End: fld.End(), NewText: " // " + ann}},
	}
}

// sortedFuncs renders a deterministic function list for messages.
func sortedFuncs(fns map[*types.Func]bool) []string {
	out := make([]string, 0, len(fns))
	for fn := range fns { // key extraction: sorted below
		out = append(out, fn.FullName())
	}
	sort.Strings(out)
	return out
}
