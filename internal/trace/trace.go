// Package trace records and replays memory-access traces. A recorded trace
// captures a workload generator's line-address stream together with its
// burst structure, so a replay drives the simulator identically to the live
// generator — the trace-driven work-flow of conventional architecture
// simulators (the paper's gem5 methodology replays SPEC traces the same
// way).
//
// Format (little-endian):
//
//	magic "RBTR" | version u8 | record*
//	record: flags u8 | line u64
//	flags bit0: the NEXT access continues this access's burst (InBurst)
//
// The format is deliberately simple and stream-friendly; wrap the writer in
// a compressing writer if size matters.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rubix/internal/workload"
)

var magic = [4]byte{'R', 'B', 'T', 'R'}

// Version is the current trace-format version.
const Version = 1

const flagInBurst = 1

// Writer serializes a trace.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	begun bool
}

// NewWriter starts a trace stream on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Append records one access. inBurst reports whether the FOLLOWING access
// belongs to the same burst (workload.Generator.InBurst semantics).
func (t *Writer) Append(line uint64, inBurst bool) error {
	if !t.begun {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		if err := t.w.WriteByte(Version); err != nil {
			return err
		}
		t.begun = true
	}
	flags := byte(0)
	if inBurst {
		flags = flagInBurst
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], line)
	if _, err := t.w.Write(buf[:]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Records reports how many accesses have been appended.
func (t *Writer) Records() uint64 { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if !t.begun {
		// An empty trace still needs its header.
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		if err := t.w.WriteByte(Version); err != nil {
			return err
		}
		t.begun = true
	}
	return t.w.Flush()
}

// Record captures n accesses from gen into w.
func Record(w io.Writer, gen workload.Generator, n int) error {
	tw := NewWriter(w)
	for i := 0; i < n; i++ {
		line := gen.Next()
		if err := tw.Append(line, gen.InBurst()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader replays a trace as a workload.Generator. When the trace is
// exhausted it rewinds transparently if the source supports seeking,
// otherwise it keeps replaying the last access (a finite simulation should
// size its instruction budget to the trace length).
type Reader struct {
	name    string
	src     io.Reader
	r       *bufio.Reader
	seeker  io.Seeker
	line    uint64
	inBurst bool
	next    *record
	n       uint64
	wrapped bool
}

type record struct {
	line    uint64
	inBurst bool
}

// NewReader opens a trace stream. name labels the generator.
func NewReader(name string, src io.Reader) (*Reader, error) {
	t := &Reader{name: name, src: src}
	if s, ok := src.(io.Seeker); ok {
		t.seeker = s
	}
	if err := t.start(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Reader) start() error {
	t.r = bufio.NewReaderSize(t.src, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return errors.New("trace: bad magic")
	}
	if hdr[4] != Version {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return nil
}

func (t *Reader) read() (record, error) {
	var buf [9]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		return record{}, err
	}
	return record{
		line:    binary.LittleEndian.Uint64(buf[1:]),
		inBurst: buf[0]&flagInBurst != 0,
	}, nil
}

// Name implements workload.Generator.
func (t *Reader) Name() string { return t.name }

// Next implements workload.Generator.
func (t *Reader) Next() uint64 {
	if t.next != nil {
		t.line, t.inBurst = t.next.line, t.next.inBurst
		t.next = nil
		t.n++
		return t.line
	}
	rec, err := t.read()
	if err != nil {
		if t.seeker != nil {
			if _, serr := t.seeker.Seek(0, io.SeekStart); serr == nil {
				if serr := t.start(); serr == nil {
					t.wrapped = true
					return t.Next()
				}
			}
		}
		// Exhausted, unseekable: repeat the last access.
		t.inBurst = false
		return t.line
	}
	t.line, t.inBurst = rec.line, rec.inBurst
	t.n++
	return t.line
}

// InBurst implements workload.Generator: the recorded burst flag.
func (t *Reader) InBurst() bool { return t.inBurst }

// Replayed reports the number of records consumed (across rewinds).
func (t *Reader) Replayed() uint64 { return t.n }

// Wrapped reports whether the trace has rewound at least once.
func (t *Reader) Wrapped() bool { return t.wrapped }

var _ workload.Generator = (*Reader)(nil)
