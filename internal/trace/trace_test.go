package trace

import (
	"bytes"
	"io"
	"testing"

	"rubix/internal/workload"
)

// must unwraps constructor results; tests treat construction failure as a
// fatal setup bug.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestRoundTrip(t *testing.T) {
	gen := must(workload.NewStride(100, 64, 8))
	var buf bytes.Buffer
	if err := Record(&buf, gen, 50); err != nil {
		t.Fatal(err)
	}
	ref := must(workload.NewStride(100, 64, 8))
	r, err := NewReader("stride", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		want := ref.Next()
		if got := r.Next(); got != want {
			t.Fatalf("record %d: got %d, want %d", i, got, want)
		}
		if r.InBurst() != ref.InBurst() {
			t.Fatalf("record %d: burst flag mismatch", i)
		}
	}
	if r.Replayed() != 50 {
		t.Fatalf("replayed = %d", r.Replayed())
	}
}

func TestBurstFlagsPreserved(t *testing.T) {
	p, err := workload.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen := must(workload.NewSpec(p, 0, 9))
	var buf bytes.Buffer
	if err := Record(&buf, gen, 2000); err != nil {
		t.Fatal(err)
	}
	ref := must(workload.NewSpec(p, 0, 9))
	r, err := NewReader("gcc", &buf)
	if err != nil {
		t.Fatal(err)
	}
	bursty := 0
	for i := 0; i < 2000; i++ {
		if got, want := r.Next(), ref.Next(); got != want {
			t.Fatalf("record %d: address mismatch", i)
		}
		if r.InBurst() != ref.InBurst() {
			t.Fatalf("record %d: burst mismatch", i)
		}
		if r.InBurst() {
			bursty++
		}
	}
	if bursty == 0 {
		t.Fatal("gcc trace recorded no bursts")
	}
}

// seekBuffer is a bytes.Reader-backed read-seeker.
type seekBuffer struct{ *bytes.Reader }

func TestRewindOnSeeker(t *testing.T) {
	gen := must(workload.NewStream(0, 8))
	var buf bytes.Buffer
	if err := Record(&buf, gen, 8); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader("stream", seekBuffer{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		want := uint64(i % 8)
		if got := r.Next(); got != want {
			t.Fatalf("access %d: got %d, want %d (rewind broken)", i, got, want)
		}
	}
	if !r.Wrapped() {
		t.Fatal("reader should have wrapped")
	}
}

func TestExhaustedUnseekableRepeatsLast(t *testing.T) {
	gen := must(workload.NewStream(40, 4))
	var buf bytes.Buffer
	if err := Record(&buf, gen, 4); err != nil {
		t.Fatal(err)
	}
	// Wrap in a plain reader (no Seek).
	r, err := NewReader("stream", io.NopCloser(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.Next()
	}
	if got := r.Next(); got != 43 {
		t.Fatalf("exhausted trace returned %d, want last access 43", got)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader("x", bytes.NewReader([]byte("NOPE!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader("x", bytes.NewReader([]byte{'R', 'B', 'T', 'R', 99})); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := NewReader("x", bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestEmptyTraceHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Fatalf("empty trace = %d bytes, want 5-byte header", buf.Len())
	}
	if _, err := NewReader("empty", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty trace unreadable: %v", err)
	}
}
