// Shared http.Server construction. Every HTTP listener in this repo — the
// rubixd sweep service and the rubixsim pprof/metrics endpoint — goes
// through NewHTTPServer + Start instead of http.ListenAndServe, for two
// reasons the bare call gets wrong:
//
//  1. A bare ListenAndServe in a goroutine reports a bind failure (port
//     taken, bad address) only after the caller has already printed "serving
//     on ...": Start binds the listener synchronously, so a bad -addr fails
//     the process immediately, and only then serves in the background.
//
//  2. http.Server's zero value has no timeouts, so one client that opens a
//     socket and never finishes its request headers holds a connection
//     forever. NewHTTPServer sets the header/idle timeouts; the write
//     timeout stays unlimited because a batched sweep response legitimately
//     takes as long as the simulations behind it.
package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer returns an http.Server for addr with this repo's standard
// timeouts applied.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout deliberately 0: /run and /batch block until the
		// simulations finish, which at full scale is minutes.
	}
}

// Start binds srv's address synchronously and begins serving in the
// background. A bind failure is returned immediately; serve-loop errors
// (including the http.ErrServerClosed that Shutdown produces) arrive on the
// returned channel, which is buffered so the goroutine never leaks even if
// the caller stops listening.
func Start(srv *http.Server) (<-chan error, error) {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return nil, err
	}
	// Report the bound address back (useful when Addr had port 0).
	srv.Addr = ln.Addr().String()
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve(ln)
	}()
	return errc, nil
}

// Shutdown gracefully stops srv, allowing in-flight requests up to timeout
// to complete before forcing connections closed.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
