package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rubix/internal/sim"
)

// recordingExec is a batchExec double that records every batch it receives
// and answers each spec with a synthetic outcome derived from its workload.
type recordingExec struct {
	mu      sync.Mutex
	batches [][]sim.RunSpec // guarded by mu
	block   chan struct{}   // when non-nil, exec waits on it before returning
}

func (e *recordingExec) exec(specs []sim.RunSpec) map[sim.RunSpec]RunOutcome {
	e.mu.Lock()
	e.batches = append(e.batches, append([]sim.RunSpec(nil), specs...))
	block := e.block
	e.mu.Unlock()
	if block != nil {
		<-block
	}
	out := make(map[sim.RunSpec]RunOutcome, len(specs))
	for _, s := range specs {
		out[s] = RunOutcome{Data: []byte("result:" + s.Workload)}
	}
	return out
}

func (e *recordingExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	sizes := make([]int, len(e.batches))
	for i, b := range e.batches {
		sizes[i] = len(b)
	}
	return sizes
}

func testSpec(i int) sim.RunSpec {
	return sim.RunSpec{Workload: fmt.Sprintf("wl%d", i), Mapping: "coffeelake", Mitigation: "none", TRH: 128}
}

// recv reads one outcome with a test-sized deadline so a batcher bug hangs
// the test visibly instead of forever.
func recv(t *testing.T, ch <-chan RunOutcome) RunOutcome {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(10 * time.Second):
		t.Fatal("no outcome delivered within 10s")
		return RunOutcome{}
	}
}

func TestBatcherValidation(t *testing.T) {
	exec := &recordingExec{}
	if _, err := NewBatcher(0, time.Second, exec.exec); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewBatcher(4, 0, exec.exec); err == nil {
		t.Fatal("zero wait accepted")
	}
}

// TestBatcherSizeTrigger: hitting the size threshold flushes immediately,
// long before the max wait.
func TestBatcherSizeTrigger(t *testing.T) {
	exec := &recordingExec{}
	b, err := NewBatcher(3, time.Hour, exec.exec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var chans []<-chan RunOutcome
	for i := 0; i < 3; i++ {
		ch, err := b.Submit(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// The hour-long max wait cannot have elapsed: delivery proves the size
	// trigger fired.
	for i, ch := range chans {
		out := recv(t, ch)
		if want := "result:wl" + fmt.Sprint(i); string(out.Data) != want {
			t.Fatalf("outcome %d = %q, want %q", i, out.Data, want)
		}
	}
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want [3]", sizes)
	}
}

// TestBatcherWaitTrigger: a partial batch flushes once the oldest request
// has waited long enough.
func TestBatcherWaitTrigger(t *testing.T) {
	exec := &recordingExec{}
	b, err := NewBatcher(100, 20*time.Millisecond, exec.exec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ch1, err := b.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := b.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	recv(t, ch1)
	recv(t, ch2)
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("batch sizes = %v, want [2]", sizes)
	}
}

// TestBatcherDedupe: duplicate specs inside one batch reach the executor
// once, and every requester receives the shared outcome.
func TestBatcherDedupe(t *testing.T) {
	exec := &recordingExec{}
	b, err := NewBatcher(3, time.Hour, exec.exec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	spec := testSpec(7)
	var chans []<-chan RunOutcome
	for i := 0; i < 3; i++ {
		ch, err := b.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		out := recv(t, ch)
		if string(out.Data) != "result:wl7" {
			t.Fatalf("outcome = %q", out.Data)
		}
	}
	e := exec
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.batches) != 1 || len(e.batches[0]) != 1 {
		t.Fatalf("executor saw batches %v, want one batch of one spec", e.batches)
	}
}

// TestBatcherCloseDrains: Close flushes queued requests, waits for in-flight
// batches, and rejects later Submits.
func TestBatcherCloseDrains(t *testing.T) {
	release := make(chan struct{})
	exec := &recordingExec{block: release}
	b, err := NewBatcher(1, time.Hour, exec.exec)
	if err != nil {
		t.Fatal(err)
	}
	// size 1: this dispatches immediately and blocks in the executor.
	inflight, err := b.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still executing")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the batch finished")
	}
	// The in-flight outcome must already be delivered: Close waited for it.
	select {
	case out := <-inflight:
		if string(out.Data) != "result:wl1" {
			t.Fatalf("outcome = %q", out.Data)
		}
	default:
		t.Fatal("Close returned before the outcome was delivered")
	}
	if _, err := b.Submit(testSpec(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	b.Close() // second Close is a no-op
}

// TestBatcherQueuedFlushOnClose: requests still waiting for the size or
// wait trigger are flushed by Close, not dropped.
func TestBatcherQueuedFlushOnClose(t *testing.T) {
	exec := &recordingExec{}
	b, err := NewBatcher(100, time.Hour, exec.exec)
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan RunOutcome
	for i := 0; i < 3; i++ {
		ch, err := b.Submit(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	b.Close()
	for i, ch := range chans {
		select {
		case out := <-ch:
			if want := "result:wl" + fmt.Sprint(i); string(out.Data) != want {
				t.Fatalf("outcome %d = %q, want %q", i, out.Data, want)
			}
		default:
			t.Fatalf("outcome %d not delivered by Close", i)
		}
	}
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want [3]", sizes)
	}
}

// TestBatcherMissingOutcome: an executor that loses a spec yields an error
// outcome instead of a hang.
func TestBatcherMissingOutcome(t *testing.T) {
	b, err := NewBatcher(1, time.Hour, func(specs []sim.RunSpec) map[sim.RunSpec]RunOutcome {
		return nil // drop everything
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ch, err := b.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if out := recv(t, ch); out.Err == nil {
		t.Fatal("missing outcome did not surface as an error")
	}
}
