// Package server is the rubixd sweep service: an HTTP/JSON front end over
// the sim.Suite experiment harness. Requests name RunSpecs; the server
// batches them (see Batcher), runs each unique spec at most once per
// process via the Suite's per-spec sync.Once, consults and feeds the
// persistent content-addressed result store so identical sweeps across
// restarts are served without simulating, and publishes its counters on
// /metrics through the same metrics.Publisher the simulator uses.
//
// Endpoints:
//
//	POST /run     one RunSpec in, one encoded Result out
//	POST /batch   {"specs": [RunSpec...]} in, per-spec results out
//	GET  /metrics text or JSON snapshot (see metrics.Publisher)
//	GET  /healthz liveness probe
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rubix/internal/metrics"
	"rubix/internal/sim"
)

// Counter names published on /metrics. Pre-registered at construction so a
// scrape before the first request still reports them (as zeros) — the CI
// smoke job asserts on rubixd_sims_fresh == 0 after a warm restart, which
// only works if the counter exists without any fresh simulation bumping it.
const (
	cRequests    = "rubixd_requests_total" // specs received across /run and /batch
	cBatches     = "rubixd_batches_total"  // batches dispatched to the executor
	cSimsFresh   = "rubixd_sims_fresh"     // simulations actually executed
	cSimErrors   = "rubixd_sim_errors"     // simulations that failed
	cStoreHits   = "rubixd_store_hits"     // specs served from the persistent store
	cStoreErrors = "rubixd_store_errors"   // store-tier failures the Suite swallowed
	cHTTPErrors  = "rubixd_http_errors"    // requests rejected before reaching the batcher
)

// maxRequestBody bounds request bodies: a batch of a few thousand specs is
// well under this, and it keeps a misbehaving client from buffering
// gigabytes into the decoder.
const maxRequestBody = 4 << 20

// Config configures a Server.
type Config struct {
	// Sim seeds the Suite options. The server chains its own counter hooks
	// after any hooks already present, and installs Store below.
	Sim sim.Options
	// Store is the persistent result tier (usually *store.Store). Nil runs
	// the service memory-only.
	Store sim.ResultStore
	// BatchSize is the flush threshold (default 8).
	BatchSize int
	// BatchWait bounds how long a partial batch waits (default 50ms).
	BatchWait time.Duration
	// Parallelism bounds concurrent simulations per batch (default
	// NumCPU, floor 1).
	Parallelism int
}

// Server is the rubixd HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	suite    *sim.Suite
	batcher  *Batcher
	parallel int
	mux      *http.ServeMux
	pub      *metrics.Publisher

	recMu sync.Mutex
	rec   *metrics.Recorder // guarded by recMu
}

// New builds a Server. The returned server is live: requests may be served
// immediately, and Close must be called to drain it.
func New(cfg Config) (*Server, error) {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWait == 0 {
		cfg.BatchWait = 50 * time.Millisecond
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	s := &Server{
		parallel: cfg.Parallelism,
		pub:      &metrics.Publisher{},
		rec:      metrics.New(metrics.Config{}),
	}
	for _, name := range []string{cRequests, cBatches, cSimsFresh, cSimErrors, cStoreHits, cStoreErrors, cHTTPErrors} {
		s.rec.Counter(name) // pre-register so scrapes see zeros
	}
	s.pub.Publish(s.rec.Snapshot())

	opts := cfg.Sim
	opts.Store = cfg.Store
	// Chain the counter hooks after whatever the caller installed: the
	// server observes every run outcome without stealing the callbacks.
	prevDone, prevErr := opts.OnRunDone, opts.OnRunErr
	prevHit, prevStoreErr := opts.OnStoreHit, opts.OnStoreErr
	opts.OnRunDone = func(spec sim.RunSpec, res *sim.Result, wallNs int64) {
		s.bump(cSimsFresh)
		if prevDone != nil {
			prevDone(spec, res, wallNs)
		}
	}
	opts.OnRunErr = func(spec sim.RunSpec, err error, wallNs int64) {
		s.bump(cSimErrors)
		if prevErr != nil {
			prevErr(spec, err, wallNs)
		}
	}
	opts.OnStoreHit = func(spec sim.RunSpec) {
		s.bump(cStoreHits)
		if prevHit != nil {
			prevHit(spec)
		}
	}
	opts.OnStoreErr = func(spec sim.RunSpec, err error) {
		s.bump(cStoreErrors)
		if prevStoreErr != nil {
			prevStoreErr(spec, err)
		}
	}
	s.suite = sim.NewSuite(opts)

	b, err := NewBatcher(cfg.BatchSize, cfg.BatchWait, s.execute)
	if err != nil {
		return nil, err
	}
	s.batcher = b

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.Handle("/metrics", s.pub)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the batcher: every accepted request completes (and its
// result is persisted) before Close returns. Call after the HTTP listener
// has stopped accepting new requests.
func (s *Server) Close() {
	s.batcher.Close()
}

// bump adds one to the named counter and republishes the snapshot, so
// /metrics always reflects the bump that just happened. The Recorder is
// single-threaded by contract; the mutex serializes the Suite's concurrent
// callbacks over it, and readers only ever see published snapshots.
func (s *Server) bump(name string) {
	s.recMu.Lock()
	s.rec.Counter(name).Inc()
	snap := s.rec.Snapshot()
	s.recMu.Unlock()
	s.pub.Publish(snap)
}

// execute runs one deduplicated batch: each spec through Suite.Run, at most
// s.parallel concurrently. Deliberately NOT Suite.Prefetch-then-Run: the
// Suite evicts failed entries so a later Run retries, which means a
// Prefetch failure followed by a per-spec Run to fetch the error would
// re-simulate every failure. Running directly observes each spec's outcome
// exactly once.
func (s *Server) execute(specs []sim.RunSpec) map[sim.RunSpec]RunOutcome {
	s.bump(cBatches)
	outcomes := make(map[sim.RunSpec]RunOutcome, len(specs))
	var mu sync.Mutex
	sem := make(chan struct{}, s.parallel)
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(spec sim.RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := s.suite.Run(spec)
			out := RunOutcome{Err: err}
			if err == nil {
				out.Data, out.Err = sim.EncodeResult(res)
			}
			mu.Lock()
			outcomes[spec] = out
			mu.Unlock()
		}(spec)
	}
	wg.Wait()
	return outcomes
}

// validateSpec rejects specs that cannot name a simulation before they
// reach the batcher, so typos fail with a 400 instead of a 500 plus a
// wasted workload resolution.
func validateSpec(spec sim.RunSpec) error {
	if spec.Workload == "" || spec.Mapping == "" || spec.Mitigation == "" {
		return fmt.Errorf("spec %+v: workload, mapping, and mitigation are required", spec)
	}
	if spec.TRH <= 0 {
		return fmt.Errorf("spec %s: TRH must be positive", spec)
	}
	return nil
}

// decodeBody strictly decodes one JSON value from the request body.
// Unknown fields and trailing garbage are errors: a misspelled RunSpec
// field silently zeroing out would otherwise simulate the wrong config.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// fail rejects a request and counts it.
func (s *Server) fail(w http.ResponseWriter, msg string, code int) {
	s.bump(cHTTPErrors)
	http.Error(w, msg, code)
}

// requirePost guards the two mutating endpoints.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// handleRun serves POST /run: one RunSpec in the body, the encoded Result
// out. The response bytes are exactly sim.EncodeResult's — the same bytes
// the store persists — so a client may hash them for cache keys.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var spec sim.RunSpec
	if err := decodeBody(r, &spec); err != nil {
		s.fail(w, "decoding spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := validateSpec(spec); err != nil {
		s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.bump(cRequests)
	ch, err := s.batcher.Submit(spec)
	if err != nil {
		s.fail(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	out := <-ch
	if out.Err != nil {
		s.fail(w, "run "+spec.String()+": "+out.Err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, out.Data)
}

// BatchRequest is the POST /batch body.
type BatchRequest struct {
	Specs []sim.RunSpec `json:"specs"`
}

// BatchItem is one spec's outcome in a BatchResponse. Exactly one of
// Result and Error is set.
type BatchItem struct {
	Spec   sim.RunSpec     `json:"spec"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse is the POST /batch reply; Results is index-aligned with
// the request's Specs.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// handleBatch serves POST /batch. All specs are submitted before any
// outcome is awaited, so one HTTP request genuinely forms (at least) one
// batch instead of trickling specs through sequentially. Duplicate specs
// in one request are legal and each position gets the shared outcome. The
// response is 200 even when individual specs failed — per-spec errors are
// in the items — so a partially failed sweep still delivers its results.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		s.fail(w, "decoding batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Specs) == 0 {
		s.fail(w, "batch has no specs", http.StatusBadRequest)
		return
	}
	for _, spec := range req.Specs {
		if err := validateSpec(spec); err != nil {
			s.fail(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	chans := make([]<-chan RunOutcome, len(req.Specs))
	for i, spec := range req.Specs {
		s.bump(cRequests)
		ch, err := s.batcher.Submit(spec)
		if err != nil {
			s.fail(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		chans[i] = ch
	}
	resp := BatchResponse{Results: make([]BatchItem, len(req.Specs))}
	for i, ch := range chans {
		out := <-ch
		item := BatchItem{Spec: req.Specs[i]}
		if out.Err != nil {
			item.Error = out.Err.Error()
		} else {
			item.Result = json.RawMessage(out.Data)
		}
		resp.Results[i] = item
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.fail(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// handleHealthz answers liveness probes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, []byte(`{"status":"ok"}`))
}

// writeJSON writes a complete JSON body with its length declared.
func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		return // client went away mid-write; nothing to do
	}
}
