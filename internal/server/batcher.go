// The request batcher: the piece of rubixd that turns many concurrent
// HTTP requests into few, well-shaped simulation batches. Requests
// accumulate until either the batch is full (size trigger) or the oldest
// request has waited long enough (max-wait trigger); each flush dispatches
// one executor call and fans the per-spec outcomes back out over
// per-request response channels. Duplicate specs inside a batch are
// collapsed before the executor sees them, and duplicates ACROSS in-flight
// batches coalesce one level down, on the Suite's per-spec sync.Once — the
// batcher deliberately re-uses that existing idiom instead of duplicating
// in-flight tracking.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rubix/internal/sim"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("server: batcher closed")

// RunOutcome is one spec's terminal state: the canonical encoded Result on
// success, or the error that run produced.
type RunOutcome struct {
	Data []byte // sim.EncodeResult bytes; nil on error
	Err  error
}

// batchExec executes one deduplicated batch and reports an outcome for
// every spec it was handed. Implementations run specs concurrently (the
// Suite fans out and coalesces); the batcher imposes no ordering.
type batchExec func(specs []sim.RunSpec) map[sim.RunSpec]RunOutcome

// request pairs a spec with its private response channel. The channel is
// buffered (capacity 1) so delivery never blocks the dispatch goroutine on
// a slow or departed reader.
type request struct {
	spec sim.RunSpec
	resp chan RunOutcome
}

// Batcher groups submitted RunSpecs into executor batches by size and
// maximum wait.
type Batcher struct {
	size int
	wait time.Duration
	exec batchExec

	mu     sync.Mutex
	closed bool         // guarded by mu
	reqs   chan request // senders serialize under mu; closed by Close

	loopDone chan struct{}  // closed when the collection loop drains and exits
	flights  sync.WaitGroup // in-flight dispatched batches
}

// NewBatcher builds a running batcher. size is the flush threshold (at
// least 1); wait bounds how long the oldest queued request waits before a
// partial batch flushes anyway.
func NewBatcher(size int, wait time.Duration, exec batchExec) (*Batcher, error) {
	if size < 1 {
		return nil, fmt.Errorf("server: batch size %d, want >= 1", size)
	}
	if wait <= 0 {
		return nil, fmt.Errorf("server: batch wait %v, want > 0", wait)
	}
	b := &Batcher{
		size:     size,
		wait:     wait,
		exec:     exec,
		reqs:     make(chan request),
		loopDone: make(chan struct{}),
	}
	go b.loop()
	return b, nil
}

// Submit enqueues one spec and returns the channel its outcome will arrive
// on. The send into the collection loop happens under the mutex, so a
// Submit that observed closed==false always completes its handoff before
// Close can close the channel — the loop keeps receiving until then.
func (b *Batcher) Submit(spec sim.RunSpec) (<-chan RunOutcome, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	r := request{spec: spec, resp: make(chan RunOutcome, 1)}
	b.reqs <- r
	return r.resp, nil
}

// Close drains the batcher: no new Submits are accepted, every queued
// request is flushed, and Close blocks until all dispatched batches have
// executed and delivered their outcomes. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	if !already {
		close(b.reqs)
	}
	b.mu.Unlock()
	<-b.loopDone
	b.flights.Wait()
}

// loop is the collection goroutine: it owns the pending batch and the
// max-wait timer, and never blocks on execution (dispatch hands the batch
// to its own goroutine).
func (b *Batcher) loop() {
	defer close(b.loopDone)
	var batch []request
	var timer *time.Timer
	var timeout <-chan time.Time
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(batch) > 0 {
			b.dispatch(batch)
			batch = nil
		}
	}
	for {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				flush()
				return
			}
			batch = append(batch, r)
			if len(batch) >= b.size {
				flush()
			} else if timer == nil {
				// The max-wait clock starts at the batch's FIRST request:
				// a trickle of singletons pays at most `wait` latency each,
				// while a burst still flushes early on size.
				timer = time.NewTimer(b.wait)
				timeout = timer.C
			}
		case <-timeout:
			flush()
		}
	}
}

// dispatch executes one batch asynchronously and fans outcomes back to the
// waiting requests. Duplicate specs collapse to a single executor entry;
// every requester of that spec receives the same outcome.
func (b *Batcher) dispatch(batch []request) {
	//lint:allow waitgroup Add IS in the spawning function before the go statement; dispatch runs on the collection goroutine, which Close joins via loopDone before calling flights.Wait
	b.flights.Add(1)
	go func() {
		defer b.flights.Done()
		specs := make([]sim.RunSpec, 0, len(batch))
		seen := make(map[sim.RunSpec]bool, len(batch))
		for _, r := range batch {
			if !seen[r.spec] {
				seen[r.spec] = true
				specs = append(specs, r.spec)
			}
		}
		outcomes := b.exec(specs)
		for _, r := range batch {
			out, ok := outcomes[r.spec]
			if !ok {
				out = RunOutcome{Err: fmt.Errorf("server: executor returned no outcome for %s", r.spec)}
			}
			//lint:allow goroutineleak resp is made with capacity 1 in Submit and receives exactly one send, so delivery never blocks even if the requester departed
			r.resp <- out
		}
	}()
}
