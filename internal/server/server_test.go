package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rubix/internal/metrics"
	"rubix/internal/sim"
	"rubix/internal/store"
)

// testSimOptions is the small-but-real configuration the service tests
// simulate: one SPEC workload at tiny scale, serial shards.
func testSimOptions() sim.Options {
	return sim.Options{Scale: 0.004, Workloads: []string{"xz"}, Mixes: []int{}, Seed: 5, Shards: 1}
}

func testRunSpec() sim.RunSpec {
	return sim.RunSpec{Workload: "xz", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
}

// newTestServer builds a Server plus an httptest listener. st may be nil
// for a memory-only service.
func newTestServer(t *testing.T, st sim.ResultStore, batchSize int, batchWait time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Sim:       testSimOptions(),
		Store:     st,
		BatchSize: batchSize,
		BatchWait: batchWait,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON posts v (pre-encoded bytes or a marshalable value) and returns
// status and body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	var body []byte
	switch x := v.(type) {
	case []byte:
		body = x
	default:
		var err error
		body, err = json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing response body: %v", err)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// counters scrapes /metrics?format=json and returns the counter map — the
// same path the CI smoke job reads with jq.
func counters(t *testing.T, baseURL string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing response body: %v", err)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// TestServerEndToEndDeterminism is the service's acceptance test: the same
// RunSpec served three ways — fresh simulation, the Suite's in-memory
// cache, and a persistent-store hit in a brand-new server process sharing
// the store directory — must produce byte-identical Result payloads, with
// the counters proving which path served each response.
func TestServerEndToEndDeterminism(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Server A: fresh simulation, then a memory-cache hit.
	srvA, tsA := newTestServer(t, st, 1, 10*time.Millisecond)
	code, fresh := postJSON(t, tsA.URL+"/run", testRunSpec())
	if code != http.StatusOK {
		t.Fatalf("fresh run status = %d: %s", code, fresh)
	}
	code, cached := postJSON(t, tsA.URL+"/run", testRunSpec())
	if code != http.StatusOK {
		t.Fatalf("cached run status = %d", code)
	}
	cA := counters(t, tsA.URL)
	if cA[cSimsFresh] != 1 {
		t.Fatalf("server A simulated %d times, want 1 (memory cache must serve the repeat)", cA[cSimsFresh])
	}
	if cA[cStoreHits] != 0 {
		t.Fatalf("server A store hits = %d, want 0", cA[cStoreHits])
	}
	srvA.Close()

	// Server B: a different process in spirit — fresh Suite, same store dir.
	_, tsB := newTestServer(t, st, 1, 10*time.Millisecond)
	code, restored := postJSON(t, tsB.URL+"/run", testRunSpec())
	if code != http.StatusOK {
		t.Fatalf("restored run status = %d: %s", code, restored)
	}
	cB := counters(t, tsB.URL)
	if cB[cSimsFresh] != 0 {
		t.Fatalf("server B simulated %d times, want 0 (store must serve it)", cB[cSimsFresh])
	}
	if cB[cStoreHits] != 1 {
		t.Fatalf("server B store hits = %d, want 1", cB[cStoreHits])
	}

	if !bytes.Equal(fresh, cached) {
		t.Fatalf("memory-cached response differs from fresh:\n fresh: %.120s\ncached: %.120s", fresh, cached)
	}
	if !bytes.Equal(fresh, restored) {
		t.Fatalf("store-restored response differs from fresh:\n   fresh: %.120s\nrestored: %.120s", fresh, restored)
	}
	// And the payload is a decodable Result, not just stable bytes.
	if _, err := sim.DecodeResult(fresh); err != nil {
		t.Fatalf("response is not a valid encoded Result: %v", err)
	}
}

// TestServerCoalescesConcurrentDuplicates: N clients racing the same spec
// cost exactly one simulation.
func TestServerCoalescesConcurrentDuplicates(t *testing.T) {
	const clients = 6
	_, ts := newTestServer(t, nil, 3, 10*time.Millisecond)
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, ts.URL+"/run", testRunSpec())
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
			}
			// Distinct index per goroutine, joined by wg.Wait before reads.
			//lint:allow goroutineescape distinct-index writes, one writer per slot, sequenced by wg.Wait
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	c := counters(t, ts.URL)
	if c[cSimsFresh] != 1 {
		t.Fatalf("sims_fresh = %d, want exactly 1 for %d duplicate requests", c[cSimsFresh], clients)
	}
	if c[cRequests] != clients {
		t.Fatalf("requests_total = %d, want %d", c[cRequests], clients)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw a different payload", i)
		}
	}
}

// TestServerBatchEndpoint: one POST /batch with duplicates and a failing
// spec returns index-aligned per-spec outcomes in a single 200 response.
func TestServerBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil, 4, 10*time.Millisecond)
	good := testRunSpec()
	bad := sim.RunSpec{Workload: "no-such-workload", Mapping: "coffeelake", Mitigation: "none", TRH: 128}
	code, body := postJSON(t, ts.URL+"/batch", BatchRequest{Specs: []sim.RunSpec{good, bad, good}})
	if code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Result) == 0 {
		t.Fatalf("good spec failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || len(resp.Results[1].Result) != 0 {
		t.Fatalf("bad spec did not fail: %+v", resp.Results[1])
	}
	if !bytes.Equal(resp.Results[0].Result, resp.Results[2].Result) {
		t.Fatal("duplicate specs in one batch returned different payloads")
	}
	c := counters(t, ts.URL)
	if c[cSimsFresh] != 1 {
		t.Fatalf("sims_fresh = %d, want 1 (duplicates coalesce)", c[cSimsFresh])
	}
	if c[cSimErrors] != 1 {
		t.Fatalf("sim_errors = %d, want 1", c[cSimErrors])
	}
	if c[cRequests] != 3 {
		t.Fatalf("requests_total = %d, want 3", c[cRequests])
	}
}

// TestServerRejectsBadRequests: malformed input fails fast with a 4xx and
// never reaches the batcher.
func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil, 4, 10*time.Millisecond)
	cases := []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"invalid json", "/run", []byte(`{`), http.StatusBadRequest},
		{"unknown field", "/run", []byte(`{"Workload":"xz","Mapping":"coffeelake","Mitigation":"none","TRH":128,"Bogus":1}`), http.StatusBadRequest},
		{"trailing garbage", "/run", []byte(`{"Workload":"xz","Mapping":"coffeelake","Mitigation":"none","TRH":128} extra`), http.StatusBadRequest},
		{"missing fields", "/run", []byte(`{"Workload":"xz"}`), http.StatusBadRequest},
		{"zero trh", "/run", []byte(`{"Workload":"xz","Mapping":"coffeelake","Mitigation":"none"}`), http.StatusBadRequest},
		{"empty batch", "/batch", []byte(`{"specs":[]}`), http.StatusBadRequest},
		{"bad spec in batch", "/batch", []byte(`{"specs":[{"Workload":"xz"}]}`), http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+c.path, c.body)
			if code != c.want {
				t.Fatalf("status = %d, want %d (body: %s)", code, c.want, body)
			}
		})
	}
	// GET on the mutating endpoints is a 405 with Allow.
	for _, path := range []string{"/run", "/batch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status = %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodPost {
			t.Fatalf("GET %s: Allow = %q", path, got)
		}
	}
	cnt := counters(t, ts.URL)
	if cnt[cHTTPErrors] == 0 {
		t.Fatal("rejected requests were not counted")
	}
	if cnt[cSimsFresh] != 0 || cnt[cRequests] != 0 {
		t.Fatalf("bad requests leaked into the batcher: %v", cnt)
	}
}

// TestServerHealthz: the liveness probe answers GET and HEAD and nothing
// else.
func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil, 4, 10*time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status = %d, want 405", resp.StatusCode)
	}
}

// TestStartBindFailure: Start reports an unusable address synchronously
// instead of after the caller has already announced the endpoint.
func TestStartBindFailure(t *testing.T) {
	srv1 := NewHTTPServer("127.0.0.1:0", http.NotFoundHandler())
	errc, err := Start(srv1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Shutdown(srv1, time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != http.ErrServerClosed {
			t.Errorf("serve loop: %v", err)
		}
	}()
	// srv1 resolved :0 to a concrete port; binding it again must fail now.
	srv2 := NewHTTPServer(srv1.Addr, http.NotFoundHandler())
	if _, err := Start(srv2); err == nil {
		t.Fatalf("second bind of %s did not fail", srv1.Addr)
	}
}

// TestShutdownDrainsInFlight: a request accepted before Shutdown finishes
// with a full response; the serve loop then reports ErrServerClosed.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		if _, err := fmt.Fprint(w, "done"); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	srv := NewHTTPServer("127.0.0.1:0", handler)
	errc, err := Start(srv)
	if err != nil {
		t.Fatal(err)
	}
	type reply struct {
		body []byte
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr + "/")
		if err != nil {
			got <- reply{nil, err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		got <- reply{body, err}
	}()
	<-entered
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- Shutdown(srv, 10*time.Second) }()
	close(release)
	r := <-got
	if r.err != nil || string(r.body) != "done" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != http.ErrServerClosed {
		t.Fatalf("serve loop exit: %v", err)
	}
}
