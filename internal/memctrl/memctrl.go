// Package memctrl implements the memory controller: the component that
// receives line-granular requests, applies the memory mapping (possibly
// Rubix), consults the Rowhammer mitigation (row indirection, activation
// throttling), issues the access to the DRAM model, and feeds activations
// back into trackers and the Rubix-D remapping engine.
package memctrl

import (
	"rubix/internal/check"
	"rubix/internal/core"
	"rubix/internal/dram"
	"rubix/internal/mapping"
	"rubix/internal/metrics"
	"rubix/internal/mitigation"
)

// Dynamic is implemented by mappings that react to activations by remapping
// (Rubix-D). The controller charges the cost of any swap it returns, and
// watches Generation to invalidate batch pre-translations: the counter must
// advance every time the mapping's translation changes.
type Dynamic interface {
	NoteActivation(phys uint64) (core.SwapOp, bool)
	Generation() uint64
}

// Controller is the memory controller. It is single-threaded by design,
// mirroring the serial command stream of real hardware.
type Controller struct {
	DRAM *dram.Module
	Map  mapping.Mapper
	Mit  mitigation.Mitigator

	batch        mapping.BatchedMapper // batch view of Map (native or adapter)
	physBuf      []uint64              // AccessBatch translation scratch
	physArr      [16]uint64            // inline backing for physBuf at burst size (no heap alloc)
	dyn          Dynamic               // non-nil when Map is Rubix-D
	mapLatency   float64               // ns added to every access by the mapping logic
	nextReset    float64
	window       float64
	slotBits     uint
	writeFrac    float64
	writeAccum   float64
	remapSwapCnt uint64

	// Metrics handles (nil and no-op when metrics are disabled).
	rec        *metrics.Recorder
	mAccesses  *metrics.Counter
	mRemapSwap *metrics.Counter

	// chk is the paranoid-mode invariant checker; nil when checking is off
	// (the hooks below are branch-only no-ops then).
	chk *check.Checker
}

// Config configures a Controller.
type Config struct {
	DRAM *dram.Module
	Map  mapping.Mapper
	Mit  mitigation.Mitigator
	// MapLatencyNs is the added pipeline latency of the mapping logic
	// (≈1 ns for the 3-cycle K-Cipher at 3 GHz, ~0 for XOR mappings).
	MapLatencyNs float64
	// WriteFraction marks this share of demand accesses as writes
	// (writebacks), charging write-recovery time before precharges and
	// separate CAS-W accounting. Zero keeps the read-only model.
	WriteFraction float64
	// Metrics, when non-nil, receives controller counters and swap events.
	Metrics *metrics.Recorder
	// Check, when non-nil, receives sampled mapping spot-checks and
	// demand-activation counts for conservation verification.
	Check *check.Checker
}

// New builds a controller. If the mapper implements Dynamic (Rubix-D), its
// remap engine is wired into the activation path automatically.
func New(cfg Config) *Controller {
	c := &Controller{
		DRAM:       cfg.DRAM,
		Map:        cfg.Map,
		batch:      mapping.Batched(cfg.Map),
		Mit:        cfg.Mit,
		mapLatency: cfg.MapLatencyNs,
		window:     cfg.DRAM.Timing.RefreshWindow,
		slotBits:   cfg.DRAM.Geom.SlotBits(),
		writeFrac:  cfg.WriteFraction,
	}
	c.physBuf = c.physArr[:0]
	c.nextReset = c.window
	if d, ok := cfg.Map.(Dynamic); ok {
		c.dyn = d
	}
	c.rec = cfg.Metrics
	c.mAccesses = cfg.Metrics.Counter("memctrl_accesses")
	c.mRemapSwap = cfg.Metrics.Counter("memctrl_remap_swaps")
	c.chk = cfg.Check
	return c
}

// Access performs one line-granular memory access issued at `arrival` ns and
// returns the time at which data is available.
func (c *Controller) Access(line uint64, arrival float64) float64 {
	return c.accessMapped(line, c.Map.Map(line), arrival)
}

// AccessBatch performs a batch of line-granular accesses all issued at
// `arrival` ns — the shape of one core's MLP burst, whose misses a real
// controller receives in its queue together — and returns the latest
// completion. The whole batch is translated up front through the batch
// mapper; under a dynamic mapping, an access that triggers a remap episode
// advances the mapper's generation and the not-yet-issued tail is
// re-translated, so every access observes exactly the mapping state it
// would have seen issued one at a time (the paranoid-mode collision window
// checks this across remap steps).
//
// hot: the PR 7 batched translation path; the phys scratch buffer is
// reused across bursts and every reached MapBatch must stay loop-only.
func (c *Controller) AccessBatch(lines []uint64, arrival float64) float64 {
	if len(lines) == 0 {
		return arrival
	}
	if cap(c.physBuf) < len(lines) {
		//lint:allow hotalloc scratch-buffer growth is monotone and stops at the largest burst ever seen; steady state is allocation-free
		c.physBuf = make([]uint64, len(lines))
	}
	phys := c.physBuf[:len(lines)]
	c.batch.MapBatch(lines, phys)
	var gen uint64
	if c.dyn != nil {
		gen = c.dyn.Generation()
	}
	maxCompletion := arrival
	for i, line := range lines {
		if c.dyn != nil {
			if g := c.dyn.Generation(); g != gen {
				// A remap episode invalidated the pre-translation; redo
				// the tail under the new circuit state.
				c.batch.MapBatch(lines[i:], phys[i:])
				gen = g
			}
		}
		if comp := c.accessMapped(line, phys[i], arrival); comp > maxCompletion {
			maxCompletion = comp
		}
	}
	return maxCompletion
}

// accessMapped is the shared post-translation body of Access and
// AccessBatch. phys must be Map's translation of line under the current
// mapping state; the translation itself is side-effect-free, so computing
// it before the access counter and window bookkeeping is equivalent to the
// historical in-line order.
func (c *Controller) accessMapped(line, phys uint64, arrival float64) float64 {
	// Deterministic write marking: every writeFrac-th access is a
	// writeback. Computed up front (instead of between the release-time
	// grant and the DRAM access, its historical slot) so the sharded
	// producer can mark writes in global issue order; no float state is
	// read between the two positions, so the move is unobservable.
	write := false
	if c.writeFrac > 0 {
		c.writeAccum += c.writeFrac
		if c.writeAccum >= 1 {
			c.writeAccum--
			write = true
		}
	}
	r := c.AccessPretranslated(line, phys, arrival, write)
	if r.Activated && c.dyn != nil {
		if op, ok := c.dyn.NoteActivation(r.FinalPhys); ok {
			c.chargeSwap(op, r.ActStart)
		}
	}
	return r.Completion
}

// RoutedResult reports the outcome of one pre-translated access: what a
// shard needs to hand back across the rendezvous so the producer can drive
// the dynamic-remap engine and the core clock.
type RoutedResult struct {
	Completion float64
	ActStart   float64
	FinalPhys  uint64 // addr: phys — after any row-migration indirection
	Activated  bool
}

// AccessPretranslated performs one access whose mapping translation (phys)
// and write marking were already resolved by the caller — the shard-worker
// entry point: translation, write marking, and Rubix-D remap reactions stay
// on the single-threaded producer, while everything from mitigation grants
// down to DRAM timing runs on the shard owning the line's channel.
//
// hot: one call per access on both the serial and the sharded path.
func (c *Controller) AccessPretranslated(line, phys uint64, arrival float64, write bool) RoutedResult {
	c.mAccesses.Inc()
	for arrival >= c.nextReset {
		c.Mit.ResetWindow()
		c.nextReset += c.window
	}

	if c.chk != nil {
		c.chk.OnMap(line, phys)
	}
	arrival += c.mapLatency

	// Row-migration indirection (AQUA/SRS): redirect to the row's current
	// physical location, preserving the slot within the row.
	row := c.DRAM.Geom.GlobalRow(phys)
	cur := c.Mit.TranslateRow(row)
	if cur != row {
		//lint:allow addrspace row→phys reassembly is GlobalRow's declared inverse: the migrated row id replaces the row bits, the slot within the row is preserved
		phys = cur<<c.slotBits | phys&((1<<c.slotBits)-1)
	}

	// Rate control (BlockHammer): only activations need a grant.
	start := arrival
	if !c.DRAM.WouldHit(phys) {
		start = c.Mit.ReleaseTime(cur, arrival)
	}

	res := c.DRAM.AccessRW(phys, start, write)
	if res.Activated {
		if c.chk != nil {
			c.chk.OnControllerACT()
		}
		c.Mit.OnACT(cur, res.ActStart)
	}
	return RoutedResult{
		Completion: res.Completion,
		ActStart:   res.ActStart,
		FinalPhys:  phys,
		Activated:  res.Activated,
	}
}

// chargeSwap accounts the DRAM cost of a Rubix-D gang swap: 3 activations
// (X, Y, X), 4×gangSize column accesses, and channel occupancy for the
// duration of the three row cycles and the data bursts.
func (c *Controller) chargeSwap(op core.SwapOp, at float64) {
	c.DRAM.ForceActivate(op.RowX, at)
	c.DRAM.ForceActivate(op.RowY, at)
	c.DRAM.ForceActivate(op.RowX, at)
	c.DRAM.AddExtraCAS(op.CAS)
	c.DRAM.BlockChannel(op.RowX, at, SwapBlockNs(c.DRAM.Timing, op))
	c.remapSwapCnt++
	c.mRemapSwap.Inc()
	c.rec.Event(metrics.EvRemapSwap, at, op.RowX)
}

// SwapBlockNs returns the channel-occupancy cost of one Rubix-D gang swap:
// the row cycles of its activations plus the data bursts of its column
// accesses. Exported so the sharded simulator charges swaps with the exact
// arithmetic chargeSwap uses.
func SwapBlockNs(t dram.Timing, op core.SwapOp) float64 {
	return float64(op.Acts)*(t.TRCD+t.TRP) + float64(op.CAS)*t.TBurst
}

// RemapSwaps reports the number of Rubix-D gang swaps charged so far.
func (c *Controller) RemapSwaps() uint64 { return c.remapSwapCnt }
