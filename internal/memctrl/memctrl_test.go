package memctrl

import (
	"testing"

	"rubix/internal/check"
	"rubix/internal/core"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/kcipher"
	"rubix/internal/mapping"
	"rubix/internal/mitigation"
)

func newCtl(t *testing.T, m mapping.Mapper, mit mitigation.Mitigator, d *dram.Module) *Controller {
	t.Helper()
	return New(Config{DRAM: d, Map: m, Mit: mit})
}

func coffeeLake(t *testing.T, g geom.Geometry) *mapping.CoffeeLake {
	t.Helper()
	m, err := mapping.NewCoffeeLake(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baseDRAM(trh int) *dram.Module {
	return dram.New(dram.Config{Geometry: geom.DDR4_16GB(), Timing: dram.DDR4_2400(), TRH: trh})
}

func TestAccessCompletes(t *testing.T) {
	d := baseDRAM(128)
	c := newCtl(t, coffeeLake(t, d.Geom), mitigation.NewNone(), d)
	done := c.Access(0, 0)
	if done <= 0 {
		t.Fatal("no latency modelled")
	}
	if d.Stats().Accesses != 1 {
		t.Fatal("access not recorded")
	}
}

func TestSpatialLocalityHitsUnderCoffeeLake(t *testing.T) {
	d := baseDRAM(128)
	c := newCtl(t, coffeeLake(t, d.Geom), mitigation.NewNone(), d)
	now := 0.0
	for line := uint64(0); line < 64; line++ {
		now = c.Access(line, now)
	}
	if hr := d.Stats().HitRate(); hr < 0.9 {
		t.Fatalf("sequential hit rate %.2f under Coffee Lake, want > 0.9", hr)
	}
}

func TestRubixSKillsLocalityAtGS1(t *testing.T) {
	d := baseDRAM(128)
	m, err := core.NewRubixS(d.Geom, 1, kcipher.KeyFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c := newCtl(t, m, mitigation.NewNone(), d)
	now := 0.0
	for line := uint64(0); line < 256; line++ {
		now = c.Access(line, now)
	}
	if hr := d.Stats().HitRate(); hr > 0.05 {
		t.Fatalf("sequential hit rate %.2f under Rubix-S GS1, want ~0", hr)
	}
}

func TestRubixSGS4KeepsGangHits(t *testing.T) {
	d := baseDRAM(128)
	m, err := core.NewRubixS(d.Geom, 4, kcipher.KeyFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c := newCtl(t, m, mitigation.NewNone(), d)
	now := 0.0
	for line := uint64(0); line < 256; line++ {
		now = c.Access(line, now)
	}
	hr := d.Stats().HitRate()
	// Each gang of 4 gives up to 3 hits: expect ~0.75 modulo collisions.
	if hr < 0.6 || hr > 0.8 {
		t.Fatalf("sequential hit rate %.2f under GS4, want ~0.75", hr)
	}
}

func TestMigrationIndirectionRedirectsAccesses(t *testing.T) {
	d := baseDRAM(128)
	mit := mitigation.NewAQUA(d, mitigation.AQUAConfig{TRH: 128})
	c := newCtl(t, mapping.NewSequential(), mit, d)
	g := d.Geom
	// Hammer line 0's row with bank conflicts until AQUA migrates it.
	rowLines := uint64(g.LinesPerRow())
	conflict := rowLines * uint64(g.BanksTotal()) // same bank, next row
	now := 0.0
	for i := 0; i < 200; i++ {
		now = c.Access(0, now)
		now = c.Access(conflict, now)
	}
	if mit.Mitigations() == 0 {
		t.Fatal("expected a migration")
	}
	// Subsequent accesses to line 0 must land on the quarantine row.
	cur := mit.TranslateRow(g.GlobalRow(0))
	before := d.Stats().Accesses
	_ = before
	res := d.WouldHit(cur << g.SlotBits())
	_ = res // the controller path below is what matters:
	c.Access(0, now)
	// The original physical row must not receive the new activation. Use
	// the window census: row 0's count stopped growing after migration.
	// (Indirect check: translated row differs from original.)
	if cur == g.GlobalRow(0) {
		t.Fatal("row not redirected after migration")
	}
}

func TestBlockHammerDelayAppliedOnlyToActivations(t *testing.T) {
	d := baseDRAM(128)
	bh := mitigation.NewBlockHammer(d, mitigation.BlockHammerConfig{TRH: 128})
	c := newCtl(t, mapping.NewSequential(), bh, d)
	g := d.Geom
	conflict := uint64(g.LinesPerRow() * g.BanksTotal())
	now := 0.0
	// Blacklist row 0 (64 activations via conflicts).
	for i := 0; i < 64; i++ {
		now = c.Access(0, now)
		now = c.Access(conflict, now)
	}
	// The first throttled activation is granted immediately but reserves
	// the next grant one interval away; the SECOND activation of row 0 is
	// pushed out by ~1 ms.
	a1 := c.Access(0, now)
	a2 := c.Access(conflict, a1) // close row 0 again (also granted immediately)
	a3 := c.Access(0, a2)
	if a3-a2 < 1e5 {
		t.Fatalf("second throttled activation only %.0f ns late, want ~1 ms", a3-a2)
	}
	// But a row-buffer hit on the now-open row is NOT throttled.
	hitDone := c.Access(1, a3)
	if hitDone-a3 > 1e3 {
		t.Fatalf("row hit delayed %.0f ns; only activations may be throttled", hitDone-a3)
	}
}

func TestWindowResetPropagates(t *testing.T) {
	tm := dram.DDR4_2400()
	tm.RefreshWindow = 1000 // 1 µs
	d := dram.New(dram.Config{Geometry: geom.DDR4_16GB(), Timing: tm, TRH: 128})
	bh := mitigation.NewBlockHammer(d, mitigation.BlockHammerConfig{TRH: 128})
	c := newCtl(t, mapping.NewSequential(), bh, d)
	g := d.Geom
	conflict := uint64(g.LinesPerRow() * g.BanksTotal())
	now := 0.0
	for i := 0; i < 64; i++ {
		now = c.Access(0, now)
		now = c.Access(conflict, now)
	}
	// Jump past several windows; the blacklist must be clear.
	far := now + 10*tm.RefreshWindow
	done := c.Access(0, far)
	if done-far > 1e3 {
		t.Fatalf("throttle survived the window reset (%.0f ns delay)", done-far)
	}
}

func TestRubixDSwapsCharged(t *testing.T) {
	d := baseDRAM(128)
	rd, err := core.NewRubixD(d.Geom, core.RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := newCtl(t, rd, mitigation.NewNone(), d)
	now := 0.0
	// Random-ish strided traffic: every access activates, every activation
	// rolls the remap dice (rate 1 → always).
	for i := uint64(0); i < 500; i++ {
		now = c.Access(i*uint64(d.Geom.LinesPerRow())*7, now)
	}
	if c.RemapSwaps() == 0 {
		t.Fatal("no swaps charged at remap rate 1")
	}
	s := d.Stats()
	if s.ExtraActs != 3*c.RemapSwaps() {
		t.Fatalf("extra ACTs = %d, want 3 per swap (%d swaps)", s.ExtraActs, c.RemapSwaps())
	}
	if s.ExtraCAS != 16*c.RemapSwaps() {
		t.Fatalf("extra CAS = %d, want 16 per swap", s.ExtraCAS)
	}
}

func TestMapLatencyAdds(t *testing.T) {
	d1 := baseDRAM(128)
	c1 := New(Config{DRAM: d1, Map: mapping.NewSequential(), Mit: mitigation.NewNone()})
	d2 := baseDRAM(128)
	c2 := New(Config{DRAM: d2, Map: mapping.NewSequential(), Mit: mitigation.NewNone(), MapLatencyNs: 5})
	t1 := c1.Access(0, 100)
	t2 := c2.Access(0, 100)
	if t2-t1 < 5 {
		t.Fatalf("map latency not applied: %.2f vs %.2f", t2, t1)
	}
}

func TestWriteFractionMarksWrites(t *testing.T) {
	d := baseDRAM(128)
	c := New(Config{DRAM: d, Map: mapping.NewSequential(), Mit: mitigation.NewNone(), WriteFraction: 0.25})
	now := 0.0
	for i := uint64(0); i < 1000; i++ {
		now = c.Access(i, now)
	}
	s := d.Stats()
	if s.WriteCAS != 250 {
		t.Fatalf("writes = %d, want exactly 250 at fraction 0.25", s.WriteCAS)
	}
}

// TestAccessBatchMatchesAccess is the controller-level differential oracle:
// with identical seeds, draining a miss stream through AccessBatch must
// produce the same completions, DRAM stats, and swap counts as issuing it
// one Access at a time — including under Rubix-D, where mid-batch remap
// episodes invalidate pre-translations (the generation watch re-translates
// the unissued tail).
func TestAccessBatchMatchesAccess(t *testing.T) {
	builders := map[string]func(t *testing.T, g geom.Geometry) mapping.Mapper{
		"coffeelake": func(t *testing.T, g geom.Geometry) mapping.Mapper {
			return coffeeLake(t, g)
		},
		"rubixd-rate1": func(t *testing.T, g geom.Geometry) mapping.Mapper {
			rd, err := core.NewRubixD(g, core.RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			return rd
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			dA := baseDRAM(128)
			dB := baseDRAM(128)
			ctlA := newCtl(t, build(t, dA.Geom), mitigation.NewNone(), dA)
			ctlB := newCtl(t, build(t, dB.Geom), mitigation.NewNone(), dB)
			const burst = 8
			now := 0.0
			lines := make([]uint64, burst)
			rowStride := uint64(dA.Geom.LinesPerRow())
			for i := uint64(0); i < 200; i++ {
				for j := range lines {
					lines[j] = (i*burst + uint64(j)) * rowStride * 7
				}
				scalarDone := now
				for _, line := range lines {
					if comp := ctlA.Access(line, now); comp > scalarDone {
						scalarDone = comp
					}
				}
				batchDone := ctlB.AccessBatch(lines, now)
				if scalarDone != batchDone {
					t.Fatalf("burst %d: scalar completion %.4f, batch %.4f", i, scalarDone, batchDone)
				}
				now = scalarDone + 10
			}
			sA, sB := dA.Stats(), dB.Stats()
			counters := [][2]uint64{
				{sA.Accesses, sB.Accesses},
				{sA.RowHits, sB.RowHits},
				{sA.DemandActs, sB.DemandActs},
				{sA.ExtraActs, sB.ExtraActs},
				{sA.ExtraCAS, sB.ExtraCAS},
			}
			for _, pair := range counters {
				if pair[0] != pair[1] {
					t.Fatalf("DRAM stats diverged:\nscalar %+v\nbatch  %+v", sA, sB)
				}
			}
			if sA.WaitBusNs != sB.WaitBusNs || sA.PrepNs != sB.PrepNs {
				t.Fatalf("latency decomposition diverged:\nscalar %+v\nbatch  %+v", sA, sB)
			}
			if ctlA.RemapSwaps() != ctlB.RemapSwaps() {
				t.Fatalf("swaps diverged: scalar %d, batch %d", ctlA.RemapSwaps(), ctlB.RemapSwaps())
			}
		})
	}
}

// TestAccessBatchParanoidCleanUnderRemap drives batch bursts through a
// Rubix-D controller with the invariant checker attached: the collision
// window (flushed at every remap step) and the batch≡scalar spot checks must
// stay clean even when remap episodes land mid-batch.
func TestAccessBatchParanoidCleanUnderRemap(t *testing.T) {
	d := baseDRAM(128)
	rd, err := core.NewRubixD(d.Geom, core.RubixDConfig{GangSize: 4, RemapRate: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	chk := check.New(check.Config{SampleEvery: 1, WindowLines: 1 << 12})
	chk.AttachFullMapper(d.Geom, rd)
	rd.SetRemapObserver(chk)
	c := New(Config{DRAM: d, Map: rd, Mit: mitigation.NewNone(), Check: chk})
	const burst = 8
	now := 0.0
	lines := make([]uint64, burst)
	rowStride := uint64(d.Geom.LinesPerRow())
	for i := uint64(0); i < 300; i++ {
		for j := range lines {
			lines[j] = (i*burst + uint64(j)) * rowStride * 7
		}
		now = c.AccessBatch(lines, now) + 10
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("paranoid check tripped on batch path: %v", err)
	}
	if chk.Checks() == 0 {
		t.Fatal("checker attached but no checks ran")
	}
	if c.RemapSwaps() == 0 {
		t.Fatal("stream never triggered a remap swap; test exercises nothing")
	}
}

func TestStaticMapperHasNoDynamicHook(t *testing.T) {
	d := baseDRAM(128)
	c := newCtl(t, coffeeLake(t, d.Geom), mitigation.NewNone(), d)
	now := 0.0
	for i := uint64(0); i < 1000; i++ {
		now = c.Access(i*131, now)
	}
	if c.RemapSwaps() != 0 {
		t.Fatal("static mapping must never swap")
	}
}
