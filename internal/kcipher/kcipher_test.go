package kcipher

import (
	"testing"
	"testing/quick"

	"rubix/internal/rng"
)

func TestWidthValidation(t *testing.T) {
	key := KeyFromSeed(1)
	if _, err := New(3, key); err == nil {
		t.Fatal("width 3 should be rejected")
	}
	if _, err := New(41, key); err == nil {
		t.Fatal("width 41 should be rejected")
	}
	for bits := uint(MinBits); bits <= MaxBits; bits++ {
		if _, err := New(bits, key); err != nil {
			t.Fatalf("width %d: %v", bits, err)
		}
	}
}

func TestRoundTripAllWidths(t *testing.T) {
	key := KeyFromSeed(42)
	for bits := uint(MinBits); bits <= MaxBits; bits++ {
		c := MustNew(bits, key)
		f := func(raw uint64) bool {
			x := raw & (c.Domain() - 1)
			return c.Decrypt(c.Encrypt(x)) == x
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("width %d: %v", bits, err)
		}
	}
}

func TestExhaustiveBijectionSmallWidths(t *testing.T) {
	// For small domains, verify the permutation property exhaustively.
	for _, bits := range []uint{4, 8, 12, 16} {
		c := MustNew(bits, KeyFromSeed(7))
		seen := make([]bool, c.Domain())
		for x := uint64(0); x < c.Domain(); x++ {
			y := c.Encrypt(x)
			if y >= c.Domain() {
				t.Fatalf("width %d: ciphertext %#x out of domain", bits, y)
			}
			if seen[y] {
				t.Fatalf("width %d: collision at %#x", bits, y)
			}
			seen[y] = true
		}
	}
}

func TestOddWidthBijection(t *testing.T) {
	c := MustNew(13, KeyFromSeed(9))
	seen := make([]bool, c.Domain())
	for x := uint64(0); x < c.Domain(); x++ {
		y := c.Encrypt(x)
		if seen[y] {
			t.Fatalf("odd width 13: collision at %#x", y)
		}
		seen[y] = true
	}
}

func TestKeysProduceDifferentPermutations(t *testing.T) {
	a := MustNew(20, KeyFromSeed(1))
	b := MustNew(20, KeyFromSeed(2))
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.Encrypt(x) == b.Encrypt(x) {
			same++
		}
	}
	// Two random permutations of 2^20 agree on a given point with
	// probability 2^-20; 1000 trials should see ~0 agreements.
	if same > 2 {
		t.Fatalf("two keys agree on %d/1000 points", same)
	}
}

func TestWidthChangesPermutation(t *testing.T) {
	key := KeyFromSeed(3)
	a := MustNew(20, key)
	b := MustNew(21, key)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.Encrypt(x) == b.Encrypt(x) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("same key at different widths agrees on %d/1000 points", same)
	}
}

func TestDiffusion(t *testing.T) {
	// Consecutive plaintexts should scatter: measure how often consecutive
	// inputs stay within the same 128-value block (they would always, under
	// an identity-like mapping).
	c := MustNew(28, KeyFromSeed(5))
	sameBlock := 0
	const trials = 10000
	for x := uint64(0); x < trials; x++ {
		if c.Encrypt(x)>>7 == c.Encrypt(x+1)>>7 {
			sameBlock++
		}
	}
	// Random chance is 2^-21 per pair.
	if sameBlock > 2 {
		t.Fatalf("%d/%d consecutive plaintexts stayed in the same row-block", sameBlock, trials)
	}
}

func TestRowOccupancyUniform(t *testing.T) {
	// Encrypt a contiguous footprint and check the row occupancy matches
	// the binomial model (no row grossly over-occupied) — the property
	// Rubix's hot-row elimination rests on.
	c := MustNew(20, KeyFromSeed(11))
	const rows = 1 << 13 // 2^20 lines / 128 lines-per-row
	var occ [rows]int
	const footprint = 1 << 14
	for x := uint64(0); x < footprint; x++ {
		occ[c.Encrypt(x)>>7]++
	}
	// Expected occupancy λ = 2 per row; a row with > 20 lines would be a
	// catastrophic clustering failure.
	maxOcc := 0
	for _, o := range occ {
		if o > maxOcc {
			maxOcc = o
		}
	}
	if maxOcc > 20 {
		t.Fatalf("max row occupancy %d, want < 20 for λ=2", maxOcc)
	}
}

func TestKeyFromSeedDeterministic(t *testing.T) {
	if KeyFromSeed(1) != KeyFromSeed(1) {
		t.Fatal("KeyFromSeed must be deterministic")
	}
	if KeyFromSeed(1) == KeyFromSeed(2) {
		t.Fatal("different seeds must give different keys")
	}
}

func TestOutOfDomainPanics(t *testing.T) {
	c := MustNew(8, KeyFromSeed(1))
	for name, f := range map[string]func(){
		"Encrypt": func() { c.Encrypt(256) },
		"Decrypt": func() { c.Decrypt(1 << 30) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of domain should panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkEncrypt28(b *testing.B) {
	c := MustNew(28, KeyFromSeed(1))
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = r.Uint64n(c.Domain())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encrypt(addrs[i&1023])
	}
}
