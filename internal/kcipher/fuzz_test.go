package kcipher

import "testing"

// FuzzKCipherRoundTrip drives the Feistel cipher with fuzzer-chosen widths,
// keys, and plaintexts: Decrypt∘Encrypt must be the identity and both
// directions must stay inside the 2^bits domain. The fuzzer explores the
// width/key space far beyond the fixed seeds the unit tests pin.
//
// Run locally with:
//
//	go test ./internal/kcipher -fuzz FuzzKCipherRoundTrip -fuzztime 30s
func FuzzKCipherRoundTrip(f *testing.F) {
	f.Add(uint(MinBits), uint64(1), uint64(0))
	f.Add(uint(28), uint64(42), uint64(0xDEAD_BEEF))
	f.Add(uint(MaxBits), uint64(7), uint64(1)<<39)
	f.Add(uint(13), uint64(9), uint64(0x1234))
	f.Fuzz(func(t *testing.T, rawBits uint, seed, raw uint64) {
		bits := MinBits + rawBits%(MaxBits-MinBits+1)
		c := MustNew(bits, KeyFromSeed(seed))
		x := raw & (c.Domain() - 1)
		y := c.Encrypt(x)
		if y >= c.Domain() {
			t.Fatalf("width %d seed %d: Encrypt(%#x) = %#x escapes the domain", bits, seed, x, y)
		}
		back := c.Decrypt(y)
		if back != x {
			t.Fatalf("width %d seed %d: Decrypt(Encrypt(%#x)) = %#x", bits, seed, x, back)
		}
		// The inverse direction must round-trip too (Decrypt is itself a
		// permutation).
		z := c.Decrypt(x)
		if z >= c.Domain() || c.Encrypt(z) != x {
			t.Fatalf("width %d seed %d: Encrypt(Decrypt(%#x)) failed", bits, seed, x)
		}
	})
}
