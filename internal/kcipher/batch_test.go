package kcipher

import (
	"testing"

	"rubix/internal/rng"
)

// TestEncryptBatchMatchesScalar: the batch ladder (unrolled round schedule)
// must be ciphertext-identical to the scalar walk at every supported width.
func TestEncryptBatchMatchesScalar(t *testing.T) {
	key := KeyFromSeed(17)
	for bits := uint(MinBits); bits <= MaxBits; bits++ {
		c := MustNew(bits, key)
		r := rng.NewXoshiro256(uint64(bits))
		src := make([]uint64, 257) // odd length: not a multiple of anything
		for i := range src {
			src[i] = r.Uint64n(c.Domain())
		}
		dst := make([]uint64, len(src))
		c.EncryptBatch(dst, src)
		for i, x := range src {
			if want := c.Encrypt(x); dst[i] != want {
				t.Fatalf("width %d: EncryptBatch[%d](%#x) = %#x, scalar = %#x",
					bits, i, x, dst[i], want)
			}
		}
		back := make([]uint64, len(dst))
		c.DecryptBatch(back, dst)
		for i, y := range dst {
			if want := c.Decrypt(y); back[i] != want {
				t.Fatalf("width %d: DecryptBatch[%d](%#x) = %#x, scalar = %#x",
					bits, i, y, back[i], want)
			}
			if back[i] != src[i] {
				t.Fatalf("width %d: batch round trip lost %#x", bits, src[i])
			}
		}
	}
}

// TestBatchInPlace: dst == src is explicitly allowed (the translation is
// element-wise), which RubixS relies on to stage gang addresses in place.
func TestBatchInPlace(t *testing.T) {
	c := MustNew(26, KeyFromSeed(5))
	r := rng.NewXoshiro256(99)
	buf := make([]uint64, 64)
	want := make([]uint64, 64)
	for i := range buf {
		buf[i] = r.Uint64n(c.Domain())
		want[i] = c.Encrypt(buf[i])
	}
	c.EncryptBatch(buf, buf)
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("in-place EncryptBatch[%d] = %#x, want %#x", i, buf[i], want[i])
		}
	}
	c.DecryptBatch(buf, buf)
	for i := range buf {
		if c.Encrypt(buf[i]) != want[i] {
			t.Fatalf("in-place DecryptBatch[%d] did not invert", i)
		}
	}
}

// TestBatchEmpty: zero-length batches are no-ops.
func TestBatchEmpty(t *testing.T) {
	c := MustNew(28, KeyFromSeed(1))
	c.EncryptBatch(nil, nil)
	c.DecryptBatch(nil, nil)
}

// TestBatchOutOfDomainPanics: the batch path keeps the scalar domain check.
func TestBatchOutOfDomainPanics(t *testing.T) {
	c := MustNew(8, KeyFromSeed(1))
	for name, f := range map[string]func(){
		"EncryptBatch": func() { c.EncryptBatch(make([]uint64, 2), []uint64{0, 256}) },
		"DecryptBatch": func() { c.DecryptBatch(make([]uint64, 2), []uint64{0, 1 << 30}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of domain should panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkEncryptBatch28(b *testing.B) {
	c := MustNew(28, KeyFromSeed(1))
	r := rng.NewXoshiro256(1)
	src := make([]uint64, 256)
	dst := make([]uint64, 256)
	for i := range src {
		src[i] = r.Uint64n(c.Domain())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncryptBatch(dst, src)
	}
}
