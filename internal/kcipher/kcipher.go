// Package kcipher implements a low-latency programmable bit-width block
// cipher in the spirit of K-Cipher (Kounavis et al., ISCC 2020), which
// Rubix-S uses for address-space randomization.
//
// The construction is an (un)balanced Feistel network over an n-bit domain
// (4 <= n <= 40) keyed with 96 bits. A Feistel network is a permutation of
// its domain for any round function, so every width yields an exact
// bijection — the property Rubix needs: every program line address maps to
// exactly one physical line address and vice versa.
//
// This is a *simulation stand-in*, not a cryptographic implementation: the
// round function is the splitmix64 finalizer keyed per round, which has
// excellent avalanche behaviour but no formal security analysis. The
// simulator only requires a keyed pseudo-random bijection; hardware would
// ship the real K-Cipher at a 3-cycle latency, which the performance model
// accounts for separately.
package kcipher

import (
	"fmt"

	"rubix/internal/rng"
)

// MinBits and MaxBits bound the supported cipher width. The paper's 16 GB
// configuration uses 28 bits (26 at gang size 4); the multi-channel
// configurations use up to 29.
const (
	MinBits = 4
	MaxBits = 40
)

// Rounds is the number of Feistel rounds. Six rounds of a strong round
// function give full diffusion; we use eight for margin.
const Rounds = 8

// The scalar ladder walks the schedule in left/right pairs and the batch
// ladder is fully unrolled, both assuming exactly eight rounds; this fails
// to compile if Rounds changes without revisiting them.
var _ = [1]struct{}{}[Rounds-8]

// Key is the 96-bit cipher key.
type Key [3]uint32

// KeyFromSeed derives a Key from a 64-bit seed using SplitMix64, mirroring
// the paper's boot-time PRNG key generation.
func KeyFromSeed(seed uint64) Key {
	sm := rng.NewSplitMix64(seed)
	a, b := sm.Next(), sm.Next()
	return Key{uint32(a & 0xFFFF_FFFF), uint32(a >> 32), uint32(b & 0xFFFF_FFFF)}
}

// Cipher is a keyed bijection over [0, 2^n). It is immutable after
// construction and safe for concurrent use.
type Cipher struct {
	bits      uint
	leftBits  uint
	rightBits uint
	leftMask  uint64
	rightMask uint64
	roundKeys [Rounds]uint64
}

// New constructs a Cipher of width bits keyed by key.
func New(bits uint, key Key) (*Cipher, error) {
	if bits < MinBits || bits > MaxBits {
		return nil, fmt.Errorf("kcipher: width %d out of range [%d, %d]", bits, MinBits, MaxBits)
	}
	c := &Cipher{bits: bits}
	c.rightBits = bits / 2
	c.leftBits = bits - c.rightBits // left gets the extra bit for odd widths
	c.leftMask = (uint64(1) << c.leftBits) - 1
	c.rightMask = (uint64(1) << c.rightBits) - 1
	// Round-key schedule: expand the 96-bit key with SplitMix64 seeded by a
	// mix of the key words and the width (so the same key at different
	// widths yields unrelated permutations, as with a real parameterizable
	// cipher).
	seed := uint64(key[0]) | uint64(key[1])<<32
	seed = rng.Mix64(seed ^ uint64(key[2])<<13 ^ uint64(bits)*0x9e3779b97f4a7c15)
	sm := rng.NewSplitMix64(seed)
	for i := range c.roundKeys {
		c.roundKeys[i] = sm.Next()
	}
	return c, nil
}

// MustNew is New but panics on error; for static configurations.
func MustNew(bits uint, key Key) *Cipher {
	c, err := New(bits, key)
	if err != nil {
		//lint:allow panicpolicy Must-constructor for static configurations; fallible path is New
		panic(err)
	}
	return c
}

// Bits reports the cipher width.
func (c *Cipher) Bits() uint { return c.bits }

// Domain reports the size of the cipher domain, 2^bits.
func (c *Cipher) Domain() uint64 { return uint64(1) << c.bits }

func (c *Cipher) round(x uint64, k uint64) uint64 {
	return rng.Mix64(x ^ k)
}

// Encrypt maps plaintext x (< 2^bits) to its ciphertext. It panics if x is
// out of domain, since an out-of-range address indicates a simulator bug.
func (c *Cipher) Encrypt(x uint64) uint64 {
	if x >= c.Domain() {
		//lint:allow panicpolicy invariant guard on the per-access hot path; an out-of-domain address is a simulator bug, not an input error
		panic(fmt.Sprintf("kcipher: plaintext %#x out of %d-bit domain", x, c.bits))
	}
	l := x >> c.rightBits & c.leftMask
	r := x & c.rightMask
	// Unbalanced Feistel: alternate which half is modified so both halves
	// are diffused even when their widths differ. Walking the schedule in
	// left/right pairs removes the parity branch from the ladder.
	for i := 0; i < Rounds; i += 2 {
		l ^= c.round(r, c.roundKeys[i]) & c.leftMask
		r ^= c.round(l, c.roundKeys[i+1]) & c.rightMask
	}
	return l<<c.rightBits | r
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(y uint64) uint64 {
	if y >= c.Domain() {
		//lint:allow panicpolicy invariant guard on the per-access hot path; an out-of-domain address is a simulator bug, not an input error
		panic(fmt.Sprintf("kcipher: ciphertext %#x out of %d-bit domain", y, c.bits))
	}
	l := y >> c.rightBits & c.leftMask
	r := y & c.rightMask
	for i := Rounds - 2; i >= 0; i -= 2 {
		r ^= c.round(l, c.roundKeys[i+1]) & c.rightMask
		l ^= c.round(r, c.roundKeys[i]) & c.leftMask
	}
	return l<<c.rightBits | r
}

// EncryptBatch encrypts src[i] into dst[i] for every i, walking the ladder
// with the precomputed round schedule held in locals so the per-call setup
// (schedule and mask loads) is amortized across the batch. len(dst) must be
// at least len(src); dst and src may be the same slice (the transform is
// element-wise). Out-of-domain elements panic exactly as Encrypt does.
func (c *Cipher) EncryptBatch(dst, src []uint64) {
	dst = dst[:len(src)]
	rk := c.roundKeys
	lm, rm, rb := c.leftMask, c.rightMask, c.rightBits
	dom := c.Domain()
	for i, x := range src {
		if x >= dom {
			//lint:allow panicpolicy invariant guard on the per-access hot path; an out-of-domain address is a simulator bug, not an input error
			panic(fmt.Sprintf("kcipher: plaintext %#x out of %d-bit domain", x, c.bits))
		}
		l := x >> rb & lm
		r := x & rm
		l ^= rng.Mix64(r^rk[0]) & lm
		r ^= rng.Mix64(l^rk[1]) & rm
		l ^= rng.Mix64(r^rk[2]) & lm
		r ^= rng.Mix64(l^rk[3]) & rm
		l ^= rng.Mix64(r^rk[4]) & lm
		r ^= rng.Mix64(l^rk[5]) & rm
		l ^= rng.Mix64(r^rk[6]) & lm
		r ^= rng.Mix64(l^rk[7]) & rm
		dst[i] = l<<rb | r
	}
}

// DecryptBatch inverts EncryptBatch under the same contract.
func (c *Cipher) DecryptBatch(dst, src []uint64) {
	dst = dst[:len(src)]
	rk := c.roundKeys
	lm, rm, rb := c.leftMask, c.rightMask, c.rightBits
	dom := c.Domain()
	for i, y := range src {
		if y >= dom {
			//lint:allow panicpolicy invariant guard on the per-access hot path; an out-of-domain address is a simulator bug, not an input error
			panic(fmt.Sprintf("kcipher: ciphertext %#x out of %d-bit domain", y, c.bits))
		}
		l := y >> rb & lm
		r := y & rm
		r ^= rng.Mix64(l^rk[7]) & rm
		l ^= rng.Mix64(r^rk[6]) & lm
		r ^= rng.Mix64(l^rk[5]) & rm
		l ^= rng.Mix64(r^rk[4]) & lm
		r ^= rng.Mix64(l^rk[3]) & rm
		l ^= rng.Mix64(r^rk[2]) & lm
		r ^= rng.Mix64(l^rk[1]) & rm
		l ^= rng.Mix64(r^rk[0]) & lm
		dst[i] = l<<rb | r
	}
}
