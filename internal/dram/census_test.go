package dram

import (
	"reflect"
	"testing"

	"rubix/internal/geom"
	"rubix/internal/rng"
)

// mapCensus is the retired map-based census implementation, kept verbatim
// (modulo mechanical renames) as the differential-test oracle for the
// open-addressed flatCensus that replaced it on the hot path. No build
// tags: the reference lives only here, compiled into every test run.
type mapCensus struct {
	trh        int
	lineCensus bool
	rows       map[uint64]*refRowCensus
	windowEnd  float64
	window     float64
	start      float64
	windows    []WindowStats
}

type refRowCensus struct {
	acts  uint32
	lines [2]uint64
}

func newMapCensus(window float64, trh int, lineCensus bool) *mapCensus {
	return &mapCensus{
		trh:        trh,
		lineCensus: lineCensus,
		rows:       make(map[uint64]*refRowCensus),
		windowEnd:  window,
		window:     window,
	}
}

func (c *mapCensus) record(row uint64, slot int, at float64) {
	for at >= c.windowEnd {
		c.roll()
	}
	rc := c.rows[row]
	if rc == nil {
		rc = &refRowCensus{}
		c.rows[row] = rc
	}
	rc.acts++
	if c.lineCensus && slot >= 0 {
		rc.lines[slot>>6] |= 1 << (uint(slot) & 63)
	}
}

func (c *mapCensus) roll() {
	c.finalize()
	c.start = c.windowEnd
	c.windowEnd += c.window
}

func (c *mapCensus) finalize() {
	w := WindowStats{Start: c.start, UniqueRows: len(c.rows)}
	//lint:allow determinism test oracle: max and counter aggregation over the census is commutative
	for _, rc := range c.rows {
		if rc.acts > w.MaxActs {
			w.MaxActs = rc.acts
		}
		if rc.acts >= 64 {
			w.Hot64++
			if c.lineCensus {
				n := onesCount128(rc.lines)
				w.LineSum += n
				switch {
				case n <= 32:
					w.LineBuckets[0]++
				case n <= 64:
					w.LineBuckets[1]++
				default:
					w.LineBuckets[2]++
				}
			}
		}
		if rc.acts >= 512 {
			w.Hot512++
		}
		if c.trh > 0 && rc.acts > uint32(c.trh) {
			w.OverTRH++
		}
	}
	if w.UniqueRows > 0 || len(c.windows) == 0 {
		c.windows = append(c.windows, w)
	}
	clear(c.rows)
}

func onesCount128(v [2]uint64) int {
	n := 0
	for _, w := range v {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// censusEvent is one recorded activation fed identically to both
// implementations.
type censusEvent struct {
	row  uint64
	slot int
	at   float64
}

// runDifferential feeds the same event stream through a real Module's
// census (flat table) and the map oracle, and asserts byte-identical
// WindowStats sequences.
func runDifferential(t *testing.T, g geom.Geometry, trh int, lineCensus bool, events []censusEvent) {
	t.Helper()
	tm := DDR4_2400()
	tm.RefreshWindow = 10_000 // short windows: many rolls per stream
	m := New(Config{Geometry: g, Timing: tm, TRH: trh, LineCensus: lineCensus})
	ref := newMapCensus(tm.RefreshWindow, trh, lineCensus)
	for _, e := range events {
		m.recordACT(e.row, e.slot, e.at, false)
		ref.record(e.row, e.slot, e.at)
	}
	got := m.Finalize().Windows
	ref.finalize()
	want := ref.windows
	if !reflect.DeepEqual(got, want) {
		if len(got) != len(want) {
			t.Fatalf("window count: flat %d vs map %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %d differs:\nflat: %+v\nmap:  %+v", i, got[i], want[i])
			}
		}
		t.Fatalf("windows differ:\nflat: %+v\nmap:  %+v", got, want)
	}
}

// TestCensusDifferentialExhaustiveSmall drives every row of a tiny
// geometry through multiple windows with deterministic per-row activation
// counts straddling all the bucket thresholds (1, 64, 512, TRH).
func TestCensusDifferentialExhaustiveSmall(t *testing.T) {
	g, err := geom.New(1, 1, 2, 16, 1024, 64) // 32 rows, 16 lines each
	if err != nil {
		t.Fatal(err)
	}
	var events []censusEvent
	at := 0.0
	for win := 0; win < 5; win++ {
		for row := uint64(0); row < g.TotalRows(); row++ {
			// Row r gets (r*37+win*100)%600 activations this window: some
			// rows cold, some past 64, some past 512/TRH.
			n := int(row*37+uint64(win)*100) % 600
			for k := 0; k < n; k++ {
				events = append(events, censusEvent{row: row, slot: int(uint64(k) % 16), at: at})
				at += 0.5
			}
		}
		at = float64(win+1) * 10_000 // jump to the next window boundary
	}
	runDifferential(t, g, 550, true, events)
}

// TestCensusDifferentialSampledFullSpace samples the full 2^40-line
// address space of a 64 TB geometry: a skewed mixture of a hot set (rows
// reactivated past the hot thresholds) and a uniform tail across all
// 2^33 rows, with the line census and watchdog on.
func TestCensusDifferentialSampledFullSpace(t *testing.T) {
	g, err := geom.New(4, 2, 16, 1<<26, 8192, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.LineBits() != 40 {
		t.Fatalf("geometry has %d line bits, want the full 40-bit space", g.LineBits())
	}
	r := rng.NewXoshiro256(99)
	totalRows := g.TotalRows()
	hot := make([]uint64, 64)
	for i := range hot {
		hot[i] = r.Uint64n(totalRows)
	}
	var events []censusEvent
	at := 0.0
	for i := 0; i < 120_000; i++ {
		var row uint64
		if r.Uint64n(4) != 0 { // 75% of traffic hammers the hot set
			row = hot[r.Uint64n(uint64(len(hot)))]
		} else {
			row = r.Uint64n(totalRows)
		}
		events = append(events, censusEvent{row: row, slot: int(r.Uint64n(128)), at: at})
		at += 0.4
	}
	runDifferential(t, g, 700, true, events)
}

// TestCensusDifferentialNoLineCensus covers the census with the line
// bitmap and watchdog both disabled (the default evaluation config).
func TestCensusDifferentialNoLineCensus(t *testing.T) {
	g := geom.DDR4_16GB()
	r := rng.NewXoshiro256(7)
	var events []censusEvent
	at := 0.0
	for i := 0; i < 60_000; i++ {
		events = append(events, censusEvent{row: r.Uint64n(1 << 14), slot: -1, at: at})
		at += 1.1
	}
	runDifferential(t, g, 0, false, events)
}

// TestFlatCensusGrowthPreservesEntries pushes one window far past the
// initial table size so the table rehashes several times mid-window.
func TestFlatCensusGrowthPreservesEntries(t *testing.T) {
	c := newFlatCensus(false)
	const n = 10 * censusInitSlots
	for row := uint64(0); row < n; row++ {
		for k := uint64(0); k <= row%3; k++ {
			c.slots[c.get(row)].acts++
		}
	}
	if c.len() != n {
		t.Fatalf("occupied = %d, want %d", c.len(), n)
	}
	seen := make(map[uint64]bool, n)
	for idx := range c.slots {
		s := &c.slots[idx]
		if s.epoch != c.epoch {
			continue
		}
		if seen[s.row] {
			t.Fatalf("row %d appears twice in the table", s.row)
		}
		seen[s.row] = true
		if want := uint32(s.row%3) + 1; s.acts != want {
			t.Fatalf("row %d acts = %d, want %d", s.row, s.acts, want)
		}
	}
	if len(seen) != n {
		t.Fatalf("table walk found %d rows, want %d", len(seen), n)
	}
}

// TestFlatCensusWalkDeterministic: the linear slot walk that finalizes a
// window must be a pure function of the insertion history — two tables
// fed the same sequence yield the identical walk, which is what lets
// finalizeWindow iterate without a map-ordering waiver.
func TestFlatCensusWalkDeterministic(t *testing.T) {
	walk := func() []uint64 {
		c := newFlatCensus(false)
		r := rng.NewXoshiro256(5)
		for i := 0; i < 4*censusInitSlots; i++ {
			c.slots[c.get(r.Uint64n(1 << 30))].acts++
		}
		var rows []uint64
		for idx := range c.slots {
			if c.slots[idx].epoch == c.epoch {
				rows = append(rows, c.slots[idx].row)
			}
		}
		return rows
	}
	a, b := walk(), walk()
	if len(a) != len(b) {
		t.Fatalf("walk lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFlatCensusEpochReset: a reset must orphan every entry without
// touching slot memory, and the stale values must be invisible to the
// next window.
func TestFlatCensusEpochReset(t *testing.T) {
	c := newFlatCensus(true)
	i := c.get(42)
	c.slots[i].acts = 900
	c.lines[i] = [2]uint64{^uint64(0), 3}
	c.slots[c.get(43)].acts = 7
	c.reset()
	if c.len() != 0 {
		t.Fatalf("occupied after reset = %d", c.len())
	}
	i = c.get(42)
	if c.slots[i].acts != 0 || c.lines[i] != ([2]uint64{}) {
		t.Fatalf("stale census values leaked across the epoch reset: %+v lines %v", c.slots[i], c.lines[i])
	}
	if c.len() != 1 {
		t.Fatalf("occupied = %d, want 1", c.len())
	}
}

// TestFlatCensusEpochWrap forces the 32-bit epoch to wrap and verifies the
// table is scrubbed rather than resurrecting ancient entries.
func TestFlatCensusEpochWrap(t *testing.T) {
	c := newFlatCensus(false)
	c.slots[c.get(11)].acts = 500
	c.epoch = ^uint32(0) - 1
	c.slots[0].epoch = 1 // ancient stamp that would alias the post-wrap epoch
	c.slots[0].row = 77
	c.slots[0].acts = 123
	c.reset() // -> MaxUint32
	c.reset() // wraps -> scrub, epoch back to 1
	if c.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", c.epoch)
	}
	if c.len() != 0 {
		t.Fatalf("occupied after wrap = %d", c.len())
	}
	if acts := c.slots[c.get(77)].acts; acts != 0 {
		t.Fatalf("pre-wrap entry resurrected with acts = %d", acts)
	}
}
