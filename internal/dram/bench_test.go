package dram

import (
	"testing"

	"rubix/internal/geom"
	"rubix/internal/rng"
)

func BenchmarkAccessRowHits(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(uint64(i&63), now)
		now = res.Completion
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	r := rng.NewXoshiro256(1)
	total := m.Geom.TotalLines()
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(total)
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(addrs[i&4095], now)
		now = res.Completion
	}
}

func BenchmarkAccessWithWatchdog(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400(), TRH: 128, LineCensus: true})
	r := rng.NewXoshiro256(2)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20) // concentrated footprint
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(addrs[i&4095], now)
		now = res.Completion
	}
}

// Census micro-benchmarks: the recordACT path in isolation, uniform vs
// skewed row distributions, and the cost of a window roll at a realistic
// per-window row population. These are the structures the flat census
// rebuilt; the committed baseline (BENCH_sim.json) gates their allocs/op
// at zero via cmd/benchdiff.

func benchmarkCensus(b *testing.B, rows []uint64) {
	b.Helper()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.recordACT(rows[i&(len(rows)-1)], i&127, 0, false)
	}
}

func BenchmarkCensusUniform(b *testing.B) {
	r := rng.NewXoshiro256(3)
	rows := make([]uint64, 1<<16)
	total := geom.DDR4_16GB().TotalRows()
	for i := range rows {
		rows[i] = r.Uint64n(total)
	}
	benchmarkCensus(b, rows)
}

func BenchmarkCensusSkewed(b *testing.B) {
	// 90% of activations hit a 64-row hot set; the tail is uniform — the
	// shape a Rowhammer-adjacent workload produces.
	r := rng.NewXoshiro256(4)
	total := geom.DDR4_16GB().TotalRows()
	hot := make([]uint64, 64)
	for i := range hot {
		hot[i] = r.Uint64n(total)
	}
	rows := make([]uint64, 1<<16)
	for i := range rows {
		if r.Uint64n(10) != 0 {
			rows[i] = hot[r.Uint64n(64)]
		} else {
			rows[i] = r.Uint64n(total)
		}
	}
	benchmarkCensus(b, rows)
}

func BenchmarkCensusWindowRoll(b *testing.B) {
	// Populate ~64K rows per window (an mcf-like population), then roll.
	r := rng.NewXoshiro256(5)
	total := geom.DDR4_16GB().TotalRows()
	rows := make([]uint64, 1<<16)
	for i := range rows {
		rows[i] = r.Uint64n(total)
	}
	tm := DDR4_2400()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	// Warm the table to its steady-state size so the timed loop measures
	// the roll itself, not the one-time geometric growth.
	for _, row := range rows {
		m.recordACT(row, -1, 0, false)
	}
	m.recordACT(rows[0], -1, m.windowEnd, false)
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			m.recordACT(row, -1, 0, false)
		}
		// Roll by recording one activation past the window boundary.
		m.recordACT(rows[0], -1, m.windowEnd, false)
	}
}
