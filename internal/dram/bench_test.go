package dram

import (
	"testing"

	"rubix/internal/geom"
	"rubix/internal/rng"
)

func BenchmarkAccessRowHits(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(uint64(i&63), now)
		now = res.Completion
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	r := rng.NewXoshiro256(1)
	total := m.Geom.TotalLines()
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(total)
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(addrs[i&4095], now)
		now = res.Completion
	}
}

func BenchmarkAccessWithWatchdog(b *testing.B) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400(), TRH: 128, LineCensus: true})
	r := rng.NewXoshiro256(2)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20) // concentrated footprint
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Access(addrs[i&4095], now)
		now = res.Completion
	}
}
