package dram

import (
	"testing"

	"rubix/internal/geom"
)

func newModule(t *testing.T) *Module {
	t.Helper()
	return New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400(), TRH: 128})
}

// lineAt builds a physical line index for (globalRow, slot).
func lineAt(g geom.Geometry, row uint64, slot int) uint64 {
	return row<<g.SlotBits() | uint64(slot)
}

func TestFirstAccessActivates(t *testing.T) {
	m := newModule(t)
	res := m.Access(lineAt(m.Geom, 5, 0), 0)
	if !res.Activated || res.RowHit {
		t.Fatal("first access to a closed bank must activate")
	}
	if res.Completion < m.Timing.TRCD+m.Timing.TCL {
		t.Fatalf("completion %.1f too early", res.Completion)
	}
}

func TestRowBufferHit(t *testing.T) {
	m := newModule(t)
	first := m.Access(lineAt(m.Geom, 5, 0), 0)
	hit := m.Access(lineAt(m.Geom, 5, 1), first.Completion)
	if !hit.RowHit || hit.Activated {
		t.Fatal("same-row access must hit the row buffer")
	}
	if hit.Completion-first.Completion > 4*m.Timing.TCL {
		t.Fatalf("hit latency %.1f implausibly high", hit.Completion-first.Completion)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	// Two rows in the same bank: global rows r and r + BanksTotal.
	r1 := uint64(3)
	r2 := r1 + uint64(g.BanksTotal())
	if g.BankID(r1) != g.BankID(r2) {
		t.Fatal("test rows should share a bank")
	}
	a := m.Access(lineAt(g, r1, 0), 0)
	b := m.Access(lineAt(g, r2, 0), a.Completion+1000)
	if !b.Activated {
		t.Fatal("conflicting row must activate")
	}
	// Conflict pays precharge + activate.
	if lat := b.Completion - (a.Completion + 1000); lat < m.Timing.TRP+m.Timing.TRCD+m.Timing.TCL-1 {
		t.Fatalf("conflict latency %.1f below tRP+tRCD+tCL", lat)
	}
}

func TestTRCEnforced(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	r1, r2 := uint64(3), uint64(3+g.BanksTotal())
	a := m.Access(lineAt(g, r1, 0), 0)
	b := m.Access(lineAt(g, r2, 0), 0.001)
	if b.ActStart-a.ActStart < m.Timing.TRC {
		t.Fatalf("back-to-back ACTs %.1f apart, tRC is %.1f", b.ActStart-a.ActStart, m.Timing.TRC)
	}
}

func TestBankParallelism(t *testing.T) {
	// Activations in different banks overlap: the second bank's ACT does
	// not wait for the first's tRC.
	m := newModule(t)
	g := m.Geom
	a := m.Access(lineAt(g, 0, 0), 0) // bank 0
	b := m.Access(lineAt(g, 1, 0), 0) // bank 1
	if b.ActStart-a.ActStart >= m.Timing.TRC {
		t.Fatal("different banks should activate in parallel")
	}
}

func TestBusSerializesBursts(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	// Open rows in two banks, then hit both simultaneously: the data
	// bursts must be tBurst apart.
	m.Access(lineAt(g, 0, 0), 0)
	m.Access(lineAt(g, 1, 0), 0)
	h1 := m.Access(lineAt(g, 0, 1), 1000)
	h2 := m.Access(lineAt(g, 1, 1), 1000)
	if h2.Completion-h1.Completion < m.Timing.TBurst-0.01 {
		t.Fatalf("bus bursts %.2f apart, want >= tBurst %.2f", h2.Completion-h1.Completion, m.Timing.TBurst)
	}
}

func TestOpenAdaptiveCloses(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	now := 0.0
	acts := 0
	// 33 accesses to one row: open-adaptive (max 16) forces closes, so we
	// see ceil(33/16) = 3 activations.
	for i := 0; i < 33; i++ {
		res := m.Access(lineAt(g, 9, i%64), now)
		now = res.Completion + 1
		if res.Activated {
			acts++
		}
	}
	if acts != 3 {
		t.Fatalf("activations = %d, want 3 under the 16-access open-max policy", acts)
	}
}

func TestHotRowCensus(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	now := 0.0
	// Alternate two same-bank rows so every access activates; row A gets
	// 100 ACTs (hot at >= 64), row B gets 100 too. Use a third bank's row
	// with 10 ACTs as a cold row.
	rA, rB := uint64(3), uint64(3+g.BanksTotal())
	for i := 0; i < 100; i++ {
		now = m.Access(lineAt(g, rA, 0), now).Completion
		now = m.Access(lineAt(g, rB, 0), now).Completion
	}
	cold := uint64(4)
	for i := 0; i < 10; i++ {
		r2 := uint64(5) // shares bank? rows 4 and 5 are different banks; force conflict via same bank
		_ = r2
		now = m.Access(lineAt(g, cold, 0), now).Completion
		now = m.Access(lineAt(g, cold+uint64(g.BanksTotal()), 0), now).Completion
	}
	s := m.Finalize()
	w := s.Windows[0]
	if w.Hot64 != 2 {
		t.Fatalf("hot64 = %d, want 2", w.Hot64)
	}
	if w.Hot512 != 0 {
		t.Fatalf("hot512 = %d, want 0", w.Hot512)
	}
	if w.UniqueRows != 4 {
		t.Fatalf("unique rows = %d, want 4", w.UniqueRows)
	}
	if w.MaxActs != 100 {
		t.Fatalf("max acts = %d, want 100", w.MaxActs)
	}
}

func TestWatchdogFlagsOverTRH(t *testing.T) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400(), TRH: 50})
	g := m.Geom
	now := 0.0
	rA, rB := uint64(3), uint64(3+g.BanksTotal())
	for i := 0; i < 60; i++ {
		now = m.Access(lineAt(g, rA, 0), now).Completion
		now = m.Access(lineAt(g, rB, 0), now).Completion
	}
	s := m.Finalize()
	if got := s.TotalOverTRH(); got != 2 {
		t.Fatalf("watchdog flagged %d rows, want 2 (both exceeded 50 ACTs)", got)
	}
}

func TestWindowRoll(t *testing.T) {
	tm := DDR4_2400()
	tm.RefreshWindow = 10000 // 10 µs windows for the test
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	rA, rB := uint64(3), uint64(3+g.BanksTotal())
	now := 0.0
	for i := 0; i < 300; i++ {
		now = m.Access(lineAt(g, rA, 0), now).Completion
		now = m.Access(lineAt(g, rB, 0), now).Completion
	}
	s := m.Finalize()
	if len(s.Windows) < 2 {
		t.Fatalf("windows = %d, want several at a 10 µs refresh interval over %.0f ns", len(s.Windows), now)
	}
	// Counts must reset per window: no window can hold all 300 ACTs.
	for _, w := range s.Windows {
		if int(w.MaxActs) >= 300 {
			t.Fatal("activation counts leaked across windows")
		}
	}
}

func TestLineCensus(t *testing.T) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400(), LineCensus: true})
	g := m.Geom
	now := 0.0
	rA, rB := uint64(3), uint64(3+g.BanksTotal())
	// Row A: activations from 40 distinct slots (1-32 bucket is 0..32, so
	// 40 lands in the 33-64 bucket). Row B provides the conflicts.
	for i := 0; i < 40; i++ {
		for rep := 0; rep < 2; rep++ {
			now = m.Access(lineAt(g, rA, i), now).Completion
			now = m.Access(lineAt(g, rB, 0), now).Completion
		}
	}
	s := m.Finalize()
	w := s.Windows[0]
	if w.Hot64 != 2 {
		t.Fatalf("hot64 = %d, want 2", w.Hot64)
	}
	if w.LineBuckets[1] != 1 { // row A: 40 activating lines
		t.Fatalf("buckets = %v, want row A in the 33-64 bucket", w.LineBuckets)
	}
	if w.LineBuckets[0] != 1 { // row B: 1 activating line
		t.Fatalf("buckets = %v, want row B in the 1-32 bucket", w.LineBuckets)
	}
	if w.LineSum != 41 {
		t.Fatalf("line sum = %d, want 41", w.LineSum)
	}
}

func TestForceActivateCounts(t *testing.T) {
	m := newModule(t)
	m.ForceActivate(77, 100)
	m.AddExtraCAS(256)
	s := m.Finalize()
	if s.ExtraActs != 1 || s.ExtraCAS != 256 {
		t.Fatalf("extras = %d/%d, want 1/256", s.ExtraActs, s.ExtraCAS)
	}
	if s.Windows[0].UniqueRows != 1 {
		t.Fatal("forced activation missing from the census")
	}
	if s.DemandActs != 0 {
		t.Fatal("forced activation must not count as demand")
	}
}

func TestBlockChannelDelaysBus(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	m.BlockChannel(0, 0, 5000)
	res := m.Access(lineAt(g, 0, 0), 0)
	if res.Completion < 5000 {
		t.Fatalf("access completed at %.0f during a channel block until 5000", res.Completion)
	}
}

func TestWouldHit(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	p := lineAt(g, 12, 0)
	if m.WouldHit(p) {
		t.Fatal("cold bank cannot hit")
	}
	m.Access(p, 0)
	if !m.WouldHit(lineAt(g, 12, 5)) {
		t.Fatal("open row should hit")
	}
	if m.WouldHit(lineAt(g, 12+uint64(g.BanksTotal()), 0)) {
		t.Fatal("different row in same bank must not hit")
	}
}

func TestHitRateStat(t *testing.T) {
	m := newModule(t)
	g := m.Geom
	now := 0.0
	for i := 0; i < 10; i++ {
		now = m.Access(lineAt(g, 3, i), now).Completion
	}
	s := m.Finalize()
	if s.Accesses != 10 || s.RowHits != 9 {
		t.Fatalf("acc/hits = %d/%d, want 10/9", s.Accesses, s.RowHits)
	}
	if hr := s.HitRate(); hr < 0.89 || hr > 0.91 {
		t.Fatalf("hit rate %.3f, want 0.9", hr)
	}
}

func TestStatsAggregation(t *testing.T) {
	var s Stats
	s.Windows = []WindowStats{
		{Hot64: 10, Hot512: 1, OverTRH: 0, UniqueRows: 100},
		{Hot64: 20, Hot512: 2, OverTRH: 3, UniqueRows: 300},
	}
	if s.TotalHot64() != 30 || s.TotalHot512() != 3 || s.TotalOverTRH() != 3 {
		t.Fatal("window aggregation wrong")
	}
	if s.MeanUniqueRows() != 200 {
		t.Fatalf("mean unique = %v, want 200", s.MeanUniqueRows())
	}
}
