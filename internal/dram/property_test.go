package dram

import (
	"testing"
	"testing/quick"

	"rubix/internal/geom"
	"rubix/internal/rng"
)

// TestAccessNeverCompletesBeforeArrival: causality — a request can never
// complete before it arrives plus the CAS latency.
func TestAccessNeverCompletesBeforeArrival(t *testing.T) {
	m := newModule(t)
	r := rng.NewXoshiro256(1)
	now := 0.0
	total := m.Geom.TotalLines()
	for i := 0; i < 200000; i++ {
		phys := r.Uint64n(total)
		res := m.Access(phys, now)
		if res.Completion < now+m.Timing.TCL {
			t.Fatalf("access %d completed at %.2f, arrived at %.2f", i, res.Completion, now)
		}
		// Advance time irregularly to cover same-time and future arrivals.
		if i%3 == 0 {
			now = res.Completion
		} else {
			now += float64(r.Intn(20))
		}
	}
}

// TestActivationSpacingInvariant: within a bank, consecutive activations are
// always at least tRC apart — the physical constraint Rowhammer counting
// rests on.
func TestActivationSpacingInvariant(t *testing.T) {
	m := newModule(t)
	r := rng.NewXoshiro256(2)
	lastAct := make(map[int]float64)
	now := 0.0
	for i := 0; i < 200000; i++ {
		// Concentrate on a few banks to force conflicts.
		row := r.Uint64n(64)
		res := m.Access(row<<m.Geom.SlotBits(), now)
		if res.Activated {
			bank := m.Geom.BankID(res.GlobalRow)
			if prev, ok := lastAct[bank]; ok {
				if res.ActStart-prev < m.Timing.TRC-1e-9 {
					t.Fatalf("bank %d activated %.2f ns after previous ACT", bank, res.ActStart-prev)
				}
			}
			lastAct[bank] = res.ActStart
		}
		now = res.Completion
	}
}

// TestCensusCountsEveryActivation: the sum of per-row window counts must
// equal the total activation count.
func TestCensusCountsEveryActivation(t *testing.T) {
	m := newModule(t)
	r := rng.NewXoshiro256(3)
	now := 0.0
	for i := 0; i < 50000; i++ {
		res := m.Access(r.Uint64n(1<<20), now)
		now = res.Completion
	}
	s := m.Finalize()
	var counted uint64
	for _, w := range s.Windows {
		_ = w
	}
	// The census stores per-row counts only transiently; validate through
	// the demand-activation counter vs hits instead.
	counted = s.DemandActs + s.RowHits
	if counted != s.Accesses {
		t.Fatalf("hits (%d) + activations (%d) != accesses (%d)",
			s.RowHits, s.DemandActs, s.Accesses)
	}
}

// TestHitRateBounds via quick: the hit rate is always within [0, 1] and the
// stats counters are consistent for arbitrary access patterns.
func TestHitRateBounds(t *testing.T) {
	f := func(seed uint64, spread uint16) bool {
		m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
		r := rng.NewXoshiro256(seed)
		span := uint64(spread)%(1<<16) + 1
		now := 0.0
		for i := 0; i < 2000; i++ {
			res := m.Access(r.Uint64n(span), now)
			now = res.Completion
		}
		s := m.Finalize()
		hr := s.HitRate()
		return hr >= 0 && hr <= 1 && s.RowHits <= s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialStreamHitRateApproachesPolicyCap: a pure sequential stream
// under the open-adaptive policy converges to (OpenMax-1)/OpenMax hits.
func TestSequentialStreamHitRateApproachesPolicyCap(t *testing.T) {
	m := newModule(t)
	now := 0.0
	for i := uint64(0); i < 64*1024; i++ {
		res := m.Access(i, now)
		now = res.Completion
	}
	s := m.Finalize()
	want := float64(m.Timing.OpenMax-1) / float64(m.Timing.OpenMax)
	if hr := s.HitRate(); hr < want-0.01 || hr > want+0.01 {
		t.Fatalf("sequential hit rate %.4f, want ~%.4f", hr, want)
	}
}

// TestWindowsPartitionTime: window start times must be strictly increasing
// multiples of the refresh window.
func TestWindowsPartitionTime(t *testing.T) {
	tm := DDR4_2400()
	tm.RefreshWindow = 50000
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	r := rng.NewXoshiro256(4)
	now := 0.0
	for i := 0; i < 30000; i++ {
		res := m.Access(r.Uint64n(1<<14), now)
		now = res.Completion
	}
	s := m.Finalize()
	for i, w := range s.Windows {
		if w.Start != float64(i)*tm.RefreshWindow {
			t.Fatalf("window %d starts at %.0f, want %.0f", i, w.Start, float64(i)*tm.RefreshWindow)
		}
	}
}
