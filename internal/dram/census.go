// Row census: per-row activation accounting inside one refresh window.
//
// The census is the hottest data structure in the simulator — every
// activation touches it, and a full run rolls it once per 64 ms window.
// The original implementation was a map[uint64]*rowCensus, which costs one
// heap allocation per unique row per window (the dominant allocation source
// of an end-to-end run) plus rehash/clear churn at every window roll.
//
// flatCensus replaces it with an open-addressed hash table of *inline*
// census values. Window rolls do not touch the slots at all: each slot is
// stamped with the epoch (window number) that wrote it, and a slot whose
// stamp differs from the current epoch is simply free. Rolling a window is
// therefore O(1) on the table, frees nothing, and a steady-state run
// performs zero allocations on the ACT path (the table grows geometrically
// toward the peak per-window row count and then stays put).
//
// The activating-line bitmaps (Table 3) live in a parallel array allocated
// only when the line census is enabled, so the common performance-run
// configuration pays 16 bytes per slot instead of 32. The table is
// reconstructed fresh every run, so total growth-chain bytes — discarded
// intermediates plus final overshoot — are what show up in an end-to-end
// allocation profile; doubling keeps the final table within 2x of need.
//
// Iteration is a linear slot walk (see finalizeWindow). The walk visits
// rows in table order, which is not insertion order but *is* a pure
// function of the insertion history — deterministic with no map-ordering
// caveats, so no //lint:allow determinism waiver is needed — and every
// window aggregate is order-independent anyway. The walk is O(table), but
// the load factor keeps the table within a small constant of the occupied
// count.
package dram

// censusSlot is one open-addressed table entry: a row key, the epoch that
// claimed the slot, and the activation count. 16 bytes, so probe chains
// stay within a cache line.
type censusSlot struct {
	row   uint64 // addr: row
	epoch uint32
	acts  uint32
}

// flatCensus is the open-addressed, epoch-stamped row-census table.
type flatCensus struct {
	slots []censusSlot
	lines [][2]uint64 // per-slot 128-bit touched-line bitmaps; nil unless trackLines
	mask  uint64      // len(slots)-1; len is always a power of two
	shift uint        // 64 - log2(len(slots)), for Fibonacci hashing
	live  int         // slots claimed in the current epoch
	epoch uint32      // current window stamp; slots with a different stamp are free

	trackLines bool
}

// censusInitSlots is the initial table size: small enough that short runs
// and per-test modules stay cheap, large enough that realistic workloads
// reach steady state within a few geometric growths.
const censusInitSlots = 1 << 8

func newFlatCensus(trackLines bool) flatCensus {
	c := flatCensus{
		slots:      make([]censusSlot, censusInitSlots),
		epoch:      1, // zero-valued slots must never look occupied
		trackLines: trackLines,
	}
	if trackLines {
		c.lines = make([][2]uint64, censusInitSlots)
	}
	c.mask = uint64(len(c.slots) - 1)
	c.shift = 64 - log2u64(uint64(len(c.slots)))
	return c
}

func log2u64(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// get returns the slot index for row, claiming a free slot on first touch
// within the current window. The index is valid until the next get or
// reset call (growth may move entries).
//
// hot: the per-activation census lookup; allocation-free by the PR 4
// contract (benchdiff pins 0 allocs/op), growth is amortized into grow.
func (c *flatCensus) get(row uint64) int {
	if (c.live+1)*4 > len(c.slots)*3 {
		c.grow()
	}
	// Fibonacci hashing spreads the structured global-row space (bank bits
	// in the low positions) across the table; linear probing keeps chains
	// within adjacent cache lines.
	i := (row * 0x9E3779B97F4A7C15) >> c.shift
	for {
		s := &c.slots[i]
		if s.epoch != c.epoch { // free (never used, or stale from an old window)
			s.row = row
			s.epoch = c.epoch
			s.acts = 0
			if c.trackLines {
				c.lines[i] = [2]uint64{}
			}
			c.live++
			return int(i)
		}
		if s.row == row {
			return int(i)
		}
		i = (i + 1) & c.mask
	}
}

// grow doubles the table and reinserts the current window's live entries.
//
// cold: geometric growth amortizes to zero allocations per access once the
// table reaches the window's working-set size.
func (c *flatCensus) grow() {
	old := c.slots
	oldLines := c.lines
	c.slots = make([]censusSlot, 2*len(old))
	if c.trackLines {
		c.lines = make([][2]uint64, len(c.slots))
	}
	c.mask = uint64(len(c.slots) - 1)
	c.shift = 64 - log2u64(uint64(len(c.slots)))
	for oi := range old {
		s := &old[oi]
		if s.epoch != c.epoch {
			continue
		}
		i := (s.row * 0x9E3779B97F4A7C15) >> c.shift
		for c.slots[i].epoch == c.epoch {
			i = (i + 1) & c.mask
		}
		c.slots[i] = *s
		if c.trackLines {
			c.lines[i] = oldLines[oi]
		}
	}
}

// reset starts a new window. No slot is touched: bumping the epoch
// invalidates every entry at once.
func (c *flatCensus) reset() {
	c.live = 0
	c.epoch++
	if c.epoch == 0 {
		// The 32-bit stamp wrapped (after ~4 billion windows — 8+ simulated
		// years). Scrub the table so stale stamps cannot alias epoch 1.
		clear(c.slots)
		c.epoch = 1
	}
}

// len reports the number of rows recorded in the current window.
func (c *flatCensus) len() int { return c.live }
