// Package dram models the DRAM memory system: per-bank row-buffer state and
// command timing, per-channel data-bus occupancy, the open-adaptive page
// policy, and — central to the paper — per-row activation accounting in
// 64 ms refresh windows (hot-row census, activating-line census, and the
// security watchdog).
//
// The model is event-driven at request granularity rather than cycle
// accurate: bank preparation (precharge + activate) overlaps across banks,
// and only data-bus bursts serialize within a channel. This reproduces the
// bandwidth and latency behaviour the evaluation depends on (row-buffer
// hit rate, activation counts, channel blocking during migrations) at a
// small fraction of a cycle-accurate simulator's cost.
package dram

import (
	"fmt"
	"math/bits"
	"sort"

	"rubix/internal/check"
	"rubix/internal/geom"
	"rubix/internal/metrics"
	"rubix/internal/stats"
)

// Timing holds DRAM timing parameters in nanoseconds.
type Timing struct {
	TRCD          float64 // row-to-column delay (ACT to CAS)
	TCL           float64 // CAS latency
	TRP           float64 // precharge time
	TRC           float64 // minimum ACT-to-ACT interval for one bank
	TBurst        float64 // data-bus occupancy per 64 B line transfer
	RefreshWindow float64 // refresh interval (activation-count window)
	OpenMax       int     // open-adaptive page policy: close after N accesses
	// RowLease models FR-FCFS row-hit-first scheduling: a conflicting
	// request must wait RowLease ns after the open row's last use before it
	// may close the row, so an in-flight hit streak is served first rather
	// than ping-ponging the row buffer between requestors.
	RowLease float64
	// TREFI and TRFC model periodic refresh: every TREFI ns each bank is
	// unavailable for TRFC ns (DDR4 8Gb: 7800 / 350). Zero disables
	// refresh modelling — the default, since the ~4.5% bandwidth tax is
	// identical across every configuration the paper compares and would
	// cancel out of all normalized results. Enable it for absolute
	// latency/bandwidth studies.
	TREFI float64
	TRFC  float64
	// TWR is the write-recovery time added before precharging a row that
	// received a write burst. Only consulted when the controller issues
	// writes (WriteFraction > 0).
	TWR float64
}

// DDR4_2400 returns the paper's DDR4 2400 MT/s timing (Table 1):
// tRCD = tCL = tRP = 14.2 ns, tRC = 45 ns, 64 ms refresh window, and the
// open-adaptive policy's 16-access maximum. tBurst is 64 B over a 64-bit
// channel at 2400 MT/s ≈ 3.33 ns.
func DDR4_2400() Timing {
	return Timing{
		TRCD:          14.2,
		TCL:           14.2,
		TRP:           14.2,
		TRC:           45,
		TBurst:        10.0 / 3.0,
		RefreshWindow: 64e6,
		OpenMax:       16,
		RowLease:      24,
		TWR:           15,
	}
}

// WithRefresh returns a copy of t with DDR4 periodic-refresh modelling
// enabled (tREFI = 7.8 µs, tRFC = 350 ns).
func (t Timing) WithRefresh() Timing {
	t.TREFI = 7800
	t.TRFC = 350
	return t
}

type bankState struct {
	openRow      int64 // global row index currently open; -1 if closed; addr: row
	openAccesses int
	lastActStart float64
	readyAt      float64
	leaseUntil   float64 // FR-FCFS row-hit priority window
	nextRefresh  float64
	wrote        bool // open row received a write (write recovery applies)
}

// AccessResult reports the outcome of one demand access.
type AccessResult struct {
	Completion float64 // ns at which data is available
	ActStart   float64 // ns of the activation, if one occurred
	GlobalRow  uint64 // addr: row
	RowHit     bool
	Activated  bool
}

// WindowStats summarizes one finished refresh window.
type WindowStats struct {
	Start       float64
	UniqueRows  int // rows with >= 1 activation
	Hot64       int // rows with >= 64 activations
	Hot512      int // rows with >= 512 activations
	OverTRH     int // rows strictly exceeding the Rowhammer threshold
	MaxActs     uint32
	LineBuckets [3]int // hot rows (>=64 ACTs) with 1-32, 33-64, 65-128 activating lines
	LineSum     int    // total activating lines over hot rows (for the average)
}

// Stats aggregates accounting over the whole run.
type Stats struct {
	Accesses   uint64 // demand accesses
	RowHits    uint64
	WriteCAS   uint64 // demand accesses that were writes
	DemandActs uint64 // activations from demand misses
	ExtraActs  uint64 // activations from migrations / swaps
	ExtraCAS   uint64 // column accesses from migrations / swaps
	Windows    []WindowStats

	// Latency decomposition (ns summed over all accesses): time spent
	// waiting for the bank to be free, for an open row's FR-FCFS lease,
	// in precharge+activate, and for the data bus.
	WaitBankNs  float64
	WaitLeaseNs float64
	PrepNs      float64
	WaitBusNs   float64

	// Latency is the per-access latency distribution, populated when
	// Config.LatencyHist is set.
	Latency *stats.Histogram

	currentStart float64
}

// HitRate returns the row-buffer hit rate over the run.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// TotalHot64 sums hot-row (>= 64 ACT) events over all windows, the
// quantity plotted in Figures 7 and 12.
func (s *Stats) TotalHot64() int {
	n := 0
	for _, w := range s.Windows {
		n += w.Hot64
	}
	return n
}

// TotalHot512 sums rows with >= 512 activations over all windows.
func (s *Stats) TotalHot512() int {
	n := 0
	for _, w := range s.Windows {
		n += w.Hot512
	}
	return n
}

// TotalOverTRH sums security-watchdog violations (rows strictly exceeding
// the Rowhammer threshold within a window) over all windows. Secure
// mitigations must keep this at zero.
func (s *Stats) TotalOverTRH() int {
	n := 0
	for _, w := range s.Windows {
		n += w.OverTRH
	}
	return n
}

// MeanUniqueRows returns the average unique rows activated per window
// (Table 2's "Unique Rows Activated").
func (s *Stats) MeanUniqueRows() float64 {
	if len(s.Windows) == 0 {
		return 0
	}
	n := 0
	for _, w := range s.Windows {
		n += w.UniqueRows
	}
	return float64(n) / float64(len(s.Windows))
}

// Module is the DRAM memory system model.
type Module struct {
	Geom   geom.Geometry
	Timing Timing

	banks   []bankState
	busFree []float64 // per channel

	// Float accounting is accumulated per channel and folded into Stats in
	// ascending channel order (drainChannels). Floating-point addition is
	// not associative, so a single global accumulator would make the
	// sharded simulator's merged totals differ from the serial path in the
	// last bits; per-channel accumulation gives both paths the identical
	// addition sequence (DESIGN.md §14).
	waitBank  []float64 // unit: ns; per channel
	waitLease []float64 // unit: ns; per channel
	prep      []float64 // unit: ns; per channel
	waitBus   []float64 // unit: ns; per channel
	latHist   []stats.Histogram // per channel; only when Config.LatencyHist

	// Accounting.
	trh        int // Rowhammer threshold for the watchdog (0 disables)
	lineCensus bool
	census     flatCensus
	windowEnd  float64
	stats      Stats

	// Metrics handles (nil and no-op when metrics are disabled).
	rec        *metrics.Recorder
	mActDemand *metrics.Counter
	mActExtra  *metrics.Counter
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mConflicts *metrics.Counter
	mWriteCAS  *metrics.Counter

	// chk is the paranoid-mode invariant checker; nil when checking is off.
	chk *check.Checker
}

// Config configures a Module.
type Config struct {
	Geometry    geom.Geometry
	Timing      Timing
	TRH         int  // Rowhammer threshold for the security watchdog
	LineCensus  bool // track activating lines per row (Table 3); costs memory
	LatencyHist bool // collect the per-access latency distribution
	// Metrics, when non-nil, receives per-access counters and trace events.
	Metrics *metrics.Recorder
	// Check, when non-nil, receives census-conservation and per-bank
	// timing (tRC, tREFI) events.
	Check *check.Checker
}

// New builds a DRAM module.
func New(cfg Config) *Module {
	m := &Module{
		Geom:       cfg.Geometry,
		Timing:     cfg.Timing,
		banks:      make([]bankState, cfg.Geometry.BanksTotal()),
		busFree:    make([]float64, cfg.Geometry.Channels),
		trh:        cfg.TRH,
		lineCensus: cfg.LineCensus,
		census:     newFlatCensus(cfg.LineCensus),
		windowEnd:  cfg.Timing.RefreshWindow,
	}
	m.waitBank = make([]float64, cfg.Geometry.Channels)
	m.waitLease = make([]float64, cfg.Geometry.Channels)
	m.prep = make([]float64, cfg.Geometry.Channels)
	m.waitBus = make([]float64, cfg.Geometry.Channels)
	if cfg.LatencyHist {
		m.latHist = make([]stats.Histogram, cfg.Geometry.Channels)
	}
	// A 250M-instruction run spans a handful of refresh windows; reserving
	// them up front keeps Windows appends off the steady-state ACT path.
	m.stats.Windows = make([]WindowStats, 0, 8)
	for i := range m.banks {
		m.banks[i].openRow = -1
		m.banks[i].lastActStart = -cfg.Timing.TRC // no phantom ACT at t=0
	}
	if cfg.LatencyHist {
		m.stats.Latency = &stats.Histogram{}
	}
	m.rec = cfg.Metrics
	m.mActDemand = cfg.Metrics.Counter("dram_acts_demand")
	m.mActExtra = cfg.Metrics.Counter("dram_acts_extra")
	m.mHits = cfg.Metrics.Counter("dram_row_hits")
	m.mMisses = cfg.Metrics.Counter("dram_row_misses")
	m.mConflicts = cfg.Metrics.Counter("dram_row_conflicts")
	m.mWriteCAS = cfg.Metrics.Counter("dram_write_cas")
	m.chk = cfg.Check
	return m
}

// Access performs a demand read access to the physical line index phys,
// starting no earlier than `earliest` ns. It updates bank and bus state and
// all accounting, and returns the access outcome.
func (m *Module) Access(phys uint64, earliest float64) AccessResult {
	return m.AccessRW(phys, earliest, false)
}

// AccessRW is Access with an explicit read/write direction. Writes mark the
// open row so the write-recovery time (tWR) is charged before its precharge.
func (m *Module) AccessRW(phys uint64, earliest float64, write bool) AccessResult {
	row := m.Geom.GlobalRow(phys)
	slot := m.Geom.Slot(phys)
	bi := m.Geom.BankID(row)
	bank := &m.banks[bi]
	ch := m.Geom.ChannelOf(row)

	// Periodic refresh: catch up on any refreshes due before this access.
	if m.Timing.TREFI > 0 {
		if bank.nextRefresh == 0 {
			bank.nextRefresh = m.Timing.TREFI
		}
		for earliest >= bank.nextRefresh {
			end := bank.nextRefresh + m.Timing.TRFC
			if bank.wrote {
				// Refresh requires the bank precharged, and a written row
				// must satisfy write recovery before it may precharge — so
				// the first catch-up refresh eats tWR on top of tRFC.
				end += m.Timing.TWR
				bank.wrote = false
			}
			if bank.readyAt < end {
				bank.readyAt = end
			}
			bank.openRow = -1 // refresh closes the row
			if m.chk != nil {
				m.chk.OnRefresh(bi, bank.nextRefresh, m.Timing.TREFI)
			}
			bank.nextRefresh += m.Timing.TREFI
		}
	}

	res := AccessResult{GlobalRow: row}
	var casReady float64
	if bank.openRow == int64(row) {
		res.RowHit = true
		casReady = max(earliest, bank.readyAt)
		m.waitBank[ch] += casReady - earliest
		m.mHits.Inc()
	} else {
		start := max(earliest, bank.readyAt)
		m.waitBank[ch] += start - earliest
		m.mMisses.Inc()
		conflict := bank.openRow >= 0
		if conflict {
			m.mConflicts.Inc()
			m.rec.Event(metrics.EvRowConflict, start, row)
			// Row-hit-first: wait out the open row's lease, then precharge
			// (after write recovery if the row was written).
			leased := max(start, bank.leaseUntil)
			m.waitLease[ch] += leased - start
			start = leased + m.Timing.TRP
			if bank.wrote {
				start += m.Timing.TWR
				bank.wrote = false
			}
		}
		actStart := max(start, bank.lastActStart+m.Timing.TRC)
		casReady = actStart + m.Timing.TRCD
		// Prep time is the activate latency, plus the precharge only when
		// one was actually issued (row conflict); a bank that was already
		// closed goes straight to ACT.
		prep := casReady - start
		if conflict {
			prep += m.Timing.TRP
		}
		m.prep[ch] += prep
		bank.lastActStart = actStart
		bank.openRow = int64(row)
		bank.openAccesses = 0
		res.Activated = true
		res.ActStart = actStart
		if m.chk != nil {
			m.chk.OnBankACT(bi, actStart, m.Timing.TRC)
		}
		m.recordACT(row, slot, actStart, true)
	}

	busStart := max(casReady, m.busFree[ch])
	m.waitBus[ch] += busStart - casReady
	res.Completion = busStart + m.Timing.TCL
	m.busFree[ch] = busStart + m.Timing.TBurst
	// The bank is occupied by the column command itself (tCCD ≈ tBurst);
	// the data burst occupies only the shared bus.
	bank.readyAt = casReady + m.Timing.TBurst
	bank.leaseUntil = casReady + m.Timing.RowLease

	if write {
		bank.wrote = true
		m.stats.WriteCAS++
		m.mWriteCAS.Inc()
	}
	bank.openAccesses++
	if bank.openAccesses >= m.Timing.OpenMax {
		// Open-adaptive policy: close the row after OpenMax accesses.
		bank.openRow = -1
		trp := m.Timing.TRP
		if bank.wrote {
			trp += m.Timing.TWR
			bank.wrote = false
		}
		bank.readyAt = casReady + trp
		bank.leaseUntil = 0
	}

	m.stats.Accesses++
	if res.RowHit {
		m.stats.RowHits++
	}
	if m.latHist != nil {
		m.latHist[ch].Add(res.Completion - earliest)
	}
	return res
}

// WouldHit reports whether an access to phys would hit the currently open
// row of its bank (used by rate-control mitigations, which only throttle
// activations, to decide whether a request needs an activation grant).
func (m *Module) WouldHit(phys uint64) bool {
	row := m.Geom.GlobalRow(phys)
	return m.banks[m.Geom.BankID(row)].openRow == int64(row)
}

// ForceActivate registers an activation of globalRow at time `at` caused by
// a mitigation or remap operation (migration, swap). The caller accounts
// for the operation's bus/bank occupancy separately via BlockChannel.
func (m *Module) ForceActivate(globalRow uint64, at float64) {
	// A mitigation operation closes whatever row was open in the bank.
	bank := &m.banks[m.Geom.BankID(globalRow)]
	bank.openRow = -1
	bank.lastActStart = max(bank.lastActStart, at)
	m.stats.ExtraActs++
	m.mActExtra.Inc()
	m.recordACT(globalRow, -1, at, false)
}

// AddExtraCAS accounts column accesses performed by mitigation operations.
func (m *Module) AddExtraCAS(n int) { m.stats.ExtraCAS += uint64(n) }

// BlockChannel occupies the channel owning globalRow from `from` for `dur`
// nanoseconds (row migrations tie up the memory bus, §2.6).
func (m *Module) BlockChannel(globalRow uint64, from, dur float64) {
	ch := m.Geom.ChannelOf(globalRow)
	m.busFree[ch] = max(m.busFree[ch], from) + dur
}

// recordACT updates window accounting. slot < 0 means "line unknown"
// (mitigation traffic), which skips the line census.
func (m *Module) recordACT(row uint64, slot int, at float64, demand bool) {
	if demand {
		m.stats.DemandActs++
		m.mActDemand.Inc()
		m.rec.Event(metrics.EvActivation, at, row)
	}
	for at >= m.windowEnd {
		m.rollWindow()
	}
	idx := m.census.get(row)
	m.census.slots[idx].acts++
	// Placed after the window roll so that, at every window close, the
	// cumulative offered counts equal the cumulative table sums exactly.
	if m.chk != nil {
		m.chk.OnCensusACT(demand)
	}
	if m.lineCensus && slot >= 0 {
		m.census.lines[idx][slot>>6] |= 1 << (uint(slot) & 63)
	}
}

// rollWindow finalizes the current refresh window and starts the next.
func (m *Module) rollWindow() {
	m.finalizeWindow()
	m.stats.currentStart = m.windowEnd
	m.windowEnd += m.Timing.RefreshWindow
}

// finalizeWindow closes the current refresh window into the stats record.
//
// cold: runs once per refresh window (milliseconds of simulated time), not
// per access; the per-window stats append is the intended record.
func (m *Module) finalizeWindow() {
	w := WindowStats{Start: m.stats.currentStart, UniqueRows: m.census.len()}
	var tableActs uint64
	// Linear slot walk: table order is a pure function of the insertion
	// history, so this is deterministic (and every field is
	// order-independent anyway).
	for idx := range m.census.slots {
		rc := &m.census.slots[idx]
		if rc.epoch != m.census.epoch {
			continue
		}
		tableActs += uint64(rc.acts)
		if rc.acts > w.MaxActs {
			w.MaxActs = rc.acts
		}
		if rc.acts >= 64 {
			w.Hot64++
			if m.lineCensus {
				lb := &m.census.lines[idx]
				n := bits.OnesCount64(lb[0]) + bits.OnesCount64(lb[1])
				w.LineSum += n
				switch {
				case n <= 32:
					w.LineBuckets[0]++
				case n <= 64:
					w.LineBuckets[1]++
				default:
					w.LineBuckets[2]++
				}
			}
		}
		if rc.acts >= 512 {
			w.Hot512++
		}
		if m.trh > 0 && rc.acts > uint32(m.trh) {
			w.OverTRH++
		}
	}
	if m.chk != nil {
		m.chk.OnWindowClose(tableActs)
	}
	if w.UniqueRows > 0 || len(m.stats.Windows) == 0 {
		m.stats.Windows = append(m.stats.Windows, w)
	}
	m.census.reset()
}

// drainChannels folds the per-channel float accumulators into the Stats
// fields in ascending channel order and zeroes the accumulators, so the
// fold is idempotent and Stats/Finalize may both call it (and mid-run
// Stats() reads still see cumulative totals).
//
// cold: runs at stats-read time, never on the access path.
func (m *Module) drainChannels() {
	for ch := range m.waitBank {
		m.stats.WaitBankNs += m.waitBank[ch]
		m.stats.WaitLeaseNs += m.waitLease[ch]
		m.stats.PrepNs += m.prep[ch]
		m.stats.WaitBusNs += m.waitBus[ch]
		m.waitBank[ch] = 0
		m.waitLease[ch] = 0
		m.prep[ch] = 0
		m.waitBus[ch] = 0
	}
	if m.stats.Latency != nil {
		for ch := range m.latHist {
			m.stats.Latency.Merge(&m.latHist[ch])
			m.latHist[ch] = stats.Histogram{}
		}
	}
}

// Finalize closes the last (partial) window and returns the run's stats.
// The module must not be used after Finalize.
func (m *Module) Finalize() *Stats {
	m.finalizeWindow()
	m.drainChannels()
	return &m.stats
}

// Stats returns the running statistics without finalizing the last window.
func (m *Module) Stats() *Stats {
	m.drainChannels()
	return &m.stats
}

// FinalizeSharded finalizes a set of per-shard modules that together model
// one memory system — shard i owns every channel ch with ch % len(mods) == i
// — and merges their accounting into a single Stats byte-identical to what
// one serial module covering all channels would report. Determinism rests on
// fixed orders everywhere: integer fields are summed in shard order, windows
// are merged by ascending start time, and the float latency decomposition is
// folded in ascending *channel* order straight from the per-channel
// accumulators, exactly the sequence the serial drainChannels performs. The
// modules must not be used (including Stats/Finalize) after this call.
//
// cold: runs once at the end of a sharded run.
func FinalizeSharded(mods []*Module) *Stats {
	if len(mods) == 1 {
		return mods[0].Finalize()
	}
	merged := &Stats{}
	for _, m := range mods {
		m.finalizeWindow()
		merged.Accesses += m.stats.Accesses
		merged.RowHits += m.stats.RowHits
		merged.WriteCAS += m.stats.WriteCAS
		merged.DemandActs += m.stats.DemandActs
		merged.ExtraActs += m.stats.ExtraActs
		merged.ExtraCAS += m.stats.ExtraCAS
		if m.stats.currentStart > merged.currentStart {
			merged.currentStart = m.stats.currentStart
		}
	}
	merged.Windows = mergeWindows(mods)
	// Every shard module spans the full geometry, so its accumulator arrays
	// are indexed by global channel; a shard's entries for channels it does
	// not own are exactly zero. Folding ascending by channel from each
	// channel's owner is therefore the identical addition sequence the
	// serial module's drainChannels performs over one flat channel array.
	channels := len(mods[0].waitBank)
	for ch := 0; ch < channels; ch++ {
		m := mods[ch%len(mods)]
		merged.WaitBankNs += m.waitBank[ch]
		merged.WaitLeaseNs += m.waitLease[ch]
		merged.PrepNs += m.prep[ch]
		merged.WaitBusNs += m.waitBus[ch]
	}
	if mods[0].stats.Latency != nil {
		merged.Latency = &stats.Histogram{}
		for ch := 0; ch < channels; ch++ {
			merged.Latency.Merge(&mods[ch%len(mods)].latHist[ch])
		}
	}
	return merged
}

// mergeWindows unions the per-shard window lists by start time, summing the
// per-window counters. Every shard's list begins with the start-0 window
// (finalizeWindow always appends the first window even when empty), and a
// shard only records a later window when it saw activations in it, so the
// merged set of starts equals the serial module's: {0} ∪ {w > 0 : some
// channel activated a row in w}.
func mergeWindows(mods []*Module) []WindowStats {
	byStart := make(map[float64]*WindowStats)
	var starts []float64
	for _, m := range mods {
		for i := range m.stats.Windows {
			w := &m.stats.Windows[i]
			acc, ok := byStart[w.Start]
			if !ok {
				acc = &WindowStats{Start: w.Start}
				byStart[w.Start] = acc
				starts = append(starts, w.Start)
			}
			acc.UniqueRows += w.UniqueRows
			acc.Hot64 += w.Hot64
			acc.Hot512 += w.Hot512
			acc.OverTRH += w.OverTRH
			if w.MaxActs > acc.MaxActs {
				acc.MaxActs = w.MaxActs
			}
			for b := range acc.LineBuckets {
				acc.LineBuckets[b] += w.LineBuckets[b]
			}
			acc.LineSum += w.LineSum
		}
	}
	sort.Float64s(starts)
	out := make([]WindowStats, len(starts))
	for i, s := range starts {
		out[i] = *byStart[s]
	}
	return out
}

// String implements fmt.Stringer.
func (m *Module) String() string {
	return fmt.Sprintf("DRAM[%s]", m.Geom)
}
