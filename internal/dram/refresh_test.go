package dram

import (
	"testing"

	"rubix/internal/geom"
)

func TestRefreshStallsBank(t *testing.T) {
	tm := DDR4_2400().WithRefresh()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	// An access arriving just after a refresh deadline waits out tRFC.
	res := m.Access(lineAt(g, 0, 0), tm.TREFI+1)
	if res.Completion < tm.TREFI+tm.TRFC {
		t.Fatalf("access completed at %.0f during refresh until %.0f",
			res.Completion, tm.TREFI+tm.TRFC)
	}
}

func TestRefreshClosesOpenRow(t *testing.T) {
	tm := DDR4_2400().WithRefresh()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	m.Access(lineAt(g, 0, 0), 0)
	// Same row after the refresh deadline: must re-activate.
	res := m.Access(lineAt(g, 0, 1), tm.TREFI+tm.TRFC+1)
	if res.RowHit {
		t.Fatal("row survived a refresh")
	}
}

func TestRefreshCatchesUpMultipleIntervals(t *testing.T) {
	tm := DDR4_2400().WithRefresh()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	// Jump ten intervals ahead; internal state must advance without loops
	// hanging or stalling the access behind ten refreshes.
	at := 10*tm.TREFI + 10
	res := m.Access(lineAt(g, 0, 0), at)
	if res.Completion > at+tm.TRFC+3*tm.TRC {
		t.Fatalf("catch-up refresh overcharged: %.0f for arrival %.0f", res.Completion, at)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	tm := DDR4_2400()
	if tm.TREFI != 0 {
		t.Fatal("refresh should be opt-in (uniform tax cancels in normalized results)")
	}
}

func TestWriteRecoveryChargedOnRefreshClose(t *testing.T) {
	tm := DDR4_2400().WithRefresh()
	g := geom.DDR4_16GB()

	// Read case: open a row, let the refresh deadline pass, access again.
	mr := New(Config{Geometry: g, Timing: tm})
	mr.Access(lineAt(g, 0, 0), 0)
	readRes := mr.Access(lineAt(g, 0, 1), tm.TREFI+1)

	// Write case: identical schedule, but the open row was written, so the
	// refresh-close must absorb write recovery before the implicit precharge.
	mw := New(Config{Geometry: g, Timing: tm})
	mw.AccessRW(lineAt(g, 0, 0), 0, true)
	writeRes := mw.Access(lineAt(g, 0, 1), tm.TREFI+1)

	if d := writeRes.Completion - readRes.Completion; d < tm.TWR-0.01 {
		t.Fatalf("refresh-close skipped write recovery: write completes %.1f ns after read, want >= tWR (%.1f)",
			d, tm.TWR)
	}
	// And the wrote flag must be consumed: a later conflict in the write
	// module must not charge tWR a second time.
	later := writeRes.Completion + 1000
	conf := mw.Access(lineAt(g, 0, 0), later) // conflicts with the open row
	confRead := mr.Access(lineAt(g, 0, 0), later)
	if d := conf.Completion - later - (confRead.Completion - later); d > 0.01 {
		t.Fatalf("write recovery double-charged after refresh close: conflict latency differs by %.1f ns", d)
	}
}

func TestWriteRecoveryChargedOnConflict(t *testing.T) {
	tm := DDR4_2400()
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	r1 := uint64(3)
	r2 := r1 + uint64(g.BanksTotal())

	// Read case.
	a := m.Access(lineAt(g, r1, 0), 0)
	readConf := m.Access(lineAt(g, r2, 0), a.Completion+1000)

	// Write case on a fresh module.
	m2 := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	b := m2.AccessRW(lineAt(g, r1, 0), 0, true)
	writeConf := m2.Access(lineAt(g, r2, 0), b.Completion+1000)

	readLat := readConf.Completion - (a.Completion + 1000)
	writeLat := writeConf.Completion - (b.Completion + 1000)
	if writeLat-readLat < tm.TWR-0.01 {
		t.Fatalf("write recovery not charged: read conflict %.1f vs write conflict %.1f", readLat, writeLat)
	}
}

func TestWriteCASCounted(t *testing.T) {
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: DDR4_2400()})
	g := m.Geom
	m.AccessRW(lineAt(g, 1, 0), 0, true)
	m.AccessRW(lineAt(g, 1, 1), 100, false)
	s := m.Finalize()
	if s.WriteCAS != 1 || s.Accesses != 2 {
		t.Fatalf("writes/accesses = %d/%d, want 1/2", s.WriteCAS, s.Accesses)
	}
}

func TestWriteRecoveryOnOpenAdaptiveClose(t *testing.T) {
	tm := DDR4_2400()
	tm.OpenMax = 2
	m := New(Config{Geometry: geom.DDR4_16GB(), Timing: tm})
	g := m.Geom
	m.AccessRW(lineAt(g, 1, 0), 0, true)
	second := m.Access(lineAt(g, 1, 1), 50) // closes the row (OpenMax 2)
	// Next access to the same bank must wait tRP+tWR past the close.
	res := m.Access(lineAt(g, 1, 2), second.Completion)
	if res.ActStart < second.Completion+tm.TWR-tm.TCL {
		t.Fatalf("write recovery skipped on adaptive close: act at %.1f after CAS %.1f",
			res.ActStart, second.Completion)
	}
}
