#!/bin/bash
# Regenerates all paper artifacts. Cheap experiments run at full scale;
# the big performance sweeps run at scale 0.5 (ratios are stable).
cd /root/repo
BIN=./results/experiments.bin
go build -o $BIN ./cmd/experiments
for exp in table2 fig4 table3 fig7 sec5.4; do
  echo "== $exp (scale 1.0)"; $BIN -exp $exp -scale 1.0 > results/$exp.txt 2>&1
done
for exp in fig12 table4 sec4.8 sec4.9 sec6.1 sec6.2 fig9; do
  echo "== $exp (scale 0.5)"; $BIN -exp $exp -scale 0.5 > results/$exp.txt 2>&1
done
for exp in fig8 fig13 fig3 fig14 table5 fig16 fig17 fig15; do
  echo "== $exp (scale 0.5)"; $BIN -exp $exp -scale 0.5 > results/$exp.txt 2>&1
done
echo ALL-DONE
