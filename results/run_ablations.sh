#!/bin/bash
cd /root/repo
BIN=./results/experiments2.bin
go build -o $BIN ./cmd/experiments
for exp in ablation-rr ablation-seg ablation-trr ablation-trackers ablation-policy ablation-writes; do
  echo "== $exp"; $BIN -exp $exp -scale 0.5 > results/$exp.txt 2>&1
done
echo ABLATIONS-DONE
