#!/bin/bash
cd /root/repo
BIN=./results/experiments2.bin
go build -o $BIN ./cmd/experiments
for exp in table5 fig17 fig15; do
  echo "== $exp (scale 0.2)"; $BIN -exp $exp -scale 0.2 > results/$exp.txt 2>&1
done
echo "== fig16 (scale 0.1)"; $BIN -exp fig16 -scale 0.1 > results/fig16.txt 2>&1
for exp in ablation-rr ablation-seg ablation-trr ablation-trackers ablation-policy ablation-writes; do
  echo "== $exp (scale 0.2)"; $BIN -exp $exp -scale 0.2 -workloads blender,lbm,gcc,mcf,roms,xz,leela -mixes=false > results/$exp.txt 2>&1
done
echo FINAL-DONE
