package rubix_test

// Full-pipeline integration test: a synthetic address stream driven through
// the LLC model into the memory controller and DRAM, validating that the
// miss-trace abstraction the main experiments use (generators emitting LLC
// misses directly) is consistent with an explicit cache in the loop.

import (
	"testing"

	"rubix/internal/cache"
	"rubix/internal/dram"
	"rubix/internal/geom"
	"rubix/internal/memctrl"
	"rubix/internal/mitigation"
	"rubix/internal/rng"
	"rubix/internal/sim"
)

// buildPipeline returns an LLC plus a controller on the named mapping.
func buildPipeline(t *testing.T, mapName string) (*cache.Cache, *memctrl.Controller, *dram.Module) {
	t.Helper()
	g := geom.DDR4_16GB()
	llc, err := cache.New(8<<20, 64, 16) // Table 1's 8 MB / 16-way LLC
	if err != nil {
		t.Fatal(err)
	}
	mod := dram.New(dram.Config{Geometry: g, Timing: dram.DDR4_2400(), TRH: 128})
	mapper, err := sim.MapperFor(mapName, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.New(memctrl.Config{DRAM: mod, Map: mapper, Mit: mitigation.NewNone()})
	return llc, ctrl, mod
}

func TestPipelineCacheFiltersMemoryTraffic(t *testing.T) {
	llc, ctrl, mod := buildPipeline(t, "coffeelake")
	r := rng.NewXoshiro256(1)
	now := 0.0
	const accesses = 400_000
	const workingLines = 32_768 // 2 MB working set: fits the LLC
	for i := 0; i < accesses; i++ {
		line := r.Uint64n(workingLines)
		res := llc.Access(line, i%4 == 0)
		if !res.Hit {
			now = ctrl.Access(line, now)
		}
		if res.Writeback {
			now = ctrl.Access(res.Victim, now)
		}
	}
	s := mod.Finalize()
	// A cache-resident working set must filter nearly all traffic.
	if s.Accesses > accesses/5 {
		t.Fatalf("LLC passed %d of %d accesses to memory", s.Accesses, accesses)
	}
	if llc.MissRate() > 0.2 {
		t.Fatalf("LLC miss rate %.2f for a resident working set", llc.MissRate())
	}
}

func TestPipelineThrashingReachesMemory(t *testing.T) {
	llc, ctrl, mod := buildPipeline(t, "coffeelake")
	r := rng.NewXoshiro256(2)
	now := 0.0
	const accesses = 300_000
	const workingLines = 4 << 20 / 8 // 32 MB working set: 4x the LLC
	for i := 0; i < accesses; i++ {
		line := r.Uint64n(workingLines)
		if !llc.Access(line, false).Hit {
			now = ctrl.Access(line, now)
		}
	}
	s := mod.Finalize()
	if s.Accesses < accesses/2 {
		t.Fatalf("thrashing working set produced only %d memory accesses", s.Accesses)
	}
}

// TestPipelineBatchDrainMatchesScalar runs the same miss stream through two
// identically-seeded pipelines, draining one miss at a time on one side and
// in AccessBatch chunks on the other: the end-to-end DRAM statistics must be
// identical. Covers a static mapping and Rubix-D, whose remap engine runs
// inside the drain.
func TestPipelineBatchDrainMatchesScalar(t *testing.T) {
	for _, mapName := range []string{"coffeelake", "rubixd-gs4"} {
		t.Run(mapName, func(t *testing.T) {
			llcA, ctrlA, modA := buildPipeline(t, mapName)
			llcB, ctrlB, modB := buildPipeline(t, mapName)
			rA := rng.NewXoshiro256(7)
			rB := rng.NewXoshiro256(7)
			const accesses = 200_000
			const workingLines = 4 << 20 / 8
			const chunk = 8
			nowA, nowB := 0.0, 0.0
			var batchA, batchB []uint64
			// Both sides issue each chunk's misses at one common arrival
			// time (a burst, as cpu.Serial does); only the drain mechanism
			// differs: per-line Access vs one AccessBatch call.
			flush := func() {
				if len(batchA) == 0 {
					return
				}
				maxA := nowA
				for _, line := range batchA {
					if comp := ctrlA.Access(line, nowA); comp > maxA {
						maxA = comp
					}
				}
				nowA = maxA
				nowB = ctrlB.AccessBatch(batchB, nowB)
				if nowA != nowB {
					t.Fatalf("burst completion diverged: scalar %.4f, batch %.4f", nowA, nowB)
				}
				batchA, batchB = batchA[:0], batchB[:0]
			}
			for i := 0; i < accesses; i++ {
				lineA := rA.Uint64n(workingLines)
				if !llcA.Access(lineA, false).Hit {
					batchA = append(batchA, lineA)
				}
				lineB := rB.Uint64n(workingLines)
				if !llcB.Access(lineB, false).Hit {
					batchB = append(batchB, lineB)
				}
				if len(batchA) == chunk {
					flush()
				}
			}
			flush()
			sA, sB := modA.Finalize(), modB.Finalize()
			if sA.Accesses != sB.Accesses || sA.RowHits != sB.RowHits ||
				sA.DemandActs != sB.DemandActs || sA.ExtraActs != sB.ExtraActs {
				t.Fatalf("batch drain diverged from scalar:\nscalar %+v\nbatch  %+v", sA, sB)
			}
			if ctrlA.RemapSwaps() != ctrlB.RemapSwaps() {
				t.Fatalf("swaps diverged: scalar %d, batch %d",
					ctrlA.RemapSwaps(), ctrlB.RemapSwaps())
			}
		})
	}
}

func TestPipelineHotPageThroughCacheStillMakesHotRow(t *testing.T) {
	// The paper's effect survives an explicit cache: a working set larger
	// than the LLC with a reuse-heavy hot region produces hot DRAM rows
	// under Coffee Lake but not under Rubix. Line-granular conflict misses
	// of the hot page recur because the surrounding traffic evicts them.
	for _, tc := range []struct {
		mapName string
		wantHot bool
	}{
		{"coffeelake", true},
		{"rubixs-gs1", false},
	} {
		llc, ctrl, mod := buildPipeline(t, tc.mapName)
		r := rng.NewXoshiro256(3)
		now := 0.0
		const big = 4 << 20 / 8 // 32 MB background set
		// One 4 KB-page-pair region (128 lines = one CL row).
		for i := 0; i < 1_500_000; i++ {
			var line uint64
			if i%4 == 0 {
				line = uint64(big) + r.Uint64n(128) // hot row region
			} else {
				line = r.Uint64n(big)
			}
			if !llc.Access(line, false).Hit {
				now = ctrl.Access(line, now)
			}
		}
		s := mod.Finalize()
		hot := s.TotalHot64()
		if tc.wantHot && hot == 0 {
			t.Errorf("%s: expected a hot row from the reused page", tc.mapName)
		}
		if !tc.wantHot && hot > 0 {
			t.Errorf("%s: expected no hot rows, got %d", tc.mapName, hot)
		}
	}
}
