// Command rubixsim runs a single simulation configuration and prints its
// results: IPC, row-buffer hit rate, hot-row census, mitigation activity,
// and DRAM power.
//
// Examples:
//
//	rubixsim -workload lbm -mapping coffeelake -mitigation none
//	rubixsim -workload mcf -mapping rubixs-gs4 -mitigation aqua -trh 128
//	rubixsim -workload mix3 -mapping rubixd-gs2 -mitigation srs -scale 0.2
//
// Observability:
//
//	rubixsim -workload mcf -mitigation aqua -metrics           # text metrics to stdout
//	rubixsim -workload mcf -metrics-json metrics.json          # JSON snapshot to a file
//	rubixsim -workload mcf -trace-events 256 -metrics          # keep last 256 traced events
//	rubixsim -workload mcf -pprof localhost:6060               # net/http/pprof + /metrics
//	rubixsim -workload mcf -cpuprofile cpu.pprof               # CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"

	"rubix/internal/check"
	"rubix/internal/geom"
	"rubix/internal/metrics"
	"rubix/internal/server"
	"rubix/internal/sim"
)

func main() {
	var (
		wl       = flag.String("workload", "gcc", "SPEC workload, mixN, or stream-{copy,scale,add,triad}")
		mapName  = flag.String("mapping", "coffeelake", "sequential|coffeelake|skylake|mop|largestride-gsN|rubixs-gsN|rubixd-gsN|staticxor-gsN")
		mitName  = flag.String("mitigation", "none", "none|aqua|srs|blockhammer|trr")
		trh      = flag.Int("trh", 128, "Rowhammer threshold")
		scale    = flag.Float64("scale", 1.0, "fraction of the 250M-instruction budget")
		cores    = flag.Int("cores", 4, "number of cores")
		seed     = flag.Uint64("seed", 42, "random seed")
		channels = flag.Int("channels", 1, "memory channels (1, 2, or 4)")
		shards   = flag.Int("shards", 0, "channel-sharded event loops: 0 = auto (channels when shardable), 1 = serial, else a power of two ≤ channels")
		census   = flag.Bool("linecensus", false, "track activating lines per hot row")
		hist     = flag.Bool("hist", false, "print the memory-latency distribution")

		checkMode = flag.String("check", "", "runtime checking: 'paranoid' (in-run invariants) or 'replay' (metamorphic relations)")

		showMetrics = flag.Bool("metrics", false, "print the metrics snapshot (text) after the run")
		metricsJSON = flag.String("metrics-json", "", "write the metrics snapshot as JSON to this file (- for stdout)")
		traceEvents = flag.Int("trace-events", 0, "keep the most recent N traced events in the metrics snapshot")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	g := geom.DDR4_16GB()
	switch *channels {
	case 1:
	case 2:
		g = geom.DDR4_32GB2Ch()
	case 4:
		g = geom.DDR4_32GB4Ch()
	default:
		fmt.Fprintf(os.Stderr, "rubixsim: unsupported channel count %d\n", *channels)
		os.Exit(2)
	}
	// Validate the shard request here, not mid-run: a bad value must fail
	// before any simulation work starts.
	if *shards < 0 || *shards&(*shards-1) != 0 {
		fmt.Fprintf(os.Stderr, "rubixsim: -shards %d: want 0 (auto) or a power of two\n", *shards)
		os.Exit(2)
	}
	if *shards > *channels {
		fmt.Fprintf(os.Stderr, "rubixsim: -shards %d exceeds -channels %d\n", *shards, *channels)
		os.Exit(2)
	}

	var chk *check.Checker
	switch *checkMode {
	case "":
	case "paranoid":
		chk = check.New(check.Config{})
	case "replay":
		// Replay runs the whole configuration several times and compares
		// structural counters; it replaces the normal single run.
		opts := sim.Options{Scale: *scale, Cores: *cores, Seed: *seed, SeedSet: true, Geometry: g}
		spec := sim.RunSpec{Workload: *wl, Mapping: *mapName, Mitigation: *mitName, TRH: *trh, LineCensus: *census}
		results, err := sim.Replay(opts, spec, sim.ReplayOptions{})
		for _, r := range results {
			switch {
			case r.Skipped != "":
				fmt.Printf("replay %-20s SKIP (%s)\n", r.Name+":", r.Skipped)
			case r.Err != nil:
				fmt.Printf("replay %-20s FAIL: %v\n", r.Name+":", r.Err)
			default:
				fmt.Printf("replay %-20s PASS\n", r.Name+":")
			}
		}
		if err != nil {
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "rubixsim: unknown -check mode %q (want paranoid or replay)\n", *checkMode)
		os.Exit(2)
	}

	// A recorder is created whenever any observability output is requested;
	// otherwise Config.Metrics stays nil and the hot path is untouched.
	var rec *metrics.Recorder
	var pub *metrics.Publisher
	if *showMetrics || *metricsJSON != "" || *traceEvents > 0 || *pprofAddr != "" {
		cfg := metrics.Config{TraceEvents: *traceEvents}
		if *pprofAddr != "" {
			pub = &metrics.Publisher{}
			cfg.PhaseHook = pub.Hook()
		}
		rec = metrics.New(cfg)
	}
	if *pprofAddr != "" {
		// The underscore import of net/http/pprof registered its handlers on
		// http.DefaultServeMux; /metrics joins them. Start binds the address
		// synchronously, so a taken port fails the run here instead of
		// printing "serving on ..." and then dying in a goroutine.
		http.Handle("/metrics", pub)
		srv := server.NewHTTPServer(*pprofAddr, nil) // nil handler = DefaultServeMux
		errc, err := server.Start(srv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rubixsim: pprof server:", err)
			os.Exit(1)
		}
		go func() {
			//lint:allow goroutineleak Start's serve goroutine sends exactly one error on the buffered errc when the listener exits; until then this reporter goroutine is meant to idle for the process lifetime
			if err := <-errc; err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "rubixsim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rubixsim: serving pprof and /metrics on http://%s\n", srv.Addr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rubixsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rubixsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	profiles, err := sim.ResolveWorkload(*wl, *cores, g, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubixsim:", err)
		os.Exit(1)
	}
	res, err := sim.Run(sim.Config{
		Geometry:       g,
		TRH:            *trh,
		MappingName:    *mapName,
		MitigationName: *mitName,
		Workloads:      profiles,
		InstrPerCore:   uint64(250e6 * *scale),
		Seed:           *seed,
		LineCensus:     *census,
		LatencyHist:    *hist,
		Shards:         *shards,
		Metrics:        rec,
		Check:          chk,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubixsim:", err)
		os.Exit(1)
	}

	fmt.Printf("config:        %s\n", res.Config)
	fmt.Printf("workload:      %s on %d cores (%s)\n", *wl, *cores, g)
	fmt.Printf("shards:        %d\n", res.Shards)
	fmt.Printf("sim time:      %.2f ms (%d windows)\n", res.ElapsedNs/1e6, len(res.DRAM.Windows))
	for i, ipc := range res.IPC {
		fmt.Printf("core %d:        %-12s IPC %.3f\n", i, res.WorkloadNames[i], ipc)
	}
	fmt.Printf("mean IPC:      %.3f\n", res.MeanIPC)
	fmt.Printf("accesses:      %d (row-buffer hit rate %.1f%%)\n", res.DRAM.Accesses, 100*res.HitRate())
	fmt.Printf("activations:   %d demand + %d mitigation/remap\n", res.DRAM.DemandActs, res.DRAM.ExtraActs)
	fmt.Printf("unique rows/w: %.0f\n", res.DRAM.MeanUniqueRows())
	fmt.Printf("hot rows:      %d with ACT>=64, %d with ACT>=512\n", res.DRAM.TotalHot64(), res.DRAM.TotalHot512())
	fmt.Printf("watchdog:      %d rows exceeded TRH=%d\n", res.DRAM.TotalOverTRH(), *trh)
	fmt.Printf("mitigations:   %d (%s), remap swaps: %d\n", res.Mitigations, res.Mitigation, res.RemapSwaps)
	fmt.Printf("DRAM power:    %.0f mW\n", res.PowerMW)
	if chk != nil {
		fmt.Printf("paranoid:      %d checks, %d violations\n", chk.Checks(), len(chk.Violations()))
	}

	if *hist && res.DRAM.Latency != nil {
		fmt.Printf("latency (ns):  %s\n", res.DRAM.Latency)
		fmt.Print(res.DRAM.Latency.Bars(40))
	}

	if *census {
		var buckets [3]int
		lineSum, hot := 0, 0
		for _, w := range res.DRAM.Windows {
			for i := range buckets {
				buckets[i] += w.LineBuckets[i]
			}
			lineSum += w.LineSum
			hot += w.Hot64
		}
		if hot > 0 {
			fmt.Printf("line census:   1-32: %d, 32-64: %d, 64-128: %d, avg %.1f lines/hot-row\n",
				buckets[0], buckets[1], buckets[2], float64(lineSum)/float64(hot))
		}
	}

	if res.Metrics != nil {
		if pub != nil {
			pub.Publish(res.Metrics)
		}
		if *showMetrics {
			fmt.Println("--- metrics ---")
			fmt.Print(res.Metrics.Text())
		}
		if *metricsJSON != "" {
			data, err := res.Metrics.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "rubixsim:", err)
				os.Exit(1)
			}
			if *metricsJSON == "-" {
				os.Stdout.Write(data)
				fmt.Println()
			} else if err := os.WriteFile(*metricsJSON, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rubixsim:", err)
				os.Exit(1)
			}
		}
	}
}
